package snoop

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e
}

func TestParseEventRef(t *testing.T) {
	e := mustParse(t, "sentineldb.sharma.addStk")
	ref, ok := e.(*EventRef)
	if !ok || ref.Name != "sentineldb.sharma.addStk" {
		t.Fatalf("got %#v", e)
	}
	e = mustParse(t, "deposit:account1")
	ref = e.(*EventRef)
	if ref.Object != "account1" {
		t.Errorf("object: %+v", ref)
	}
	e = mustParse(t, "login::site_app")
	ref = e.(*EventRef)
	if ref.App != "site_app" {
		t.Errorf("app: %+v", ref)
	}
}

func TestParsePaperExample2(t *testing.T) {
	// "addDel = delStk ^ addStk" — the expression part.
	e := mustParse(t, "delStk ^ addStk")
	and, ok := e.(*And)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if and.L.(*EventRef).Name != "delStk" || and.R.(*EventRef).Name != "addStk" {
		t.Errorf("operands: %v", e)
	}
}

func TestParsePrecedence(t *testing.T) {
	// SEQ binds tighter than AND binds tighter than OR.
	e := mustParse(t, "a | b ^ c ; d")
	want := "(a | (b ^ (c ; d)))"
	if got := e.String(); got != want {
		t.Errorf("got %s want %s", got, want)
	}
	e = mustParse(t, "(a | b) ^ c")
	want = "((a | b) ^ c)"
	if got := e.String(); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestParseKeywordSpellings(t *testing.T) {
	a := mustParse(t, "x OR y AND z SEQ w")
	b := mustParse(t, "x | y ^ z ; w")
	if a.String() != b.String() {
		t.Errorf("keyword vs symbol: %s vs %s", a, b)
	}
}

func TestParseNot(t *testing.T) {
	e := mustParse(t, "NOT(open, audit, close)")
	n, ok := e.(*Not)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if n.Start.(*EventRef).Name != "open" || n.Middle.(*EventRef).Name != "audit" || n.End.(*EventRef).Name != "close" {
		t.Errorf("args: %v", e)
	}
}

func TestParseAperiodic(t *testing.T) {
	e := mustParse(t, "A(open, trade, close)")
	a := e.(*Aperiodic)
	if a.Star {
		t.Error("A parsed as A*")
	}
	e = mustParse(t, "A*(open, trade, close)")
	a = e.(*Aperiodic)
	if !a.Star {
		t.Error("A* lost star")
	}
}

func TestParsePeriodic(t *testing.T) {
	e := mustParse(t, "P(open, [5 sec], close)")
	p := e.(*Periodic)
	if p.Period != 5*time.Second || p.Star || p.Param != "" {
		t.Errorf("periodic: %+v", p)
	}
	e = mustParse(t, "P*(open, [2 min]:price, close)")
	p = e.(*Periodic)
	if !p.Star || p.Period != 2*time.Minute || p.Param != "price" {
		t.Errorf("P*: %+v", p)
	}
}

func TestParsePlus(t *testing.T) {
	e := mustParse(t, "alarm PLUS [30 sec]")
	pl := e.(*Plus)
	if pl.Delta != 30*time.Second {
		t.Errorf("plus: %+v", pl)
	}
	// PLUS chains.
	e = mustParse(t, "alarm PLUS [1 sec] PLUS [2 sec]")
	outer := e.(*Plus)
	if outer.Delta != 2*time.Second {
		t.Errorf("chained plus: %+v", outer)
	}
	if _, ok := outer.E.(*Plus); !ok {
		t.Errorf("inner: %T", outer.E)
	}
}

func TestParseTemporal(t *testing.T) {
	e := mustParse(t, "[2026-07-04 10:00:00]")
	tm := e.(*Temporal)
	if tm.At.Year() != 2026 || tm.At.Hour() != 10 {
		t.Errorf("temporal: %+v", tm)
	}
}

func TestParseNested(t *testing.T) {
	e := mustParse(t, "A*(open ; arm, NOT(a, b, c), close PLUS [5 sec]) ^ (x | y)")
	if _, ok := e.(*And); !ok {
		t.Fatalf("got %T", e)
	}
	names := EventNames(e)
	want := []string{"open", "arm", "a", "b", "c", "close", "x", "y"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names: %v", names)
	}
}

func TestParseWindow(t *testing.T) {
	e := mustParse(t, "WINDOW(trade, [5 min], SLIDE [1 min])")
	w, ok := e.(*Window)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if w.Size != 5*time.Minute || w.Slide != time.Minute {
		t.Errorf("window: %+v", w)
	}
	// Tumbling: no SLIDE clause means slide == size.
	e = mustParse(t, "window(trade, [10 sec])")
	w = e.(*Window)
	if w.Size != 10*time.Second || w.Slide != 10*time.Second {
		t.Errorf("tumbling: %+v", w)
	}
	// Composite child.
	e = mustParse(t, "WINDOW(a ; b, [1 hour], SLIDE [5 min])")
	w = e.(*Window)
	if _, ok := w.E.(*Seq); !ok {
		t.Errorf("child: %T", w.E)
	}
}

func TestParseAgg(t *testing.T) {
	e := mustParse(t, "AGG(AVG, vno, trade, [5 min], SLIDE [1 min]) > 10.5")
	a, ok := e.(*Agg)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if a.Fn != "AVG" || a.Param != "vno" || a.Size != 5*time.Minute ||
		a.Slide != time.Minute || a.Cmp != ">" || a.Threshold != 10.5 {
		t.Errorf("agg: %+v", a)
	}
	// No comparator: signals at every non-empty boundary.
	e = mustParse(t, "agg(count, vno, trade, [10 sec])")
	a = e.(*Agg)
	if a.Fn != "COUNT" || a.Cmp != "" || a.Slide != 10*time.Second {
		t.Errorf("bare agg: %+v", a)
	}
	// Negative threshold.
	e = mustParse(t, "AGG(MIN, vno, trade, [10 sec]) <= -3")
	a = e.(*Agg)
	if a.Cmp != "<=" || a.Threshold != -3 {
		t.Errorf("neg threshold: %+v", a)
	}
	for _, cmp := range []string{">", ">=", "<", "<=", "==", "!="} {
		e := mustParse(t, "AGG(SUM, vno, trade, [10 sec]) "+cmp+" 7")
		if got := e.(*Agg).Cmp; got != cmp {
			t.Errorf("cmp %q parsed as %q", cmp, got)
		}
	}
}

func TestParseInterval(t *testing.T) {
	e := mustParse(t, "(a ; b) DURING (c ; d)")
	iv, ok := e.(*Interval)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if iv.Rel != "DURING" {
		t.Errorf("rel: %+v", iv)
	}
	e = mustParse(t, "x overlaps y")
	iv = e.(*Interval)
	if iv.Rel != "OVERLAPS" {
		t.Errorf("rel: %+v", iv)
	}
	// Interval binds tighter than SEQ, looser than PLUS.
	e = mustParse(t, "a ; b DURING c PLUS [1 sec]")
	want := "(a ; (b DURING (c PLUS [1 sec])))"
	if got := e.String(); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestParseWindowErrors(t *testing.T) {
	bad := []string{
		"WINDOW(a)",                                  // no size
		"WINDOW(a, [0 sec])",                         // zero-width
		"WINDOW(a, [5 sec], SLIDE [0 sec])",          // zero slide
		"WINDOW(a, [5 sec], [1 sec])",                // missing SLIDE keyword
		"WINDOW(a, [5 parsec])",                      // bad duration
		"WINDOW(a, 5)",                               // unbracketed size
		"WINDOW(WINDOW(a, [5 sec]), [10 sec])",       // nested window
		"WINDOW(AGG(SUM, vno, a, [1 sec]), [5 sec])", // nested agg
		"AGG(MEDIAN, vno, a, [5 sec])",               // unknown fn
		"AGG(SUM, vno, a, [0 sec])",                  // zero-width
		"AGG(SUM, vno, a, [5 sec]) >",                // dangling comparator
		"AGG(SUM, vno, a, [5 sec]) > x",              // non-numeric threshold
		"AGG(SUM, vno, WINDOW(a, [1 sec]), [5 sec])", // nested window
		"AGG(SUM, , a, [5 sec])",                     // missing param
		"a DURING",                                   // missing right operand
		"DURING b",                                   // missing left operand
		"a == b",                                     // comparator outside AGG
	}
	for _, src := range bad {
		if e, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded: %v", src, e)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a ^",
		"^ a",
		"a b",
		"NOT(a, b)",
		"NOT*(a, b, c)",
		"A(a, b, c",
		"P(a, b, c)",      // middle must be a time string
		"P(a, [5 sec] c)", // missing comma
		"P(a, [xyz], c)",  // bad duration
		"a PLUS 5",        // PLUS needs [..]
		"a PLUS [5 lightyears]",
		"[not a time]",
		"(a",
		"a :",
		"a ::",
		"a ? b",
		"[5 sec",
	}
	for _, src := range bad {
		if e, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded: %v", src, e)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	corpus := []string{
		"a",
		"a | b",
		"a ^ b ^ c",
		"a ; b | c ^ d",
		"NOT(a, b, c)",
		"A(a, b, c)",
		"A*(a | b, c, d)",
		"P(a, [5 sec], b)",
		"P*(a, [2 min]:qty, b)",
		"a PLUS [100 ms]",
		"deposit:acct ^ withdraw::site_app",
		"WINDOW(a, [5 sec])",
		"WINDOW(a | b, [5 min], SLIDE [1 min])",
		"AGG(COUNT, vno, a, [10 sec])",
		"AGG(AVG, vno, a ; b, [5 min], SLIDE [1 min]) > 10.5",
		"AGG(MIN, vno, a, [10 sec]) <= -3",
		"AGG(MAX, vno, a, [10 sec]) != 0.25",
		"(a ; b) DURING (c ; d)",
		"x OVERLAPS y ; z",
		"WINDOW(a, [5 sec]) DURING (b ; c)",
	}
	for _, src := range corpus {
		e1 := mustParse(t, src)
		e2 := mustParse(t, e1.String())
		if e1.String() != e2.String() {
			t.Errorf("round trip of %q: %q vs %q", src, e1, e2)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]time.Duration{
		"5 sec":    5 * time.Second,
		"100 ms":   100 * time.Millisecond,
		"2 min":    2 * time.Minute,
		"1 hour":   time.Hour,
		"3":        3 * time.Second,
		"10 hours": 10 * time.Hour,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x", "-1 sec", "5 parsecs", "1 2 3"} {
		if _, err := ParseDuration(in); err == nil {
			t.Errorf("ParseDuration(%q) succeeded", in)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Second:        "5 sec",
		2 * time.Minute:        "2 min",
		time.Hour:              "1 hour",
		150 * time.Millisecond: "150 ms",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q want %q", in, got, want)
		}
	}
}

func TestEventNamesDedup(t *testing.T) {
	e := mustParse(t, "a ^ a ; a | b")
	names := EventNames(e)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names: %v", names)
	}
}
