package snoop

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// token kinds for the Snoop lexer.
type tokKind int

const (
	tEOF tokKind = iota
	tName
	tTime // bracketed [time string], brackets stripped
	tOp   // ( ) , | ^ ; : ::
	tStar // trailing * in A* / P*
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '[':
		end := strings.IndexByte(l.src[l.pos:], ']')
		if end < 0 {
			return token{}, fmt.Errorf("snoop: unterminated time string at %d", l.pos)
		}
		text := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		return token{kind: tTime, text: strings.TrimSpace(text)}, nil
	case '(', ')', ',', '|', '^', ';', '-':
		l.pos++
		return token{kind: tOp, text: string(c)}, nil
	case '>', '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tOp, text: string(c) + "="}, nil
		}
		return token{kind: tOp, text: string(c)}, nil
	case '=', '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tOp, text: string(c) + "="}, nil
		}
		return token{}, fmt.Errorf("snoop: unexpected character %q at %d", c, l.pos)
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			l.pos += 2
			return token{kind: tOp, text: "::"}, nil
		}
		l.pos++
		return token{kind: tOp, text: ":"}, nil
	case '*':
		l.pos++
		return token{kind: tStar, text: "*"}, nil
	}
	if isNameChar(c) {
		start := l.pos
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tName, text: l.src[start:l.pos]}, nil
	}
	return token{}, fmt.Errorf("snoop: unexpected character %q at %d", c, l.pos)
}

func isNameChar(c byte) bool {
	return c == '_' || c == '.' || c >= '0' && c <= '9' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// Parser parses Snoop event expressions.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a complete Snoop event expression.
func Parse(src string) (Expr, error) {
	lx := &lexer{src: src}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tEOF {
			break
		}
		toks = append(toks, t)
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("snoop: unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return token{kind: tEOF}
	}
	return p.toks[p.pos]
}

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return token{kind: tEOF}
	}
	return p.toks[p.pos+n]
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || strings.EqualFold(t.text, text)) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("snoop: expected %q, got %q", text, p.peek().text)
	}
	return nil
}

// isKeywordTok reports whether the current token is a bare operator keyword.
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tName && strings.EqualFold(t.text, kw)
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tOp, "|") || (p.isKeyword("or") && p.accept(tName, "or")) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for p.accept(tOp, "^") || (p.isKeyword("and") && p.accept(tName, "and")) {
		r, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseSeq() (Expr, error) {
	l, err := p.parseInterval()
	if err != nil {
		return nil, err
	}
	for p.accept(tOp, ";") || (p.isKeyword("seq") && p.accept(tName, "seq")) {
		r, err := p.parseInterval()
		if err != nil {
			return nil, err
		}
		l = &Seq{L: l, R: r}
	}
	return l, nil
}

// parseInterval handles the Allen relations L DURING R and L OVERLAPS R.
func (p *parser) parseInterval() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		var rel string
		switch {
		case p.isKeyword("during"):
			rel = "DURING"
		case p.isKeyword("overlaps"):
			rel = "OVERLAPS"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		l = &Interval{Rel: rel, L: l, R: r}
	}
}

// parsePostfix handles E PLUS [t].
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("plus") {
		p.pos++
		t := p.peek()
		if t.kind != tTime {
			return nil, fmt.Errorf("snoop: PLUS requires a [time string], got %q", t.text)
		}
		p.pos++
		d, err := ParseDuration(t.text)
		if err != nil {
			return nil, err
		}
		e = &Plus{E: e, Delta: d}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tOp && t.text == "(":
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tTime:
		p.pos++
		at, err := parseAbsoluteTime(t.text)
		if err != nil {
			return nil, err
		}
		return &Temporal{At: at}, nil
	case t.kind == tName:
		switch {
		case strings.EqualFold(t.text, "not") && p.peekAt(1).text == "(":
			return p.parseTriple("not")
		case strings.EqualFold(t.text, "a") && (p.peekAt(1).text == "(" || p.peekAt(1).kind == tStar):
			return p.parseTriple("a")
		case strings.EqualFold(t.text, "p") && (p.peekAt(1).text == "(" || p.peekAt(1).kind == tStar):
			return p.parsePeriodic()
		case strings.EqualFold(t.text, "window") && p.peekAt(1).text == "(":
			return p.parseWindow()
		case strings.EqualFold(t.text, "agg") && p.peekAt(1).text == "(":
			return p.parseAgg()
		default:
			return p.parseEventRef()
		}
	default:
		return nil, fmt.Errorf("snoop: unexpected %q", t.text)
	}
}

func (p *parser) parseEventRef() (Expr, error) {
	t := p.peek()
	if t.kind != tName {
		return nil, fmt.Errorf("snoop: expected event name, got %q", t.text)
	}
	p.pos++
	ref := &EventRef{Name: t.text}
	switch {
	case p.accept(tOp, "::"):
		app := p.peek()
		if app.kind != tName {
			return nil, fmt.Errorf("snoop: expected application id after ::")
		}
		p.pos++
		ref.App = app.text
	case p.accept(tOp, ":"):
		obj := p.peek()
		if obj.kind != tName {
			return nil, fmt.Errorf("snoop: expected object name after :")
		}
		p.pos++
		ref.Object = obj.text
	}
	return ref, nil
}

// parseTriple parses NOT(E,E,E), A(E,E,E) and A*(E,E,E).
func (p *parser) parseTriple(op string) (Expr, error) {
	p.pos++ // keyword
	star := p.accept(tStar, "")
	if star && op == "not" {
		return nil, fmt.Errorf("snoop: NOT has no * variant")
	}
	if err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	var args [3]Expr
	for i := 0; i < 3; i++ {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		args[i] = e
		if i < 2 {
			if err := p.expect(tOp, ","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	if op == "not" {
		return &Not{Start: args[0], Middle: args[1], End: args[2]}, nil
	}
	return &Aperiodic{Start: args[0], Mid: args[1], End: args[2], Star: star}, nil
}

// parsePeriodic parses P(E1, [t][:param], E3) and P*(...).
func (p *parser) parsePeriodic() (Expr, error) {
	p.pos++ // P
	star := p.accept(tStar, "")
	if err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	start, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tOp, ","); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tTime {
		return nil, fmt.Errorf("snoop: P requires a [time string], got %q", t.text)
	}
	p.pos++
	period, err := ParseDuration(t.text)
	if err != nil {
		return nil, err
	}
	param := ""
	if p.accept(tOp, ":") {
		pt := p.peek()
		if pt.kind != tName {
			return nil, fmt.Errorf("snoop: expected parameter name after :")
		}
		p.pos++
		param = pt.text
	}
	if err := p.expect(tOp, ","); err != nil {
		return nil, err
	}
	end, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	return &Periodic{Start: start, Period: period, Param: param, End: end, Star: star}, nil
}

// AggFns is the set of aggregate functions AGG accepts.
var AggFns = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// aggCmps is the set of comparators allowed after AGG(...).
var aggCmps = map[string]bool{
	">": true, ">=": true, "<": true, "<=": true, "==": true, "!=": true,
}

// rejectNested errors if e contains a WINDOW or AGG node: windows do not
// nest (a window of windows has no boundary grid of its own to align to).
func rejectNested(e Expr) error {
	var nested error
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *Window, *Agg:
			if nested == nil {
				nested = fmt.Errorf("snoop: nested windows are not supported")
			}
		}
	})
	return nested
}

// parseWindowTail parses `[size]` followed by an optional `, SLIDE [slide]`,
// shared by WINDOW and AGG. Zero-width sizes and slides are rejected here
// so a malformed window never reaches the detector.
func (p *parser) parseWindowTail(op string) (size, slide time.Duration, err error) {
	t := p.peek()
	if t.kind != tTime {
		return 0, 0, fmt.Errorf("snoop: %s requires a [time string] size, got %q", op, t.text)
	}
	p.pos++
	size, err = ParseDuration(t.text)
	if err != nil {
		return 0, 0, err
	}
	if size <= 0 {
		return 0, 0, fmt.Errorf("snoop: %s window size must be positive, got %q", op, t.text)
	}
	slide = size
	if p.accept(tOp, ",") {
		if !(p.isKeyword("slide") && p.accept(tName, "slide")) {
			return 0, 0, fmt.Errorf("snoop: expected SLIDE, got %q", p.peek().text)
		}
		st := p.peek()
		if st.kind != tTime {
			return 0, 0, fmt.Errorf("snoop: SLIDE requires a [time string], got %q", st.text)
		}
		p.pos++
		slide, err = ParseDuration(st.text)
		if err != nil {
			return 0, 0, err
		}
		if slide <= 0 {
			return 0, 0, fmt.Errorf("snoop: %s slide must be positive, got %q", op, st.text)
		}
	}
	return size, slide, nil
}

// parseWindow parses WINDOW(E, [size]) and WINDOW(E, [size], SLIDE [slide]).
func (p *parser) parseWindow() (Expr, error) {
	p.pos++ // WINDOW
	if err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tOp, ","); err != nil {
		return nil, err
	}
	size, slide, err := p.parseWindowTail("WINDOW")
	if err != nil {
		return nil, err
	}
	if err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	if err := rejectNested(e); err != nil {
		return nil, err
	}
	return &Window{E: e, Size: size, Slide: slide}, nil
}

// parseAgg parses AGG(FN, param, E, [size][, SLIDE [slide]]) with an
// optional trailing comparator and numeric threshold.
func (p *parser) parseAgg() (Expr, error) {
	p.pos++ // AGG
	if err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	fnTok := p.peek()
	if fnTok.kind != tName {
		return nil, fmt.Errorf("snoop: AGG requires a function name, got %q", fnTok.text)
	}
	fn := strings.ToUpper(fnTok.text)
	if !AggFns[fn] {
		return nil, fmt.Errorf("snoop: unknown aggregate function %q", fnTok.text)
	}
	p.pos++
	if err := p.expect(tOp, ","); err != nil {
		return nil, err
	}
	paramTok := p.peek()
	if paramTok.kind != tName {
		return nil, fmt.Errorf("snoop: AGG requires a parameter name, got %q", paramTok.text)
	}
	p.pos++
	if err := p.expect(tOp, ","); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tOp, ","); err != nil {
		return nil, err
	}
	size, slide, err := p.parseWindowTail("AGG")
	if err != nil {
		return nil, err
	}
	if err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	if err := rejectNested(e); err != nil {
		return nil, err
	}
	agg := &Agg{Fn: fn, Param: paramTok.text, E: e, Size: size, Slide: slide}
	if t := p.peek(); t.kind == tOp && aggCmps[t.text] {
		p.pos++
		agg.Cmp = t.text
		neg := p.accept(tOp, "-")
		nt := p.peek()
		if nt.kind != tName {
			return nil, fmt.Errorf("snoop: AGG threshold must be a number, got %q", nt.text)
		}
		v, err := strconv.ParseFloat(nt.text, 64)
		if err != nil {
			return nil, fmt.Errorf("snoop: AGG threshold must be a number, got %q", nt.text)
		}
		p.pos++
		if neg {
			v = -v
		}
		agg.Threshold = v
	}
	return agg, nil
}

// ParseDuration parses a relative Snoop time string: "<n> <unit>" with
// units ms, sec/second(s), min/minute(s), hour(s). A bare number means
// seconds.
func ParseDuration(s string) (time.Duration, error) {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(s)))
	if len(fields) == 0 || len(fields) > 2 {
		return 0, fmt.Errorf("snoop: bad time string %q", s)
	}
	n, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("snoop: bad time value %q", s)
	}
	unit := "sec"
	if len(fields) == 2 {
		unit = fields[1]
	}
	switch unit {
	case "ms", "msec", "millisecond", "milliseconds":
		return time.Duration(n) * time.Millisecond, nil
	case "s", "sec", "secs", "second", "seconds":
		return time.Duration(n) * time.Second, nil
	case "min", "mins", "minute", "minutes":
		return time.Duration(n) * time.Minute, nil
	case "hour", "hours", "hr", "hrs":
		return time.Duration(n) * time.Hour, nil
	default:
		return 0, fmt.Errorf("snoop: unknown time unit %q", unit)
	}
}

// parseAbsoluteTime parses a bare temporal event's time string.
func parseAbsoluteTime(s string) (time.Time, error) {
	for _, layout := range []string{
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05",
		"15:04:05",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("snoop: cannot parse absolute time %q", s)
}
