package snoop

import "testing"

// FuzzParse feeds the Snoop grammar arbitrary input. Two invariants:
// Parse never panics, and any accepted expression round-trips — its
// String() rendering reparses to the same canonical form (the property
// TestStringRoundTrip established for the hand-written corpus).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// every operator, plain
		"e1",
		"e1 | e2",
		"e1 ^ e2",
		"e1 ; e2",
		"NOT(e1, e2, e3)",
		"A(e1, e2, e3)",
		"A*(e1, e2, e3)",
		"P(open, [5 sec], close)",
		"P*(open, [2 min]:price, close)",
		"alarm PLUS [30 sec]",
		// site-qualified references (GED global events)
		"addStk::siteA ^ delStk::siteB",
		// nesting, precedence, grouping
		"A*(open ; arm, NOT(a, b, c), close PLUS [5 sec]) ^ (x | y)",
		"(e1 | e2) ; (e3 ^ e4)",
		"NOT(e1 | e2, e3 ; e4, A(e5, e6, e7))",
		"P(e1 ^ e2, [1 hour], e3 | e4)",
		"e1 PLUS [0 sec]",
		// unit spellings and durations
		"x PLUS [1 min]",
		"x PLUS [2 hour]",
		"P(a, [100 sec], b)",
		// malformed shapes the parser must reject cleanly
		"",
		"e1 |",
		"| e1",
		"NOT(e1, e2)",
		"A(e1)",
		"P(a, [sec], b)",
		"P(a, [5], b)",
		"x PLUS",
		"x PLUS [5 parsec]",
		"((((e1))))",
		"e1 ;; e2",
		"a::b::c",
		"[5 sec]",
		"A*(,,)",
		"e1 ^ (e2 | e3",
		// CEP layer: windows, aggregates, intervals
		"WINDOW(e1, [5 min], SLIDE [1 min])",
		"WINDOW(e1 ; e2, [10 sec])",
		"AGG(AVG, vno, e1, [5 min], SLIDE [1 min]) > 10.5",
		"AGG(COUNT, vno, e1, [10 sec])",
		"AGG(MIN, vno, e1, [1 hour]) <= -3",
		"(e1 ; e2) DURING (e3 ; e4)",
		"e1 OVERLAPS e2",
		"WINDOW(e1, [5 sec]) DURING (e2 ; e3)",
		// malformed CEP shapes: must error, never panic
		"WINDOW(e1, [0 sec])",
		"WINDOW(e1, [5 sec], SLIDE [0 sec])",
		"WINDOW(e1, [5 parsec])",
		"WINDOW(WINDOW(e1, [5 sec]), [10 sec])",
		"AGG(MEDIAN, vno, e1, [5 sec])",
		"AGG(SUM, vno, e1, [5 sec]) >",
		"AGG(SUM, vno, e1, [5 sec]) > x",
		"AGG(SUM, vno, WINDOW(e1, [1 sec]), [5 sec])",
		"e1 DURING",
		"e1 = e2",
		"e1 ! e2",
		"WINDOW(e1, [5 sec]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not reparse: %v", src, s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Fatalf("round trip unstable: %q -> %q -> %q", src, s1, s2)
		}
	})
}
