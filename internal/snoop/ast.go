// Package snoop implements the Snoop event specification language of
// Section 2.1 of the paper: primitive event references, the binary
// operators OR, AND (^) and SEQ (;), the aperiodic operators A and A*, the
// periodic operators P and P*, NOT, PLUS, and temporal events.
//
// The parser accepts both the keyword spellings (OR, AND, SEQ) and the
// symbol spellings (| ^ ;) used in the paper's Example 2
// ("addDel = delStk ^ addStk").
package snoop

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Expr is a Snoop event expression.
type Expr interface {
	// String renders the expression in canonical Snoop syntax; parsing the
	// result yields an equal expression.
	String() string
	exprNode()
}

// EventRef names a previously defined event (primitive or composite). The
// optional Object and App fields carry the Eventname:Objectname and
// Eventname::AppId qualifications from the BNF.
type EventRef struct {
	Name   string
	Object string // Eventname:Objectname
	App    string // Eventname::AppId
}

// Or is E1 OR E2: either constituent occurrence signals the composite.
type Or struct{ L, R Expr }

// And is E1 AND E2 (written ^): both constituents in any order.
type And struct{ L, R Expr }

// Seq is E1 SEQ E2 (written ;): E1 strictly before E2.
type Seq struct{ L, R Expr }

// Not is NOT(E1, E2, E3): E3 occurs with no E2 since the initiating E1.
type Not struct{ Start, Middle, End Expr }

// Aperiodic is A(E1, E2, E3): each E2 within the window opened by E1 and
// closed by E3. Star marks the cumulative variant A*, which signals once
// at E3 with every accumulated E2.
type Aperiodic struct {
	Start, Mid, End Expr
	Star            bool
}

// Periodic is P(E1, [t], E3): a tick every t after E1 until E3. Star marks
// the cumulative variant P*, which signals once at E3 with all ticks.
type Periodic struct {
	Start  Expr
	Period time.Duration
	// Param is the optional ":parameter" annotation from the BNF; it is
	// carried through for rule parameter collection.
	Param string
	End   Expr
	Star  bool
}

// Plus is E PLUS [t]: fires t after each occurrence of E.
type Plus struct {
	E     Expr
	Delta time.Duration
}

// Temporal is a bare absolute [time string] event.
type Temporal struct{ At time.Time }

// Window is WINDOW(E, [size], SLIDE [slide]): the child occurrences that
// fell in the half-open interval [T-size, T), reported at each boundary T
// of the slide grid (boundaries are multiples of Slide on the Unix-epoch
// grid). Slide == Size is a tumbling window. Windows may not nest.
type Window struct {
	E     Expr
	Size  time.Duration
	Slide time.Duration
}

// Agg is AGG(FN, param, E, [size], SLIDE [slide]) cmp threshold: an
// aggregate (COUNT, SUM, AVG, MIN, MAX) over the named parameter of the
// child occurrences inside the same boundary grid as Window. With a
// comparator the event signals only at boundaries where the aggregate
// satisfies it; without one it signals at every non-empty boundary.
type Agg struct {
	Fn        string // COUNT, SUM, AVG, MIN, MAX
	Param     string // aggregated parameter, e.g. vno
	E         Expr
	Size      time.Duration
	Slide     time.Duration
	Cmp       string // "", ">", ">=", "<", "<=", "==", "!="
	Threshold float64
}

// Interval is (L DURING R) or (L OVERLAPS R): an Allen-style relation
// between the durative extents of two composite occurrences, where an
// occurrence's extent runs from its earliest constituent to its detection
// time. Both relations are strict (Allen's original definitions).
type Interval struct {
	Rel  string // "DURING" or "OVERLAPS"
	L, R Expr
}

func (*EventRef) exprNode()  {}
func (*Or) exprNode()        {}
func (*And) exprNode()       {}
func (*Seq) exprNode()       {}
func (*Not) exprNode()       {}
func (*Aperiodic) exprNode() {}
func (*Periodic) exprNode()  {}
func (*Plus) exprNode()      {}
func (*Temporal) exprNode()  {}
func (*Window) exprNode()    {}
func (*Agg) exprNode()       {}
func (*Interval) exprNode()  {}

func (e *EventRef) String() string {
	switch {
	case e.App != "":
		return e.Name + "::" + e.App
	case e.Object != "":
		return e.Name + ":" + e.Object
	default:
		return e.Name
	}
}

func (e *Or) String() string  { return "(" + e.L.String() + " | " + e.R.String() + ")" }
func (e *And) String() string { return "(" + e.L.String() + " ^ " + e.R.String() + ")" }
func (e *Seq) String() string { return "(" + e.L.String() + " ; " + e.R.String() + ")" }

func (e *Not) String() string {
	return fmt.Sprintf("NOT(%s, %s, %s)", e.Start, e.Middle, e.End)
}

func (e *Aperiodic) String() string {
	op := "A"
	if e.Star {
		op = "A*"
	}
	return fmt.Sprintf("%s(%s, %s, %s)", op, e.Start, e.Mid, e.End)
}

func (e *Periodic) String() string {
	op := "P"
	if e.Star {
		op = "P*"
	}
	t := "[" + FormatDuration(e.Period) + "]"
	if e.Param != "" {
		t += ":" + e.Param
	}
	return fmt.Sprintf("%s(%s, %s, %s)", op, e.Start, t, e.End)
}

func (e *Plus) String() string {
	return fmt.Sprintf("(%s PLUS [%s])", e.E, FormatDuration(e.Delta))
}

func (e *Temporal) String() string {
	return "[" + e.At.Format("2006-01-02 15:04:05") + "]"
}

func (e *Window) String() string {
	if e.Slide == e.Size {
		return fmt.Sprintf("WINDOW(%s, [%s])", e.E, FormatDuration(e.Size))
	}
	return fmt.Sprintf("WINDOW(%s, [%s], SLIDE [%s])",
		e.E, FormatDuration(e.Size), FormatDuration(e.Slide))
}

func (e *Agg) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AGG(%s, %s, %s, [%s]", e.Fn, e.Param, e.E, FormatDuration(e.Size))
	if e.Slide != e.Size {
		fmt.Fprintf(&b, ", SLIDE [%s]", FormatDuration(e.Slide))
	}
	b.WriteString(")")
	if e.Cmp != "" {
		// 'f' keeps the threshold exponent-free so it re-lexes as a name
		// token; round-tripping String() is load-bearing for the catalog.
		fmt.Fprintf(&b, " %s %s", e.Cmp, strconv.FormatFloat(e.Threshold, 'f', -1, 64))
	}
	return b.String()
}

func (e *Interval) String() string {
	return "(" + e.L.String() + " " + e.Rel + " " + e.R.String() + ")"
}

// Walk calls fn on e and every sub-expression, depth-first.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch e := e.(type) {
	case *Or:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *And:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *Seq:
		Walk(e.L, fn)
		Walk(e.R, fn)
	case *Not:
		Walk(e.Start, fn)
		Walk(e.Middle, fn)
		Walk(e.End, fn)
	case *Aperiodic:
		Walk(e.Start, fn)
		Walk(e.Mid, fn)
		Walk(e.End, fn)
	case *Periodic:
		Walk(e.Start, fn)
		Walk(e.End, fn)
	case *Plus:
		Walk(e.E, fn)
	case *Window:
		Walk(e.E, fn)
	case *Agg:
		Walk(e.E, fn)
	case *Interval:
		Walk(e.L, fn)
		Walk(e.R, fn)
	}
}

// EventNames returns the distinct event names referenced by e, in first-
// appearance order.
func EventNames(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	Walk(e, func(x Expr) {
		if ref, ok := x.(*EventRef); ok && !seen[ref.Name] {
			seen[ref.Name] = true
			out = append(out, ref.Name)
		}
	})
	return out
}

// FormatDuration renders a duration in Snoop time-string syntax.
func FormatDuration(d time.Duration) string {
	switch {
	case d%time.Hour == 0 && d >= time.Hour:
		return fmt.Sprintf("%d hour", d/time.Hour)
	case d%time.Minute == 0 && d >= time.Minute:
		return fmt.Sprintf("%d min", d/time.Minute)
	case d%time.Second == 0 && d >= time.Second:
		return fmt.Sprintf("%d sec", d/time.Second)
	default:
		return fmt.Sprintf("%d ms", d/time.Millisecond)
	}
}
