// Package catalog implements the system catalog of the SQL server
// substrate: databases, owned tables, stored procedures, and native
// triggers, with Sybase-style name resolution (db.owner.object) and
// whole-database snapshot persistence.
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/storage"
)

// DefaultOwner is the database-owner account objects fall back to when the
// creating session did not specify one, mirroring "dbo".
const DefaultOwner = "dbo"

// Procedure is a stored procedure definition.
type Procedure struct {
	Name   string // unqualified
	Owner  string
	Params []sqlparse.ProcParam
	Body   []sqlparse.Statement
	// RawSQL is the complete CREATE PROCEDURE text, kept for persistence
	// and for sp_helptext-style introspection.
	RawSQL string
}

// Trigger is a native trigger definition. As in the original server there
// is at most one trigger per (table, operation); creating another silently
// overwrites it (one of the limitations in §2.2 of the paper that the ECA
// agent exists to lift).
type Trigger struct {
	Name      string // unqualified
	Owner     string
	Table     string // unqualified table name (same owner as the trigger)
	Operation sqlparse.TriggerOp
	Body      []sqlparse.Statement
	RawSQL    string
}

type object struct {
	owner string
	name  string
}

func key(owner, name string) object {
	return object{owner: strings.ToLower(owner), name: strings.ToLower(name)}
}

// Database holds one database's objects.
type Database struct {
	mu       sync.RWMutex
	name     string
	tables   map[object]*storage.Table
	owners   map[object]string // preserves original owner spelling
	procs    map[object]*Procedure
	triggers map[object]*Trigger
	// trigByTable indexes triggers by (table key, operation).
	trigByTable map[object]map[sqlparse.TriggerOp]*Trigger
}

func newDatabase(name string) *Database {
	return &Database{
		name:        name,
		tables:      make(map[object]*storage.Table),
		owners:      make(map[object]string),
		procs:       make(map[object]*Procedure),
		triggers:    make(map[object]*Trigger),
		trigByTable: make(map[object]map[sqlparse.TriggerOp]*Trigger),
	}
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// resolve finds an object key given an optional owner and a resolver user.
// Resolution order matches the server: exact owner if specified; else the
// session user's object, then dbo's, then a unique match across owners.
func resolve[T any](d *Database, m map[object]T, owner, name, user string) (object, bool) {
	if owner != "" {
		k := key(owner, name)
		_, ok := m[k]
		return k, ok
	}
	if user != "" {
		k := key(user, name)
		if _, ok := m[k]; ok {
			return k, true
		}
	}
	k := key(DefaultOwner, name)
	if _, ok := m[k]; ok {
		return k, true
	}
	var found object
	n := 0
	lname := strings.ToLower(name)
	for ko := range m {
		if ko.name == lname {
			found = ko
			n++
		}
	}
	if n == 1 {
		return found, true
	}
	return object{}, false
}

// CreateTable registers a table. It fails if the (owner, name) pair exists.
func (d *Database) CreateTable(owner, name string, schema *sqltypes.Schema) (*storage.Table, error) {
	if owner == "" {
		owner = DefaultOwner
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := key(owner, name)
	if _, ok := d.tables[k]; ok {
		return nil, fmt.Errorf("table %s.%s already exists in %s", owner, name, d.name)
	}
	t := storage.NewTable(schema)
	d.tables[k] = t
	d.owners[k] = owner
	return t, nil
}

// Table resolves a table reference for the given session user.
func (d *Database) Table(owner, name, user string) (*storage.Table, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := resolve(d, d.tables, owner, name, user)
	if !ok {
		return nil, fmt.Errorf("table %s not found in %s", displayName(owner, name), d.name)
	}
	return d.tables[k], nil
}

// DropTable removes a table and any triggers defined on it.
func (d *Database) DropTable(owner, name, user string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	k, ok := resolve(d, d.tables, owner, name, user)
	if !ok {
		return fmt.Errorf("table %s not found in %s", displayName(owner, name), d.name)
	}
	delete(d.tables, k)
	delete(d.owners, k)
	if ops, ok := d.trigByTable[k]; ok {
		for _, tr := range ops {
			delete(d.triggers, key(tr.Owner, tr.Name))
		}
		delete(d.trigByTable, k)
	}
	return nil
}

// TableNames lists tables as owner.name pairs, sorted by map order (callers
// sort if they need determinism).
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for k := range d.tables {
		out = append(out, d.owners[k]+"."+k.name)
	}
	return out
}

// CreateProcedure registers a stored procedure. Duplicate names fail, as in
// the server.
func (d *Database) CreateProcedure(p *Procedure) error {
	if p.Owner == "" {
		p.Owner = DefaultOwner
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := key(p.Owner, p.Name)
	if _, ok := d.procs[k]; ok {
		return fmt.Errorf("procedure %s.%s already exists in %s", p.Owner, p.Name, d.name)
	}
	d.procs[k] = p
	return nil
}

// Procedure resolves a procedure reference.
func (d *Database) Procedure(owner, name, user string) (*Procedure, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := resolve(d, d.procs, owner, name, user)
	if !ok {
		return nil, fmt.Errorf("procedure %s not found in %s", displayName(owner, name), d.name)
	}
	return d.procs[k], nil
}

// DropProcedure removes a stored procedure.
func (d *Database) DropProcedure(owner, name, user string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	k, ok := resolve(d, d.procs, owner, name, user)
	if !ok {
		return fmt.Errorf("procedure %s not found in %s", displayName(owner, name), d.name)
	}
	delete(d.procs, k)
	return nil
}

// CreateTrigger registers a native trigger. Faithful to the original
// server's documented limitation, a new trigger for the same (table,
// operation) silently replaces the existing one and no warning is given.
func (d *Database) CreateTrigger(tr *Trigger, user string) error {
	if tr.Owner == "" {
		tr.Owner = DefaultOwner
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tk, ok := resolve(d, d.tables, "", tr.Table, user)
	if !ok {
		return fmt.Errorf("table %s not found in %s", tr.Table, d.name)
	}
	ops := d.trigByTable[tk]
	if ops == nil {
		ops = make(map[sqlparse.TriggerOp]*Trigger)
		d.trigByTable[tk] = ops
	}
	if prev, exists := ops[tr.Operation]; exists {
		delete(d.triggers, key(prev.Owner, prev.Name))
	}
	ops[tr.Operation] = tr
	d.triggers[key(tr.Owner, tr.Name)] = tr
	return nil
}

// TriggerFor returns the trigger on (table, op), if any.
func (d *Database) TriggerFor(tableOwner, table, user string, op sqlparse.TriggerOp) (*Trigger, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	tk, ok := resolve(d, d.tables, tableOwner, table, user)
	if !ok {
		return nil, false
	}
	tr, ok := d.trigByTable[tk][op]
	return tr, ok
}

// Trigger resolves a trigger by name.
func (d *Database) Trigger(owner, name, user string) (*Trigger, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := resolve(d, d.triggers, owner, name, user)
	if !ok {
		return nil, fmt.Errorf("trigger %s not found in %s", displayName(owner, name), d.name)
	}
	return d.triggers[k], nil
}

// DropTrigger removes a trigger by name.
func (d *Database) DropTrigger(owner, name, user string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	k, ok := resolve(d, d.triggers, owner, name, user)
	if !ok {
		return fmt.Errorf("trigger %s not found in %s", displayName(owner, name), d.name)
	}
	tr := d.triggers[k]
	delete(d.triggers, k)
	if tk, ok := resolve(d, d.tables, "", tr.Table, user); ok {
		if ops := d.trigByTable[tk]; ops != nil && ops[tr.Operation] == tr {
			delete(ops, tr.Operation)
		}
	}
	return nil
}

func displayName(owner, name string) string {
	if owner == "" {
		return name
	}
	return owner + "." + name
}

// Catalog is the root of the metadata tree: a set of databases.
type Catalog struct {
	mu  sync.RWMutex
	dbs map[string]*Database
}

// New returns a catalog containing only the "master" database.
func New() *Catalog {
	c := &Catalog{dbs: make(map[string]*Database)}
	c.dbs["master"] = newDatabase("master")
	return c
}

// CreateDatabase adds a database.
func (c *Catalog) CreateDatabase(name string) (*Database, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ln := strings.ToLower(name)
	if _, ok := c.dbs[ln]; ok {
		return nil, fmt.Errorf("database %s already exists", name)
	}
	db := newDatabase(name)
	c.dbs[ln] = db
	return db, nil
}

// Database looks up a database by name.
func (c *Catalog) Database(name string) (*Database, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	db, ok := c.dbs[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("database %s does not exist", name)
	}
	return db, nil
}

// DatabaseNames lists all databases.
func (c *Catalog) DatabaseNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		out = append(out, n)
	}
	return out
}
