package catalog

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

func stockSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "symbol", Type: sqltypes.VarChar(10)},
		sqltypes.Column{Name: "price", Type: sqltypes.Float, Nullable: true},
	)
}

func TestDatabaseLifecycle(t *testing.T) {
	c := New()
	if _, err := c.Database("master"); err != nil {
		t.Fatal("master missing")
	}
	db, err := c.CreateDatabase("sentineldb")
	if err != nil {
		t.Fatal(err)
	}
	if db.Name() != "sentineldb" {
		t.Errorf("Name = %q", db.Name())
	}
	if _, err := c.CreateDatabase("SENTINELDB"); err == nil {
		t.Error("case-insensitive duplicate db accepted")
	}
	if _, err := c.Database("sentineldb"); err != nil {
		t.Error(err)
	}
	if _, err := c.Database("nope"); err == nil {
		t.Error("missing db lookup succeeded")
	}
	if len(c.DatabaseNames()) != 2 {
		t.Errorf("DatabaseNames: %v", c.DatabaseNames())
	}
}

func TestTableOwnershipResolution(t *testing.T) {
	c := New()
	db, _ := c.CreateDatabase("d")
	if _, err := db.CreateTable("sharma", "stock", stockSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("sharma", "STOCK", stockSchema()); err == nil {
		t.Error("duplicate accepted")
	}
	// Owner-qualified lookup.
	if _, err := db.Table("sharma", "stock", "anyone"); err != nil {
		t.Error(err)
	}
	// Session user match.
	if _, err := db.Table("", "stock", "sharma"); err != nil {
		t.Error(err)
	}
	// Unique-match fallback: another user can see sharma's table when the
	// name is unambiguous.
	if _, err := db.Table("", "stock", "sa"); err != nil {
		t.Error(err)
	}
	// dbo table preferred over unique fallback.
	if _, err := db.CreateTable("", "prices", stockSchema()); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("", "prices", "whoever")
	if err != nil || tbl == nil {
		t.Error("dbo fallback failed")
	}
	// Ambiguity: two owners, no dbo, no user match -> error.
	if _, err := db.CreateTable("li", "stock", stockSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("", "stock", "sa"); err == nil {
		t.Error("ambiguous lookup should fail")
	}
	// But each owner still resolves their own.
	if _, err := db.Table("", "stock", "li"); err != nil {
		t.Error(err)
	}
}

func TestDropTableRemovesTriggers(t *testing.T) {
	c := New()
	db, _ := c.CreateDatabase("d")
	if _, err := db.CreateTable("dbo", "stock", stockSchema()); err != nil {
		t.Fatal(err)
	}
	tr := &Trigger{Name: "tg", Owner: "dbo", Table: "stock", Operation: sqlparse.OpInsert,
		RawSQL: "create trigger tg on stock for insert as print 'x'"}
	if err := db.CreateTrigger(tr, "dbo"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TriggerFor("", "stock", "dbo", sqlparse.OpInsert); !ok {
		t.Fatal("trigger not registered")
	}
	if err := db.DropTable("", "stock", "dbo"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Trigger("", "tg", "dbo"); err == nil {
		t.Error("trigger survived table drop")
	}
	if err := db.DropTable("", "stock", "dbo"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestTriggerSilentOverwrite(t *testing.T) {
	// §2.2: "Each new trigger on a table for the same operation ...
	// overwrites the previous one. No warning message is given."
	c := New()
	db, _ := c.CreateDatabase("d")
	if _, err := db.CreateTable("dbo", "stock", stockSchema()); err != nil {
		t.Fatal(err)
	}
	t1 := &Trigger{Name: "t1", Owner: "dbo", Table: "stock", Operation: sqlparse.OpInsert,
		RawSQL: "create trigger t1 on stock for insert as print '1'"}
	t2 := &Trigger{Name: "t2", Owner: "dbo", Table: "stock", Operation: sqlparse.OpInsert,
		RawSQL: "create trigger t2 on stock for insert as print '2'"}
	if err := db.CreateTrigger(t1, "dbo"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTrigger(t2, "dbo"); err != nil {
		t.Fatalf("overwrite should be silent, got %v", err)
	}
	got, ok := db.TriggerFor("", "stock", "dbo", sqlparse.OpInsert)
	if !ok || got.Name != "t2" {
		t.Errorf("active trigger = %+v", got)
	}
	if _, err := db.Trigger("", "t1", "dbo"); err == nil {
		t.Error("overwritten trigger still resolvable by name")
	}
	// Different operation does not overwrite.
	t3 := &Trigger{Name: "t3", Owner: "dbo", Table: "stock", Operation: sqlparse.OpDelete,
		RawSQL: "create trigger t3 on stock for delete as print '3'"}
	if err := db.CreateTrigger(t3, "dbo"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TriggerFor("", "stock", "dbo", sqlparse.OpInsert); !ok {
		t.Error("insert trigger lost")
	}
	if _, ok := db.TriggerFor("", "stock", "dbo", sqlparse.OpDelete); !ok {
		t.Error("delete trigger missing")
	}
}

func TestDropTrigger(t *testing.T) {
	c := New()
	db, _ := c.CreateDatabase("d")
	_, _ = db.CreateTable("dbo", "stock", stockSchema())
	tr := &Trigger{Name: "tg", Owner: "dbo", Table: "stock", Operation: sqlparse.OpUpdate,
		RawSQL: "create trigger tg on stock for update as print 'x'"}
	if err := db.CreateTrigger(tr, "dbo"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTrigger("", "tg", "dbo"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TriggerFor("", "stock", "dbo", sqlparse.OpUpdate); ok {
		t.Error("trigger still fires after drop")
	}
	if err := db.DropTrigger("", "tg", "dbo"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestTriggerOnMissingTable(t *testing.T) {
	c := New()
	db, _ := c.CreateDatabase("d")
	tr := &Trigger{Name: "tg", Owner: "dbo", Table: "ghost", Operation: sqlparse.OpInsert}
	if err := db.CreateTrigger(tr, "dbo"); err == nil {
		t.Error("trigger on missing table accepted")
	}
}

func TestProcedures(t *testing.T) {
	c := New()
	db, _ := c.CreateDatabase("d")
	p := &Procedure{Name: "proc1", Owner: "sharma", RawSQL: "create procedure proc1 as print 'hi'"}
	if err := db.CreateProcedure(p); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateProcedure(p); err == nil {
		t.Error("duplicate procedure accepted")
	}
	if _, err := db.Procedure("", "proc1", "sharma"); err != nil {
		t.Error(err)
	}
	if _, err := db.Procedure("sharma", "PROC1", ""); err != nil {
		t.Error("case-insensitive proc lookup failed")
	}
	if err := db.DropProcedure("", "proc1", "sharma"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Procedure("", "proc1", "sharma"); err == nil {
		t.Error("dropped proc still resolvable")
	}
}

func TestDefaultOwnerAssignment(t *testing.T) {
	c := New()
	db, _ := c.CreateDatabase("d")
	_, _ = db.CreateTable("dbo", "t", stockSchema())
	p := &Procedure{Name: "p", RawSQL: "create procedure p as print 'x'"}
	if err := db.CreateProcedure(p); err != nil {
		t.Fatal(err)
	}
	if p.Owner != DefaultOwner {
		t.Errorf("proc owner = %q", p.Owner)
	}
	tr := &Trigger{Name: "tg", Table: "t", Operation: sqlparse.OpInsert,
		RawSQL: "create trigger tg on t for insert as print 'x'"}
	if err := db.CreateTrigger(tr, ""); err != nil {
		t.Fatal(err)
	}
	if tr.Owner != DefaultOwner {
		t.Errorf("trigger owner = %q", tr.Owner)
	}
}

func buildFullCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	db, err := c.CreateDatabase("sentineldb")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("sharma", "stock", stockSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewString("IBM"), sqltypes.NewFloat(100)}); err != nil {
		t.Fatal(err)
	}
	procSQL := "create procedure p_report as\nselect * from stock"
	stmts, err := sqlparse.ParseBatch(procSQL)
	if err != nil {
		t.Fatal(err)
	}
	cp := stmts[0].(*sqlparse.CreateProcedure)
	if err := db.CreateProcedure(&Procedure{
		Name: cp.Name.Name(), Owner: "sharma", Params: cp.Params, Body: cp.Body, RawSQL: procSQL,
	}); err != nil {
		t.Fatal(err)
	}
	trigSQL := "create trigger t_addStk on stock for insert as\nprint 'fired'"
	stmts, err = sqlparse.ParseBatch(trigSQL)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmts[0].(*sqlparse.CreateTrigger)
	if err := db.CreateTrigger(&Trigger{
		Name: ct.Name.Name(), Owner: "sharma", Table: ct.Table.Name(),
		Operation: ct.Operation, Body: ct.Body, RawSQL: trigSQL,
	}, "sharma"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := buildFullCatalog(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	db, err := c2.Database("sentineldb")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("sharma", "stock", "")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("rows lost: %d", tbl.Len())
	}
	p, err := db.Procedure("", "p_report", "sharma")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Body) != 1 {
		t.Errorf("proc body: %d statements", len(p.Body))
	}
	tr, ok := db.TriggerFor("", "stock", "sharma", sqlparse.OpInsert)
	if !ok || tr.Name != "t_addStk" {
		t.Errorf("trigger after load: %+v ok=%v", tr, ok)
	}
	if _, err := c2.Database("master"); err != nil {
		t.Error("master should always exist after load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := buildFullCatalog(t)
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := c2.Database("sentineldb")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.TableNames()); got != 1 {
		t.Errorf("tables after load: %d", got)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestLoadCorruptSnapshot(t *testing.T) {
	c := buildFullCatalog(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage!"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
