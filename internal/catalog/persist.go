package catalog

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/storage"
)

// Save writes the whole catalog (schemas, data, procedures, triggers) as a
// single snapshot stream. Procedures and triggers are stored as their
// CREATE source text and re-parsed on load, the same way the original
// server keeps them in syscomments.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	dbNames := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		dbNames = append(dbNames, n)
	}
	sort.Strings(dbNames)
	dbs := make([]*Database, len(dbNames))
	for i, n := range dbNames {
		dbs[i] = c.dbs[n]
	}
	c.mu.RUnlock()

	sw := storage.NewWriter(w)
	sw.WriteUint(uint64(len(dbs)))
	for _, db := range dbs {
		if err := db.save(sw); err != nil {
			return err
		}
	}
	return sw.Flush()
}

func (d *Database) save(sw *storage.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	sw.WriteString(d.name)

	keys := make([]object, 0, len(d.tables))
	for k := range d.tables {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].name < keys[j].name
	})
	sw.WriteUint(uint64(len(keys)))
	for _, k := range keys {
		sw.WriteString(d.owners[k])
		sw.WriteString(k.name)
		sw.WriteTable(d.tables[k])
	}

	pkeys := make([]object, 0, len(d.procs))
	for k := range d.procs {
		pkeys = append(pkeys, k)
	}
	sort.Slice(pkeys, func(i, j int) bool { return pkeys[i].name < pkeys[j].name })
	sw.WriteUint(uint64(len(pkeys)))
	for _, k := range pkeys {
		p := d.procs[k]
		sw.WriteString(p.Owner)
		sw.WriteString(p.RawSQL)
	}

	tkeys := make([]object, 0, len(d.triggers))
	for k := range d.triggers {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool { return tkeys[i].name < tkeys[j].name })
	sw.WriteUint(uint64(len(tkeys)))
	for _, k := range tkeys {
		tr := d.triggers[k]
		sw.WriteString(tr.Owner)
		sw.WriteString(tr.RawSQL)
	}
	return nil
}

// Load reads a snapshot stream written by Save, returning a fresh catalog.
func Load(r io.Reader) (*Catalog, error) {
	sr, err := storage.NewReader(r)
	if err != nil {
		return nil, err
	}
	c := &Catalog{dbs: make(map[string]*Database)}
	ndbs, err := sr.ReadUint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ndbs; i++ {
		db, err := loadDatabase(sr)
		if err != nil {
			return nil, err
		}
		c.dbs[lower(db.name)] = db
	}
	if _, ok := c.dbs["master"]; !ok {
		c.dbs["master"] = newDatabase("master")
	}
	return c, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if 'A' <= ch && ch <= 'Z' {
			b[i] = ch + 'a' - 'A'
		}
	}
	return string(b)
}

func loadDatabase(sr *storage.Reader) (*Database, error) {
	name, err := sr.ReadString()
	if err != nil {
		return nil, err
	}
	db := newDatabase(name)

	ntables, err := sr.ReadUint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ntables; i++ {
		owner, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		tname, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		tbl, err := sr.ReadTable()
		if err != nil {
			return nil, err
		}
		k := key(owner, tname)
		db.tables[k] = tbl
		db.owners[k] = owner
	}

	nprocs, err := sr.ReadUint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nprocs; i++ {
		owner, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		raw, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		stmts, err := sqlparse.ParseBatch(raw)
		if err != nil {
			return nil, fmt.Errorf("re-parsing stored procedure in %s: %v", name, err)
		}
		cp, ok := stmts[0].(*sqlparse.CreateProcedure)
		if !ok || len(stmts) != 1 {
			return nil, fmt.Errorf("stored procedure text in %s is not a CREATE PROCEDURE", name)
		}
		db.procs[key(owner, cp.Name.Name())] = &Procedure{
			Name: cp.Name.Name(), Owner: owner,
			Params: cp.Params, Body: cp.Body, RawSQL: raw,
		}
	}

	ntrig, err := sr.ReadUint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ntrig; i++ {
		owner, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		raw, err := sr.ReadString()
		if err != nil {
			return nil, err
		}
		stmts, err := sqlparse.ParseBatch(raw)
		if err != nil {
			return nil, fmt.Errorf("re-parsing trigger in %s: %v", name, err)
		}
		ct, ok := stmts[0].(*sqlparse.CreateTrigger)
		if !ok || len(stmts) != 1 {
			return nil, fmt.Errorf("trigger text in %s is not a CREATE TRIGGER", name)
		}
		tr := &Trigger{
			Name: ct.Name.Name(), Owner: owner, Table: ct.Table.Name(),
			Operation: ct.Operation, Body: ct.Body, RawSQL: raw,
		}
		db.triggers[key(owner, tr.Name)] = tr
		if tk, ok := resolve(db, db.tables, ct.Table.Owner(), tr.Table, owner); ok {
			ops := db.trigByTable[tk]
			if ops == nil {
				ops = make(map[sqlparse.TriggerOp]*Trigger)
				db.trigByTable[tk] = ops
			}
			ops[tr.Operation] = tr
		}
	}
	return db, nil
}

// SaveFile writes the catalog snapshot atomically to path (write to a temp
// file in the same directory, then rename).
func (c *Catalog) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ecasnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads a catalog snapshot from path.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
