package storage

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle with explicit durability: Sync must not
// return until previously written bytes are on stable storage. The
// checkpoint and WAL writers are programmed against this instead of *os.File
// so the crash harness can substitute an in-memory filesystem that models
// torn writes and lost unsynced data.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is a flat directory of files — everything the durability layer needs
// from a filesystem. Rename must be atomic with respect to crashes (the
// checkpoint writer's publish step relies on it), and SyncDir must make
// completed creates/renames/removes durable.
type FS interface {
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldName, newName string) error
	Remove(name string) error
	List() ([]string, error)
	SyncDir() error
}

// OSDir is the production FS: one real directory. The directory is created
// on first use.
type OSDir struct {
	Dir string
}

func (d OSDir) ensure() error { return os.MkdirAll(d.Dir, 0o755) }

// Create truncates or creates name inside the directory.
func (d OSDir) Create(name string) (File, error) {
	if err := d.ensure(); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(d.Dir, name))
}

// ReadFile reads the whole file.
func (d OSDir) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.Dir, name))
}

// Rename atomically replaces newName with oldName's content.
func (d OSDir) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(d.Dir, oldName), filepath.Join(d.Dir, newName))
}

// Remove deletes a file.
func (d OSDir) Remove(name string) error {
	return os.Remove(filepath.Join(d.Dir, name))
}

// List returns the directory's file names, sorted.
func (d OSDir) List() ([]string, error) {
	ents, err := os.ReadDir(d.Dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir fsyncs the directory itself, making renames and removals
// durable.
func (d OSDir) SyncDir() error {
	if err := d.ensure(); err != nil {
		return err
	}
	f, err := os.Open(d.Dir)
	if err != nil {
		return err
	}
	syncErr := f.Sync()
	closeErr := f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
