package storage

import (
	"bytes"
	"testing"
	"time"
)

func TestOSDirRoundTrip(t *testing.T) {
	fs := OSDir{Dir: t.TempDir() + "/ckpt"}
	f, err := fs.Create("wal-1.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("wal-1.tmp", "wal-1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "wal-1" {
		t.Fatalf("List = %v, want [wal-1]", names)
	}
	b, err := fs.ReadFile("wal-1")
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if err := fs.Remove("wal-1"); err != nil {
		t.Fatal(err)
	}
	if names, _ := fs.List(); len(names) != 0 {
		t.Fatalf("List after Remove = %v", names)
	}
}

func TestCodecIntAndTime(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	at := time.Date(2026, 7, 4, 12, 0, 0, 123456789, time.UTC)
	w.WriteInt(-42)
	w.WriteTime(at)
	w.WriteTime(time.Time{})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := r.ReadInt(); err != nil || n != -42 {
		t.Fatalf("ReadInt = %d, %v", n, err)
	}
	got, err := r.ReadTime()
	if err != nil || !got.Equal(at) {
		t.Fatalf("ReadTime = %v, %v; want %v", got, err, at)
	}
	z, err := r.ReadTime()
	if err != nil || !z.IsZero() {
		t.Fatalf("zero ReadTime = %v, %v", z, err)
	}
}
