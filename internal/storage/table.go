// Package storage provides the heap-table storage layer of the SQL server
// substrate: concurrency-safe in-memory tables plus a binary snapshot codec
// used for database persistence, which is what makes the agent's ECA rules
// durable "using the native database functionality" as the paper requires.
package storage

import (
	"fmt"
	"sync"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// Table is a heap of rows with a schema. All methods are safe for
// concurrent use.
type Table struct {
	mu     sync.RWMutex
	schema *sqltypes.Schema
	rows   []sqltypes.Row
}

// NewTable creates an empty table with a copy of the given schema.
func NewTable(schema *sqltypes.Schema) *Table {
	return &Table{schema: schema.Clone()}
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() *sqltypes.Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema.Clone()
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row after validating arity, NOT NULL constraints, and
// coercing each value to the column type.
func (t *Table) Insert(row sqltypes.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	conv, err := t.prepareRowLocked(row)
	if err != nil {
		return err
	}
	t.rows = append(t.rows, conv)
	return nil
}

// InsertMany appends several rows atomically: either all rows are inserted
// or none.
func (t *Table) InsertMany(rows []sqltypes.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	conv := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		c, err := t.prepareRowLocked(r)
		if err != nil {
			return err
		}
		conv[i] = c
	}
	t.rows = append(t.rows, conv...)
	return nil
}

func (t *Table) prepareRowLocked(row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != t.schema.Len() {
		return nil, fmt.Errorf("row has %d values, table has %d columns", len(row), t.schema.Len())
	}
	conv := make(sqltypes.Row, len(row))
	for i, v := range row {
		col := t.schema.Column(i)
		if v.IsNull() {
			if !col.Nullable {
				return nil, fmt.Errorf("column %q does not allow NULL", col.Name)
			}
			conv[i] = sqltypes.Null
			continue
		}
		cv, err := v.Convert(col.Type)
		if err != nil {
			return nil, fmt.Errorf("column %q: %v", col.Name, err)
		}
		conv[i] = cv
	}
	return conv, nil
}

// Scan calls fn for every row, stopping early if fn returns false. The
// callback receives a clone and may retain it. The read lock is held for
// the duration of the scan (Update rewrites row slots in place), so fn
// must not call methods of the same table.
func (t *Table) Scan(fn func(row sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if !fn(r.Clone()) {
			return
		}
	}
}

// Rows returns a deep copy of all rows.
func (t *Table) Rows() []sqltypes.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]sqltypes.Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.Clone()
	}
	return out
}

// Update rewrites every row matching pred with the result of set, returning
// the old and new images of the affected rows (the engine feeds these to
// the trigger machinery as the deleted/inserted pseudo-tables).
func (t *Table) Update(pred func(sqltypes.Row) (bool, error), set func(sqltypes.Row) (sqltypes.Row, error)) (old, new []sqltypes.Row, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	type change struct {
		idx int
		row sqltypes.Row
	}
	var changes []change
	for i, r := range t.rows {
		match, err := pred(r.Clone())
		if err != nil {
			return nil, nil, err
		}
		if !match {
			continue
		}
		updated, err := set(r.Clone())
		if err != nil {
			return nil, nil, err
		}
		conv, err := t.prepareRowLocked(updated)
		if err != nil {
			return nil, nil, err
		}
		changes = append(changes, change{idx: i, row: conv})
	}
	for _, c := range changes {
		old = append(old, t.rows[c.idx])
		t.rows[c.idx] = c.row
		new = append(new, c.row.Clone())
	}
	return old, new, nil
}

// Delete removes every row matching pred, returning the removed rows.
func (t *Table) Delete(pred func(sqltypes.Row) (bool, error)) ([]sqltypes.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []sqltypes.Row
	kept := make([]sqltypes.Row, 0, len(t.rows))
	for _, r := range t.rows {
		match, err := pred(r.Clone())
		if err != nil {
			// kept is a fresh slice, so the table is untouched on error.
			return nil, err
		}
		if match {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	return removed, nil
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
}

// AddColumn appends a column to the schema, filling existing rows with
// NULL. Matching the server, added columns must be nullable.
func (t *Table) AddColumn(col sqltypes.Column) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !col.Nullable {
		return fmt.Errorf("column %q added to existing table must allow NULL", col.Name)
	}
	if err := t.schema.AddColumn(col); err != nil {
		return err
	}
	for i, r := range t.rows {
		t.rows[i] = append(r, sqltypes.Null)
	}
	return nil
}

// ReplaceAll atomically swaps the table contents. Rows are validated like
// Insert. Used by the snapshot loader.
func (t *Table) ReplaceAll(rows []sqltypes.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	conv := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		c, err := t.prepareRowLocked(r)
		if err != nil {
			return err
		}
		conv[i] = c
	}
	t.rows = conv
	return nil
}
