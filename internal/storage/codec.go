package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

// Binary snapshot codec. The format is self-describing and versioned:
//
//	magic "ECASNAP1"
//	table := schema rows
//	schema := ncols { name type length nullable }
//	rows := nrows { ncells { kind payload } }
//
// Integers are unsigned varints; strings are length-prefixed; times are
// UnixMilli int64s (zig-zag encoded). NULL cells carry only the kind byte.

const snapMagic = "ECASNAP1"

// Writer encodes tables into a stream.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter starts a snapshot stream on w, writing the magic header.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: bufio.NewWriter(w)}
	sw.writeBytes([]byte(snapMagic))
	return sw
}

func (w *Writer) writeBytes(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

func (w *Writer) writeUvarint(n uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.writeBytes(buf[:binary.PutUvarint(buf[:], n)])
}

func (w *Writer) writeVarint(n int64) {
	var buf [binary.MaxVarintLen64]byte
	w.writeBytes(buf[:binary.PutVarint(buf[:], n)])
}

func (w *Writer) writeString(s string) {
	w.writeUvarint(uint64(len(s)))
	w.writeBytes([]byte(s))
}

func (w *Writer) writeByte(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(b)
}

// WriteString writes a free-form string record (used by the catalog for
// object names and procedure/trigger source text).
func (w *Writer) WriteString(s string) { w.writeString(s) }

// WriteUint writes an unsigned integer record.
func (w *Writer) WriteUint(n uint64) { w.writeUvarint(n) }

// WriteInt writes a signed integer record (zig-zag varint).
func (w *Writer) WriteInt(n int64) { w.writeVarint(n) }

// WriteTime writes a timestamp record at nanosecond precision (the
// checkpoint codec needs occurrence times to round-trip exactly — they
// feed action dedup keys). The zero time is encoded as a zero nanosecond
// count and restored as the zero time.
func (w *Writer) WriteTime(t time.Time) {
	if t.IsZero() {
		w.writeVarint(0)
		return
	}
	w.writeVarint(t.UnixNano())
}

// WriteTable encodes a table snapshot.
func (w *Writer) WriteTable(t *Table) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	w.writeUvarint(uint64(t.schema.Len()))
	for _, c := range t.schema.Columns {
		w.writeString(c.Name)
		w.writeByte(byte(c.Type.Kind))
		w.writeUvarint(uint64(c.Type.Length))
		if c.Nullable {
			w.writeByte(1)
		} else {
			w.writeByte(0)
		}
	}
	w.writeUvarint(uint64(len(t.rows)))
	for _, r := range t.rows {
		w.writeUvarint(uint64(len(r)))
		for _, v := range r {
			w.writeValue(v)
		}
	}
}

func (w *Writer) writeValue(v sqltypes.Value) {
	w.writeByte(byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
	case sqltypes.KindInt, sqltypes.KindBit:
		w.writeVarint(v.Int())
	case sqltypes.KindFloat:
		w.writeUvarint(math.Float64bits(v.Float()))
	case sqltypes.KindChar, sqltypes.KindVarChar, sqltypes.KindText:
		w.writeString(v.Str())
	case sqltypes.KindDateTime:
		w.writeVarint(v.Time().UnixMilli())
	}
}

// Flush flushes buffered output and returns any accumulated error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a snapshot stream written by Writer.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the magic header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("reading snapshot magic: %w", err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("bad snapshot magic %q", magic)
	}
	return &Reader{r: br}, nil
}

// ReadString reads a string record.
func (r *Reader) ReadString() (string, error) {
	n, err := binary.ReadUvarint(r.r)
	if err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("string record too large (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadUint reads an unsigned integer record.
func (r *Reader) ReadUint() (uint64, error) { return binary.ReadUvarint(r.r) }

// ReadInt reads a signed integer record.
func (r *Reader) ReadInt() (int64, error) { return binary.ReadVarint(r.r) }

// ReadTime reads a timestamp record written by WriteTime.
func (r *Reader) ReadTime() (time.Time, error) {
	ns, err := binary.ReadVarint(r.r)
	if err != nil || ns == 0 {
		return time.Time{}, err
	}
	return time.Unix(0, ns).UTC(), nil
}

// ReadTable decodes one table snapshot.
func (r *Reader) ReadTable() (*Table, error) {
	ncols, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, err
	}
	if ncols > 4096 {
		return nil, fmt.Errorf("implausible column count %d", ncols)
	}
	schema := &sqltypes.Schema{}
	for i := uint64(0); i < ncols; i++ {
		name, err := r.ReadString()
		if err != nil {
			return nil, err
		}
		kindB, err := r.r.ReadByte()
		if err != nil {
			return nil, err
		}
		length, err := binary.ReadUvarint(r.r)
		if err != nil {
			return nil, err
		}
		nullB, err := r.r.ReadByte()
		if err != nil {
			return nil, err
		}
		schema.Columns = append(schema.Columns, sqltypes.Column{
			Name:     name,
			Type:     sqltypes.Type{Kind: sqltypes.Kind(kindB), Length: int(length)},
			Nullable: nullB == 1,
		})
	}
	nrows, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	rows := make([]sqltypes.Row, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		ncells, err := binary.ReadUvarint(r.r)
		if err != nil {
			return nil, err
		}
		if ncells != ncols {
			return nil, fmt.Errorf("row %d has %d cells, schema has %d columns", i, ncells, ncols)
		}
		row := make(sqltypes.Row, ncells)
		for j := uint64(0); j < ncells; j++ {
			v, err := r.readValue()
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	// Bypass validation: the snapshot is trusted to already satisfy the
	// schema it was written with.
	t.rows = rows
	return t, nil
}

func (r *Reader) readValue() (sqltypes.Value, error) {
	kindB, err := r.r.ReadByte()
	if err != nil {
		return sqltypes.Null, err
	}
	switch sqltypes.Kind(kindB) {
	case sqltypes.KindNull:
		return sqltypes.Null, nil
	case sqltypes.KindInt:
		n, err := binary.ReadVarint(r.r)
		return sqltypes.NewInt(n), err
	case sqltypes.KindBit:
		n, err := binary.ReadVarint(r.r)
		return sqltypes.NewBit(n != 0), err
	case sqltypes.KindFloat:
		bits, err := binary.ReadUvarint(r.r)
		return sqltypes.NewFloat(math.Float64frombits(bits)), err
	case sqltypes.KindChar, sqltypes.KindVarChar:
		s, err := r.ReadString()
		return sqltypes.NewString(s), err
	case sqltypes.KindText:
		s, err := r.ReadString()
		return sqltypes.NewText(s), err
	case sqltypes.KindDateTime:
		ms, err := binary.ReadVarint(r.r)
		return sqltypes.NewDateTime(time.UnixMilli(ms).UTC()), err
	default:
		return sqltypes.Null, fmt.Errorf("unknown value kind %d in snapshot", kindB)
	}
}
