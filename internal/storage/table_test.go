package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
)

func stockSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Column{Name: "symbol", Type: sqltypes.VarChar(10)},
		sqltypes.Column{Name: "price", Type: sqltypes.Float, Nullable: true},
		sqltypes.Column{Name: "vol", Type: sqltypes.Int, Nullable: true},
	)
}

func row(sym string, price float64, vol int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewString(sym), sqltypes.NewFloat(price), sqltypes.NewInt(vol)}
}

func TestInsertAndScan(t *testing.T) {
	tbl := NewTable(stockSchema())
	if err := tbl.Insert(row("IBM", 100, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(row("T", 20, 5)); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	var seen []string
	tbl.Scan(func(r sqltypes.Row) bool {
		seen = append(seen, r[0].Str())
		return true
	})
	if len(seen) != 2 || seen[0] != "IBM" || seen[1] != "T" {
		t.Errorf("scan order: %v", seen)
	}
	// Early stop.
	count := 0
	tbl.Scan(func(r sqltypes.Row) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := NewTable(stockSchema())
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewString("X")}); err == nil {
		t.Error("arity violation accepted")
	}
	if err := tbl.Insert(sqltypes.Row{sqltypes.Null, sqltypes.Null, sqltypes.Null}); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	// Coercion: int price should become float; long symbol truncated.
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewString("VERYLONGSYMBOL"), sqltypes.NewInt(5), sqltypes.Null}); err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if rows[0][0].Str() != "VERYLONGSY" {
		t.Errorf("truncation: %q", rows[0][0].Str())
	}
	if rows[0][1].Kind() != sqltypes.KindFloat {
		t.Errorf("coercion: %v", rows[0][1].Kind())
	}
}

func TestInsertManyAtomic(t *testing.T) {
	tbl := NewTable(stockSchema())
	err := tbl.InsertMany([]sqltypes.Row{
		row("A", 1, 1),
		{sqltypes.Null, sqltypes.Null, sqltypes.Null}, // violates NOT NULL
	})
	if err == nil {
		t.Fatal("batch with bad row accepted")
	}
	if tbl.Len() != 0 {
		t.Errorf("partial insert: %d rows", tbl.Len())
	}
	if err := tbl.InsertMany([]sqltypes.Row{row("A", 1, 1), row("B", 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestUpdate(t *testing.T) {
	tbl := NewTable(stockSchema())
	for i := 0; i < 5; i++ {
		if err := tbl.Insert(row(fmt.Sprintf("S%d", i), float64(i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	old, new, err := tbl.Update(
		func(r sqltypes.Row) (bool, error) { return r[1].Float() >= 3, nil },
		func(r sqltypes.Row) (sqltypes.Row, error) {
			r[1] = sqltypes.NewFloat(r[1].Float() * 2)
			return r, nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 2 || len(new) != 2 {
		t.Fatalf("affected %d/%d", len(old), len(new))
	}
	if old[0][1].Float() != 3 || new[0][1].Float() != 6 {
		t.Errorf("old/new images: %v %v", old[0], new[0])
	}
	// Update with failing setter leaves the table unchanged.
	before := tbl.Rows()
	_, _, err = tbl.Update(
		func(r sqltypes.Row) (bool, error) { return true, nil },
		func(r sqltypes.Row) (sqltypes.Row, error) { return nil, fmt.Errorf("boom") },
	)
	if err == nil {
		t.Fatal("setter error swallowed")
	}
	after := tbl.Rows()
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatal("failed update mutated the table")
		}
	}
}

func TestDelete(t *testing.T) {
	tbl := NewTable(stockSchema())
	for i := 0; i < 6; i++ {
		if err := tbl.Insert(row(fmt.Sprintf("S%d", i), float64(i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := tbl.Delete(func(r sqltypes.Row) (bool, error) { return r[2].Int()%2 == 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 || tbl.Len() != 3 {
		t.Fatalf("removed %d, left %d", len(removed), tbl.Len())
	}
	// Predicate error leaves table intact.
	_, err = tbl.Delete(func(r sqltypes.Row) (bool, error) { return false, fmt.Errorf("boom") })
	if err == nil || tbl.Len() != 3 {
		t.Errorf("error delete: err=%v len=%d", err, tbl.Len())
	}
}

func TestAddColumn(t *testing.T) {
	tbl := NewTable(stockSchema())
	if err := tbl.Insert(row("A", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn(sqltypes.Column{Name: "vNo", Type: sqltypes.Int, Nullable: true}); err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows[0]) != 4 || !rows[0][3].IsNull() {
		t.Errorf("backfill: %v", rows[0])
	}
	if err := tbl.AddColumn(sqltypes.Column{Name: "x", Type: sqltypes.Int, Nullable: false}); err == nil {
		t.Error("NOT NULL add to non-empty table accepted")
	}
	if err := tbl.AddColumn(sqltypes.Column{Name: "vno", Type: sqltypes.Int, Nullable: true}); err == nil {
		t.Error("case-insensitive duplicate column accepted")
	}
}

func TestTruncateAndReplaceAll(t *testing.T) {
	tbl := NewTable(stockSchema())
	_ = tbl.Insert(row("A", 1, 1))
	tbl.Truncate()
	if tbl.Len() != 0 {
		t.Fatal("truncate failed")
	}
	if err := tbl.ReplaceAll([]sqltypes.Row{row("B", 2, 2), row("C", 3, 3)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatal("replace failed")
	}
	if err := tbl.ReplaceAll([]sqltypes.Row{{sqltypes.Null, sqltypes.Null, sqltypes.Null}}); err == nil {
		t.Error("invalid replacement accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tbl := NewTable(stockSchema())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tbl.Insert(row(fmt.Sprintf("G%d", g), float64(i), int64(i)))
				tbl.Scan(func(r sqltypes.Row) bool { return true })
				if i%10 == 0 {
					_, _, _ = tbl.Update(
						func(r sqltypes.Row) (bool, error) { return r[2].Int() == int64(i), nil },
						func(r sqltypes.Row) (sqltypes.Row, error) { return r, nil },
					)
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 800 {
		t.Errorf("Len = %d, want 800", tbl.Len())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "a", Type: sqltypes.Int, Nullable: true},
		sqltypes.Column{Name: "b", Type: sqltypes.VarChar(30), Nullable: true},
		sqltypes.Column{Name: "c", Type: sqltypes.Float, Nullable: true},
		sqltypes.Column{Name: "d", Type: sqltypes.DateTime, Nullable: true},
		sqltypes.Column{Name: "e", Type: sqltypes.Bit, Nullable: true},
		sqltypes.Column{Name: "f", Type: sqltypes.Text, Nullable: true},
	)
	tbl := NewTable(schema)
	now := time.Now().UTC()
	rows := []sqltypes.Row{
		{sqltypes.NewInt(-42), sqltypes.NewString("hello 'world'"), sqltypes.NewFloat(3.14159), sqltypes.NewDateTime(now), sqltypes.NewBit(true), sqltypes.NewText("long text\nwith newline")},
		{sqltypes.Null, sqltypes.Null, sqltypes.Null, sqltypes.Null, sqltypes.Null, sqltypes.Null},
		{sqltypes.NewInt(1 << 40), sqltypes.NewString(""), sqltypes.NewFloat(-0.0), sqltypes.NewDateTime(time.UnixMilli(0).UTC()), sqltypes.NewBit(false), sqltypes.NewText("")},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteString("tablename")
	w.WriteUint(7)
	w.WriteTable(tbl)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := r.ReadString(); s != "tablename" {
		t.Errorf("string record: %q", s)
	}
	if n, _ := r.ReadUint(); n != 7 {
		t.Errorf("uint record: %d", n)
	}
	got, err := r.ReadTable()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("row count %d vs %d", got.Len(), tbl.Len())
	}
	gotRows, wantRows := got.Rows(), tbl.Rows()
	for i := range wantRows {
		if !gotRows[i].Equal(wantRows[i]) {
			t.Errorf("row %d: got %v want %v", i, gotRows[i], wantRows[i])
		}
	}
	gs, ws := got.Schema(), tbl.Schema()
	if gs.String() != ws.String() {
		t.Errorf("schema: got %s want %s", gs, ws)
	}
}

func TestSnapshotBadInput(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("WRONGMAG"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated table data.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tbl := NewTable(stockSchema())
	_ = tbl.Insert(row("A", 1, 1))
	w.WriteTable(tbl)
	_ = w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadTable(); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestSnapshotPropertyRoundTrip(t *testing.T) {
	schema := sqltypes.NewSchema(
		sqltypes.Column{Name: "n", Type: sqltypes.Int, Nullable: true},
		sqltypes.Column{Name: "s", Type: sqltypes.Text, Nullable: true},
	)
	f := func(n int64, s string) bool {
		tbl := NewTable(schema)
		if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(n), sqltypes.NewText(s)}); err != nil {
			return false
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.WriteTable(tbl)
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadTable()
		if err != nil {
			return false
		}
		rows := got.Rows()
		return len(rows) == 1 && rows[0][0].Int() == n && rows[0][1].Str() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
