package server

import (
	"net"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/tds"
)

// TestGarbageBytesDoNotWedgeServer: a connection that sends junk is
// dropped without affecting other clients.
func TestGarbageBytesDoNotWedgeServer(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	_, _ = conn.Read(buf) // server replies or closes; either is fine
	conn.Close()

	// The server still serves real clients.
	c, err := client.Connect(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.MustExec("create database ok"); err != nil {
		t.Fatal(err)
	}
}

// TestWrongFirstPacket: a LANGUAGE packet before LOGIN is rejected.
func TestWrongFirstPacket(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := tds.WritePacket(conn, tds.MarshalLanguage("select 1")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	pkt, err := tds.ReadPacket(conn)
	if err == nil {
		ack, aerr := tds.UnmarshalLoginAck(pkt)
		if aerr == nil && ack.OK {
			t.Error("server accepted a session without LOGIN")
		}
	}
}

// TestClientDisconnectMidSession: an abrupt client disconnect leaves the
// server healthy.
func TestClientDisconnectMidSession(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MustExec("create database d"); err != nil {
		t.Fatal(err)
	}
	c.Close() // abrupt, mid-session

	c2, err := client.Connect(srv.Addr(), client.Options{Database: "d"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.MustExec("create table t (a int null)"); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedPacketRejected: a huge declared length is refused before
// allocation.
func TestOversizedPacketRejected(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// type byte + 4-byte length of ~4GB.
	if _, err := conn.Write([]byte{0x01, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err == nil && n > 0 {
		// A reply is acceptable as long as the server did not crash.
		t.Logf("server replied %d bytes", n)
	}
	c, err := client.Connect(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
