package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/tds"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	srv := New(engine.New(catalog.New()))
	srv.Logf = func(string, ...any) {}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestLoginAndExec(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr(), client.Options{User: "sharma"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.MustExec("create database db"); err != nil {
		t.Fatal(err)
	}
	if err := c.MustExec("use db create table t (a int null)"); err != nil {
		t.Fatal(err)
	}
	if err := c.MustExec("insert t values (1) insert t values (2)"); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query("select a from t order by a desc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || rs.Rows[0][0].Int() != 2 {
		t.Errorf("rows: %v", rs.Rows)
	}
}

func TestLoginWithDatabase(t *testing.T) {
	srv := startServer(t)
	seed, err := client.Connect(srv.Addr(), client.Options{User: "sa"})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.MustExec("create database appdb"); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	c, err := client.Connect(srv.Addr(), client.Options{User: "sa", Database: "appdb"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Query("select db_name()")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Str() != "appdb" {
		t.Errorf("db: %v", rs.Rows[0])
	}
	// Login to missing database fails cleanly.
	if _, err := client.Connect(srv.Addr(), client.Options{User: "sa", Database: "missing"}); err == nil {
		t.Error("login to missing db succeeded")
	}
}

func TestServerErrorPropagation(t *testing.T) {
	srv := startServer(t)
	c, err := client.Connect(srv.Addr(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("select * from nonexistent")
	var se *tds.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want ServerError, got %v", err)
	}
	// Connection still usable after an error.
	if err := c.MustExec("create database ok"); err != nil {
		t.Errorf("post-error exec: %v", err)
	}
}

func TestMessagesAndPrint(t *testing.T) {
	srv := startServer(t)
	c, _ := client.Connect(srv.Addr(), client.Options{})
	defer c.Close()
	msgs, err := c.Messages("print 'one' print 'two'")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0] != "one" || msgs[1] != "two" {
		t.Errorf("messages: %v", msgs)
	}
}

func TestTriggerOverWire(t *testing.T) {
	srv := startServer(t)
	c, _ := client.Connect(srv.Addr(), client.Options{User: "sharma"})
	defer c.Close()
	if err := c.MustExec(`create database db
go
use db
create table stock (symbol varchar(10), price float null)
go
create trigger tg on stock for insert as
print 'trigger fired'
select * from inserted
go`); err != nil {
		t.Fatal(err)
	}
	results, err := c.Exec("use db insert stock values ('IBM', 1)")
	if err != nil {
		t.Fatal(err)
	}
	var sawMsg, sawRow bool
	for _, rs := range results {
		for _, m := range rs.Messages {
			if m == "trigger fired" {
				sawMsg = true
			}
		}
		if rs.Schema != nil && len(rs.Rows) == 1 {
			sawRow = true
		}
	}
	if !sawMsg || !sawRow {
		t.Errorf("trigger output over wire: msg=%v row=%v (%d sets)", sawMsg, sawRow, len(results))
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t)
	setup, _ := client.Connect(srv.Addr(), client.Options{User: "sa"})
	if err := setup.MustExec("create database db use db create table t (g int null, i int null)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const clients, rows = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Connect(srv.Addr(), client.Options{User: "sa", Database: "db"})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < rows; i++ {
				if err := c.MustExec(fmt.Sprintf("insert t values (%d, %d)", g, i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, _ := client.Connect(srv.Addr(), client.Options{User: "sa", Database: "db"})
	defer c.Close()
	rs, err := c.Query("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int() != clients*rows {
		t.Errorf("count = %v, want %d", rs.Rows[0][0], clients*rows)
	}
}

func TestCheckpointAndReload(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "server.snap")

	srv := startServer(t)
	srv.SnapshotPath = snap
	c, _ := client.Connect(srv.Addr(), client.Options{User: "sa"})
	if err := c.MustExec("create database db use db create table t (a int null) insert t values (7)"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	cat, err := catalog.LoadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(engine.New(cat))
	srv2.Logf = func(string, ...any) {}
	if err := srv2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	c2, err := client.Connect(srv2.Addr(), client.Options{User: "sa", Database: "db"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rs, err := c2.Query("select a from t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 7 {
		t.Errorf("restored rows: %v", rs.Rows)
	}
}

func TestCloseIdempotentAndConnectAfterClose(t *testing.T) {
	srv := startServer(t)
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Connect(addr, client.Options{}); err == nil {
		t.Error("connect after close succeeded")
	}
}
