package server

import (
	"fmt"
	"sync"
	"testing"

	"github.com/activedb/ecaagent/internal/client"
)

// The SQL-backed fencing authority (cluster.SQLAuthority) rests on one
// property of this server: a guarded update — `update ... where epoch = N`
// — is a compare-and-swap. When two would-be primaries race the same
// read epoch over real connections, exactly one update may report a row
// affected; the loser must see 0 and retry against the new value. This
// pins that property where it is provided, under concurrency, over TCP.
func TestEpochGuardedUpdateIsCompareAndSwap(t *testing.T) {
	srv := startServer(t)
	seed, err := client.Connect(srv.Addr(), client.Options{User: "sa"})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	if err := seed.MustExec("create database ecacluster"); err != nil {
		t.Fatal(err)
	}
	if err := seed.MustExec("use ecacluster create table syseca_epoch (epoch int null, holder varchar(64) null, expires int null)"); err != nil {
		t.Fatal(err)
	}
	if err := seed.MustExec("use ecacluster insert syseca_epoch values (0, '', 0)"); err != nil {
		t.Fatal(err)
	}

	const racers = 8
	const rounds = 5
	for round := 0; round < rounds; round++ {
		conns := make([]*client.Conn, racers)
		for i := range conns {
			c, err := client.Connect(srv.Addr(), client.Options{User: "sa", Database: "ecacluster"})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			conns[i] = c
		}

		// Everyone reads the same current epoch, then races the same CAS.
		rs, err := conns[0].Query("select epoch from syseca_epoch")
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 1 {
			t.Fatalf("round %d: %d epoch rows, want 1", round, len(rs.Rows))
		}
		cur := rs.Rows[0][0].Int()

		affected := make([]int, racers)
		var wg sync.WaitGroup
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c *client.Conn) {
				defer wg.Done()
				results, err := c.Exec(fmt.Sprintf(
					"update syseca_epoch set epoch = %d, holder = 'node-%d', expires = 0 where epoch = %d",
					cur+1, i, cur))
				if err != nil {
					t.Errorf("racer %d: %v", i, err)
					return
				}
				for _, r := range results {
					affected[i] += r.RowsAffected
				}
			}(i, c)
		}
		wg.Wait()

		winners := 0
		for i, n := range affected {
			switch n {
			case 0:
			case 1:
				winners++
			default:
				t.Fatalf("round %d: racer %d affected %d rows", round, i, n)
			}
		}
		if winners != 1 {
			t.Fatalf("round %d: %d CAS winners for epoch %d -> %d, want exactly 1 (affected: %v)",
				round, winners, cur, cur+1, affected)
		}

		// The row advanced exactly once and names the single winner.
		rs, err = conns[0].Query("select epoch from syseca_epoch")
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Rows[0][0].Int(); got != cur+1 {
			t.Fatalf("round %d: epoch after race = %d, want %d", round, got, cur+1)
		}
	}
}
