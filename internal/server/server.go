// Package server exposes the SQL engine over TCP using the tds protocol —
// the reproduction's stand-in for the Sybase SQL Server process. The ECA
// agent connects to it exactly the way any client does.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/tds"
)

// Server serves the tds protocol over TCP on top of an engine.
type Server struct {
	eng *engine.Engine

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// SnapshotPath, when set, is written on Checkpoint().
	SnapshotPath string
	// Logf receives diagnostics; defaults to log.Printf. Set to a no-op in
	// tests.
	Logf func(format string, args ...any)
}

// New creates a server over the engine.
func New(eng *engine.Engine) *Server {
	return &Server{
		eng:   eng,
		conns: make(map[net.Conn]struct{}),
		Logf:  log.Printf,
	}
}

// Engine returns the underlying engine.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Listen binds the given address ("127.0.0.1:0" for an ephemeral port) and
// starts accepting connections in a background goroutine.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server is closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound address, or "" before Listen.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and closes all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Checkpoint persists the catalog snapshot if SnapshotPath is configured.
func (s *Server) Checkpoint() error {
	if s.SnapshotPath == "" {
		return nil
	}
	return s.eng.Catalog().SaveFile(s.SnapshotPath)
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// Login handshake.
	pkt, err := tds.ReadPacket(conn)
	if err != nil {
		return
	}
	login, err := tds.UnmarshalLogin(pkt)
	if err != nil {
		_ = tds.WritePacket(conn, tds.MarshalLoginAck(tds.LoginAck{Message: err.Error()}))
		return
	}
	sess := s.eng.NewSession(login.User)
	if login.Database != "" {
		if err := sess.Use(login.Database); err != nil {
			_ = tds.WritePacket(conn, tds.MarshalLoginAck(tds.LoginAck{Message: err.Error()}))
			return
		}
	}
	if err := tds.WritePacket(conn, tds.MarshalLoginAck(tds.LoginAck{OK: true, Message: "login succeeded"})); err != nil {
		return
	}

	// Request loop.
	for {
		pkt, err := tds.ReadPacket(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("server: read: %v", err)
			}
			return
		}
		sql, err := tds.UnmarshalLanguage(pkt)
		if err != nil {
			_ = tds.WriteResults(conn, nil, fmt.Errorf("protocol error: %v", err))
			continue
		}
		results, execErr := sess.ExecScript(sql)
		if err := tds.WriteResults(conn, results, execErr); err != nil {
			return
		}
	}
}
