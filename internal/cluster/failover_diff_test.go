package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// The failover-differential suite: for every Snoop operator under every
// parameter context, the same workload is driven twice — once against a
// crash-free single-node oracle, once against a two-node cluster whose
// primary is killed mid-run at a named crash point (the agent's seven
// durability points plus the mid-replication windows ShipFS exposes).
// The standby detects the silence on a deterministic clock, wins the
// missed-heartbeat quorum, promotes within the configured deadline, and
// finishes the workload. The promoted node must produce exactly the
// oracle's occurrence set and exactly the oracle's action multiset:
// failover loses nothing and double-fires nothing.

var foClockBase = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

const (
	foInterval = 500 * time.Millisecond
	foMisses   = 3
	// foPromoteDeadline bounds crash-to-promotion in *control* time: the
	// miss hysteresis plus one interval of slack. Asserted on the manual
	// clock, so it is exact, not a race against the scheduler.
	foPromoteDeadline = (foMisses + 1) * foInterval
)

// foActionRecorder captures rule-action executions at the upstream Exec
// level, surviving agent restarts and failovers.
type foActionRecorder struct {
	mu      sync.Mutex
	batches []string
}

func foIsActionBatch(b string) bool {
	for _, line := range strings.Split(b, "\n") {
		if strings.HasPrefix(line, "execute ") {
			return true
		}
	}
	return false
}

func (r *foActionRecorder) record(batch string) {
	if !foIsActionBatch(batch) {
		return
	}
	r.mu.Lock()
	r.batches = append(r.batches, batch)
	r.mu.Unlock()
}

func (r *foActionRecorder) snapshot() []string {
	r.mu.Lock()
	out := append([]string(nil), r.batches...)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

type foRecordingUpstream struct {
	up  agent.Upstream
	rec *foActionRecorder
}

func (u foRecordingUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	rs, err := u.up.Exec(sql)
	if err == nil {
		u.rec.record(sql)
	}
	return rs, err
}

func (u foRecordingUpstream) Close() error { return u.up.Close() }

func foRecordingDialer(eng *engine.Engine, rec *foActionRecorder) agent.UpstreamDialer {
	inner := agent.LocalDialer(eng)
	return func(user, db string) (agent.Upstream, error) {
		up, err := inner(user, db)
		if err != nil {
			return nil, err
		}
		return foRecordingUpstream{up: up, rec: rec}, nil
	}
}

// foOccRecorder collects the primitive-occurrence set keyed (event, vNo);
// replay re-forwards records, so set semantics absorb the duplicates.
type foOccRecorder struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (r *foOccRecorder) add(p led.Primitive) {
	r.mu.Lock()
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	r.seen[fmt.Sprintf("%s|%d", p.Event, p.VNo)] = true
	r.mu.Unlock()
}

func (r *foOccRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.seen))
	for k := range r.seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type foStep struct {
	advance time.Duration
	insert  string
	ckpt    bool
}

var foScript = []foStep{
	{advance: time.Second, insert: "ta"},
	{advance: time.Second, insert: "tb"},
	{ckpt: true},
	{advance: time.Second, insert: "tc"},
	{advance: time.Second, insert: "ta"},
	{insert: "tb"},
	{advance: 2 * time.Second, insert: "tc"},
	{ckpt: true},
	{advance: time.Second, insert: "ta"},
	{insert: "tb"},
	{insert: "tc"},
	{advance: 5 * time.Second},
}

var foOperators = []struct{ name, expr string }{
	{"or", "ea | eb"},
	{"and", "ea ^ eb"},
	{"seq", "ea ; eb"},
	{"not", "not(ea, eb, ec2)"},
	{"aperiodic", "A(ea, eb, ec2)"},
	{"aperiodic-star", "A*(ea, eb, ec2)"},
	{"periodic", "P(ea, [2 sec], ec2)"},
	{"periodic-star", "P*(ea, [2 sec], ec2)"},
	{"plus", "ea plus [3 sec]"},
	{"temporal", "[2030-01-01 00:00:07]"},
}

var foContexts = []string{"RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"}

// foCrashes arms the agent's seven durability crash points plus the
// mid-replication windows: between a local occurrence append and its ship
// (repl.preShip.occ — the standby must gap-fill via resync), just after
// (repl.postShip.occ — the standby must dedup the replayed record), and
// the same pair around a checkpoint image ship. The nth counts include
// boot-time recovery hits, matching the single-node suite.
var foCrashes = []struct {
	point string
	nth   int
}{
	{"ingest.preWAL", 2},
	{"ingest.postWAL", 4},
	{"action.preExec", 3},
	{"action.postDone", 2},
	{"ckpt.beforeRename", 2},
	{"ckpt.afterRename", 2},
	{"ckpt.begin", 3},
	{"repl.preShip.occ", 3},
	{"repl.postShip.occ", 3},
	{"repl.preShip.ckpt", 2},
	{"repl.postShip.ckpt", 2},
}

// foRun is one cluster lifetime: engine, recorders, both durable
// directories, and the control clock survive the primary's death; the
// data clock is re-created at the promotion instant exactly like a
// single-node restart (a dead process's pending timers die with it).
type foRun struct {
	t    *testing.T
	eng  *engine.Engine
	acts *foActionRecorder
	occs *foOccRecorder

	priFS *faults.CrashDir // primary's durable directory
	stbFS *faults.CrashDir // standby's replica directory

	dataClock *led.ManualClock // LED temporal operators
	ctrlClock *led.ManualClock // heartbeats + failure detection

	auth    *EpochRegistry
	metA    *Metrics
	metB    *Metrics
	applier *Applier
	hb      *Heartbeater
	monitor *Monitor
	crash   *faults.CrashSet

	agent  *agent.Agent
	driver *engine.Session
}

func newFORun(t *testing.T, seed int64, crash *faults.CrashSet) *foRun {
	t.Helper()
	r := &foRun{
		t:         t,
		eng:       engine.New(catalog.New()),
		acts:      &foActionRecorder{},
		occs:      &foOccRecorder{},
		priFS:     faults.NewCrashDir(seed),
		stbFS:     faults.NewCrashDir(seed + 1000),
		dataClock: led.NewManualClock(foClockBase),
		ctrlClock: led.NewManualClock(foClockBase),
		auth:      NewEpochRegistry(),
		crash:     crash,
	}
	r.metA = NewMetrics(obs.NewRegistry())
	r.metB = NewMetrics(obs.NewRegistry())
	seed0 := r.eng.NewSession("sharma")
	if _, err := seed0.ExecScript(`create database fodb
use fodb
create table ta (x int null)
create table tb (x int null)
create table tc (x int null)`); err != nil {
		t.Fatal(err)
	}
	r.startPrimary()
	return r
}

// startPrimary boots node A: fenced upstream, ShipFS tee into the
// standby's applier (synchronous in-process replication — the
// exactly-once setting), heartbeats and failure detection on the control
// clock.
func (r *foRun) startPrimary() {
	r.t.Helper()
	epoch, err := r.auth.Acquire("A")
	if err != nil {
		r.t.Fatal(err)
	}
	tokA := &Token{}
	tokA.Set(epoch)
	r.metA.SetRole(RolePrimary)
	r.metB.SetRole(RoleStandby)

	r.applier = NewApplier(r.stbFS, r.metB)
	ship := NewShipFS(r.priFS, r.applier.Apply, r.crash, r.metA)

	a, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(r.eng, r.acts), r.auth, tokA, r.metA),
		NotifyAddr:    "-",
		Clock:         r.dataClock,
		IngestWorkers: -1,
		Forward:       r.occs.add,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: ship, WALSync: agent.WALSyncAlways, Crash: r.crash},
	})
	if err != nil {
		r.t.Fatalf("starting primary: %v", err)
	}
	r.agent = a
	r.bindDriver()

	r.hb = NewHeartbeater(r.ctrlClock, foInterval, tokA, r.applier.Apply, r.metA)
	r.monitor = NewMonitor(MonitorConfig{
		Clock:           r.ctrlClock,
		Interval:        foInterval,
		Misses:          foMisses,
		Witnesses:       []func() bool{func() bool { return true }}, // the second voter agrees A is gone
		PromoteDeadline: foPromoteDeadline,
	}, r.metB, nil)
	r.applier.OnHeartbeat = r.monitor.Beat
	r.monitor.Start()
	r.hb.Start()
}

func (r *foRun) bindDriver() {
	r.t.Helper()
	a := r.agent
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	r.driver = r.eng.NewSession("sharma")
	if err := r.driver.Use("fodb"); err != nil {
		r.t.Fatal(err)
	}
}

func (r *foRun) setup(expr, ctx string) {
	r.t.Helper()
	cs, err := r.agent.NewClientSession("sharma", "fodb")
	if err != nil {
		r.t.Fatal(err)
	}
	defer cs.Close()
	for _, ddl := range []string{
		"create trigger fo_pa on ta for insert event ea as print 'pa'",
		"create trigger fo_pb on tb for insert event eb as print 'pb'",
		"create trigger fo_pc on tc for insert event ec2 as print 'pc'",
		fmt.Sprintf("create trigger fo_comp event comp = %s %s as print 'comp'", expr, ctx),
	} {
		if _, err := cs.Exec(ddl); err != nil {
			r.t.Fatalf("setup %q: %v", ddl, err)
		}
	}
}

func (r *foRun) step(s foStep) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := faults.IsCrash(rec); !ok {
				panic(rec)
			}
		}
	}()
	if s.advance > 0 {
		r.dataClock.Advance(s.advance)
	}
	if s.insert != "" {
		if _, err := r.driver.ExecScript("insert " + s.insert + " values (1)"); err != nil {
			r.t.Errorf("insert %s: %v", s.insert, err)
		}
	}
	if s.ckpt {
		if err := r.agent.Checkpoint(); err != nil {
			r.t.Errorf("checkpoint: %v", err)
		}
	}
}

// failover is the kill-and-promote sequence: the dead primary's pending
// work quiesces (pre-crash history), its directory drops unsynced writes,
// its beacon dies with it, and control time advances interval by interval
// until the monitor's quorum promotes — which must happen within the
// deterministic deadline. The standby then boots a full agent over the
// replica directory under a fresh fencing epoch.
func (r *foRun) failover() {
	r.t.Helper()
	r.agent.WaitActions()
	r.priFS.Crash()
	r.hb.Stop()

	crashAt := r.ctrlClock.Now()
	for i := 0; i < foMisses+2 && !r.monitor.Promoted(); i++ {
		r.ctrlClock.Advance(foInterval)
	}
	if !r.monitor.Promoted() {
		r.t.Fatalf("standby did not promote after %v of silence", r.ctrlClock.Now().Sub(crashAt))
	}
	if took := r.ctrlClock.Now().Sub(crashAt); took > foPromoteDeadline {
		r.t.Errorf("promotion took %v of control time, deadline %v", took, foPromoteDeadline)
	}
	r.monitor.Stop()
	if err := r.applier.Close(); err != nil {
		r.t.Fatalf("closing replica handles: %v", err)
	}

	epoch, err := r.auth.Acquire("B")
	if err != nil {
		r.t.Fatal(err)
	}
	tokB := &Token{}
	tokB.Set(epoch)
	r.metB.SetRole(RolePromoting)
	r.metB.Promotions.Inc()

	r.dataClock = led.NewManualClock(r.dataClock.Now())
	a, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(r.eng, r.acts), r.auth, tokB, r.metB),
		NotifyAddr:    "-",
		Clock:         r.dataClock,
		IngestWorkers: -1,
		Forward:       r.occs.add,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: r.stbFS, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		r.t.Fatalf("promoting standby: %v", err)
	}
	r.agent = a
	r.metB.SetRole(RolePrimary)
	r.bindDriver()
}

// run drives the full script, failing over once when the armed crash
// point trips, and returns with all actions drained.
func (r *foRun) run() {
	failed := false
	for _, s := range foScript {
		r.step(s)
		r.agent.WaitActions()
		if !failed && r.crash.Tripped() != "" {
			r.failover()
			failed = true
		}
	}
	r.agent.WaitActions()
}

func TestFailoverDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("failover differential matrix is long")
	}
	cell := 0
	for _, op := range foOperators {
		for _, ctx := range foContexts {
			op, ctx, cell := op, ctx, cell
			t.Run(op.name+"/"+ctx, func(t *testing.T) {
				t.Parallel()
				oracle := newOracleRun(t, 1)
				oracle.setup(op.expr, ctx)
				oracle.run()
				wantActs := oracle.acts.snapshot()
				wantOccs := oracle.occs.snapshot()
				oracle.agent.Close()

				for i := 0; i < 3; i++ {
					spec := foCrashes[(cell+i)%len(foCrashes)]
					crash := faults.NewCrashSet()
					crash.Arm(spec.point, spec.nth)
					sub := newFORun(t, int64(cell*37+i+2), crash)
					sub.setup(op.expr, ctx)
					sub.run()
					tag := fmt.Sprintf("%s nth=%d (tripped=%q)", spec.point, spec.nth, crash.Tripped())
					if gotOccs := sub.occs.snapshot(); !foEqual(wantOccs, gotOccs) {
						t.Errorf("%s: occurrence stream diverged\noracle:   %v\npromoted: %v", tag, wantOccs, gotOccs)
					}
					if gotActs := sub.acts.snapshot(); !foEqual(wantActs, gotActs) {
						t.Errorf("%s: action stream diverged (%d vs %d)\nonly-oracle:   %v\nonly-promoted: %v",
							tag, len(wantActs), len(gotActs), foDiff(wantActs, gotActs), foDiff(gotActs, wantActs))
					}
					if crash.Tripped() != "" && sub.metB.Role() != RolePrimary {
						t.Errorf("%s: standby role = %q after failover", tag, sub.metB.Role())
					}
					sub.agent.Close()
				}
			})
			cell++
		}
	}
}

// oracleRun is the crash-free single-node baseline: the same agent
// configuration minus cluster wrapping, killed never.
type oracleRun struct {
	t      *testing.T
	eng    *engine.Engine
	acts   *foActionRecorder
	occs   *foOccRecorder
	fs     *faults.CrashDir
	clock  *led.ManualClock
	agent  *agent.Agent
	driver *engine.Session
}

func newOracleRun(t *testing.T, seed int64) *oracleRun {
	t.Helper()
	r := &oracleRun{
		t:     t,
		eng:   engine.New(catalog.New()),
		acts:  &foActionRecorder{},
		occs:  &foOccRecorder{},
		fs:    faults.NewCrashDir(seed),
		clock: led.NewManualClock(foClockBase),
	}
	seed0 := r.eng.NewSession("sharma")
	if _, err := seed0.ExecScript(`create database fodb
use fodb
create table ta (x int null)
create table tb (x int null)
create table tc (x int null)`); err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(agent.Config{
		Dial:          foRecordingDialer(r.eng, r.acts),
		NotifyAddr:    "-",
		Clock:         r.clock,
		IngestWorkers: -1,
		Forward:       r.occs.add,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: r.fs, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatalf("starting oracle: %v", err)
	}
	r.agent = a
	a2 := a
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		a2.Deliver(msg)
		return nil
	})
	r.driver = r.eng.NewSession("sharma")
	if err := r.driver.Use("fodb"); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *oracleRun) setup(expr, ctx string) {
	r.t.Helper()
	cs, err := r.agent.NewClientSession("sharma", "fodb")
	if err != nil {
		r.t.Fatal(err)
	}
	defer cs.Close()
	for _, ddl := range []string{
		"create trigger fo_pa on ta for insert event ea as print 'pa'",
		"create trigger fo_pb on tb for insert event eb as print 'pb'",
		"create trigger fo_pc on tc for insert event ec2 as print 'pc'",
		fmt.Sprintf("create trigger fo_comp event comp = %s %s as print 'comp'", expr, ctx),
	} {
		if _, err := cs.Exec(ddl); err != nil {
			r.t.Fatalf("setup %q: %v", ddl, err)
		}
	}
}

func (r *oracleRun) run() {
	for _, s := range foScript {
		if s.advance > 0 {
			r.clock.Advance(s.advance)
		}
		if s.insert != "" {
			if _, err := r.driver.ExecScript("insert " + s.insert + " values (1)"); err != nil {
				r.t.Errorf("insert %s: %v", s.insert, err)
			}
		}
		if s.ckpt {
			if err := r.agent.Checkpoint(); err != nil {
				r.t.Errorf("checkpoint: %v", err)
			}
		}
		r.agent.WaitActions()
	}
	r.agent.WaitActions()
}

func foEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func foDiff(a, b []string) []string {
	count := make(map[string]int)
	for _, s := range b {
		count[s]++
	}
	var out []string
	for _, s := range a {
		if count[s] > 0 {
			count[s]--
			continue
		}
		out = append(out, s)
	}
	return out
}
