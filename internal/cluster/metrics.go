package cluster

import (
	"sync"

	"github.com/activedb/ecaagent/internal/obs"
)

// Metrics is the cluster-layer instrument set, registered on the node's
// obs registry so the eca_cluster_* families appear on the same /metrics
// endpoint as the agent's own instruments.
type Metrics struct {
	role *obs.GaugeVec // eca_cluster_role, one 0/1 series per role name

	HeartbeatsSent   *obs.Counter
	HeartbeatsSeen   *obs.Counter
	HeartbeatsMissed *obs.Counter
	Promotions       *obs.Counter
	FencedRejections *obs.Counter

	ReplShippedFrames *obs.Counter
	ReplShippedBytes  *obs.Counter
	ReplAppliedFrames *obs.Counter
	ReplErrors        *obs.Counter
	ReplLagBytes      *obs.Gauge
	ReplLagRecords    *obs.Gauge

	ReplDegraded     *obs.Gauge
	ReplHalted       *obs.Gauge
	ReplSyncBarriers *obs.Counter
	ReplSyncTimeouts *obs.Counter

	AuthRenewals    *obs.Counter
	AuthRenewFailed *obs.Counter
	AuthLeaseLost   *obs.Counter

	Routed       *obs.CounterVec // per destination node
	RouteRetries *obs.Counter
	RouteDLQ     *obs.Counter
	RouteBad     *obs.Counter

	mu      sync.Mutex
	curRole string // guarded by mu
}

// NewMetrics registers the cluster families on reg. Each node registers
// once; reg is typically the agent's own registry (Agent.Metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		role: reg.GaugeVec("eca_cluster_role",
			"Current cluster role (1 on exactly one series).", "role"),
		HeartbeatsSent: reg.Counter("eca_cluster_heartbeats_sent_total",
			"Heartbeat frames this node emitted."),
		HeartbeatsSeen: reg.Counter("eca_cluster_heartbeats_seen_total",
			"Heartbeat frames this node observed."),
		HeartbeatsMissed: reg.Counter("eca_cluster_heartbeats_missed_total",
			"Monitor intervals that elapsed without a heartbeat."),
		Promotions: reg.Counter("eca_cluster_promotions_total",
			"Standby-to-primary promotions this node performed."),
		FencedRejections: reg.Counter("eca_cluster_fenced_rejections_total",
			"Upstream executions rejected because the fencing token was stale."),
		ReplShippedFrames: reg.Counter("eca_cluster_repl_shipped_frames_total",
			"Replication frames shipped to the standby."),
		ReplShippedBytes: reg.Counter("eca_cluster_repl_shipped_bytes_total",
			"Replication payload bytes shipped to the standby."),
		ReplAppliedFrames: reg.Counter("eca_cluster_repl_applied_frames_total",
			"Replication frames applied to the local replica directory."),
		ReplErrors: reg.Counter("eca_cluster_repl_errors_total",
			"Replication ship/apply failures (the standby is falling behind)."),
		ReplLagBytes: reg.Gauge("eca_cluster_repl_lag_bytes",
			"Bytes accepted for shipping but not yet acknowledged durable on the standby."),
		ReplLagRecords: reg.Gauge("eca_cluster_repl_lag_records",
			"Frames accepted for shipping but not yet acknowledged durable on the standby."),
		ReplDegraded: reg.Gauge("eca_cluster_repl_degraded",
			"1 while synchronous replication is suspended (standby not acknowledging)."),
		ReplHalted: reg.Gauge("eca_cluster_repl_halted",
			"1 after the halt degradation policy tripped (occurrences withheld)."),
		ReplSyncBarriers: reg.Counter("eca_cluster_repl_sync_barriers_total",
			"Occurrence acknowledgements that waited on the synchronous-ship barrier."),
		ReplSyncTimeouts: reg.Counter("eca_cluster_repl_sync_timeouts_total",
			"Synchronous-ship barriers that failed (timeout or dead link)."),
		AuthRenewals: reg.Counter("eca_cluster_auth_renewals_total",
			"Successful epoch lease renewals against the SQL authority."),
		AuthRenewFailed: reg.Counter("eca_cluster_auth_renew_failures_total",
			"Epoch lease renewal attempts that failed (server unreachable or CAS miss)."),
		AuthLeaseLost: reg.Counter("eca_cluster_auth_lease_lost_total",
			"Times this node discovered its epoch lease was superseded."),
		Routed: reg.CounterVec("eca_cluster_routed_total",
			"Notifications forwarded, by destination node.", "node"),
		RouteRetries: reg.Counter("eca_cluster_route_retries_total",
			"Forwarding attempts that failed and were retried."),
		RouteDLQ: reg.Counter("eca_cluster_route_dlq_total",
			"Notifications parked on the router's dead-letter queue."),
		RouteBad: reg.Counter("eca_cluster_route_bad_total",
			"Datagrams the router could not parse an event name from."),
	}
	return m
}

// SetRole flips the eca_cluster_role series so exactly the current role
// reads 1.
func (m *Metrics) SetRole(role string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.curRole != "" && m.curRole != role {
		m.role.With(m.curRole).Set(0)
	}
	m.curRole = role
	m.role.With(role).Set(1)
}

// Role reports the last role SetRole recorded.
func (m *Metrics) Role() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.curRole
}
