package cluster

import (
	"strings"
	"sync"

	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/storage"
)

// Sink receives replication frames in ship order. The in-process chaos
// harness plugs an Applier in directly (synchronous replication — the
// exactly-once-across-failover setting); production plugs a Shipper that
// carries the frames over TCP.
type Sink func(Frame) error

// ShipFS tees a primary's durability layer to a replication sink. It
// wraps the agent's storage.FS so every byte the checkpoint/WAL machinery
// makes durable locally is also framed and shipped, in write order:
//
//   - appends to live files (the WAL, the rule log) ship as
//     FrameFileOpen/FrameFileData as they happen;
//   - checkpoint temp files are buffered and ship as one atomic FrameCkpt
//     when the publish rename lands — the standby never sees a
//     half-written checkpoint image;
//   - prunes ship as FrameRemove.
//
// Ship failures never fail the primary's local durability: they are
// counted (ReplErrors), remembered (Err), and the primary keeps running —
// a lagging standby degrades the failover guarantee, it must not take the
// live node down with it. The sink itself is responsible for retry,
// backoff and reconnection.
//
// Mid-replication crash points: the chaos harness arms repl.preShip.* /
// repl.postShip.* to kill the primary between a local write and its ship
// (or just after), the windows a real node-death race exposes. The suffix
// names what was being shipped (ckpt, occ, done, data, open, remove), so
// a test can land the crash on exactly the record kind under study.
type ShipFS struct {
	inner storage.FS
	sink  Sink
	crash *faults.CrashSet
	met   *Metrics

	mu      sync.Mutex
	tmpBufs map[string][]byte   // pending .tmp file contents; guarded by mu
	live    map[string]struct{} // non-tmp files created through us; guarded by mu
	lastErr error               // last ship failure; guarded by mu
}

// NewShipFS wraps inner so every durable mutation is also shipped to
// sink. crash may be nil (no injection); met may be nil (no accounting).
func NewShipFS(inner storage.FS, sink Sink, crash *faults.CrashSet, met *Metrics) *ShipFS {
	return &ShipFS{
		inner:   inner,
		sink:    sink,
		crash:   crash,
		met:     met,
		tmpBufs: make(map[string][]byte),
		live:    make(map[string]struct{}),
	}
}

// SnapshotFrames renders the full current replica state as a frame
// sequence: the reconnect re-ship a Shipper sends so a standby that
// restarted (or fell off the stream) converges without a gap. Files still
// receiving appends (the open WAL segment) ship as open+data so later
// FrameFileData frames land on a live handle; published images ship as
// atomic FrameCkpt. A frame already queued behind the snapshot may
// duplicate a WAL record the snapshot covered — harmless, because
// recovery's replay is idempotent against exact duplicates (occurrence
// watermarks, done-mark set semantics).
func (s *ShipFS) SnapshotFrames() ([]Frame, error) {
	names, err := s.inner.List()
	if err != nil {
		return nil, err
	}
	var out []Frame
	for _, name := range names {
		if isTmp(name) {
			continue
		}
		content, err := s.inner.ReadFile(name)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		_, isLive := s.live[name]
		s.mu.Unlock()
		if isLive {
			out = append(out, Frame{Kind: FrameFileOpen, Name: name})
			if len(content) > 0 {
				out = append(out, Frame{Kind: FrameFileData, Name: name, Payload: content})
			}
		} else {
			out = append(out, Frame{Kind: FrameCkpt, Name: name, Payload: content})
		}
	}
	return out, nil
}

// Err reports the most recent ship failure (nil when replication is
// healthy). The primary's operator surface polls it; the inner FS's
// results are never affected.
func (s *ShipFS) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// ship frames and sends one mutation, bracketing it with the named crash
// points. kind tags what is being shipped for crash-point selection.
func (s *ShipFS) ship(f Frame, kind string) {
	s.crash.Hit("repl.preShip." + kind)
	err := s.sink(f)
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	if s.met != nil {
		if err != nil {
			s.met.ReplErrors.Inc()
		} else {
			s.met.ReplShippedFrames.Inc()
			s.met.ReplShippedBytes.Add(uint64(len(f.Payload)))
		}
	}
	s.crash.Hit("repl.postShip." + kind)
}

func isTmp(name string) bool { return strings.HasSuffix(name, ".tmp") }

// walKind peeks the record kind of one WAL append so crash points can
// target occurrence vs action-done records: the WAL frames every record
// with a leading kind byte (1 = occurrence, 2 = action done).
func walKind(name string, p []byte) string {
	if !strings.HasPrefix(name, "wal-") || len(p) == 0 {
		return "data"
	}
	switch p[0] {
	case 1:
		return "occ"
	case 2:
		return "done"
	}
	return "data"
}

// Create opens a file for writing. Temp files buffer instead of shipping;
// live files announce themselves so the standby truncates its copy.
func (s *ShipFS) Create(name string) (storage.File, error) {
	f, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	if isTmp(name) {
		s.mu.Lock()
		s.tmpBufs[name] = nil
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		s.live[name] = struct{}{}
		s.mu.Unlock()
		s.ship(Frame{Kind: FrameFileOpen, Name: name}, "open")
	}
	return &shipFile{fs: s, name: name, inner: f}, nil
}

// Rename publishes a file. A buffered temp file ships as one atomic
// FrameCkpt under its published name; the standby applies it with the
// same tmp→sync→rename→dirsync protocol the primary used locally.
func (s *ShipFS) Rename(oldName, newName string) error {
	if err := s.inner.Rename(oldName, newName); err != nil {
		return err
	}
	s.mu.Lock()
	buf, buffered := s.tmpBufs[oldName]
	delete(s.tmpBufs, oldName)
	s.mu.Unlock()
	if buffered {
		s.ship(Frame{Kind: FrameCkpt, Name: newName, Payload: buf}, "ckpt")
	}
	return nil
}

// Remove prunes a file here and on the standby.
func (s *ShipFS) Remove(name string) error {
	if err := s.inner.Remove(name); err != nil {
		return err
	}
	s.mu.Lock()
	_, buffered := s.tmpBufs[name]
	delete(s.tmpBufs, name)
	delete(s.live, name)
	s.mu.Unlock()
	if !buffered {
		s.ship(Frame{Kind: FrameRemove, Name: name}, "remove")
	}
	return nil
}

// ReadFile reads from the local directory.
func (s *ShipFS) ReadFile(name string) ([]byte, error) { return s.inner.ReadFile(name) }

// List lists the local directory.
func (s *ShipFS) List() ([]string, error) { return s.inner.List() }

// SyncDir makes local metadata durable. Nothing ships: the standby's
// applier syncs its own directory as it applies.
func (s *ShipFS) SyncDir() error { return s.inner.SyncDir() }

// shipFile tees one file's writes.
type shipFile struct {
	fs    *ShipFS
	name  string
	inner storage.File
}

// Write appends locally first, then ships the same bytes. Local-first
// keeps the standby a prefix of the primary's write stream; the window
// between the two is exactly what the repl.preShip crash points probe.
func (f *shipFile) Write(p []byte) (int, error) {
	n, err := f.inner.Write(p)
	if err != nil {
		return n, err
	}
	if isTmp(f.name) {
		f.fs.mu.Lock()
		f.fs.tmpBufs[f.name] = append(f.fs.tmpBufs[f.name], p...)
		f.fs.mu.Unlock()
		return n, nil
	}
	f.fs.ship(Frame{Kind: FrameFileData, Name: f.name, Payload: append([]byte(nil), p...)},
		walKind(f.name, p))
	return n, nil
}

func (f *shipFile) Sync() error  { return f.inner.Sync() }
func (f *shipFile) Close() error { return f.inner.Close() }
