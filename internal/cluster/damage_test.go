package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"testing"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
	"github.com/activedb/ecaagent/internal/storage"
)

// Damage pinning for the replica's journal: the standby dies mid-apply of
// the final shipped WAL frame, leaving a torn half-record — and the bytes
// after the tear are NOT the primary's (a divergent tail, as left by a
// previous generation or a corrupted buffer). Recovery must pin itself to
// the durable prefix — every record before the tear — and report the cut,
// never trusting or extending the divergent suffix.

// walBoundaries scans a journal image with the public framing contract
// (16-byte header, then kind | uvarint len | payload | crc32) and returns
// the byte offset after each whole record. The test re-derives the frame
// layout instead of importing agent internals so a framing change breaks
// this test loudly.
func walBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	const headerLen = 8 + 8 // magic + epoch
	if len(data) < headerLen {
		t.Fatalf("journal too short: %d bytes", len(data))
	}
	var bounds []int
	off := headerLen
	for off < len(data) {
		plen, n := binary.Uvarint(data[off+1:])
		if n <= 0 {
			t.Fatalf("bad record length at offset %d", off)
		}
		end := off + 1 + n + int(plen) + 4
		if end > len(data) {
			t.Fatalf("record at offset %d overruns the file", off)
		}
		h := crc32.NewIEEE()
		h.Write(data[off : off+1])
		h.Write(data[off+1+n : off+1+n+int(plen)])
		if binary.LittleEndian.Uint32(data[end-4:end]) != h.Sum32() {
			t.Fatalf("record at offset %d fails CRC — the source journal is already damaged", off)
		}
		bounds = append(bounds, end)
		off = end
	}
	return bounds
}

func overwriteFile(t *testing.T, fs storage.FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func copyDir(t *testing.T, src, dst storage.FS) {
	t.Helper()
	names, err := src.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := src.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		overwriteFile(t, dst, name, data)
	}
}

// dmgEvent is the fully qualified event name the journal records.
const dmgEvent = "dmgdb.sharma.ea"

func TestStandbyRecoveryPinsDurablePrefixOnTornTail(t *testing.T) {
	eng := engine.New(catalog.New())
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript("create database dmgdb\nuse dmgdb\ncreate table ta (x int null)"); err != nil {
		t.Fatal(err)
	}

	// A primary shipping every write to the standby's replica directory
	// (in-process apply — the tear is constructed below, on the replica
	// bytes themselves, which is where a mid-apply crash leaves it).
	priFS := faults.NewCrashDir(11)
	stbFS := faults.NewCrashDir(12)
	met := NewMetrics(obs.NewRegistry())
	applier := NewApplier(stbFS, met)
	ship := NewShipFS(priFS, applier.Apply, nil, met)

	priActs := &foActionRecorder{}
	pri, err := agent.New(agent.Config{
		Dial:          foRecordingDialer(eng, priActs),
		NotifyAddr:    "-",
		Clock:         led.NewManualClock(foClockBase),
		IngestWorkers: -1,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: ship, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetNotifier(func(host string, port int, msg string) error {
		pri.Deliver(msg)
		return nil
	})
	cs, err := pri.NewClientSession("sharma", "dmgdb")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("create trigger dmg_pa on ta for insert event ea as print 'pa'"); err != nil {
		t.Fatal(err)
	}
	cs.Close()

	driver := eng.NewSession("sharma")
	if err := driver.Use("dmgdb"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := driver.ExecScript("insert ta values (1)"); err != nil {
			t.Fatal(err)
		}
		pri.WaitActions()
	}
	// Kill the primary crash-style (no orderly Close — that would
	// checkpoint and truncate the very journal this test tears) and
	// release the replica's file handles.
	if err := applier.Close(); err != nil {
		t.Fatal(err)
	}
	priFS.Crash()

	// Find the replica's journal and tear its tail: keep the durable
	// prefix minus the last two records (the final occurrence and its
	// action-done mark), then half of the next record, then a divergent
	// suffix — bytes the primary never wrote.
	names, err := stbFS.List()
	if err != nil {
		t.Fatal(err)
	}
	var walFile string
	for _, name := range names {
		if strings.HasPrefix(name, "wal-") {
			if walFile != "" {
				t.Fatalf("multiple journal generations %q and %q; the test wants exactly one", walFile, name)
			}
			walFile = name
		}
	}
	if walFile == "" {
		t.Fatalf("no journal in the replica directory: %v", names)
	}
	full, err := stbFS.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	wmFull, tornFull, err := agent.DurableOccurrences(stbFS)
	if err != nil {
		t.Fatal(err)
	}
	if tornFull {
		t.Fatalf("replica journal torn before the test damaged it")
	}
	if wmFull[dmgEvent] != 5 {
		t.Fatalf("undamaged watermark %s = %d, want 5 (have %v)", dmgEvent, wmFull[dmgEvent], wmFull)
	}

	bounds := walBoundaries(t, full)
	if len(bounds) < 4 {
		t.Fatalf("journal has only %d records; need at least 4 to cut two", len(bounds))
	}
	cut := bounds[len(bounds)-3] // prefix keeps all but the last two records
	halfLen := (bounds[len(bounds)-2] - cut) / 2
	damaged := append([]byte(nil), full[:cut+halfLen]...)       // torn final frame
	damaged = append(damaged, []byte("DIVERGENT-TAIL-XXXX")...) // bytes the primary never shipped

	// The oracle-by-construction: the same directory with the journal
	// cleanly truncated at the durable prefix.
	prefixFS := faults.NewCrashDir(13)
	copyDir(t, stbFS, prefixFS)
	overwriteFile(t, prefixFS, walFile, full[:cut])
	wmPrefix, _, err := agent.DurableOccurrences(prefixFS)
	if err != nil {
		t.Fatal(err)
	}
	if wmPrefix[dmgEvent] != 4 {
		t.Fatalf("prefix watermark %s = %d, want 4 (the cut removed occurrence 5)", dmgEvent, wmPrefix[dmgEvent])
	}

	overwriteFile(t, stbFS, walFile, damaged)

	// Inspection level: the damaged journal yields exactly the durable
	// prefix, and the cut is reported.
	wmDamaged, torn, err := agent.DurableOccurrences(stbFS)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatalf("DurableOccurrences did not report the torn tail")
	}
	if fmt.Sprint(wmDamaged) != fmt.Sprint(wmPrefix) {
		t.Fatalf("damaged watermarks %v, want the durable prefix %v", wmDamaged, wmPrefix)
	}

	// Recovery level: boot the standby over the damaged directory. It must
	// log the cut ("torn tail after 8 records" — the prefix), replay only
	// the prefix, and let resync re-detect the lost occurrence from the
	// shadow tables instead of trusting the divergent suffix.
	var logMu sync.Mutex
	var logs []string
	stbActs := &foActionRecorder{}
	stb, err := agent.New(agent.Config{
		Dial:          foRecordingDialer(eng, stbActs),
		NotifyAddr:    "-",
		Clock:         led.NewManualClock(foClockBase),
		IngestWorkers: -1,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
		Durability: &agent.Durability{FS: stbFS, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stb.Close()

	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	wantCut := fmt.Sprintf("torn tail after %d record(s)", len(bounds)-2)
	if !strings.Contains(joined, wantCut) {
		t.Errorf("recovery did not report the cut: want log containing %q in:\n%s", wantCut, joined)
	}

	// The torn occurrence (vno 5) was never marked done in the durable
	// prefix, so resync must re-derive it from the authoritative shadow
	// table and run its action exactly once.
	if err := stb.Resync(); err != nil {
		t.Fatal(err)
	}
	stb.WaitActions()
	if got := stbActs.snapshot(); len(got) != 1 {
		t.Fatalf("standby re-ran %d action(s) after resync, want exactly 1 (the torn occurrence): %v", len(got), got)
	}

	// And the recovered agent is live: a fresh insert fires normally.
	eng.SetNotifier(func(host string, port int, msg string) error {
		stb.Deliver(msg)
		return nil
	})
	if _, err := driver.ExecScript("insert ta values (2)"); err != nil {
		t.Fatal(err)
	}
	stb.WaitActions()
	if got := stbActs.snapshot(); len(got) != 2 {
		t.Fatalf("post-recovery insert did not fire: %d action(s) recorded: %v", len(got), got)
	}
}
