package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport carries replication frames between real processes.
// The shipper side is a Sink: ShipFS (and the heartbeater) call it with
// frames, it writes them length-prefixed + CRC-framed, and a reader
// goroutine drains the standby's acknowledgements — a running count of
// frames applied durably — into the lag gauges. The standby side accepts
// connections, applies each frame through an Applier, and acks.
//
// Reconnection re-ships a full snapshot: the standby applies frames
// durably, but the shipper cannot know which in-flight frames survived a
// broken connection, so it replays state from the ground truth (the
// primary's own directory) rather than guessing a resume point. Snapshots
// are small — checkpoints truncate the WAL — and re-applying is
// idempotent.

// ShipperConfig configures the primary→standby stream.
type ShipperConfig struct {
	// Addr is the standby's replication listener address.
	Addr string
	// Node names this primary in the Hello frame.
	Node string
	// Tok supplies the fencing epoch announced in Hello (may be nil: epoch 0).
	Tok *Token
	// Snapshot renders the full replica state for (re)connect re-ship;
	// wire ShipFS.SnapshotFrames here. May be nil (stream-only, used when
	// a fresh standby directory is guaranteed).
	Snapshot func() ([]Frame, error)
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline — the per-attempt
	// deadline that keeps a hung standby from wedging the primary's
	// durability path (default 2s).
	WriteTimeout time.Duration
	// SyncWindow bounds the in-flight (shipped, unacknowledged) frames in
	// synchronous mode: Ship blocks while the window is full, and Barrier
	// blocks until it is empty. 0 keeps the PR 6 behavior — fire and
	// forget, acks only feed the lag gauges.
	SyncWindow int
	// AckTimeout bounds each synchronous wait (window admission and
	// Barrier) — the per-record deadline of the sync-ship contract
	// (default 2s).
	AckTimeout time.Duration
}

// ackWriteTimeout bounds the standby's 8-byte ack writes: a primary
// that stops draining acks must not wedge the standby's apply loop.
const ackWriteTimeout = 2 * time.Second

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	return c
}

// ErrAckTimeout reports that the standby failed to acknowledge within the
// shipper's AckTimeout — the trigger for the sync degradation ladder.
var ErrAckTimeout = errors.New("cluster: standby acknowledgement timed out")

// Shipper streams frames to one standby over TCP.
type Shipper struct {
	cfg ShipperConfig
	met *Metrics

	mu      sync.Mutex
	ackCond *sync.Cond // signalled on ack progress / conn turnover / close
	conn    net.Conn   // nil when disconnected; guarded by mu
	closed  bool       // guarded by mu
	sent    uint64     // frames written this connection; guarded by mu
	acked   uint64     // frames acknowledged this connection; guarded by mu
	pending []int      // payload size of each unacked frame; guarded by mu
	lagB    int        // total unacked payload bytes; guarded by mu
}

// NewShipper returns a disconnected shipper; the first Ship dials.
// met may be nil.
func NewShipper(cfg ShipperConfig, met *Metrics) *Shipper {
	s := &Shipper{cfg: cfg.withDefaults(), met: met}
	s.ackCond = sync.NewCond(&s.mu)
	return s
}

// Ship sends one frame, dialing (and snapshot re-shipping) first when
// disconnected. It is the Sink a ShipFS or Heartbeater writes to. An
// error leaves the shipper disconnected; the caller's policy (ShipFS
// counts and continues) decides what that means.
//
// When the dial just re-shipped a snapshot, an FS-state frame (open,
// data, checkpoint, remove) is dropped instead of sent: ShipFS writes
// locally before shipping, so the snapshot — rendered from the local
// directory after that write — already contains this frame's effect, and
// sending it again would append its bytes twice. Non-state frames
// (heartbeats, rule broadcasts) are not in snapshots and always go out.
// Concurrent writers racing a reconnect can still duplicate a WAL record
// in the replica; recovery's replay is idempotent against that.
func (s *Shipper) Ship(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cluster: shipper closed")
	}
	if s.conn == nil {
		snapped, err := s.connectLocked()
		if err != nil {
			return err
		}
		if snapped && frameInSnapshot(f.Kind) {
			return nil
		}
	}
	if s.cfg.SyncWindow > 0 {
		if err := s.awaitLocked(func() bool { return len(s.pending) < s.cfg.SyncWindow }); err != nil {
			return err
		}
	}
	return s.writeLocked(f)
}

// Barrier blocks until every frame shipped so far has been acknowledged
// by the standby (or the ack deadline passes). It is the durable-ack
// gate of synchronous mode: when it returns nil, everything Ship has
// accepted on this connection — including the caller's own WAL record —
// is fsynced in the standby's replica directory.
func (s *Shipper) Barrier() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cluster: shipper closed")
	}
	if s.conn == nil {
		return fmt.Errorf("cluster: sync barrier: not connected to standby")
	}
	return s.awaitLocked(func() bool { return len(s.pending) == 0 })
}

// awaitLocked blocks until pred holds, failing on close, connection
// turnover (the pending frames it was waiting on are gone — the standby
// never durably confirmed them), or the ack deadline. Caller holds s.mu;
// the lock is released while waiting.
func (s *Shipper) awaitLocked(pred func() bool) error {
	if pred() {
		return nil
	}
	conn := s.conn
	timedOut := false
	// Wall clock, not the Clock seam: like the net.Conn deadlines above,
	// the ack deadline is an I/O timeout against a real peer, not logic
	// the deterministic tests need to drive.
	timer := time.AfterFunc(s.cfg.AckTimeout, func() { //ecavet:allow nowallclock ack deadline is an I/O timeout like the conn deadlines
		s.mu.Lock()
		timedOut = true
		s.ackCond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	for !pred() {
		if s.closed {
			return fmt.Errorf("cluster: shipper closed")
		}
		if s.conn != conn {
			return fmt.Errorf("cluster: connection lost before standby acknowledged")
		}
		if timedOut {
			s.dropConnLocked() // the stream is suspect; force a snapshot re-ship
			return fmt.Errorf("%w after %v (%d frames in flight)", ErrAckTimeout, s.cfg.AckTimeout, len(s.pending))
		}
		s.ackCond.Wait()
	}
	return nil
}

// frameInSnapshot reports whether a frame kind describes FS state that a
// just-shipped snapshot already covers.
func frameInSnapshot(k FrameKind) bool {
	switch k {
	case FrameCkpt, FrameFileOpen, FrameFileData, FrameRemove:
		return true
	}
	return false
}

// connectLocked dials, sends Hello, and re-ships the snapshot, reporting
// whether a snapshot went out. Caller holds s.mu.
func (s *Shipper) connectLocked() (snapshotSent bool, err error) {
	conn, err := net.DialTimeout("tcp", s.cfg.Addr, s.cfg.DialTimeout)
	if err != nil {
		return false, fmt.Errorf("cluster: dialing standby %s: %w", s.cfg.Addr, err)
	}
	s.conn = conn
	s.sent, s.acked, s.pending, s.lagB = 0, 0, nil, 0
	go s.drainAcks(conn)
	var epoch uint64
	if s.cfg.Tok != nil {
		epoch = s.cfg.Tok.Epoch()
	}
	hello := Frame{Kind: FrameHello, Name: s.cfg.Node, Payload: binary.AppendUvarint(nil, epoch)}
	if err := s.writeLocked(hello); err != nil {
		return false, err
	}
	if s.cfg.Snapshot == nil {
		return false, nil
	}
	frames, err := s.cfg.Snapshot()
	if err != nil {
		s.dropConnLocked()
		return false, fmt.Errorf("cluster: rendering snapshot: %w", err)
	}
	for _, sf := range frames {
		if err := s.writeLocked(sf); err != nil {
			return false, err
		}
	}
	return true, nil
}

// writeLocked frames and writes f with the per-attempt deadline, keeping
// the lag accounting. Caller holds s.mu.
func (s *Shipper) writeLocked(f Frame) error {
	// Wall clock, not the Clock seam: net.Conn deadlines are kernel
	// timers; a ManualClock cannot drive them and determinism is not at
	// stake for an I/O timeout.
	deadline := time.Now().Add(s.cfg.WriteTimeout) //ecavet:allow nowallclock net.Conn deadlines are wall-clock by contract
	if err := s.conn.SetWriteDeadline(deadline); err != nil {
		s.dropConnLocked()
		return err
	}
	if _, err := s.conn.Write(EncodeFrame(f)); err != nil {
		s.dropConnLocked()
		return fmt.Errorf("cluster: shipping frame: %w", err)
	}
	s.sent++
	s.pending = append(s.pending, len(f.Payload))
	s.lagB += len(f.Payload)
	s.gaugeLocked()
	return nil
}

// drainAcks reads cumulative applied-counts for one connection and
// retires pending frames. It exits when the connection dies.
func (s *Shipper) drainAcks(conn net.Conn) {
	var buf [8]byte
	r := bufio.NewReader(conn)
	for {
		if _, err := readFull(r, buf[:]); err != nil { //ecavet:allow iodeadline acks arrive at the standby's applying pace; Close unblocks the read
			return
		}
		applied := binary.LittleEndian.Uint64(buf[:])
		s.mu.Lock()
		if s.conn == conn {
			for s.acked < applied && len(s.pending) > 0 {
				s.lagB -= s.pending[0]
				s.pending = s.pending[1:]
				s.acked++
			}
			s.gaugeLocked()
			s.ackCond.Broadcast()
		}
		s.mu.Unlock()
	}
}

func readFull(r *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := r.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// gaugeLocked publishes the lag gauges. Caller holds s.mu.
func (s *Shipper) gaugeLocked() {
	if s.met == nil {
		return
	}
	s.met.ReplLagRecords.Set(int64(s.sent - s.acked))
	s.met.ReplLagBytes.Set(int64(s.lagB))
}

// dropConnLocked abandons the current connection. Caller holds s.mu.
func (s *Shipper) dropConnLocked() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.ackCond.Broadcast() // waiters must observe the turnover
}

// Lag reports unacknowledged frames and payload bytes on the current
// connection.
func (s *Shipper) Lag() (records uint64, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sent - s.acked, s.lagB
}

// Close disconnects and refuses further shipping.
func (s *Shipper) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.dropConnLocked()
	s.ackCond.Broadcast()
	return nil
}

// ListenStandby serves the standby's replication endpoint: every accepted
// connection is a primary's frame stream, applied through ap with a
// cumulative ack written back after each frame. A decode or apply error
// drops the connection — the shipper reconnects and re-ships a snapshot,
// which is the protocol's only resume mechanism — and counts as a
// replication error on the applier's metrics. stop closes the listener
// and every live connection.
func ListenStandby(addr string, ap *Applier) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			mu.Lock()
			conns[conn] = struct{}{}
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveStream(conn, ap)
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
		}
	}()
	stop = func() {
		ln.Close()
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}

// serveStream applies one primary's frame stream until it ends or breaks.
func serveStream(conn net.Conn, ap *Applier) {
	defer conn.Close()
	var applied uint64
	r := bufio.NewReader(conn)
	for {
		// The standby blocks here for the primary's next frame by
		// design: idle links are normal, and stop() closes the conn to
		// unblock the read.
		f, err := ReadFrame(r) //ecavet:allow iodeadline standby waits for the next frame indefinitely; stop() closes the conn
		if err != nil {
			return // EOF, torn tail, or corruption: shipper re-snapshots
		}
		if err := ap.Apply(f); err != nil {
			return
		}
		applied++
		var ack [8]byte
		binary.LittleEndian.PutUint64(ack[:], applied)
		deadline := time.Now().Add(ackWriteTimeout) //ecavet:allow nowallclock net.Conn deadlines are wall-clock by contract
		if err := conn.SetWriteDeadline(deadline); err != nil {
			return
		}
		if _, err := conn.Write(ack[:]); err != nil {
			return
		}
	}
}
