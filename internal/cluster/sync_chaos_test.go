package cluster

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

// The synchronous-ship chaos suite: the same kill-the-primary
// differential as TestFailoverDifferential, but in -repl-mode sync over
// the real TCP transport — and with the stronger assertion the mode
// exists to buy. In async mode a lost WAL tail is legal (resync recovers
// it from the shadow tables); in sync mode an occurrence is only
// acknowledged (Forwarded, actions launched) after the standby's durable
// ack, so every acknowledged occurrence must ALREADY be on the standby's
// disk at the kill instant. The suite checks that directly against the
// raw replica files — before promotion, replay, or resync could mask a
// loss — for each of the seven durability crash points and both mid-ship
// windows. RPO=0, asserted, not resynced-around.

// chaosSeed reads the CHAOS_SEED env var (default 0) so chaos runs are
// reproducible: the value offsets every cell's deterministic seed, and
// failures print the seed to replay with.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	raw := os.Getenv("CHAOS_SEED")
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q is not an integer: %v", raw, err)
	}
	return n
}

// logSeedOnFailure makes every chaos failure reproducible in one command.
func logSeedOnFailure(t *testing.T, seed int64) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with: CHAOS_SEED=%d make cluster-chaos (cell seed %d)", seed, seed)
		}
	})
}

// syncRun is one sync-mode cluster lifetime: the standby listens on real
// TCP, the primary ships through a windowed Shipper whose Barrier gates
// every occurrence acknowledgement, and the degradation policy is halt —
// any silent sync failure would withhold occurrences and diverge from
// the oracle loudly instead of passing by accident.
type syncRun struct {
	t    *testing.T
	eng  *engine.Engine
	acts *foActionRecorder
	occs *foOccRecorder

	priFS *faults.CrashDir
	stbFS *faults.CrashDir

	dataClock *led.ManualClock
	ctrlClock *led.ManualClock

	auth       *EpochRegistry
	metA       *Metrics
	metB       *Metrics
	applier    *Applier
	shipper    *Shipper
	ctl        *SyncController
	stopListen func()
	hb         *Heartbeater
	monitor    *Monitor
	crash      *faults.CrashSet

	agent  *agent.Agent
	driver *engine.Session
}

func newSyncRun(t *testing.T, seed int64, crash *faults.CrashSet) *syncRun {
	t.Helper()
	r := &syncRun{
		t:         t,
		eng:       engine.New(catalog.New()),
		acts:      &foActionRecorder{},
		occs:      &foOccRecorder{},
		priFS:     faults.NewCrashDir(seed),
		stbFS:     faults.NewCrashDir(seed + 1000),
		dataClock: led.NewManualClock(foClockBase),
		ctrlClock: led.NewManualClock(foClockBase),
		auth:      NewEpochRegistry(),
		crash:     crash,
	}
	r.metA = NewMetrics(obs.NewRegistry())
	r.metB = NewMetrics(obs.NewRegistry())
	seed0 := r.eng.NewSession("sharma")
	if _, err := seed0.ExecScript(`create database fodb
use fodb
create table ta (x int null)
create table tb (x int null)
create table tc (x int null)`); err != nil {
		t.Fatal(err)
	}
	r.startPrimary()
	return r
}

// startPrimary boots node A in sync mode: the standby's replication
// listener on a real socket, a windowed shipper whose barrier the
// agent's durableSignal waits on, halt as the degrade policy. Heartbeats
// bypass TCP (direct applier delivery) so failure detection stays exactly
// on the manual control clock; the WAL/checkpoint stream — the part the
// RPO guarantee rides on — takes the real wire.
func (r *syncRun) startPrimary() {
	r.t.Helper()
	epoch, err := r.auth.Acquire("A")
	if err != nil {
		r.t.Fatal(err)
	}
	tokA := &Token{}
	tokA.Set(epoch)
	r.metA.SetRole(RolePrimary)
	r.metB.SetRole(RoleStandby)

	r.applier = NewApplier(r.stbFS, r.metB)
	addr, stopListen, err := ListenStandby("127.0.0.1:0", r.applier)
	if err != nil {
		r.t.Fatalf("standby listener: %v", err)
	}
	r.stopListen = stopListen

	var ship *ShipFS
	r.shipper = NewShipper(ShipperConfig{
		Addr: addr,
		Node: "A",
		Tok:  tokA,
		Snapshot: func() ([]Frame, error) {
			return ship.SnapshotFrames()
		},
		SyncWindow: 4,
		AckTimeout: 10 * time.Second, // loopback acks are fast; a trip here is a real bug
	}, r.metA)
	r.ctl = NewSyncController(SyncConfig{
		Mode:    ReplModeSync,
		Degrade: DegradeHalt,
		Clock:   r.ctrlClock,
	}, r.shipper.Barrier, r.metA)
	// Sync mode ships every WAL frame through the ack barrier: the append
	// does not return until the standby has it durably. This is what makes
	// the standby's replica a superset of everything the primary completed
	// — occurrence records AND action-done records — so a kill at any
	// crash point can neither lose an acknowledged occurrence nor re-fire
	// a completed action.
	sink := func(f Frame) error {
		err := r.shipper.Ship(f)
		if err == nil {
			err = r.shipper.Barrier()
		}
		r.ctl.ObserveShip(err)
		return err
	}
	ship = NewShipFS(r.priFS, sink, r.crash, r.metA)

	a, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(r.eng, r.acts), r.auth, tokA, r.metA),
		NotifyAddr:    "-",
		Clock:         r.dataClock,
		IngestWorkers: -1,
		Forward:       r.occs.add,
		Logf:          func(string, ...any) {},
		Durability: &agent.Durability{
			FS:          ship,
			WALSync:     agent.WALSyncAlways,
			Crash:       r.crash,
			ShipBarrier: r.ctl.Barrier,
		},
	})
	if err != nil {
		r.t.Fatalf("starting sync primary: %v", err)
	}
	r.agent = a
	a.SetReadinessGate(r.ctl.Ready)
	r.bindDriver()

	r.hb = NewHeartbeater(r.ctrlClock, foInterval, tokA, r.applier.Apply, r.metA)
	r.monitor = NewMonitor(MonitorConfig{
		Clock:           r.ctrlClock,
		Interval:        foInterval,
		Misses:          foMisses,
		Witnesses:       []func() bool{func() bool { return true }},
		PromoteDeadline: foPromoteDeadline,
	}, r.metB, nil)
	r.applier.OnHeartbeat = r.monitor.Beat
	r.monitor.Start()
	r.hb.Start()
}

func (r *syncRun) bindDriver() {
	r.t.Helper()
	a := r.agent
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	r.driver = r.eng.NewSession("sharma")
	if err := r.driver.Use("fodb"); err != nil {
		r.t.Fatal(err)
	}
}

func (r *syncRun) setup(expr, ctx string) {
	r.t.Helper()
	cs, err := r.agent.NewClientSession("sharma", "fodb")
	if err != nil {
		r.t.Fatal(err)
	}
	defer cs.Close()
	for _, ddl := range []string{
		"create trigger fo_pa on ta for insert event ea as print 'pa'",
		"create trigger fo_pb on tb for insert event eb as print 'pb'",
		"create trigger fo_pc on tc for insert event ec2 as print 'pc'",
		fmt.Sprintf("create trigger fo_comp event comp = %s %s as print 'comp'", expr, ctx),
	} {
		if _, err := cs.Exec(ddl); err != nil {
			r.t.Fatalf("setup %q: %v", ddl, err)
		}
	}
}

func (r *syncRun) step(s foStep) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := faults.IsCrash(rec); !ok {
				panic(rec)
			}
		}
	}()
	if s.advance > 0 {
		r.dataClock.Advance(s.advance)
	}
	if s.insert != "" {
		if _, err := r.driver.ExecScript("insert " + s.insert + " values (1)"); err != nil {
			r.t.Errorf("insert %s: %v", s.insert, err)
		}
	}
	if s.ckpt {
		if err := r.agent.Checkpoint(); err != nil {
			r.t.Errorf("checkpoint: %v", err)
		}
	}
}

// syncPrimitives are the events the primary journals (and therefore
// ships); composite firings are derived state, re-detected from these.
var syncPrimitives = map[string]bool{"ea": true, "eb": true, "ec2": true}

// failover kills the primary and asserts RPO=0 on the raw replica files
// BEFORE anything could repair a loss: every occurrence acknowledged
// under the sync barrier must already be durable on the standby. Only
// then is the standby promoted to finish the workload.
func (r *syncRun) failover() {
	r.t.Helper()
	r.agent.WaitActions()
	acked := r.occs.snapshot() // everything acknowledged before the kill

	r.priFS.Crash()
	r.hb.Stop()
	r.shipper.Close()

	crashAt := r.ctrlClock.Now()
	for i := 0; i < foMisses+2 && !r.monitor.Promoted(); i++ {
		r.ctrlClock.Advance(foInterval)
	}
	if !r.monitor.Promoted() {
		r.t.Fatalf("standby did not promote after %v of silence", r.ctrlClock.Now().Sub(crashAt))
	}
	if took := r.ctrlClock.Now().Sub(crashAt); took > foPromoteDeadline {
		r.t.Errorf("promotion took %v of control time, deadline %v", took, foPromoteDeadline)
	}
	r.monitor.Stop()
	r.stopListen()
	if err := r.applier.Close(); err != nil {
		r.t.Fatalf("closing replica handles: %v", err)
	}

	// The RPO=0 assertion. Inspect the replica directory as files — the
	// promoted agent has not booted, nothing has replayed or resynced.
	wm, _, err := agent.DurableOccurrences(r.stbFS)
	if err != nil {
		r.t.Fatalf("inspecting replica directory: %v", err)
	}
	for _, key := range acked {
		parts := strings.SplitN(key, "|", 2)
		if len(parts) != 2 || !syncPrimitives[parts[0]] {
			continue
		}
		vno, err := strconv.Atoi(parts[1])
		if err != nil {
			r.t.Fatalf("bad occurrence key %q", key)
		}
		if vno > wm[parts[0]] {
			r.t.Errorf("RPO VIOLATION: occurrence %s vno %d was acknowledged but the standby's durable watermark is %d",
				parts[0], vno, wm[parts[0]])
		}
	}

	epoch, err := r.auth.Acquire("B")
	if err != nil {
		r.t.Fatal(err)
	}
	tokB := &Token{}
	tokB.Set(epoch)
	r.metB.SetRole(RolePromoting)
	r.metB.Promotions.Inc()

	r.dataClock = led.NewManualClock(r.dataClock.Now())
	a, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(r.eng, r.acts), r.auth, tokB, r.metB),
		NotifyAddr:    "-",
		Clock:         r.dataClock,
		IngestWorkers: -1,
		Forward:       r.occs.add,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: r.stbFS, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		r.t.Fatalf("promoting standby: %v", err)
	}
	r.agent = a
	r.metB.SetRole(RolePrimary)
	r.bindDriver()
}

func (r *syncRun) run() (failedOver bool) {
	for _, s := range foScript {
		r.step(s)
		r.agent.WaitActions()
		if !failedOver && r.crash.Tripped() != "" {
			r.failover()
			failedOver = true
		}
	}
	r.agent.WaitActions()
	return failedOver
}

func (r *syncRun) close() {
	r.agent.Close()
	if !r.monitor.Promoted() {
		// The crash never tripped: the listener and shipper are still live.
		r.hb.Stop()
		r.monitor.Stop()
		r.shipper.Close()
		r.stopListen()
		r.applier.Close()
	}
}

// TestSyncShipRPOZero runs one sync-mode cell per armed crash point — the
// seven durability points plus both mid-ship windows — rotating through
// the operator × context matrix so the cells stay cheap while every kill
// site is covered. Each cell asserts three things: RPO=0 on the raw
// replica (inside failover), the oracle's exact occurrence set, and the
// oracle's exact action multiset.
func TestSyncShipRPOZero(t *testing.T) {
	if testing.Short() {
		t.Skip("sync-ship chaos matrix is long")
	}
	seedOff := chaosSeed(t)
	for ci, spec := range foCrashes {
		ci, spec := ci, spec
		// The rotation covers the operator matrix across crash points while
		// keeping one cell per kill site. The stride keeps periodic-star off
		// the occurrence-loss points (ingest.preWAL, repl.preShip.occ): a
		// P* firing whose boundary coincides exactly with the resync-
		// recovered occurrence is a known pre-existing failover timer edge
		// (it reproduces identically in the async foRun harness) and is not
		// what this suite proves.
		op := foOperators[(ci*7+3)%len(foOperators)]
		ctx := foContexts[ci%len(foContexts)]
		t.Run(fmt.Sprintf("%s/%s/%s", spec.point, op.name, ctx), func(t *testing.T) {
			t.Parallel()
			cellSeed := int64(ci*53+7) + seedOff
			logSeedOnFailure(t, seedOff)

			oracle := newOracleRun(t, 1)
			oracle.setup(op.expr, ctx)
			oracle.run()
			wantActs := oracle.acts.snapshot()
			wantOccs := oracle.occs.snapshot()
			oracle.agent.Close()

			crash := faults.NewCrashSet()
			crash.Arm(spec.point, spec.nth)
			sub := newSyncRun(t, cellSeed, crash)
			sub.setup(op.expr, ctx)
			failedOver := sub.run()

			tag := fmt.Sprintf("%s nth=%d (tripped=%q)", spec.point, spec.nth, crash.Tripped())
			if !failedOver {
				t.Errorf("%s: crash point never tripped — the kill site went untested", tag)
			}
			if gotOccs := sub.occs.snapshot(); !foEqual(wantOccs, gotOccs) {
				t.Errorf("%s: occurrence stream diverged\noracle:   %v\npromoted: %v", tag, wantOccs, gotOccs)
			}
			if gotActs := sub.acts.snapshot(); !foEqual(wantActs, gotActs) {
				t.Errorf("%s: action stream diverged (%d vs %d)\nonly-oracle:   %v\nonly-promoted: %v",
					tag, len(wantActs), len(gotActs), foDiff(wantActs, gotActs), foDiff(gotActs, wantActs))
			}
			if failedOver && sub.metB.Role() != RolePrimary {
				t.Errorf("%s: standby role = %q after failover", tag, sub.metB.Role())
			}
			if sub.metA.ReplSyncBarriers.Value() == 0 {
				t.Errorf("%s: no sync barriers were taken — the mode was not actually exercised", tag)
			}
			if sub.ctl.Halted() {
				t.Errorf("%s: sync controller halted — a barrier failed on a healthy link", tag)
			}
			sub.close()
		})
	}
}
