package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

// The degradation ladder, rung by rung: healthy sync passes the barrier;
// a failure under the async policy degrades loudly (gauge up, barrier
// skipped) instead of stalling; the first successful ship re-enters
// sync; and the halt policy latches.
func TestSyncControllerDegradeAsync(t *testing.T) {
	clock := led.NewManualClock(foClockBase)
	met := NewMetrics(obs.NewRegistry())
	var barrierErr error
	barriers := 0
	ctl := NewSyncController(SyncConfig{
		Mode: ReplModeSync, Degrade: DegradeAsync, Grace: 10 * time.Second, Clock: clock,
	}, func() error { barriers++; return barrierErr }, met)

	if err := ctl.Barrier(); err != nil {
		t.Fatalf("healthy barrier: %v", err)
	}
	if barriers != 1 || met.ReplSyncBarriers.Value() != 1 {
		t.Fatalf("barriers = %d / %d, want 1/1", barriers, met.ReplSyncBarriers.Value())
	}

	barrierErr = errors.New("standby gone")
	if err := ctl.Barrier(); err != nil {
		t.Fatalf("async degrade must not surface the failure: %v", err)
	}
	if !ctl.Degraded() || met.ReplDegraded.Value() != 1 {
		t.Fatalf("degraded = %v gauge = %d, want true/1", ctl.Degraded(), met.ReplDegraded.Value())
	}
	if met.ReplSyncTimeouts.Value() != 1 {
		t.Fatalf("timeouts = %d, want 1", met.ReplSyncTimeouts.Value())
	}

	// While degraded the barrier is skipped entirely — occurrences must
	// not each stall for the ack deadline against a dead standby.
	if err := ctl.Barrier(); err != nil || barriers != 2 {
		t.Fatalf("degraded barrier err=%v calls=%d, want nil/2", err, barriers)
	}

	// A successful ship (the heartbeat path re-dialing) re-enters sync.
	ctl.ObserveShip(nil)
	if ctl.Degraded() || met.ReplDegraded.Value() != 0 {
		t.Fatalf("recovery did not clear degraded state")
	}
	barrierErr = nil
	if err := ctl.Barrier(); err != nil || barriers != 3 {
		t.Fatalf("post-recovery barrier err=%v calls=%d, want nil/3", err, barriers)
	}
}

func TestSyncControllerHaltLatches(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	ctl := NewSyncController(SyncConfig{
		Mode: ReplModeSync, Degrade: DegradeHalt, Clock: led.NewManualClock(foClockBase),
	}, func() error { return errors.New("standby gone") }, met)

	if err := ctl.Barrier(); !errors.Is(err, ErrReplHalted) {
		t.Fatalf("halt policy returned %v, want ErrReplHalted", err)
	}
	if !ctl.Halted() || met.ReplHalted.Value() != 1 || met.ReplDegraded.Value() != 1 {
		t.Fatalf("halt state not latched (halted=%v halted-gauge=%d degraded-gauge=%d)",
			ctl.Halted(), met.ReplHalted.Value(), met.ReplDegraded.Value())
	}
	// Latched: even a later successful ship does not silently resume.
	ctl.ObserveShip(nil)
	if err := ctl.Barrier(); !errors.Is(err, ErrReplHalted) {
		t.Fatalf("halt did not latch: %v", err)
	}
	if state, ok := ctl.Ready(); ok || state != "repl-halted" {
		t.Fatalf("Ready() = (%q, %v), want (repl-halted, false)", state, ok)
	}
}

func TestSyncControllerAsyncModeNoops(t *testing.T) {
	ctl := NewSyncController(SyncConfig{Mode: ReplModeAsync},
		func() error { return errors.New("must not be called") }, nil)
	if err := ctl.Barrier(); err != nil {
		t.Fatalf("async-mode barrier: %v", err)
	}
	if state, ok := ctl.Ready(); !ok || state != "" {
		t.Fatalf("async-mode Ready() = (%q, %v)", state, ok)
	}
}

// The satellite regression test: a sync primary whose standby has been
// unreachable past the grace window must fail its /readyz probe with the
// repl-degraded state and raise eca_cluster_repl_degraded — within the
// grace window it stays ready (a blip must not eject it from rotation).
func TestReadyzFailsWhenSyncPeerUnreachable(t *testing.T) {
	eng := engine.New(catalog.New())
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript("create database rdb"); err != nil {
		t.Fatal(err)
	}
	clock := led.NewManualClock(foClockBase)
	met := NewMetrics(obs.NewRegistry())
	ctl := NewSyncController(SyncConfig{
		Mode: ReplModeSync, Degrade: DegradeAsync, Grace: 10 * time.Second, Clock: clock,
	}, func() error { return errors.New("dial tcp: connection refused") }, met)

	a, err := agent.New(agent.Config{
		Dial:          agent.LocalDialer(eng),
		NotifyAddr:    "-",
		Clock:         led.NewManualClock(foClockBase),
		IngestWorkers: -1,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: faults.NewCrashDir(3), WALSync: agent.WALSyncAlways, ShipBarrier: ctl.Barrier},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SetRoleFunc(func() string { return RolePrimary })
	a.SetReadinessGate(ctl.Ready)

	srv := httptest.NewServer(a.AdminHandler())
	defer srv.Close()
	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	if code, body := readyz(); code != http.StatusOK {
		t.Fatalf("healthy primary /readyz = %d %q, want 200", code, body)
	}

	// The peer dies; the first barrier failure degrades the link.
	if err := ctl.Barrier(); err != nil {
		t.Fatal(err)
	}
	if met.ReplDegraded.Value() != 1 {
		t.Fatalf("eca_cluster_repl_degraded = %d, want 1", met.ReplDegraded.Value())
	}
	// Inside the grace window the node stays in rotation.
	clock.Advance(5 * time.Second)
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("/readyz failed inside the grace window: %d", code)
	}
	// Past it, readiness must fail with the degraded state.
	clock.Advance(5 * time.Second)
	if code, body := readyz(); code != http.StatusServiceUnavailable || body != "repl-degraded\n" {
		t.Fatalf("/readyz past grace = %d %q, want 503 repl-degraded", code, body)
	}

	// The standby comes back: one successful ship restores readiness.
	ctl.ObserveShip(nil)
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", code)
	}
	if met.ReplDegraded.Value() != 0 {
		t.Fatalf("eca_cluster_repl_degraded = %d after recovery, want 0", met.ReplDegraded.Value())
	}
}

// Shipper.Barrier against a real standby: returns only after the
// cumulative ack covers everything shipped, leaving zero lag.
func TestShipperBarrierDrains(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	ap := NewApplier(faults.NewCrashDir(5), met)
	addr, stop, err := ListenStandby("127.0.0.1:0", ap)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	s := NewShipper(ShipperConfig{Addr: addr, Node: "A", SyncWindow: 2, AckTimeout: 5 * time.Second}, met)
	defer s.Close()
	for i := 0; i < 10; i++ {
		f := Frame{Kind: FrameFileOpen, Name: fmt.Sprintf("wal-%d", i)}
		if err := s.Ship(f); err != nil {
			t.Fatalf("ship %d: %v", i, err)
		}
	}
	if err := s.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	if recs, bytes := s.Lag(); recs != 0 || bytes != 0 {
		t.Fatalf("lag after barrier = (%d, %d), want (0, 0)", recs, bytes)
	}
}

// A standby that accepts but never acks must trip the per-record
// deadline: the window admission (or the barrier) fails with
// ErrAckTimeout instead of wedging the primary forever.
func TestShipperAckTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow the stream, never ack
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	s := NewShipper(ShipperConfig{
		Addr: ln.Addr().String(), Node: "A",
		SyncWindow: 1, AckTimeout: 100 * time.Millisecond,
	}, nil)
	defer s.Close()

	// The hello frame already occupies the window, so admission of the
	// first ship, the second ship, or an explicit barrier — whichever
	// waits first on the silent peer — must fail on deadline.
	err = s.Ship(Frame{Kind: FrameFileOpen, Name: "wal-1"})
	if err == nil {
		err = s.Ship(Frame{Kind: FrameFileOpen, Name: "wal-2"})
	}
	if err == nil {
		err = s.Barrier()
	}
	if !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("silent standby produced %v, want ErrAckTimeout", err)
	}
}

// Acks must correspond to durable applies: the standby writes its
// cumulative count only after Applier.Apply returns, so a shipper that
// has seen ack N can rely on N frames being fsynced. This test speaks
// the wire format directly to pin the ack framing (8-byte LE cumulative
// count per frame).
func TestStandbyAcksAreCumulativeAndPostApply(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	dir := faults.NewCrashDir(6)
	ap := NewApplier(dir, met)
	addr, stop, err := ListenStandby("127.0.0.1:0", ap)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i, f := range []Frame{
		{Kind: FrameHello, Name: "X", Payload: binary.AppendUvarint(nil, 1)},
		{Kind: FrameFileOpen, Name: "wal-9"},
		{Kind: FrameFileData, Name: "wal-9", Payload: []byte("abc")},
	} {
		if _, err := conn.Write(EncodeFrame(f)); err != nil {
			t.Fatal(err)
		}
		var ack [8]byte
		if _, err := ioReadFull(conn, ack[:]); err != nil {
			t.Fatalf("reading ack %d: %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(ack[:]); got != uint64(i+1) {
			t.Fatalf("ack %d = %d, want %d", i, got, i+1)
		}
	}
	if data, err := dir.ReadFile("wal-9"); err != nil || string(data) != "abc" {
		t.Fatalf("replica file = %q, %v; the ack outran the durable apply", data, err)
	}
}

func ioReadFull(conn net.Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := conn.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
