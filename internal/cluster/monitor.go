package cluster

import (
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/led"
)

// Heartbeater is the primary's liveness beacon: every interval it ships
// one FrameHeartbeat carrying a monotonic sequence number and the node's
// current fencing epoch. It runs on the led.Clock seam — the chaos suite
// drives it with a ManualClock, so "the primary went silent" is a test
// step, not a sleep.
type Heartbeater struct {
	clock    led.Clock
	interval time.Duration
	tok      *Token
	sink     Sink
	met      *Metrics

	mu      sync.Mutex
	seq     uint64 // guarded by mu
	stopped bool   // guarded by mu
	cancel  func() // pending timer; guarded by mu
}

// NewHeartbeater returns a stopped beacon; Start arms it.
func NewHeartbeater(clock led.Clock, interval time.Duration, tok *Token, sink Sink, met *Metrics) *Heartbeater {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return &Heartbeater{clock: clock, interval: interval, tok: tok, sink: sink, met: met}
}

// Start emits one beat immediately and then every interval until Stop.
func (h *Heartbeater) Start() {
	h.mu.Lock()
	h.stopped = false
	h.mu.Unlock()
	h.beat()
}

// beat sends one heartbeat and re-arms the timer.
func (h *Heartbeater) beat() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.seq++
	seq := h.seq
	h.cancel = h.clock.AfterFunc(h.interval, h.beat)
	h.mu.Unlock()
	_ = h.sink(Frame{Kind: FrameHeartbeat, Payload: heartbeatPayload(seq, h.tok.Epoch())})
	if h.met != nil {
		h.met.HeartbeatsSent.Inc()
	}
}

// Stop silences the beacon (idempotent). A dead process stops beating
// without calling Stop — that is the failure the monitor detects.
func (h *Heartbeater) Stop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stopped = true
	if h.cancel != nil {
		h.cancel()
		h.cancel = nil
	}
}

// MonitorConfig tunes failure detection.
type MonitorConfig struct {
	// Clock drives the check cadence (required; ManualClock in tests).
	Clock led.Clock
	// Interval is how often the monitor checks for fresh beats; it should
	// match (or slightly exceed) the primary's heartbeat interval.
	Interval time.Duration
	// Misses is the hysteresis threshold: this many consecutive intervals
	// without a beat before the primary is suspected. One dropped
	// datagram or a scheduling hiccup must not trigger a failover.
	Misses int
	// Witnesses are polled once the miss threshold is reached; each
	// returns true when it, too, cannot reach the primary. Promotion
	// requires a strict majority of (witnesses + this monitor) — the
	// missed-heartbeat quorum that keeps one partitioned standby from
	// promoting itself while everyone else still sees the primary.
	Witnesses []func() bool
	// PromoteDeadline bounds suspicion-to-promotion; the failover suite
	// asserts it on the deterministic clock. Informational (the monitor
	// does not abandon a promotion that overruns it; the metric and test
	// surface it).
	PromoteDeadline time.Duration
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Misses <= 0 {
		c.Misses = 3
	}
	if c.PromoteDeadline <= 0 {
		c.PromoteDeadline = 10 * c.Interval
	}
	return c
}

// Monitor watches the heartbeat stream on a standby and decides when the
// primary is dead. Hysteresis works in both directions: Misses
// consecutive silent intervals to suspect, and a single fresh beat to
// clear the count — a flapping link keeps resetting the fuse instead of
// accumulating toward a spurious failover.
type Monitor struct {
	cfg MonitorConfig
	met *Metrics

	mu       sync.Mutex
	beats    uint64    // beats observed since the last tick; guarded by mu
	lastSeq  uint64    // highest sequence seen; guarded by mu
	misses   int       // consecutive silent intervals; guarded by mu
	promoted bool      // a promotion was demanded; guarded by mu
	stopped  bool      // guarded by mu
	cancel   func()    // pending timer; guarded by mu
	suspect  time.Time // when the miss threshold was crossed; guarded by mu

	// onPromote fires (once) outside mu when the quorum agrees the
	// primary is dead.
	onPromote func()
}

// NewMonitor returns an idle monitor; Start arms its check cadence.
func NewMonitor(cfg MonitorConfig, met *Metrics, onPromote func()) *Monitor {
	return &Monitor{cfg: cfg.withDefaults(), met: met, onPromote: onPromote}
}

// Beat observes one heartbeat (wire the Applier's OnHeartbeat here).
// Out-of-order or duplicate beats — UDP relays, reconnect replays — only
// ever count once: sequence numbers must advance.
func (m *Monitor) Beat(seq, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq <= m.lastSeq {
		return
	}
	m.lastSeq = seq
	m.beats++
	m.misses = 0
	m.suspect = time.Time{}
}

// Start begins periodic checks; the first runs one interval from now.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = false
	m.cancel = m.cfg.Clock.AfterFunc(m.cfg.Interval, m.tick)
}

// Stop disarms the monitor (idempotent; a fired promotion stays fired).
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	if m.cancel != nil {
		m.cancel()
		m.cancel = nil
	}
}

// Misses reports the current consecutive-silent-interval count.
func (m *Monitor) Misses() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.misses
}

// Promoted reports whether the monitor has demanded a promotion.
func (m *Monitor) Promoted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// tick is one check interval: count a miss or reset, then decide.
func (m *Monitor) tick() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.cancel = m.cfg.Clock.AfterFunc(m.cfg.Interval, m.tick)
	promote := false
	if m.beats == 0 {
		m.misses++
		if m.met != nil {
			m.met.HeartbeatsMissed.Inc()
		}
		if m.misses == m.cfg.Misses {
			m.suspect = m.cfg.Clock.Now()
		}
		if m.misses >= m.cfg.Misses && !m.promoted && m.quorumLocked() {
			m.promoted = true
			promote = true
		}
	} else {
		m.misses = 0
	}
	m.beats = 0
	m.mu.Unlock()
	if promote && m.onPromote != nil {
		m.onPromote()
	}
}

// quorumLocked polls the witnesses; this monitor's own vote counts.
// Caller holds m.mu.
func (m *Monitor) quorumLocked() bool {
	votes, voters := 1, 1+len(m.cfg.Witnesses)
	for _, w := range m.cfg.Witnesses {
		if w() {
			votes++
		}
	}
	return votes > voters/2
}

// SuspectedAt reports when the miss threshold was crossed (zero when the
// primary is currently believed healthy) — the anchor the failover suite
// measures its promotion deadline from.
func (m *Monitor) SuspectedAt() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspect
}
