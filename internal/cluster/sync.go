package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/led"
)

// Replication modes (-repl-mode). Async is PR 6's fire-and-forget tee:
// local durability never waits for the standby, and a failover may have
// to gap-fill the un-shipped WAL tail from the shadow tables (RPO > 0).
// Sync is the chain-replication setting: an occurrence is not
// acknowledged — not signalled into the detector, so no action can
// launch for it — until the standby has durably appended the shipped WAL
// record and its cumulative ack has come back (RPO = 0 for everything
// acknowledged).
const (
	ReplModeAsync = "async"
	ReplModeSync  = "sync"
)

// Degradation policies for sync mode (-repl-degrade): what a primary does
// when the standby stops acknowledging within the deadline.
const (
	// DegradeAsync drops to asynchronous shipping — loudly (gauge, log,
	// readiness after the grace window) — and re-enters sync the moment a
	// ship to the standby succeeds again. Availability over the zero-RPO
	// guarantee.
	DegradeAsync = "async"
	// DegradeHalt fences the primary's own acknowledgement path: every
	// occurrence stays journaled locally but is withheld from the detector
	// until an operator intervenes or the node is superseded. The zero-RPO
	// guarantee over availability.
	DegradeHalt = "halt"
)

// ErrReplHalted reports that synchronous replication failed under the
// halt policy: the occurrence is locally durable but must not be
// acknowledged, because the standby never confirmed it.
var ErrReplHalted = errors.New("cluster: synchronous replication halted: standby did not acknowledge (-repl-degrade halt)")

// SyncConfig tunes a SyncController.
type SyncConfig struct {
	// Mode selects ReplModeAsync (Barrier is a no-op) or ReplModeSync.
	Mode string
	// Degrade selects the sync-failure policy (default DegradeAsync).
	Degrade string
	// Grace is how long the standby may stay unreachable/unacknowledging
	// before the readiness gate fails the node (default 10s).
	Grace time.Duration
	// Clock drives the grace accounting (default the system clock; the
	// regression tests drive a ManualClock).
	Clock led.Clock
	// Logf receives the loud transitions (default discards).
	Logf func(format string, args ...any)
}

func (c SyncConfig) withDefaults() SyncConfig {
	if c.Mode == "" {
		c.Mode = ReplModeAsync
	}
	if c.Degrade == "" {
		c.Degrade = DegradeAsync
	}
	if c.Grace <= 0 {
		c.Grace = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = led.SystemClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SyncController is the primary's degradation ladder for synchronous
// shipping: sync → degraded-async (loud metrics and, past the grace
// window, a failed readiness probe) → fenced halt, as configured. Its
// Barrier method is the agent's Durability.ShipBarrier hook — called
// after an occurrence is locally durable and before it is signalled —
// and its Ready method is the agent's readiness gate.
type SyncController struct {
	cfg     SyncConfig
	barrier func() error // waits for the standby's durable ack (Shipper.Barrier)
	met     *Metrics

	mu        sync.Mutex
	degraded  bool      // sync guarantee currently suspended; guarded by mu
	downSince time.Time // first failure of the current outage; guarded by mu
	halted    bool      // DegradeHalt tripped; terminal until reset; guarded by mu
}

// NewSyncController wires the ladder over a barrier — Shipper.Barrier in
// production, a seam in tests. met may be nil.
func NewSyncController(cfg SyncConfig, barrier func() error, met *Metrics) *SyncController {
	return &SyncController{cfg: cfg.withDefaults(), barrier: barrier, met: met}
}

// Barrier gates one occurrence acknowledgement. In sync mode it blocks
// until the standby's cumulative ack covers everything shipped so far
// (which includes the occurrence's own WAL record — ShipFS ships before
// the agent calls the barrier). nil means acknowledged; ErrReplHalted
// means the occurrence must be withheld (halt policy). Under the async
// degrade policy a failed barrier returns nil — the occurrence proceeds
// un-replicated — and the controller stays degraded until a ship to the
// standby succeeds again (ObserveShip).
func (c *SyncController) Barrier() error {
	if c.cfg.Mode != ReplModeSync {
		return nil
	}
	c.mu.Lock()
	if c.halted {
		c.mu.Unlock()
		return ErrReplHalted
	}
	if c.degraded {
		// Degraded-async: do not stall every occurrence against a dead
		// standby. Healing is ObserveShip's job — the next successful ship
		// (WAL traffic or a heartbeat re-dialing the link) re-enters sync.
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	if c.met != nil {
		c.met.ReplSyncBarriers.Inc()
	}
	err := c.barrier()
	if err == nil {
		return nil
	}
	if c.met != nil {
		c.met.ReplSyncTimeouts.Inc()
	}
	if c.cfg.Degrade == DegradeHalt {
		c.mu.Lock()
		c.halted = true
		if c.downSince.IsZero() {
			c.downSince = c.cfg.Clock.Now()
		}
		c.mu.Unlock()
		if c.met != nil {
			c.met.ReplDegraded.Set(1)
			c.met.ReplHalted.Set(1)
		}
		c.cfg.Logf("cluster: SYNC REPLICATION HALTED: %v; occurrences stay journaled but unacknowledged until operator action", err)
		return fmt.Errorf("%w: %v", ErrReplHalted, err)
	}
	c.noteFailure(err)
	return nil
}

// ObserveShip records the outcome of one ship attempt to the sync peer.
// Wire it around the Shipper's sink: failures start (or extend) an
// outage, the first success after an outage re-enters sync mode. The
// heartbeat cadence makes this a built-in probe — a primary with no WAL
// traffic still notices the standby's death and recovery.
func (c *SyncController) ObserveShip(err error) {
	if err != nil {
		c.noteFailure(err)
		return
	}
	c.noteSuccess()
}

// noteFailure enters (or extends) the degraded state.
func (c *SyncController) noteFailure(err error) {
	c.mu.Lock()
	entered := !c.degraded
	c.degraded = true
	if c.downSince.IsZero() {
		c.downSince = c.cfg.Clock.Now()
	}
	c.mu.Unlock()
	if entered {
		if c.met != nil {
			c.met.ReplDegraded.Set(1)
		}
		c.cfg.Logf("cluster: sync replication DEGRADED to async: %v (zero-RPO guarantee suspended; readiness fails after %v)", err, c.cfg.Grace)
	}
}

// noteSuccess leaves the degraded state (halt is terminal and stays).
func (c *SyncController) noteSuccess() {
	c.mu.Lock()
	if c.halted || !c.degraded {
		c.mu.Unlock()
		return
	}
	c.degraded = false
	c.downSince = time.Time{}
	c.mu.Unlock()
	if c.met != nil {
		c.met.ReplDegraded.Set(0)
	}
	c.cfg.Logf("cluster: sync replication recovered: standby acknowledging again")
}

// Degraded reports whether the sync guarantee is currently suspended.
func (c *SyncController) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded || c.halted
}

// Halted reports whether the halt policy tripped.
func (c *SyncController) Halted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.halted
}

// Ready is the agent's readiness gate (Agent.SetReadinessGate): a halted
// primary is never ready; a degraded one stops being ready once the
// outage outlives the grace window. ok=true otherwise (state is then
// ignored).
func (c *SyncController) Ready() (state string, ok bool) {
	if c.cfg.Mode != ReplModeSync {
		return "", true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.halted {
		return "repl-halted", false
	}
	if c.degraded && c.cfg.Clock.Now().Sub(c.downSince) >= c.cfg.Grace {
		return "repl-degraded", false
	}
	return "", true
}
