package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// Execer is the slice of a SQL connection the authority needs — both
// client.Conn and agent.Upstream satisfy it, so the epoch register can
// live in the same sqlserverd the agent fronts (the ZooKeeper role,
// played by the one durable shared system the deployment already has).
type Execer interface {
	Exec(sql string) ([]*sqltypes.ResultSet, error)
}

// SQLAuthorityConfig configures a SQLAuthority.
type SQLAuthorityConfig struct {
	// Exec runs statements on the shared SQL server (required).
	Exec Execer
	// Node names this node in the epoch row's holder column.
	Node string
	// Clock drives lease expiry and renewal (default the system clock;
	// tests drive a ManualClock).
	Clock led.Clock
	// LeaseTTL is how long a grant stays valid without renewal (default
	// 5s). A partitioned holder whose lease lapses self-fences: Validate
	// fails locally even before the new primary's CAS lands.
	LeaseTTL time.Duration
	// RenewEvery is the renewal cadence (default LeaseTTL/3).
	RenewEvery time.Duration
	// DB is the database holding the epoch table (default "ecacluster").
	DB string
	// Logf receives lease-loss and renewal-failure reports (default
	// discards).
	Logf func(format string, args ...any)
	// Met counts renewals and losses. May be nil.
	Met *Metrics
}

func (c SQLAuthorityConfig) withDefaults() SQLAuthorityConfig {
	if c.Clock == nil {
		c.Clock = led.SystemClock()
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.RenewEvery <= 0 {
		c.RenewEvery = c.LeaseTTL / 3
	}
	if c.DB == "" {
		c.DB = "ecacluster"
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SQLAuthority implements Authority over an epoch row in the shared SQL
// server: `syseca_epoch(epoch, holder, expires)`, exactly one row.
// Acquire is a compare-and-swap on the epoch column (`update ... where
// epoch = <read value>`; RowsAffected tells who won a race), so promotion
// fences the old primary across machines, not just in-process. Validate
// is purely local — it checks the granted epoch and its lease expiry on
// the Clock seam — because it runs on every guarded upstream execution
// and must not add a network round trip to the action path; the lease is
// what makes the local check sound (a partitioned holder's Validate
// starts failing once the lease it can no longer renew lapses).
type SQLAuthority struct {
	cfg SQLAuthorityConfig

	mu      sync.Mutex
	epoch   uint64    // granted epoch; 0 before Acquire; guarded by mu
	expires time.Time // local lease deadline; guarded by mu
	lost    bool      // lease superseded or renewal declared it dead; guarded by mu
	closed  bool      // guarded by mu
	cancel  func()    // pending renewal timer; guarded by mu
}

// NewSQLAuthority connects the authority to the epoch table, creating the
// database, table, and seed row when absent. Concurrent bootstrap from
// two nodes is safe: creation races lose with "already exists" (ignored)
// and the seed insert is guarded by a re-read, so at worst the loser's
// Acquire CAS simply retries.
func NewSQLAuthority(cfg SQLAuthorityConfig) (*SQLAuthority, error) {
	a := &SQLAuthority{cfg: cfg.withDefaults()}
	if a.cfg.Exec == nil {
		return nil, fmt.Errorf("cluster: SQLAuthority requires an Execer")
	}
	if err := a.bootstrap(); err != nil {
		return nil, err
	}
	return a, nil
}

// exec runs sql inside the authority database.
func (a *SQLAuthority) exec(sql string) ([]*sqltypes.ResultSet, error) {
	return a.cfg.Exec.Exec("use " + a.cfg.DB + "\n" + sql) //ecavet:allow fencedwrite the authority's own epoch row is the fence's ground truth and cannot validate against itself
}

// execIgnoreExists swallows catalog duplicate errors, the expected
// outcome when two nodes bootstrap concurrently.
func (a *SQLAuthority) execIgnoreExists(sql string) error {
	if _, err := a.cfg.Exec.Exec(sql); err != nil { //ecavet:allow fencedwrite bootstrap DDL runs before any epoch exists to validate
		if strings.Contains(err.Error(), "already exists") {
			return nil
		}
		return err
	}
	return nil
}

func (a *SQLAuthority) bootstrap() error {
	if err := a.execIgnoreExists("create database " + a.cfg.DB); err != nil {
		return fmt.Errorf("cluster: creating authority database: %w", err)
	}
	if err := a.execIgnoreExists("use " + a.cfg.DB +
		"\ncreate table syseca_epoch (epoch int null, holder varchar(64) null, expires int null)"); err != nil {
		return fmt.Errorf("cluster: creating epoch table: %w", err)
	}
	row, err := a.readRow()
	if err != nil {
		return err
	}
	if row != nil {
		return nil
	}
	// Two nodes can both see the empty table and both insert; the re-read
	// inside Acquire's CAS loop tolerates the duplicate by always CASing
	// against the max epoch, but avoid it when we can: re-check after a
	// losing insert is impossible here, so just insert — the table was
	// created by whoever got the row in first and duplicate seed rows with
	// epoch 0 are collapsed by the first successful Acquire's update
	// matching `where epoch = 0` on every copy.
	if _, err := a.exec("insert syseca_epoch values (0, '', 0)"); err != nil {
		return fmt.Errorf("cluster: seeding epoch row: %w", err)
	}
	return nil
}

// readRow returns the current epoch row (nil when the table is empty).
// With duplicate seed rows (bootstrap race) the max epoch wins.
func (a *SQLAuthority) readRow() (*epochRow, error) {
	results, err := a.exec("select epoch, holder, expires from syseca_epoch")
	if err != nil {
		return nil, fmt.Errorf("cluster: reading epoch row: %w", err)
	}
	var best *epochRow
	for _, rs := range results {
		if rs.Schema == nil || rs.Schema.Len() < 3 {
			continue
		}
		for _, r := range rs.Rows {
			if len(r) < 3 {
				continue
			}
			e, _ := r[0].AsInt()
			exp, _ := r[2].AsInt()
			row := &epochRow{epoch: uint64(e), holder: r[1].AsString(), expires: exp}
			if best == nil || row.epoch > best.epoch {
				best = row
			}
		}
	}
	return best, nil
}

type epochRow struct {
	epoch   uint64
	holder  string
	expires int64
}

// rowsAffected sums the DML counts across a response.
func rowsAffected(results []*sqltypes.ResultSet) int {
	n := 0
	for _, rs := range results {
		n += rs.RowsAffected
	}
	return n
}

// sqlQuote escapes a string literal for the engine's single-quote syntax.
func sqlQuote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// Acquire CASes the epoch row forward and starts the renewal loop. It is
// called once per promotion; losing a CAS race (another node promoted in
// the same window) retries against the new value, so the returned epoch
// is always strictly greater than any granted before.
func (a *SQLAuthority) Acquire(node string) (uint64, error) {
	for attempt := 0; attempt < 8; attempt++ {
		row, err := a.readRow()
		if err != nil {
			return 0, err
		}
		if row == nil {
			return 0, fmt.Errorf("cluster: epoch row missing (authority not bootstrapped)")
		}
		next := row.epoch + 1
		now := a.cfg.Clock.Now()
		expires := now.Add(a.cfg.LeaseTTL)
		results, err := a.exec(fmt.Sprintf(
			"update syseca_epoch set epoch = %d, holder = %s, expires = %d where epoch = %d",
			next, sqlQuote(node), expires.UnixNano(), row.epoch))
		if err != nil {
			return 0, fmt.Errorf("cluster: epoch CAS: %w", err)
		}
		if rowsAffected(results) == 0 {
			continue // lost the race; re-read and go again
		}
		a.mu.Lock()
		a.epoch = next
		a.expires = expires
		a.lost = false
		a.scheduleRenewLocked()
		a.mu.Unlock()
		return next, nil
	}
	return 0, fmt.Errorf("cluster: epoch CAS kept losing; another node is promoting")
}

// scheduleRenewLocked arms the next renewal. Caller holds a.mu.
func (a *SQLAuthority) scheduleRenewLocked() {
	if a.cancel != nil {
		a.cancel()
	}
	if a.closed || a.lost {
		a.cancel = nil
		return
	}
	a.cancel = a.cfg.Clock.AfterFunc(a.cfg.RenewEvery, a.renew)
}

// renew extends the lease via a CAS on our own epoch. A CAS that matches
// zero rows means a later epoch exists — we were superseded — and the
// authority latches lost. An unreachable server keeps the old expiry:
// the lease simply runs out and Validate starts failing, which is the
// partitioned-zombie self-fence the failover suite exercises.
func (a *SQLAuthority) renew() {
	a.mu.Lock()
	if a.closed || a.lost || a.epoch == 0 {
		a.mu.Unlock()
		return
	}
	epoch := a.epoch
	a.mu.Unlock()

	expires := a.cfg.Clock.Now().Add(a.cfg.LeaseTTL)
	results, err := a.exec(fmt.Sprintf(
		"update syseca_epoch set expires = %d where epoch = %d", expires.UnixNano(), epoch))

	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case err != nil:
		if a.cfg.Met != nil {
			a.cfg.Met.AuthRenewFailed.Inc()
		}
		a.cfg.Logf("cluster: epoch lease renewal failed (epoch %d): %v; lease expires %v", epoch, err, a.expires)
	case rowsAffected(results) == 0:
		a.lost = true
		if a.cfg.Met != nil {
			a.cfg.Met.AuthRenewFailed.Inc()
			a.cfg.Met.AuthLeaseLost.Inc()
		}
		a.cfg.Logf("cluster: epoch %d SUPERSEDED in the SQL register; this node is fenced", epoch)
	default:
		a.expires = expires
		if a.cfg.Met != nil {
			a.cfg.Met.AuthRenewals.Inc()
		}
	}
	a.scheduleRenewLocked()
}

// Validate reports whether epoch is still this node's live grant. Purely
// local: epoch must match the grant, the grant must not have been
// superseded, and the lease must not have lapsed on the Clock seam.
func (a *SQLAuthority) Validate(epoch uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lost {
		return fmt.Errorf("%w (epoch %d superseded in SQL register)", ErrFenced, epoch)
	}
	if epoch == 0 || epoch != a.epoch {
		return fmt.Errorf("%w (held %d, granted %d)", ErrFenced, epoch, a.epoch)
	}
	if !a.cfg.Clock.Now().Before(a.expires) {
		return fmt.Errorf("%w (epoch %d lease expired %v)", ErrFenced, epoch, a.expires)
	}
	return nil
}

// Current reads the live row from the SQL register, falling back to the
// local grant when the server is unreachable.
func (a *SQLAuthority) Current() (node string, epoch uint64) {
	if row, err := a.readRow(); err == nil && row != nil {
		return row.holder, row.epoch
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Node, a.epoch
}

// Lost reports whether this node's grant was superseded.
func (a *SQLAuthority) Lost() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lost
}

// Close stops the renewal loop.
func (a *SQLAuthority) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	if a.cancel != nil {
		a.cancel()
		a.cancel = nil
	}
	return nil
}
