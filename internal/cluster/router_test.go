package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/obs"
)

// eagerClock fires every timer synchronously at scheduling time — the
// zero-backoff clock for retry-path tests.
type eagerClock struct{ now time.Time }

func (c *eagerClock) Now() time.Time { return c.now }
func (c *eagerClock) AfterFunc(d time.Duration, f func()) func() {
	f()
	return func() {}
}

func notif(event string) string { return "ECA1|" + event + "|ta|insert|1" }

// capture is a Forwarder that records delivered datagrams.
type capture struct {
	mu   sync.Mutex
	got  []string
	fail int // fail this many deliveries first
}

func (c *capture) forward(d string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail > 0 {
		c.fail--
		return errors.New("down")
	}
	c.got = append(c.got, d)
	return nil
}

func (c *capture) delivered() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.got...)
}

func newTestRouter(met *Metrics) (*Router, *capture, *capture) {
	a, b := &capture{}, &capture{}
	r := NewRouter(RouterConfig{Clock: &eagerClock{}}, met)
	r.SetMember("node-a", a.forward)
	r.SetMember("node-b", b.forward)
	return r, a, b
}

func TestRouterAffinityOverridesRing(t *testing.T) {
	r, a, b := newTestRouter(nil)
	_ = b
	// Claim every probe event for node-a regardless of where it hashes.
	events := []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"}
	r.ApplyRoute("node-a", events)
	for _, ev := range events {
		if node, ok := r.Owner(ev); !ok || node != "node-a" {
			t.Fatalf("Owner(%s) = %s,%v; want node-a (affinity)", ev, node, ok)
		}
		if err := r.Route(notif(ev)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(a.delivered()); got != len(events) {
		t.Fatalf("node-a received %d datagrams, want %d", got, len(events))
	}
}

func TestRouterRingIsConsistent(t *testing.T) {
	r, _, _ := newTestRouter(nil)
	owners := make(map[string]string)
	for i := 0; i < 50; i++ {
		ev := fmt.Sprintf("ev%d", i)
		node, ok := r.Owner(ev)
		if !ok {
			t.Fatalf("no owner for %s", ev)
		}
		owners[ev] = node
	}
	// Same ring, same answers.
	for ev, want := range owners {
		if got, _ := r.Owner(ev); got != want {
			t.Fatalf("Owner(%s) flapped: %s then %s", ev, want, got)
		}
	}
	// Adding a third node moves only a fraction of the unclaimed keys.
	r.SetMember("node-c", (&capture{}).forward)
	moved := 0
	for ev, was := range owners {
		if got, _ := r.Owner(ev); got != was {
			if got != "node-c" {
				t.Fatalf("Owner(%s) moved %s→%s, not to the new node", ev, was, got)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(owners) {
		t.Fatalf("adding a node moved %d/%d keys; consistent hashing should move some, not all", moved, len(owners))
	}
}

func TestRouterDeadOwnerFallsBackToRing(t *testing.T) {
	r, a, b := newTestRouter(nil)
	_ = a
	r.ApplyRoute("node-gone", []string{"ea"})
	node, ok := r.Owner("ea")
	if !ok || node == "node-gone" {
		t.Fatalf("Owner(ea) = %s,%v; a departed claimant must fall back to the ring", node, ok)
	}
	if err := r.Route(notif("ea")); err != nil {
		t.Fatal(err)
	}
	if len(a.delivered())+len(b.delivered()) != 1 {
		t.Fatal("datagram for a departed claimant was not delivered via the ring")
	}
}

func TestRouterBatchSplitsByOwner(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	r, a, b := newTestRouter(met)
	r.ApplyRoute("node-a", []string{"ea"})
	r.ApplyRoute("node-b", []string{"eb"})
	batch := strings.Join([]string{notif("ea"), notif("eb"), notif("ea")}, "\n")
	if err := r.Route(batch); err != nil {
		t.Fatal(err)
	}
	if got := a.delivered(); len(got) != 1 || strings.Count(got[0], "ea") != 2 {
		t.Fatalf("node-a got %v; want one two-line batch of ea", got)
	}
	if got := b.delivered(); len(got) != 1 || strings.Count(got[0], "eb") != 1 {
		t.Fatalf("node-b got %v; want one eb line", got)
	}
	if met.Routed.With("node-a").Value() != 1 || met.Routed.With("node-b").Value() != 1 {
		t.Fatal("per-node routed counters wrong")
	}
}

func TestRouterRetriesThenDelivers(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	a := &capture{fail: 2}
	r := NewRouter(RouterConfig{Clock: &eagerClock{}, Attempts: 3}, met)
	r.SetMember("node-a", a.forward)
	r.ApplyRoute("node-a", []string{"ea"})
	if err := r.Route(notif("ea")); err != nil {
		t.Fatal(err)
	}
	if len(a.delivered()) != 1 {
		t.Fatal("datagram not delivered after retries")
	}
	if met.RouteRetries.Value() != 2 {
		t.Fatalf("retries = %d, want 2", met.RouteRetries.Value())
	}
}

func TestRouterParksThenRedelivers(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	a := &capture{fail: 1 << 30} // down for good
	r := NewRouter(RouterConfig{Clock: &eagerClock{}, Attempts: 2}, met)
	r.SetMember("node-a", a.forward)
	r.ApplyRoute("node-a", []string{"ea"})
	if err := r.Route(notif("ea")); err != nil {
		t.Fatalf("parking is graceful degradation, not an error: %v", err)
	}
	if r.Parked("node-a") != 1 {
		t.Fatalf("parked = %d, want 1", r.Parked("node-a"))
	}
	// The node comes back (a promotion repointed the name); parked
	// traffic drains through the normal route path.
	a.mu.Lock()
	a.fail = 0
	a.mu.Unlock()
	if n := r.Redeliver("node-a"); n != 1 {
		t.Fatalf("redelivered %d, want 1", n)
	}
	if len(a.delivered()) != 1 {
		t.Fatal("parked datagram lost")
	}
	if r.Parked("node-a") != 0 {
		t.Fatal("parked queue not drained")
	}
}

func TestRouterBoundedParkThenDLQ(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	a := &capture{fail: 1 << 30}
	r := NewRouter(RouterConfig{Clock: &eagerClock{}, Attempts: 1, ParkLimit: 2}, met)
	r.SetMember("node-a", a.forward)
	r.ApplyRoute("node-a", []string{"ea"})
	for i := 0; i < 2; i++ {
		if err := r.Route(notif("ea")); err != nil {
			t.Fatalf("within park bound: %v", err)
		}
	}
	// Third datagram overflows the bound: backpressure error + DLQ entry,
	// never silent loss.
	err := r.Route(notif("ea"))
	if err == nil {
		t.Fatal("overflow must surface as backpressure")
	}
	if met.RouteDLQ.Value() != 1 {
		t.Fatalf("dlq counter = %d, want 1", met.RouteDLQ.Value())
	}
	dls := r.DeadLetters()
	if len(dls) != 1 || dls[0].Node != "node-a" || dls[0].Datagram != notif("ea") {
		t.Fatalf("dead letters = %+v", dls)
	}
}

func TestRouterBadLineDeadLetters(t *testing.T) {
	met := NewMetrics(obs.NewRegistry())
	r, a, _ := newTestRouter(met)
	r.ApplyRoute("node-a", []string{"ea"})
	err := r.Route(notif("ea") + "\ngarbage|line")
	if err == nil {
		t.Fatal("unparseable line must surface in the route result")
	}
	if len(a.delivered()) != 1 {
		t.Fatal("good line must still be delivered")
	}
	if met.RouteBad.Value() != 1 {
		t.Fatalf("bad counter = %d, want 1", met.RouteBad.Value())
	}
	if dls := r.DeadLetters(); len(dls) != 1 || dls[0].Datagram != "garbage|line" {
		t.Fatalf("dead letters = %+v", dls)
	}
}

func TestRouterRemoveMemberReroutes(t *testing.T) {
	r, a, b := newTestRouter(nil)
	aDown := &capture{fail: 1 << 30}
	r.SetMember("node-a", aDown.forward)
	r.ApplyRoute("node-a", []string{"ea"})
	if err := r.Route(notif("ea")); err != nil {
		t.Fatal(err)
	}
	if r.Parked("node-a") != 1 {
		t.Fatal("expected the datagram parked behind the dead node")
	}
	// node-a leaves the membership: its parked traffic re-routes to the
	// survivors via the ring.
	r.RemoveMember("node-a")
	if got := len(a.delivered()) + len(b.delivered()); got != 1 {
		t.Fatalf("rerouted %d datagrams, want 1", got)
	}
}
