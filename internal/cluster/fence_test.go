package cluster

import (
	"errors"
	"testing"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

// TestZombiePrimaryFenced drives the classic asymmetric-partition
// topology with the faults.Pipe partition mode: the primary keeps
// running, but the one-directional pipe carrying its heartbeats and
// replication frames goes dark, the standby wins the missed-heartbeat
// quorum and promotes under a fresh fencing epoch — and then the zombie,
// still believing it leads, tries to fire a rule action. The fencing
// token must reject it terminally (one validation, no retries, the action
// dead-lettered), and the promoted node must fire that action exactly
// once after its resync sweep finds the occurrence the partition ate.
func TestZombiePrimaryFenced(t *testing.T) {
	eng := engine.New(catalog.New())
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database zdb
use zdb
create table ta (x int null)`); err != nil {
		t.Fatal(err)
	}

	acts := &foActionRecorder{}
	auth := NewEpochRegistry()
	metA := NewMetrics(obs.NewRegistry())
	metB := NewMetrics(obs.NewRegistry())
	stbFS := faults.NewCrashDir(7)
	applier := NewApplier(stbFS, metB)

	// One direction of the A↔B link: A's frames ride it, B's acks are
	// implicit (the in-process applier applies synchronously). Partitioning
	// it models the zombie topology — B stops hearing A; A keeps running.
	pipe := faults.NewPipe(faults.PipeConfig{}, func(msg string) {
		if f, _, err := DecodeReplFrame([]byte(msg)); err == nil {
			_ = applier.Apply(f)
		}
	})
	sink := func(f Frame) error {
		pipe.Send(string(EncodeFrame(f)))
		return nil
	}

	epochA, err := auth.Acquire("A")
	if err != nil {
		t.Fatal(err)
	}
	tokA := &Token{}
	tokA.Set(epochA)
	metA.SetRole(RolePrimary)
	metB.SetRole(RoleStandby)

	priFS := faults.NewCrashDir(8)
	dataClockA := led.NewManualClock(foClockBase)
	ctrlClock := led.NewManualClock(foClockBase)
	a, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(eng, acts), auth, tokA, metA),
		NotifyAddr:    "-",
		Clock:         dataClockA,
		IngestWorkers: -1,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: NewShipFS(priFS, sink, nil, metA), WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	monitor := NewMonitor(MonitorConfig{
		Clock:     ctrlClock,
		Interval:  foInterval,
		Misses:    foMisses,
		Witnesses: []func() bool{func() bool { return true }},
	}, metB, nil)
	applier.OnHeartbeat = monitor.Beat
	monitor.Start()
	hb := NewHeartbeater(ctrlClock, foInterval, tokA, sink, metA)
	hb.Start()

	cs, err := a.NewClientSession("sharma", "zdb")
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range []string{
		"create trigger z_pa on ta for insert event ea as print 'pa'",
		"create trigger z_rule event er = ea RECENT as print 'fired'",
	} {
		if _, err := cs.Exec(ddl); err != nil {
			t.Fatalf("%q: %v", ddl, err)
		}
	}
	cs.Close()

	eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	driver := eng.NewSession("sharma")
	if err := driver.Use("zdb"); err != nil {
		t.Fatal(err)
	}

	// Healthy cluster: one event, one action, replicated and beating.
	if _, err := driver.ExecScript("insert ta values (1)"); err != nil {
		t.Fatal(err)
	}
	a.WaitActions()
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One insert fires two rule actions: the primitive trigger's own
	// action and the composite rule's.
	if got := len(acts.snapshot()); got != 2 {
		t.Fatalf("healthy action count = %d, want 2", got)
	}
	ctrlClock.Advance(foInterval) // a beat lands, the monitor's first tick sees it
	if m := monitor.Misses(); m != 0 {
		t.Fatalf("misses with live primary = %d, want 0", m)
	}

	// The partition: A's direction goes dark. A itself is alive and keeps
	// trying to beat into the cable.
	pipe.SetPartitioned(true)
	for i := 0; i < foMisses+2 && !monitor.Promoted(); i++ {
		ctrlClock.Advance(foInterval)
	}
	if !monitor.Promoted() {
		t.Fatal("standby never promoted behind the partition")
	}
	if pipe.Cut() == 0 {
		t.Fatal("partition cut nothing — the zombie's beats were not even attempted")
	}
	monitor.Stop()
	if err := applier.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote B over the replica under a fresh epoch; A's token is now
	// stale everywhere that matters.
	epochB, err := auth.Acquire("B")
	if err != nil {
		t.Fatal(err)
	}
	tokB := &Token{}
	tokB.Set(epochB)
	metB.SetRole(RolePrimary)
	metB.Promotions.Inc()
	b, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(eng, acts), auth, tokB, metB),
		NotifyAddr:    "-",
		Clock:         led.NewManualClock(dataClockA.Now()),
		IngestWorkers: -1,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: stbFS, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatalf("promoting standby: %v", err)
	}
	defer b.Close()
	if got := len(acts.snapshot()); got != 2 {
		t.Fatalf("promotion re-fired an already-done action: %d executions", got)
	}

	// The zombie still owns the engine's notifier: a fresh event lands on
	// A, which detects it and tries to act — and must be fenced.
	if _, err := driver.ExecScript("insert ta values (2)"); err != nil {
		t.Fatal(err)
	}
	a.WaitActions()
	if got := len(acts.snapshot()); got != 2 {
		t.Fatalf("zombie fired an action through a stale token: %d executions", got)
	}
	// Exactly one rejection per attempted action (two rules fired on the
	// insert): a retried fencing error would inflate this.
	if got := metA.FencedRejections.Value(); got != 2 {
		t.Fatalf("fenced rejections = %d, want exactly 2", got)
	}
	var fenced bool
	for _, dl := range a.DeadLetters() {
		if errors.Is(dl.Err, ErrFenced) {
			fenced = true
		}
	}
	if !fenced {
		t.Fatal("fenced action missing from the zombie's dead-letter queue")
	}

	// The survivor's resync sweep recovers the occurrence the partition
	// ate and fires the action exactly once.
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}
	b.WaitActions()
	if got := len(acts.snapshot()); got != 4 {
		t.Fatalf("post-failover action count = %d, want 4 (each firing exactly once)", got)
	}

	// Sanity on the role series and epoch bookkeeping.
	if holder, cur := auth.Current(); holder != "B" || cur != epochB {
		t.Fatalf("authority = (%s, %d), want (B, %d)", holder, cur, epochB)
	}
	if metB.Role() != RolePrimary || metA.Role() != RolePrimary {
		// A still *believes* it is primary — that is the point; only the
		// authority knows better.
		t.Fatalf("roles: A=%q B=%q", metA.Role(), metB.Role())
	}
}
