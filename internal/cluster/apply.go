package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/activedb/ecaagent/internal/storage"
)

// Applier is the standby half of replication: it applies the primary's
// frame stream to a local replica directory, keeping it promotable at
// every frame boundary. Checkpoint images land with the same
// tmp→sync→rename→dirsync protocol the primary's own durability layer
// uses, file appends are synced before the frame counts as applied (the
// applied count is the durability acknowledgement the primary's lag
// gauges subtract), and heartbeats/rule broadcasts are decoded and handed
// to the registered callbacks.
//
// Promotion is deliberately not the Applier's job: it only maintains the
// directory. The monitor decides *when* to boot an agent over it, and
// agent recovery — checkpoint restore, journal replay, pending-action
// resume, shadow-table resync — does the rest.
type Applier struct {
	fs  storage.FS
	met *Metrics

	mu      sync.Mutex
	open    map[string]storage.File // live file handles (wal-N, ...); guarded by mu
	ruleLog storage.File            // replicated rule feed; guarded by mu
	applied uint64                  // frames fully applied; guarded by mu
	peer    string                  // Hello sender; guarded by mu
	epoch   uint64                  // highest epoch seen in Hello/heartbeats; guarded by mu

	// OnHeartbeat, when set, observes every heartbeat frame (the monitor
	// hooks in here). Set before the first Apply; not guarded.
	OnHeartbeat func(seq, epoch uint64)
	// OnRoute, when set, observes ownership broadcasts. Set before the
	// first Apply; not guarded.
	OnRoute func(node string, events []string)
	// OnRule, when set, observes replicated definition records in arrival
	// order. Set before the first Apply; not guarded.
	OnRule func(node string, record []byte)
}

// ruleLogName is the replica file accumulating FrameRule payloads: the
// cluster-wide definition log a promoted node can audit its recovered
// rulebase against.
const ruleLogName = "rules.log"

// NewApplier returns an applier writing into fs. met may be nil.
func NewApplier(fs storage.FS, met *Metrics) *Applier {
	return &Applier{fs: fs, met: met, open: make(map[string]storage.File)}
}

// Applied reports how many frames have been fully applied (written and
// synced) — the acknowledgement count shipped back for lag accounting.
func (ap *Applier) Applied() uint64 {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.applied
}

// Peer reports the node that opened the stream and the highest fencing
// epoch it has announced.
func (ap *Applier) Peer() (node string, epoch uint64) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.peer, ap.epoch
}

// Apply applies one frame. An error means the replica may be behind but
// is never half-applied: the failed frame's file is closed and will be
// reopened on the next append to it.
func (ap *Applier) Apply(f Frame) error {
	err := ap.apply(f)
	if ap.met != nil {
		if err != nil {
			ap.met.ReplErrors.Inc()
		} else {
			ap.met.ReplAppliedFrames.Inc()
		}
	}
	return err
}

func (ap *Applier) apply(f Frame) error {
	switch f.Kind {
	case FrameHello:
		epoch, _ := binary.Uvarint(f.Payload)
		ap.mu.Lock()
		ap.peer = f.Name
		if epoch > ap.epoch {
			ap.epoch = epoch
		}
		ap.applied++
		ap.mu.Unlock()
		return nil

	case FrameHeartbeat:
		seq, epoch, err := decodeHeartbeat(f.Payload)
		if err != nil {
			return err
		}
		ap.mu.Lock()
		if epoch > ap.epoch {
			ap.epoch = epoch
		}
		ap.applied++
		ap.mu.Unlock()
		if ap.met != nil {
			ap.met.HeartbeatsSeen.Inc()
		}
		if ap.OnHeartbeat != nil {
			ap.OnHeartbeat(seq, epoch)
		}
		return nil

	case FrameCkpt:
		if err := ap.publish(f.Name, f.Payload); err != nil {
			return err
		}
		ap.bumpApplied()
		return nil

	case FrameFileOpen:
		ap.mu.Lock()
		defer ap.mu.Unlock()
		if old := ap.open[f.Name]; old != nil {
			if err := old.Close(); err != nil {
				return fmt.Errorf("cluster: closing replica %s: %w", f.Name, err)
			}
		}
		h, err := ap.fs.Create(f.Name)
		if err != nil {
			return fmt.Errorf("cluster: opening replica %s: %w", f.Name, err)
		}
		ap.open[f.Name] = h
		ap.applied++
		return nil

	case FrameFileData:
		ap.mu.Lock()
		defer ap.mu.Unlock()
		h := ap.open[f.Name]
		if h == nil {
			// A data frame with no preceding open can only follow an
			// applier restart mid-stream; the shipper re-ships a full
			// snapshot on reconnect, so this is stream damage, not a
			// recoverable gap.
			return fmt.Errorf("cluster: data for unopened replica file %s", f.Name)
		}
		if err := ap.appendSynced(h, f.Name, f.Payload); err != nil {
			return err
		}
		ap.applied++
		return nil

	case FrameRemove:
		ap.mu.Lock()
		defer ap.mu.Unlock()
		if old := ap.open[f.Name]; old != nil {
			if err := old.Close(); err != nil {
				return fmt.Errorf("cluster: closing replica %s: %w", f.Name, err)
			}
			delete(ap.open, f.Name)
		}
		if err := ap.fs.Remove(f.Name); err != nil {
			return fmt.Errorf("cluster: pruning replica %s: %w", f.Name, err)
		}
		if err := ap.fs.SyncDir(); err != nil {
			return fmt.Errorf("cluster: pruning replica %s: %w", f.Name, err)
		}
		ap.applied++
		return nil

	case FrameRule:
		if err := ap.appendRule(f.Name, f.Payload); err != nil {
			return err
		}
		ap.bumpApplied()
		if ap.OnRule != nil {
			ap.OnRule(f.Name, f.Payload)
		}
		return nil

	case FrameRoute:
		events, err := decodeRoute(f.Payload)
		if err != nil {
			return err
		}
		ap.bumpApplied()
		if ap.OnRoute != nil {
			ap.OnRoute(f.Name, events)
		}
		return nil
	}
	return fmt.Errorf("%w: unhandled kind %d", ErrCorruptFrame, f.Kind)
}

func (ap *Applier) bumpApplied() {
	ap.mu.Lock()
	ap.applied++
	ap.mu.Unlock()
}

// publish writes one complete file image durably under name using the
// primary's own publish protocol: tmp → fsync → rename → dir fsync.
func (ap *Applier) publish(name string, img []byte) error {
	tmp := name + ".tmp"
	h, err := ap.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("cluster: applying %s: %w", name, err)
	}
	if _, err := h.Write(img); err != nil {
		return errors.Join(fmt.Errorf("cluster: applying %s: %w", name, err), h.Close())
	}
	if err := h.Sync(); err != nil {
		return errors.Join(fmt.Errorf("cluster: applying %s: %w", name, err), h.Close())
	}
	if err := h.Close(); err != nil {
		return fmt.Errorf("cluster: applying %s: %w", name, err)
	}
	if err := ap.fs.Rename(tmp, name); err != nil {
		return fmt.Errorf("cluster: publishing %s: %w", name, err)
	}
	if err := ap.fs.SyncDir(); err != nil {
		return fmt.Errorf("cluster: publishing %s: %w", name, err)
	}
	return nil
}

// appendSynced appends to a live replica file and syncs before the frame
// counts as applied — the applied count is a durability promise. Caller
// holds ap.mu.
func (ap *Applier) appendSynced(h storage.File, name string, p []byte) error {
	if _, err := h.Write(p); err != nil {
		return fmt.Errorf("cluster: appending replica %s: %w", name, err)
	}
	if err := h.Sync(); err != nil {
		return fmt.Errorf("cluster: syncing replica %s: %w", name, err)
	}
	return nil
}

// appendRule records one replicated definition in rules.log as
// node-length | node | record-length | record (uvarints), synced.
func (ap *Applier) appendRule(node string, record []byte) error {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if ap.ruleLog == nil {
		// Recreate (not append): the FS seam has no append-open, and the
		// primary re-ships the full definition feed on reconnect anyway.
		h, err := ap.fs.Create(ruleLogName)
		if err != nil {
			return fmt.Errorf("cluster: opening %s: %w", ruleLogName, err)
		}
		ap.ruleLog = h
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(node)))
	buf = append(buf, node...)
	buf = binary.AppendUvarint(buf, uint64(len(record)))
	buf = append(buf, record...)
	return ap.appendSynced(ap.ruleLog, ruleLogName, buf)
}

// Close releases every open replica handle, propagating the first error
// (a failed close after write is a lost-durability bug, not noise).
func (ap *Applier) Close() error {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	var first error
	for name, h := range ap.open {
		if err := h.Close(); err != nil && first == nil {
			first = fmt.Errorf("cluster: closing replica %s: %w", name, err)
		}
		delete(ap.open, name)
	}
	if ap.ruleLog != nil {
		if err := ap.ruleLog.Close(); err != nil && first == nil {
			first = fmt.Errorf("cluster: closing %s: %w", ruleLogName, err)
		}
		ap.ruleLog = nil
	}
	return first
}
