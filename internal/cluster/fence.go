package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// ErrFenced reports a stale fencing token: the node holding it was
// superseded by a promotion and must not commit effects. The agent's
// retry layer classifies it as terminal (it is not a connection failure),
// so a fenced action is dead-lettered exactly once instead of retried
// forever.
var ErrFenced = errors.New("cluster: fenced: this node's epoch was superseded by a promotion")

// Authority is the cluster's single source of truth for the fencing
// epoch — in the paper's deployment an epoch row in the shared SQL server
// every agent already talks to, in tests an in-process registry. Acquire
// is called once per promotion (and at primary startup); Validate is
// called on every guarded upstream execution, so implementations must be
// cheap and safe for concurrent use.
type Authority interface {
	// Acquire grants the caller a fresh epoch, strictly greater than any
	// granted before, recording it as the current holder.
	Acquire(node string) (uint64, error)
	// Validate returns nil when epoch is still the current one, ErrFenced
	// when a later epoch has been granted.
	Validate(epoch uint64) error
	// Current reports the holder and epoch of the latest grant.
	Current() (node string, epoch uint64)
}

// EpochRegistry is the in-process Authority used by tests and
// single-binary deployments.
type EpochRegistry struct {
	mu     sync.Mutex
	holder string // guarded by mu
	epoch  uint64 // guarded by mu
}

// NewEpochRegistry returns a registry with no grants (epoch 0).
func NewEpochRegistry() *EpochRegistry { return &EpochRegistry{} }

func (r *EpochRegistry) Acquire(node string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	r.holder = node
	return r.epoch, nil
}

func (r *EpochRegistry) Validate(epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch != r.epoch {
		return fmt.Errorf("%w (held %d, current %d)", ErrFenced, epoch, r.epoch)
	}
	return nil
}

func (r *EpochRegistry) Current() (string, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.holder, r.epoch
}

// Token carries one node's granted epoch. It is shared between the
// promotion path (which stores) and every fenced connection (which
// loads), hence atomic.
type Token struct{ v atomic.Uint64 }

// Set records a freshly acquired epoch.
func (t *Token) Set(epoch uint64) { t.v.Store(epoch) }

// Epoch reads the node's current epoch.
func (t *Token) Epoch() uint64 { return t.v.Load() }

// FencedDialer wraps an upstream dialer so every Exec first validates the
// node's fencing token against the authority. A zombie ex-primary — one
// that was partitioned away, missed the promotion, and reconnects still
// believing it leads — fails ErrFenced on its first attempted effect:
// the action is dead-lettered and counted, never double-fired. met may
// be nil.
func FencedDialer(inner agent.UpstreamDialer, auth Authority, tok *Token, met *Metrics) agent.UpstreamDialer {
	return func(user, db string) (agent.Upstream, error) {
		up, err := inner(user, db)
		if err != nil {
			return nil, err
		}
		return &fencedUpstream{up: up, auth: auth, tok: tok, met: met}, nil
	}
}

type fencedUpstream struct {
	up   agent.Upstream
	auth Authority
	tok  *Token
	met  *Metrics
}

func (f *fencedUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	if err := f.auth.Validate(f.tok.Epoch()); err != nil {
		if f.met != nil {
			f.met.FencedRejections.Inc()
		}
		return nil, err
	}
	return f.up.Exec(sql)
}

func (f *fencedUpstream) Close() error { return f.up.Close() }
