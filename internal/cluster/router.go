package cluster

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/led"
)

// The router is the cluster's front door for trigger notifications.
// Generated triggers keep firing plain UDP datagrams at one well-known
// address; the router peeks the event name out of each line and forwards
// it to the node that owns that event.
//
// Ownership has two layers. The authoritative one is component affinity:
// every event reachable from the same composite event graph must land on
// one node, or a seq/and detector would see only half its constituents.
// Nodes broadcast their component assignments as FrameRoute frames and
// routers fold them into an affinity table. Underneath sits a consistent
// hash ring — the fallback for events no broadcast has claimed yet, and
// the reason adding a node moves only ~1/N of the unclaimed keys.

// Forwarder delivers one notification datagram to a member node.
type Forwarder func(datagram string) error

// DeadLetter is one notification the router gave up on. Dead letters are
// retained and enumerable — degradation is bounded buffering, then
// backpressure, then this queue; never silent loss.
type DeadLetter struct {
	Node     string // destination at the time of failure ("" when unroutable)
	Datagram string
	Reason   string
}

// RouterConfig tunes forwarding behavior.
type RouterConfig struct {
	// Clock paces retry backoff (required; ManualClock in tests).
	Clock led.Clock
	// Attempts per datagram before parking (default 3).
	Attempts int
	// Backoff after a failed attempt, doubling per retry (default 25ms).
	Backoff time.Duration
	// ParkLimit bounds the per-node parked queue; beyond it datagrams
	// dead-letter and Route reports backpressure (default 1024).
	ParkLimit int
	// DLQLimit bounds retained dead letters; beyond it the oldest are
	// dropped but the counter keeps the truth (default 4096).
	DLQLimit int
	// Replicas is the virtual-node count per member on the hash ring
	// (default 64).
	Replicas int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.ParkLimit <= 0 {
		c.ParkLimit = 1024
	}
	if c.DLQLimit <= 0 {
		c.DLQLimit = 4096
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	return c
}

// ringSlot is one virtual node on the consistent hash ring.
type ringSlot struct {
	hash uint64
	node string
}

// Router forwards notification datagrams to owning nodes.
type Router struct {
	cfg RouterConfig
	met *Metrics

	mu       sync.Mutex
	members  map[string]Forwarder // guarded by mu
	ring     []ringSlot           // sorted by hash; guarded by mu
	affinity map[string]string    // event → owning node; guarded by mu
	parked   map[string][]string  // node → datagrams awaiting Redeliver; guarded by mu
	dlq      []DeadLetter         // guarded by mu
}

// NewRouter returns a router with no members. met may be nil.
func NewRouter(cfg RouterConfig, met *Metrics) *Router {
	return &Router{
		cfg:      cfg.withDefaults(),
		met:      met,
		members:  make(map[string]Forwarder),
		affinity: make(map[string]string),
		parked:   make(map[string][]string),
	}
}

// SetMember adds node or replaces its forwarder (a promotion repoints the
// old primary's name at the survivor without disturbing the affinity
// table). A nil forwarder removes the node from the ring; its parked
// datagrams stay parked until Redeliver or RemoveMember.
func (r *Router) SetMember(node string, fwd Forwarder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fwd == nil {
		delete(r.members, node)
	} else {
		r.members[node] = fwd
	}
	r.rebuildRingLocked()
}

// RemoveMember drops node entirely; its parked datagrams are re-routed by
// ring/affinity on the next Route of each (here they dead-letter if no
// member remains — counted, never dropped silently).
func (r *Router) RemoveMember(node string) {
	r.mu.Lock()
	waiting := r.parked[node]
	delete(r.parked, node)
	delete(r.members, node)
	r.rebuildRingLocked()
	r.mu.Unlock()
	for _, d := range waiting {
		r.Route(d)
	}
}

// rebuildRingLocked recomputes the virtual-node ring. Caller holds r.mu.
func (r *Router) rebuildRingLocked() {
	r.ring = r.ring[:0]
	for node := range r.members {
		for i := 0; i < r.cfg.Replicas; i++ {
			r.ring = append(r.ring, ringSlot{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].hash != r.ring[j].hash {
			return r.ring[i].hash < r.ring[j].hash
		}
		return r.ring[i].node < r.ring[j].node
	})
}

// ApplyRoute folds one ownership broadcast into the affinity table (wire
// the Applier's OnRoute here). Later broadcasts win: a promotion's
// re-broadcast moves whole components in one frame.
func (r *Router) ApplyRoute(node string, events []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range events {
		r.affinity[ev] = node
	}
}

// OwnershipFrame renders the broadcast a node emits to claim its events.
func OwnershipFrame(node string, events []string) Frame {
	return Frame{Kind: FrameRoute, Name: node, Payload: encodeRoute(events)}
}

// Owner reports which node a single event routes to: affinity override
// first, hash ring otherwise. ok is false when the router knows no one.
func (r *Router) Owner(event string) (node string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ownerLocked(event)
}

func (r *Router) ownerLocked(event string) (string, bool) {
	if node, ok := r.affinity[event]; ok {
		if _, alive := r.members[node]; alive {
			return node, true
		}
		// The claimed owner left the membership; fall through to the
		// ring so the event keeps flowing instead of dead-lettering
		// until the successor re-broadcasts.
	}
	if len(r.ring) == 0 {
		return "", false
	}
	h := hash64(event)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].node, true
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Route forwards one datagram, which may carry several newline-separated
// notifications: lines are grouped by owning node and each group is
// forwarded as one batch, preserving the arrival-order batching the
// agent's ingest pipeline relies on. The returned error is the
// backpressure signal — the datagram (or part of it) could not be
// delivered or parked; it is on the DLQ, not lost.
func (r *Router) Route(datagram string) error {
	groups, order, bad := r.split(datagram)
	for _, line := range bad {
		if r.met != nil {
			r.met.RouteBad.Inc()
		}
		r.deadLetter(DeadLetter{Datagram: line, Reason: "unparseable notification"})
	}
	var firstErr error
	for _, node := range order {
		if err := r.forward(node, strings.Join(groups[node], "\n")); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil && len(bad) > 0 {
		firstErr = fmt.Errorf("cluster: %d unroutable notification line(s) dead-lettered", len(bad))
	}
	return firstErr
}

// split groups a datagram's lines by owning node, keeping first-seen node
// order. Lines with no parseable event or no owner land in bad.
func (r *Router) split(datagram string) (groups map[string][]string, order []string, bad []string) {
	groups = make(map[string][]string)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, line := range strings.Split(datagram, "\n") {
		if line == "" {
			continue
		}
		event, err := agent.NotificationEvent(line)
		if err != nil {
			bad = append(bad, line)
			continue
		}
		node, ok := r.ownerLocked(event)
		if !ok {
			bad = append(bad, line)
			continue
		}
		if _, seen := groups[node]; !seen {
			order = append(order, node)
		}
		groups[node] = append(groups[node], line)
	}
	return groups, order, bad
}

// forward attempts delivery to node with retry/backoff, then degrades:
// park (bounded) → dead-letter + error (backpressure).
func (r *Router) forward(node, datagram string) error {
	r.mu.Lock()
	fwd := r.members[node]
	r.mu.Unlock()
	if fwd != nil {
		backoff := r.cfg.Backoff
		for attempt := 0; attempt < r.cfg.Attempts; attempt++ {
			if attempt > 0 {
				if r.met != nil {
					r.met.RouteRetries.Inc()
				}
				r.sleep(backoff)
				backoff *= 2
			}
			if err := fwd(datagram); err == nil {
				if r.met != nil {
					r.met.Routed.With(node).Inc()
				}
				return nil
			}
		}
	}
	r.mu.Lock()
	if len(r.parked[node]) < r.cfg.ParkLimit {
		r.parked[node] = append(r.parked[node], datagram)
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	r.deadLetter(DeadLetter{Node: node, Datagram: datagram, Reason: "delivery failed and parked queue full"})
	return fmt.Errorf("cluster: node %s unreachable and parked queue full (datagram dead-lettered)", node)
}

// sleep blocks for d on the router's clock seam.
func (r *Router) sleep(d time.Duration) {
	ch := make(chan struct{})
	r.cfg.Clock.AfterFunc(d, func() { close(ch) })
	<-ch
}

// Redeliver re-routes everything parked for node — called after a
// promotion repoints or replaces the member. Each datagram goes back
// through Route, so affinity re-broadcasts are honored. It reports how
// many datagrams were re-attempted.
func (r *Router) Redeliver(node string) int {
	r.mu.Lock()
	waiting := r.parked[node]
	delete(r.parked, node)
	r.mu.Unlock()
	for _, d := range waiting {
		r.Route(d)
	}
	return len(waiting)
}

// Parked reports how many datagrams are waiting for node to come back.
func (r *Router) Parked(node string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.parked[node])
}

// deadLetter retains dl (bounded) and counts it.
func (r *Router) deadLetter(dl DeadLetter) {
	if r.met != nil {
		r.met.RouteDLQ.Inc()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dlq = append(r.dlq, dl)
	if over := len(r.dlq) - r.cfg.DLQLimit; over > 0 {
		r.dlq = append(r.dlq[:0:0], r.dlq[over:]...)
	}
}

// DeadLetters snapshots the retained dead-letter queue.
func (r *Router) DeadLetters() []DeadLetter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]DeadLetter(nil), r.dlq...)
}

// UDPForwarder returns a Forwarder that sends each datagram to addr with
// a per-attempt write deadline — the concrete member transport for
// routers fronting real agent processes (the agent's notifier listens on
// UDP already; forwarding reuses the exact wire format triggers emit).
func UDPForwarder(addr string, timeout time.Duration) Forwarder {
	if timeout <= 0 {
		timeout = time.Second
	}
	return func(datagram string) error {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil { //ecavet:allow nowallclock net.Conn deadlines are wall-clock by contract
			return err
		}
		_, err = conn.Write([]byte(datagram))
		return err
	}
}

// ServeUDP binds addr and routes every received datagram until the
// returned stop function is called. It is the standalone router process's
// main loop (examples/distributed/cluster runs it).
func (r *Router) ServeUDP(addr string) (boundAddr string, stop func(), err error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return "", nil, err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64<<10)
		for {
			n, _, err := conn.ReadFromUDP(buf) //ecavet:allow iodeadline notification listener waits for datagrams forever; stop() closes the socket
			if err != nil {
				return // listener closed
			}
			r.Route(string(buf[:n]))
		}
	}()
	return conn.LocalAddr().String(), func() { conn.Close(); wg.Wait() }, nil
}
