package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/obs"
)

// mirror asserts two directories hold identical file sets and bytes.
func mirror(t *testing.T, a, b *faults.CrashDir) {
	t.Helper()
	an, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	bn, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(an, ",") != strings.Join(bn, ",") {
		t.Fatalf("listings diverge:\n primary: %v\n replica: %v", an, bn)
	}
	for _, name := range an {
		ac, err := a.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := b.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ac, bc) {
			t.Fatalf("%s diverges: %d vs %d bytes", name, len(ac), len(bc))
		}
	}
}

func TestShipApplyRoundTrip(t *testing.T) {
	pri := faults.NewCrashDir(1)
	rep := faults.NewCrashDir(2)
	met := NewMetrics(obs.NewRegistry())
	ap := NewApplier(rep, nil)
	ship := NewShipFS(pri, ap.Apply, nil, met)

	// A live WAL-style file: open frame, then per-append data frames.
	w, err := ship.Create("wal-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range [][]byte{{1, 9, 9}, {2, 8}, {1, 7, 7, 7}} {
		if _, err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	// A checkpoint publish: the temp file buffers (no frames), the rename
	// ships one atomic FrameCkpt.
	tf, err := ship.Create("ckpt-2.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Write([]byte("ECACKPT1 image bytes")); err != nil {
		t.Fatal(err)
	}
	if err := tf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ship.Rename("ckpt-2.tmp", "ckpt-2"); err != nil {
		t.Fatal(err)
	}
	if err := ship.SyncDir(); err != nil {
		t.Fatal(err)
	}

	// A prune.
	old, err := ship.Create("wal-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ship.Remove("wal-0"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	mirror(t, pri, rep)
	if ship.Err() != nil {
		t.Fatalf("healthy replication reports error: %v", ship.Err())
	}
	if met.ReplShippedFrames.Value() != ap.Applied() {
		t.Fatalf("shipped %d frames, replica applied %d", met.ReplShippedFrames.Value(), ap.Applied())
	}

	// The snapshot renders the same state onto a fresh directory — the
	// reconnect path a TCP shipper uses after the standby restarts.
	frames, err := ship.SnapshotFrames()
	if err != nil {
		t.Fatal(err)
	}
	fresh := faults.NewCrashDir(3)
	ap2 := NewApplier(fresh, nil)
	for _, f := range frames {
		if err := ap2.Apply(f); err != nil {
			t.Fatalf("snapshot frame %d/%s: %v", f.Kind, f.Name, err)
		}
	}
	if err := ap2.Close(); err != nil {
		t.Fatal(err)
	}
	mirror(t, pri, fresh)
}

func TestShipFailureNeverFailsLocal(t *testing.T) {
	pri := faults.NewCrashDir(4)
	met := NewMetrics(obs.NewRegistry())
	boom := errors.New("standby unreachable")
	healthy := false
	ship := NewShipFS(pri, func(Frame) error {
		if healthy {
			return nil
		}
		return boom
	}, nil, met)

	w, err := ship.Create("wal-1")
	if err != nil {
		t.Fatalf("local create must survive a dead sink: %v", err)
	}
	if _, err := w.Write([]byte{1, 2, 3}); err != nil {
		t.Fatalf("local write must survive a dead sink: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ship.Err(), boom) {
		t.Fatalf("Err() = %v, want the sink failure", ship.Err())
	}
	if met.ReplErrors.Value() == 0 {
		t.Fatal("ship failures were not counted")
	}
	if got, err := pri.ReadFile("wal-1"); err != nil || len(got) != 3 {
		t.Fatalf("local bytes lost: %v %v", got, err)
	}

	healthy = true
	if _, err := w.Write([]byte{4}); err != nil {
		t.Fatal(err)
	}
	if ship.Err() != nil {
		t.Fatalf("Err() sticky after recovery: %v", ship.Err())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestApplierRejectsDataWithoutOpen pins the stream-damage rule: an
// append for a file no open frame announced is an error, not a silent
// create — it can only mean the applier missed part of the stream.
func TestApplierRejectsDataWithoutOpen(t *testing.T) {
	ap := NewApplier(faults.NewCrashDir(5), nil)
	err := ap.Apply(Frame{Kind: FrameFileData, Name: "wal-9", Payload: []byte{1}})
	if err == nil {
		t.Fatal("orphan data frame applied silently")
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	met.SetRole(RoleStandby)
	met.SetRole(RolePrimary)
	met.HeartbeatsSent.Inc()
	met.Promotions.Inc()
	met.FencedRejections.Inc()
	met.ReplLagBytes.Set(42)
	met.ReplLagRecords.Set(2)
	met.Routed.With("node-b").Inc()

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`eca_cluster_role{role="primary"} 1`,
		`eca_cluster_role{role="standby"} 0`,
		"eca_cluster_heartbeats_sent_total 1",
		"eca_cluster_promotions_total 1",
		"eca_cluster_fenced_rejections_total 1",
		"eca_cluster_repl_lag_bytes 42",
		"eca_cluster_repl_lag_records 2",
		`eca_cluster_routed_total{node="node-b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if met.Role() != RolePrimary {
		t.Fatalf("Role() = %q", met.Role())
	}
}
