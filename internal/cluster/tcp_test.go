package cluster

import (
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/obs"
)

// waitFor polls until cond holds or the deadline passes — TCP tests wait
// on real kernel I/O, so a wall-clock bound is the honest tool.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShipperStreamsAndAcks(t *testing.T) {
	rep := faults.NewCrashDir(11)
	metB := NewMetrics(obs.NewRegistry())
	ap := NewApplier(rep, metB)
	addr, stop, err := ListenStandby("127.0.0.1:0", ap)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	tok := &Token{}
	tok.Set(3)
	metA := NewMetrics(obs.NewRegistry())
	sh := NewShipper(ShipperConfig{Addr: addr, Node: "A", Tok: tok}, metA)
	defer sh.Close()

	frames := []Frame{
		{Kind: FrameFileOpen, Name: "wal-1"},
		{Kind: FrameFileData, Name: "wal-1", Payload: []byte{1, 2, 3}},
		{Kind: FrameCkpt, Name: "ckpt-1", Payload: []byte("image")},
		{Kind: FrameRule, Name: "A", Payload: []byte("create trigger ...")},
	}
	for _, f := range frames {
		if err := sh.Ship(f); err != nil {
			t.Fatalf("ship %d: %v", f.Kind, err)
		}
	}
	// Hello + 4 frames all applied and acknowledged.
	waitFor(t, "acks to drain", func() bool { rec, _ := sh.Lag(); return rec == 0 })
	if ap.Applied() != 5 {
		t.Fatalf("applied = %d, want 5", ap.Applied())
	}
	if node, epoch := ap.Peer(); node != "A" || epoch != 3 {
		t.Fatalf("peer = (%s, %d), want (A, 3)", node, epoch)
	}
	if got, err := rep.ReadFile("wal-1"); err != nil || len(got) != 3 {
		t.Fatalf("replica wal-1 = %v, %v", got, err)
	}
	if got, err := rep.ReadFile("ckpt-1"); err != nil || string(got) != "image" {
		t.Fatalf("replica ckpt-1 = %q, %v", got, err)
	}
	if _, bytes := sh.Lag(); bytes != 0 {
		t.Fatalf("lag bytes = %d after full ack", bytes)
	}
}

// TestShipperReconnectsWithSnapshot kills the standby's listener
// mid-stream and brings a new one up on a fresh directory: the next Ship
// must fail loudly (the primary's ShipFS treats that as a counted,
// non-fatal degradation), and the one after must reconnect, re-ship the
// snapshot, and converge the fresh replica.
func TestShipperReconnectsWithSnapshot(t *testing.T) {
	rep1 := faults.NewCrashDir(12)
	ap1 := NewApplier(rep1, nil)
	addr, stop1, err := ListenStandby("127.0.0.1:0", ap1)
	if err != nil {
		t.Fatal(err)
	}

	pri := faults.NewCrashDir(13)
	var sh *Shipper
	ship := NewShipFS(pri, func(f Frame) error { return sh.Ship(f) }, nil, nil)
	sh = NewShipper(ShipperConfig{Addr: addr, Node: "A", Snapshot: ship.SnapshotFrames}, nil)
	defer sh.Close()

	w, err := ship.Create("wal-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first standby to apply", func() bool { return ap1.Applied() >= 3 })
	stop1() // the standby dies mid-stream

	// The break surfaces on some subsequent write's ship — broken TCP can
	// take a write or two to notice — and ShipFS degrades gracefully:
	// local durability is unaffected throughout.
	waitFor(t, "shipper to notice the break", func() bool {
		if _, err := w.Write([]byte{9}); err != nil {
			t.Fatalf("local write failed during standby outage: %v", err)
		}
		return ship.Err() != nil
	})

	// A replacement standby comes up on the same address with an EMPTY
	// directory — only the snapshot re-ship can converge it.
	rep2 := faults.NewCrashDir(14)
	ap2 := NewApplier(rep2, nil)
	if _, _, err := ListenStandby(addr, ap2); err != nil {
		t.Fatal(err)
	}
	// Poke with writes until one of them reconnects (Err clears on the
	// first successful ship), then stop writing and let the replica drain
	// to the primary's final state.
	waitFor(t, "shipper to reconnect", func() bool {
		if _, err := w.Write([]byte{7}); err != nil {
			t.Fatalf("local write failed during reconnect: %v", err)
		}
		return ship.Err() == nil
	})
	waitFor(t, "replica to converge", func() bool {
		want, err := pri.ReadFile("wal-1")
		if err != nil {
			t.Fatal(err)
		}
		got, err := rep2.ReadFile("wal-1")
		return err == nil && len(got) == len(want)
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mirror(t, pri, rep2)
}
