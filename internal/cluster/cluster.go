// Package cluster turns the single-process ECA agent into a small
// replicated deployment: N agent processes own disjoint event-graph
// components, a router forwards each notification datagram to the node
// owning its event, and every primary streams its durable state — the
// PR 4 checkpoint and WAL byte formats, reused verbatim — to a hot
// standby that can promote within a bounded, clock-driven deadline when
// a missed-heartbeat quorum declares the primary dead.
//
// The design leans on three existing seams instead of inventing new
// machinery:
//
//   - storage.FS: replication is a filesystem tee (ShipFS). The primary's
//     durability layer is untouched; every byte it makes durable locally
//     is first framed and shipped, so the standby's directory is a prefix
//     of the primary's at every instant (stream order == WAL order).
//   - agent recovery: promotion is just agent.New over the replica
//     directory. Checkpoint restore, journal replay, pending-action
//     resume and the shadow-table Resync gap-fill do all the work; the
//     cluster layer only decides *when* to boot.
//   - led.Clock: every cluster timer (heartbeats, hysteresis, retry
//     backoff, backpressure bounds) runs on the Clock seam, on a control
//     clock separate from the LED's data clock, so the chaos suite can
//     drive failure detection deterministically without perturbing
//     temporal-operator timelines.
//
// Split-brain is handled by fencing, not by hoping: promotion acquires a
// fresh epoch from the Authority (in production an epoch row in the
// shared SQL server, here an in-process model of it), and every upstream
// connection is wrapped so a zombie ex-primary's action executions are
// rejected with ErrFenced — dead-lettered and counted, never silently
// double-fired.
package cluster

// Role names a node's position in the cluster, as reported by the
// readiness probe and the eca_cluster_role metric.
const (
	RolePrimary   = "primary"
	RoleStandby   = "standby"
	RolePromoting = "promoting"
	RoleDead      = "dead"
)
