package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/agent"
	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// gatedExecer models a node's link to the shared SQL server: while cut,
// every statement fails like a dead network, which is exactly what a
// partitioned zombie experiences when it tries to renew its lease.
type gatedExecer struct {
	inner Execer
	mu    sync.Mutex
	cut   bool
	fails int
}

func (g *gatedExecer) SetCut(on bool) {
	g.mu.Lock()
	g.cut = on
	g.mu.Unlock()
}

func (g *gatedExecer) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	g.mu.Lock()
	cut := g.cut
	if cut {
		g.fails++
	}
	g.mu.Unlock()
	if cut {
		return nil, errors.New("dial tcp: network is unreachable")
	}
	return g.inner.Exec(sql)
}

func sqlAuthExecer(t *testing.T, eng *engine.Engine) Execer {
	t.Helper()
	up, err := agent.LocalDialer(eng)("sharma", "")
	if err != nil {
		t.Fatal(err)
	}
	return up
}

// TestSQLAuthorityCAS proves the epoch row's compare-and-swap: two
// authorities over the same server, strictly increasing grants, the
// loser's stale epoch fenced, and a superseded holder discovering the
// loss on its next renewal.
func TestSQLAuthorityCAS(t *testing.T) {
	eng := engine.New(catalog.New())
	clock := led.NewManualClock(foClockBase)

	authA, err := NewSQLAuthority(SQLAuthorityConfig{
		Exec: sqlAuthExecer(t, eng), Node: "A", Clock: clock,
		LeaseTTL: 6 * time.Second, RenewEvery: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer authA.Close()
	authB, err := NewSQLAuthority(SQLAuthorityConfig{
		Exec: sqlAuthExecer(t, eng), Node: "B", Clock: clock,
		LeaseTTL: 6 * time.Second, RenewEvery: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer authB.Close()

	epochA, err := authA.Acquire("A")
	if err != nil {
		t.Fatal(err)
	}
	if epochA != 1 {
		t.Fatalf("first grant = %d, want 1", epochA)
	}
	if err := authA.Validate(epochA); err != nil {
		t.Fatalf("fresh grant invalid: %v", err)
	}
	if holder, cur := authA.Current(); holder != "A" || cur != 1 {
		t.Fatalf("Current = (%s, %d), want (A, 1)", holder, cur)
	}

	// Renewal extends the lease through the SQL row.
	clock.Advance(2 * time.Second)
	if err := authA.Validate(epochA); err != nil {
		t.Fatalf("renewed grant invalid: %v", err)
	}

	// B promotes: the CAS moves the row; A's grant is now history.
	epochB, err := authB.Acquire("B")
	if err != nil {
		t.Fatal(err)
	}
	if epochB != epochA+1 {
		t.Fatalf("second grant = %d, want %d", epochB, epochA+1)
	}
	if err := authB.Validate(epochB); err != nil {
		t.Fatalf("B's grant invalid: %v", err)
	}

	// A's next renewal CAS matches zero rows and latches the loss.
	clock.Advance(2 * time.Second)
	if !authA.Lost() {
		t.Fatal("A never noticed it was superseded")
	}
	if err := authA.Validate(epochA); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale grant validated: %v", err)
	}
	if holder, cur := authB.Current(); holder != "B" || cur != epochB {
		t.Fatalf("Current = (%s, %d), want (B, %d)", holder, cur, epochB)
	}
}

// TestSQLAuthorityLeaseExpiry proves the self-fencing half: a holder that
// cannot reach the SQL server stops validating once its lease lapses —
// no communication with the new primary required.
func TestSQLAuthorityLeaseExpiry(t *testing.T) {
	eng := engine.New(catalog.New())
	clock := led.NewManualClock(foClockBase)
	gate := &gatedExecer{inner: sqlAuthExecer(t, eng)}

	auth, err := NewSQLAuthority(SQLAuthorityConfig{
		Exec: gate, Node: "A", Clock: clock,
		LeaseTTL: 6 * time.Second, RenewEvery: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auth.Close()
	epoch, err := auth.Acquire("A")
	if err != nil {
		t.Fatal(err)
	}

	gate.SetCut(true)
	clock.Advance(4 * time.Second) // two failed renewals; lease still live
	if err := auth.Validate(epoch); err != nil {
		t.Fatalf("lease should survive to its TTL: %v", err)
	}
	clock.Advance(2 * time.Second) // TTL reached
	if err := auth.Validate(epoch); !errors.Is(err, ErrFenced) {
		t.Fatalf("expired lease validated: %v", err)
	}

	// Healing the link and re-acquiring restores the grant.
	gate.SetCut(false)
	epoch2, err := auth.Acquire("A")
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 <= epoch {
		t.Fatalf("re-acquired epoch %d not beyond %d", epoch2, epoch)
	}
	if err := auth.Validate(epoch2); err != nil {
		t.Fatalf("re-acquired grant invalid: %v", err)
	}
}

// TestZombieLeaseExpiredDeadLettersOnce is the cross-machine zombie cell
// the SQL-backed authority exists for: an asymmetric partition (one-way
// faults.Duplex cut) blinds the standby to the primary AND cuts the
// primary off from the shared SQL server, so its lease renewals fail.
// The standby promotes through the SQL CAS; the old primary's lease
// lapses. Every action the zombie then attempts must execute nothing and
// be dead-lettered exactly once — fenced by its own expired lease, with
// no help from anyone it can still reach.
func TestZombieLeaseExpiredDeadLettersOnce(t *testing.T) {
	eng := engine.New(catalog.New())
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database zldb
use zldb
create table ta (x int null)`); err != nil {
		t.Fatal(err)
	}

	acts := &foActionRecorder{}
	metA := NewMetrics(obs.NewRegistry())
	metB := NewMetrics(obs.NewRegistry())
	stbFS := faults.NewCrashDir(17)
	applier := NewApplier(stbFS, metB)
	ctrlClock := led.NewManualClock(foClockBase)

	// A's whole uplink — replication, heartbeats, SQL — dies in one
	// direction; what B sends (nothing A needs) still flows. The Duplex's
	// per-direction partition is the asymmetric cut.
	var fromB []string
	link := faults.NewDuplex(faults.PipeConfig{Seed: 17},
		func(msg string) {
			if f, _, err := DecodeReplFrame([]byte(msg)); err == nil {
				_ = applier.Apply(f)
			}
		},
		func(msg string) { fromB = append(fromB, msg) })
	sink := func(f Frame) error {
		link.Send(faults.AtoB, string(EncodeFrame(f)))
		return nil
	}

	gateA := &gatedExecer{inner: sqlAuthExecer(t, eng)}
	authA, err := NewSQLAuthority(SQLAuthorityConfig{
		Exec: gateA, Node: "A", Clock: ctrlClock,
		LeaseTTL: 5 * time.Second, RenewEvery: time.Second, Met: metA,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer authA.Close()
	epochA, err := authA.Acquire("A")
	if err != nil {
		t.Fatal(err)
	}
	tokA := &Token{}
	tokA.Set(epochA)
	metA.SetRole(RolePrimary)
	metB.SetRole(RoleStandby)

	priFS := faults.NewCrashDir(18)
	dataClockA := led.NewManualClock(foClockBase)
	a, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(eng, acts), authA, tokA, metA),
		NotifyAddr:    "-",
		Clock:         dataClockA,
		IngestWorkers: -1,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: NewShipFS(priFS, sink, nil, metA), WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	monitor := NewMonitor(MonitorConfig{
		Clock:     ctrlClock,
		Interval:  foInterval,
		Misses:    foMisses,
		Witnesses: []func() bool{func() bool { return true }},
	}, metB, nil)
	applier.OnHeartbeat = monitor.Beat
	monitor.Start()
	hb := NewHeartbeater(ctrlClock, foInterval, tokA, sink, metA)
	hb.Start()
	defer hb.Stop()

	cs, err := a.NewClientSession("sharma", "zldb")
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range []string{
		"create trigger zl_pa on ta for insert event ea as print 'pa'",
		"create trigger zl_rule event er = ea RECENT as print 'fired'",
	} {
		if _, err := cs.Exec(ddl); err != nil {
			t.Fatalf("%q: %v", ddl, err)
		}
	}
	cs.Close()

	eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	driver := eng.NewSession("sharma")
	if err := driver.Use("zldb"); err != nil {
		t.Fatal(err)
	}

	// Healthy: one insert, two rule actions, lease renewing.
	if _, err := driver.ExecScript("insert ta values (1)"); err != nil {
		t.Fatal(err)
	}
	a.WaitActions()
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := len(acts.snapshot()); got != 2 {
		t.Fatalf("healthy action count = %d, want 2", got)
	}
	ctrlClock.Advance(time.Second)
	if got := metA.AuthRenewals.Value(); got == 0 {
		t.Fatal("lease never renewed while healthy")
	}

	// The asymmetric partition: A→B dark, A→SQL dark. A is alive and
	// still believes it leads.
	link.SetPartitioned(faults.AtoB, true)
	gateA.SetCut(true)

	for i := 0; i < foMisses+2 && !monitor.Promoted(); i++ {
		ctrlClock.Advance(foInterval)
	}
	if !monitor.Promoted() {
		t.Fatal("standby never promoted behind the partition")
	}
	if link.Cut(faults.AtoB) == 0 {
		t.Fatal("partition cut nothing")
	}
	monitor.Stop()
	if err := applier.Close(); err != nil {
		t.Fatal(err)
	}

	// B promotes through the SQL register it can still reach.
	authB, err := NewSQLAuthority(SQLAuthorityConfig{
		Exec: sqlAuthExecer(t, eng), Node: "B", Clock: ctrlClock,
		LeaseTTL: 5 * time.Second, RenewEvery: time.Second, Met: metB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer authB.Close()
	epochB, err := authB.Acquire("B")
	if err != nil {
		t.Fatal(err)
	}
	if epochB != epochA+1 {
		t.Fatalf("promotion epoch = %d, want %d", epochB, epochA+1)
	}
	tokB := &Token{}
	tokB.Set(epochB)
	metB.SetRole(RolePrimary)
	metB.Promotions.Inc()
	b, err := agent.New(agent.Config{
		Dial:          FencedDialer(foRecordingDialer(eng, acts), authB, tokB, metB),
		NotifyAddr:    "-",
		Clock:         led.NewManualClock(dataClockA.Now()),
		IngestWorkers: -1,
		Logf:          func(string, ...any) {},
		Durability:    &agent.Durability{FS: stbFS, WALSync: agent.WALSyncAlways},
	})
	if err != nil {
		t.Fatalf("promoting standby: %v", err)
	}
	defer b.Close()

	// Let the zombie's lease lapse: its renewals have been failing into
	// the cut link the whole time.
	ctrlClock.Advance(5 * time.Second)
	if err := authA.Validate(epochA); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie lease still validates after TTL: %v", err)
	}

	// The zombie still owns the engine's notifier: a fresh event lands on
	// A, which detects it and attempts two rule actions. Its expired
	// lease must fence both — locally, without reaching anything.
	if _, err := driver.ExecScript("insert ta values (2)"); err != nil {
		t.Fatal(err)
	}
	a.WaitActions()
	if got := len(acts.snapshot()); got != 2 {
		t.Fatalf("zombie executed an action on an expired lease: %d executions", got)
	}
	if got := metA.FencedRejections.Value(); got != 2 {
		t.Fatalf("fenced rejections = %d, want exactly 2 (one per action, no retries)", got)
	}
	var fencedDL int
	for _, dl := range a.DeadLetters() {
		if errors.Is(dl.Err, ErrFenced) {
			fencedDL++
		}
	}
	if fencedDL != 2 {
		t.Fatalf("fenced dead letters = %d, want exactly 2", fencedDL)
	}

	// The survivor resyncs the occurrence the partition ate and fires
	// each action exactly once.
	if err := b.Resync(); err != nil {
		t.Fatal(err)
	}
	b.WaitActions()
	if got := len(acts.snapshot()); got != 4 {
		t.Fatalf("post-failover action count = %d, want 4", got)
	}

	// The SQL row is the ground truth: holder B, epoch B.
	if holder, cur := authB.Current(); holder != "B" || cur != epochB {
		t.Fatalf("SQL register = (%s, %d), want (B, %d)", holder, cur, epochB)
	}
	_ = fmt.Sprintf("%v", fromB) // the reverse direction stayed healthy by construction
}
