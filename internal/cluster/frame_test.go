package cluster

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

var frameFixtures = []Frame{
	{Kind: FrameHello, Name: "node-a", Payload: []byte{7}},
	{Kind: FrameCkpt, Name: "ckpt-3", Payload: bytes.Repeat([]byte("ECACKPT1"), 64)},
	{Kind: FrameFileOpen, Name: "wal-4"},
	{Kind: FrameFileData, Name: "wal-4", Payload: []byte{1, 2, 3, 4, 5}},
	{Kind: FrameRemove, Name: "wal-3"},
	{Kind: FrameRule, Name: "node-a", Payload: []byte("create trigger t ...")},
	{Kind: FrameRoute, Name: "node-b", Payload: encodeRoute([]string{"ea", "eb"})},
	{Kind: FrameHeartbeat, Name: "node-a", Payload: heartbeatPayload(42, 7)},
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range frameFixtures {
		enc := EncodeFrame(f)
		got, n, err := DecodeReplFrame(enc)
		if err != nil {
			t.Fatalf("%d/%s: %v", f.Kind, f.Name, err)
		}
		if n != len(enc) {
			t.Fatalf("%d/%s: consumed %d of %d", f.Kind, f.Name, n, len(enc))
		}
		if got.Kind != f.Kind || got.Name != f.Name || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("%d/%s: round trip mismatch: %+v", f.Kind, f.Name, got)
		}
	}
}

// TestDecodeShortVsCorrupt pins the diagnostic split: every prefix of a
// valid frame is "short" (wait for more bytes), while a damaged byte
// anywhere in the body or CRC is "corrupt" (the stream is untrustworthy).
func TestDecodeShortVsCorrupt(t *testing.T) {
	enc := EncodeFrame(Frame{Kind: FrameFileData, Name: "wal-1", Payload: []byte("abcdef")})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeReplFrame(enc[:cut]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrShortFrame", cut, err)
		}
	}
	for i := 4; i < len(enc); i++ { // flipping length-prefix bytes may instead look short; body+CRC must not
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, _, err := DecodeReplFrame(mut); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at %d: got %v, want ErrCorruptFrame", i, err)
		}
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := DecodeReplFrame(huge); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversized length: got %v, want ErrCorruptFrame", err)
	}
}

// TestTornStreamDamagePinning replays a multi-frame stream with damage
// injected at every byte offset and asserts the reader's behavior is
// pinned: every intact frame before the damage is delivered, nothing at
// or after the damage ever is, and the failure is loud (unexpected EOF or
// corruption), never a silently absorbed frame.
func TestTornStreamDamagePinning(t *testing.T) {
	var stream []byte
	var bounds []int // cumulative end offset of each frame
	for _, f := range frameFixtures {
		stream = AppendFrame(stream, f)
		bounds = append(bounds, len(stream))
	}
	framesBefore := func(off int) int {
		n := 0
		for _, b := range bounds {
			if b <= off {
				n++
			}
		}
		return n
	}

	t.Run("torn", func(t *testing.T) {
		for cut := 0; cut <= len(stream); cut++ {
			r := bytes.NewReader(stream[:cut])
			delivered := 0
			var err error
			for {
				var f Frame
				if f, err = ReadFrame(r); err != nil {
					break
				}
				if f.Kind != frameFixtures[delivered].Kind {
					t.Fatalf("cut=%d: frame %d decoded as kind %d", cut, delivered, f.Kind)
				}
				delivered++
			}
			if want := framesBefore(cut); delivered != want {
				t.Fatalf("cut=%d: delivered %d frames, want %d", cut, delivered, want)
			}
			atBoundary := cut == 0 || framesBefore(cut) > 0 && bounds[framesBefore(cut)-1] == cut
			if atBoundary && err != io.EOF {
				t.Fatalf("cut=%d at a frame boundary: err = %v, want io.EOF", cut, err)
			}
			if !atBoundary && err != io.ErrUnexpectedEOF {
				t.Fatalf("cut=%d mid-frame: err = %v, want io.ErrUnexpectedEOF", cut, err)
			}
		}
	})

	t.Run("flipped", func(t *testing.T) {
		for off := 0; off < len(stream); off++ {
			mut := append([]byte(nil), stream...)
			mut[off] ^= 0x08
			r := bytes.NewReader(mut)
			delivered := 0
			var err error
			for {
				if _, err = ReadFrame(r); err != nil {
					break
				}
				delivered++
			}
			// Damage must surface at (or, for a length-prefix flip that
			// inflates the frame, possibly as a truncation after) the frame
			// containing the flipped byte — never later, and never as EOF
			// with every frame "successfully" read.
			if maxOK := framesBefore(off); delivered > maxOK {
				t.Fatalf("flip at %d: %d frames delivered, only %d precede the damage", off, delivered, maxOK)
			}
			if err == io.EOF {
				t.Fatalf("flip at %d: stream ended clean after %d frames; damage was silently absorbed", off, delivered)
			}
		}
	})
}

func FuzzDecodeReplFrame(f *testing.F) {
	for _, fx := range frameFixtures {
		f.Add(EncodeFrame(fx))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeReplFrame(b) // must never panic
		if err != nil {
			if !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < 9 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		re := EncodeFrame(fr)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n in:  %x\n out: %x", b[:n], re)
		}
		if fr.Kind == FrameHeartbeat {
			decodeHeartbeat(fr.Payload) // must never panic either
		}
		if fr.Kind == FrameRoute {
			decodeRoute(fr.Payload)
		}
	})
}
