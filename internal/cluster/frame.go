package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The replication wire format. The payloads themselves are PR 4's
// checkpoint and WAL byte formats, reused verbatim — this layer only
// frames them for a byte stream:
//
//	frame := bodyLen uint32 LE | body | crc32(body) uint32 LE
//	body  := kind byte | nameLen uvarint | name | payload
//
// The length prefix lets a reader take exactly one frame off a TCP
// stream; the trailing CRC rejects torn or damaged tails the same way
// the WAL's per-record CRC does. Decoding distinguishes "incomplete —
// wait for more bytes" (ErrShortFrame) from "corrupt — the stream is
// damaged here and nothing after this point is trustworthy"
// (ErrCorruptFrame), because a replica applying a torn tail as if it
// were data would diverge silently.

// FrameKind discriminates replication frames.
type FrameKind byte

const (
	// FrameHello opens a stream: Name is the sending node's ID, Payload
	// is its current fencing epoch (uvarint).
	FrameHello FrameKind = 1
	// FrameCkpt carries one complete checkpoint image (the ECACKPT1
	// format); Name is the published file name (ckpt-N). The receiver
	// applies it atomically: tmp → sync → rename → dir sync.
	FrameCkpt FrameKind = 2
	// FrameFileOpen announces that Name (wal-N, rules.log, ...) was
	// created/truncated; subsequent FrameFileData frames append to it.
	FrameFileOpen FrameKind = 3
	// FrameFileData appends Payload to the open file Name.
	FrameFileData FrameKind = 4
	// FrameRemove prunes file Name on the receiver.
	FrameRemove FrameKind = 5
	// FrameRule broadcasts one installed rule's DDL (Payload) from the
	// defining node (Name) to cluster members, so every member's rule
	// log records the full catalog.
	FrameRule FrameKind = 6
	// FrameRoute publishes event ownership: Name is the owning node,
	// Payload a length-prefixed list of event names. Routers fold it
	// into their affinity table.
	FrameRoute FrameKind = 7
	// FrameHeartbeat is the liveness beacon: Name is the beating node,
	// Payload is seq uvarint | epoch uvarint.
	FrameHeartbeat FrameKind = 8
)

// maxFrameBody bounds a single frame. Checkpoint images dominate; 64 MiB
// of detector state is far beyond anything the agent produces, so a
// larger length prefix is corruption, not data.
const maxFrameBody = 64 << 20

// Frame is one decoded replication frame.
type Frame struct {
	Kind    FrameKind
	Name    string
	Payload []byte
}

// ErrShortFrame reports that the buffer ends before the frame does: not
// damage, just an incomplete read.
var ErrShortFrame = errors.New("cluster: short frame (need more bytes)")

// ErrCorruptFrame reports structural damage: bad CRC, oversized length,
// unknown kind. The stream must not be trusted past this point.
var ErrCorruptFrame = errors.New("cluster: corrupt frame")

// AppendFrame appends f's encoding to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	body := []byte{byte(f.Kind)}
	body = binary.AppendUvarint(body, uint64(len(f.Name)))
	body = append(body, f.Name...)
	body = append(body, f.Payload...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(body))
}

// EncodeFrame renders one frame.
func EncodeFrame(f Frame) []byte { return AppendFrame(nil, f) }

// DecodeReplFrame decodes the first frame in b, returning the frame and
// the number of bytes it consumed. It never panics on hostile input —
// the fuzz target holds it to that.
func DecodeReplFrame(b []byte) (Frame, int, error) {
	if len(b) < 4 {
		return Frame{}, 0, ErrShortFrame
	}
	bodyLen := binary.LittleEndian.Uint32(b)
	if bodyLen < 1 || bodyLen > maxFrameBody {
		return Frame{}, 0, fmt.Errorf("%w: body length %d", ErrCorruptFrame, bodyLen)
	}
	total := 4 + int(bodyLen) + 4
	if len(b) < total {
		return Frame{}, 0, ErrShortFrame
	}
	body := b[4 : 4+bodyLen]
	wantCRC := binary.LittleEndian.Uint32(b[4+bodyLen:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Frame{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorruptFrame)
	}
	f := Frame{Kind: FrameKind(body[0])}
	if f.Kind < FrameHello || f.Kind > FrameHeartbeat {
		return Frame{}, 0, fmt.Errorf("%w: unknown kind %d", ErrCorruptFrame, body[0])
	}
	nameLen, n := binary.Uvarint(body[1:])
	if n <= 0 || nameLen > uint64(len(body)-1-n) {
		return Frame{}, 0, fmt.Errorf("%w: name length", ErrCorruptFrame)
	}
	off := 1 + n
	f.Name = string(body[off : off+int(nameLen)])
	off += int(nameLen)
	if off < len(body) {
		f.Payload = append([]byte(nil), body[off:]...)
	}
	return f, total, nil
}

// WriteFrame writes one frame to a stream.
func WriteFrame(w io.Writer, f Frame) error {
	_, err := w.Write(EncodeFrame(f))
	return err
}

// ReadFrame reads exactly one frame from a stream. io.EOF at a frame
// boundary is returned as-is; EOF inside a frame becomes
// io.ErrUnexpectedEOF (a torn stream).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[:])
	if bodyLen < 1 || bodyLen > maxFrameBody {
		return Frame{}, fmt.Errorf("%w: body length %d", ErrCorruptFrame, bodyLen)
	}
	buf := make([]byte, 4+int(bodyLen)+4)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	f, _, err := DecodeReplFrame(buf)
	return f, err
}

// heartbeatPayload encodes a beacon's sequence number and fencing epoch.
func heartbeatPayload(seq, epoch uint64) []byte {
	b := binary.AppendUvarint(nil, seq)
	return binary.AppendUvarint(b, epoch)
}

// decodeHeartbeat parses a FrameHeartbeat payload.
func decodeHeartbeat(p []byte) (seq, epoch uint64, err error) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: heartbeat seq", ErrCorruptFrame)
	}
	epoch, m := binary.Uvarint(p[n:])
	if m <= 0 {
		return 0, 0, fmt.Errorf("%w: heartbeat epoch", ErrCorruptFrame)
	}
	return seq, epoch, nil
}

// encodeRoute renders a FrameRoute payload from event names.
func encodeRoute(events []string) []byte {
	var b []byte
	for _, ev := range events {
		b = binary.AppendUvarint(b, uint64(len(ev)))
		b = append(b, ev...)
	}
	return b
}

// decodeRoute parses a FrameRoute payload.
func decodeRoute(p []byte) ([]string, error) {
	var out []string
	for len(p) > 0 {
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > uint64(len(p)-sz) {
			return nil, fmt.Errorf("%w: route entry", ErrCorruptFrame)
		}
		out = append(out, string(p[sz:sz+int(n)]))
		p = p[sz+int(n):]
	}
	return out, nil
}
