package cluster

import (
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

func newTestMonitor(witness func() bool) (*led.ManualClock, *Monitor, *int) {
	clock := led.NewManualClock(foClockBase)
	promotions := 0
	var witnesses []func() bool
	if witness != nil {
		witnesses = []func() bool{witness}
	}
	m := NewMonitor(MonitorConfig{
		Clock:     clock,
		Interval:  time.Second,
		Misses:    3,
		Witnesses: witnesses,
	}, NewMetrics(obs.NewRegistry()), func() { promotions++ })
	m.Start()
	return clock, m, &promotions
}

func TestMonitorSteadyBeatsNeverPromote(t *testing.T) {
	clock, m, promotions := newTestMonitor(func() bool { return true })
	seq := uint64(0)
	for i := 0; i < 20; i++ {
		seq++
		m.Beat(seq, 1)
		clock.Advance(time.Second)
	}
	if m.Misses() != 0 || m.Promoted() || *promotions != 0 {
		t.Fatalf("healthy stream: misses=%d promoted=%v count=%d", m.Misses(), m.Promoted(), *promotions)
	}
}

func TestMonitorHysteresisAbsorbsFlaps(t *testing.T) {
	clock, m, promotions := newTestMonitor(func() bool { return true })
	seq := uint64(0)
	// Two silent intervals, then a beat, repeatedly: the miss counter must
	// keep resetting below the threshold of three.
	for round := 0; round < 5; round++ {
		clock.Advance(2 * time.Second)
		if m.Misses() != 2 {
			t.Fatalf("round %d: misses = %d, want 2", round, m.Misses())
		}
		seq++
		m.Beat(seq, 1)
		clock.Advance(time.Second)
		if m.Misses() != 0 {
			t.Fatalf("round %d: a fresh beat must clear the fuse, misses = %d", round, m.Misses())
		}
	}
	if m.Promoted() || *promotions != 0 {
		t.Fatal("a flapping link promoted")
	}
}

func TestMonitorDuplicateBeatsCountOnce(t *testing.T) {
	clock, m, _ := newTestMonitor(func() bool { return true })
	m.Beat(5, 1)
	clock.Advance(time.Second) // consumes the real beat
	// A relay replaying old sequence numbers must not look like liveness.
	for i := 0; i < 3; i++ {
		m.Beat(5, 1)
		m.Beat(3, 1)
		clock.Advance(time.Second)
	}
	if m.Misses() != 3 {
		t.Fatalf("misses = %d, want 3 (replayed beats must not count)", m.Misses())
	}
}

func TestMonitorPromotesAfterQuorum(t *testing.T) {
	clock, m, promotions := newTestMonitor(func() bool { return true })
	m.Beat(1, 1)
	clock.Advance(time.Second)
	start := clock.Now()
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
	}
	if !m.Promoted() || *promotions != 1 {
		t.Fatalf("promoted=%v count=%d after 3 silent intervals", m.Promoted(), *promotions)
	}
	if got := m.SuspectedAt(); got.Sub(start) != 3*time.Second {
		t.Fatalf("suspected at %v, want start+3s", got)
	}
	// The decision latches: more silence must not re-promote.
	clock.Advance(5 * time.Second)
	if *promotions != 1 {
		t.Fatalf("re-promoted: count = %d", *promotions)
	}
}

// TestMonitorLoneVoteCannotPromote pins the quorum rule: with one witness
// still reaching the primary, the monitor's own suspicion is 1 vote of 2
// — not a strict majority — so a partitioned standby cannot crown itself.
func TestMonitorLoneVoteCannotPromote(t *testing.T) {
	clock, m, promotions := newTestMonitor(func() bool { return false })
	clock.Advance(20 * time.Second)
	if m.Promoted() || *promotions != 0 {
		t.Fatal("a minority vote promoted")
	}
	if m.Misses() < 3 {
		t.Fatalf("misses = %d; the primary is suspected, just not promotable", m.Misses())
	}
}

func TestMonitorStopDisarms(t *testing.T) {
	clock, m, promotions := newTestMonitor(func() bool { return true })
	m.Stop()
	clock.Advance(20 * time.Second)
	if m.Promoted() || *promotions != 0 {
		t.Fatal("stopped monitor promoted")
	}
}

func TestHeartbeaterBeatsOnClock(t *testing.T) {
	clock := led.NewManualClock(foClockBase)
	met := NewMetrics(obs.NewRegistry())
	tok := &Token{}
	tok.Set(9)
	var frames []Frame
	hb := NewHeartbeater(clock, time.Second, tok, func(f Frame) error {
		frames = append(frames, f)
		return nil
	}, met)
	hb.Start()
	clock.Advance(3 * time.Second)
	hb.Stop()
	clock.Advance(10 * time.Second)
	if len(frames) != 4 { // one at Start, one per interval
		t.Fatalf("beats = %d, want 4", len(frames))
	}
	for i, f := range frames {
		seq, epoch, err := decodeHeartbeat(f.Payload)
		if err != nil || f.Kind != FrameHeartbeat {
			t.Fatalf("frame %d: kind=%d err=%v", i, f.Kind, err)
		}
		if seq != uint64(i+1) || epoch != 9 {
			t.Fatalf("frame %d: seq=%d epoch=%d", i, seq, epoch)
		}
	}
	if met.HeartbeatsSent.Value() != 4 {
		t.Fatalf("sent counter = %d", met.HeartbeatsSent.Value())
	}
}
