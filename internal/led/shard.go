package led

import (
	"sort"
	"sync"

	"github.com/activedb/ecaagent/internal/snoop"
)

// shard is one connected component of the event graph (or several, when
// Options.MaxShards forces co-location) behind its own lock. Everything a
// graph propagation touches — nodes, per-context operator state, the
// pending firing list — belongs to exactly one shard, so propagations in
// different shards never contend.
//
// Shard state is accessed either under LED.mu (write) during definition
// and rebalancing, or under LED.mu (read) + shard.mu during detection.
type shard struct {
	id  int
	led *LED

	mu    sync.Mutex
	nodes map[string]*node // named events owned by this shard
	rules map[string]*Rule
	// refs counts how many same-shard composites reference each named
	// event, so drops can be refused while dependents exist.
	refs map[string]int
	// pending accumulates rule firings during one graph propagation; it is
	// only touched under mu.
	pending []firing // guarded by mu
}

// newShard allocates an empty shard registered in l. Caller holds l.mu.
func (l *LED) newShard() *shard {
	sh := &shard{
		id:    l.nextShard,
		led:   l,
		nodes: make(map[string]*node),
		rules: make(map[string]*Rule),
		refs:  make(map[string]int),
	}
	l.nextShard++
	l.shards[sh.id] = sh
	return sh
}

// placeShard picks the shard for a fresh component: a new shard, or —
// when MaxShards caps the shard count — the least occupied existing one.
// Caller holds l.mu.
func (l *LED) placeShard() *shard {
	if l.maxShards > 0 && len(l.shards) >= l.maxShards {
		var best *shard
		for _, sh := range l.shards {
			if best == nil || len(sh.nodes) < len(best.nodes) {
				best = sh
			}
		}
		return best
	}
	return l.newShard()
}

// mergeFor merges the shards owning the named events into one and returns
// it; with no names it opens a fresh shard (a pure temporal composite has
// no constituents). Caller holds l.mu and has verified every name is
// defined.
func (l *LED) mergeFor(names []string) *shard {
	distinct := make([]*shard, 0, 2)
	seen := make(map[int]bool)
	for _, name := range names {
		sh := l.eventShard[name]
		if !seen[sh.id] {
			seen[sh.id] = true
			distinct = append(distinct, sh)
		}
	}
	if len(distinct) == 0 {
		return l.placeShard()
	}
	// Merge into the most occupied shard so the fewest nodes move.
	target := distinct[0]
	for _, sh := range distinct[1:] {
		if len(sh.nodes) > len(target.nodes) {
			target = sh
		}
	}
	for _, src := range distinct {
		if src != target {
			l.mergeInto(target, src)
		}
	}
	return target
}

// mergeInto moves every event, rule and reference of src into target and
// deletes src. Caller holds l.mu, which excludes all detection, so no
// shard locks are needed.
func (l *LED) mergeInto(target, src *shard) {
	for name, n := range src.nodes {
		target.nodes[name] = n
		l.eventShard[name] = target
		forEachOwnedNode(n, func(m *node) { m.sh = target })
	}
	for en, c := range src.refs {
		target.refs[en] += c
	}
	for rn, r := range src.rules {
		target.rules[rn] = r
		l.ruleShard[rn] = target
	}
	delete(l.shards, src.id)
}

// resplit recomputes the connected components of sh's events and moves
// every component beyond the first into its own shard (bounded by
// MaxShards). Called after DropEvent, whose removed composite may have
// been the only edge holding the component together. Caller holds l.mu.
func (l *LED) resplit(sh *shard) {
	if len(sh.nodes) == 0 {
		delete(l.shards, sh.id)
		return
	}
	groups := sh.components()
	if len(groups) <= 1 {
		return
	}
	// Largest component stays put; the rest move to fresh shards, oldest
	// cap-overflow components staying behind with the largest.
	sort.Slice(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
	movable := len(groups) - 1
	if l.maxShards > 0 {
		if room := l.maxShards - len(l.shards); room < movable {
			movable = room
		}
	}
	if movable < 0 {
		movable = 0
	}
	for _, group := range groups[1 : 1+movable] {
		ns := l.newShard()
		for _, name := range group {
			n := sh.nodes[name]
			delete(sh.nodes, name)
			ns.nodes[name] = n
			l.eventShard[name] = ns
			forEachOwnedNode(n, func(m *node) { m.sh = ns })
		}
		for rn, r := range sh.rules {
			if l.eventShard[r.Event] == ns {
				ns.rules[rn] = r
				l.ruleShard[rn] = ns
				delete(sh.rules, rn)
			}
		}
		ns.recountRefs()
	}
	sh.recountRefs()
}

// components partitions the shard's named events into connected
// components: a composite is connected to every event it references.
// Returns the event-name groups. Caller holds l.mu.
func (sh *shard) components() [][]string {
	parent := make(map[string]string, len(sh.nodes))
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for name := range sh.nodes {
		parent[name] = name
	}
	for name, n := range sh.nodes {
		if n.expr == nil {
			continue
		}
		for _, ref := range snoop.EventNames(n.expr) {
			if _, ok := parent[ref]; ok {
				union(name, ref)
			}
		}
	}
	byRoot := make(map[string][]string)
	for name := range sh.nodes {
		r := find(name)
		byRoot[r] = append(byRoot[r], name)
	}
	groups := make([][]string, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Strings(g)
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// recountRefs rebuilds the composite-reference counts from the shard's
// current composites. Caller holds l.mu.
func (sh *shard) recountRefs() {
	sh.refs = make(map[string]int)
	for _, n := range sh.nodes {
		if n.expr == nil {
			continue
		}
		for _, ref := range snoop.EventNames(n.expr) {
			sh.refs[ref]++
		}
	}
}

// forEachOwnedNode visits a named root and the anonymous operator nodes it
// owns (recursion stops at named children — those belong to their own
// registration).
func forEachOwnedNode(root *node, fn func(*node)) {
	fn(root)
	for _, c := range root.children {
		if c.name == "" {
			forEachOwnedNode(c, fn)
		}
	}
}

// collect runs fn under the shard lock, gathers the rule firings the
// propagation produced into the caller's pooled scratch, queues the
// deferred ones globally, and returns the full prioritized list for the
// caller to execute outside the lock (and then release back to the pool).
// Caller holds LED.mu for read.
func (sh *shard) collect(scr *firingScratch, fn func()) []firing {
	sh.mu.Lock()
	sh.pending = scr.fs[:0]
	fn()
	fired := sh.pending
	sh.pending = nil
	sh.mu.Unlock()
	// Keep the (possibly regrown) backing array with the scratch so the
	// pool learns the propagation's working-set size.
	scr.fs = fired
	// Stable insertion sort by descending priority; equal priorities keep
	// detection order (allocation-free, see sortFirings).
	sortFirings(fired)
	var deferredNow []firing
	for _, f := range fired {
		if f.rule.Coupling == Deferred {
			deferredNow = append(deferredNow, f)
		}
	}
	if len(deferredNow) > 0 {
		l := sh.led
		l.defMu.Lock()
		l.deferred = append(l.deferred, deferredNow...)
		l.defMu.Unlock()
	}
	return fired
}
