package led_test

// The CEP oracle-differential suite (ISSUE 8): every windowed/aggregate/
// interval operator, under all four parameter contexts, all three coupling
// modes, and both shard topologies (MaxShards:1 — the historical
// single-lock detector — and fully sharded), is driven through the same
// ManualClock event script as the deliberately naive reference interpreter
// in internal/led/oracle, which recomputes every window from the full
// occurrence history. The observable occurrence streams — event name,
// context, occurrence time, and the full constituent list — must be
// identical. The suite lives in an external test package because the
// oracle package imports led.
//
// `make cep-differential` selects it by the TestCEPDifferential prefix.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/led/oracle"
	"github.com/activedb/ecaagent/internal/snoop"
)

// cepT0 mirrors the internal suite's epoch: a whole-second UTC instant, on
// the boundary grid of every whole-second slide.
var cepT0 = time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

type cepStep struct {
	kind  string // "sig" | "adv"
	event string
	d     time.Duration
}

func cepSig(event string) cepStep    { return cepStep{kind: "sig", event: event} }
func cepAdv(d time.Duration) cepStep { return cepStep{kind: "adv", d: d} }

// cepCase is one CEP operator cell: an expression template over
// %[1]s..%[4]s (the prefixed primitive names) and a script. Aggregate
// thresholds are chosen so the comparator both passes and fails during the
// script (vnos count 1,2,3,… per case); interval scripts include rounds
// where the Allen relation does not hold.
type cepCase struct {
	name   string
	expr   string
	script []cepStep
}

var cepCases = []cepCase{
	{"WINDOW_TUMBLING", "WINDOW(%[1]s, [3 sec])", []cepStep{
		cepSig("e1"), cepSig("e1"),
		cepAdv(2 * time.Second), // boundary fires with two occurrences
		cepSig("e1"),
		cepAdv(4 * time.Second), // one full boundary, one empty (disarms)
		cepSig("e1"),            // re-arms after the quiet period
		cepAdv(3 * time.Second),
	}},
	{"WINDOW_SLIDING", "WINDOW(%[1]s, [4 sec], SLIDE [2 sec])", []cepStep{
		cepSig("e1"), cepSig("e1"), cepSig("e1"),
		cepAdv(3 * time.Second), // overlapping windows share occurrences
		cepSig("e1"),
		cepAdv(5 * time.Second), // the straggler appears in two windows
	}},
	{"WINDOW_COMPOSITE", "WINDOW(%[1]s ; %[2]s, [5 sec])", []cepStep{
		cepSig("e1"), cepSig("e2"), cepSig("e1"), cepSig("e2"),
		cepAdv(6 * time.Second), // window over a context-sensitive child
		cepSig("e1"), cepSig("e2"),
		cepAdv(5 * time.Second),
	}},
	{"AGG_COUNT", "AGG(COUNT, vno, %[1]s, [3 sec]) >= 2", []cepStep{
		cepSig("e1"), cepSig("e1"),
		cepAdv(2 * time.Second), // count 2: fires
		cepSig("e1"),
		cepAdv(3 * time.Second), // count 1: suppressed
	}},
	{"AGG_SUM", "AGG(SUM, vno, %[1]s, [4 sec], SLIDE [2 sec]) > 5", []cepStep{
		cepSig("e1"), cepSig("e1"), cepSig("e1"), // vnos 1,2,3
		cepAdv(3 * time.Second),
		cepSig("e1"), // vno 4
		cepAdv(5 * time.Second),
	}},
	{"AGG_AVG", "AGG(AVG, vno, %[1]s, [3 sec]) <= 2", []cepStep{
		cepSig("e1"), cepSig("e1"), // avg 1.5: fires
		cepAdv(2 * time.Second),
		cepSig("e1"), cepSig("e1"), // avg 3.5: suppressed
		cepAdv(3 * time.Second),
	}},
	{"AGG_MIN", "AGG(MIN, vno, %[1]s, [3 sec]) < 2", []cepStep{
		cepSig("e1"), cepSig("e1"), // min 1: fires
		cepAdv(2 * time.Second),
		cepSig("e1"), // min 3: suppressed
		cepAdv(3 * time.Second),
	}},
	{"AGG_MAX", "AGG(MAX, vno, %[1]s, [4 sec], SLIDE [2 sec]) != 3", []cepStep{
		cepSig("e1"), cepSig("e1"), cepSig("e1"),
		cepAdv(3 * time.Second), // max 1 then max 3: one window suppressed
		cepSig("e1"),
		cepAdv(5 * time.Second),
	}},
	{"DURING", "(%[2]s ; %[3]s) DURING (%[1]s ; %[4]s)", []cepStep{
		// Round 1: L nested strictly inside R — fires.
		cepSig("e1"), cepSig("e2"), cepSig("e3"), cepSig("e4"),
		// Round 2: L starts before R — relation fails.
		cepSig("e2"), cepSig("e1"), cepSig("e3"), cepSig("e4"),
		// Round 3: two L candidates before the terminator — context
		// policies diverge (latest / oldest / all / merged).
		cepSig("e1"), cepSig("e2"), cepSig("e3"), cepSig("e2"), cepSig("e3"), cepSig("e4"),
	}},
	{"OVERLAPS", "(%[1]s ; %[3]s) OVERLAPS (%[2]s ; %[4]s)", []cepStep{
		// Round 1: L starts first, R starts inside L, L ends inside R.
		cepSig("e1"), cepSig("e2"), cepSig("e3"), cepSig("e4"),
		// Round 2: R starts first — nested, not overlapping.
		cepSig("e2"), cepSig("e1"), cepSig("e3"), cepSig("e4"),
		// Round 3: L completes only after R's terminator — no emission
		// for that pairing, then a clean overlap again.
		cepSig("e1"), cepSig("e2"), cepSig("e4"), cepSig("e3"),
		cepSig("e1"), cepSig("e2"), cepSig("e3"), cepSig("e4"),
	}},
}

// cepRecorder collects canonical occurrence strings per rule-set copy.
type cepRecorder struct {
	mu    sync.Mutex
	byKey map[string][]string
}

func (r *cepRecorder) record(key string, o *led.Occ) {
	s := canonCepOcc(o)
	r.mu.Lock()
	r.byKey[key] = append(r.byKey[key], s)
	r.mu.Unlock()
}

// canonCepOcc renders every observable field of an occurrence, excluding
// Context (the oracle has no couplings, so its Watch context always
// matches; keeping the rest identical is the differential claim).
func canonCepOcc(o *led.Occ) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s@%d[", o.Event, o.Context, o.At.UnixNano())
	for i, c := range o.Constituents {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%s:%d@%d", c.Event, c.Op, c.VNo, c.At.UnixNano())
	}
	b.WriteByte(']')
	return b.String()
}

const cepCopies = 4

var cepPrims = []string{"e1", "e2", "e3", "e4"}

// buildCepLED defines cepCopies independent copies of the operator's rule
// set on l and attaches a recording rule per copy.
func buildCepLED(t *testing.T, l *led.LED, c cepCase, ctx led.Context, coupling led.Coupling, rec *cepRecorder) {
	t.Helper()
	for k := 0; k < cepCopies; k++ {
		pfx := fmt.Sprintf("c%d_", k)
		for _, p := range cepPrims {
			if err := l.DefinePrimitive(pfx + p); err != nil {
				t.Fatal(err)
			}
		}
		expr, err := snoop.Parse(cepExprFor(c, pfx))
		if err != nil {
			t.Fatalf("parse %s: %v", c.name, err)
		}
		if err := l.DefineComposite(pfx+"comp", expr); err != nil {
			t.Fatal(err)
		}
		key := pfx
		if err := l.AddRule(&led.Rule{
			Name:     pfx + "r",
			Event:    pfx + "comp",
			Context:  ctx,
			Coupling: coupling,
			Action:   func(o *led.Occ) { rec.record(key, o) },
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// buildCepOracle mirrors buildCepLED on the reference interpreter.
func buildCepOracle(t *testing.T, orc *oracle.Oracle, c cepCase, ctx led.Context, rec *cepRecorder) {
	t.Helper()
	for k := 0; k < cepCopies; k++ {
		pfx := fmt.Sprintf("c%d_", k)
		for _, p := range cepPrims {
			if err := orc.DefinePrimitive(pfx + p); err != nil {
				t.Fatal(err)
			}
		}
		expr, err := snoop.Parse(cepExprFor(c, pfx))
		if err != nil {
			t.Fatalf("parse %s: %v", c.name, err)
		}
		if err := orc.DefineComposite(pfx+"comp", expr); err != nil {
			t.Fatal(err)
		}
		key := pfx
		if err := orc.Watch(pfx+"comp", ctx, func(o *led.Occ) { rec.record(key, o) }); err != nil {
			t.Fatal(err)
		}
	}
}

func cepExprFor(c cepCase, pfx string) string {
	return fmt.Sprintf(c.expr, pfx+"e1", pfx+"e2", pfx+"e3", pfx+"e4")
}

// runCepScript drives the production detectors and the oracle through the
// script in lockstep on the shared clock.
func runCepScript(c cepCase, clock *led.ManualClock, orc *oracle.Oracle, leds ...*led.LED) {
	vno := 0
	for _, st := range c.script {
		switch st.kind {
		case "sig":
			vno++
			clock.Advance(time.Second) // distinct, strictly increasing times
			at := clock.Now()
			if orc != nil {
				orc.AdvanceTo(at)
			}
			for k := 0; k < cepCopies; k++ {
				p := led.Primitive{
					Event: fmt.Sprintf("c%d_%s", k, st.event),
					Table: st.event + "_tbl", Op: "insert", VNo: vno, At: at,
				}
				for _, l := range leds {
					l.Signal(p)
				}
				if orc != nil {
					orc.Signal(p)
				}
			}
		case "adv":
			clock.Advance(st.d)
			if orc != nil {
				orc.AdvanceTo(clock.Now())
			}
		}
	}
}

// TestCEPDifferential is the oracle-differential acceptance gate: for
// every CEP operator × context × coupling, both the single-shard and the
// fully sharded production LED must produce exactly the oracle's
// occurrence streams.
func TestCEPDifferential(t *testing.T) {
	contexts := []led.Context{led.Recent, led.Chronicle, led.Continuous, led.Cumulative}
	couplings := []led.Coupling{led.Immediate, led.Deferred, led.Detached}
	for _, c := range cepCases {
		for _, ctx := range contexts {
			for _, coupling := range couplings {
				t.Run(fmt.Sprintf("%s/%s/%s", c.name, ctx, coupling), func(t *testing.T) {
					clock := led.NewManualClock(cepT0)
					single := led.NewWithOptions(clock, led.Options{MaxShards: 1})
					sharded := led.New(clock)
					orc := oracle.New()

					singleRec := &cepRecorder{byKey: make(map[string][]string)}
					shardedRec := &cepRecorder{byKey: make(map[string][]string)}
					orcRec := &cepRecorder{byKey: make(map[string][]string)}
					buildCepLED(t, single, c, ctx, coupling, singleRec)
					buildCepLED(t, sharded, c, ctx, coupling, shardedRec)
					buildCepOracle(t, orc, c, ctx, orcRec)

					if got := single.ShardCount(); got != 1 {
						t.Fatalf("single-shard LED has %d shards, want 1", got)
					}
					compShards := make(map[int]bool)
					for k := 0; k < cepCopies; k++ {
						compShards[sharded.ShardID(fmt.Sprintf("c%d_comp", k))] = true
					}
					if len(compShards) != cepCopies {
						t.Fatalf("composites share shards: %d distinct, want %d", len(compShards), cepCopies)
					}

					runCepScript(c, clock, orc, single, sharded)
					if coupling == led.Deferred {
						single.FlushDeferred()
						sharded.FlushDeferred()
					}
					single.Wait()
					sharded.Wait()

					for k := 0; k < cepCopies; k++ {
						key := fmt.Sprintf("c%d_", k)
						want := append([]string(nil), orcRec.byKey[key]...)
						for side, rec := range map[string]*cepRecorder{"single-shard": singleRec, "sharded": shardedRec} {
							got := append([]string(nil), rec.byKey[key]...)
							w := want
							if coupling == led.Detached {
								// Detached execution order is unspecified;
								// compare as multisets.
								w = append([]string(nil), want...)
								sort.Strings(w)
								sort.Strings(got)
							}
							if strings.Join(w, "\n") != strings.Join(got, "\n") {
								t.Errorf("copy %s: %s diverges from oracle\noracle:\n  %s\n%s:\n  %s",
									key, side, strings.Join(w, "\n  "), side, strings.Join(got, "\n  "))
							}
						}
					}
				})
			}
		}
	}
}

// TestCEPDifferentialProducesOccurrences guards the suite against vacuous
// success: every CEP operator must emit at least one occurrence in EVERY
// context, or the script is not exercising that cell.
func TestCEPDifferentialProducesOccurrences(t *testing.T) {
	for _, c := range cepCases {
		for _, ctx := range []led.Context{led.Recent, led.Chronicle, led.Continuous, led.Cumulative} {
			clock := led.NewManualClock(cepT0)
			l := led.New(clock)
			rec := &cepRecorder{byKey: make(map[string][]string)}
			buildCepLED(t, l, c, ctx, led.Immediate, rec)
			runCepScript(c, clock, nil, l)
			total := 0
			for _, occs := range rec.byKey {
				total += len(occs)
			}
			if total == 0 {
				t.Errorf("operator %s in %s: script produced no occurrences", c.name, ctx)
			}
		}
	}
}

// TestCEPDifferentialAggSuppression guards the aggregate cells against a
// different vacuity: each comparator-bearing cell must also have at least
// one boundary where the window was non-empty but the comparator
// suppressed the emission — otherwise the threshold is not load-bearing.
func TestCEPDifferentialAggSuppression(t *testing.T) {
	for _, c := range cepCases {
		if !strings.HasPrefix(c.name, "AGG_") {
			continue
		}
		// Count boundaries of the aggregate against the same window
		// without the comparator: the bare AGG fires at every non-empty
		// boundary, so any difference is comparator suppression.
		fire := countCepOccs(t, c, c.expr)
		bare := countCepOccs(t, c, stripComparator(c.expr))
		if fire == 0 {
			t.Errorf("%s: comparator never passed", c.name)
		}
		if fire >= bare {
			t.Errorf("%s: comparator never suppressed (fired %d of %d non-empty boundaries)", c.name, fire, bare)
		}
	}
}

func stripComparator(expr string) string {
	if i := strings.Index(expr, ")"); i >= 0 {
		// The aggregate templates have the comparator after the closing
		// parenthesis of AGG(...).
		return expr[:i+1]
	}
	return expr
}

func countCepOccs(t *testing.T, c cepCase, expr string) int {
	t.Helper()
	clock := led.NewManualClock(cepT0)
	l := led.New(clock)
	rec := &cepRecorder{byKey: make(map[string][]string)}
	variant := c
	variant.expr = expr
	buildCepLED(t, l, variant, led.Chronicle, led.Immediate, rec)
	runCepScript(variant, clock, nil, l)
	total := 0
	for _, occs := range rec.byKey {
		total += len(occs)
	}
	return total
}
