package led

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// Property-based window test (ISSUE 8 satellite): for random window sizes,
// slides, and occurrence timestamps, the emitted window occurrences after
// an arbitrary clock advance must equal a brute-force filter of the full
// signal history — one occurrence per slide-grid boundary whose half-open
// content [T-size, T) is non-empty, carrying exactly that content plus the
// boundary tick. This checks the production detector's lazy timer arming,
// ring eviction, and disarm/re-arm cycles against the definition, with no
// reliance on the detector's own code paths.
func TestWindowPropertyRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			size := time.Duration(1+rng.Intn(8)) * time.Second
			slide := time.Duration(1+rng.Intn(8)) * time.Second
			if tumble := rng.Intn(3) == 0; tumble {
				slide = size
			}

			clock := NewManualClock(t0)
			l := New(clock)
			if err := l.DefinePrimitive("db.u.e"); err != nil {
				t.Fatal(err)
			}
			expr := fmt.Sprintf("WINDOW(db.u.e, [%d sec], SLIDE [%d sec])",
				size/time.Second, slide/time.Second)
			defComposite(t, &harness{led: l}, "db.u.w", expr)
			var got []string
			if err := l.AddRule(&Rule{
				Name: "db.u.r", Event: "db.u.w", Context: Chronicle,
				Coupling: Immediate,
				Action:   func(o *Occ) { got = append(got, canonOcc(o)) },
			}); err != nil {
				t.Fatal(err)
			}

			// Random history: bursts and quiet gaps, sub-second offsets, so
			// signals fall on and off the boundary grid and the ring
			// disarms and re-arms between bursts.
			var hist []Primitive
			for i, count := 0, 5+rng.Intn(25); i < count; i++ {
				gap := time.Duration(1+rng.Intn(3000)) * time.Millisecond
				if rng.Intn(5) == 0 {
					gap += time.Duration(rng.Intn(3)) * size // quiet period
				}
				clock.Advance(gap)
				p := Primitive{Event: "db.u.e", Table: "db.u.t", Op: "insert",
					VNo: i + 1, At: clock.Now()}
				l.Signal(p)
				hist = append(hist, p)
			}
			// Arbitrary final advance: flush every boundary whose window
			// can still be non-empty, plus a random tail.
			clock.Advance(size + slide + time.Duration(rng.Intn(5000))*time.Millisecond)
			l.Wait()

			want := bruteForceWindows(hist, size, slide, clock.Now())
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("size=%v slide=%v: window stream diverges from brute force\nwant:\n  %s\ngot:\n  %s",
					size, slide, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
			}
		})
	}
}

// bruteForceWindows recomputes the expected occurrence stream from first
// principles: every multiple of slide (the Unix-epoch grid) in range, with
// the full history filtered into [T-size, T).
func bruteForceWindows(hist []Primitive, size, slide time.Duration, until time.Time) []string {
	if len(hist) == 0 {
		return nil
	}
	var out []string
	first := boundaryAfter(hist[0].At, slide)
	for at := first; !at.After(until); at = at.Add(slide) {
		lo := at.Add(-size)
		var content []Primitive
		for _, p := range hist {
			if !p.At.Before(lo) && p.At.Before(at) {
				content = append(content, p)
			}
		}
		if len(content) == 0 {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "db.u.w/%s@%d[", Chronicle, at.UnixNano())
		for i, c := range content {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s:%s:%d@%d", c.Event, c.Op, c.VNo, c.At.UnixNano())
		}
		fmt.Fprintf(&b, " db.u.w:tick:0@%d]", at.UnixNano())
		out = append(out, b.String())
	}
	return out
}
