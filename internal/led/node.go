package led

import (
	"fmt"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

// kind enumerates node kinds in the event graph.
type kind int

const (
	kPrimitive kind = iota
	kOr
	kAnd
	kSeq
	kNot
	kAper     // A
	kAperStar // A*
	kPer      // P
	kPerStar  // P*
	kPlus
	kTemporal
	kWindow   // WINDOW(E, [size], SLIDE [slide])
	kAgg      // AGG(FN, param, E, [size], SLIDE [slide]) cmp thr
	kDuring   // L DURING R
	kOverlaps // L OVERLAPS R
)

// sub is one subscription to a node's occurrences in one context. rule is
// set for rule subscriptions so DropRule can remove them; parent-operator
// subscriptions carry the owning operator node instead, so DropEvent can
// prune a dropped composite's listeners from its surviving constituents.
type sub struct {
	ctx   Context
	fn    func(*Occ)
	rule  *Rule
	owner *node
}

// node is one vertex of the event graph. All node methods run with the
// owning shard's lock held (detection) or the LED topology lock held for
// write (definition, rebalancing).
type node struct {
	led *LED // immutable: clock, metrics, timer dispatch entry
	// sh is the shard currently owning this node; rebalancing rewrites it
	// under the LED topology write lock.
	sh       *shard
	name     string // registered name; "" for anonymous operator nodes
	kind     kind
	children []*node
	expr     snoop.Expr // set on registered composite roots, for refcounts

	dur   time.Duration // kPer, kPerStar, kPlus; window size for kWindow/kAgg
	absAt time.Time     // kTemporal

	slide    time.Duration // kWindow, kAgg: boundary-grid pitch
	aggFn    string        // kAgg: COUNT, SUM, AVG, MIN, MAX
	aggParam string        // kAgg: aggregated parameter (vno)
	aggCmp   string        // kAgg: "" or a comparator
	aggThr   float64       // kAgg: comparison threshold

	subs      []sub
	activated map[Context]bool
	state     map[Context]*opState
	// cancels collects outstanding timer cancellations for shutdown.
	cancels map[int]func()
	nextID  int
}

// opState is the per-context detection state of an operator node. Every
// field is serializable (snapshot.go): nothing the detector needs to
// survive a restart lives only in timer closures.
type opState struct {
	left  []*Occ // buffered left/initiator occurrences
	right []*Occ // buffered right occurrences (AND only)
	// windows holds open A/A*/P/P* windows.
	windows []*window
	// plus holds scheduled PLUS re-emissions not yet fired.
	plus []*plusPending
	// done marks a temporal event that has fired (one-shot).
	done bool

	// ring buffers child occurrences still eligible for a future window
	// boundary (kWindow/kAgg), in arrival order; nextBound is the armed
	// boundary deadline (zero while the ring is empty — the arming
	// invariant is ring non-empty ⟺ boundary timer armed). ringStop
	// cancels the armed boundary timer.
	ring      []*Occ
	nextBound time.Time
	ringStop  func()
}

// window is one open interval for the aperiodic/periodic operators.
type window struct {
	start *Occ
	mids  []*Occ // accumulated middle occurrences (A*) or ticks (P*)
	// next is the next tick's logical deadline (periodic operators only);
	// derived from the start occurrence, not the wall clock, so a restored
	// window re-ticks at the same instants the crashed process would have.
	next time.Time
	// cancel stops the window's periodic timer.
	cancel func()
}

// plusPending is one scheduled PLUS emission: the child occurrence and the
// logical instant (occ.At + delta) it re-emits at.
type plusPending struct {
	occ *Occ
	at  time.Time
}

// build constructs the (anonymous) graph for an expression inside this
// shard. Caller holds the LED topology lock for write; every event the
// expression references has already been merged into this shard.
func (sh *shard) build(expr snoop.Expr) (*node, error) {
	switch e := expr.(type) {
	case *snoop.EventRef:
		n, ok := sh.nodes[e.Name]
		if !ok {
			return nil, fmt.Errorf("led: event %q is not defined", e.Name)
		}
		// Wrap named nodes in a pass-through so the composite root can be
		// renamed without renaming the shared constituent.
		root := &node{led: sh.led, sh: sh, kind: kOr, children: []*node{n}, expr: expr}
		return root, nil
	case *snoop.Or:
		return sh.buildBinary(kOr, e.L, e.R, expr)
	case *snoop.And:
		return sh.buildBinary(kAnd, e.L, e.R, expr)
	case *snoop.Seq:
		return sh.buildBinary(kSeq, e.L, e.R, expr)
	case *snoop.Not:
		return sh.buildNary(kNot, []snoop.Expr{e.Start, e.Middle, e.End}, expr, 0, time.Time{})
	case *snoop.Aperiodic:
		k := kAper
		if e.Star {
			k = kAperStar
		}
		return sh.buildNary(k, []snoop.Expr{e.Start, e.Mid, e.End}, expr, 0, time.Time{})
	case *snoop.Periodic:
		k := kPer
		if e.Star {
			k = kPerStar
		}
		if e.Period <= 0 {
			return nil, fmt.Errorf("led: periodic event needs a positive period")
		}
		return sh.buildNary(k, []snoop.Expr{e.Start, e.End}, expr, e.Period, time.Time{})
	case *snoop.Plus:
		if e.Delta < 0 {
			return nil, fmt.Errorf("led: PLUS needs a non-negative delay")
		}
		return sh.buildNary(kPlus, []snoop.Expr{e.E}, expr, e.Delta, time.Time{})
	case *snoop.Temporal:
		return &node{led: sh.led, sh: sh, kind: kTemporal, absAt: e.At, expr: expr}, nil
	case *snoop.Window:
		if err := validateWindow(e.Size, e.Slide); err != nil {
			return nil, err
		}
		n, err := sh.buildNary(kWindow, []snoop.Expr{e.E}, expr, e.Size, time.Time{})
		if err != nil {
			return nil, err
		}
		n.slide = e.Slide
		return n, nil
	case *snoop.Agg:
		if err := validateAgg(e); err != nil {
			return nil, err
		}
		n, err := sh.buildNary(kAgg, []snoop.Expr{e.E}, expr, e.Size, time.Time{})
		if err != nil {
			return nil, err
		}
		n.slide = e.Slide
		n.aggFn = e.Fn
		n.aggParam = e.Param
		n.aggCmp = e.Cmp
		n.aggThr = e.Threshold
		return n, nil
	case *snoop.Interval:
		k, err := intervalKind(e.Rel)
		if err != nil {
			return nil, err
		}
		return sh.buildBinary(k, e.L, e.R, expr)
	default:
		return nil, fmt.Errorf("led: unsupported expression %T", expr)
	}
}

func (sh *shard) buildBinary(k kind, le, re snoop.Expr, expr snoop.Expr) (*node, error) {
	ln, err := sh.build(le)
	if err != nil {
		return nil, err
	}
	rn, err := sh.build(re)
	if err != nil {
		return nil, err
	}
	return &node{led: sh.led, sh: sh, kind: k, children: []*node{ln, rn}, expr: expr}, nil
}

func (sh *shard) buildNary(k kind, exprs []snoop.Expr, expr snoop.Expr, d time.Duration, at time.Time) (*node, error) {
	children := make([]*node, len(exprs))
	for i, e := range exprs {
		c, err := sh.build(e)
		if err != nil {
			return nil, err
		}
		children[i] = c
	}
	return &node{led: sh.led, sh: sh, kind: k, children: children, expr: expr, dur: d, absAt: at}, nil
}

// eventName is the name occurrences of this node carry.
func (n *node) eventName() string {
	if n.name != "" {
		return n.name
	}
	if n.expr != nil {
		return n.expr.String()
	}
	return "<anonymous>"
}

// subscribe attaches a context-tagged listener owned by an operator node.
func (n *node) subscribe(ctx Context, owner *node, fn func(*Occ)) {
	n.subs = append(n.subs, sub{ctx: ctx, fn: fn, owner: owner})
}

// subscribeRule attaches a rule's listener; unsubscribeRule removes it.
func (n *node) subscribeRule(r *Rule, fn func(*Occ)) {
	n.subs = append(n.subs, sub{ctx: r.Context, fn: fn, rule: r})
}

func (n *node) unsubscribeRule(r *Rule) {
	kept := n.subs[:0]
	for _, s := range n.subs {
		if s.rule != r {
			kept = append(kept, s)
		}
	}
	n.subs = kept
}

// pruneSubs removes subscriptions owned by dropped operator nodes (called
// when their composite is dropped, so later shard splits cannot leave
// cross-shard listeners behind).
func (n *node) pruneSubs(dropped map[*node]bool) {
	kept := n.subs[:0]
	for _, s := range n.subs {
		if s.owner == nil || !dropped[s.owner] {
			kept = append(kept, s)
		}
	}
	n.subs = kept
}

// activate enables detection of this node's subtree in the given context.
// Idempotent.
func (n *node) activate(ctx Context) {
	if n.activated == nil {
		n.activated = make(map[Context]bool)
	}
	if n.activated[ctx] {
		return
	}
	n.activated[ctx] = true
	if n.state == nil {
		n.state = make(map[Context]*opState)
	}
	n.state[ctx] = &opState{}
	switch n.kind {
	case kPrimitive:
		// Primitives are context-free sources.
	case kTemporal:
		n.scheduleTemporal(ctx)
	default:
		for i, c := range n.children {
			c.activate(ctx)
			idx := i
			c.subscribe(ctx, n, func(occ *Occ) { n.onChild(ctx, idx, occ) })
		}
	}
}

// shutdown cancels outstanding timers (on DropEvent).
func (n *node) shutdown() {
	for _, cancel := range n.cancels {
		cancel()
	}
	n.cancels = nil
	for _, c := range n.children {
		if c.name == "" {
			c.shutdown()
		}
	}
}

// emit delivers an occurrence to this node's subscribers in one context.
func (n *node) emit(ctx Context, occ *Occ) {
	n.led.countOcc(n.kind)
	occ.Event = n.eventName()
	occ.Context = ctx
	for _, s := range n.subs {
		if s.ctx == ctx {
			s.fn(occ.clone())
		}
	}
}

// emitPrimitive delivers a primitive occurrence to subscribers of every
// context (primitive detection is context-free). Each subscriber gets its
// own context-tagged occurrence built in a single allocation (newPrimOcc)
// — the same isolation the previous per-subscriber clone provided, minus
// the intermediate occurrence and one slice allocation per delivery.
func (n *node) emitPrimitive(p Primitive) {
	n.led.countOcc(kPrimitive)
	for _, s := range n.subs {
		s.fn(newPrimOcc(p, s.ctx))
	}
}

// onChild processes a constituent occurrence under a context. This is
// where the paper's parameter-context semantics live; the per-context
// buffer policies follow [CHA94]'s initiator/terminator definitions.
func (n *node) onChild(ctx Context, idx int, occ *Occ) {
	st := n.state[ctx]
	switch n.kind {
	case kOr:
		// Any constituent occurrence signals the disjunction.
		n.emit(ctx, mergeOccs(n.eventName(), ctx, occ))

	case kAnd:
		n.onAnd(ctx, st, idx, occ)

	case kSeq:
		n.onSeq(ctx, st, idx, occ)

	case kNot:
		n.onNot(ctx, st, idx, occ)

	case kAper, kAperStar:
		n.onAperiodic(ctx, st, idx, occ)

	case kPer, kPerStar:
		n.onPeriodic(ctx, st, idx, occ)

	case kPlus:
		n.onPlus(ctx, st, occ)

	case kWindow, kAgg:
		n.onWindowChild(ctx, st, occ)

	case kDuring, kOverlaps:
		n.onInterval(ctx, st, idx, occ)
	}
}

// onAnd implements E1 ^ E2: both constituents, either order.
func (n *node) onAnd(ctx Context, st *opState, idx int, occ *Occ) {
	mine, other := &st.left, &st.right
	if idx == 1 {
		mine, other = &st.right, &st.left
	}
	switch ctx {
	case Recent:
		// Latest occurrence of each side; any completion emits. Slots are
		// not consumed — a newer instance replaces them.
		*mine = []*Occ{occ}
		if len(*other) > 0 {
			n.emit(ctx, mergeOccs(n.eventName(), ctx, (*other)[len(*other)-1], occ))
		}
	case Chronicle:
		// FIFO pairing; both sides consumed.
		*mine = append(*mine, occ)
		for len(st.left) > 0 && len(st.right) > 0 {
			l, r := st.left[0], st.right[0]
			st.left = st.left[1:]
			st.right = st.right[1:]
			n.emit(ctx, mergeOccs(n.eventName(), ctx, l, r))
		}
	case Continuous:
		// Every buffered opposite occurrence is a window the arrival
		// terminates; all are consumed, the terminator is used by all.
		if len(*other) > 0 {
			for _, o := range *other {
				n.emit(ctx, mergeOccs(n.eventName(), ctx, o, occ))
			}
			*other = nil
			return
		}
		*mine = append(*mine, occ)
	case Cumulative:
		// Accumulate everything; completion flushes both sides into one
		// occurrence.
		*mine = append(*mine, occ)
		if len(st.left) > 0 && len(st.right) > 0 {
			parts := append(append([]*Occ{}, st.left...), st.right...)
			st.left, st.right = nil, nil
			n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
		}
	}
}

// onSeq implements E1 ; E2: initiator strictly before terminator.
func (n *node) onSeq(ctx Context, st *opState, idx int, occ *Occ) {
	if idx == 0 { // initiator
		switch ctx {
		case Recent:
			st.left = []*Occ{occ}
		default:
			st.left = append(st.left, occ)
		}
		return
	}
	// Terminator: must strictly follow the initiator.
	eligible := st.left[:0:0]
	for _, l := range st.left {
		if l.At.Before(occ.At) {
			eligible = append(eligible, l)
		}
	}
	if len(eligible) == 0 {
		return
	}
	switch ctx {
	case Recent:
		n.emit(ctx, mergeOccs(n.eventName(), ctx, eligible[len(eligible)-1], occ))
	case Chronicle:
		oldest := eligible[0]
		n.emit(ctx, mergeOccs(n.eventName(), ctx, oldest, occ))
		n.removeLeft(st, oldest)
	case Continuous:
		for _, l := range eligible {
			n.emit(ctx, mergeOccs(n.eventName(), ctx, l, occ))
			n.removeLeft(st, l)
		}
	case Cumulative:
		parts := append(append([]*Occ{}, eligible...), occ)
		for _, l := range eligible {
			n.removeLeft(st, l)
		}
		n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
	}
}

func (n *node) removeLeft(st *opState, target *Occ) {
	for i, l := range st.left {
		if l == target {
			st.left = append(st.left[:i], st.left[i+1:]...)
			return
		}
	}
}

// onNot implements NOT(S, M, E): E with no M since the initiating S.
func (n *node) onNot(ctx Context, st *opState, idx int, occ *Occ) {
	switch idx {
	case 0: // initiator S
		switch ctx {
		case Recent:
			st.left = []*Occ{occ}
		default:
			st.left = append(st.left, occ)
		}
	case 1: // middle M invalidates every open window
		st.left = nil
	case 2: // terminator E
		if len(st.left) == 0 {
			return
		}
		switch ctx {
		case Recent:
			n.emit(ctx, mergeOccs(n.eventName(), ctx, st.left[len(st.left)-1], occ))
		case Chronicle:
			oldest := st.left[0]
			st.left = st.left[1:]
			n.emit(ctx, mergeOccs(n.eventName(), ctx, oldest, occ))
		case Continuous:
			for _, l := range st.left {
				n.emit(ctx, mergeOccs(n.eventName(), ctx, l, occ))
			}
			st.left = nil
		case Cumulative:
			parts := append(append([]*Occ{}, st.left...), occ)
			st.left = nil
			n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
		}
	}
}

// onAperiodic implements A(S, M, E) and the cumulative A*(S, M, E).
func (n *node) onAperiodic(ctx Context, st *opState, idx int, occ *Occ) {
	star := n.kind == kAperStar
	switch idx {
	case 0: // window opens
		w := &window{start: occ}
		if ctx == Recent {
			st.windows = []*window{w}
		} else {
			st.windows = append(st.windows, w)
		}
	case 1: // middle occurrence
		if len(st.windows) == 0 {
			return
		}
		if star {
			// Accumulate in every open window; A* signals at E.
			for _, w := range st.windows {
				w.mids = append(w.mids, occ)
			}
			return
		}
		// A signals per middle occurrence inside the window(s).
		switch ctx {
		case Recent:
			w := st.windows[len(st.windows)-1]
			n.emit(ctx, mergeOccs(n.eventName(), ctx, w.start, occ))
		case Chronicle:
			w := st.windows[0]
			n.emit(ctx, mergeOccs(n.eventName(), ctx, w.start, occ))
		case Continuous:
			for _, w := range st.windows {
				n.emit(ctx, mergeOccs(n.eventName(), ctx, w.start, occ))
			}
		case Cumulative:
			parts := []*Occ{}
			for _, w := range st.windows {
				parts = append(parts, w.start)
			}
			parts = append(parts, occ)
			n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
		}
	case 2: // window closes
		if len(st.windows) == 0 {
			return
		}
		if star {
			switch ctx {
			case Recent:
				w := st.windows[0]
				st.windows = nil
				if len(w.mids) > 0 {
					parts := append([]*Occ{w.start}, w.mids...)
					parts = append(parts, occ)
					n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
				}
			case Chronicle:
				w := st.windows[0]
				st.windows = st.windows[1:]
				if len(w.mids) > 0 {
					parts := append([]*Occ{w.start}, w.mids...)
					parts = append(parts, occ)
					n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
				}
			case Continuous:
				for _, w := range st.windows {
					if len(w.mids) > 0 {
						parts := append([]*Occ{w.start}, w.mids...)
						parts = append(parts, occ)
						n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
					}
				}
				st.windows = nil
			case Cumulative:
				var parts []*Occ
				any := false
				for _, w := range st.windows {
					parts = append(parts, w.start)
					if len(w.mids) > 0 {
						any = true
						parts = append(parts, w.mids...)
					}
				}
				st.windows = nil
				if any {
					parts = append(parts, occ)
					n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
				}
			}
			return
		}
		// Plain A: E just closes windows.
		switch ctx {
		case Recent, Continuous, Cumulative:
			st.windows = nil
		case Chronicle:
			st.windows = st.windows[1:]
		}
	}
}

// onPeriodic implements P(S, [t], E) and P*(S, [t], E).
func (n *node) onPeriodic(ctx Context, st *opState, idx int, occ *Occ) {
	star := n.kind == kPerStar
	switch idx {
	case 0: // start: open a window with a repeating timer
		if ctx == Recent {
			for _, w := range st.windows {
				n.stopWindow(w)
			}
			st.windows = nil
		}
		w := &window{start: occ}
		st.windows = append(st.windows, w)
		n.armPeriodic(ctx, st, w)
	case 1: // end: close window(s)
		close := func(w *window) {
			n.stopWindow(w)
			if star && len(w.mids) > 0 {
				parts := append([]*Occ{w.start}, w.mids...)
				parts = append(parts, occ)
				n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
			}
		}
		switch ctx {
		case Chronicle:
			if len(st.windows) > 0 {
				close(st.windows[0])
				st.windows = st.windows[1:]
			}
		default:
			for _, w := range st.windows {
				close(w)
			}
			st.windows = nil
		}
	}
}

// armTimer arms a logical timer owned by this node, recording its cancel
// for shutdown. fn runs inside the node's *current* shard — the component
// may have been rebalanced between arming and firing — with the timer's
// logical deadline as its argument (identical whether the clock or a
// recovery FireTimersUpTo fired it).
func (n *node) armTimer(at time.Time, fn func(at time.Time)) func() {
	id := n.nextID
	n.nextID++
	if n.cancels == nil {
		n.cancels = make(map[int]func())
	}
	inner := n.led.armNodeTimer(n, at, func(fireAt time.Time) {
		delete(n.cancels, id)
		fn(fireAt)
	})
	cancel := func() {
		delete(n.cancels, id)
		inner()
	}
	n.cancels[id] = cancel
	return cancel
}

// armPeriodic schedules the next tick of a periodic window at its logical
// deadline: the start occurrence's time plus a whole number of periods.
// The tick carries the deadline as its At, so replaying a restored window
// reproduces byte-identical tick occurrences.
func (n *node) armPeriodic(ctx Context, st *opState, w *window) {
	if w.next.IsZero() {
		w.next = w.start.At.Add(n.dur)
	}
	w.cancel = n.armTimer(w.next, func(at time.Time) {
		// The window may have been closed between firing and lock
		// acquisition.
		open := false
		for _, ww := range st.windows {
			if ww == w {
				open = true
				break
			}
		}
		if !open {
			return
		}
		tick := &Occ{
			Event: n.eventName(),
			At:    at,
			Constituents: []Primitive{{
				Event: n.eventName(), Op: "tick", At: at,
			}},
		}
		if n.kind == kPerStar {
			w.mids = append(w.mids, tick)
		} else {
			n.emit(ctx, mergeOccs(n.eventName(), ctx, w.start, tick))
		}
		w.next = at.Add(n.dur)
		n.armPeriodic(ctx, st, w)
	})
}

func (n *node) stopWindow(w *window) {
	if w.cancel != nil {
		w.cancel()
		w.cancel = nil
	}
}

// onPlus schedules the delayed re-emission of the child occurrence. The
// pending emission lives in opState (not just the timer closure) so a
// checkpoint can capture and a restore re-arm it.
func (n *node) onPlus(ctx Context, st *opState, occ *Occ) {
	p := &plusPending{occ: occ, at: occ.At.Add(n.dur)}
	st.plus = append(st.plus, p)
	n.armPlus(ctx, st, p)
}

// armPlus arms the timer for one pending PLUS emission.
func (n *node) armPlus(ctx Context, st *opState, p *plusPending) {
	n.armTimer(p.at, func(time.Time) {
		for i, q := range st.plus {
			if q == p {
				st.plus = append(st.plus[:i], st.plus[i+1:]...)
				break
			}
		}
		out := p.occ.clone()
		out.At = p.at
		out.Constituents = append(out.Constituents, Primitive{
			Event: n.eventName(), Op: "time", At: p.at,
		})
		n.emit(ctx, out)
	})
}

// scheduleTemporal arms a one-shot absolute-time event.
func (n *node) scheduleTemporal(ctx Context) {
	if n.absAt.Before(n.led.clock.Now()) {
		return // already past; never fires
	}
	n.armTemporal(ctx)
}

// armTemporal arms the temporal timer; the done flag makes firing one-shot
// even when a restore re-arms alongside an activate-time timer.
func (n *node) armTemporal(ctx Context) {
	n.armTimer(n.absAt, func(time.Time) {
		st := n.state[ctx]
		if st == nil || st.done {
			return
		}
		st.done = true
		occ := &Occ{
			Event: n.eventName(),
			At:    n.absAt,
			Constituents: []Primitive{{
				Event: n.eventName(), Op: "time", At: n.absAt,
			}},
		}
		n.emit(ctx, occ)
	})
}
