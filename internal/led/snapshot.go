package led

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// StateSnapshot is a point-in-time, serializable image of everything the
// detector holds only in memory: per-node partial occurrences under every
// parameter context, open operator windows and their timer deadlines,
// pending PLUS emissions, the deferred-firing queue, and the firings that
// had been detected but whose rule actions had not yet been handed off
// (outstanding). The agent's checkpoint writer encodes it with the
// internal/storage codec; RestoreState rebuilds the same detection state
// onto a graph freshly reconstructed from the system tables.
type StateSnapshot struct {
	Nodes       []NodeState
	Deferred    []FiringState
	Outstanding []FiringState
}

// NodeState is one operator node's non-empty per-context state. Nodes are
// identified by a structural path that is stable across restarts and
// shard layouts: the registered event name for roots, then child indexes
// for the anonymous operator nodes it owns ("comp/0/1"). Recursion stops
// at named children — their state belongs to their own registration.
type NodeState struct {
	Path     string
	Kind     int // operator kind; restore verifies it to catch graph drift
	Contexts []CtxState
}

// CtxState is the detection state of one node under one parameter context.
type CtxState struct {
	Ctx     Context
	Left    []OccState
	Right   []OccState
	Windows []WindowState
	Plus    []PlusState
	Done    bool // temporal event already fired
	// Ring and NextBound carry a CEP window/aggregate node's buffered
	// child occurrences and armed boundary deadline (cep.go). Snapshot
	// section v2; absent in v1 checkpoints, which restores as an empty
	// window — correct for any checkpoint written before windows existed.
	Ring      []OccState
	NextBound time.Time
}

// WindowState is one open A/A*/P/P* interval. Next is the next periodic
// tick deadline; zero for aperiodic windows, which hold no timer.
type WindowState struct {
	Start OccState
	Mids  []OccState
	Next  time.Time
}

// PlusState is one scheduled PLUS re-emission.
type PlusState struct {
	Occ OccState
	At  time.Time
}

// OccState is a serializable Occ.
type OccState struct {
	Event        string
	Context      Context
	At           time.Time
	Constituents []Primitive
}

// FiringState is one pending rule firing (deferred or outstanding).
type FiringState struct {
	Rule string
	Occ  OccState
}

// OccToState converts a live occurrence to its serializable form (the
// agent's checkpoint codec).
func OccToState(o *Occ) OccState { return occToState(o) }

// OccFromState rebuilds a live occurrence from its serialized form.
func OccFromState(s OccState) *Occ { return occFromState(s) }

func occToState(o *Occ) OccState {
	return OccState{
		Event:        o.Event,
		Context:      o.Context,
		At:           o.At,
		Constituents: append([]Primitive(nil), o.Constituents...),
	}
}

func occFromState(s OccState) *Occ {
	return &Occ{
		Event:        s.Event,
		Context:      s.Context,
		At:           s.At,
		Constituents: append([]Primitive(nil), s.Constituents...),
	}
}

func occsToState(os []*Occ) []OccState {
	if len(os) == 0 {
		return nil
	}
	out := make([]OccState, len(os))
	for i, o := range os {
		out[i] = occToState(o)
	}
	return out
}

func occsFromState(ss []OccState) []*Occ {
	if len(ss) == 0 {
		return nil
	}
	out := make([]*Occ, len(ss))
	for i, s := range ss {
		out[i] = occFromState(s)
	}
	return out
}

// SnapshotState captures the detector's full volatile state. It holds the
// topology lock for write, which excludes every Signal, timer dispatch and
// definition change, so the image is a consistent cut; in-flight rule
// actions that already left the detector are covered by the Outstanding
// list (see noteFired) and by the agent's action ledger.
func (l *LED) SnapshotState() *StateSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := &StateSnapshot{}

	names := make([]string, 0, len(l.eventShard))
	for name := range l.eventShard {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		root := l.eventShard[name].nodes[name]
		var walk func(n *node, path string)
		walk = func(n *node, path string) {
			if ns := n.captureState(path); ns != nil {
				snap.Nodes = append(snap.Nodes, *ns)
			}
			for i, c := range n.children {
				if c.name == "" {
					walk(c, path+"/"+strconv.Itoa(i))
				}
			}
		}
		walk(root, name)
	}

	l.defMu.Lock()
	for _, f := range l.deferred {
		snap.Deferred = append(snap.Deferred, FiringState{Rule: f.rule.Name, Occ: occToState(f.occ)})
	}
	l.defMu.Unlock()

	l.outMu.Lock()
	seqs := make([]uint64, 0, len(l.outstanding))
	for s := range l.outstanding {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		f := l.outstanding[s]
		snap.Outstanding = append(snap.Outstanding, FiringState{Rule: f.rule.Name, Occ: occToState(f.occ)})
	}
	l.outMu.Unlock()
	return snap
}

// captureState renders this node's non-empty context states. Caller holds
// the topology lock for write.
func (n *node) captureState(path string) *NodeState {
	if len(n.state) == 0 {
		return nil
	}
	ctxs := make([]Context, 0, len(n.state))
	for c := range n.state {
		ctxs = append(ctxs, c)
	}
	sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
	var out []CtxState
	for _, ctx := range ctxs {
		st := n.state[ctx]
		if len(st.left) == 0 && len(st.right) == 0 && len(st.windows) == 0 &&
			len(st.plus) == 0 && !st.done && len(st.ring) == 0 {
			continue
		}
		cs := CtxState{
			Ctx:       ctx,
			Left:      occsToState(st.left),
			Right:     occsToState(st.right),
			Done:      st.done,
			Ring:      occsToState(st.ring),
			NextBound: st.nextBound,
		}
		for _, w := range st.windows {
			cs.Windows = append(cs.Windows, WindowState{
				Start: occToState(w.start),
				Mids:  occsToState(w.mids),
				Next:  w.next,
			})
		}
		for _, p := range st.plus {
			cs.Plus = append(cs.Plus, PlusState{Occ: occToState(p.occ), At: p.at})
		}
		out = append(out, cs)
	}
	if len(out) == 0 {
		return nil
	}
	return &NodeState{Path: path, Kind: int(n.kind), Contexts: out}
}

// RestoreState loads a snapshot onto a detector whose event graph and
// rules have already been rebuilt (from the system tables). The graph must
// structurally match the one the snapshot was taken from: unknown paths,
// inactive contexts or child indexes out of range return an error and the
// caller falls back to a cold start. Timers for restored windows, PLUS
// emissions and unfired temporal events are re-armed at their original
// logical deadlines. Outstanding firings are NOT re-queued here — the
// agent resumes them through its action ledger, which knows which already
// completed.
func (l *LED) RestoreState(snap *StateSnapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Validate the whole snapshot against the rebuilt graph before
	// mutating anything: a mismatch must leave the detector untouched so
	// the caller can fall back cleanly to a cold start, never to a
	// half-restored state.
	type target struct {
		n  *node
		cs CtxState
	}
	var plan []target
	for _, ns := range snap.Nodes {
		n, err := l.nodeAtPath(ns.Path)
		if err != nil {
			return err
		}
		if int(n.kind) != ns.Kind {
			return fmt.Errorf("led: restore: node %q is kind %d, snapshot has %d",
				ns.Path, n.kind, ns.Kind)
		}
		for _, cs := range ns.Contexts {
			if _, ok := n.state[cs.Ctx]; !ok {
				return fmt.Errorf("led: restore: node %q not activated in %s", ns.Path, cs.Ctx)
			}
			if n.kind == kPer || n.kind == kPerStar {
				for _, ws := range cs.Windows {
					if ws.Next.IsZero() {
						return fmt.Errorf("led: restore: periodic window at %q missing deadline", ns.Path)
					}
				}
			}
			// A CEP window's arming invariant (ring non-empty ⟺ boundary
			// timer armed) must hold in the image, or the restored window
			// would either never fire or fire on an empty ring.
			if n.kind == kWindow || n.kind == kAgg {
				if (len(cs.Ring) > 0) != !cs.NextBound.IsZero() {
					return fmt.Errorf("led: restore: window state at %q violates arming invariant", ns.Path)
				}
			}
			plan = append(plan, target{n: n, cs: cs})
		}
	}
	for _, t := range plan {
		n, cs := t.n, t.cs
		st := n.state[cs.Ctx]
		st.left = occsFromState(cs.Left)
		st.right = occsFromState(cs.Right)
		st.windows = nil
		st.plus = nil
		st.done = cs.Done
		for _, ws := range cs.Windows {
			w := &window{start: occFromState(ws.Start), mids: occsFromState(ws.Mids), next: ws.Next}
			st.windows = append(st.windows, w)
			if n.kind == kPer || n.kind == kPerStar {
				n.armPeriodic(cs.Ctx, st, w)
			}
		}
		for _, ps := range cs.Plus {
			p := &plusPending{occ: occFromState(ps.Occ), at: ps.At}
			st.plus = append(st.plus, p)
			n.armPlus(cs.Ctx, st, p)
		}
		st.ring = occsFromState(cs.Ring)
		st.nextBound = time.Time{}
		st.ringStop = nil
		if !cs.NextBound.IsZero() {
			// Re-arm at the original logical deadline; a deadline the
			// crashed process never reached fires during the agent's
			// FireTimersUpTo replay.
			n.armBoundary(cs.Ctx, st, cs.NextBound)
		}
		if n.kind == kTemporal && !st.done {
			// Re-arm even when the deadline already passed (the crashed
			// process may have died before firing it); a duplicate arm
			// from activate is harmless — done suppresses the second fire.
			n.armTemporal(cs.Ctx)
		}
	}
	l.defMu.Lock()
	for _, fs := range snap.Deferred {
		sh, ok := l.ruleShard[fs.Rule]
		if !ok {
			continue // rule dropped since the checkpoint
		}
		l.deferred = append(l.deferred, firing{rule: sh.rules[fs.Rule], occ: occFromState(fs.Occ)})
	}
	l.defMu.Unlock()
	return nil
}

// nodeAtPath resolves a snapshot path to its node. Caller holds the
// topology lock.
func (l *LED) nodeAtPath(path string) (*node, error) {
	parts := strings.Split(path, "/")
	sh, ok := l.eventShard[parts[0]]
	if !ok {
		return nil, fmt.Errorf("led: restore: event %q not defined", parts[0])
	}
	n := sh.nodes[parts[0]]
	for _, p := range parts[1:] {
		i, err := strconv.Atoi(p)
		if err != nil || i < 0 || i >= len(n.children) {
			return nil, fmt.Errorf("led: restore: bad path %q", path)
		}
		n = n.children[i]
		if n.name != "" {
			return nil, fmt.Errorf("led: restore: path %q crosses named event %q", path, n.name)
		}
	}
	return n, nil
}

// TrackFirings toggles outstanding-firing capture. The durable agent
// enables it before adding rules; with tracking off the fire path takes no
// extra lock.
func (l *LED) TrackFirings(on bool) { l.track.Store(on) }

// noteFired registers detected firings in the outstanding set before the
// topology read lock is released, so a checkpoint's consistent cut sees
// node state and not-yet-executed firings together. Deferred firings are
// skipped — the deferred queue snapshot covers them until FlushDeferred
// notes them itself.
func (l *LED) noteFired(fired []firing, includeDeferred bool) {
	if !l.track.Load() {
		return
	}
	l.outMu.Lock()
	for i := range fired {
		if !includeDeferred && fired[i].rule.Coupling == Deferred {
			continue
		}
		l.outSeq++
		fired[i].seq = l.outSeq
		if l.outstanding == nil {
			l.outstanding = make(map[uint64]firing)
		}
		l.outstanding[fired[i].seq] = fired[i]
	}
	l.outMu.Unlock()
}

// clearFired removes one firing from the outstanding set once its rule
// action has been handed off durably (or filtered out).
func (l *LED) clearFired(seq uint64) {
	if seq == 0 {
		return
	}
	l.outMu.Lock()
	delete(l.outstanding, seq)
	l.outMu.Unlock()
}

// OutstandingFirings reports the current outstanding-set size (tests).
func (l *LED) OutstandingFirings() int {
	l.outMu.Lock()
	defer l.outMu.Unlock()
	return len(l.outstanding)
}
