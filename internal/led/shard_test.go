package led

import (
	"fmt"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

func TestShardIndependentPrimitives(t *testing.T) {
	l := New(NewManualClock(t0))
	for _, e := range []string{"a", "b", "c"} {
		if err := l.DefinePrimitive(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.ShardCount(); got != 3 {
		t.Fatalf("ShardCount = %d, want 3 (one per independent primitive)", got)
	}
	ids := map[int]bool{l.ShardID("a"): true, l.ShardID("b"): true, l.ShardID("c"): true}
	if len(ids) != 3 {
		t.Fatalf("independent primitives share a shard: %v", ids)
	}
	if l.ShardID("nope") != -1 {
		t.Fatal("ShardID of unknown event should be -1")
	}
}

func TestShardMergeOnComposite(t *testing.T) {
	l := New(NewManualClock(t0))
	for _, e := range []string{"a", "b", "c"} {
		if err := l.DefinePrimitive(e); err != nil {
			t.Fatal(err)
		}
	}
	e, err := snoop.Parse("a ^ b")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.DefineComposite("ab", e); err != nil {
		t.Fatal(err)
	}
	if got := l.ShardCount(); got != 2 {
		t.Fatalf("ShardCount after merge = %d, want 2", got)
	}
	if l.ShardID("a") != l.ShardID("b") || l.ShardID("a") != l.ShardID("ab") {
		t.Fatal("a, b and ab must share one shard after DefineComposite")
	}
	if l.ShardID("c") == l.ShardID("a") {
		t.Fatal("c must stay in its own shard")
	}
}

func TestShardSplitOnDrop(t *testing.T) {
	l := New(NewManualClock(t0))
	for _, e := range []string{"a", "b"} {
		if err := l.DefinePrimitive(e); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := snoop.Parse("a ; b")
	if err := l.DefineComposite("ab", e); err != nil {
		t.Fatal(err)
	}
	if got := l.ShardCount(); got != 1 {
		t.Fatalf("ShardCount = %d, want 1 after merge", got)
	}
	if err := l.DropEvent("ab"); err != nil {
		t.Fatal(err)
	}
	if got := l.ShardCount(); got != 2 {
		t.Fatalf("ShardCount after drop = %d, want 2 (component split)", got)
	}
	if l.ShardID("a") == l.ShardID("b") {
		t.Fatal("a and b must separate once nothing links them")
	}
}

// TestShardRuleFiresAfterMergeAndSplit proves detection state survives
// rebalancing: a rule keeps firing after its shard is merged with another
// and again after the link is dropped and the shards split.
func TestShardRuleFiresAfterMergeAndSplit(t *testing.T) {
	h := newHarness(t, "a", "b")
	var fired []int
	if err := h.led.AddRule(&Rule{
		Name: "ra", Event: "a", Context: Recent,
		Action: func(o *Occ) { fired = append(fired, o.Constituents[0].VNo) },
	}); err != nil {
		t.Fatal(err)
	}

	h.sig("a") // vno 1, own shard
	e, _ := snoop.Parse("a ; b")
	if err := h.led.DefineComposite("link", e); err != nil {
		t.Fatal(err)
	}
	h.sig("a") // vno 2, merged shard
	if err := h.led.DropEvent("link"); err != nil {
		t.Fatal(err)
	}
	h.sig("a") // vno 3, split shard again

	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("rule firings across merge/split = %v, want [1 2 3]", fired)
	}
	if h.led.ShardID("a") == h.led.ShardID("b") {
		t.Fatal("shards did not split after DropEvent")
	}
}

// TestShardCompositeStateSurvivesMerge checks a half-detected AND keeps
// its partial state across a rebalance: initiate before the merge,
// terminate after, and the pair must still come out.
func TestShardCompositeStateSurvivesMerge(t *testing.T) {
	h := newHarness(t, "a", "b", "x", "y")
	defComposite(t, h, "ab", "a ^ b")
	var got []*Occ
	if err := h.led.AddRule(&Rule{
		Name: "r", Event: "ab", Context: Chronicle,
		Action: func(o *Occ) { got = append(got, o) },
	}); err != nil {
		t.Fatal(err)
	}

	h.sig("a") // initiate: AND holds state in the {a,b,ab} shard
	// Merge {a,b,ab} with {x} and {y} through a spanning composite.
	defComposite(t, h, "bridge", "(a ; x) | y")
	h.sig("b") // terminate after the merge
	if len(got) != 1 {
		t.Fatalf("AND fired %d times across merge, want 1", len(got))
	}
	if len(got[0].Constituents) != 2 {
		t.Fatalf("constituents = %d, want 2", len(got[0].Constituents))
	}

	// Now drop the bridge; the surviving composite's state must again be
	// intact in its re-split shard.
	if err := h.led.DropEvent("bridge"); err != nil {
		t.Fatal(err)
	}
	h.sig("a")
	h.sig("b")
	if len(got) != 2 {
		t.Fatalf("AND fired %d times after split, want 2", len(got))
	}
}

// TestShardDeferredCrossShardPriority verifies FlushDeferred preserves
// global priority ordering across shards: deferred firings from distinct
// shards flush highest-priority-first, not shard-by-shard.
func TestShardDeferredCrossShardPriority(t *testing.T) {
	l := New(NewManualClock(t0))
	var order []string
	mk := func(ev string, prio int) {
		if err := l.DefinePrimitive(ev); err != nil {
			t.Fatal(err)
		}
		if err := l.AddRule(&Rule{
			Name: "r_" + ev, Event: ev, Context: Recent,
			Coupling: Deferred, Priority: prio,
			Action: func(o *Occ) { order = append(order, ev) },
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("low", 1)
	mk("high", 9)
	mk("mid", 5)
	if l.ShardCount() != 3 {
		t.Fatalf("want 3 shards, got %d", l.ShardCount())
	}
	at := t0
	for i, ev := range []string{"low", "high", "mid"} {
		at = at.Add(time.Second)
		l.Signal(Primitive{Event: ev, Table: "t", Op: "insert", VNo: i + 1, At: at})
	}
	if len(order) != 0 {
		t.Fatalf("deferred rules ran before flush: %v", order)
	}
	l.FlushDeferred()
	want := []string{"high", "mid", "low"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("cross-shard deferred order = %v, want %v", order, want)
	}
}

// TestShardMaxShardsOne collapses everything into a single shard — the
// compatibility mode the differential suite uses as its oracle.
func TestShardMaxShardsOne(t *testing.T) {
	l := NewWithOptions(NewManualClock(t0), Options{MaxShards: 1})
	for i := 0; i < 5; i++ {
		if err := l.DefinePrimitive(fmt.Sprintf("e%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.ShardCount(); got != 1 {
		t.Fatalf("MaxShards=1 ShardCount = %d, want 1", got)
	}
	sizes := l.ShardSizes()
	if len(sizes) != 1 || sizes[0] != 5 {
		t.Fatalf("ShardSizes = %v, want [5]", sizes)
	}
	// Drop must not split beyond the cap either.
	if err := l.DropEvent("e0"); err != nil {
		t.Fatal(err)
	}
	if got := l.ShardCount(); got != 1 {
		t.Fatalf("after drop, ShardCount = %d, want 1", got)
	}
}

// TestShardSizesDescending checks the occupancy report ordering contract
// relied on by the eca_led_shard_events_max gauge.
func TestShardSizesDescending(t *testing.T) {
	l := New(NewManualClock(t0))
	for _, e := range []string{"a", "b", "c", "d"} {
		if err := l.DefinePrimitive(e); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := snoop.Parse("a ^ (b ; c)")
	if err := l.DefineComposite("big", e); err != nil {
		t.Fatal(err)
	}
	sizes := l.ShardSizes()
	if len(sizes) != 2 {
		t.Fatalf("ShardSizes = %v, want 2 shards", sizes)
	}
	if sizes[0] != 4 || sizes[1] != 1 {
		t.Fatalf("ShardSizes = %v, want [4 1] (descending)", sizes)
	}
}
