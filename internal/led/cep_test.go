package led

import (
	"testing"
	"time"
)

// t0 is 2026-07-04 12:00:00 UTC — a whole hour, so it sits on the
// boundary grid of every slide the tests use. sig(k) lands at t0+k sec.

func TestWindowTumbling(t *testing.T) {
	h := newHarness(t, "e1")
	defComposite(t, h, "w", "WINDOW(e1, [10 sec])")
	h.watch(t, "w", Recent)
	h.sig("e1")                       // +1
	h.sig("e1")                       // +2
	h.clock.Advance(10 * time.Second) // boundary at +10: [0,10) -> both
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("window fired %d times, want 1: %+v", len(occs), occs)
	}
	o := occs[0]
	if !o.At.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("window At = %v, want boundary", o.At)
	}
	// Both signals plus the boundary tick.
	if got := vnos(o); len(got) != 3 || got[0] != 1 || got[1] != 2 {
		t.Errorf("constituents: %v", got)
	}
	// Next boundary has no content: nothing fires, timer disarms.
	h.clock.Advance(20 * time.Second)
	if occs := h.take(); len(occs) != 0 {
		t.Errorf("empty window fired: %+v", occs)
	}
}

func TestWindowSliding(t *testing.T) {
	h := newHarness(t, "e1")
	defComposite(t, h, "w", "WINDOW(e1, [10 sec], SLIDE [5 sec])")
	h.watch(t, "w", Recent)
	h.sig("e1") // +1
	h.sig("e1") // +2
	h.sig("e1") // +3
	// Boundaries: +5 sees [−5,5) = {1,2,3}; +10 sees [0,10) = {1,2,3};
	// +15 sees [5,15) = {}; nothing after.
	h.clock.Advance(30 * time.Second)
	occs := h.take()
	if len(occs) != 2 {
		t.Fatalf("sliding window fired %d times, want 2: %+v", len(occs), occs)
	}
	if !occs[0].At.Equal(t0.Add(5*time.Second)) || !occs[1].At.Equal(t0.Add(10*time.Second)) {
		t.Errorf("boundaries: %v, %v", occs[0].At, occs[1].At)
	}
	for _, o := range occs {
		if got := vnos(o); len(got) != 4 { // 3 signals + tick
			t.Errorf("content at %v: %v", o.At, got)
		}
	}
}

// TestWindowOccurrenceAtBoundary pins the half-open interval: an
// occurrence exactly at a boundary belongs to the next window, not the
// one closing at that instant.
func TestWindowOccurrenceAtBoundary(t *testing.T) {
	h := newHarness(t, "e1")
	defComposite(t, h, "w", "WINDOW(e1, [5 sec])")
	h.watch(t, "w", Recent)
	h.clock.Advance(5 * time.Second) // now == t0+5, a boundary
	h.led.Signal(Primitive{Event: "e1", Op: "insert", VNo: 9, At: h.clock.Now()})
	h.clock.Advance(1 * time.Second)
	if occs := h.take(); len(occs) != 0 {
		t.Fatalf("fired before the occurrence's window closed: %+v", occs)
	}
	h.clock.Advance(4 * time.Second) // boundary +10: [5,10) -> {9}
	occs := h.take()
	if len(occs) != 1 || occs[0].Constituents[0].VNo != 9 {
		t.Fatalf("want the +5 occurrence in the +10 window: %+v", occs)
	}
}

func TestWindowCompositeChild(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "w", "WINDOW(e1 ; e2, [10 sec])")
	h.watch(t, "w", Chronicle)
	h.sig("e1") // +1
	h.sig("e2") // +2: seq completes at +2
	h.clock.Advance(10 * time.Second)
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("window over seq fired %d times: %+v", len(occs), occs)
	}
	if got := vnos(occs[0]); len(got) != 3 || got[0] != 1 || got[1] != 2 {
		t.Errorf("constituents: %v", got)
	}
}

func TestAggThreshold(t *testing.T) {
	h := newHarness(t, "e1")
	// vnos 1,2,3 arrive in the first 10s window: COUNT=3, SUM=6, AVG=2.
	defComposite(t, h, "hot", "AGG(COUNT, vno, e1, [10 sec]) >= 3")
	defComposite(t, h, "cold", "AGG(SUM, vno, e1, [10 sec]) > 100")
	defComposite(t, h, "avg", "AGG(AVG, vno, e1, [10 sec]) == 2")
	defComposite(t, h, "lo", "AGG(MIN, vno, e1, [10 sec]) < 2")
	defComposite(t, h, "hi", "AGG(MAX, vno, e1, [10 sec]) != 3")
	for _, ev := range []string{"hot", "cold", "avg", "lo", "hi"} {
		h.watch(t, ev, Recent)
	}
	h.sig("e1")
	h.sig("e1")
	h.sig("e1")
	h.clock.Advance(10 * time.Second)
	fired := map[string]int{}
	for _, o := range h.take() {
		fired[o.Event]++
	}
	if fired["hot"] != 1 || fired["avg"] != 1 || fired["lo"] != 1 {
		t.Errorf("satisfied aggregates did not fire: %v", fired)
	}
	if fired["cold"] != 0 || fired["hi"] != 0 {
		t.Errorf("unsatisfied aggregates fired: %v", fired)
	}
}

func TestAggNoComparatorFiresWhenNonEmpty(t *testing.T) {
	h := newHarness(t, "e1")
	defComposite(t, h, "c", "AGG(COUNT, vno, e1, [5 sec])")
	h.watch(t, "c", Recent)
	h.sig("e1") // +1
	h.clock.Advance(20 * time.Second)
	occs := h.take()
	if len(occs) != 1 || !occs[0].At.Equal(t0.Add(5*time.Second)) {
		t.Fatalf("bare AGG: %+v", occs)
	}
}

func TestDuring(t *testing.T) {
	// L = (e2 ; e3) spans [+2,+3]; R = (e1 ; e4) spans [+1,+4]:
	// L strictly inside R -> DURING fires when R completes at +4.
	h := newHarness(t, "e1", "e2", "e3", "e4")
	defComposite(t, h, "d", "(e2 ; e3) DURING (e1 ; e4)")
	h.watch(t, "d", Recent)
	h.sig("e1")
	h.sig("e2")
	h.sig("e3")
	h.sig("e4")
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("DURING fired %d times: %+v", len(occs), occs)
	}
	if got := vnos(occs[0]); len(got) != 4 {
		t.Errorf("constituents: %v", got)
	}
	// Reversed nesting must not fire: L spans [+5,+8], R spans [+6,+7].
	h.sig("e2") // +5
	h.sig("e1") // +6
	h.sig("e4") // +7  (R completes; L not complete yet)
	h.sig("e3") // +8  (L completes after R — no terminator left)
	if occs := h.take(); len(occs) != 0 {
		t.Errorf("non-nested intervals fired DURING: %+v", occs)
	}
}

func TestOverlaps(t *testing.T) {
	// L = (e1 ; e3) spans [+1,+3]; R = (e2 ; e4) spans [+2,+4]:
	// Ls < Rs < Le < Re -> OVERLAPS fires at +4.
	h := newHarness(t, "e1", "e2", "e3", "e4")
	defComposite(t, h, "o", "(e1 ; e3) OVERLAPS (e2 ; e4)")
	h.watch(t, "o", Recent)
	h.sig("e1")
	h.sig("e2")
	h.sig("e3")
	h.sig("e4")
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("OVERLAPS fired %d times: %+v", len(occs), occs)
	}
	// Disjoint intervals must not fire: L [+5,+6], R [+7,+8].
	h.sig("e1") // +5
	h.sig("e3") // +6
	h.sig("e2") // +7
	h.sig("e4") // +8
	if occs := h.take(); len(occs) != 0 {
		t.Errorf("disjoint intervals fired OVERLAPS: %+v", occs)
	}
}

// TestIntervalContexts pins the Seq-mirroring consumption policy: two
// nested L occurrences against one R terminator.
func TestIntervalContexts(t *testing.T) {
	runs := map[Context]int{Recent: 1, Chronicle: 1, Continuous: 2, Cumulative: 1}
	for ctx, want := range runs {
		h := newHarness(t, "e1", "e2", "e3", "e4")
		defComposite(t, h, "d", "(e2 ; e3) DURING (e1 ; e4)")
		h.watch(t, "d", ctx)
		h.sig("e1") // +1 R starts
		h.sig("e2") // +2 L1 starts
		h.sig("e3") // +3 L1 ends [2,3]; also L2 start below
		h.sig("e2") // +4
		h.sig("e3") // +5 L2 [4,5]
		h.sig("e4") // +6 R ends [1,6]; both Ls strictly inside
		occs := h.take()
		if len(occs) != want {
			t.Errorf("%v: DURING fired %d times, want %d", ctx, len(occs), want)
		}
		if ctx == Cumulative && len(occs) == 1 {
			// Both Ls and the R merged into one occurrence.
			if got := vnos(occs[0]); len(got) < 6 {
				t.Errorf("cumulative constituents: %v", got)
			}
		}
	}
}

func TestWindowSnapshotRoundTrip(t *testing.T) {
	h := newHarness(t, "e1")
	defComposite(t, h, "w", "WINDOW(e1, [10 sec], SLIDE [5 sec])")
	h.watch(t, "w", Recent)
	h.sig("e1") // +1
	h.sig("e1") // +2

	snap := h.led.SnapshotState()

	// Rebuild a fresh detector, restore, and the boundary must fire with
	// the pre-snapshot content.
	h2 := &harness{clock: NewManualClock(h.clock.Now())}
	h2.led = New(h2.clock)
	if err := h2.led.DefinePrimitive("e1"); err != nil {
		t.Fatal(err)
	}
	defComposite(t, h2, "w", "WINDOW(e1, [10 sec], SLIDE [5 sec])")
	h2.watch(t, "w", Recent)
	if err := h2.led.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	h2.clock.Advance(5 * time.Second) // boundary +5
	occs := h2.take()
	if len(occs) != 1 {
		t.Fatalf("restored window fired %d times: %+v", len(occs), occs)
	}
	if got := vnos(occs[0]); len(got) != 3 || got[0] != 1 || got[1] != 2 {
		t.Errorf("restored content: %v", got)
	}
}

func TestWindowRestoreInvariantRejected(t *testing.T) {
	h := newHarness(t, "e1")
	defComposite(t, h, "w", "WINDOW(e1, [10 sec])")
	h.watch(t, "w", Recent)
	h.sig("e1")
	snap := h.led.SnapshotState()
	// Corrupt the image: ring entries with no armed boundary.
	for i := range snap.Nodes {
		for j := range snap.Nodes[i].Contexts {
			snap.Nodes[i].Contexts[j].NextBound = time.Time{}
		}
	}
	h2 := newHarness(t, "e1")
	defComposite(t, h2, "w", "WINDOW(e1, [10 sec])")
	h2.watch(t, "w", Recent)
	if err := h2.led.RestoreState(snap); err == nil {
		t.Fatal("restore accepted a ring with no armed boundary")
	}
}

func TestBoundaryAfter(t *testing.T) {
	base := time.Unix(100, 0).UTC()
	cases := []struct {
		t     time.Time
		slide time.Duration
		want  time.Time
	}{
		{base, 10 * time.Second, time.Unix(110, 0).UTC()}, // on-grid moves to next
		{base.Add(time.Nanosecond), 10 * time.Second, time.Unix(110, 0).UTC()},
		{base.Add(9 * time.Second), 10 * time.Second, time.Unix(110, 0).UTC()},
		{time.Unix(0, 0), 5 * time.Second, time.Unix(5, 0).UTC()},
		{time.Unix(-3, 0), 5 * time.Second, time.Unix(0, 0).UTC()}, // pre-epoch floors correctly
	}
	for _, c := range cases {
		if got := boundaryAfter(c.t, c.slide); !got.Equal(c.want) {
			t.Errorf("boundaryAfter(%v, %v) = %v, want %v", c.t, c.slide, got, c.want)
		}
	}
}
