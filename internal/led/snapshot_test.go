package led

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The snapshot differential suite proves SnapshotState/RestoreState lose
// nothing: for every Snoop operator, every parameter context, and every
// cut point of the operator's script, a detector snapshotted at the cut,
// rebuilt from scratch (fresh graph, as recovery rebuilds it from the
// system tables) and restored must finish the script with exactly the
// occurrence stream an uninterrupted reference detector produces.

// buildSnapLED defines one copy of the operator's rule set on l, recording
// occurrences through rec.
func buildSnapLED(t *testing.T, l *LED, c diffCase, ctx Context, coupling Coupling, rec func(*Occ)) {
	t.Helper()
	for _, p := range []string{"e1", "e2", "e3"} {
		if err := l.DefinePrimitive("s_" + p); err != nil {
			t.Fatal(err)
		}
	}
	expr := fmt.Sprintf(c.expr, "s_e1", "s_e2", "s_e3")
	defComposite(t, &harness{led: l}, "s_comp", expr)
	if err := l.AddRule(&Rule{
		Name: "s_r", Event: "s_comp", Context: ctx, Coupling: coupling, Action: rec,
	}); err != nil {
		t.Fatal(err)
	}
}

// runSnapScript drives the given steps into every detector on the shared
// clock; vno persists across calls so a resumed script continues the
// occurrence numbering.
func runSnapScript(steps []diffStep, clock *ManualClock, vno *int, leds ...*LED) {
	for _, st := range steps {
		switch st.kind {
		case "sig":
			*vno++
			clock.Advance(time.Second)
			p := Primitive{
				Event: "s_" + st.event,
				Table: st.event + "_tbl", Op: "insert", VNo: *vno, At: clock.Now(),
			}
			for _, l := range leds {
				l.Signal(p)
			}
		case "adv":
			clock.Advance(st.d)
		case "flush":
			for _, l := range leds {
				l.FlushDeferred()
			}
		}
	}
}

func TestSnapshotRestoreDifferential(t *testing.T) {
	contexts := []Context{Recent, Chronicle, Continuous, Cumulative}
	for _, c := range diffCases {
		for _, ctx := range contexts {
			for cut := 0; cut <= len(c.script); cut++ {
				t.Run(fmt.Sprintf("%s/%s/cut%d", c.name, ctx, cut), func(t *testing.T) {
					clock := NewManualClock(t0)
					ref := New(clock)
					subj := New(clock)
					var refOccs, subjOccs []string
					crashed := false
					buildSnapLED(t, ref, c, ctx, Immediate, func(o *Occ) {
						refOccs = append(refOccs, canonOcc(o))
					})
					buildSnapLED(t, subj, c, ctx, Immediate, func(o *Occ) {
						// The abandoned detector's leftover timers keep
						// firing on the shared clock after the "crash";
						// a dead process would not record them.
						if !crashed {
							subjOccs = append(subjOccs, canonOcc(o))
						}
					})

					vno := 0
					runSnapScript(c.script[:cut], clock, &vno, ref, subj)

					snap := subj.SnapshotState()
					crashed = true
					// Abandon subj mid-flight (its leftover timers firing
					// into the void model the crashed process) and rebuild
					// on a fresh detector, as recovery rebuilds the graph
					// from the system tables before restoring state.
					restored := New(clock)
					buildSnapLED(t, restored, c, ctx, Immediate, func(o *Occ) {
						subjOccs = append(subjOccs, canonOcc(o))
					})
					if err := restored.RestoreState(snap); err != nil {
						t.Fatalf("RestoreState: %v", err)
					}

					runSnapScript(c.script[cut:], clock, &vno, ref, restored)
					ref.Wait()
					restored.Wait()

					if strings.Join(refOccs, "\n") != strings.Join(subjOccs, "\n") {
						t.Errorf("streams diverge after restore at cut %d\nreference:\n  %s\nrestored:\n  %s",
							cut, strings.Join(refOccs, "\n  "), strings.Join(subjOccs, "\n  "))
					}
				})
			}
		}
	}
}

// TestSnapshotCarriesDeferred proves queued deferred firings survive the
// snapshot/restore cycle and run on the restored detector's flush.
func TestSnapshotCarriesDeferred(t *testing.T) {
	clock := NewManualClock(t0)
	l := New(clock)
	buildSnapLED(t, l, diffCases[0] /* OR */, Recent, Deferred, func(*Occ) {
		t.Error("deferred firing ran before flush")
	})
	vno := 0
	runSnapScript([]diffStep{sig("e1")}, clock, &vno, l)
	if got := l.DeferredCount(); got != 1 {
		t.Fatalf("deferred queued = %d, want 1", got)
	}
	snap := l.SnapshotState()
	if len(snap.Deferred) != 1 {
		t.Fatalf("snapshot deferred = %d, want 1", len(snap.Deferred))
	}

	restored := New(clock)
	var got []string
	buildSnapLED(t, restored, diffCases[0], Recent, Deferred, func(o *Occ) {
		got = append(got, canonOcc(o))
	})
	if err := restored.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if n := restored.DeferredCount(); n != 1 {
		t.Fatalf("restored deferred = %d, want 1", n)
	}
	restored.FlushDeferred()
	if len(got) != 1 || !strings.Contains(got[0], "s_e1") {
		t.Fatalf("restored flush produced %v", got)
	}
}

// TestSnapshotOutstandingFirings proves the outstanding set captures the
// window between detection and durable action hand-off, and that the
// snapshot carries those firings.
func TestSnapshotOutstandingFirings(t *testing.T) {
	clock := NewManualClock(t0)
	l := New(clock)
	l.TrackFirings(true)
	var inAction chan struct{}
	release := make(chan struct{})
	inAction = make(chan struct{})
	buildSnapLED(t, l, diffCases[0], Recent, Detached, func(*Occ) {
		close(inAction)
		<-release
	})
	vno := 0
	runSnapScript([]diffStep{sig("e1")}, clock, &vno, l)
	<-inAction
	// The detached action is mid-run: it must still be outstanding.
	snap := l.SnapshotState()
	if len(snap.Outstanding) != 1 || snap.Outstanding[0].Rule != "s_r" {
		t.Fatalf("outstanding = %+v, want one s_r firing", snap.Outstanding)
	}
	close(release)
	l.Wait()
	if n := l.OutstandingFirings(); n != 0 {
		t.Fatalf("outstanding after completion = %d, want 0", n)
	}
}

// TestRestoreRejectsMismatchedGraph guards the cold-start fallback: a
// snapshot taken against one graph must not silently load onto another.
func TestRestoreRejectsMismatchedGraph(t *testing.T) {
	clock := NewManualClock(t0)
	l := New(clock)
	buildSnapLED(t, l, diffCases[2] /* SEQ */, Chronicle, Immediate, func(*Occ) {})
	vno := 0
	runSnapScript([]diffStep{sig("e1")}, clock, &vno, l)
	snap := l.SnapshotState()
	if len(snap.Nodes) == 0 {
		t.Fatal("snapshot captured no state")
	}

	other := New(clock)
	buildSnapLED(t, other, diffCases[0] /* OR: shallower graph */, Chronicle, Immediate, func(*Occ) {})
	if err := other.RestoreState(snap); err == nil {
		t.Fatal("restore onto a mismatched graph succeeded")
	}

	empty := New(clock)
	if err := empty.RestoreState(snap); err == nil {
		t.Fatal("restore onto an empty detector succeeded")
	}
}
