package led

import "time"

// The logical timer registry gives every armed operator timer (periodic
// ticks, PLUS delays, absolute-time events) a durable identity: a logical
// deadline derived from occurrence data, not from the wall clock at arm
// time. The clock's AfterFunc is only the wake-up mechanism; the deadline
// the callback observes is the registered one. That buys two things:
//
//   - deterministic timestamps: a tick re-fired after a crash restore
//     carries the same At as the tick the lost process would have emitted,
//     so downstream action dedup keys match;
//   - replayable ordering: recovery can call FireTimersUpTo to fire due
//     timers synchronously, interleaved with journal replay, in exactly
//     the (deadline, arm-order) sequence ManualClock.Advance would have
//     used.
type logTimer struct {
	id uint64
	at time.Time
	n  *node
	fn func(at time.Time)
	// clockCancel stops the backing clock timer; set under timMu right
	// after arming (a timer that fires in that gap just finds itself
	// already popped).
	clockCancel func()
}

// armNodeTimer registers a logical timer owned by n and arms the backing
// clock. fn runs inside n's current shard (via dispatchNode) with the
// logical deadline, whether the clock or FireTimersUpTo fires it. The
// returned cancel is idempotent.
func (l *LED) armNodeTimer(n *node, at time.Time, fn func(at time.Time)) func() {
	l.timMu.Lock()
	l.timNext++
	id := l.timNext
	t := &logTimer{id: id, at: at, n: n, fn: fn}
	if l.timers == nil {
		l.timers = make(map[uint64]*logTimer)
	}
	l.timers[id] = t
	l.timMu.Unlock()

	d := at.Sub(l.clock.Now())
	if d < 0 {
		d = 0
	}
	cc := l.clock.AfterFunc(d, func() { l.fireLogical(id) })
	l.timMu.Lock()
	if _, live := l.timers[id]; live {
		t.clockCancel = cc
	} else {
		// Fired (a zero-delay real-clock timer) or cancelled before we
		// could record the clock handle; release it.
		cc()
	}
	l.timMu.Unlock()

	return func() {
		l.timMu.Lock()
		lt, live := l.timers[id]
		var stop func()
		if live {
			delete(l.timers, id)
			stop = lt.clockCancel
		}
		l.timMu.Unlock()
		if stop != nil {
			stop()
		}
	}
}

// fireLogical is the clock-driven firing path: pop the timer (losing the
// race to FireTimersUpTo or cancel means doing nothing) and dispatch.
func (l *LED) fireLogical(id uint64) {
	l.timMu.Lock()
	t, ok := l.timers[id]
	if ok {
		delete(l.timers, id)
	}
	l.timMu.Unlock()
	if !ok {
		return
	}
	l.dispatchNode(t.n, func() { t.fn(t.at) })
}

// FireTimersUpTo synchronously fires every armed timer with deadline at or
// before t, in (deadline, arm-order) order — the same order a ManualClock
// Advance would use. Recovery interleaves it with journal replay so timer
// ticks land between re-signalled occurrences exactly where they fell in
// the crashed run. Must not be called from inside detection.
func (l *LED) FireTimersUpTo(t time.Time) {
	for {
		l.timMu.Lock()
		var next *logTimer
		for _, lt := range l.timers {
			if lt.at.After(t) {
				continue
			}
			if next == nil || lt.at.Before(next.at) ||
				(lt.at.Equal(next.at) && lt.id < next.id) {
				next = lt
			}
		}
		if next != nil {
			delete(l.timers, next.id)
		}
		l.timMu.Unlock()
		if next == nil {
			return
		}
		if next.clockCancel != nil {
			next.clockCancel()
		}
		l.dispatchNode(next.n, func() { next.fn(next.at) })
	}
}

// PendingLogicalTimers reports how many logical timers are armed.
func (l *LED) PendingLogicalTimers() int {
	l.timMu.Lock()
	defer l.timMu.Unlock()
	return len(l.timers)
}
