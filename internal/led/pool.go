package led

import "sync"

// detachedPool runs DETACHED rule actions on a bounded set of worker
// goroutines. The previous implementation spawned one goroutine per firing
// — a burst of detached firings could spawn without bound — so the pool
// queues firings and lazily spins up at most maxWorkers drainers; each
// worker exits when the queue runs dry, keeping an idle detector at zero
// goroutines.
type detachedPool struct {
	run func(firing)

	mu         sync.Mutex
	queue      []firing // guarded by mu
	workers    int      // guarded by mu
	maxWorkers int
	peak       int // guarded by mu

	// wg counts queued-but-unfinished firings, so wait drains the queue,
	// not just in-flight workers (shutdown after a burst completes).
	wg sync.WaitGroup
}

// submit enqueues one detached firing and ensures a worker will drain it.
func (p *detachedPool) submit(f firing) {
	p.wg.Add(1)
	p.mu.Lock()
	p.queue = append(p.queue, f)
	if p.workers < p.maxWorkers {
		p.workers++
		if p.workers > p.peak {
			p.peak = p.workers
		}
		go p.drain()
	}
	p.mu.Unlock()
}

// drain runs queued firings until none remain, then retires the worker.
func (p *detachedPool) drain() {
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.workers--
			p.mu.Unlock()
			return
		}
		f := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.run(f)
		p.wg.Done()
	}
}

// wait blocks until every submitted firing has run.
func (p *detachedPool) wait() { p.wg.Wait() }

// stats snapshots queue depth, running workers and the peak worker count.
func (p *detachedPool) stats() (queued, workers, peak int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.workers, p.peak
}
