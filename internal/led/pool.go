package led

import "sync"

// primOccBlock lays an occurrence and its single-constituent backing array
// out in one heap object, so delivering a primitive occurrence to a
// subscriber costs exactly one allocation instead of two. The occurrence
// escapes to rule actions and operator state with an ordinary *Occ — only
// the allocation layout is special, never the lifetime: nothing may write
// past Constituents[0] in place, and append on the full slice reallocates
// into a plain slice as usual.
type primOccBlock struct {
	occ Occ
	one [1]Primitive
}

// newPrimOcc builds a context-tagged primitive occurrence in one
// allocation (the Signal→detect hot path's only permitted allocation; see
// the TestAllocsSignalWarmed budget).
func newPrimOcc(p Primitive, ctx Context) *Occ {
	b := &primOccBlock{one: [1]Primitive{p}}
	b.occ = Occ{Event: p.Event, Context: ctx, At: p.At, Constituents: b.one[:1:1]}
	return &b.occ
}

// firingScratch is a recyclable firing slice used for the per-propagation
// pending list. collect appends into it under the shard lock; the caller
// runs the firings and returns the scratch to the pool. Recycling is safe
// because every consumer of a firing copies the value out of the slice
// before the caller releases it: noteFired stores copies in the
// outstanding map, the deferred queue and the detached pool append copies,
// and IMMEDIATE rules run to completion before release.
type firingScratch struct {
	fs []firing
}

// firingPool recycles firing scratch slices so a warmed Signal allocates
// no per-propagation bookkeeping.
type firingPool struct {
	p sync.Pool
}

func (fp *firingPool) get() *firingScratch {
	if v := fp.p.Get(); v != nil {
		return v.(*firingScratch)
	}
	return &firingScratch{fs: make([]firing, 0, 8)}
}

// put clears the slice before pooling it so a recycled scratch never pins
// occurrence objects (a pooled slice holding live *Occ pointers would keep
// every constituent reachable until the next reuse).
func (fp *firingPool) put(s *firingScratch) {
	for i := range s.fs {
		s.fs[i] = firing{}
	}
	s.fs = s.fs[:0]
	fp.p.Put(s)
}

// sortFirings stable-sorts a firing slice by descending priority without
// allocating: detection batches are small (usually one firing), so an
// insertion sort beats sort.SliceStable's closure-and-interface setup and
// keeps the hot path allocation-free. Equal priorities keep detection
// order, exactly like the sort.SliceStable call it replaces.
func sortFirings(fs []firing) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].rule.Priority > fs[j-1].rule.Priority; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// detachedPool runs DETACHED rule actions on a bounded set of worker
// goroutines. The previous implementation spawned one goroutine per firing
// — a burst of detached firings could spawn without bound — so the pool
// queues firings and lazily spins up at most maxWorkers drainers; each
// worker exits when the queue runs dry, keeping an idle detector at zero
// goroutines.
type detachedPool struct {
	run func(firing)

	mu         sync.Mutex
	queue      []firing // guarded by mu
	workers    int      // guarded by mu
	maxWorkers int
	peak       int // guarded by mu

	// wg counts queued-but-unfinished firings, so wait drains the queue,
	// not just in-flight workers (shutdown after a burst completes).
	wg sync.WaitGroup
}

// submit enqueues one detached firing and ensures a worker will drain it.
func (p *detachedPool) submit(f firing) {
	p.wg.Add(1)
	p.mu.Lock()
	p.queue = append(p.queue, f)
	if p.workers < p.maxWorkers {
		p.workers++
		if p.workers > p.peak {
			p.peak = p.workers
		}
		go p.drain()
	}
	p.mu.Unlock()
}

// drain runs queued firings until none remain, then retires the worker.
func (p *detachedPool) drain() {
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.workers--
			p.mu.Unlock()
			return
		}
		f := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		p.run(f)
		p.wg.Done()
	}
}

// wait blocks until every submitted firing has run.
func (p *detachedPool) wait() { p.wg.Wait() }

// stats snapshots queue depth, running workers and the peak worker count.
func (p *detachedPool) stats() (queued, workers, peak int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.workers, p.peak
}
