package led

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the current event graph in Graphviz DOT format: one node per
// registered event (primitives as boxes, composites as ellipses labelled
// with their operator expression) and edges from constituents to the
// composites that consume them. Rules appear as notes attached to their
// event. Useful for debugging rule bases; `ecasql` users can dump it via
// the agent's LED accessor.
func (l *LED) Dot() string {
	l.mu.RLock()
	defer l.mu.RUnlock()

	names := make([]string, 0, len(l.eventShard))
	for n := range l.eventShard {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("digraph eventgraph {\n")
	b.WriteString("  rankdir=BT;\n")
	for _, name := range names {
		n := l.eventShard[name].nodes[name]
		if n.kind == kPrimitive {
			fmt.Fprintf(&b, "  %s [shape=box, label=%s];\n", dotID(name), dotQ(name))
			continue
		}
		label := name
		if n.expr != nil {
			label = name + "\\n= " + n.expr.String()
		}
		fmt.Fprintf(&b, "  %s [shape=ellipse, label=%s];\n", dotID(name), dotQ(label))
		if n.expr != nil {
			for _, ref := range exprRefs(n) {
				fmt.Fprintf(&b, "  %s -> %s;\n", dotID(ref), dotID(name))
			}
		}
	}
	ruleNames := make([]string, 0, len(l.ruleShard))
	for rn := range l.ruleShard {
		ruleNames = append(ruleNames, rn)
	}
	sort.Strings(ruleNames)
	for _, rn := range ruleNames {
		r := l.ruleShard[rn].rules[rn]
		id := dotID("rule_" + rn)
		label := fmt.Sprintf("%s\\n[%s, %s, prio %d]", rn, r.Coupling, r.Context, r.Priority)
		fmt.Fprintf(&b, "  %s [shape=note, label=%s];\n", id, dotQ(label))
		fmt.Fprintf(&b, "  %s -> %s [style=dashed];\n", dotID(r.Event), id)
	}
	b.WriteString("}\n")
	return b.String()
}

// exprRefs lists the distinct constituent event names of a composite node.
func exprRefs(n *node) []string {
	if n.expr == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, name := range eventNamesOf(n) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func eventNamesOf(n *node) []string {
	var out []string
	var walk func(x *node)
	walk = func(x *node) {
		for _, c := range x.children {
			if c.name != "" || c.kind == kPrimitive {
				out = append(out, c.eventName())
				continue
			}
			walk(c)
		}
	}
	walk(n)
	return out
}

// dotID sanitizes a name into a DOT identifier.
func dotID(name string) string {
	var b strings.Builder
	b.WriteByte('n')
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// dotQ quotes a label.
func dotQ(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
