package led

import (
	"testing"
	"time"
)

// warmedLED builds the canonical hot-path detector: one primitive event
// with one IMMEDIATE rule whose action is a plain counter, pre-signalled
// so every lazily grown buffer (pending scratch, operator maps) has
// reached steady state before the measured runs.
func warmedLED(tb testing.TB) (*LED, *int) {
	tb.Helper()
	l := New(NewManualClock(time.Unix(0, 0)))
	if err := l.DefinePrimitive("e"); err != nil {
		tb.Fatal(err)
	}
	var hits int
	if err := l.AddRule(&Rule{
		Name: "r", Event: "e", Context: Recent,
		Action: func(*Occ) { hits++ },
	}); err != nil {
		tb.Fatal(err)
	}
	at := time.Unix(0, 0)
	for i := 1; i <= 1000; i++ {
		at = at.Add(time.Microsecond)
		l.Signal(Primitive{Event: "e", Op: "insert", VNo: i, At: at})
	}
	return l, &hits
}

// TestAllocsSignalWarmed is the gated allocation budget for the
// Signal→detect path (ISSUE 7 / ROADMAP item 3): one warmed primitive
// signal through detection and an IMMEDIATE rule firing must stay within
// two heap allocations — the occurrence block handed to the rule is the
// only allocation the design admits, the budget leaves one spare.
func TestAllocsSignalWarmed(t *testing.T) {
	l, hits := warmedLED(t)
	at := time.Unix(1, 0)
	vno := 1000
	avg := testing.AllocsPerRun(200, func() {
		at = at.Add(time.Microsecond)
		vno++
		l.Signal(Primitive{Event: "e", Op: "insert", VNo: vno, At: at})
	})
	if avg > 2 {
		t.Fatalf("Signal→detect allocates %.1f objects/op, budget is 2", avg)
	}
	// 1000 warm signals + 200 measured + AllocsPerRun's one warm-up call.
	if *hits != 1201 {
		t.Fatalf("rule ran %d times, want 1201", *hits)
	}
}
