package led

import (
	"fmt"
	"testing"
)

// Aperiodic A across all four contexts with two overlapping windows.
func TestAperiodicAllContexts(t *testing.T) {
	// Sequence: open(1) open(2) trade(3) close(4) trade(5)
	cases := map[Context]struct {
		count int
		first string // vnos of the first detection
	}{
		Recent:     {count: 1, first: "[2 3]"}, // latest window only
		Chronicle:  {count: 1, first: "[1 3]"}, // oldest window
		Continuous: {count: 2, first: "[1 3]"}, // both windows
		Cumulative: {count: 1, first: "[1 2 3]"},
	}
	for ctx, want := range cases {
		h := newHarness(t, "open", "trade", "close")
		defComposite(t, h, "a", "A(open, trade, close)")
		h.watch(t, "a", ctx)
		h.sig("open")  // 1
		h.sig("open")  // 2
		h.sig("trade") // 3
		h.sig("close") // 4
		h.sig("trade") // 5: Chronicle still has window 2 open; others closed all
		occs := h.take()
		// For Chronicle, the close only removed the oldest window, so the
		// final trade fires once more inside window 2.
		wantCount := want.count
		if ctx == Chronicle {
			wantCount++
		}
		if len(occs) != wantCount {
			t.Errorf("%v: fired %d times, want %d", ctx, len(occs), wantCount)
			continue
		}
		if got := fmt.Sprint(vnos(occs[0])); got != want.first {
			t.Errorf("%v: first detection %s, want %s", ctx, got, want.first)
		}
	}
}

// A* across contexts: accumulation and flush behaviour.
func TestAperiodicStarAllContexts(t *testing.T) {
	// Sequence: open(1) trade(2) open(3) trade(4) close(5)
	cases := map[Context][]string{
		// Recent: the second open replaced the window, so only trade(4)
		// accumulated under open(3).
		Recent: {"[3 4 5]"},
		// Chronicle: close pairs the oldest window (opened at 1), which
		// saw both trades.
		Chronicle: {"[1 2 4 5]"},
		// Continuous: both windows emit; window 1 saw both trades, window
		// 2 only trade(4).
		Continuous: {"[1 2 4 5]", "[3 4 5]"},
		// Cumulative: one merged emission.
		Cumulative: {"[1 2 3 4 4 5]"},
	}
	for ctx, want := range cases {
		h := newHarness(t, "open", "trade", "close")
		defComposite(t, h, "a", "A*(open, trade, close)")
		h.watch(t, "a", ctx)
		h.sig("open")  // 1
		h.sig("trade") // 2
		h.sig("open")  // 3
		h.sig("trade") // 4
		h.sig("close") // 5
		occs := h.take()
		if len(occs) != len(want) {
			t.Errorf("%v: fired %d times, want %d", ctx, len(occs), len(want))
			continue
		}
		for i, w := range want {
			if got := fmt.Sprint(vnos(occs[i])); got != w {
				t.Errorf("%v: occurrence %d = %s, want %s", ctx, i, got, w)
			}
		}
	}
}

// OR occurrences carry the composite's name, not the constituent's.
func TestOrRelabelsEvent(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "either", "e1 | e2")
	h.watch(t, "either", Recent)
	h.sig("e1")
	occs := h.take()
	if len(occs) != 1 || occs[0].Event != "either" {
		t.Errorf("OR event name: %+v", occs)
	}
	if len(occs[0].Constituents) != 1 || occs[0].Constituents[0].Event != "e1" {
		t.Errorf("OR constituents: %+v", occs[0])
	}
}

// A rule on an OR of two composites (deep reuse).
func TestOrOfComposites(t *testing.T) {
	h := newHarness(t, "e1", "e2", "e3")
	defComposite(t, h, "pairA", "e1 ^ e2")
	defComposite(t, h, "pairB", "e2 ^ e3")
	defComposite(t, h, "any", "pairA | pairB")
	h.watch(t, "any", Chronicle)
	h.sig("e1")
	h.sig("e2") // completes pairA; pairB gets its e2
	h.sig("e3") // completes pairB
	occs := h.take()
	if len(occs) != 2 {
		t.Fatalf("OR of composites fired %d times", len(occs))
	}
	if len(occs[0].Constituents) != 2 || len(occs[1].Constituents) != 2 {
		t.Errorf("constituent counts: %d %d", len(occs[0].Constituents), len(occs[1].Constituents))
	}
}

// Not-condition rules skip the action entirely (condition evaluated before
// coupling dispatch for deferred rules too).
func TestDeferredRuleConditionEvaluatedAtFlush(t *testing.T) {
	h := newHarness(t, "e1")
	fired := 0
	err := h.led.AddRule(&Rule{
		Name: "r", Event: "e1", Context: Recent, Coupling: Deferred,
		Condition: func(o *Occ) bool { return o.Constituents[0].VNo > 1 },
		Action:    func(*Occ) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sig("e1") // vno 1: condition false
	h.sig("e1") // vno 2: condition true
	h.led.FlushDeferred()
	if fired != 1 {
		t.Errorf("deferred condition: fired %d", fired)
	}
}

// Dropped rules queued as deferred do not run at flush.
func TestDroppedDeferredRuleSkipped(t *testing.T) {
	h := newHarness(t, "e1")
	fired := 0
	_ = h.led.AddRule(&Rule{
		Name: "r", Event: "e1", Context: Recent, Coupling: Deferred,
		Action: func(*Occ) { fired++ },
	})
	h.sig("e1")
	if err := h.led.DropRule("r"); err != nil {
		t.Fatal(err)
	}
	h.led.FlushDeferred()
	if fired != 0 {
		t.Error("dropped deferred rule still ran")
	}
}
