package led

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

var t0 = time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

// harness bundles a LED on a manual clock with an occurrence recorder.
type harness struct {
	led   *LED
	clock *ManualClock
	mu    sync.Mutex
	occs  []*Occ
	seq   int
}

func newHarness(t *testing.T, prims ...string) *harness {
	t.Helper()
	h := &harness{clock: NewManualClock(t0)}
	h.led = New(h.clock)
	for _, p := range prims {
		if err := h.led.DefinePrimitive(p); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// watch attaches an immediate recording rule for event in ctx.
func (h *harness) watch(t *testing.T, event string, ctx Context) {
	t.Helper()
	err := h.led.AddRule(&Rule{
		Name:    fmt.Sprintf("watch-%s-%s-%d", event, ctx, len(h.led.RuleNames())),
		Event:   event,
		Context: ctx,
		Action: func(o *Occ) {
			h.mu.Lock()
			h.occs = append(h.occs, o)
			h.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// sig signals a primitive occurrence one second after the previous one.
func (h *harness) sig(event string) {
	h.seq++
	h.led.Signal(Primitive{
		Event: event, Table: event + "_tbl", Op: "insert", VNo: h.seq,
		At: t0.Add(time.Duration(h.seq) * time.Second),
	})
}

func (h *harness) take() []*Occ {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.occs
	h.occs = nil
	return out
}

// names returns the constituent event names of an occurrence in time order.
func names(o *Occ) []string {
	out := make([]string, len(o.Constituents))
	for i, c := range o.Constituents {
		out[i] = c.Event
	}
	return out
}

// vnos returns the constituent VNos.
func vnos(o *Occ) []int {
	out := make([]int, len(o.Constituents))
	for i, c := range o.Constituents {
		out[i] = c.VNo
	}
	return out
}

func defComposite(t *testing.T, h *harness, name, expr string) {
	t.Helper()
	e, err := snoop.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.led.DefineComposite(name, e); err != nil {
		t.Fatal(err)
	}
}

func TestPrimitiveRule(t *testing.T) {
	h := newHarness(t, "e1")
	h.watch(t, "e1", Recent)
	h.sig("e1")
	occs := h.take()
	if len(occs) != 1 || occs[0].Event != "e1" || occs[0].Constituents[0].VNo != 1 {
		t.Fatalf("occs: %+v", occs)
	}
	// Unknown events are ignored, not an error.
	h.led.Signal(Primitive{Event: "ghost", At: t0})
	if len(h.take()) != 0 {
		t.Error("ghost event detected")
	}
}

func TestOrAllContexts(t *testing.T) {
	for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
		h := newHarness(t, "e1", "e2")
		defComposite(t, h, "either", "e1 | e2")
		h.watch(t, "either", ctx)
		h.sig("e1")
		h.sig("e2")
		h.sig("e1")
		occs := h.take()
		if len(occs) != 3 {
			t.Errorf("%v: OR fired %d times, want 3", ctx, len(occs))
		}
	}
}

func TestAndRecent(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "both", "e1 ^ e2")
	h.watch(t, "both", Recent)
	h.sig("e1") // vno 1
	h.sig("e2") // vno 2 → (1,2)
	h.sig("e1") // vno 3 → (3,2): latest e2 still present in recent
	h.sig("e2") // vno 4 → (3,4)
	occs := h.take()
	if len(occs) != 3 {
		t.Fatalf("recent AND fired %d times: %+v", len(occs), occs)
	}
	want := [][]int{{1, 2}, {2, 3}, {3, 4}}
	for i, o := range occs {
		got := vnos(o)
		if fmt.Sprint(got) != fmt.Sprint(want[i]) {
			t.Errorf("occ %d vnos = %v, want %v", i, got, want[i])
		}
	}
}

func TestAndChronicle(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "both", "e1 ^ e2")
	h.watch(t, "both", Chronicle)
	h.sig("e1") // 1
	h.sig("e1") // 2
	h.sig("e2") // 3 → pairs (1,3)
	h.sig("e2") // 4 → pairs (2,4)
	h.sig("e2") // 5 → no e1 left
	occs := h.take()
	if len(occs) != 2 {
		t.Fatalf("chronicle AND fired %d times", len(occs))
	}
	if fmt.Sprint(vnos(occs[0])) != "[1 3]" || fmt.Sprint(vnos(occs[1])) != "[2 4]" {
		t.Errorf("pairs: %v %v", vnos(occs[0]), vnos(occs[1]))
	}
}

func TestAndContinuous(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "both", "e1 ^ e2")
	h.watch(t, "both", Continuous)
	h.sig("e1") // 1
	h.sig("e1") // 2
	h.sig("e2") // 3 → terminates both windows: (1,3) and (2,3)
	h.sig("e2") // 4 → nothing pending
	occs := h.take()
	if len(occs) != 2 {
		t.Fatalf("continuous AND fired %d times: %v", len(occs), occs)
	}
	if fmt.Sprint(vnos(occs[0])) != "[1 3]" || fmt.Sprint(vnos(occs[1])) != "[2 3]" {
		t.Errorf("pairs: %v %v", vnos(occs[0]), vnos(occs[1]))
	}
}

func TestAndCumulative(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "both", "e1 ^ e2")
	h.watch(t, "both", Cumulative)
	h.sig("e1") // 1
	h.sig("e1") // 2
	h.sig("e2") // 3 → one occurrence with {1,2,3}
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("cumulative AND fired %d times", len(occs))
	}
	if fmt.Sprint(vnos(occs[0])) != "[1 2 3]" {
		t.Errorf("constituents: %v", vnos(occs[0]))
	}
	// Buffers were flushed.
	h.sig("e2")
	if len(h.take()) != 0 {
		t.Error("cumulative AND retained state after flush")
	}
}

func TestSeqOrderingEnforced(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "ordered", "e1 ; e2")
	h.watch(t, "ordered", Recent)
	h.sig("e2") // terminator with no initiator: nothing
	if len(h.take()) != 0 {
		t.Fatal("SEQ fired without initiator")
	}
	h.sig("e1")
	h.sig("e2")
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("SEQ fired %d times", len(occs))
	}
	if fmt.Sprint(names(occs[0])) != "[e1 e2]" {
		t.Errorf("constituent order: %v", names(occs[0]))
	}
	if !occs[0].Constituents[0].At.Before(occs[0].Constituents[1].At) {
		t.Error("SEQ constituents out of time order")
	}
}

func TestSeqContexts(t *testing.T) {
	type result struct {
		count int
		pairs string
	}
	cases := map[Context]result{
		Recent:     {count: 1, pairs: "[[2 3]]"},
		Chronicle:  {count: 2, pairs: "[[1 3] [2 4]]"},
		Continuous: {count: 2, pairs: "[[1 3] [2 3]]"},
		Cumulative: {count: 1, pairs: "[[1 2 3]]"},
	}
	for ctx, want := range cases {
		h := newHarness(t, "e1", "e2")
		defComposite(t, h, "seq", "e1 ; e2")
		h.watch(t, "seq", ctx)
		h.sig("e1") // 1
		h.sig("e1") // 2
		h.sig("e2") // 3
		h.sig("e2") // 4
		occs := h.take()
		var pairs [][]int
		for _, o := range occs {
			pairs = append(pairs, vnos(o))
		}
		if len(occs) < want.count || fmt.Sprint(pairs[:want.count]) != want.pairs {
			t.Errorf("%v: got %d occs %v, want %d %s", ctx, len(occs), pairs, want.count, want.pairs)
		}
	}
}

func TestNot(t *testing.T) {
	h := newHarness(t, "open", "audit", "close")
	defComposite(t, h, "unaudited", "NOT(open, audit, close)")
	h.watch(t, "unaudited", Recent)
	h.sig("open")
	h.sig("close")
	if occs := h.take(); len(occs) != 1 {
		t.Fatalf("NOT without middle: %d occs", len(occs))
	}
	// Middle event cancels.
	h.sig("open")
	h.sig("audit")
	h.sig("close")
	if occs := h.take(); len(occs) != 0 {
		t.Fatalf("NOT fired despite middle event: %+v", occs)
	}
	// Recovery after cancellation.
	h.sig("open")
	h.sig("close")
	if occs := h.take(); len(occs) != 1 {
		t.Fatal("NOT did not recover after cancellation")
	}
}

func TestAperiodic(t *testing.T) {
	h := newHarness(t, "open", "trade", "close")
	defComposite(t, h, "inwindow", "A(open, trade, close)")
	h.watch(t, "inwindow", Recent)
	h.sig("trade") // outside window
	if len(h.take()) != 0 {
		t.Fatal("A fired outside window")
	}
	h.sig("open")
	h.sig("trade") // inside → fire
	h.sig("trade") // inside → fire
	h.sig("close")
	h.sig("trade") // window closed
	occs := h.take()
	if len(occs) != 2 {
		t.Fatalf("A fired %d times, want 2", len(occs))
	}
	if fmt.Sprint(names(occs[0])) != "[open trade]" {
		t.Errorf("constituents: %v", names(occs[0]))
	}
}

func TestAperiodicStar(t *testing.T) {
	h := newHarness(t, "open", "trade", "close")
	defComposite(t, h, "batch", "A*(open, trade, close)")
	h.watch(t, "batch", Recent)
	h.sig("open")
	h.sig("trade")
	h.sig("trade")
	h.sig("close")
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("A* fired %d times, want 1", len(occs))
	}
	if fmt.Sprint(names(occs[0])) != "[open trade trade close]" {
		t.Errorf("constituents: %v", names(occs[0]))
	}
	// Empty window: no occurrence at close.
	h.sig("open")
	h.sig("close")
	if len(h.take()) != 0 {
		t.Error("A* fired with no middle occurrences")
	}
}

func TestPeriodic(t *testing.T) {
	h := newHarness(t, "open", "close")
	e, err := snoop.Parse("P(open, [5 sec], close)")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.led.DefineComposite("everyFive", e); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "everyFive", Recent)
	h.led.Signal(Primitive{Event: "open", At: h.clock.Now()})
	h.clock.Advance(16 * time.Second) // ticks at +5, +10, +15
	occs := h.take()
	if len(occs) != 3 {
		t.Fatalf("P fired %d times, want 3", len(occs))
	}
	h.led.Signal(Primitive{Event: "close", At: h.clock.Now()})
	h.clock.Advance(20 * time.Second)
	if extra := h.take(); len(extra) != 0 {
		t.Errorf("P kept ticking after close: %d", len(extra))
	}
}

func TestPeriodicStar(t *testing.T) {
	h := newHarness(t, "open", "close")
	e, _ := snoop.Parse("P*(open, [5 sec], close)")
	if err := h.led.DefineComposite("acc", e); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "acc", Recent)
	h.led.Signal(Primitive{Event: "open", At: h.clock.Now()})
	h.clock.Advance(12 * time.Second) // ticks at +5, +10 accumulated
	if len(h.take()) != 0 {
		t.Fatal("P* emitted before close")
	}
	h.led.Signal(Primitive{Event: "close", At: h.clock.Now()})
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("P* fired %d times, want 1", len(occs))
	}
	ticks := 0
	for _, c := range occs[0].Constituents {
		if c.Op == "tick" {
			ticks++
		}
	}
	if ticks != 2 {
		t.Errorf("P* accumulated %d ticks, want 2", ticks)
	}
}

func TestPlus(t *testing.T) {
	h := newHarness(t, "alarm")
	e, _ := snoop.Parse("alarm PLUS [30 sec]")
	if err := h.led.DefineComposite("delayed", e); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "delayed", Recent)
	h.led.Signal(Primitive{Event: "alarm", At: h.clock.Now()})
	h.clock.Advance(29 * time.Second)
	if len(h.take()) != 0 {
		t.Fatal("PLUS fired early")
	}
	h.clock.Advance(2 * time.Second)
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("PLUS fired %d times", len(occs))
	}
	if got := occs[0].At.Sub(t0); got != 30*time.Second {
		t.Errorf("PLUS occurrence time offset: %v", got)
	}
}

func TestTemporal(t *testing.T) {
	h := newHarness(t)
	at := t0.Add(time.Minute)
	if err := h.led.DefineComposite("deadline", &snoop.Temporal{At: at}); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "deadline", Recent)
	h.clock.Advance(59 * time.Second)
	if len(h.take()) != 0 {
		t.Fatal("temporal fired early")
	}
	h.clock.Advance(2 * time.Second)
	occs := h.take()
	if len(occs) != 1 || !occs[0].At.Equal(at) {
		t.Fatalf("temporal: %+v", occs)
	}
}

func TestNestedComposite(t *testing.T) {
	// (e1 ^ e2) ; e3 — nested operators share context.
	h := newHarness(t, "e1", "e2", "e3")
	defComposite(t, h, "nested", "(e1 ^ e2) ; e3")
	h.watch(t, "nested", Recent)
	h.sig("e1")
	h.sig("e2")
	h.sig("e3")
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("nested fired %d times", len(occs))
	}
	if fmt.Sprint(names(occs[0])) != "[e1 e2 e3]" {
		t.Errorf("constituents: %v", names(occs[0]))
	}
}

func TestCompositeReuse(t *testing.T) {
	// A named composite used as a constituent of another composite —
	// contribution 2 of the paper.
	h := newHarness(t, "e1", "e2", "e3")
	defComposite(t, h, "pair", "e1 ^ e2")
	defComposite(t, h, "tri", "pair ; e3")
	h.watch(t, "tri", Recent)
	h.watch(t, "pair", Recent)
	h.sig("e1")
	h.sig("e2") // pair fires
	h.sig("e3") // tri fires
	occs := h.take()
	if len(occs) != 2 {
		t.Fatalf("got %d occurrences: %+v", len(occs), occs)
	}
	var pairSeen, triSeen bool
	for _, o := range occs {
		switch o.Event {
		case "pair":
			pairSeen = true
		case "tri":
			triSeen = true
			if fmt.Sprint(names(o)) != "[e1 e2 e3]" {
				t.Errorf("tri constituents: %v", names(o))
			}
		}
	}
	if !pairSeen || !triSeen {
		t.Errorf("pair=%v tri=%v", pairSeen, triSeen)
	}
}

func TestMultipleRulesWithPriority(t *testing.T) {
	h := newHarness(t, "e1")
	var order []string
	add := func(name string, prio int) {
		err := h.led.AddRule(&Rule{
			Name: name, Event: "e1", Context: Recent, Priority: prio,
			Action: func(*Occ) { order = append(order, name) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("low", 1)
	add("high", 10)
	add("mid", 5)
	h.sig("e1")
	if fmt.Sprint(order) != "[high mid low]" {
		t.Errorf("priority order: %v", order)
	}
}

func TestRuleCondition(t *testing.T) {
	h := newHarness(t, "e1")
	fired := 0
	err := h.led.AddRule(&Rule{
		Name: "guarded", Event: "e1", Context: Recent,
		Condition: func(o *Occ) bool { return o.Constituents[0].VNo%2 == 0 },
		Action:    func(*Occ) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.sig("e1") // vno 1: condition false
	h.sig("e1") // vno 2: condition true
	if fired != 1 {
		t.Errorf("condition gating: fired %d", fired)
	}
}

func TestDeferredCoupling(t *testing.T) {
	h := newHarness(t, "e1")
	fired := 0
	_ = h.led.AddRule(&Rule{
		Name: "def", Event: "e1", Context: Recent, Coupling: Deferred,
		Action: func(*Occ) { fired++ },
	})
	h.sig("e1")
	h.sig("e1")
	if fired != 0 {
		t.Fatal("deferred rule ran before flush")
	}
	if h.led.DeferredCount() != 2 {
		t.Fatalf("deferred queue: %d", h.led.DeferredCount())
	}
	h.led.FlushDeferred()
	if fired != 2 {
		t.Errorf("after flush: %d", fired)
	}
	if h.led.DeferredCount() != 0 {
		t.Error("queue not drained")
	}
}

func TestDetachedCoupling(t *testing.T) {
	h := newHarness(t, "e1")
	done := make(chan struct{})
	_ = h.led.AddRule(&Rule{
		Name: "det", Event: "e1", Context: Recent, Coupling: Detached,
		Action: func(*Occ) { close(done) },
	})
	h.sig("e1")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("detached rule never ran")
	}
	h.led.Wait()
}

func TestDropRule(t *testing.T) {
	h := newHarness(t, "e1")
	fired := 0
	_ = h.led.AddRule(&Rule{Name: "r", Event: "e1", Context: Recent,
		Action: func(*Occ) { fired++ }})
	h.sig("e1")
	if err := h.led.DropRule("r"); err != nil {
		t.Fatal(err)
	}
	h.sig("e1")
	if fired != 1 {
		t.Errorf("dropped rule fired: %d", fired)
	}
	if err := h.led.DropRule("r"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestDropEventGuards(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "c", "e1 ^ e2")
	if err := h.led.DropEvent("e1"); err == nil {
		t.Error("dropped event still referenced by composite")
	}
	h.watch(t, "c", Recent)
	if err := h.led.DropEvent("c"); err == nil {
		t.Error("dropped event with attached rule")
	}
	// After dropping the rule, the composite can go; then e1 can go.
	for _, r := range h.led.RuleNames() {
		_ = h.led.DropRule(r)
	}
	if err := h.led.DropEvent("c"); err != nil {
		t.Fatal(err)
	}
	if err := h.led.DropEvent("e1"); err != nil {
		t.Fatal(err)
	}
	if h.led.HasEvent("e1") {
		t.Error("e1 still defined")
	}
}

func TestDefinitionErrors(t *testing.T) {
	h := newHarness(t, "e1")
	if err := h.led.DefinePrimitive("e1"); err == nil {
		t.Error("duplicate primitive accepted")
	}
	e, _ := snoop.Parse("e1 ^ missing")
	if err := h.led.DefineComposite("c", e); err == nil {
		t.Error("composite over undefined event accepted")
	}
	e, _ = snoop.Parse("e1")
	if err := h.led.DefineComposite("e1", e); err == nil {
		t.Error("duplicate composite name accepted")
	}
	if err := h.led.AddRule(&Rule{Name: "r", Event: "nope", Action: func(*Occ) {}}); err == nil {
		t.Error("rule on undefined event accepted")
	}
	if err := h.led.AddRule(&Rule{Name: "", Event: "e1", Action: func(*Occ) {}}); err == nil {
		t.Error("unnamed rule accepted")
	}
	if err := h.led.AddRule(&Rule{Name: "r2", Event: "e1"}); err == nil {
		t.Error("actionless rule accepted")
	}
	_ = h.led.AddRule(&Rule{Name: "dup", Event: "e1", Action: func(*Occ) {}})
	if err := h.led.AddRule(&Rule{Name: "dup", Event: "e1", Action: func(*Occ) {}}); err == nil {
		t.Error("duplicate rule name accepted")
	}
}

// TestContextsAgreeOnSingleSequence is the DESIGN.md invariant: for one
// non-overlapping initiator/terminator pair, all four contexts detect the
// same single occurrence.
func TestContextsAgreeOnSingleSequence(t *testing.T) {
	for _, expr := range []string{"e1 ^ e2", "e1 ; e2", "NOT(e1, e3, e2)"} {
		var results []string
		for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
			h := newHarness(t, "e1", "e2", "e3")
			defComposite(t, h, "c", expr)
			h.watch(t, "c", ctx)
			h.sig("e1")
			h.sig("e2")
			occs := h.take()
			if len(occs) != 1 {
				t.Errorf("%s in %v: %d occurrences", expr, ctx, len(occs))
				continue
			}
			results = append(results, fmt.Sprint(vnos(occs[0])))
		}
		for _, r := range results {
			if r != results[0] {
				t.Errorf("%s: contexts disagree: %v", expr, results)
			}
		}
	}
}

// TestAndCommutative: detection count of e1^e2 equals e2^e1 for a random
// interleaving, per DESIGN.md invariants.
func TestAndCommutative(t *testing.T) {
	seqs := [][]string{
		{"e1", "e2", "e1", "e2", "e2", "e1"},
		{"e2", "e2", "e1", "e1"},
		{"e1", "e1", "e1", "e2"},
	}
	for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
		for _, seq := range seqs {
			counts := [2]int{}
			for v, expr := range []string{"e1 ^ e2", "e2 ^ e1"} {
				h := newHarness(t, "e1", "e2")
				defComposite(t, h, "c", expr)
				h.watch(t, "c", ctx)
				for _, e := range seq {
					h.sig(e)
				}
				counts[v] = len(h.take())
			}
			if counts[0] != counts[1] {
				t.Errorf("%v %v: %d vs %d", ctx, seq, counts[0], counts[1])
			}
		}
	}
}

// TestOrCountEqualsSum: OR detections = occurrences of constituents.
func TestOrCountEqualsSum(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "c", "e1 | e2")
	h.watch(t, "c", Chronicle)
	n1, n2 := 7, 4
	for i := 0; i < n1; i++ {
		h.sig("e1")
	}
	for i := 0; i < n2; i++ {
		h.sig("e2")
	}
	if got := len(h.take()); got != n1+n2 {
		t.Errorf("OR count = %d, want %d", got, n1+n2)
	}
}

func TestConcurrentSignals(t *testing.T) {
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "c", "e1 ^ e2")
	var count int
	var mu sync.Mutex
	_ = h.led.AddRule(&Rule{Name: "r", Event: "c", Context: Chronicle,
		Action: func(*Occ) { mu.Lock(); count++; mu.Unlock() }})
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ev := "e1"
			if i%2 == 1 {
				ev = "e2"
			}
			h.led.Signal(Primitive{Event: ev, VNo: i, At: t0.Add(time.Duration(i) * time.Millisecond)})
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != n/2 {
		t.Errorf("chronicle AND detected %d pairs, want %d", count, n/2)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(t0)
	var fired []int
	c.AfterFunc(2*time.Second, func() { fired = append(fired, 2) })
	cancel := c.AfterFunc(time.Second, func() { fired = append(fired, 1) })
	c.AfterFunc(3*time.Second, func() { fired = append(fired, 3) })
	cancel() // the 1s timer never fires
	c.Advance(2500 * time.Millisecond)
	if fmt.Sprint(fired) != "[2]" {
		t.Errorf("fired: %v", fired)
	}
	if c.PendingTimers() != 1 {
		t.Errorf("pending: %d", c.PendingTimers())
	}
	c.Advance(time.Second)
	if fmt.Sprint(fired) != "[2 3]" {
		t.Errorf("fired: %v", fired)
	}
	if got := c.Now().Sub(t0); got != 3500*time.Millisecond {
		t.Errorf("now: %v", got)
	}
}

func TestParseContextAndCoupling(t *testing.T) {
	for s, want := range map[string]Context{
		"recent": Recent, "CHRONICLE": Chronicle, "Continuous": Continuous, "cumulative": Cumulative,
	} {
		got, err := ParseContext(s)
		if err != nil || got != want {
			t.Errorf("ParseContext(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseContext("nope"); err == nil {
		t.Error("bad context accepted")
	}
	for s, want := range map[string]Coupling{
		"immediate": Immediate, "DEFERRED": Deferred, "DEFERED": Deferred, "detached": Detached,
	} {
		got, err := ParseCoupling(s)
		if err != nil || got != want {
			t.Errorf("ParseCoupling(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCoupling("sometime"); err == nil {
		t.Error("bad coupling accepted")
	}
	// String round-trips.
	for _, c := range []Context{Recent, Chronicle, Continuous, Cumulative} {
		if got, err := ParseContext(c.String()); err != nil || got != c {
			t.Errorf("context string round trip: %v", c)
		}
	}
	for _, c := range []Coupling{Immediate, Deferred, Detached} {
		if got, err := ParseCoupling(c.String()); err != nil || got != c {
			t.Errorf("coupling string round trip: %v", c)
		}
	}
}
