package led

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// The differential equivalence suite is the load-bearing proof behind the
// sharded detector: every Snoop operator, under all four parameter
// contexts and all three coupling modes, is driven through a single-shard
// LED (Options{MaxShards: 1} — the historical single-lock detector) and a
// fully sharded LED on the same ManualClock event script, with four
// independent copies of the rule set so the sharded side actually splits
// into multiple shards. The observable occurrence streams — event name,
// context, occurrence time, and the full constituent list — must be
// identical.

// diffStep is one step of a differential event script.
type diffStep struct {
	kind  string        // "sig" | "adv" | "flush"
	event string        // for sig: unprefixed event name (e1, e2, e3)
	d     time.Duration // for adv
}

func sig(event string) diffStep    { return diffStep{kind: "sig", event: event} }
func adv(d time.Duration) diffStep { return diffStep{kind: "adv", d: d} }
func flushDeferred() diffStep      { return diffStep{kind: "flush"} }

// diffCase is one operator under test: an expression template over
// %[1]s..%[3]s (the prefixed primitive names) and a script that exercises
// initiators, middles, terminators, overlapping windows and timers.
type diffCase struct {
	name   string
	expr   string
	script []diffStep
}

var diffCases = []diffCase{
	{"OR", "%[1]s | %[2]s", []diffStep{
		sig("e1"), sig("e2"), sig("e1"), sig("e3"), sig("e2"),
	}},
	{"AND", "%[1]s ^ %[2]s", []diffStep{
		sig("e1"), sig("e1"), sig("e2"), sig("e2"), sig("e1"), sig("e2"), sig("e2"),
	}},
	{"SEQ", "%[1]s ; %[2]s", []diffStep{
		sig("e1"), sig("e1"), sig("e2"), sig("e1"), sig("e2"), sig("e2"),
	}},
	{"NOT", "NOT(%[1]s, %[3]s, %[2]s)", []diffStep{
		sig("e1"), sig("e2"), sig("e1"), sig("e1"), sig("e3"), sig("e2"), sig("e1"), sig("e2"),
	}},
	{"A", "A(%[1]s, %[2]s, %[3]s)", []diffStep{
		sig("e1"), sig("e2"), sig("e1"), sig("e2"), sig("e3"), sig("e2"), sig("e1"), sig("e2"), sig("e3"),
	}},
	{"Astar", "A*(%[1]s, %[2]s, %[3]s)", []diffStep{
		sig("e1"), sig("e2"), sig("e1"), sig("e2"), sig("e3"), sig("e2"), sig("e3"), sig("e1"), sig("e3"),
	}},
	{"P", "P(%[1]s, [2 sec], %[2]s)", []diffStep{
		sig("e1"), adv(5 * time.Second), sig("e1"), adv(3 * time.Second), sig("e2"),
		sig("e1"), adv(2 * time.Second), sig("e2"),
	}},
	{"Pstar", "P*(%[1]s, [2 sec], %[2]s)", []diffStep{
		sig("e1"), adv(5 * time.Second), sig("e2"), sig("e1"), adv(7 * time.Second), sig("e2"),
	}},
	{"PLUS", "%[1]s PLUS [2 sec]", []diffStep{
		sig("e1"), adv(3 * time.Second), sig("e1"), sig("e1"), adv(5 * time.Second),
	}},
}

// diffRecorder collects canonical occurrence strings per rule-set copy.
type diffRecorder struct {
	mu    sync.Mutex
	byKey map[string][]string
}

func (r *diffRecorder) record(key string, o *Occ) {
	s := canonOcc(o)
	r.mu.Lock()
	r.byKey[key] = append(r.byKey[key], s)
	r.mu.Unlock()
}

// canonOcc renders every observable field of an occurrence.
func canonOcc(o *Occ) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s@%d[", o.Event, o.Context, o.At.UnixNano())
	for i, c := range o.Constituents {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%s:%d@%d", c.Event, c.Op, c.VNo, c.At.UnixNano())
	}
	b.WriteByte(']')
	return b.String()
}

const diffCopies = 4

// buildDiffLED defines diffCopies independent copies of the operator's
// rule set on l and attaches a recording rule per copy.
func buildDiffLED(t *testing.T, l *LED, c diffCase, ctx Context, coupling Coupling, rec *diffRecorder) {
	t.Helper()
	for k := 0; k < diffCopies; k++ {
		pfx := fmt.Sprintf("c%d_", k)
		for _, p := range []string{"e1", "e2", "e3"} {
			if err := l.DefinePrimitive(pfx + p); err != nil {
				t.Fatal(err)
			}
		}
		expr := fmt.Sprintf(c.expr, pfx+"e1", pfx+"e2", pfx+"e3")
		defComposite(t, &harness{led: l}, pfx+"comp", expr)
		key := pfx
		if err := l.AddRule(&Rule{
			Name:     pfx + "r",
			Event:    pfx + "comp",
			Context:  ctx,
			Coupling: coupling,
			Action:   func(o *Occ) { rec.record(key, o) },
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// runDiffScript drives both detectors through the script in lockstep on
// their shared clock.
func runDiffScript(c diffCase, clock *ManualClock, leds ...*LED) {
	vno := 0
	for _, st := range c.script {
		switch st.kind {
		case "sig":
			vno++
			clock.Advance(time.Second) // distinct, strictly increasing times
			at := clock.Now()
			for k := 0; k < diffCopies; k++ {
				p := Primitive{
					Event: fmt.Sprintf("c%d_%s", k, st.event),
					Table: st.event + "_tbl", Op: "insert", VNo: vno, At: at,
				}
				for _, l := range leds {
					l.Signal(p)
				}
			}
		case "adv":
			clock.Advance(st.d)
		case "flush":
			for _, l := range leds {
				l.FlushDeferred()
			}
		}
	}
}

func TestDifferentialShardedEquivalence(t *testing.T) {
	contexts := []Context{Recent, Chronicle, Continuous, Cumulative}
	couplings := []Coupling{Immediate, Deferred, Detached}
	for _, c := range diffCases {
		for _, ctx := range contexts {
			for _, coupling := range couplings {
				t.Run(fmt.Sprintf("%s/%s/%s", c.name, ctx, coupling), func(t *testing.T) {
					clock := NewManualClock(t0)
					oracle := NewWithOptions(clock, Options{MaxShards: 1})
					sharded := New(clock)
					oracleRec := &diffRecorder{byKey: make(map[string][]string)}
					shardedRec := &diffRecorder{byKey: make(map[string][]string)}
					buildDiffLED(t, oracle, c, ctx, coupling, oracleRec)
					buildDiffLED(t, sharded, c, ctx, coupling, shardedRec)

					// The whole point: the oracle holds one lock, while in
					// the sharded detector each copy's composite lives in
					// its own shard. (Primitives an operator never
					// references stay in singleton shards of their own, so
					// total ShardCount may exceed diffCopies.)
					if got := oracle.ShardCount(); got != 1 {
						t.Fatalf("oracle shards = %d, want 1", got)
					}
					compShards := make(map[int]bool)
					for k := 0; k < diffCopies; k++ {
						compShards[sharded.ShardID(fmt.Sprintf("c%d_comp", k))] = true
					}
					if len(compShards) != diffCopies {
						t.Fatalf("composites share shards: %d distinct, want %d", len(compShards), diffCopies)
					}

					runDiffScript(c, clock, oracle, sharded)
					if coupling == Deferred {
						oracle.FlushDeferred()
						sharded.FlushDeferred()
					}
					oracle.Wait()
					sharded.Wait()

					for k := 0; k < diffCopies; k++ {
						key := fmt.Sprintf("c%d_", k)
						want := append([]string(nil), oracleRec.byKey[key]...)
						got := append([]string(nil), shardedRec.byKey[key]...)
						if coupling == Detached {
							// Detached execution order is unspecified;
							// compare as multisets.
							sort.Strings(want)
							sort.Strings(got)
						}
						if len(want) == 0 && len(got) == 0 {
							continue
						}
						if strings.Join(want, "\n") != strings.Join(got, "\n") {
							t.Errorf("copy %s: occurrence streams diverge\noracle:\n  %s\nsharded:\n  %s",
								key, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
						}
					}
				})
			}
		}
	}
}

// TestDifferentialProducesOccurrences guards the suite against vacuous
// success: every operator must emit at least one occurrence in at least
// one context, or the script is not exercising it.
func TestDifferentialProducesOccurrences(t *testing.T) {
	for _, c := range diffCases {
		total := 0
		for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
			clock := NewManualClock(t0)
			l := New(clock)
			rec := &diffRecorder{byKey: make(map[string][]string)}
			buildDiffLED(t, l, c, ctx, Immediate, rec)
			runDiffScript(c, clock, l)
			for _, occs := range rec.byKey {
				total += len(occs)
			}
		}
		if total == 0 {
			t.Errorf("operator %s: script produced no occurrences in any context", c.name)
		}
	}
}
