package led

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

// TestStressConcurrentShards hammers a sharded LED from many goroutines
// while admin churn forces shard merges and splits, then audits a delivery
// ledger for lost or duplicated firings. Each of K independent rule sets
// is `e1 ^ e2` under CHRONICLE context, so signalling each primitive
// exactly once per round must fire each rule exactly once per round —
// any lock-ordering or rebalance bug shows up as a missing or double
// entry (and -race catches unsynchronized access outright).
func TestStressConcurrentShards(t *testing.T) {
	const (
		sets   = 8
		rounds = 60
	)
	clock := NewManualClock(t0)
	l := New(clock)

	type ledgerKey struct {
		set, vno int
	}
	var (
		ledgerMu sync.Mutex
		ledger   = make(map[ledgerKey]int)
	)

	for k := 0; k < sets; k++ {
		a := fmt.Sprintf("s%d_a", k)
		b := fmt.Sprintf("s%d_b", k)
		for _, p := range []string{a, b} {
			if err := l.DefinePrimitive(p); err != nil {
				t.Fatal(err)
			}
		}
		expr := fmt.Sprintf("%s ^ %s", a, b)
		defComposite(t, &harness{led: l}, fmt.Sprintf("s%d_comp", k), expr)
		set := k
		if err := l.AddRule(&Rule{
			Name:    fmt.Sprintf("s%d_r", k),
			Event:   fmt.Sprintf("s%d_comp", k),
			Context: Chronicle,
			Action: func(o *Occ) {
				// Under CHRONICLE the pair is consumed oldest-first, so
				// both constituents carry the same per-round VNo.
				vno := o.Constituents[0].VNo
				ledgerMu.Lock()
				ledger[ledgerKey{set, vno}]++
				ledgerMu.Unlock()
			},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Churn goroutine: repeatedly defines a "bridge" composite spanning two
	// rule sets (merging their shards) and drops it again (splitting them),
	// while signal goroutines are running. The bridge has its own primitive
	// terminator so it never fires and never consumes s*_a occurrences:
	// AND initiated by s0_a ^ s6_a cannot complete without both, and we
	// drop it between rounds — but to be fully inert we bridge over
	// dedicated primitives instead.
	if err := l.DefinePrimitive("bridge_x"); err != nil {
		t.Fatal(err)
	}
	if err := l.DefinePrimitive("bridge_y"); err != nil {
		t.Fatal(err)
	}

	var (
		wg    sync.WaitGroup
		stop  = make(chan struct{})
		churn int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Merge two random sets' shards through an inert composite.
			i, j := rng.Intn(sets), rng.Intn(sets)
			if i == j {
				continue
			}
			expr := fmt.Sprintf("(s%d_a ; bridge_x) ; (s%d_a ; bridge_y)", i, j)
			e, err := snoop.Parse(expr)
			if err != nil {
				panic(err)
			}
			if err := l.DefineComposite("bridge_comp", e); err != nil {
				panic(err)
			}
			churn++
			if err := l.DropEvent("bridge_comp"); err != nil {
				panic(err)
			}
		}
	}()

	// One signal goroutine per rule set; round r signals a then b with
	// VNo r. The LED serializes Signal against admin churn via l.mu, and
	// independent sets only contend when the churn goroutine has merged
	// their shards.
	for k := 0; k < sets; k++ {
		wg.Add(1)
		go func(set int) {
			defer wg.Done()
			a := fmt.Sprintf("s%d_a", set)
			b := fmt.Sprintf("s%d_b", set)
			at := t0
			for r := 1; r <= rounds; r++ {
				at = at.Add(time.Millisecond)
				l.Signal(Primitive{Event: a, Table: "t", Op: "insert", VNo: r, At: at})
				at = at.Add(time.Millisecond)
				l.Signal(Primitive{Event: b, Table: "t", Op: "insert", VNo: r, At: at})
			}
		}(k)
	}

	// Let signallers finish, then stop churn.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		// Signallers exit on their own; churn needs the stop signal once
		// they are done. Poll the ledger until full or time out.
		deadline := time.After(30 * time.Second)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-deadline:
				close(stop)
				return
			case <-tick.C:
				ledgerMu.Lock()
				n := len(ledger)
				ledgerMu.Unlock()
				if n >= sets*rounds {
					close(stop)
					return
				}
			}
		}
	}()
	<-done
	l.Wait()

	if churn == 0 {
		t.Error("churn goroutine never merged/split a shard; stress is vacuous")
	}
	ledgerMu.Lock()
	defer ledgerMu.Unlock()
	for k := 0; k < sets; k++ {
		for r := 1; r <= rounds; r++ {
			got := ledger[ledgerKey{k, r}]
			if got != 1 {
				t.Errorf("set %d round %d: fired %d times, want exactly 1", k, r, got)
			}
		}
	}
	if extra := len(ledger) - sets*rounds; extra > 0 {
		t.Errorf("%d unexpected ledger entries (phantom firings)", extra)
	}
}

// TestDetachedBurstBounded is the regression test for the unbounded
// goroutine spawn: a burst of detached firings must be drained by at most
// DetachedWorkers goroutines, every action must run exactly once, and
// Wait (the shutdown drain) must complete.
func TestDetachedBurstBounded(t *testing.T) {
	const (
		workers = 4
		burst   = 500
	)
	clock := NewManualClock(t0)
	l := NewWithOptions(clock, Options{DetachedWorkers: workers})
	if err := l.DefinePrimitive("ev"); err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		seen  = make(map[int]int)
		calls int
	)
	if err := l.AddRule(&Rule{
		Name:     "r",
		Event:    "ev",
		Context:  Recent,
		Coupling: Detached,
		Action: func(o *Occ) {
			mu.Lock()
			seen[o.Constituents[0].VNo]++
			calls++
			mu.Unlock()
		},
	}); err != nil {
		t.Fatal(err)
	}

	at := t0
	for i := 1; i <= burst; i++ {
		at = at.Add(time.Millisecond)
		l.Signal(Primitive{Event: "ev", Table: "t", Op: "insert", VNo: i, At: at})
	}
	// Shutdown drain under a burst: must terminate with everything run.
	l.Wait()

	mu.Lock()
	defer mu.Unlock()
	if calls != burst {
		t.Fatalf("detached actions ran %d times, want %d", calls, burst)
	}
	for i := 1; i <= burst; i++ {
		if seen[i] != 1 {
			t.Errorf("vno %d ran %d times, want 1", i, seen[i])
		}
	}
	// Worker retirement is asynchronous (a worker marks its last firing
	// done before it re-checks the queue and exits), so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		q, w, peak := l.DetachedStats()
		if q == 0 && w == 0 && peak <= workers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool after drain: queued=%d workers=%d peak=%d, want 0/0/<=%d",
				q, w, peak, workers)
		}
		time.Sleep(time.Millisecond)
	}
}
