// Package led implements the Local Event Detector: the Sentinel-style
// event-graph detector for Snoop composite events that the ECA agent embeds
// (Section 3 of the paper). Primitive event occurrences are signalled into
// the graph; operator nodes detect composite occurrences under the four
// parameter contexts (RECENT, CHRONICLE, CONTINUOUS, CUMULATIVE); rules
// attached to events run with IMMEDIATE, DEFERRED or DETACHED coupling and
// priority ordering.
//
// Detection is sharded by connected component of the event graph: rules and
// composites that share no event are provably independent, so each
// component lives in its own shard with its own lock and independent rule
// sets detect in parallel. Signal routes through a read-locked event→shard
// index; DefineComposite merges the components it connects and DropEvent
// splits any component a drop disconnects (see DESIGN.md, "Sharded
// detection").
package led

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

// Context is a Snoop parameter context [CHA94].
type Context int

// The four parameter contexts.
const (
	Recent Context = iota
	Chronicle
	Continuous
	Cumulative
)

// String returns the paper's spelling of the context.
func (c Context) String() string {
	switch c {
	case Recent:
		return "RECENT"
	case Chronicle:
		return "CHRONICLE"
	case Continuous:
		return "CONTINUOUS"
	case Cumulative:
		return "CUMULATIVE"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// ParseContext parses a context keyword (case-insensitive).
func ParseContext(s string) (Context, error) {
	switch {
	case equalFold(s, "RECENT"):
		return Recent, nil
	case equalFold(s, "CHRONICLE"):
		return Chronicle, nil
	case equalFold(s, "CONTINUOUS"):
		return Continuous, nil
	case equalFold(s, "CUMULATIVE"):
		return Cumulative, nil
	default:
		return 0, fmt.Errorf("led: unknown parameter context %q", s)
	}
}

// Coupling is a rule coupling mode. The paper's prototype implements only
// IMMEDIATE and lists the others as future work; this reproduction
// implements all three.
type Coupling int

// The three coupling modes.
const (
	Immediate Coupling = iota
	Deferred
	Detached
)

// String returns the paper's spelling of the coupling mode.
func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "IMMEDIATE"
	case Deferred:
		return "DEFERRED"
	case Detached:
		return "DETACHED"
	default:
		return fmt.Sprintf("Coupling(%d)", int(c))
	}
}

// ParseCoupling parses a coupling keyword. The paper's grammar spells
// deferred "DEFERED"; both spellings are accepted.
func ParseCoupling(s string) (Coupling, error) {
	switch {
	case equalFold(s, "IMMEDIATE"):
		return Immediate, nil
	case equalFold(s, "DEFERRED"), equalFold(s, "DEFERED"):
		return Deferred, nil
	case equalFold(s, "DETACHED"):
		return Detached, nil
	default:
		return 0, fmt.Errorf("led: unknown coupling mode %q", s)
	}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Primitive is one primitive event occurrence: the decoded content of a
// notification from the SQL server (Figure 13/15 of the paper).
type Primitive struct {
	Event string    // fully expanded event name
	Table string    // table the trigger fired on
	Op    string    // insert | update | delete | tick | time
	VNo   int       // occurrence number recorded in the shadow table
	At    time.Time // occurrence timestamp
}

// Occ is a detected event occurrence. For a primitive event the
// constituent list has one entry; for a composite it holds every
// constituent primitive in occurrence-time order, which is exactly the
// parameter data the agent materializes into sysContext.
type Occ struct {
	Event        string
	Context      Context
	At           time.Time
	Constituents []Primitive
}

// clone returns a deep copy (constituent slice is copied).
func (o *Occ) clone() *Occ {
	c := *o
	c.Constituents = append([]Primitive(nil), o.Constituents...)
	return &c
}

// mergeOccs combines constituent occurrences into a new composite
// occurrence. The occurrence time is the latest constituent time
// (terminator semantics). The constituent slice is sized exactly and
// insertion-sorted in place (stable, like the sort.SliceStable it
// replaces) — composite constituent lists are short, and the closure-free
// sort keeps the detect path's allocation count flat.
func mergeOccs(event string, ctx Context, parts ...*Occ) *Occ {
	out := &Occ{Event: event, Context: ctx}
	total := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		total += len(p.Constituents)
		if p.At.After(out.At) {
			out.At = p.At
		}
	}
	cs := make([]Primitive, 0, total)
	for _, p := range parts {
		if p != nil {
			cs = append(cs, p.Constituents...)
		}
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].At.Before(cs[j-1].At); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	out.Constituents = cs
	return out
}

// Clock abstracts time for the periodic operators; tests use ManualClock.
type Clock interface {
	Now() time.Time
	// AfterFunc schedules f after d and returns a cancel function.
	AfterFunc(d time.Duration, f func()) (cancel func())
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) AfterFunc(d time.Duration, f func()) func() {
	t := time.AfterFunc(d, f)
	return func() { t.Stop() }
}

// SystemClock returns the wall-clock Clock the LED defaults to. Exported
// so other layers (the agent) can share one seam instead of each reaching
// for time.Now — which the nowallclock analyzer forbids in deterministic
// packages.
func SystemClock() Clock { return realClock{} }

// firing is one pending rule execution. seq is its outstanding-set key
// when firing tracking is on (see noteFired); zero otherwise.
type firing struct {
	rule *Rule
	occ  *Occ
	seq  uint64
}

// Options tunes a LED.
type Options struct {
	// MaxShards caps the number of event-graph shards. 0 means one shard
	// per connected component (the default); 1 reproduces the historical
	// single-lock detector — every event in one shard behind one mutex —
	// which the differential equivalence suite uses as its oracle.
	MaxShards int
	// DetachedWorkers caps the goroutines running DETACHED rule actions
	// (0 selects 4×GOMAXPROCS). Detached firings beyond the cap queue and
	// run as workers free up instead of each spawning a goroutine.
	DetachedWorkers int
}

// LED is the local event detector. All exported methods are safe for
// concurrent use.
//
// Lock order: mu (topology: shard set, event→shard and rule→shard indexes,
// every node's shard pointer) before any shard.mu, before defMu. Signal and
// timer dispatch hold mu for read only, so independent shards detect
// concurrently; definition and drop operations hold mu for write, which
// excludes all detection and makes rebalancing safe without touching shard
// locks.
type LED struct {
	mu    sync.RWMutex
	clock Clock

	shards     map[int]*shard
	eventShard map[string]*shard // event name → owning shard
	ruleShard  map[string]*shard // rule name → owning shard
	nextShard  int
	maxShards  int

	// defMu guards the global deferred queue. Deferred firings from every
	// shard funnel here so FlushDeferred preserves the pre-shard priority
	// ordering across independent rule sets.
	defMu    sync.Mutex
	deferred []firing

	// pool bounds DETACHED rule concurrency (it also owns the WaitGroup
	// behind Wait).
	pool detachedPool

	// timMu guards the logical timer registry (timers.go). Leaf lock:
	// nothing is acquired while holding it.
	timMu   sync.Mutex
	timers  map[uint64]*logTimer
	timNext uint64

	// firings recycles the per-propagation pending slices (pool.go), so a
	// warmed Signal carries no per-call bookkeeping allocation.
	firings firingPool

	// outMu guards the outstanding-firing set (snapshot.go): firings
	// detected but not yet durably handed off to their rule actions.
	// Acquired after mu/defMu, never before them.
	outMu       sync.Mutex
	outstanding map[uint64]firing
	outSeq      uint64
	track       atomic.Bool

	// met holds the optional instruments (see EnableMetrics); loaded
	// atomically so Signal never takes an extra lock for them.
	met metAtomic
}

// New returns a LED with default options. A nil clock selects the
// real-time clock.
func New(clock Clock) *LED { return NewWithOptions(clock, Options{}) }

// NewWithOptions returns a LED with explicit sharding and pool options.
func NewWithOptions(clock Clock, opt Options) *LED {
	if clock == nil {
		clock = realClock{}
	}
	workers := opt.DetachedWorkers
	if workers <= 0 {
		workers = 4 * runtime.GOMAXPROCS(0)
	}
	l := &LED{
		clock:      clock,
		shards:     make(map[int]*shard),
		eventShard: make(map[string]*shard),
		ruleShard:  make(map[string]*shard),
		maxShards:  opt.MaxShards,
	}
	l.pool.maxWorkers = workers
	l.pool.run = func(f firing) {
		l.runRule(f)
		l.clearFired(f.seq)
	}
	return l
}

// DefinePrimitive registers a primitive event name. A fresh primitive is
// its own connected component, so it opens a new shard (unless MaxShards
// forces placement into an existing one).
func (l *LED) DefinePrimitive(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.eventShard[name]; ok {
		return fmt.Errorf("led: event %q already defined", name)
	}
	sh := l.placeShard()
	sh.nodes[name] = &node{led: l, sh: sh, name: name, kind: kPrimitive}
	l.eventShard[name] = sh
	return nil
}

// DefineComposite registers a named composite event over a Snoop
// expression. Every event referenced by the expression must already be
// defined (primitive or composite), enabling the event reuse the paper
// lists as contribution 2. The components of the referenced events are
// merged into one shard — they are no longer independent — and the
// composite's graph is built there.
func (l *LED) DefineComposite(name string, expr snoop.Expr) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.eventShard[name]; ok {
		return fmt.Errorf("led: event %q already defined", name)
	}
	refs := snoop.EventNames(expr)
	// Validate before merging so a failed define never changes topology.
	for _, ref := range refs {
		if _, ok := l.eventShard[ref]; !ok {
			return fmt.Errorf("led: event %q is not defined", ref)
		}
	}
	if err := validateExpr(expr); err != nil {
		return err
	}
	sh := l.mergeFor(refs)
	n, err := sh.build(expr)
	if err != nil {
		return err
	}
	n.name = name
	sh.nodes[name] = n
	l.eventShard[name] = sh
	for _, ref := range refs {
		sh.refs[ref]++
	}
	return nil
}

// validateExpr rejects expressions build would refuse, without building.
func validateExpr(expr snoop.Expr) error {
	var err error
	snoop.Walk(expr, func(e snoop.Expr) {
		if err != nil {
			return
		}
		switch x := e.(type) {
		case *snoop.Periodic:
			if x.Period <= 0 {
				err = fmt.Errorf("led: periodic event needs a positive period")
			}
		case *snoop.Plus:
			if x.Delta < 0 {
				err = fmt.Errorf("led: PLUS needs a non-negative delay")
			}
		case *snoop.Window:
			err = validateWindow(x.Size, x.Slide)
		case *snoop.Agg:
			err = validateAgg(x)
		case *snoop.Interval:
			_, err = intervalKind(x.Rel)
		}
	})
	return err
}

// HasEvent reports whether an event name is defined.
func (l *LED) HasEvent(name string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.eventShard[name]
	return ok
}

// EventNames lists defined events in sorted order.
func (l *LED) EventNames() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.eventShard))
	for n := range l.eventShard {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropEvent removes a named event. It fails while other composites
// reference it or rules are attached to it. Dropping a composite can
// disconnect the component it held together; the shard is then split so
// the now-independent rule sets stop sharing a lock.
func (l *LED) DropEvent(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	sh, ok := l.eventShard[name]
	if !ok {
		return fmt.Errorf("led: event %q not defined", name)
	}
	if sh.refs[name] > 0 {
		return fmt.Errorf("led: event %q is referenced by other events", name)
	}
	for _, r := range sh.rules {
		if r.Event == name {
			return fmt.Errorf("led: event %q has rule %q attached", name, r.Name)
		}
	}
	n := sh.nodes[name]
	n.shutdown()
	// Unsubscribe the dropped graph from its surviving constituents:
	// without this, a later split would leave cross-shard subscriptions
	// into the dropped composite's orphaned operator state.
	dropped := make(map[*node]bool)
	forEachOwnedNode(n, func(m *node) { dropped[m] = true })
	for _, root := range sh.nodes {
		forEachOwnedNode(root, func(m *node) { m.pruneSubs(dropped) })
	}
	delete(sh.nodes, name)
	delete(l.eventShard, name)
	if n.expr != nil {
		for _, ref := range snoop.EventNames(n.expr) {
			if sh.refs[ref]--; sh.refs[ref] <= 0 {
				delete(sh.refs, ref)
			}
		}
	}
	l.resplit(sh)
	return nil
}

// Rule is an ECA rule: when Event is detected in Context, and Condition
// holds, run Action under the given Coupling. Higher Priority rules run
// first among rules fired by the same signal.
type Rule struct {
	Name      string
	Event     string
	Context   Context
	Coupling  Coupling
	Priority  int
	Condition func(*Occ) bool // nil means always
	Action    func(*Occ)

	disabled bool
}

// AddRule attaches a rule, activating detection of its event in its
// context. Multiple rules on the same event are supported (lifting the
// native one-trigger-per-operation restriction of §2.2). The rule lives in
// its event's shard; it references no other event, so no components merge.
func (l *LED) AddRule(r *Rule) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Name == "" || r.Action == nil {
		return fmt.Errorf("led: rule needs a name and an action")
	}
	if _, ok := l.ruleShard[r.Name]; ok {
		return fmt.Errorf("led: rule %q already defined", r.Name)
	}
	sh, ok := l.eventShard[r.Event]
	if !ok {
		return fmt.Errorf("led: rule %q references undefined event %q", r.Name, r.Event)
	}
	n := sh.nodes[r.Event]
	sh.rules[r.Name] = r
	l.ruleShard[r.Name] = sh
	n.activate(r.Context)
	n.subscribeRule(r, func(occ *Occ) {
		if r.disabled {
			return
		}
		// n.sh, not a captured shard: rebalancing moves the node (and the
		// propagation that reaches this closure) to its current shard.
		n.sh.pending = append(n.sh.pending, firing{rule: r, occ: occ})
	})
	return nil
}

// DropRule detaches a rule. Components are keyed by composite references,
// not rules, so no split can result.
func (l *LED) DropRule(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	sh, ok := l.ruleShard[name]
	if !ok {
		return fmt.Errorf("led: rule %q not defined", name)
	}
	r := sh.rules[name]
	r.disabled = true
	delete(sh.rules, name)
	delete(l.ruleShard, name)
	if n, ok := sh.nodes[r.Event]; ok {
		n.unsubscribeRule(r)
	}
	return nil
}

// RuleNames lists attached rules in sorted order.
func (l *LED) RuleNames() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.ruleShard))
	for n := range l.ruleShard {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Signal injects a primitive event occurrence (called by the agent's Event
// Notifier when a server notification arrives). Unknown events are
// ignored, matching the notifier's tolerance of stray datagrams. The
// event→shard index is consulted under a read lock, so signals into
// independent components propagate concurrently; only signals into the
// same component serialize on that shard's lock.
func (l *LED) Signal(p Primitive) {
	if p.At.IsZero() {
		p.At = l.clock.Now()
	}
	if m := l.met.Load(); m != nil {
		// Measure through the clock seam so the histogram is exact (and
		// typically zero) under ManualClock replay.
		start := l.clock.Now()
		defer func() { m.detectSec.Observe(l.clock.Now().Sub(start).Seconds()) }()
	}
	l.mu.RLock()
	sh, ok := l.eventShard[p.Event]
	if !ok {
		l.mu.RUnlock()
		return
	}
	scr := l.firings.get()
	fired := sh.collect(scr, func() {
		n := sh.nodes[p.Event]
		if n == nil || n.kind != kPrimitive {
			return
		}
		n.emitPrimitive(p)
	})
	// Note outstanding firings before releasing the topology lock, so a
	// checkpoint (which takes it for write) sees node state and pending
	// firings as one consistent cut.
	l.noteFired(fired, false)
	l.mu.RUnlock()
	l.runFirings(fired)
	l.firings.put(scr)
}

// ShardID reports the shard currently owning an event (-1 when the event
// is not defined). Callers batching signals — the agent's notifier — use
// it to group co-shard events; the id is stable between definition
// changes.
func (l *LED) ShardID(event string) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if sh, ok := l.eventShard[event]; ok {
		return sh.id
	}
	return -1
}

// ShardCount reports the number of shards (connected components, modulo
// the MaxShards cap).
func (l *LED) ShardCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.shards)
}

// ShardSizes reports the per-shard occupancy (number of named events),
// largest first — the skew a rebalance aims to keep small.
func (l *LED) ShardSizes() []int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]int, 0, len(l.shards))
	for _, sh := range l.shards {
		out = append(out, len(sh.nodes))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// dispatchNode runs fn in the shard currently owning n (timer callbacks:
// periodic ticks, PLUS delays, absolute-time events), then executes the
// rule firings it produced.
func (l *LED) dispatchNode(n *node, fn func()) {
	l.mu.RLock()
	scr := l.firings.get()
	fired := n.sh.collect(scr, fn)
	l.noteFired(fired, false)
	l.mu.RUnlock()
	l.runFirings(fired)
	l.firings.put(scr)
}

// runFirings executes rule firings detection produced: immediate
// synchronously (already in priority order), detached via the bounded
// worker pool. Deferred firings were queued by collect.
func (l *LED) runFirings(fired []firing) {
	for _, f := range fired {
		switch f.rule.Coupling {
		case Immediate:
			l.runRule(f)
			l.clearFired(f.seq)
		case Detached:
			l.pool.submit(f)
		}
	}
}

func (l *LED) runRule(f firing) {
	if f.rule.Condition != nil && !f.rule.Condition(f.occ) {
		return
	}
	f.rule.Action(f.occ)
}

// FlushDeferred runs all queued deferred rule firings (the agent calls
// this at transaction boundaries).
func (l *LED) FlushDeferred() {
	l.defMu.Lock()
	queued := l.deferred
	l.deferred = nil
	// Hand the popped batch to the outstanding set inside the same
	// critical section as the swap: a checkpoint cut between the swap and
	// the runs would otherwise see the firings in neither the deferred
	// queue nor the outstanding set.
	l.noteFired(queued, true)
	l.defMu.Unlock()
	// Filter disabled rules under the topology read lock: DropRule flips
	// disabled while holding it for write, so reading it outside would
	// race.
	l.mu.RLock()
	kept := queued[:0]
	for _, f := range queued {
		if !f.rule.disabled {
			kept = append(kept, f)
		} else {
			l.clearFired(f.seq)
		}
	}
	l.mu.RUnlock()
	sortFirings(kept)
	for _, f := range kept {
		l.runRule(f)
		l.clearFired(f.seq)
	}
}

// DeferredCount reports the number of queued deferred firings.
func (l *LED) DeferredCount() int {
	l.defMu.Lock()
	defer l.defMu.Unlock()
	return len(l.deferred)
}

// Wait blocks until all detached rule executions submitted so far finish
// (used by tests and orderly shutdown). With the bounded pool this drains
// the detached queue, not just in-flight goroutines.
func (l *LED) Wait() { l.pool.wait() }

// DetachedStats reports the detached pool's current queue depth, running
// workers, and the peak worker count observed (which the burst regression
// test asserts stays at the cap).
func (l *LED) DetachedStats() (queued, workers, peak int) {
	return l.pool.stats()
}

// Now exposes the detector's clock.
func (l *LED) Now() time.Time { return l.clock.Now() }
