// Package led implements the Local Event Detector: the Sentinel-style
// event-graph detector for Snoop composite events that the ECA agent embeds
// (Section 3 of the paper). Primitive event occurrences are signalled into
// the graph; operator nodes detect composite occurrences under the four
// parameter contexts (RECENT, CHRONICLE, CONTINUOUS, CUMULATIVE); rules
// attached to events run with IMMEDIATE, DEFERRED or DETACHED coupling and
// priority ordering.
package led

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

// Context is a Snoop parameter context [CHA94].
type Context int

// The four parameter contexts.
const (
	Recent Context = iota
	Chronicle
	Continuous
	Cumulative
)

// String returns the paper's spelling of the context.
func (c Context) String() string {
	switch c {
	case Recent:
		return "RECENT"
	case Chronicle:
		return "CHRONICLE"
	case Continuous:
		return "CONTINUOUS"
	case Cumulative:
		return "CUMULATIVE"
	default:
		return fmt.Sprintf("Context(%d)", int(c))
	}
}

// ParseContext parses a context keyword (case-insensitive).
func ParseContext(s string) (Context, error) {
	switch {
	case equalFold(s, "RECENT"):
		return Recent, nil
	case equalFold(s, "CHRONICLE"):
		return Chronicle, nil
	case equalFold(s, "CONTINUOUS"):
		return Continuous, nil
	case equalFold(s, "CUMULATIVE"):
		return Cumulative, nil
	default:
		return 0, fmt.Errorf("led: unknown parameter context %q", s)
	}
}

// Coupling is a rule coupling mode. The paper's prototype implements only
// IMMEDIATE and lists the others as future work; this reproduction
// implements all three.
type Coupling int

// The three coupling modes.
const (
	Immediate Coupling = iota
	Deferred
	Detached
)

// String returns the paper's spelling of the coupling mode.
func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "IMMEDIATE"
	case Deferred:
		return "DEFERRED"
	case Detached:
		return "DETACHED"
	default:
		return fmt.Sprintf("Coupling(%d)", int(c))
	}
}

// ParseCoupling parses a coupling keyword. The paper's grammar spells
// deferred "DEFERED"; both spellings are accepted.
func ParseCoupling(s string) (Coupling, error) {
	switch {
	case equalFold(s, "IMMEDIATE"):
		return Immediate, nil
	case equalFold(s, "DEFERRED"), equalFold(s, "DEFERED"):
		return Deferred, nil
	case equalFold(s, "DETACHED"):
		return Detached, nil
	default:
		return 0, fmt.Errorf("led: unknown coupling mode %q", s)
	}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Primitive is one primitive event occurrence: the decoded content of a
// notification from the SQL server (Figure 13/15 of the paper).
type Primitive struct {
	Event string    // fully expanded event name
	Table string    // table the trigger fired on
	Op    string    // insert | update | delete | tick | time
	VNo   int       // occurrence number recorded in the shadow table
	At    time.Time // occurrence timestamp
}

// Occ is a detected event occurrence. For a primitive event the
// constituent list has one entry; for a composite it holds every
// constituent primitive in occurrence-time order, which is exactly the
// parameter data the agent materializes into sysContext.
type Occ struct {
	Event        string
	Context      Context
	At           time.Time
	Constituents []Primitive
}

// clone returns a deep copy (constituent slice is copied).
func (o *Occ) clone() *Occ {
	c := *o
	c.Constituents = append([]Primitive(nil), o.Constituents...)
	return &c
}

// mergeOccs combines constituent occurrences into a new composite
// occurrence. The occurrence time is the latest constituent time
// (terminator semantics).
func mergeOccs(event string, ctx Context, parts ...*Occ) *Occ {
	out := &Occ{Event: event, Context: ctx}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Constituents = append(out.Constituents, p.Constituents...)
		if p.At.After(out.At) {
			out.At = p.At
		}
	}
	sort.SliceStable(out.Constituents, func(i, j int) bool {
		return out.Constituents[i].At.Before(out.Constituents[j].At)
	})
	return out
}

// Clock abstracts time for the periodic operators; tests use ManualClock.
type Clock interface {
	Now() time.Time
	// AfterFunc schedules f after d and returns a cancel function.
	AfterFunc(d time.Duration, f func()) (cancel func())
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) AfterFunc(d time.Duration, f func()) func() {
	t := time.AfterFunc(d, f)
	return func() { t.Stop() }
}

// firing is one pending rule execution.
type firing struct {
	rule *Rule
	occ  *Occ
}

// LED is the local event detector. All exported methods are safe for
// concurrent use.
type LED struct {
	mu    sync.Mutex
	clock Clock
	nodes map[string]*node
	rules map[string]*Rule
	// refs counts how many composites reference each named event, so drops
	// can be refused while dependents exist.
	refs map[string]int

	deferred []firing
	// pending accumulates rule firings during one graph propagation; it is
	// only touched under mu.
	pending []firing
	// detachedWG tracks detached rule goroutines for clean shutdown.
	detachedWG sync.WaitGroup

	// met holds the optional instruments (see EnableMetrics); loaded
	// atomically so Signal never takes an extra lock for them.
	met metAtomic
}

// New returns a LED. A nil clock selects the real-time clock.
func New(clock Clock) *LED {
	if clock == nil {
		clock = realClock{}
	}
	return &LED{
		clock: clock,
		nodes: make(map[string]*node),
		rules: make(map[string]*Rule),
		refs:  make(map[string]int),
	}
}

// DefinePrimitive registers a primitive event name.
func (l *LED) DefinePrimitive(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.nodes[name]; ok {
		return fmt.Errorf("led: event %q already defined", name)
	}
	l.nodes[name] = &node{led: l, name: name, kind: kPrimitive}
	return nil
}

// DefineComposite registers a named composite event over a Snoop
// expression. Every event referenced by the expression must already be
// defined (primitive or composite), enabling the event reuse the paper
// lists as contribution 2.
func (l *LED) DefineComposite(name string, expr snoop.Expr) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.nodes[name]; ok {
		return fmt.Errorf("led: event %q already defined", name)
	}
	n, err := l.build(expr)
	if err != nil {
		return err
	}
	n.name = name
	l.nodes[name] = n
	for _, ref := range snoop.EventNames(expr) {
		l.refs[ref]++
	}
	return nil
}

// HasEvent reports whether an event name is defined.
func (l *LED) HasEvent(name string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.nodes[name]
	return ok
}

// EventNames lists defined events in sorted order.
func (l *LED) EventNames() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.nodes))
	for n := range l.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropEvent removes a named event. It fails while other composites
// reference it or rules are attached to it.
func (l *LED) DropEvent(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.nodes[name]
	if !ok {
		return fmt.Errorf("led: event %q not defined", name)
	}
	if l.refs[name] > 0 {
		return fmt.Errorf("led: event %q is referenced by other events", name)
	}
	for _, r := range l.rules {
		if r.Event == name {
			return fmt.Errorf("led: event %q has rule %q attached", name, r.Name)
		}
	}
	n.shutdown()
	delete(l.nodes, name)
	if n.expr != nil {
		for _, ref := range snoop.EventNames(n.expr) {
			l.refs[ref]--
		}
	}
	return nil
}

// Rule is an ECA rule: when Event is detected in Context, and Condition
// holds, run Action under the given Coupling. Higher Priority rules run
// first among rules fired by the same signal.
type Rule struct {
	Name      string
	Event     string
	Context   Context
	Coupling  Coupling
	Priority  int
	Condition func(*Occ) bool // nil means always
	Action    func(*Occ)

	disabled bool
}

// AddRule attaches a rule, activating detection of its event in its
// context. Multiple rules on the same event are supported (lifting the
// native one-trigger-per-operation restriction of §2.2).
func (l *LED) AddRule(r *Rule) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Name == "" || r.Action == nil {
		return fmt.Errorf("led: rule needs a name and an action")
	}
	if _, ok := l.rules[r.Name]; ok {
		return fmt.Errorf("led: rule %q already defined", r.Name)
	}
	n, ok := l.nodes[r.Event]
	if !ok {
		return fmt.Errorf("led: rule %q references undefined event %q", r.Name, r.Event)
	}
	l.rules[r.Name] = r
	n.activate(r.Context)
	n.subscribeRule(r, func(occ *Occ) {
		if r.disabled {
			return
		}
		l.pending = append(l.pending, firing{rule: r, occ: occ})
	})
	return nil
}

// DropRule detaches a rule.
func (l *LED) DropRule(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.rules[name]
	if !ok {
		return fmt.Errorf("led: rule %q not defined", name)
	}
	r.disabled = true
	delete(l.rules, name)
	if n, ok := l.nodes[r.Event]; ok {
		n.unsubscribeRule(r)
	}
	return nil
}

// RuleNames lists attached rules in sorted order.
func (l *LED) RuleNames() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.rules))
	for n := range l.rules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Signal injects a primitive event occurrence (called by the agent's Event
// Notifier when a server notification arrives). Unknown events are
// ignored, matching the notifier's tolerance of stray datagrams.
func (l *LED) Signal(p Primitive) {
	if p.At.IsZero() {
		p.At = l.clock.Now()
	}
	if m := l.met.Load(); m != nil {
		defer m.detectSec.ObserveSince(time.Now())
	}
	l.dispatch(func() {
		n, ok := l.nodes[p.Event]
		if !ok || n.kind != kPrimitive {
			return
		}
		occ := &Occ{Event: p.Event, At: p.At, Constituents: []Primitive{p}}
		n.emitPrimitive(occ)
	})
}

// dispatch runs fn under the lock, then executes any rule firings it
// produced: immediate synchronously (by priority), deferred queued,
// detached in their own goroutines.
func (l *LED) dispatch(fn func()) {
	l.mu.Lock()
	l.pending = nil
	fn()
	fired := l.pending
	l.pending = nil
	// Stable-sort by descending priority; equal priorities keep detection
	// order.
	sort.SliceStable(fired, func(i, j int) bool {
		return fired[i].rule.Priority > fired[j].rule.Priority
	})
	var deferredNow []firing
	for _, f := range fired {
		if f.rule.Coupling == Deferred {
			deferredNow = append(deferredNow, f)
		}
	}
	l.deferred = append(l.deferred, deferredNow...)
	l.mu.Unlock()

	for _, f := range fired {
		switch f.rule.Coupling {
		case Immediate:
			l.runRule(f)
		case Detached:
			l.detachedWG.Add(1)
			go func(f firing) {
				defer l.detachedWG.Done()
				l.runRule(f)
			}(f)
		}
	}
}

func (l *LED) runRule(f firing) {
	if f.rule.Condition != nil && !f.rule.Condition(f.occ) {
		return
	}
	f.rule.Action(f.occ)
}

// FlushDeferred runs all queued deferred rule firings (the agent calls
// this at transaction boundaries).
func (l *LED) FlushDeferred() {
	l.mu.Lock()
	// Filter disabled rules under the lock: DropRule flips disabled while
	// holding mu, so reading it outside would race.
	queued := l.deferred[:0]
	for _, f := range l.deferred {
		if !f.rule.disabled {
			queued = append(queued, f)
		}
	}
	l.deferred = nil
	l.mu.Unlock()
	sort.SliceStable(queued, func(i, j int) bool {
		return queued[i].rule.Priority > queued[j].rule.Priority
	})
	for _, f := range queued {
		l.runRule(f)
	}
}

// DeferredCount reports the number of queued deferred firings.
func (l *LED) DeferredCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.deferred)
}

// Wait blocks until all detached rule executions launched so far finish
// (used by tests and orderly shutdown).
func (l *LED) Wait() { l.detachedWG.Wait() }

// Now exposes the detector's clock.
func (l *LED) Now() time.Time { return l.clock.Now() }
