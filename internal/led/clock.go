package led

import (
	"sort"
	"sync"
	"time"
)

// ManualClock is a deterministic Clock for tests and reproducible
// benchmarks: time only moves when Advance is called, and due timers fire
// synchronously, in timestamp order, before Advance returns.
type ManualClock struct {
	mu     sync.Mutex
	now    time.Time      // guarded by mu
	timers []*manualTimer // guarded by mu
	nextID int            // guarded by mu
}

type manualTimer struct {
	id      int
	at      time.Time
	f       func()
	stopped bool
}

// NewManualClock returns a clock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the current virtual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules f at now+d. The returned cancel unlinks the timer
// from the schedule immediately: a cancelled timer must not wait for the
// next Advance to be reclaimed, or workloads that arm and cancel timers
// without ever advancing (NOT/periodic operators torn down between runs)
// grow the timer list without bound.
func (c *ManualClock) AfterFunc(d time.Duration, f func()) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{id: c.nextID, at: c.now.Add(d), f: f}
	c.nextID++
	c.timers = append(c.timers, t)
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if t.stopped {
			return
		}
		t.stopped = true
		for i, x := range c.timers {
			if x == t {
				c.timers = append(c.timers[:i], c.timers[i+1:]...)
				break
			}
		}
	}
}

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order. Timers scheduled by fired callbacks are
// honoured within the same Advance when they fall inside the window.
// Advance must not be called from inside a timer callback.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		next := c.dueTimerLocked(target)
		if next == nil {
			break
		}
		if next.at.After(c.now) {
			c.now = next.at
		}
		f := next.f
		c.mu.Unlock()
		f() // fire outside the clock lock: callbacks may schedule timers
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// dueTimerLocked pops the earliest timer at or before target. Cancelled
// timers never appear here — cancel unlinks them eagerly.
func (c *ManualClock) dueTimerLocked(target time.Time) *manualTimer {
	if len(c.timers) == 0 {
		return nil
	}
	sort.SliceStable(c.timers, func(i, j int) bool {
		if c.timers[i].at.Equal(c.timers[j].at) {
			return c.timers[i].id < c.timers[j].id
		}
		return c.timers[i].at.Before(c.timers[j].at)
	})
	if c.timers[0].at.After(target) {
		return nil
	}
	t := c.timers[0]
	// Shift down instead of re-slicing so the popped head does not pin the
	// backing array.
	c.timers = append(c.timers[:0], c.timers[1:]...)
	return t
}

// PendingTimers reports how many timers are armed.
func (c *ManualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}
