package led

import (
	"strings"
	"testing"
)

func TestDotExport(t *testing.T) {
	h := newHarness(t, "e1", "e2", "e3")
	defComposite(t, h, "pair", "e1 ^ e2")
	defComposite(t, h, "tri", "pair ; e3")
	if err := h.led.AddRule(&Rule{
		Name: "r1", Event: "tri", Context: Cumulative, Coupling: Deferred, Priority: 7,
		Action: func(*Occ) {},
	}); err != nil {
		t.Fatal(err)
	}
	dot := h.led.Dot()
	for _, want := range []string{
		"digraph eventgraph",
		`ne1 [shape=box`,
		`npair [shape=ellipse`,
		`= (e1 ^ e2)`,
		"ne1 -> npair;",
		"ne2 -> npair;",
		"npair -> ntri;",
		"ne3 -> ntri;",
		"nrule_r1 [shape=note",
		"DEFERRED, CUMULATIVE, prio 7",
		"ntri -> nrule_r1 [style=dashed];",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot() missing %q in:\n%s", want, dot)
		}
	}
}

func TestDotEmptyGraph(t *testing.T) {
	l := New(nil)
	dot := l.Dot()
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("empty graph: %q", dot)
	}
}

func TestDotIDSanitization(t *testing.T) {
	if got := dotID("sentineldb.sharma.addStk"); strings.ContainsAny(got, ".") {
		t.Errorf("unsanitized id: %q", got)
	}
	if dotQ(`a"b`) != `"a\"b"` {
		t.Errorf("quote escaping: %q", dotQ(`a"b`))
	}
}
