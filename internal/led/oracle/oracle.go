// Package oracle is an executable reference semantics for the Snoop+CEP
// event algebra: a deliberately naive interpreter that the differential
// suites compare the production LED against (ISSUE 8, DESIGN.md §12).
//
// Everything here favors obvious correctness over speed, and shares no
// code with the production detector's hot path:
//
//   - No shards, no locks, no goroutines — a single-threaded interpreter.
//   - No timers and no ring buffers: every window/aggregate node keeps the
//     FULL child occurrence history forever, and AdvanceTo recomputes each
//     boundary's content by scanning that history against the definition
//     [T-size, T). If the production detector's ring eviction or lazy
//     timer arming is off by one, the two diverge here.
//   - Boundary processing is a global timeline: the earliest unprocessed
//     boundary across every window node fires first, so window occurrences
//     feed parent operators in the same logical order the production
//     detector's timer queue produces.
//
// Supported operators: event references, OR, AND, SEQ, WINDOW, AGG, and
// the Allen relations DURING/OVERLAPS. The classic Snoop context-sensitive
// operators (NOT, A/A*, P/P*, PLUS, temporal) are out of scope — their
// equivalence proof is the existing sharded differential suite — and
// building them returns an error.
package oracle

import (
	"fmt"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/snoop"
)

// opKind labels an interpreter node.
type opKind int

const (
	opPrim opKind = iota
	opPass        // named-reference wrapper (mirrors the LED's pass-through)
	opOr
	opAnd
	opSeq
	opWindow
	opAgg
	opDuring
	opOverlaps
)

var allContexts = []led.Context{led.Recent, led.Chronicle, led.Continuous, led.Cumulative}

// Oracle is the reference interpreter. Not safe for concurrent use — the
// differential harness drives it from one goroutine, in lockstep with the
// clock advances it applies to the production detector.
type Oracle struct {
	nodes map[string]*oNode
	// order lists every operator node in build order; the boundary
	// timeline iterates it so equal-instant boundaries fire in a
	// deterministic (definition) order.
	order []*oNode
	now   time.Time
}

type oSub struct {
	ctx led.Context
	fn  func(*led.Occ)
}

type oNode struct {
	o        *Oracle
	name     string // registered name, "" for anonymous operator nodes
	expr     snoop.Expr
	op       opKind
	children []*oNode

	size, slide time.Duration // opWindow, opAgg
	aggFn       string
	aggCmp      string
	aggThr      float64

	subs      []oSub
	activated map[led.Context]bool
	st        map[led.Context]*oState
}

// oState is one context's interpreter state.
type oState struct {
	left  []*led.Occ
	right []*led.Occ
	// hist is the full, never-evicted child history of a window node.
	hist []*led.Occ
	// next is the first unprocessed boundary; zero until the first child
	// occurrence starts the grid. Unlike the production detector it never
	// disarms — empty boundaries are recomputed (to nothing) forever.
	next time.Time
}

// New returns an empty oracle starting at the zero time.
func New() *Oracle {
	return &Oracle{nodes: make(map[string]*oNode)}
}

// DefinePrimitive registers a primitive event name.
func (o *Oracle) DefinePrimitive(name string) error {
	if _, ok := o.nodes[name]; ok {
		return fmt.Errorf("oracle: event %q already defined", name)
	}
	o.nodes[name] = &oNode{o: o, name: name, op: opPrim}
	return nil
}

// DefineComposite registers a named composite over a Snoop expression.
func (o *Oracle) DefineComposite(name string, expr snoop.Expr) error {
	if _, ok := o.nodes[name]; ok {
		return fmt.Errorf("oracle: event %q already defined", name)
	}
	for _, ref := range snoop.EventNames(expr) {
		if _, ok := o.nodes[ref]; !ok {
			return fmt.Errorf("oracle: event %q is not defined", ref)
		}
	}
	n, err := o.build(expr)
	if err != nil {
		return err
	}
	n.name = name
	o.nodes[name] = n
	return nil
}

func (o *Oracle) build(e snoop.Expr) (*oNode, error) {
	mk := func(op opKind, children ...*oNode) *oNode {
		n := &oNode{o: o, op: op, expr: e, children: children}
		o.order = append(o.order, n)
		return n
	}
	switch x := e.(type) {
	case *snoop.EventRef:
		c, ok := o.nodes[x.Name]
		if !ok {
			return nil, fmt.Errorf("oracle: event %q is not defined", x.Name)
		}
		return mk(opPass, c), nil
	case *snoop.Or:
		return o.buildBinary(opOr, e, x.L, x.R)
	case *snoop.And:
		return o.buildBinary(opAnd, e, x.L, x.R)
	case *snoop.Seq:
		return o.buildBinary(opSeq, e, x.L, x.R)
	case *snoop.Window:
		c, err := o.build(x.E)
		if err != nil {
			return nil, err
		}
		n := mk(opWindow, c)
		n.size, n.slide = x.Size, x.Slide
		return n, nil
	case *snoop.Agg:
		c, err := o.build(x.E)
		if err != nil {
			return nil, err
		}
		n := mk(opAgg, c)
		n.size, n.slide = x.Size, x.Slide
		n.aggFn, n.aggCmp, n.aggThr = x.Fn, x.Cmp, x.Threshold
		return n, nil
	case *snoop.Interval:
		op := opDuring
		if x.Rel == "OVERLAPS" {
			op = opOverlaps
		} else if x.Rel != "DURING" {
			return nil, fmt.Errorf("oracle: unknown interval relation %q", x.Rel)
		}
		return o.buildBinary(op, e, x.L, x.R)
	default:
		return nil, fmt.Errorf("oracle: unsupported expression %T", e)
	}
}

func (o *Oracle) buildBinary(op opKind, e snoop.Expr, l, r snoop.Expr) (*oNode, error) {
	ln, err := o.build(l)
	if err != nil {
		return nil, err
	}
	rn, err := o.build(r)
	if err != nil {
		return nil, err
	}
	n := &oNode{o: o, op: op, expr: e, children: []*oNode{ln, rn}}
	o.order = append(o.order, n)
	return n, nil
}

// Watch activates event's detection tree in ctx and subscribes fn to its
// occurrences (the oracle's analogue of an IMMEDIATE rule).
func (o *Oracle) Watch(event string, ctx led.Context, fn func(*led.Occ)) error {
	n, ok := o.nodes[event]
	if !ok {
		return fmt.Errorf("oracle: event %q is not defined", event)
	}
	n.activate(ctx)
	n.subs = append(n.subs, oSub{ctx: ctx, fn: fn})
	return nil
}

// Signal feeds one primitive occurrence, first processing every window
// boundary up to its instant (the production detector's clock has already
// fired those timers when a same-instant signal arrives).
func (o *Oracle) Signal(p led.Primitive) {
	o.AdvanceTo(p.At)
	n, ok := o.nodes[p.Event]
	if !ok || n.op != opPrim {
		return
	}
	for _, s := range n.subs {
		s.fn(&led.Occ{
			Event:        p.Event,
			Context:      s.ctx,
			At:           p.At,
			Constituents: []led.Primitive{p},
		})
	}
}

// AdvanceTo processes every window boundary with deadline ≤ t, earliest
// first across all window nodes.
func (o *Oracle) AdvanceTo(t time.Time) {
	for {
		var (
			bn  *oNode
			bcx led.Context
			bst *oState
		)
		for _, n := range o.order {
			if n.op != opWindow && n.op != opAgg {
				continue
			}
			for _, ctx := range allContexts {
				st := n.st[ctx]
				if st == nil || st.next.IsZero() || st.next.After(t) {
					continue
				}
				if bst == nil || st.next.Before(bst.next) {
					bn, bcx, bst = n, ctx, st
				}
			}
		}
		if bst == nil {
			break
		}
		bn.boundary(bcx, bst)
	}
	if t.After(o.now) {
		o.now = t
	}
}

// Now reports the oracle's logical time.
func (o *Oracle) Now() time.Time { return o.now }

func (n *oNode) eventName() string {
	if n.name != "" {
		return n.name
	}
	if n.expr != nil {
		return n.expr.String()
	}
	return "<anonymous>"
}

func (n *oNode) activate(ctx led.Context) {
	if n.activated == nil {
		n.activated = make(map[led.Context]bool)
	}
	if n.activated[ctx] {
		return
	}
	n.activated[ctx] = true
	if n.st == nil {
		n.st = make(map[led.Context]*oState)
	}
	n.st[ctx] = &oState{}
	if n.op == opPrim {
		return
	}
	for i, c := range n.children {
		c.activate(ctx)
		idx := i
		c.subs = append(c.subs, oSub{ctx: ctx, fn: func(occ *led.Occ) { n.onChild(ctx, idx, occ) }})
	}
}

func (n *oNode) emit(ctx led.Context, occ *led.Occ) {
	for _, s := range n.subs {
		if s.ctx == ctx {
			c := *occ
			c.Constituents = append([]led.Primitive(nil), occ.Constituents...)
			s.fn(&c)
		}
	}
}

func (n *oNode) onChild(ctx led.Context, idx int, occ *led.Occ) {
	st := n.st[ctx]
	switch n.op {
	case opPass, opOr:
		n.emit(ctx, merge(n.eventName(), ctx, occ))
	case opAnd:
		n.onAnd(ctx, st, idx, occ)
	case opSeq:
		n.onTerminated(ctx, st, idx, occ, func(l *led.Occ) bool {
			return l.At.Before(occ.At)
		})
	case opWindow, opAgg:
		st.hist = append(st.hist, occ)
		if st.next.IsZero() {
			st.next = boundaryAfter(occ.At, n.slide)
		}
	case opDuring:
		n.onTerminated(ctx, st, idx, occ, func(l *led.Occ) bool {
			ls, le := extent(l)
			rs, re := extent(occ)
			return ls.After(rs) && le.Before(re)
		})
	case opOverlaps:
		n.onTerminated(ctx, st, idx, occ, func(l *led.Occ) bool {
			ls, le := extent(l)
			rs, re := extent(occ)
			return ls.Before(rs) && rs.Before(le) && le.Before(re)
		})
	}
}

// onAnd is the textbook AND: both constituents in either order, buffered
// per side, paired per context policy.
func (n *oNode) onAnd(ctx led.Context, st *oState, idx int, occ *led.Occ) {
	mine, other := &st.left, &st.right
	if idx == 1 {
		mine, other = &st.right, &st.left
	}
	switch ctx {
	case led.Recent:
		*mine = []*led.Occ{occ}
		if len(*other) > 0 {
			n.emit(ctx, merge(n.eventName(), ctx, (*other)[len(*other)-1], occ))
		}
	case led.Chronicle:
		*mine = append(*mine, occ)
		for len(st.left) > 0 && len(st.right) > 0 {
			l, r := st.left[0], st.right[0]
			st.left = st.left[1:]
			st.right = st.right[1:]
			n.emit(ctx, merge(n.eventName(), ctx, l, r))
		}
	case led.Continuous:
		if len(*other) > 0 {
			for _, o := range *other {
				n.emit(ctx, merge(n.eventName(), ctx, o, occ))
			}
			*other = nil
			return
		}
		*mine = append(*mine, occ)
	case led.Cumulative:
		*mine = append(*mine, occ)
		if len(st.left) > 0 && len(st.right) > 0 {
			parts := make([]*led.Occ, 0, len(st.left)+len(st.right))
			parts = append(parts, st.left...)
			parts = append(parts, st.right...)
			st.left, st.right = nil, nil
			n.emit(ctx, merge(n.eventName(), ctx, parts...))
		}
	}
}

// onTerminated is the shared left-buffer/right-terminator shape of SEQ and
// the Allen relations: the left operand buffers, the right terminates, and
// holds decides eligibility.
func (n *oNode) onTerminated(ctx led.Context, st *oState, idx int, occ *led.Occ, holds func(*led.Occ) bool) {
	if idx == 0 {
		switch ctx {
		case led.Recent:
			st.left = []*led.Occ{occ}
		default:
			st.left = append(st.left, occ)
		}
		return
	}
	var eligible []*led.Occ
	for _, l := range st.left {
		if holds(l) {
			eligible = append(eligible, l)
		}
	}
	if len(eligible) == 0 {
		return
	}
	remove := func(target *led.Occ) {
		for i, l := range st.left {
			if l == target {
				st.left = append(st.left[:i], st.left[i+1:]...)
				return
			}
		}
	}
	switch ctx {
	case led.Recent:
		n.emit(ctx, merge(n.eventName(), ctx, eligible[len(eligible)-1], occ))
	case led.Chronicle:
		oldest := eligible[0]
		n.emit(ctx, merge(n.eventName(), ctx, oldest, occ))
		remove(oldest)
	case led.Continuous:
		for _, l := range eligible {
			n.emit(ctx, merge(n.eventName(), ctx, l, occ))
			remove(l)
		}
	case led.Cumulative:
		parts := make([]*led.Occ, 0, len(eligible)+1)
		parts = append(parts, eligible...)
		parts = append(parts, occ)
		for _, l := range eligible {
			remove(l)
		}
		n.emit(ctx, merge(n.eventName(), ctx, parts...))
	}
}

// boundary recomputes one window boundary from the full history.
func (n *oNode) boundary(ctx led.Context, st *oState) {
	at := st.next
	st.next = at.Add(n.slide)
	lo := at.Add(-n.size)
	var content []*led.Occ
	for _, c := range st.hist {
		if !c.At.Before(lo) && c.At.Before(at) {
			content = append(content, c)
		}
	}
	if len(content) == 0 {
		return
	}
	if n.op == opAgg {
		v := aggValue(n.aggFn, content)
		if n.aggCmp != "" && !cmpHolds(n.aggCmp, v, n.aggThr) {
			return
		}
	}
	tick := &led.Occ{
		Event: n.eventName(),
		At:    at,
		Constituents: []led.Primitive{{
			Event: n.eventName(), Op: "tick", At: at,
		}},
	}
	parts := make([]*led.Occ, 0, len(content)+1)
	parts = append(parts, content...)
	parts = append(parts, tick)
	n.emit(ctx, merge(n.eventName(), ctx, parts...))
}

// merge mirrors the production mergeOccs contract: the composite's At is
// the latest constituent time, constituents stably sorted by At.
func merge(event string, ctx led.Context, parts ...*led.Occ) *led.Occ {
	out := &led.Occ{Event: event, Context: ctx}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.At.After(out.At) {
			out.At = p.At
		}
		out.Constituents = append(out.Constituents, p.Constituents...)
	}
	cs := out.Constituents
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].At.Before(cs[j-1].At); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	return out
}

// extent is an occurrence's durative interval: earliest constituent to
// detection instant.
func extent(o *led.Occ) (start, end time.Time) {
	if len(o.Constituents) > 0 {
		return o.Constituents[0].At, o.At
	}
	return o.At, o.At
}

// boundaryAfter returns the first slide-grid boundary strictly after t.
func boundaryAfter(t time.Time, slide time.Duration) time.Time {
	s := slide.Nanoseconds()
	ns := t.UnixNano()
	q := ns / s
	if ns%s != 0 && ns < 0 {
		q--
	}
	return time.Unix(0, (q+1)*s).UTC()
}

// aggValue evaluates an aggregate over the vno parameter of the content's
// constituents.
func aggValue(fn string, content []*led.Occ) float64 {
	var (
		count int
		sum   float64
		min   float64
		max   float64
		first = true
	)
	for _, o := range content {
		for _, p := range o.Constituents {
			v := float64(p.VNo)
			count++
			sum += v
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	switch fn {
	case "COUNT":
		return float64(count)
	case "SUM":
		return sum
	case "AVG":
		if count == 0 {
			return 0
		}
		return sum / float64(count)
	case "MIN":
		return min
	case "MAX":
		return max
	}
	return 0
}

func cmpHolds(cmp string, v, thr float64) bool {
	switch cmp {
	case ">":
		return v > thr
	case ">=":
		return v >= thr
	case "<":
		return v < thr
	case "<=":
		return v <= thr
	case "==":
		return v == thr
	case "!=":
		return v != thr
	}
	return false
}
