package led

import (
	"sync/atomic"

	"github.com/activedb/ecaagent/internal/obs"
)

// opName is the metric label for each event-graph node kind.
var opName = map[kind]string{
	kPrimitive: "primitive",
	kOr:        "or",
	kAnd:       "and",
	kSeq:       "seq",
	kNot:       "not",
	kAper:      "aperiodic",
	kAperStar:  "aperiodic_star",
	kPer:       "periodic",
	kPerStar:   "periodic_star",
	kPlus:      "plus",
	kTemporal:  "temporal",
	kWindow:    "window",
	kAgg:       "agg",
	kDuring:    "during",
	kOverlaps:  "overlaps",
}

// ledMetrics holds the detector's instruments. Per-kind counters are
// resolved once at registration so the emit hot path is a single atomic
// add, not a label lookup.
type ledMetrics struct {
	detectSec *obs.Histogram
	opOccs    map[kind]*obs.Counter
}

// EnableMetrics registers the detector's instruments in reg and starts
// recording: eca_detect_latency_seconds observes each Signal's full graph
// propagation (lock wait included — that is what a caller experiences),
// and eca_led_operator_occurrences_total{op} counts occurrences each
// operator node emits. Safe to call at any time; concurrent Signals pick
// the instruments up atomically.
func (l *LED) EnableMetrics(reg *obs.Registry) {
	m := &ledMetrics{
		detectSec: reg.Histogram("eca_detect_latency_seconds",
			"LED detect latency per signalled primitive occurrence, seconds.", nil),
		opOccs: make(map[kind]*obs.Counter, len(opName)),
	}
	occs := reg.CounterVec("eca_led_operator_occurrences_total",
		"Occurrences emitted by event-graph nodes, by operator kind.", "op")
	for k, name := range opName {
		m.opOccs[k] = occs.With(name)
	}
	reg.GaugeFunc("eca_led_shards",
		"Event-graph shards currently detecting (independent components, modulo MaxShards).",
		func() float64 { return float64(l.ShardCount()) })
	reg.GaugeFunc("eca_led_shard_events_max",
		"Named events in the most occupied shard (occupancy skew indicator).",
		func() float64 {
			sizes := l.ShardSizes()
			if len(sizes) == 0 {
				return 0
			}
			return float64(sizes[0])
		})
	reg.GaugeFunc("eca_led_detached_queue_depth",
		"DETACHED rule firings queued for the bounded worker pool.",
		func() float64 { q, _, _ := l.DetachedStats(); return float64(q) })
	reg.GaugeFunc("eca_led_detached_workers",
		"Worker goroutines currently draining DETACHED rule firings.",
		func() float64 { _, w, _ := l.DetachedStats(); return float64(w) })
	l.met.Store(m)
}

// countOcc records one emitted occurrence for a node kind (nil-safe).
func (l *LED) countOcc(k kind) {
	if m := l.met.Load(); m != nil {
		m.opOccs[k].Inc()
	}
}

// metAtomic is a typed wrapper so LED can hold the pointer without
// importing sync/atomic generics clutter at every use site.
type metAtomic = atomic.Pointer[ledMetrics]
