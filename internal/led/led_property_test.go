package led

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

// runSequence drives a fresh detector over a sequence of primitive events
// (values 0/1/2 map to e1/e2/e3) and returns the detected occurrences.
func runSequence(t *testing.T, expr string, ctx Context, seq []byte) []*Occ {
	t.Helper()
	h := newHarness(t, "e1", "e2", "e3")
	defComposite(t, h, "c", expr)
	h.watch(t, "c", ctx)
	for _, b := range seq {
		h.sig(fmt.Sprintf("e%d", int(b%3)+1))
	}
	return h.take()
}

func seqFromSeed(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(3))
	}
	return out
}

// Property: OR detection count equals the number of constituent
// occurrences, in every context.
func TestPropertyOrCount(t *testing.T) {
	f := func(seed int64) bool {
		seq := seqFromSeed(seed, 30)
		want := 0
		for _, b := range seq {
			if b%3 != 2 { // e1 or e2
				want++
			}
		}
		for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
			if got := len(runSequence(t, "e1 | e2", ctx, seq)); got != want {
				t.Logf("ctx %v: got %d want %d (seq %v)", ctx, got, want, seq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: chronicle AND detects exactly min(#e1, #e2) pairs, each pair
// consisting of the i-th e1 and i-th e2.
func TestPropertyChronicleAndPairing(t *testing.T) {
	f := func(seed int64) bool {
		seq := seqFromSeed(seed, 40)
		n1, n2 := 0, 0
		for _, b := range seq {
			switch b % 3 {
			case 0:
				n1++
			case 1:
				n2++
			}
		}
		want := n1
		if n2 < n1 {
			want = n2
		}
		occs := runSequence(t, "e1 ^ e2", Chronicle, seq)
		if len(occs) != want {
			return false
		}
		// Every occurrence must hold exactly one e1 and one e2, and the
		// e1s (and e2s) must appear in chronological order across
		// occurrences.
		var lastE1, lastE2 time.Time
		for _, o := range occs {
			if len(o.Constituents) != 2 {
				return false
			}
			var t1, t2 time.Time
			for _, c := range o.Constituents {
				switch c.Event {
				case "e1":
					t1 = c.At
				case "e2":
					t2 = c.At
				}
			}
			if t1.IsZero() || t2.IsZero() || !t1.After(lastE1) || !t2.After(lastE2) {
				return false
			}
			lastE1, lastE2 = t1, t2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: SEQ constituents are always in strict time order, in every
// context.
func TestPropertySeqOrdering(t *testing.T) {
	f := func(seed int64) bool {
		seq := seqFromSeed(seed, 30)
		for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
			for _, o := range runSequence(t, "e1 ; e2", ctx, seq) {
				for i := 1; i < len(o.Constituents); i++ {
					if o.Constituents[i].At.Before(o.Constituents[i-1].At) {
						return false
					}
				}
				// The terminator (last constituent) must be an e2 strictly
				// after the first e1.
				last := o.Constituents[len(o.Constituents)-1]
				if last.Event != "e2" || !last.At.After(o.Constituents[0].At) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: NOT never fires when an e3 (middle) occurred between the
// initiator and terminator. We verify by construction: runs containing no
// e1 never fire; every detected occurrence's window is e3-free.
func TestPropertyNotWindowClean(t *testing.T) {
	f := func(seed int64) bool {
		seq := seqFromSeed(seed, 30)
		// e1 = initiator, e3 = middle, e2 = terminator.
		occs := runSequence(t, "NOT(e1, e3, e2)", Chronicle, seq)
		// Reconstruct signal times: the harness assigns t0+1s, t0+2s, ...
		type ev struct {
			name string
			at   time.Time
		}
		var timeline []ev
		for i, b := range seq {
			timeline = append(timeline, ev{fmt.Sprintf("e%d", int(b%3)+1), t0.Add(time.Duration(i+1) * time.Second)})
		}
		for _, o := range occs {
			start := o.Constituents[0].At
			end := o.Constituents[len(o.Constituents)-1].At
			for _, e := range timeline {
				if e.name == "e3" && e.at.After(start) && e.at.Before(end) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: cumulative contexts never lose constituents — the total
// number of e1/e2 constituents across all AND occurrences equals the
// number of signalled e1/e2 up to the last detection.
func TestPropertyCumulativeConservation(t *testing.T) {
	f := func(seed int64) bool {
		seq := seqFromSeed(seed, 30)
		occs := runSequence(t, "e1 ^ e2", Cumulative, seq)
		// Each signalled e1/e2 appears in at most one cumulative
		// occurrence (buffers flush on detection).
		seen := map[int]bool{}
		for _, o := range occs {
			for _, c := range o.Constituents {
				if seen[c.VNo] {
					return false
				}
				seen[c.VNo] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: occurrence timestamps equal the terminator's timestamp (the
// At of the latest constituent), for all binary ops and contexts.
func TestPropertyOccurrenceTime(t *testing.T) {
	f := func(seed int64) bool {
		seq := seqFromSeed(seed, 20)
		for _, expr := range []string{"e1 ^ e2", "e1 ; e2"} {
			for _, ctx := range []Context{Recent, Chronicle, Continuous, Cumulative} {
				for _, o := range runSequence(t, expr, ctx, seq) {
					latest := o.Constituents[0].At
					for _, c := range o.Constituents {
						if c.At.After(latest) {
							latest = c.At
						}
					}
					if !o.At.Equal(latest) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// --- additional deterministic operator edge cases ---

func TestPeriodicChronicleWindows(t *testing.T) {
	// Two starts open two periodic windows; the first close stops only the
	// oldest in CHRONICLE.
	h := newHarness(t, "open", "close")
	e, _ := snoop.Parse("P(open, [5 sec], close)")
	if err := h.led.DefineComposite("p", e); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "p", Chronicle)
	h.led.Signal(Primitive{Event: "open", At: h.clock.Now()})
	h.clock.Advance(2 * time.Second)
	h.led.Signal(Primitive{Event: "open", At: h.clock.Now()})
	h.clock.Advance(10 * time.Second)
	first := len(h.take())
	if first == 0 {
		t.Fatal("no ticks")
	}
	h.led.Signal(Primitive{Event: "close", At: h.clock.Now()}) // closes window 1
	h.clock.Advance(10 * time.Second)
	second := len(h.take())
	if second == 0 {
		t.Fatal("second window should keep ticking")
	}
	h.led.Signal(Primitive{Event: "close", At: h.clock.Now()}) // closes window 2
	h.clock.Advance(10 * time.Second)
	if got := len(h.take()); got != 0 {
		t.Errorf("ticks after both closed: %d", got)
	}
}

func TestPlusMultipleOccurrences(t *testing.T) {
	h := newHarness(t, "alarm")
	e, _ := snoop.Parse("alarm PLUS [10 sec]")
	if err := h.led.DefineComposite("d", e); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "d", Recent)
	h.led.Signal(Primitive{Event: "alarm", VNo: 1, At: h.clock.Now()})
	h.clock.Advance(3 * time.Second)
	h.led.Signal(Primitive{Event: "alarm", VNo: 2, At: h.clock.Now()})
	h.clock.Advance(8 * time.Second) // fires the first (at +10) but not the second (+13)
	occs := h.take()
	if len(occs) != 1 || occs[0].Constituents[0].VNo != 1 {
		t.Fatalf("first PLUS firing: %+v", occs)
	}
	h.clock.Advance(3 * time.Second)
	occs = h.take()
	if len(occs) != 1 || occs[0].Constituents[0].VNo != 2 {
		t.Fatalf("second PLUS firing: %+v", occs)
	}
}

func TestDropEventCancelsTimers(t *testing.T) {
	h := newHarness(t, "open", "close")
	e, _ := snoop.Parse("P(open, [5 sec], close)")
	if err := h.led.DefineComposite("p", e); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "p", Recent)
	h.led.Signal(Primitive{Event: "open", At: h.clock.Now()})
	if h.clock.PendingTimers() == 0 {
		t.Fatal("no timer armed")
	}
	for _, r := range h.led.RuleNames() {
		_ = h.led.DropRule(r)
	}
	if err := h.led.DropEvent("p"); err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(30 * time.Second)
	if got := len(h.take()); got != 0 {
		t.Errorf("dropped periodic event still ticked %d times", got)
	}
}

func TestAperiodicChronicleClosesOldestWindow(t *testing.T) {
	h := newHarness(t, "open", "trade", "close")
	defComposite(t, h, "a", "A(open, trade, close)")
	h.watch(t, "a", Chronicle)
	h.sig("open")  // window 1
	h.sig("open")  // window 2
	h.sig("close") // closes window 1 only
	h.sig("trade") // still inside window 2
	occs := h.take()
	if len(occs) != 1 {
		t.Fatalf("A after partial close fired %d times", len(occs))
	}
}

func TestTemporalInPastNeverFires(t *testing.T) {
	h := newHarness(t)
	past := t0.Add(-time.Hour)
	if err := h.led.DefineComposite("old", &snoop.Temporal{At: past}); err != nil {
		t.Fatal(err)
	}
	h.watch(t, "old", Recent)
	h.clock.Advance(24 * time.Hour)
	if got := len(h.take()); got != 0 {
		t.Errorf("past temporal fired %d times", got)
	}
}

func TestMixedContextSubscriptionsIndependent(t *testing.T) {
	// Two rules on the same composite in different contexts each see their
	// own context's occurrences.
	h := newHarness(t, "e1", "e2")
	defComposite(t, h, "c", "e1 ^ e2")
	h.watch(t, "c", Recent)
	h.watch(t, "c", Cumulative)
	h.sig("e1")
	h.sig("e1")
	h.sig("e2")
	occs := h.take()
	byCtx := map[Context]int{}
	for _, o := range occs {
		byCtx[o.Context]++
	}
	if byCtx[Recent] != 1 || byCtx[Cumulative] != 1 {
		t.Errorf("per-context detections: %v", byCtx)
	}
	// The cumulative occurrence carries both e1s; the recent only one.
	for _, o := range occs {
		switch o.Context {
		case Recent:
			if len(o.Constituents) != 2 {
				t.Errorf("recent constituents: %d", len(o.Constituents))
			}
		case Cumulative:
			if len(o.Constituents) != 3 {
				t.Errorf("cumulative constituents: %d", len(o.Constituents))
			}
		}
	}
}

func TestPeriodicZeroAndNegativeDurations(t *testing.T) {
	h := newHarness(t, "a", "b")
	if err := h.led.DefineComposite("bad", &snoop.Periodic{
		Start: &snoop.EventRef{Name: "a"}, End: &snoop.EventRef{Name: "b"},
	}); err == nil {
		t.Error("zero-period periodic accepted")
	}
	if err := h.led.DefineComposite("bad2", &snoop.Plus{
		E: &snoop.EventRef{Name: "a"}, Delta: -time.Second,
	}); err == nil {
		t.Error("negative PLUS accepted")
	}
}
