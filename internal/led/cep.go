package led

import (
	"fmt"
	"time"

	"github.com/activedb/ecaagent/internal/snoop"
)

// CEP operators: sliding/tumbling windows, windowed aggregates, and
// Allen-style interval relations (DESIGN.md §12).
//
// Window semantics. A window node reports at boundaries of a fixed grid:
// every multiple of the slide on the Unix epoch. At a boundary T the
// window's content is the child occurrences with At in the half-open
// interval [T-size, T). The exclusive upper bound makes the relative
// ordering of a boundary timer and a same-instant child occurrence
// irrelevant — an occurrence at exactly T belongs to the next window
// either way — which is what lets a restored detector and the live one
// agree without replaying intra-instant scheduling.
//
// The ring buffer holds exactly the child occurrences still eligible for
// some future boundary; the boundary timer is armed iff the ring is
// non-empty (lazy arming). At a boundary, occurrences that cannot appear
// in any later window — At < T+slide-size — are evicted.

// validateWindow rejects window geometries the detector cannot run. The
// parser already enforces this; re-checking here keeps programmatically
// built expressions honest.
func validateWindow(size, slide time.Duration) error {
	if size <= 0 {
		return fmt.Errorf("led: window size must be positive")
	}
	if slide <= 0 {
		return fmt.Errorf("led: window slide must be positive")
	}
	return nil
}

// validateAgg rejects aggregate expressions the detector cannot evaluate.
func validateAgg(e *snoop.Agg) error {
	if err := validateWindow(e.Size, e.Slide); err != nil {
		return err
	}
	if !snoop.AggFns[e.Fn] {
		return fmt.Errorf("led: unknown aggregate function %q", e.Fn)
	}
	if e.Param != "vno" {
		return fmt.Errorf("led: unsupported aggregate parameter %q (only vno)", e.Param)
	}
	return nil
}

func intervalKind(rel string) (kind, error) {
	switch rel {
	case "DURING":
		return kDuring, nil
	case "OVERLAPS":
		return kOverlaps, nil
	default:
		return 0, fmt.Errorf("led: unknown interval relation %q", rel)
	}
}

// boundaryAfter returns the first slide-grid boundary strictly after t.
func boundaryAfter(t time.Time, slide time.Duration) time.Time {
	s := slide.Nanoseconds()
	ns := t.UnixNano()
	q := ns / s
	if ns%s != 0 && ns < 0 {
		q--
	}
	return time.Unix(0, (q+1)*s).UTC()
}

// onWindowChild buffers a child occurrence and lazily arms the next
// boundary. Runs with the owning shard's lock held.
func (n *node) onWindowChild(ctx Context, st *opState, occ *Occ) {
	st.ring = append(st.ring, occ)
	if st.nextBound.IsZero() {
		n.armBoundary(ctx, st, boundaryAfter(occ.At, n.slide))
	}
}

// armBoundary arms the window's boundary timer at the logical deadline at.
func (n *node) armBoundary(ctx Context, st *opState, at time.Time) {
	st.nextBound = at
	st.ringStop = n.armTimer(at, func(fireAt time.Time) {
		// The node may have been restored (or the context torn down)
		// between arming and firing; only the deadline the state still
		// expects may run the boundary.
		if !st.nextBound.Equal(fireAt) {
			return
		}
		n.onBoundary(ctx, st, fireAt)
	})
}

// onBoundary emits the window/aggregate occurrence for boundary at, evicts
// dead ring entries, and re-arms iff anything is left.
func (n *node) onBoundary(ctx Context, st *opState, at time.Time) {
	st.nextBound = time.Time{}
	st.ringStop = nil
	lo := at.Add(-n.dur)
	var content []*Occ
	for _, o := range st.ring {
		if !o.At.Before(lo) && o.At.Before(at) {
			content = append(content, o)
		}
	}
	// Evict everything that cannot appear at any boundary after this one:
	// the next window is [at+slide-size, at+slide).
	evictLo := at.Add(n.slide - n.dur)
	kept := st.ring[:0]
	for _, o := range st.ring {
		if !o.At.Before(evictLo) {
			kept = append(kept, o)
		}
	}
	for i := len(kept); i < len(st.ring); i++ {
		st.ring[i] = nil
	}
	st.ring = kept
	if len(st.ring) > 0 {
		n.armBoundary(ctx, st, at.Add(n.slide))
	} else {
		st.ring = nil
	}
	if len(content) == 0 {
		return
	}
	if n.kind == kAgg {
		v := aggValue(n.aggFn, content)
		if n.aggCmp != "" && !cmpHolds(n.aggCmp, v, n.aggThr) {
			return
		}
	}
	// The boundary tick rides along as a constituent so the composite's
	// At lands on the boundary (mergeOccs takes the latest constituent),
	// mirroring the periodic operator's tick primitives.
	tick := &Occ{
		Event: n.eventName(),
		At:    at,
		Constituents: []Primitive{{
			Event: n.eventName(), Op: "tick", At: at,
		}},
	}
	parts := make([]*Occ, 0, len(content)+1)
	parts = append(parts, content...)
	parts = append(parts, tick)
	n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
}

// aggValue evaluates an aggregate function over the vno parameter of the
// window content's constituents. Ticks and time primitives (VNo 0 markers
// from PLUS/periodic children) still count — the aggregate ranges over
// every constituent the content carries, which is what the oracle
// recomputes from history.
func aggValue(fn string, content []*Occ) float64 {
	var (
		count int
		sum   float64
		min   float64
		max   float64
		first = true
	)
	for _, o := range content {
		for _, p := range o.Constituents {
			v := float64(p.VNo)
			count++
			sum += v
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	switch fn {
	case "COUNT":
		return float64(count)
	case "SUM":
		return sum
	case "AVG":
		if count == 0 {
			return 0
		}
		return sum / float64(count)
	case "MIN":
		return min
	case "MAX":
		return max
	}
	return 0
}

// cmpHolds applies an AGG comparator.
func cmpHolds(cmp string, v, thr float64) bool {
	switch cmp {
	case ">":
		return v > thr
	case ">=":
		return v >= thr
	case "<":
		return v < thr
	case "<=":
		return v <= thr
	case "==":
		return v == thr
	case "!=":
		return v != thr
	}
	return false
}

// occExtent is the durative extent of an occurrence: from its earliest
// constituent's instant to its detection instant. mergeOccs keeps
// constituents sorted by At, so the first entry is the start.
func occExtent(o *Occ) (start, end time.Time) {
	if len(o.Constituents) > 0 {
		return o.Constituents[0].At, o.At
	}
	return o.At, o.At
}

// intervalHolds reports whether the node's Allen relation holds between
// the left and right occurrence extents. Both relations are strict, and
// both imply the left interval ends before the right one — so the right
// occurrence is always the terminator (it is detected last).
func (n *node) intervalHolds(l, r *Occ) bool {
	ls, le := occExtent(l)
	rs, re := occExtent(r)
	switch n.kind {
	case kDuring:
		return ls.After(rs) && le.Before(re)
	case kOverlaps:
		return ls.Before(rs) && rs.Before(le) && le.Before(re)
	}
	return false
}

// onInterval implements L DURING R / L OVERLAPS R with Seq's per-context
// consumption policy: left occurrences buffer, the right occurrence
// terminates, eligibility is the Allen relation instead of strict
// precedence.
func (n *node) onInterval(ctx Context, st *opState, idx int, occ *Occ) {
	if idx == 0 { // left operand buffers
		switch ctx {
		case Recent:
			st.left = []*Occ{occ}
		default:
			st.left = append(st.left, occ)
		}
		return
	}
	eligible := st.left[:0:0]
	for _, l := range st.left {
		if n.intervalHolds(l, occ) {
			eligible = append(eligible, l)
		}
	}
	if len(eligible) == 0 {
		return
	}
	switch ctx {
	case Recent:
		n.emit(ctx, mergeOccs(n.eventName(), ctx, eligible[len(eligible)-1], occ))
	case Chronicle:
		oldest := eligible[0]
		n.emit(ctx, mergeOccs(n.eventName(), ctx, oldest, occ))
		n.removeLeft(st, oldest)
	case Continuous:
		for _, l := range eligible {
			n.emit(ctx, mergeOccs(n.eventName(), ctx, l, occ))
			n.removeLeft(st, l)
		}
	case Cumulative:
		parts := make([]*Occ, 0, len(eligible)+1)
		parts = append(parts, eligible...)
		parts = append(parts, occ)
		for _, l := range eligible {
			n.removeLeft(st, l)
		}
		n.emit(ctx, mergeOccs(n.eventName(), ctx, parts...))
	}
}
