package led

import (
	"testing"
	"time"
)

// Regression: cancelled timers used to linger in c.timers until the next
// Advance compacted them. A workload that arms and cancels timers without
// advancing the clock grew the slice without bound.
func TestManualClockCancelReclaimsImmediately(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	const n = 1000
	for i := 0; i < n; i++ {
		cancel := c.AfterFunc(time.Hour, func() { t.Error("cancelled timer fired") })
		cancel()
	}
	c.mu.Lock()
	held := len(c.timers)
	c.mu.Unlock()
	if held != 0 {
		t.Fatalf("%d cancelled timers still held without an Advance", held)
	}
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers() = %d", got)
	}
	c.Advance(2 * time.Hour) // cancelled timers must stay dead
}

func TestManualClockCancelIsIdempotent(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	fired := 0
	keep := c.AfterFunc(time.Minute, func() { fired++ })
	cancel := c.AfterFunc(time.Minute, func() { t.Error("cancelled timer fired") })
	cancel()
	cancel() // double-cancel must not unlink a different timer
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers() = %d, want 1", got)
	}
	c.Advance(time.Hour)
	if fired != 1 {
		t.Fatalf("surviving timer fired %d times", fired)
	}
	keep() // cancelling an already-fired timer is a no-op
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers() = %d after fire", got)
	}
}

func TestManualClockFiresInDeadlineOrder(t *testing.T) {
	c := NewManualClock(time.Unix(0, 0))
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() {
		order = append(order, 2)
		// A callback may re-arm within the window; it fires in the same
		// Advance.
		c.AfterFunc(time.Second, func() { order = append(order, 4) })
	})
	c.Advance(5 * time.Second)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if !c.Now().Equal(time.Unix(5, 0)) {
		t.Errorf("Now() = %v", c.Now())
	}
}
