package sqllex

import (
	"strings"
	"testing"
	"testing/quick"
)

func texts(ts []Token) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	ts, err := Tokenize("select symbol, price from stock where price >= 10.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"select", "symbol", ",", "price", "from", "stock", "where", "price", ">=", "10.5"}
	got := texts(ts)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeString(t *testing.T) {
	ts, err := Tokenize("print 'it''s a test'")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[1].Kind != TokString || ts[1].Text != "it's a test" {
		t.Errorf("got %+v", ts)
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestTokenizeComments(t *testing.T) {
	ts, err := Tokenize("select 1 -- trailing\n/* block\ncomment */ , 2 /* unclosed tail")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(ts)
	want := []string{"select", "1", ",", "2"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTokenizeQuotedIdent(t *testing.T) {
	ts, err := Tokenize(`select [select] from "from"`)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(ts)
	want := []string{"select", "select", "from", "from"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("got %v want %v", got, want)
	}
	if _, err := Tokenize("[oops"); err == nil {
		t.Error("unterminated bracket ident accepted")
	}
}

func TestTokenizeVariables(t *testing.T) {
	ts, err := Tokenize("exec p @x = 1, @y_2 = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if ts[2].Kind != TokVariable || ts[2].Text != "@x" {
		t.Errorf("got %+v", ts[2])
	}
	if _, err := Tokenize("@ alone"); err == nil {
		t.Error("lone @ accepted")
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.25":   "3.25",
		"1e6":    "1e6",
		"2.5e-3": "2.5e-3",
		"7e":     "7", // no exponent digits: '7' then ident 'e'
		"10.a":   "10",
	}
	for in, first := range cases {
		ts, err := Tokenize(in)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", in, err)
		}
		if len(ts) == 0 || ts[0].Text != first {
			t.Errorf("Tokenize(%q)[0] = %v, want %q", in, ts, first)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	ts, err := Tokenize("a<>b != c <= d >= e ^ f . g")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range ts {
		if tok.Kind == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<>", "!=", "<=", ">=", "^", "."}
	if strings.Join(ops, "|") != strings.Join(want, "|") {
		t.Errorf("got %v want %v", ops, want)
	}
	if _, err := Tokenize("a ? b"); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestTokenPositions(t *testing.T) {
	src := "update  stock set price = 1"
	ts, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range ts {
		if tok.Kind == TokString {
			continue
		}
		if got := src[tok.Pos:tok.End]; !strings.EqualFold(got, tok.Text) {
			t.Errorf("token %q spans %q", tok.Text, got)
		}
	}
}

func TestIsKeywordAndIsOp(t *testing.T) {
	ts, _ := Tokenize("CREATE trigger =")
	if !ts[0].IsKeyword("create") || !ts[1].IsKeyword("TRIGGER") {
		t.Error("IsKeyword case-insensitivity failed")
	}
	if ts[0].IsKeyword("created") {
		t.Error("IsKeyword matched wrong word")
	}
	if !ts[2].IsOp("=") || ts[2].IsOp("==") {
		t.Error("IsOp failed")
	}
}

func TestLexerRestAndSkipTo(t *testing.T) {
	lx := New("create trigger t as select * from s")
	for i := 0; i < 3; i++ {
		if _, err := lx.Next(); err != nil {
			t.Fatal(err)
		}
	}
	// After "create trigger t", next token should be "as"; capture rest after it.
	tok, err := lx.Next()
	if err != nil || !tok.IsKeyword("as") {
		t.Fatalf("expected as, got %+v err=%v", tok, err)
	}
	rest := strings.TrimSpace(lx.Rest())
	if rest != "select * from s" {
		t.Errorf("Rest() = %q", rest)
	}
	lx.SkipTo(-5)
	tok, _ = lx.Next()
	if !tok.IsKeyword("create") {
		t.Errorf("SkipTo(0) then Next = %+v", tok)
	}
	lx.SkipTo(1 << 20)
	tok, _ = lx.Next()
	if tok.Kind != TokEOF {
		t.Errorf("SkipTo(end) then Next = %+v", tok)
	}
}

func TestTokenizeNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		// Tokenize must terminate and never panic on arbitrary input.
		_, _ = Tokenize(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\x00") {
			return true
		}
		quoted := "'" + strings.ReplaceAll(s, "'", "''") + "'"
		ts, err := Tokenize(quoted)
		if err != nil || len(ts) != 1 {
			return false
		}
		return ts[0].Kind == TokString && ts[0].Text == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
