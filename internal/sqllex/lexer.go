// Package sqllex tokenizes the T-SQL-ish dialect the engine and the ECA
// agent share. The token stream preserves enough position information for
// the agent's Language Filter to splice and rewrite client batches (name
// expansion, notification injection) without reformatting untouched text.
package sqllex

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a token.
type TokenKind int

// Token kinds.
const (
	TokEOF      TokenKind = iota
	TokIdent              // unquoted identifier or keyword
	TokNumber             // integer or float literal
	TokString             // 'single quoted' string, quotes stripped, '' unescaped
	TokOp                 // operator or punctuation: ( ) , . = <> != <= >= < > + - * / % ^
	TokVariable           // @name local variable / procedure parameter
)

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "eof"
	case TokIdent:
		return "ident"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "op"
	case TokVariable:
		return "variable"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token. Text holds the literal payload (for strings,
// the unescaped contents).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset of the token's first character in the input
	End  int // byte offset just past the token
}

// IsKeyword reports whether the token is an identifier equal to the given
// keyword, case-insensitively.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// IsOp reports whether the token is the given operator.
func (t Token) IsOp(op string) bool {
	return t.Kind == TokOp && t.Text == op
}

// Lexer scans an input string into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Tokenize scans the whole input, returning all tokens (excluding EOF).
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return out, nil
		}
		out = append(out, t)
	}
}

// Next returns the next token, or a TokEOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos, End: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent('"')
	case c == '[':
		return l.lexQuotedIdent(']')
	case c == '@':
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return Token{}, fmt.Errorf("lone '@' at offset %d", start)
		}
		return Token{Kind: TokVariable, Text: l.src[start:l.pos], Pos: start, End: l.pos}, nil
	case isDigit(c):
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start, End: l.pos}, nil
	default:
		return l.lexOp()
	}
}

// Rest returns the unscanned tail of the input. The agent uses it to
// capture raw SQL action bodies after the AS keyword.
func (l *Lexer) Rest() string { return l.src[l.pos:] }

// SkipTo positions the lexer at the given byte offset.
func (l *Lexer) SkipTo(off int) {
	if off < 0 {
		off = 0
	}
	if off > len(l.src) {
		off = len(l.src)
	}
	l.pos = off
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			if l.pos+1 < len(l.src) {
				l.pos += 2
			} else {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start, End: l.pos}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated string starting at offset %d", start)
}

func (l *Lexer) lexQuotedIdent(close byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote/bracket
	idStart := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != close {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{}, fmt.Errorf("unterminated quoted identifier at offset %d", start)
	}
	text := l.src[idStart:l.pos]
	l.pos++
	return Token{Kind: TokIdent, Text: text, Pos: start, End: l.pos}, nil
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start, End: l.pos}, nil
}

var twoCharOps = map[string]bool{
	"<>": true, "!=": true, "<=": true, ">=": true, "==": true,
}

func (l *Lexer) lexOp() (Token, error) {
	start := l.pos
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		l.pos += 2
		return Token{Kind: TokOp, Text: l.src[start:l.pos], Pos: start, End: l.pos}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '=', '<', '>', '+', '-', '*', '/', '%', '^', ';', '!', '|', '&', ':':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start, End: l.pos}, nil
	}
	r := rune(c)
	if r >= 0x80 {
		// Take the whole rune for the error message.
		for _, rr := range l.src[l.pos:] {
			r = rr
			break
		}
	}
	return Token{}, fmt.Errorf("unexpected character %q at offset %d", r, start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '#' || c == '$' || isDigit(c) || unicode.IsLetter(rune(c))
}
