// Package client is the Open Client analog: a small library programs use
// to talk to the SQL server or — identically and transparently — to the
// ECA agent's gateway. It is the only API the example applications need.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/tds"
)

// Conn is one logged-in connection. It is safe for concurrent use; requests
// are serialized on the wire.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Options configures Connect.
type Options struct {
	// User is the login name; defaults to "dbo".
	User string
	// Database is an optional initial database.
	Database string
	// Timeout bounds the dial; zero means no timeout.
	Timeout time.Duration
}

// Connect dials addr and performs the login handshake.
func Connect(addr string, opts Options) (*Conn, error) {
	if opts.User == "" {
		opts.User = "dbo"
	}
	d := net.Dialer{Timeout: opts.Timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := tds.WritePacket(conn, tds.MarshalLogin(tds.Login{User: opts.User, Database: opts.Database})); err != nil {
		conn.Close()
		return nil, err
	}
	pkt, err := tds.ReadPacket(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := tds.UnmarshalLoginAck(pkt)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !ack.OK {
		conn.Close()
		return nil, fmt.Errorf("login rejected: %s", ack.Message)
	}
	return &Conn{conn: conn}, nil
}

// Exec sends a SQL script (GO-separated batches allowed) and materializes
// the full response. A server-reported error is returned as
// *tds.ServerError together with the results that preceded it.
func (c *Conn) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := tds.WritePacket(c.conn, tds.MarshalLanguage(sql)); err != nil {
		return nil, err
	}
	return tds.ReadResponse(c.conn)
}

// MustExec is Exec for program setup paths: it returns only the first
// error.
func (c *Conn) MustExec(sql string) error {
	_, err := c.Exec(sql)
	return err
}

// Query runs sql and returns the last result set that has a schema, which
// is the common "run one SELECT" case.
func (c *Conn) Query(sql string) (*sqltypes.ResultSet, error) {
	results, err := c.Exec(sql)
	if err != nil {
		return nil, err
	}
	for i := len(results) - 1; i >= 0; i-- {
		if results[i].Schema != nil {
			return results[i], nil
		}
	}
	return &sqltypes.ResultSet{}, nil
}

// Messages runs sql and returns all informational messages (PRINT output,
// trigger chatter) in order.
func (c *Conn) Messages(sql string) ([]string, error) {
	results, err := c.Exec(sql)
	var msgs []string
	for _, rs := range results {
		msgs = append(msgs, rs.Messages...)
	}
	return msgs, err
}

// Close shuts the connection down.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
