package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/server"
	"github.com/activedb/ecaagent/internal/tds"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := server.New(engine.New(catalog.New()))
	srv.Logf = func(string, ...any) {}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestConnectDefaultsAndClose(t *testing.T) {
	addr := startServer(t)
	c, err := Connect(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query("select user_name()")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Str() != "dbo" {
		t.Errorf("default user: %v", rs.Rows[0])
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("select 1"); err == nil {
		t.Error("exec after close succeeded")
	}
}

func TestConnectFailures(t *testing.T) {
	if _, err := Connect("127.0.0.1:1", Options{Timeout: time.Second}); err == nil {
		t.Error("connect to dead port succeeded")
	}
	addr := startServer(t)
	if _, err := Connect(addr, Options{Database: "missing"}); err == nil {
		t.Error("login to missing database succeeded")
	}
}

func TestQueryPicksLastRowSet(t *testing.T) {
	addr := startServer(t)
	c, _ := Connect(addr, Options{})
	defer c.Close()
	if err := c.MustExec("create database d use d create table t (a int null) insert t values (1)"); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query("use d select 1 select a from t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int() != 1 {
		t.Errorf("rows: %v", rs.Rows)
	}
	// Query over a script with no result sets returns an empty set.
	rs, err = c.Query("print 'nothing'")
	if err != nil || rs.Schema != nil {
		t.Errorf("no-rows query: %+v %v", rs, err)
	}
}

func TestMessagesCollectsInOrder(t *testing.T) {
	addr := startServer(t)
	c, _ := Connect(addr, Options{})
	defer c.Close()
	msgs, err := c.Messages("print 'a' print 'b' print 'c'")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(msgs) != "[a b c]" {
		t.Errorf("messages: %v", msgs)
	}
}

func TestServerErrorsSurviveAndPartialResults(t *testing.T) {
	addr := startServer(t)
	c, _ := Connect(addr, Options{})
	defer c.Close()
	if err := c.MustExec("create database d use d create table t (a int null) insert t values (5)"); err != nil {
		t.Fatal(err)
	}
	results, err := c.Exec("use d select a from t select * from ghost")
	var se *tds.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want ServerError, got %v", err)
	}
	found := false
	for _, rs := range results {
		if rs.Schema != nil && len(rs.Rows) == 1 && rs.Rows[0][0].Int() == 5 {
			found = true
		}
	}
	if !found {
		t.Error("partial results before the error were lost")
	}
	// Messages also returns partial output with the error.
	msgs, err := c.Messages("print 'before' select * from ghost")
	if err == nil || len(msgs) != 1 || msgs[0] != "before" {
		t.Errorf("partial messages: %v %v", msgs, err)
	}
}

func TestConnSerializesConcurrentUse(t *testing.T) {
	addr := startServer(t)
	c, _ := Connect(addr, Options{})
	defer c.Close()
	if err := c.MustExec("create database d use d create table t (a int null)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.MustExec(fmt.Sprintf("insert t values (%d)", g*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rs, err := c.Query("select count(*) from t")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int() != 16*20 {
		t.Errorf("count: %v", rs.Rows[0])
	}
}

func TestGoBatchesThroughClient(t *testing.T) {
	addr := startServer(t)
	c, _ := Connect(addr, Options{})
	defer c.Close()
	// CREATE PROCEDURE must be alone in its batch; GO separation makes a
	// single Exec call work.
	err := c.MustExec(`create database d
go
use d
create table t (a int null)
go
create procedure p as select count(*) from t
go
insert t values (1)
execute p
go`)
	if err != nil {
		t.Fatal(err)
	}
}
