package agent

import "testing"

func TestStatsCounters(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")

	if s := r.agent.Stats(); s != (Stats{}) {
		t.Fatalf("fresh agent has non-zero stats: %+v", s)
	}

	if _, err := cs.Exec("create trigger t on stock for insert event ev as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('A', 1)"); err != nil {
		t.Fatal(err)
	}
	waitAction(t, r.agent)
	r.agent.Deliver("garbage datagram")

	s := r.agent.Stats()
	if s.ECACommands != 1 {
		t.Errorf("ECACommands = %d", s.ECACommands)
	}
	if s.PassThroughBatches != 1 {
		t.Errorf("PassThroughBatches = %d", s.PassThroughBatches)
	}
	if s.NotificationsReceived != 2 { // one real, one garbage
		t.Errorf("NotificationsReceived = %d", s.NotificationsReceived)
	}
	if s.NotificationsDropped != 1 {
		t.Errorf("NotificationsDropped = %d", s.NotificationsDropped)
	}
	if s.ActionsRun != 1 || s.ActionsFailed != 0 {
		t.Errorf("actions: %+v", s)
	}

	// A failing action increments ActionsFailed.
	if _, err := cs.Exec("create trigger t2 event ev as select * from nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('B', 2)"); err != nil {
		t.Fatal(err)
	}
	waitAction(t, r.agent) // t
	waitAction(t, r.agent) // t2 (failed)
	s = r.agent.Stats()
	if s.ActionsRun != 3 || s.ActionsFailed != 1 {
		t.Errorf("after failure: %+v", s)
	}

	// Drops count as ECA commands too.
	if _, err := cs.Exec("drop trigger t2"); err != nil {
		t.Fatal(err)
	}
	if got := r.agent.Stats().ECACommands; got != 3 {
		t.Errorf("ECACommands after drop = %d", got)
	}
}
