package agent

import (
	"sync"
	"testing"
)

func TestStatsCounters(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")

	if s := r.agent.Stats(); s != (Stats{}) {
		t.Fatalf("fresh agent has non-zero stats: %+v", s)
	}

	if _, err := cs.Exec("create trigger t on stock for insert event ev as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('A', 1)"); err != nil {
		t.Fatal(err)
	}
	waitAction(t, r.agent)
	r.agent.Deliver("garbage datagram")

	s := r.agent.Stats()
	if s.ECACommands != 1 {
		t.Errorf("ECACommands = %d", s.ECACommands)
	}
	if s.PassThroughBatches != 1 {
		t.Errorf("PassThroughBatches = %d", s.PassThroughBatches)
	}
	if s.NotificationsReceived != 2 { // one real, one garbage
		t.Errorf("NotificationsReceived = %d", s.NotificationsReceived)
	}
	if s.NotificationsDropped != 1 {
		t.Errorf("NotificationsDropped = %d", s.NotificationsDropped)
	}
	if s.ActionsRun != 1 || s.ActionsFailed != 0 {
		t.Errorf("actions: %+v", s)
	}

	// A failing action increments ActionsFailed.
	if _, err := cs.Exec("create trigger t2 event ev as select * from nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('B', 2)"); err != nil {
		t.Fatal(err)
	}
	waitAction(t, r.agent) // t
	waitAction(t, r.agent) // t2 (failed)
	s = r.agent.Stats()
	if s.ActionsRun != 3 || s.ActionsFailed != 1 {
		t.Errorf("after failure: %+v", s)
	}

	// Drops count as ECA commands too.
	if _, err := cs.Exec("drop trigger t2"); err != nil {
		t.Fatal(err)
	}
	if got := r.agent.Stats().ECACommands; got != 3 {
		t.Errorf("ECACommands after drop = %d", got)
	}
}

// TestResilienceStatsSnapshot covers the recovery and dead-letter counters
// the fault-tolerant pipeline added to Stats.
func TestResilienceStatsSnapshot(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	r := newChaosRig(t, nil, func(cfg *Config) {
		cfg.ActionBuffer = 1
		cfg.Logf = func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, format)
			mu.Unlock()
		}
	})
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	ev, tbl := "sentineldb.sharma.addStk", "sentineldb.sharma.stock"
	// vNo 2 first: a gap (1 replayed), then 2; vNo 1 late: a duplicate.
	r.agent.Deliver(notifMsg(ev, tbl, "insert", 2))
	r.agent.Deliver(notifMsg(ev, tbl, "insert", 1))
	r.agent.WaitActions()

	st := r.agent.Stats()
	if st.GapsDetected != 1 || st.OccurrencesRecovered != 1 || st.NotificationsDuplicate != 1 {
		t.Errorf("recovery counters: %+v", st)
	}
	if st.ActionsRun != 2 {
		t.Errorf("ActionsRun = %d", st.ActionsRun)
	}
	// Two actions completed against a 1-slot ActionDone buffer that nobody
	// reads: exactly one report was dropped, counted, and logged once.
	if st.ActionReportsDropped != 1 {
		t.Errorf("ActionReportsDropped = %d", st.ActionReportsDropped)
	}
	mu.Lock()
	drops := 0
	for _, l := range logs {
		if l == "agent: ActionDone buffer full; dropping completed-action reports (see Stats.ActionReportsDropped)" {
			drops++
		}
	}
	mu.Unlock()
	if drops != 1 {
		t.Errorf("drop episode logged %d times", drops)
	}
	if st.ActionsDeadLettered != 0 || st.UpstreamRetries != 0 || st.UpstreamReconnects != 0 {
		t.Errorf("unexpected failure counters on clean run: %+v", st)
	}
}
