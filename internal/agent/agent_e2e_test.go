package agent

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/server"
)

// rig is an in-process test deployment: engine + agent wired with direct
// (non-UDP) notification delivery for determinism.
type rig struct {
	eng   *engine.Engine
	agent *Agent
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := engine.New(catalog.New())
	a, err := New(Config{
		Dial:       LocalDialer(eng),
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	// Seed the paper's running example: sentineldb with sharma's stock
	// table.
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database sentineldb
use sentineldb
create table stock (symbol varchar(10), price float null)`); err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, agent: a}
}

func (r *rig) session(t *testing.T, user, db string) *ClientSession {
	t.Helper()
	cs, err := r.agent.NewClientSession(user, db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	return cs
}

// waitAction reads the next completed action, failing on timeout.
func waitAction(t *testing.T, a *Agent) ActionResult {
	t.Helper()
	select {
	case res := <-a.ActionDone:
		return res
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for rule action")
		return ActionResult{}
	}
}

// Example 1 of the paper, §5.2.
const example1 = `create trigger t_addStk on stock for insert
event addStk
as print 'trigger t_addStk on primitive event addStk occurs'
select * from stock`

func TestExample1EndToEnd(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")

	results, err := cs.Exec(example1)
	if err != nil {
		t.Fatal(err)
	}
	var created bool
	for _, rs := range results {
		for _, m := range rs.Messages {
			if strings.Contains(m, "primitive event sentineldb.sharma.addStk created") {
				created = true
			}
		}
	}
	if !created {
		t.Fatalf("creation messages: %+v", results)
	}

	// Plain SQL flows through the agent transparently and fires the rule.
	if _, err := cs.Exec("insert stock values ('IBM', 101)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, r.agent)
	if res.Err != nil {
		t.Fatalf("action error: %v", res.Err)
	}
	if res.Rule != "sentineldb.sharma.t_addStk" || res.Event != "sentineldb.sharma.addStk" {
		t.Errorf("action identity: %+v", res)
	}
	if len(res.Messages) != 1 || !strings.Contains(res.Messages[0], "addStk occurs") {
		t.Errorf("action messages: %v", res.Messages)
	}
	// The action's SELECT * FROM stock saw the inserted row.
	var sawRow bool
	for _, rs := range res.Results {
		if rs.Schema != nil && len(rs.Rows) == 1 {
			sawRow = true
		}
	}
	if !sawRow {
		t.Errorf("action results: %+v", res.Results)
	}

	// Persistence: Figure 5 and Figure 7 rows exist, vNo was bumped.
	rs, err := cs.Query("select eventName, vNo from SysPrimitiveEvent")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str() != "sentineldb.sharma.addStk" || rs.Rows[0][1].Int() != 1 {
		t.Errorf("SysPrimitiveEvent: %v", rs.Rows)
	}
	rs, err = cs.Query("select triggerName, eventName from SysEcaTrigger")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str() != "sentineldb.sharma.t_addStk" {
		t.Errorf("SysEcaTrigger: %v", rs.Rows)
	}
	// Shadow table recorded the tuple with its occurrence number.
	rs, err = cs.Query("select symbol, vNo from sentineldb.sharma.stock_inserted")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str() != "IBM" || rs.Rows[0][1].Int() != 1 {
		t.Errorf("shadow: %v", rs.Rows)
	}
}

// Example 2 of the paper, §5.3: composite event addDel = delStk ^ addStk.
func TestExample2CompositeEndToEnd(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")

	setup := []string{
		"create trigger t_addStk on stock for insert event addStk as print 'add'",
		"create trigger t_delStk on stock for delete event delStk as print 'del'",
		`create trigger t_and
event addDel = delStk ^ addStk
RECENT
as
print 'trigger t_and on composite event addDel = delStk ^ addStk'
select symbol, price from stock.inserted`,
	}
	for _, sql := range setup {
		if _, err := cs.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if _, err := cs.Exec("insert stock values ('IBM', 50) insert stock values ('T', 20)"); err != nil {
		t.Fatal(err)
	}
	// Two addStk occurrences so far: t_addStk ran twice; drain them.
	for i := 0; i < 2; i++ {
		res := waitAction(t, r.agent)
		if res.Rule != "sentineldb.sharma.t_addStk" {
			t.Fatalf("unexpected rule %s", res.Rule)
		}
	}
	// Delete completes the AND.
	if _, err := cs.Exec("delete stock where symbol = 'T'"); err != nil {
		t.Fatal(err)
	}
	var andRes ActionResult
	got := map[string]ActionResult{}
	for i := 0; i < 2; i++ { // t_delStk and t_and, order not guaranteed
		res := waitAction(t, r.agent)
		got[res.Rule] = res
	}
	andRes, ok := got["sentineldb.sharma.t_and"]
	if !ok {
		t.Fatalf("t_and never fired: %v", got)
	}
	if andRes.Err != nil {
		t.Fatalf("t_and action error: %v", andRes.Err)
	}
	if len(andRes.Messages) == 0 || !strings.Contains(andRes.Messages[0], "composite event addDel") {
		t.Errorf("t_and messages: %v", andRes.Messages)
	}
	// RECENT context: the materialized stock.inserted context holds the
	// most recent insert ('T', vNo 2).
	var rows int
	var symbol string
	for _, rs := range andRes.Results {
		if rs.Schema != nil && len(rs.Rows) > 0 {
			rows = len(rs.Rows)
			symbol = rs.Rows[0][0].Str()
		}
	}
	if rows != 1 || symbol != "T" {
		t.Errorf("RECENT context rows: %d %q", rows, symbol)
	}
	// SysCompositeEvent row persisted with the expanded expression.
	rs, err := cs.Query("select eventName, eventDescribe from SysCompositeEvent")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || !strings.Contains(rs.Rows[0][1].Str(), "sentineldb.sharma.delStk") {
		t.Errorf("SysCompositeEvent: %v", rs.Rows)
	}
	// sysContext received the constituents' table occurrences.
	rs, err = cs.Query("select tableName, context, vNo from sysContext order by vNo")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Error("sysContext empty after composite action")
	}
}

func TestMultipleTriggersOnOneEvent(t *testing.T) {
	// §2.2 limitation 5 lifted: multiple triggers on the same event, with
	// priority ordering.
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk as print 'one'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("create trigger t2 event addStk 10 as print 'two'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("create trigger t3 event addStk 5 as print 'three'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	var rules []string
	for i := 0; i < 3; i++ {
		res := waitAction(t, r.agent)
		rules = append(rules, res.Rule)
	}
	// Actions run on goroutines serialized by the action mutex in firing
	// order: priority 10 (t2), then 5 (t3), then 0 (t1).
	want := []string{"sentineldb.sharma.t2", "sentineldb.sharma.t3", "sentineldb.sharma.t1"}
	if fmt.Sprint(rules) != fmt.Sprint(want) {
		t.Errorf("rule order: %v want %v", rules, want)
	}
}

func TestDropECATrigger(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk as print 'one'"); err != nil {
		t.Fatal(err)
	}
	msgs, err := cs.Exec("drop trigger t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 || len(msgs[0].Messages) == 0 || !strings.Contains(msgs[0].Messages[0], "dropped") {
		t.Errorf("drop output: %+v", msgs)
	}
	// The event persists (events outlive triggers); rule is gone.
	if len(r.agent.Triggers()) != 0 {
		t.Errorf("triggers left: %v", r.agent.Triggers())
	}
	if len(r.agent.Events()) != 1 {
		t.Errorf("events: %v", r.agent.Events())
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	r.agent.WaitActions()
	select {
	case res := <-r.agent.ActionDone:
		t.Fatalf("dropped trigger fired: %+v", res)
	default:
	}
	// SysEcaTrigger row removed.
	rs, err := cs.Query("select count(*) from SysEcaTrigger")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int() != 0 {
		t.Error("SysEcaTrigger row not deleted")
	}
	// Dropping an unknown/native trigger is not intercepted; the server's
	// error comes back.
	if _, err := cs.Exec("drop trigger nosuch"); err == nil {
		t.Error("drop of missing trigger succeeded")
	}
	// The event can be reused by a new trigger.
	if _, err := cs.Exec("create trigger t4 event addStk as print 'four'"); err != nil {
		t.Fatal(err)
	}
}

func TestEventReuseAndDuplicateGuards(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	// Same event name again → error.
	if _, err := cs.Exec("create trigger t2 on stock for insert event addStk as print 'x'"); err == nil {
		t.Error("duplicate event accepted")
	}
	// A second primitive event on the same (table, op) → error explaining
	// the native one-trigger limitation.
	if _, err := cs.Exec("create trigger t3 on stock for insert event other as print 'x'"); err == nil {
		t.Error("second primitive event on same (table, op) accepted")
	}
	// Same (table, other op) is fine.
	if _, err := cs.Exec("create trigger t4 on stock for delete event delStk as print 'x'"); err != nil {
		t.Error(err)
	}
	// Duplicate trigger name → error.
	if _, err := cs.Exec("create trigger t1 event addStk as print 'x'"); err == nil {
		t.Error("duplicate trigger accepted")
	}
	// Composite over undefined event → error.
	if _, err := cs.Exec("create trigger t5 event comp = addStk ^ ghost as print 'x'"); err == nil {
		t.Error("composite over undefined event accepted")
	}
}

func TestTransparencyPassThrough(t *testing.T) {
	// Fig 1: a client sees the same results through the agent as directly.
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	direct := r.eng.NewSession("sharma")
	if err := direct.Use("sentineldb"); err != nil {
		t.Fatal(err)
	}

	script := `insert stock values ('IBM', 100)
insert stock values ('T', 20)`
	if _, err := cs.Exec(script); err != nil {
		t.Fatal(err)
	}
	throughAgent, err := cs.Query("select symbol, price from stock order by symbol")
	if err != nil {
		t.Fatal(err)
	}
	directRes, err := direct.ExecScript("select symbol, price from stock order by symbol")
	if err != nil {
		t.Fatal(err)
	}
	if throughAgent.Format() != directRes[0].Format() {
		t.Errorf("results differ:\nagent:\n%s\ndirect:\n%s", throughAgent.Format(), directRes[0].Format())
	}
	// Errors pass through too.
	if _, err := cs.Exec("select * from nonexistent"); err == nil {
		t.Error("pass-through error lost")
	}
}

func TestDeferredCouplingEndToEnd(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk DEFERRED as print 'deferred ran'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-r.agent.ActionDone:
		t.Fatalf("deferred rule ran immediately: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}
	r.agent.FlushDeferred()
	res := waitAction(t, r.agent)
	if len(res.Messages) == 0 || res.Messages[0] != "deferred ran" {
		t.Errorf("deferred action: %+v", res)
	}
}

func TestUseTracking(t *testing.T) {
	r := newRig(t)
	// Seed a second database.
	seed := r.eng.NewSession("li")
	if _, err := seed.ExecScript("create database orders use orders create table po (id int null)"); err != nil {
		t.Fatal(err)
	}
	cs := r.session(t, "li", "sentineldb")
	if _, err := cs.Exec("use orders"); err != nil {
		t.Fatal(err)
	}
	if cs.Database() != "orders" {
		t.Fatalf("db tracking: %q", cs.Database())
	}
	if _, err := cs.Exec("create trigger t_po on po for insert event poAdded as print 'po'"); err != nil {
		t.Fatal(err)
	}
	if got := r.agent.Events(); len(got) != 1 || got[0] != "orders.li.poAdded" {
		t.Errorf("expanded into wrong db: %v", got)
	}
}

func TestRecoveryRestoresRules(t *testing.T) {
	eng := engine.New(catalog.New())
	quiet := func(string, ...any) {}
	a1, err := New(Config{Dial: LocalDialer(eng), NotifyAddr: "-", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetNotifier(func(h string, p int, msg string) error { a1.Deliver(msg); return nil })
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript("create database sentineldb use sentineldb create table stock (symbol varchar(10), price float null)"); err != nil {
		t.Fatal(err)
	}
	cs, err := a1.NewClientSession("sharma", "sentineldb")
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"create trigger t_add on stock for insert event addStk as print 'add ran'",
		"create trigger t_del on stock for delete event delStk as print 'del ran'",
		"create trigger t_and event both = addStk ^ delStk CUMULATIVE as print 'and ran'",
	} {
		if _, err := cs.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	cs.Close()
	a1.Close()

	// Restart: a fresh agent over the same (persistent) engine state.
	a2, err := New(Config{Dial: LocalDialer(eng), NotifyAddr: "-", Logf: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	eng.SetNotifier(func(h string, p int, msg string) error { a2.Deliver(msg); return nil })

	if got := a2.Events(); len(got) != 3 {
		t.Fatalf("restored events: %v", got)
	}
	if got := a2.Triggers(); len(got) != 3 {
		t.Fatalf("restored triggers: %v", got)
	}
	// The restored rulebase still detects: insert + delete completes the
	// cumulative AND.
	sess := eng.NewSession("sharma")
	_ = sess.Use("sentineldb")
	if _, err := sess.ExecScript("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecScript("delete stock where symbol = 'X'"); err != nil {
		t.Fatal(err)
	}
	seenRules := map[string]bool{}
	for i := 0; i < 3; i++ {
		res := waitAction(t, a2)
		if res.Err != nil {
			t.Fatalf("restored action failed: %v", res.Err)
		}
		seenRules[res.Rule] = true
	}
	for _, want := range []string{"sentineldb.sharma.t_add", "sentineldb.sharma.t_del", "sentineldb.sharma.t_and"} {
		if !seenRules[want] {
			t.Errorf("rule %s did not fire after recovery (saw %v)", want, seenRules)
		}
	}
}

// TestGatewayTCPEndToEnd is the full paper deployment: SQL server and ECA
// agent as separate TCP services, UDP notifications, a stock client
// connected to the agent's gateway.
func TestGatewayTCPEndToEnd(t *testing.T) {
	srv := server.New(engine.New(catalog.New()))
	srv.Logf = func(string, ...any) {}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a, err := New(Config{
		Dial: TCPDialer(srv.Addr()),
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.ListenGateway("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	c, err := client.Connect(a.GatewayAddr(), client.Options{User: "sharma"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.MustExec(`create database sentineldb
go
use sentineldb
create table stock (symbol varchar(10), price float null)
go`); err != nil {
		t.Fatal(err)
	}
	if err := c.MustExec(example1); err != nil {
		t.Fatal(err)
	}
	if err := c.MustExec("insert stock values ('IBM', 101)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, a)
	if res.Err != nil || !strings.Contains(strings.Join(res.Messages, " "), "addStk occurs") {
		t.Fatalf("action over TCP/UDP: %+v", res)
	}
	// Transparency: the same client connection serves ordinary queries.
	rs, err := c.Query("select count(*) from stock")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int() != 1 {
		t.Errorf("count: %v", rs.Rows)
	}
}
