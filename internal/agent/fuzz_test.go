package agent

import (
	"testing"
	"testing/quick"
)

// The Language Filter classifies every byte sequence a client could send;
// none of its entry points may panic.

func TestClassifiersNeverPanic(t *testing.T) {
	f := func(s string) bool {
		_ = IsECACreateTrigger(s)
		_, _ = ParseDropTrigger(s)
		_, _, _ = splitLeadingUse(s)
		_, _ = lastUseTarget(s)
		_ = batchCommits(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseECATriggerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = ParseECATrigger("create trigger " + s)
		_, _ = ParseECATrigger(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseNotificationNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _, _, _, _ = parseNotification(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRewriteActionNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _, _ = rewriteAction("db", "u", s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Adversarial inputs that historically trip token-splicing rewriters.
func TestRewriteActionAdversarial(t *testing.T) {
	cases := []string{
		"select * from a.inserted, b.deleted where x = 'a.inserted'",
		"select 'string with inserted keyword' from t",
		"print 'unterminated",     // lexer error must surface, not panic
		"select * from .inserted", // leading dot
		"select * from inserted",  // bare pseudo-table: untouched
	}
	for _, src := range cases {
		out, shadows, err := rewriteAction("db", "u", src)
		switch src {
		case "print 'unterminated":
			if err == nil {
				t.Errorf("lexer error swallowed for %q", src)
			}
		case "select * from a.inserted, b.deleted where x = 'a.inserted'":
			if err != nil || len(shadows) != 2 {
				t.Errorf("rewrite %q: %v %v", src, shadows, err)
			}
			// The string literal must be untouched.
			if out == "" || !containsFold(out, "'a.inserted'") {
				t.Errorf("literal rewritten: %q", out)
			}
		case "select * from inserted":
			if err != nil || out != src || shadows != nil {
				t.Errorf("bare pseudo-table changed: %q %v %v", out, shadows, err)
			}
		}
	}
}
