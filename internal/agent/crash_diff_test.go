package agent

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// The crash-differential harness: for every Snoop operator under every
// parameter context, the same workload is driven twice — once against a
// crash-free oracle agent, once against a subject agent that is killed at
// a named crash point mid-run, loses every unsynced write
// (faults.CrashDir), and restarts over the surviving files. The recovered
// subject must produce exactly the oracle's occurrence set and exactly
// the oracle's rule-action execution multiset: occurrences are neither
// lost nor detected twice, and no action runs zero times or twice.

// cdClockBase anchors both runs' ManualClocks so temporal deadlines and
// occurrence timestamps are identical across oracle and subject.
var cdClockBase = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// actionRecorder captures rule-action executions at the upstream Exec
// level — the closest observable point to the server running the action
// procedure, which is what exactly-once is about. The recorded batch
// embeds the constituent vNos (context-table population), so the string
// identifies the precise occurrence the action ran for.
type actionRecorder struct {
	mu      sync.Mutex
	batches []string
}

func isActionBatch(b string) bool {
	for _, line := range strings.Split(b, "\n") {
		if strings.HasPrefix(line, "execute ") {
			return true
		}
	}
	return false
}

func (r *actionRecorder) record(batch string) {
	if !isActionBatch(batch) {
		return
	}
	r.mu.Lock()
	r.batches = append(r.batches, batch)
	r.mu.Unlock()
}

func (r *actionRecorder) snapshot() []string {
	r.mu.Lock()
	out := append([]string(nil), r.batches...)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

type recordingUpstream struct {
	up  Upstream
	rec *actionRecorder
}

func (u recordingUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	rs, err := u.up.Exec(sql)
	if err == nil {
		u.rec.record(sql)
	}
	return rs, err
}

func (u recordingUpstream) Close() error { return u.up.Close() }

// recordingDialer wraps the in-process dialer so every successful Exec is
// observable; only action batches are kept.
func recordingDialer(eng *engine.Engine, rec *actionRecorder) UpstreamDialer {
	inner := LocalDialer(eng)
	return func(user, db string) (Upstream, error) {
		up, err := inner(user, db)
		if err != nil {
			return nil, err
		}
		return recordingUpstream{up: up, rec: rec}, nil
	}
}

// occRecorder collects the set of primitive occurrences the LED processed
// (Config.Forward). Journal replay re-forwards records, so the stream is
// compared as a set keyed by (event, vNo): recovery must neither lose an
// occurrence nor invent one.
type occRecorder struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (r *occRecorder) add(p led.Primitive) {
	r.mu.Lock()
	if r.seen == nil {
		r.seen = make(map[string]bool)
	}
	r.seen[fmt.Sprintf("%s|%d", p.Event, p.VNo)] = true
	r.mu.Unlock()
}

func (r *occRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.seen))
	for k := range r.seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cdStep is one workload step: advance the logical clock, insert into a
// monitored table, or cut an explicit checkpoint.
type cdStep struct {
	advance time.Duration
	insert  string
	ckpt    bool
}

// cdScript interleaves constituent inserts of every operator with clock
// advances (driving P/P*/PLUS/temporal timers) and two mid-run
// checkpoints, so a crash can land before, between, and after cuts.
var cdScript = []cdStep{
	{advance: time.Second, insert: "ta"},
	{advance: time.Second, insert: "tb"},
	{ckpt: true},
	{advance: time.Second, insert: "tc"},
	{advance: time.Second, insert: "ta"},
	{insert: "tb"},
	{advance: 2 * time.Second, insert: "tc"},
	{ckpt: true},
	{advance: time.Second, insert: "ta"},
	{insert: "tb"},
	{insert: "tc"},
	{advance: 5 * time.Second},
}

// cdOperators covers every Snoop operator (the temporal case is the bare
// absolute-time event, 7s past the clock base, crossed mid-script).
var cdOperators = []struct{ name, expr string }{
	{"or", "ea | eb"},
	{"and", "ea ^ eb"},
	{"seq", "ea ; eb"},
	// not: eb terminates with ec2 forbidden — the reverse ordering never
	// fires under cdScript (every ea..ec2 span contains an eb).
	{"not", "not(ea, ec2, eb)"},
	{"aperiodic", "A(ea, eb, ec2)"},
	{"aperiodic-star", "A*(ea, eb, ec2)"},
	{"periodic", "P(ea, [2 sec], ec2)"},
	{"periodic-star", "P*(ea, [2 sec], ec2)"},
	{"plus", "ea plus [3 sec]"},
	{"temporal", "[2030-01-01 00:00:07]"},
	// CEP cells (ISSUE 8): the ring + armed-boundary state must survive
	// every crash point, and the aggregate thresholds must round-trip
	// through the catalog's expression string on recovery.
	{"window", "window(ea, [3 sec])"},
	{"window-slide", "window(ea | eb, [4 sec], slide [2 sec])"},
	{"agg-count", "agg(count, vno, ea | eb, [3 sec]) >= 2"},
	{"agg-max", "agg(max, vno, ea | eb, [4 sec], slide [2 sec]) != -1"},
	{"during", "(eb ; ec2) during (ea ; ea)"},
	{"overlaps", "(ea ; ec2) overlaps (eb ; eb)"},
}

var cdContexts = []string{"RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"}

// cdCrashes are the armed crash points. The nth counts include hits from
// the initial recovery checkpoint New cuts (epoch 1), so ckpt.* with
// nth=2 trips at the first in-script checkpoint.
var cdCrashes = []struct {
	point string
	nth   int
}{
	{"ingest.preWAL", 2},
	{"ingest.postWAL", 4},
	{"action.preExec", 3},
	{"action.postDone", 2},
	{"ckpt.beforeRename", 2},
	{"ckpt.afterRename", 2},
	{"ckpt.begin", 3},
}

// cdRun is one agent lifetime-spanning run: the engine, recorders, and
// durable directory survive agent restarts; the clock is re-created at
// the crash instant (a dead process's pending timers die with it — the
// restored ones re-arm on the new clock at their original deadlines).
type cdRun struct {
	t      *testing.T
	eng    *engine.Engine
	fs     *faults.CrashDir
	acts   *actionRecorder
	occs   *occRecorder
	clock  *led.ManualClock
	agent  *Agent
	crash  *faults.CrashSet
	driver *engine.Session
}

func newCDRun(t *testing.T, seed int64, crash *faults.CrashSet) *cdRun {
	t.Helper()
	r := &cdRun{
		t:     t,
		eng:   engine.New(catalog.New()),
		fs:    faults.NewCrashDir(seed),
		acts:  &actionRecorder{},
		occs:  &occRecorder{},
		clock: led.NewManualClock(cdClockBase),
		crash: crash,
	}
	seed0 := r.eng.NewSession("sharma")
	if _, err := seed0.ExecScript(`create database crashdb
use crashdb
create table ta (x int null)
create table tb (x int null)
create table tc (x int null)`); err != nil {
		t.Fatal(err)
	}
	r.startAgent(crash)
	return r
}

// startAgent boots one agent incarnation over the surviving durable
// directory and rebinds the engine's notifier to it.
func (r *cdRun) startAgent(crash *faults.CrashSet) {
	r.t.Helper()
	a, err := New(Config{
		Dial:          recordingDialer(r.eng, r.acts),
		NotifyAddr:    "-",
		Clock:         r.clock,
		IngestWorkers: -1,
		Forward:       r.occs.add,
		Logf:          func(string, ...any) {},
		Durability:    &Durability{FS: r.fs, WALSync: WALSyncAlways, Crash: crash},
	})
	if err != nil {
		r.t.Fatalf("starting agent: %v", err)
	}
	r.agent = a
	a2 := a
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		a2.Deliver(msg)
		return nil
	})
	r.driver = r.eng.NewSession("sharma")
	if err := r.driver.Use("crashdb"); err != nil {
		r.t.Fatal(err)
	}
}

// setup installs the per-cell triggers: three primitive events and the
// composite under test.
func (r *cdRun) setup(expr, ctx string) {
	r.t.Helper()
	cs, err := r.agent.NewClientSession("sharma", "crashdb")
	if err != nil {
		r.t.Fatal(err)
	}
	defer cs.Close()
	for _, ddl := range []string{
		"create trigger cd_pa on ta for insert event ea as print 'pa'",
		"create trigger cd_pb on tb for insert event eb as print 'pb'",
		"create trigger cd_pc on tc for insert event ec2 as print 'pc'",
		fmt.Sprintf("create trigger cd_comp event comp = %s %s as print 'comp'", expr, ctx),
	} {
		if _, err := cs.Exec(ddl); err != nil {
			r.t.Fatalf("setup %q: %v", ddl, err)
		}
	}
}

// step executes one workload step, swallowing a simulated-crash panic
// that unwinds out of the delivery or checkpoint path.
func (r *cdRun) step(s cdStep) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := faults.IsCrash(rec); !ok {
				panic(rec)
			}
		}
	}()
	if s.advance > 0 {
		r.clock.Advance(s.advance)
	}
	if s.insert != "" {
		if _, err := r.driver.ExecScript("insert " + s.insert + " values (1)"); err != nil {
			r.t.Errorf("insert %s: %v", s.insert, err)
		}
	}
	if s.ckpt {
		if err := r.agent.Checkpoint(); err != nil {
			r.t.Errorf("checkpoint: %v", err)
		}
	}
}

// restart models the machine coming back: in-flight work quiesces (every
// completion it produced before the power cut is pre-crash history), the
// directory drops all unsynced writes, and a fresh incarnation recovers
// over the survivors. The dead incarnation is abandoned, not closed — a
// dead process runs no shutdown path; its clock (and thus its pending
// timer callbacks) is never advanced again.
func (r *cdRun) restart() {
	r.t.Helper()
	r.agent.WaitActions()
	r.fs.Crash()
	r.fs.Restart()
	r.clock = led.NewManualClock(r.clock.Now())
	r.startAgent(nil)
}

// run drives the full script, restarting once if the armed crash point
// trips, and returns with all actions drained.
func (r *cdRun) run() {
	restarted := false
	for _, s := range cdScript {
		r.step(s)
		// Quiesce after every step so spawned action goroutines reach
		// their crash points before the next step — otherwise whether the
		// simulated power cut lands inside this step or several steps
		// later would be a scheduling accident, not a test parameter.
		r.agent.WaitActions()
		if !restarted && r.crash.Tripped() != "" {
			r.restart()
			restarted = true
		}
	}
	r.agent.WaitActions()
}

func TestCrashDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("crash differential matrix is long")
	}
	cell := 0
	for _, op := range cdOperators {
		for _, ctx := range cdContexts {
			op, ctx, cell := op, ctx, cell
			t.Run(op.name+"/"+ctx, func(t *testing.T) {
				t.Parallel()
				oracle := newCDRun(t, 1, nil)
				oracle.setup(op.expr, ctx)
				oracle.run()
				wantActs := oracle.acts.snapshot()
				wantOccs := oracle.occs.snapshot()
				oracle.agent.Close()

				for i := 0; i < 3; i++ {
					spec := cdCrashes[(cell+i)%len(cdCrashes)]
					crash := faults.NewCrashSet()
					crash.Arm(spec.point, spec.nth)
					sub := newCDRun(t, int64(cell*31+i+2), crash)
					sub.setup(op.expr, ctx)
					sub.run()
					gotActs := sub.acts.snapshot()
					gotOccs := sub.occs.snapshot()
					tag := fmt.Sprintf("%s nth=%d (tripped=%q)", spec.point, spec.nth, crash.Tripped())
					if !equalStrings(wantOccs, gotOccs) {
						t.Errorf("%s: occurrence stream diverged\noracle: %v\nsubject: %v", tag, wantOccs, gotOccs)
					}
					if !equalStrings(wantActs, gotActs) {
						t.Errorf("%s: action stream diverged (%d vs %d)\nonly-oracle: %v\nonly-subject: %v",
							tag, len(wantActs), len(gotActs), diffStrings(wantActs, gotActs), diffStrings(gotActs, wantActs))
					}
					sub.agent.Close()
				}
			})
			cell++
		}
	}
}

// TestCrashDifferentialProducesActions guards the matrix against vacuous
// cells: every operator's crash-free oracle run must execute the
// composite's action at least once in at least one context, or the script
// never exercises the state the crash points are meant to threaten.
func TestCrashDifferentialProducesActions(t *testing.T) {
	for _, op := range cdOperators {
		op := op
		t.Run(op.name, func(t *testing.T) {
			t.Parallel()
			total := 0
			for _, ctx := range cdContexts {
				r := newCDRun(t, 1, nil)
				r.setup(op.expr, ctx)
				r.run()
				for _, b := range r.acts.snapshot() {
					if strings.Contains(b, "cd_comp") {
						total++
					}
				}
				r.agent.Close()
			}
			if total == 0 {
				t.Errorf("operator %s: composite action never executed in any context", op.name)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffStrings returns the sorted multiset difference a - b.
func diffStrings(a, b []string) []string {
	count := make(map[string]int)
	for _, s := range b {
		count[s]++
	}
	var out []string
	for _, s := range a {
		if count[s] > 0 {
			count[s]--
			continue
		}
		out = append(out, s)
	}
	return out
}
