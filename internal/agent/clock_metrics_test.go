package agent

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

// These tests pin the Clock seam the nowallclock analyzer enforces: with
// a ManualClock every latency and age the agent reports is exact, not
// approximately-zero. A raw time.Now() sneaking back into any of these
// paths turns the equalities below into flaky near-misses — and trips the
// analyzer before it gets that far.

var clockBase = time.Date(2024, 7, 1, 12, 0, 0, 0, time.UTC)

// startManualAgent boots an agent whose every timestamp flows from mc.
func startManualAgent(t *testing.T, r *durableRig, mc *led.ManualClock, reg *obs.Registry) *Agent {
	t.Helper()
	a := r.start(func(cfg *Config) {
		cfg.Clock = mc
		cfg.Metrics = reg
	})
	t.Cleanup(func() { a.Close() })
	return a
}

// TestCheckpointAgeExactUnderManualClock: the checkpoint-age gauge is
// computed through the seam, so advancing the manual clock 42s after a
// checkpoint reads back exactly 42.
func TestCheckpointAgeExactUnderManualClock(t *testing.T) {
	r := newDurableRig(t)
	mc := led.NewManualClock(clockBase)
	reg := obs.NewRegistry()
	a := startManualAgent(t, r, mc, reg)
	if err := a.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	mc.Advance(42 * time.Second)
	got, ok := promValue(reg, "eca_recovery_checkpoint_age_seconds")
	if !ok {
		t.Fatal("eca_recovery_checkpoint_age_seconds not rendered")
	}
	if got != 42 {
		t.Fatalf("checkpoint age = %v, want exactly 42", got)
	}
}

// TestResyncLatencyExactUnderManualClock: a resync sweep's latency
// histogram observes clock deltas, so with time frozen the sum is exactly
// zero while the count still advances.
func TestResyncLatencyExactUnderManualClock(t *testing.T) {
	r := newDurableRig(t)
	mc := led.NewManualClock(clockBase)
	a := startManualAgent(t, r, mc, obs.NewRegistry())
	before := a.met.resyncSec.Count() // startup recovery may have swept already
	if err := a.Resync(); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if c := a.met.resyncSec.Count(); c != before+1 {
		t.Fatalf("resync histogram count = %d, want %d", c, before+1)
	}
	if s := a.met.resyncSec.Sum(); s != 0 {
		t.Fatalf("resync histogram sum = %v, want exactly 0 (wall clock leaked into the measurement)", s)
	}
}

// TestActionLatencyExactUnderManualClock: rule-action latency spans the
// FIFO queue wait plus execution, both measured through the seam.
func TestActionLatencyExactUnderManualClock(t *testing.T) {
	r := newDurableRig(t)
	mc := led.NewManualClock(clockBase)
	a := startManualAgent(t, r, mc, obs.NewRegistry())
	cs := r.session(a)
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'hit'"); err != nil {
		t.Fatal(err)
	}
	drv := r.eng.NewSession("sharma")
	if err := drv.Use("sentineldb"); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.ExecBatch("insert into stock values ('IBM', 101)"); err != nil {
		t.Fatal(err)
	}
	<-a.ActionDone
	a.WaitActions()
	if c := a.met.actionSec.Count(); c != 1 {
		t.Fatalf("action histogram count = %d, want 1", c)
	}
	if s := a.met.actionSec.Sum(); s != 0 {
		t.Fatalf("action histogram sum = %v, want exactly 0", s)
	}
}

// promValue extracts one sample from the registry's Prometheus rendering
// (the only way to read a GaugeFunc back).
func promValue(reg *obs.Registry, name string) (float64, bool) {
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err == nil {
			return v, true
		}
	}
	return 0, false
}
