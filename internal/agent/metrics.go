package agent

import (
	"fmt"
	"time"

	"github.com/activedb/ecaagent/internal/obs"
)

// agentMetrics holds the agent's direct instruments. Counters that already
// exist as Stats atomics are exported through CounterFuncs instead of
// being double-counted; only the latency histograms and per-rule vectors
// are new state.
type agentMetrics struct {
	reg *obs.Registry

	// gateway (Language Filter) path
	gatewayBatchSec *obs.Histogram

	// Event Notifier receive path
	notifierDatagrams *obs.Counter
	notifierBytes     *obs.Counter
	binaryBatches     *obs.Counter

	// Action Handler path
	ruleRuns  *obs.CounterVec
	ruleFails *obs.CounterVec
	actionSec *obs.Histogram

	// recovery path
	resyncSweeps *obs.Counter
	resyncSec    *obs.Histogram
}

// initMetrics registers every agent instrument in reg and bridges the
// Stats counters. Called once from New, after the counters struct exists.
func (a *Agent) initMetrics(reg *obs.Registry) {
	m := &agentMetrics{reg: reg}

	cf := func(name, help string, v interface{ Load() uint64 }) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	cf("eca_notifications_received_total",
		"Notification datagrams delivered to the Event Notifier (UDP or in-process).", &a.ctr.notifReceived)
	cf("eca_notifications_delivered_total",
		"Well-formed, non-duplicate notifications signalled into the LED.", &a.ctr.notifDelivered)
	cf("eca_notifications_dropped_total",
		"Malformed notification datagrams discarded.", &a.ctr.notifDropped)
	cf("eca_notifications_duplicate_total",
		"Notifications suppressed by the per-event vNo watermark.", &a.ctr.notifDuplicate)
	cf("eca_notification_gaps_total",
		"vNo gaps observed in-stream or by the resync sweep.", &a.ctr.gapsDetected)
	cf("eca_occurrences_recovered_total",
		"Primitive occurrences replayed into the LED after notification loss.", &a.ctr.occRecovered)
	cf("eca_commands_total",
		"CREATE/DROP trigger commands intercepted by the Language Filter.", &a.ctr.ecaCommands)
	cf("eca_passthrough_batches_total",
		"SQL batches forwarded to the server untouched.", &a.ctr.passThrough)
	cf("eca_actions_run_total",
		"Completed rule actions.", &a.ctr.actionsRun)
	cf("eca_actions_failed_total",
		"Rule actions whose procedure returned an error.", &a.ctr.actionsFailed)
	cf("eca_actions_deadlettered_total",
		"Failed actions parked in the dead-letter queue.", &a.ctr.deadLettered)
	cf("eca_action_reports_dropped_total",
		"Completed-action reports dropped because ActionDone was full.", &a.ctr.reportsDropped)
	cf("eca_upstream_retries_total",
		"Re-attempts of upstream batches after retryable failures.", &a.ctr.upstreamRetries)
	cf("eca_upstream_reconnects_total",
		"Fresh upstream connections dialed to replace broken ones.", &a.ctr.reconnects)

	reg.GaugeFunc("eca_events",
		"Registered events (primitive and composite).",
		func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(len(a.events))
		})
	reg.GaugeFunc("eca_triggers",
		"Registered ECA triggers (rules).",
		func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(len(a.triggers))
		})
	reg.GaugeFunc("eca_dead_letters",
		"Failed rule actions currently parked in the dead-letter queue.",
		func() float64 { return float64(len(a.dlq.snapshot())) })
	reg.GaugeFunc("eca_deferred_actions",
		"Deferred rule firings queued for the next transaction boundary.",
		func() float64 { return float64(a.led.DeferredCount()) })

	m.gatewayBatchSec = reg.Histogram("eca_gateway_batch_seconds",
		"Language Filter latency per client batch (classification plus handling), seconds.", nil)
	m.notifierDatagrams = reg.Counter("eca_notifier_datagrams_total",
		"Raw datagrams read from the UDP notification socket.")
	m.notifierBytes = reg.Counter("eca_notifier_bytes_total",
		"Raw bytes read from the UDP notification socket.")
	m.binaryBatches = reg.Counter("eca_binary_batches_total",
		"ECB1 binary notification batches delivered (UDP or in-process).")
	m.ruleRuns = reg.CounterVec("eca_rule_runs_total",
		"Completed rule actions, by trigger.", "rule")
	m.ruleFails = reg.CounterVec("eca_rule_failures_total",
		"Failed rule actions, by trigger.", "rule")
	m.actionSec = reg.Histogram("eca_action_latency_seconds",
		"Rule action latency from detection (queue) to procedure completion, seconds.", nil)
	m.resyncSweeps = reg.Counter("eca_resync_sweeps_total",
		"Resync sweeps executed against the authoritative vNo counters.")
	m.resyncSec = reg.Histogram("eca_resync_seconds",
		"Resync sweep duration, seconds.", nil)

	if a.ingestPool != nil {
		depth := reg.GaugeVec("eca_ingest_queue_depth",
			"Notification batches queued per ingest worker.", "worker")
		a.ingestPool.gauges = make([]*obs.Gauge, len(a.ingestPool.queues))
		for i := range a.ingestPool.queues {
			a.ingestPool.gauges[i] = depth.With(fmt.Sprintf("%d", i))
		}
		reg.GaugeFunc("eca_ingest_workers",
			"Ingest workers draining notification batches into the LED.",
			func() float64 { return float64(len(a.ingestPool.queues)) })
	}

	a.met = m
	a.led.EnableMetrics(reg)
}

// Metrics exposes the agent's registry — the handle the admin HTTP server
// and embedding programs use, and the place extra application metrics can
// be registered to ride along on /metrics.
func (a *Agent) Metrics() *obs.Registry { return a.met.reg }

// recoveryMetrics instruments the durability layer; registered only when
// Config.Durability is set.
type recoveryMetrics struct {
	checkpoints *obs.Counter
	ckptSec     *obs.Histogram
	ckptBytes   *obs.Gauge
	walRecords  *obs.Counter
	walBytes    *obs.Counter
	walSyncs    *obs.Counter
	replayed    *obs.Counter
	resumed     *obs.Counter
	deduped     *obs.Counter
	withheld    *obs.Counter
	recoverySec *obs.Histogram
}

func (d *durableState) initRecoveryMetrics(reg *obs.Registry) {
	d.met.checkpoints = reg.Counter("eca_recovery_checkpoints_total",
		"Durable checkpoint generations cut (periodic, recovery and Close).")
	d.met.ckptSec = reg.Histogram("eca_recovery_checkpoint_seconds",
		"Checkpoint cut duration (freeze, encode, fsync, publish, journal rotation), seconds.", nil)
	d.met.ckptBytes = reg.Gauge("eca_recovery_checkpoint_bytes",
		"Size of the last published checkpoint file.")
	d.met.walRecords = reg.Counter("eca_recovery_wal_records_total",
		"Records appended to the write-ahead journal (occurrences and action completions).")
	d.met.walBytes = reg.Counter("eca_recovery_wal_bytes_total",
		"Bytes appended to the write-ahead journal.")
	d.met.walSyncs = reg.Counter("eca_recovery_wal_syncs_total",
		"Journal fsyncs (per record under always, batched under group commit).")
	d.met.replayed = reg.Counter("eca_recovery_replayed_records_total",
		"Journal records replayed during startup recovery.")
	d.met.resumed = reg.Counter("eca_recovery_resumed_actions_total",
		"Rule actions re-launched at recovery because no done record covered them.")
	d.met.deduped = reg.Counter("eca_recovery_deduped_actions_total",
		"Rule firings suppressed by the action ledger (already done or already claimed).")
	d.met.withheld = reg.Counter("eca_recovery_withheld_occurrences_total",
		"Occurrences journaled but not acknowledged because the replication barrier failed.")
	d.met.recoverySec = reg.Histogram("eca_recovery_seconds",
		"Startup recovery latency: checkpoint restore, journal replay, resume and gap fill, seconds.", nil)
	reg.GaugeFunc("eca_recovery_checkpoint_age_seconds",
		"Seconds since the last completed checkpoint.",
		func() float64 {
			ns := d.lastCkpt.Load()
			if ns == 0 {
				return 0
			}
			return d.a.clock.Now().Sub(time.Unix(0, ns)).Seconds()
		})
}
