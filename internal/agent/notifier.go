package agent

import (
	"net"
	"sync"
)

// notifier implements the Event Notifier (Figure 15): a lightweight
// listener thread that receives UDP notifications emitted by the generated
// triggers' syb_sendmsg calls, decodes them, and signals the LED.
type notifier struct {
	agent *Agent
	conn  *net.UDPConn
	wg    sync.WaitGroup
}

// startNotifier binds the UDP listener ("127.0.0.1:0" picks an ephemeral
// port, which the code generator then embeds into every trigger).
func startNotifier(a *Agent, addr string) (*notifier, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	n := &notifier{agent: a, conn: conn}
	n.wg.Add(1)
	go n.listen()
	return n, nil
}

// listen is the Notification Listener loop of Figure 15.
func (n *notifier) listen() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // listener closed
		}
		n.agent.met.notifierDatagrams.Inc()
		n.agent.met.notifierBytes.Add(uint64(sz))
		// The buffer is handed in directly and reused for the next read:
		// DeliverBatchBytes documents that it does not retain the datagram.
		n.agent.DeliverBatchBytes(buf[:sz])
	}
}

func (n *notifier) close() {
	n.conn.Close()
	n.wg.Wait()
}

// addr returns the bound UDP host and port. A wildcard bind (":0",
// "0.0.0.0", "[::]") is rewritten to the matching loopback literal —
// triggers must dial a concrete address — but a real bind address, IPv6
// included, is reported as-is: rewriting "[::1]:0" to 127.0.0.1 would
// point every generated trigger at an address the notifier never bound.
// Callers that build a host:port string must bracket via net.JoinHostPort.
func (n *notifier) addr() (string, int) {
	a := n.conn.LocalAddr().(*net.UDPAddr)
	if a.IP == nil || a.IP.IsUnspecified() {
		if a.IP != nil && a.IP.To4() == nil {
			return "::1", a.Port
		}
		return "127.0.0.1", a.Port
	}
	return a.IP.String(), a.Port
}
