package agent

import (
	"fmt"
	"strings"

	"github.com/activedb/ecaagent/internal/client"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// Upstream is one connection from the agent to the SQL server. The gateway
// opens one per client (pass-through), the Persistent Manager holds a
// privileged one, and the Action Handler uses one to invoke stored
// procedures — mirroring how the original used Open Client connections.
type Upstream interface {
	Exec(sql string) ([]*sqltypes.ResultSet, error)
	Close() error
}

// UpstreamDialer opens a new upstream connection authenticated as user,
// optionally positioned in a database.
type UpstreamDialer func(user, db string) (Upstream, error)

// TCPDialer connects to a SQL server (or another agent) over the wire
// protocol — the deployment the paper describes.
func TCPDialer(addr string) UpstreamDialer {
	return func(user, db string) (Upstream, error) {
		c, err := client.Connect(addr, client.Options{User: user, Database: db})
		if err != nil {
			return nil, fmt.Errorf("agent: dialing server: %w", err)
		}
		return c, nil
	}
}

// localUpstream wraps an in-process engine session; used for embedded
// deployments and for the mediation-overhead ablation benchmarks.
type localUpstream struct {
	sess *engine.Session
}

func (u *localUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	return u.sess.ExecScript(sql)
}

func (u *localUpstream) Close() error { return nil }

// LocalDialer creates upstream "connections" directly on an in-process
// engine, bypassing the wire protocol.
func LocalDialer(eng *engine.Engine) UpstreamDialer {
	return func(user, db string) (Upstream, error) {
		sess := eng.NewSession(user)
		if db != "" {
			if err := sess.Use(db); err != nil {
				return nil, err
			}
		}
		return &localUpstream{sess: sess}, nil
	}
}

// execIgnoreExists runs batches, tolerating "already exists" errors — used
// for the idempotent shadow/tmp table creations the paper guards with "if
// they do not already exist".
func execIgnoreExists(up Upstream, batches []string) error {
	for _, b := range batches {
		if _, err := up.Exec(b); err != nil && !isAlreadyExists(err) {
			return err
		}
	}
	return nil
}

func isAlreadyExists(err error) bool {
	return err != nil && containsFold(err.Error(), "already exists")
}

// containsFold reports whether s contains sub, case-insensitively.
func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}
