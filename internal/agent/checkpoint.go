package agent

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/storage"
)

// Checkpoint file format (ckpt-<epoch>):
//
//	magic "ECACKPT1" | version uint32 LE | epoch uint64 LE
//	payloadLen uint64 LE | payload | crc32(payload) uint32 LE
//
// The payload is an internal/storage codec stream holding the delivery
// watermarks, the full LED StateSnapshot, the ledger's pending actions
// and the dead-letter queue. The file is written to a .tmp name, fsynced,
// renamed into place and the directory fsynced, so a checkpoint either
// exists completely or not at all; the CRC catches bit rot and torn
// writes that slip past the rename barrier. Decoding is all-or-nothing —
// any structural damage is an error and the caller falls back to the
// previous epoch (or a cold start), never to partially loaded state.

const (
	ckptMagic = "ECACKPT1"
	// ckptVersion 2 added the CEP window section to each context state
	// (Ring + NextBound, DESIGN.md §12). Version 1 images decode with
	// empty window state — correct, since no v1 build had window nodes.
	ckptVersion   = 2
	ckptVersionV1 = 1

	// maxCkptItems bounds every decoded collection so a corrupt or
	// adversarial count cannot balloon allocation before the data runs out.
	maxCkptItems = 1 << 20
)

// ckptWatermark is one event's persisted delivery watermark.
type ckptWatermark struct {
	Event, Table, Op string
	Last             int
}

// ckptPending is one not-yet-done ledger entry.
type ckptPending struct {
	Key, Rule string
	Occ       led.OccState
}

// ckptDead is one persisted dead-letter entry.
type ckptDead struct {
	Rule, Event string
	Occ         led.OccState
	HasOcc      bool
	Messages    []string
	Err         string
}

// checkpointData is everything a checkpoint round-trips.
type checkpointData struct {
	Watermarks map[string]ckptWatermark
	LED        *led.StateSnapshot
	Pending    []ckptPending
	DLQ        []ckptDead
}

func writeOccState(w *storage.Writer, o led.OccState) {
	w.WriteString(o.Event)
	w.WriteUint(uint64(o.Context))
	w.WriteTime(o.At)
	w.WriteUint(uint64(len(o.Constituents)))
	for _, c := range o.Constituents {
		w.WriteString(c.Event)
		w.WriteString(c.Table)
		w.WriteString(c.Op)
		w.WriteInt(int64(c.VNo))
		w.WriteTime(c.At)
	}
}

func readOccState(r *storage.Reader) (led.OccState, error) {
	var o led.OccState
	var err error
	if o.Event, err = r.ReadString(); err != nil {
		return o, err
	}
	ctx, err := r.ReadUint()
	if err != nil {
		return o, err
	}
	o.Context = led.Context(ctx)
	if o.At, err = r.ReadTime(); err != nil {
		return o, err
	}
	n, err := r.ReadUint()
	if err != nil {
		return o, err
	}
	if n > maxCkptItems {
		return o, fmt.Errorf("agent: checkpoint: implausible constituent count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var c led.Primitive
		if c.Event, err = r.ReadString(); err != nil {
			return o, err
		}
		if c.Table, err = r.ReadString(); err != nil {
			return o, err
		}
		if c.Op, err = r.ReadString(); err != nil {
			return o, err
		}
		vno, err := r.ReadInt()
		if err != nil {
			return o, err
		}
		c.VNo = int(vno)
		if c.At, err = r.ReadTime(); err != nil {
			return o, err
		}
		o.Constituents = append(o.Constituents, c)
	}
	return o, nil
}

func writeOccStates(w *storage.Writer, os []led.OccState) {
	w.WriteUint(uint64(len(os)))
	for _, o := range os {
		writeOccState(w, o)
	}
}

func readOccStates(r *storage.Reader) ([]led.OccState, error) {
	n, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	if n > maxCkptItems {
		return nil, fmt.Errorf("agent: checkpoint: implausible occurrence count %d", n)
	}
	out := make([]led.OccState, 0, min(int(n), 1024))
	for i := uint64(0); i < n; i++ {
		o, err := readOccState(r)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

func writeFirings(w *storage.Writer, fs []led.FiringState) {
	w.WriteUint(uint64(len(fs)))
	for _, f := range fs {
		w.WriteString(f.Rule)
		writeOccState(w, f.Occ)
	}
}

func readFirings(r *storage.Reader) ([]led.FiringState, error) {
	n, err := r.ReadUint()
	if err != nil {
		return nil, err
	}
	if n > maxCkptItems {
		return nil, fmt.Errorf("agent: checkpoint: implausible firing count %d", n)
	}
	var out []led.FiringState
	for i := uint64(0); i < n; i++ {
		var f led.FiringState
		if f.Rule, err = r.ReadString(); err != nil {
			return nil, err
		}
		if f.Occ, err = readOccState(r); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func boolUint(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// encodeCheckpoint renders the complete file image for one epoch.
func encodeCheckpoint(epoch uint64, c *checkpointData) ([]byte, error) {
	return encodeCheckpointAt(epoch, c, ckptVersion)
}

// encodeCheckpointAt renders an image at an explicit format version; the
// v1 path exists so tests can pin that current builds still read images
// written before the CEP window section existed.
func encodeCheckpointAt(epoch uint64, c *checkpointData, version uint32) ([]byte, error) {
	var buf bytes.Buffer
	w := storage.NewWriter(&buf)

	events := make([]string, 0, len(c.Watermarks))
	for ev := range c.Watermarks {
		events = append(events, ev)
	}
	sort.Strings(events)
	w.WriteUint(uint64(len(events)))
	for _, ev := range events {
		wm := c.Watermarks[ev]
		w.WriteString(wm.Event)
		w.WriteString(wm.Table)
		w.WriteString(wm.Op)
		w.WriteInt(int64(wm.Last))
	}

	w.WriteUint(uint64(len(c.LED.Nodes)))
	for _, ns := range c.LED.Nodes {
		w.WriteString(ns.Path)
		w.WriteUint(uint64(ns.Kind))
		w.WriteUint(uint64(len(ns.Contexts)))
		for _, cs := range ns.Contexts {
			w.WriteUint(uint64(cs.Ctx))
			writeOccStates(w, cs.Left)
			writeOccStates(w, cs.Right)
			w.WriteUint(uint64(len(cs.Windows)))
			for _, ws := range cs.Windows {
				writeOccState(w, ws.Start)
				writeOccStates(w, ws.Mids)
				w.WriteTime(ws.Next)
			}
			w.WriteUint(uint64(len(cs.Plus)))
			for _, ps := range cs.Plus {
				writeOccState(w, ps.Occ)
				w.WriteTime(ps.At)
			}
			w.WriteUint(boolUint(cs.Done))
			if version >= 2 {
				writeOccStates(w, cs.Ring)
				w.WriteTime(cs.NextBound)
			}
		}
	}
	writeFirings(w, c.LED.Deferred)
	writeFirings(w, c.LED.Outstanding)

	w.WriteUint(uint64(len(c.Pending)))
	for _, p := range c.Pending {
		w.WriteString(p.Key)
		w.WriteString(p.Rule)
		writeOccState(w, p.Occ)
	}

	w.WriteUint(uint64(len(c.DLQ)))
	for _, d := range c.DLQ {
		w.WriteString(d.Rule)
		w.WriteString(d.Event)
		w.WriteUint(boolUint(d.HasOcc))
		if d.HasOcc {
			writeOccState(w, d.Occ)
		}
		w.WriteUint(uint64(len(d.Messages)))
		for _, m := range d.Messages {
			w.WriteString(m)
		}
		w.WriteString(d.Err)
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	payload := buf.Bytes()

	out := []byte(ckptMagic)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, epoch)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload)), nil
}

// decodeCheckpoint validates and decodes a checkpoint image, returning
// the embedded epoch. Every failure is an error — truncation, bit flips
// (CRC), a version from a different build — and leaves the caller with
// nothing rather than half a state.
func decodeCheckpoint(data []byte) (*checkpointData, uint64, error) {
	headerLen := len(ckptMagic) + 4 + 8 + 8
	if len(data) < headerLen+4 {
		return nil, 0, fmt.Errorf("agent: checkpoint: truncated header (%d bytes)", len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, 0, fmt.Errorf("agent: checkpoint: bad magic %q", data[:len(ckptMagic)])
	}
	off := len(ckptMagic)
	version := binary.LittleEndian.Uint32(data[off:])
	if version != ckptVersion && version != ckptVersionV1 {
		return nil, 0, fmt.Errorf("agent: checkpoint: unsupported version %d", version)
	}
	off += 4
	epoch := binary.LittleEndian.Uint64(data[off:])
	off += 8
	plen := binary.LittleEndian.Uint64(data[off:])
	off += 8
	if plen != uint64(len(data)-off-4) {
		return nil, 0, fmt.Errorf("agent: checkpoint: payload length %d does not match file size", plen)
	}
	payload := data[off : off+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+int(plen):]) {
		return nil, 0, fmt.Errorf("agent: checkpoint: payload CRC mismatch")
	}

	r, err := storage.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("agent: checkpoint: %w", err)
	}
	c := &checkpointData{Watermarks: make(map[string]ckptWatermark), LED: &led.StateSnapshot{}}

	n, err := r.ReadUint()
	if err != nil || n > maxCkptItems {
		return nil, 0, fmt.Errorf("agent: checkpoint: watermarks: %w", orCount(err, n))
	}
	for i := uint64(0); i < n; i++ {
		var wm ckptWatermark
		if wm.Event, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		if wm.Table, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		if wm.Op, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		last, err := r.ReadInt()
		if err != nil {
			return nil, 0, err
		}
		wm.Last = int(last)
		c.Watermarks[wm.Event] = wm
	}

	n, err = r.ReadUint()
	if err != nil || n > maxCkptItems {
		return nil, 0, fmt.Errorf("agent: checkpoint: nodes: %w", orCount(err, n))
	}
	for i := uint64(0); i < n; i++ {
		var ns led.NodeState
		if ns.Path, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		kind, err := r.ReadUint()
		if err != nil {
			return nil, 0, err
		}
		ns.Kind = int(kind)
		nc, err := r.ReadUint()
		if err != nil || nc > maxCkptItems {
			return nil, 0, fmt.Errorf("agent: checkpoint: contexts: %w", orCount(err, nc))
		}
		for j := uint64(0); j < nc; j++ {
			var cs led.CtxState
			ctx, err := r.ReadUint()
			if err != nil {
				return nil, 0, err
			}
			cs.Ctx = led.Context(ctx)
			if cs.Left, err = readOccStates(r); err != nil {
				return nil, 0, err
			}
			if cs.Right, err = readOccStates(r); err != nil {
				return nil, 0, err
			}
			nw, err := r.ReadUint()
			if err != nil || nw > maxCkptItems {
				return nil, 0, fmt.Errorf("agent: checkpoint: windows: %w", orCount(err, nw))
			}
			for k := uint64(0); k < nw; k++ {
				var ws led.WindowState
				if ws.Start, err = readOccState(r); err != nil {
					return nil, 0, err
				}
				if ws.Mids, err = readOccStates(r); err != nil {
					return nil, 0, err
				}
				if ws.Next, err = r.ReadTime(); err != nil {
					return nil, 0, err
				}
				cs.Windows = append(cs.Windows, ws)
			}
			np, err := r.ReadUint()
			if err != nil || np > maxCkptItems {
				return nil, 0, fmt.Errorf("agent: checkpoint: plus: %w", orCount(err, np))
			}
			for k := uint64(0); k < np; k++ {
				var ps led.PlusState
				if ps.Occ, err = readOccState(r); err != nil {
					return nil, 0, err
				}
				if ps.At, err = r.ReadTime(); err != nil {
					return nil, 0, err
				}
				cs.Plus = append(cs.Plus, ps)
			}
			done, err := r.ReadUint()
			if err != nil {
				return nil, 0, err
			}
			cs.Done = done == 1
			if version >= 2 {
				if cs.Ring, err = readOccStates(r); err != nil {
					return nil, 0, err
				}
				if cs.NextBound, err = r.ReadTime(); err != nil {
					return nil, 0, err
				}
			}
			ns.Contexts = append(ns.Contexts, cs)
		}
		c.LED.Nodes = append(c.LED.Nodes, ns)
	}
	if c.LED.Deferred, err = readFirings(r); err != nil {
		return nil, 0, err
	}
	if c.LED.Outstanding, err = readFirings(r); err != nil {
		return nil, 0, err
	}

	n, err = r.ReadUint()
	if err != nil || n > maxCkptItems {
		return nil, 0, fmt.Errorf("agent: checkpoint: pending actions: %w", orCount(err, n))
	}
	for i := uint64(0); i < n; i++ {
		var p ckptPending
		if p.Key, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		if p.Rule, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		if p.Occ, err = readOccState(r); err != nil {
			return nil, 0, err
		}
		c.Pending = append(c.Pending, p)
	}

	n, err = r.ReadUint()
	if err != nil || n > maxCkptItems {
		return nil, 0, fmt.Errorf("agent: checkpoint: dead letters: %w", orCount(err, n))
	}
	for i := uint64(0); i < n; i++ {
		var d ckptDead
		if d.Rule, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		if d.Event, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		has, err := r.ReadUint()
		if err != nil {
			return nil, 0, err
		}
		d.HasOcc = has == 1
		if d.HasOcc {
			if d.Occ, err = readOccState(r); err != nil {
				return nil, 0, err
			}
		}
		nm, err := r.ReadUint()
		if err != nil || nm > maxCkptItems {
			return nil, 0, fmt.Errorf("agent: checkpoint: messages: %w", orCount(err, nm))
		}
		for j := uint64(0); j < nm; j++ {
			m, err := r.ReadString()
			if err != nil {
				return nil, 0, err
			}
			d.Messages = append(d.Messages, m)
		}
		if d.Err, err = r.ReadString(); err != nil {
			return nil, 0, err
		}
		c.DLQ = append(c.DLQ, d)
	}
	return c, epoch, nil
}

// orCount folds the two failure modes of a counted section into one
// error: a read failure, or a count past the sanity bound.
func orCount(err error, n uint64) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("implausible count %d", n)
}
