package agent

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/storage"
)

// failFS wraps a working FS and makes every File's Sync or Close fail on
// demand — the fault the syncerr analyzer exists for: an fsync error that
// is reported exactly once, at the call, and nowhere else.
type failFS struct {
	storage.FS
	failSync  atomic.Bool
	failClose atomic.Bool
}

var errDiskGone = errors.New("simulated I/O error: device gone")

func (f *failFS) Create(name string) (storage.File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &failFile{File: file, fs: f}, nil
}

type failFile struct {
	storage.File
	fs *failFS
}

func (f *failFile) Sync() error {
	if f.fs.failSync.Load() {
		return errDiskGone
	}
	return f.File.Sync()
}

func (f *failFile) Close() error {
	if f.fs.failClose.Load() {
		return errDiskGone
	}
	return f.File.Close()
}

// startFailAgent boots an agent over a failFS that is still healthy.
func startFailAgent(t *testing.T) (*durableRig, *failFS, *Agent) {
	t.Helper()
	r := newDurableRig(t)
	ffs := &failFS{FS: faults.NewCrashDir(1)}
	a := r.start(func(cfg *Config) {
		cfg.Durability = &Durability{FS: ffs, WALSync: WALSyncAlways}
	})
	t.Cleanup(func() { a.Close() })
	return r, ffs, a
}

// TestCheckpointSurfacesSyncError: a failing fsync aborts the checkpoint
// with an error instead of publishing an unsynced image.
func TestCheckpointSurfacesSyncError(t *testing.T) {
	_, ffs, a := startFailAgent(t)
	ffs.failSync.Store(true)
	err := a.Checkpoint()
	if err == nil {
		t.Fatal("Checkpoint succeeded with fsync failing")
	}
	if !errors.Is(err, errDiskGone) {
		t.Fatalf("Checkpoint error = %v, want the injected sync error", err)
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("Checkpoint error %q does not identify the phase", err)
	}
}

// TestCheckpointSurfacesCloseError: the close after a successful sync can
// still fail (delayed-write errors surface at close) and must propagate.
func TestCheckpointSurfacesCloseError(t *testing.T) {
	_, ffs, a := startFailAgent(t)
	ffs.failClose.Store(true)
	err := a.Checkpoint()
	if err == nil {
		t.Fatal("Checkpoint succeeded with close failing")
	}
	if !errors.Is(err, errDiskGone) {
		t.Fatalf("Checkpoint error = %v, want the injected close error", err)
	}
}

// TestCheckpointRecoversAfterFault: once the fault clears, the next
// checkpoint succeeds — the failed attempt left no half-published state
// behind that blocks progress.
func TestCheckpointRecoversAfterFault(t *testing.T) {
	_, ffs, a := startFailAgent(t)
	ffs.failSync.Store(true)
	if err := a.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded with fsync failing")
	}
	ffs.failSync.Store(false)
	if err := a.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after fault cleared: %v", err)
	}
}
