package agent

import (
	"encoding/json"
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
	"github.com/activedb/ecaagent/internal/snoop"
	"github.com/activedb/ecaagent/internal/sqlparse"
)

// Config configures an Agent.
type Config struct {
	// Dial opens upstream connections to the SQL server. Required.
	Dial UpstreamDialer
	// AdminUser is the privileged login the Persistent Manager and Action
	// Handler use (the paper grants the agent's connection DBA privilege).
	// Defaults to "dbo".
	AdminUser string
	// NotifyAddr is the UDP address the Event Notifier binds
	// ("127.0.0.1:0" by default). Set to "-" to disable the UDP listener
	// for fully in-process deployments; notifications then arrive only via
	// Deliver.
	NotifyAddr string
	// NotifyHost / NotifyPort override the address the code generator
	// embeds in triggers; by default the notifier's bound address is used.
	NotifyHost string
	NotifyPort int
	// Clock drives the LED's temporal operators; nil selects real time.
	Clock led.Clock
	// IngestWorkers sizes the worker pool that drains decoded notification
	// batches into the LED, one fixed worker per LED shard group so
	// independent shards are signalled concurrently (0 selects
	// 2×GOMAXPROCS). Set to -1 to disable the pool: DeliverBatch then
	// ingests synchronously, line by line, like repeated Deliver calls.
	IngestWorkers int
	// ActionBuffer sizes the ActionDone channel (default 256). When the
	// buffer is full, completed-action reports are dropped (the channel is
	// observational; rule execution itself is unaffected).
	ActionBuffer int
	// Forward, when set, receives every decoded primitive occurrence after
	// local detection — the hook a Global Event Detector site uses
	// (internal/ged) for the paper's distributed future-work extension.
	Forward func(p led.Primitive)
	// DefinitionSink, when set, receives one serialized record (JSON) for
	// every successful rule-definition change — trigger creation or drop —
	// in definition order. Cluster mode ships these to the other members
	// as the log-shipped rulebase feed. Called with the definition lock
	// held, so implementations must not re-enter the agent and should
	// return quickly; definitions are DDL-rate, not data-rate.
	DefinitionSink func(record []byte)
	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
	// Retry tunes the resilient decorator wrapped around the agent's own
	// upstream connections (Persistent Manager, Action Handler, recovery
	// sweep). Zero values select the defaults in RetryConfig.
	Retry RetryConfig
	// ResyncInterval is the period of the watermark sweep that recovers
	// notification losses no later datagram would reveal (see
	// Agent.Resync). 0 disables the background sweep; Resync can still be
	// called directly.
	ResyncInterval time.Duration
	// DrainTimeout bounds Close's wait for in-flight rule actions
	// (default 15s). Actions still running at the deadline are abandoned:
	// their upstream is closed underneath them and their failures are
	// dead-lettered.
	DrainTimeout time.Duration
	// DeadLetterLimit bounds the dead-letter queue of failed actions
	// (default 128); when full, the oldest entry is evicted.
	DeadLetterLimit int
	// Metrics is the registry the agent's instruments are registered in;
	// nil creates a fresh one (read it back via Agent.Metrics). Each agent
	// needs its own registry — the instruments are per-agent state.
	Metrics *obs.Registry
	// Durability, when set (with a Dir or FS), makes the agent crash-safe:
	// detector state is checkpointed, accepted occurrences and completed
	// actions are journaled in between, and startup recovery replays the
	// journal over the latest checkpoint and gap-fills from the shadow
	// tables — an exactly-once action stream across restarts under the
	// always/group sync policies. Nil keeps the pre-durability behavior
	// (volatile detector state, at-least-once from the watermark onward).
	Durability *Durability
}

// eventInfo is the agent's registration record for one event.
type eventInfo struct {
	Name      string // internal db.user.event
	DB        string
	User      string
	Primitive bool
	Table     string // internal db.user.table (primitive only)
	Op        sqlparse.TriggerOp
	Expr      string // expanded Snoop expression (composite only)
}

// triggerInfo is the registration record for one ECA trigger (rule).
type triggerInfo struct {
	Name     string // internal db.user.trigger
	DB       string
	User     string
	Event    string // internal event name
	Proc     string // internal action procedure name
	Coupling led.Coupling
	Context  led.Context
	Priority int
}

// Agent is the ECA agent: a mediator that adds full active-database
// capability to the SQL server it fronts (Figure 2 of the paper).
type Agent struct {
	cfg Config
	// clock is the shared time seam (cfg.Clock, defaulting to the system
	// clock). Every timestamp and latency measurement in the agent goes
	// through it so recovery and replay are deterministic under
	// led.ManualClock — enforced by the nowallclock analyzer.
	clock      led.Clock
	led        *led.LED
	pm         *persistentManager
	actions    *actionHandler
	notifier   *notifier
	ingestPool *ingestPool

	mu       sync.Mutex
	events   map[string]*eventInfo   // internal event name → info
	triggers map[string]*triggerInfo // internal trigger name → info
	// nativeByTableOp maps "db|table|op" to the owning primitive event,
	// enforcing one primitive event per native trigger slot.
	nativeByTableOp map[string]string

	// actionMu guards actionTail; actions themselves run on goroutines
	// chained FIFO through tail tickets, so sysContext population + action
	// execution pairs are serialized *in detection (priority) order*.
	actionMu   sync.Mutex
	actionTail chan struct{}
	// actionWG tracks in-flight rule actions.
	actionWG sync.WaitGroup
	// ActionDone receives a report for every completed rule action.
	ActionDone chan ActionResult

	// ctr holds the operational counters surfaced by Stats(); met holds
	// the registry-backed instruments surfaced by /metrics.
	ctr counters
	met *agentMetrics

	// rec tracks per-event delivery watermarks (gap detection), recUp is
	// the privileged connection the resync sweep reads authoritative vNos
	// over, and dlq parks terminally failed actions.
	rec   tracker
	recUp *retryUpstream
	dlq   deadLetterQueue
	// reportDropLogged gates the once-per-episode log when ActionDone
	// overflows.
	reportDropLogged atomic.Bool

	// dur is the checkpoint/WAL machinery (nil when durability is off);
	// ready is closed once startup recovery has seeded watermarks and
	// replayed the journal, gating the delivery surface until then.
	dur   *durableState
	ready chan struct{}
	// roleFn, when set, names this node's cluster role ("primary",
	// "standby", ...) for the readiness probe; nil means standalone.
	roleFn atomic.Pointer[func() string]
	// gateFn, when set, is an extra readiness veto consulted after
	// recovery completes (the cluster layer wires replication health in:
	// a sync primary whose standby is gone past the grace window must
	// fail its probe even though it is otherwise serving).
	gateFn atomic.Pointer[func() (string, bool)]

	// stopCh stops background goroutines; bgWG tracks them.
	stopCh   chan struct{}
	stopOnce sync.Once
	bgWG     sync.WaitGroup

	gateway *gateway
}

// New starts an agent: it connects the Persistent Manager and Action
// Handler to the server, restores persisted ECA rules (recovery, Figure 8),
// and starts the Event Notifier.
func New(cfg Config) (*Agent, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("agent: Config.Dial is required")
	}
	if cfg.AdminUser == "" {
		cfg.AdminUser = "dbo"
	}
	if cfg.NotifyAddr == "" {
		cfg.NotifyAddr = "127.0.0.1:0"
	}
	if cfg.ActionBuffer <= 0 {
		cfg.ActionBuffer = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 15 * time.Second
	}
	if cfg.DeadLetterLimit <= 0 {
		cfg.DeadLetterLimit = 128
	}
	a := &Agent{
		cfg:             cfg,
		led:             led.New(cfg.Clock),
		events:          make(map[string]*eventInfo),
		triggers:        make(map[string]*triggerInfo),
		nativeByTableOp: make(map[string]string),
		ActionDone:      make(chan ActionResult, cfg.ActionBuffer),
		ready:           make(chan struct{}),
		stopCh:          make(chan struct{}),
	}
	a.clock = cfg.Clock
	if a.clock == nil {
		a.clock = led.SystemClock()
	}
	a.rec.mu.Lock()
	a.rec.seen = make(map[string]*eventWatermark)
	a.rec.mu.Unlock()
	a.dlq.limit = cfg.DeadLetterLimit
	if cfg.IngestWorkers >= 0 {
		w := cfg.IngestWorkers
		if w == 0 {
			w = 2 * runtime.GOMAXPROCS(0)
		}
		a.ingestPool = newIngestPool(a, w)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a.initMetrics(reg)
	if cfg.Durability != nil && (cfg.Durability.FS != nil || cfg.Durability.Dir != "") {
		a.dur = newDurableState(a, *cfg.Durability)
		// Outstanding-firing capture must be on before any rule exists, so
		// checkpoints see detections whose actions have not been handed off.
		a.led.TrackFirings(true)
	}
	// The agent's own connections are wrapped in the retry decorator so one
	// broken connection disables nothing: it is redialed with backoff, and
	// only terminal (server-answered) errors surface.
	dialAdmin := func() (Upstream, error) { return cfg.Dial(cfg.AdminUser, "") }
	mkRetry := func(seedOffset int64) *retryUpstream {
		rc := cfg.Retry
		rc = rc.withDefaults()
		rc.Seed += seedOffset
		return newRetryUpstream(dialAdmin, rc, cfg.Logf,
			func() { a.ctr.upstreamRetries.Add(1) },
			func() { a.ctr.reconnects.Add(1) })
	}
	pm, err := newPersistentManager(mkRetry(0), cfg.AdminUser)
	if err != nil {
		return nil, err
	}
	a.pm = pm
	a.actions = newActionHandler(mkRetry(1))
	a.recUp = mkRetry(2)
	if cfg.NotifyAddr != "-" {
		n, err := startNotifier(a, cfg.NotifyAddr)
		if err != nil {
			a.stopOnce.Do(func() { close(a.stopCh) })
			if a.ingestPool != nil {
				a.ingestPool.close()
			}
			pm.close()
			a.actions.close()
			a.recUp.Close()
			return nil, err
		}
		a.notifier = n
	}
	if err := a.recover(); err != nil {
		a.Close()
		return nil, err
	}
	if a.dur != nil {
		if a.dur.syncMode == WALSyncGroup {
			a.bgWG.Add(1)
			go a.dur.groupSyncLoop()
		}
		if err := a.recoverDurable(); err != nil {
			a.Close()
			return nil, err
		}
		if cfg.Durability.CheckpointInterval > 0 {
			a.bgWG.Add(1)
			go a.checkpointLoop(cfg.Durability.CheckpointInterval)
		}
	}
	// Only now may live notifications flow: the watermarks are seeded (and
	// under durability the journal is replayed), so a datagram racing the
	// startup can no longer be misjudged against uninitialized state.
	close(a.ready)
	if cfg.ResyncInterval > 0 {
		a.bgWG.Add(1)
		go a.resyncLoop(cfg.ResyncInterval)
	}
	return a, nil
}

// Close shuts the agent down: gateway, notifier, background sweeps, then a
// deadline-bounded drain of in-flight rule actions before the upstream
// connections are released. Actions still running at the drain deadline are
// abandoned — their connection is closed underneath them, which aborts the
// call, and the resulting failures land in the dead-letter queue.
func (a *Agent) Close() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	if a.gateway != nil {
		a.gateway.close()
	}
	if a.notifier != nil {
		a.notifier.close()
	}
	if a.ingestPool != nil {
		// After the notifier stops, no DeliverBatch submissions remain;
		// drain what is queued so no accepted notification is lost.
		a.ingestPool.close()
	}
	a.bgWG.Wait()
	if !a.drain(a.cfg.DrainTimeout) {
		a.cfg.Logf("agent: drain deadline %v exceeded; abandoning in-flight rule actions", a.cfg.DrainTimeout)
	}
	if a.dur != nil && a.dur.recovered() {
		// Final checkpoint: the dead-letter queue and any still-pending
		// actions (including ones abandoned at the drain deadline) are
		// persisted so the next start resumes them.
		if err := a.Checkpoint(); err != nil {
			a.cfg.Logf("agent: final checkpoint: %v", err)
		}
		a.dur.closeWAL()
	}
	a.actions.close()
	a.pm.close()
	a.recUp.Close()
}

// drain waits for in-flight and detached rule actions, bounded by the
// deadline. It reports whether everything finished in time.
func (a *Agent) drain(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		a.WaitIngest()
		a.led.Wait()
		a.actionWG.Wait()
		close(done)
	}()
	//ecavet:allow nowallclock shutdown drain deadline is operational, never replayed
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return true
	case <-timer.C:
		return false
	}
}

// Ready reports whether startup recovery has completed — watermarks
// seeded and, under durability, the journal replayed — so the delivery
// surface accepts notifications without blocking on it.
func (a *Agent) Ready() bool {
	select {
	case <-a.ready:
		return true
	default:
		return false
	}
}

// SetRoleFunc installs the cluster role provider the readiness probe
// consults (cluster nodes report "primary" / "standby"; nil reverts to
// standalone). The function must be safe for concurrent calls.
func (a *Agent) SetRoleFunc(fn func() string) {
	if fn == nil {
		a.roleFn.Store(nil)
		return
	}
	a.roleFn.Store(&fn)
}

// SetReadinessGate installs an extra readiness veto (nil removes it).
// When the gate returns ok=false, Readiness reports its state string and
// not-ready regardless of role — the hook the cluster layer uses to fail
// /readyz on a degraded or halted sync-replication link. The function
// must be safe for concurrent calls.
func (a *Agent) SetReadinessGate(fn func() (state string, ok bool)) {
	if fn == nil {
		a.gateFn.Store(nil)
		return
	}
	a.gateFn.Store(&fn)
}

// Readiness resolves the state string and verdict the /readyz probe
// serves: ("recovering", false) until startup recovery finishes, then any
// installed gate's veto (replication health), then the cluster role —
// ready only when this node is the one that should be ingesting
// ("primary", or "ok" standalone). A standby is alive but not ready:
// routers must hold its traffic until promotion flips the role.
func (a *Agent) Readiness() (state string, ready bool) {
	if !a.Ready() {
		return "recovering", false
	}
	if fn := a.gateFn.Load(); fn != nil {
		if state, ok := (*fn)(); !ok {
			return state, false
		}
	}
	if fn := a.roleFn.Load(); fn != nil {
		role := (*fn)()
		return role, role == "primary"
	}
	return "ok", true
}

// DeadLetters returns a snapshot of the dead-letter queue: rule actions
// that failed terminally (or exhausted their retries), oldest first, up to
// Config.DeadLetterLimit entries.
func (a *Agent) DeadLetters() []ActionResult {
	return a.dlq.snapshot()
}

// LED exposes the embedded local event detector (benchmarks and tests).
func (a *Agent) LED() *led.LED { return a.led }

// NotifyEndpoint returns the host and port the generated triggers send
// notifications to.
func (a *Agent) NotifyEndpoint() (string, int) {
	if a.cfg.NotifyHost != "" {
		return a.cfg.NotifyHost, a.cfg.NotifyPort
	}
	if a.notifier != nil {
		return a.notifier.addr()
	}
	return "127.0.0.1", 0
}

// Deliver injects one notification message, exactly as if it had arrived
// on the UDP socket — the entry point for in-process deployments and the
// UDP-vs-inproc ablation. Delivery is at-least-once: duplicates are
// suppressed by the per-event vNo watermark and gaps are replayed from it
// (see recovery.go).
func (a *Agent) Deliver(msg string) {
	a.waitReady()
	a.ctr.notifReceived.Add(1)
	event, table, op, vno, err := parseNotification(msg)
	if err != nil {
		a.ctr.notifDropped.Add(1)
		a.cfg.Logf("agent: dropping notification: %v", err)
		return
	}
	a.ingest(led.Primitive{Event: event, Table: table, Op: op, VNo: vno})
}

// FlushDeferred executes queued DEFERRED rule actions (transaction
// boundary).
func (a *Agent) FlushDeferred() { a.led.FlushDeferred() }

// WaitActions blocks until all in-flight rule actions complete.
func (a *Agent) WaitActions() {
	a.WaitIngest()
	a.led.Wait()
	a.actionWG.Wait()
}

// Events lists registered internal event names, sorted.
func (a *Agent) Events() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.events))
	for n := range a.events {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Triggers lists registered internal trigger names, sorted.
func (a *Agent) Triggers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.triggers))
	for n := range a.triggers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsECATrigger reports whether the (possibly unqualified) trigger name
// resolves to an ECA trigger for a session in (db, user).
func (a *Agent) IsECATrigger(db, user string, parts []string) bool {
	internal, err := expandName(db, user, parts)
	if err != nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.triggers[internal]
	return ok
}

// CreateTrigger processes a parsed ECA trigger definition for a session in
// (db, user): name expansion, validation, code generation, server
// installation, LED registration and persistence — the seven steps of
// Figure 3.
func (a *Agent) CreateTrigger(db, user string, def *TriggerDef) (messages []string, err error) {
	if db == "" || user == "" {
		return nil, fmt.Errorf("agent: no current database or user")
	}
	trigName, err := expandName(db, user, def.TriggerName)
	if err != nil {
		return nil, err
	}
	eventName, err := expandEventName(db, user, def.EventName)
	if err != nil {
		return nil, err
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.triggers[trigName]; exists {
		return nil, fmt.Errorf("agent: trigger %s already exists", trigName)
	}

	if err := a.pm.ensureDatabase(db); err != nil {
		return nil, err
	}

	switch {
	case len(def.TableName) > 0: // Figure 9: new primitive event
		messages, err = a.createPrimitive(db, user, trigName, eventName, def)
	case def.EventExpr != "": // Figure 12: new composite event
		messages, err = a.createComposite(db, user, trigName, eventName, def)
	default: // Figure 10: trigger on an existing event
		messages, err = a.createOnExisting(db, user, trigName, eventName, def)
	}
	if err == nil {
		a.emitDefinitionLocked("create", db, user, trigName, def)
	}
	return messages, err
}

// definitionRecord is the wire form of one rule-definition change for
// Config.DefinitionSink — enough to audit or re-derive the rulebase on
// another member.
type definitionRecord struct {
	Op       string `json:"op"` // "create" or "drop"
	DB       string `json:"db"`
	User     string `json:"user"`
	Trigger  string `json:"trigger"`
	Event    string `json:"event,omitempty"`
	Table    string `json:"table,omitempty"`
	TableOp  string `json:"tableOp,omitempty"`
	Expr     string `json:"expr,omitempty"`
	Context  string `json:"context,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Action   string `json:"action,omitempty"`
}

// emitDefinitionLocked serializes one definition change to the sink.
// Caller holds a.mu (which is what keeps the records in definition order).
func (a *Agent) emitDefinitionLocked(op, db, user, trigName string, def *TriggerDef) {
	if a.cfg.DefinitionSink == nil {
		return
	}
	rec := definitionRecord{Op: op, DB: db, User: user, Trigger: trigName}
	if def != nil {
		rec.Event = def.EventName
		rec.Table = strings.Join(def.TableName, ".")
		rec.TableOp = string(def.Operation)
		rec.Expr = def.EventExpr
		rec.Context = def.Context.String()
		rec.Priority = def.Priority
		rec.Action = def.ActionSQL
	}
	b, err := json.Marshal(rec)
	if err != nil {
		a.cfg.Logf("agent: serializing definition record for %s: %v", trigName, err)
		return
	}
	a.cfg.DefinitionSink(b)
}

// createPrimitive implements Example 1 (§5.2). Caller holds a.mu.
func (a *Agent) createPrimitive(db, user, trigName, eventName string, def *TriggerDef) ([]string, error) {
	if _, exists := a.events[eventName]; exists {
		return nil, fmt.Errorf("agent: event %s already exists (define the trigger on the existing event instead)", eventName)
	}
	table, err := expandName(db, user, def.TableName)
	if err != nil {
		return nil, err
	}
	tdb, _, tobj, _ := splitInternal(table)
	if tdb != db {
		return nil, fmt.Errorf("agent: event table %s must be in the current database %s", table, db)
	}
	slot := strings.ToLower(db + "|" + tobj + "|" + string(def.Operation))
	if owner, taken := a.nativeByTableOp[slot]; taken {
		return nil, fmt.Errorf("agent: event %s already monitors %s for %s (the native server allows one trigger per table and operation; reuse that event)",
			owner, tobj, def.Operation)
	}

	// Install the Figure 11 artifacts.
	host, port := a.NotifyEndpoint()
	batches := genPrimitiveEvent(eventName, table, def.Operation, host, port)
	useDB := "use " + db + "\n"
	if err := execIgnoreExists(a.pm.up, prefixAll(useDB, batches[:len(batches)-1])); err != nil {
		return nil, err
	}
	if _, err := a.pm.exec(useDB + batches[len(batches)-1]); err != nil {
		return nil, err
	}

	if err := a.led.DefinePrimitive(eventName); err != nil {
		return nil, err
	}
	if err := a.pm.savePrimitive(db, user, eventName, table, string(def.Operation)); err != nil {
		return nil, err
	}
	a.events[eventName] = &eventInfo{
		Name: eventName, DB: db, User: user, Primitive: true, Table: table, Op: def.Operation,
	}
	a.nativeByTableOp[slot] = eventName
	// Start the delivery watermark at the freshly persisted vNo of 0.
	a.trackEvent(eventName, table, string(def.Operation), 0)

	msgs, err := a.installRule(db, user, trigName, eventName, def)
	if err != nil {
		return msgs, err
	}
	return append([]string{fmt.Sprintf("primitive event %s created on %s for %s", eventName, table, def.Operation)}, msgs...), nil
}

// createComposite implements Example 2 (§5.3). Caller holds a.mu.
func (a *Agent) createComposite(db, user, trigName, eventName string, def *TriggerDef) ([]string, error) {
	if _, exists := a.events[eventName]; exists {
		return nil, fmt.Errorf("agent: event %s already exists", eventName)
	}
	expr, err := snoop.Parse(def.EventExpr)
	if err != nil {
		return nil, err
	}
	expanded, err := a.expandExprLocked(db, user, expr)
	if err != nil {
		return nil, err
	}
	if err := a.led.DefineComposite(eventName, expanded); err != nil {
		return nil, err
	}
	if err := a.pm.saveComposite(db, user, eventName, expanded.String(), def.Coupling, def.Context, def.Priority); err != nil {
		return nil, err
	}
	a.events[eventName] = &eventInfo{
		Name: eventName, DB: db, User: user, Expr: expanded.String(),
	}
	msgs, err := a.installRule(db, user, trigName, eventName, def)
	if err != nil {
		return msgs, err
	}
	return append([]string{fmt.Sprintf("composite event %s = %s created", eventName, expanded)}, msgs...), nil
}

// createOnExisting implements Figure 10. Caller holds a.mu.
func (a *Agent) createOnExisting(db, user, trigName, eventName string, def *TriggerDef) ([]string, error) {
	if _, ok := a.events[eventName]; !ok {
		return nil, fmt.Errorf("agent: event %s is not defined", eventName)
	}
	return a.installRule(db, user, trigName, eventName, def)
}

// expandExprLocked rewrites every event reference in a Snoop expression to
// its internal name and verifies it is defined.
func (a *Agent) expandExprLocked(db, user string, expr snoop.Expr) (snoop.Expr, error) {
	var walkErr error
	snoop.Walk(expr, func(e snoop.Expr) {
		ref, ok := e.(*snoop.EventRef)
		if !ok || walkErr != nil {
			return
		}
		internal, err := expandEventName(db, user, ref.Name)
		if err != nil {
			walkErr = err
			return
		}
		if _, defined := a.events[internal]; !defined {
			walkErr = fmt.Errorf("agent: event %s is not defined", ref.Name)
			return
		}
		ref.Name = internal
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return expr, nil
}

// installRule generates the action procedure (Figure 14), installs it, and
// attaches the LED rule whose action invokes it via the Action Handler.
// Caller holds a.mu.
func (a *Agent) installRule(db, user, trigName, eventName string, def *TriggerDef) ([]string, error) {
	action, shadows, err := rewriteAction(db, user, def.ActionSQL)
	if err != nil {
		return nil, err
	}
	for _, sr := range shadows {
		sdb, _, _, _ := splitInternal(sr.Table)
		if sdb != db {
			return nil, fmt.Errorf("agent: context table %s is outside the current database", sr.Table)
		}
	}
	procName := actionProcName(trigName)
	useDB := "use " + db + "\n"
	if err := execIgnoreExists(a.pm.up, prefixAll(useDB, genTmpTables(shadows))); err != nil {
		return nil, err
	}
	if _, err := a.pm.exec(useDB + genActionProc(procName, def.Context.String(), action, shadows)); err != nil {
		return nil, err
	}

	info := &triggerInfo{
		Name: trigName, DB: db, User: user, Event: eventName, Proc: procName,
		Coupling: def.Coupling, Context: def.Context, Priority: def.Priority,
	}
	if err := a.addLEDRule(info); err != nil {
		// Roll the procedure back so a retry is possible.
		_, _ = a.pm.exec(useDB + "drop procedure " + procName)
		return nil, err
	}
	if err := a.pm.saveTrigger(db, user, trigName, procName, eventName, def.Coupling, def.Context, def.Priority); err != nil {
		return nil, err
	}
	a.triggers[trigName] = info
	return []string{fmt.Sprintf("trigger %s created on event %s (%s, %s, priority %d)",
		trigName, eventName, info.Coupling, info.Context, info.Priority)}, nil
}

// addLEDRule wires a trigger's rule into the LED; its action is the
// SybaseAction analog: spawn a handler that materializes the context and
// executes the stored procedure (Figure 16).
func (a *Agent) addLEDRule(info *triggerInfo) error {
	param := ActionParam{
		StoreProc: info.Proc,
		EventName: info.Event,
		Context:   info.Context,
		DB:        info.DB,
	}
	return a.led.AddRule(&led.Rule{
		Name:     info.Name,
		Event:    info.Event,
		Context:  info.Context,
		Coupling: info.Coupling,
		Priority: info.Priority,
		Action: func(occ *led.Occ) {
			key := ""
			if d := a.dur; d != nil {
				key = actionKey(info.Name, occ)
				if d.replaying.Load() {
					// Journal replay: collect the firing; resumePending
					// executes whatever no done record covers.
					d.notePending(info.Name, key, occ)
					return
				}
				// Claim the key synchronously, before the goroutine spawn
				// and before detection clears the outstanding entry —
				// every firing is in the outstanding set, the ledger, or
				// both at any checkpoint cut.
				if !d.begin(info.Name, key, occ) {
					d.met.deduped.Inc()
					return
				}
			}
			a.actionWG.Add(1)
			enqueued := a.clock.Now()
			// FIFO ticket: this action starts only after the previous one
			// finished, preserving priority order across goroutines.
			a.actionMu.Lock()
			prev := a.actionTail
			done := make(chan struct{})
			a.actionTail = done
			a.actionMu.Unlock()
			go a.runAction(info.Name, param, occ, enqueued, prev, done, key)
		},
	})
}

// runAction executes one rule action in its own goroutine (one thread per
// SybaseAction call, Figure 16), gated by its FIFO ticket. The enqueued
// timestamp is when detection fired the rule; the latency histogram spans
// queue wait (the FIFO ticket) plus procedure execution.
func (a *Agent) runAction(rule string, p ActionParam, occ *led.Occ, enqueued time.Time, prev, done chan struct{}, key string) {
	// Recover is outermost so a simulated crash still releases the FIFO
	// ticket and the drain waitgroup on its way out.
	defer faults.Recover()
	defer a.actionWG.Done()
	defer close(done)
	if prev != nil {
		<-prev
	}
	if d := a.dur; d != nil {
		d.crash.Hit("action.preExec")
	}
	results, msgs, err := a.actions.invoke(p, occ)
	if d := a.dur; d != nil && key != "" {
		// Journal completion before anything acknowledges it. Failures
		// count too: the upstream already retried, what reaches here is
		// terminal and dead-lettered, not re-runnable by a restart.
		d.markDone(key)
		d.crash.Hit("action.postDone")
	}
	a.ctr.actionsRun.Add(1)
	a.met.ruleRuns.With(rule).Inc()
	a.met.actionSec.Observe(a.clock.Now().Sub(enqueued).Seconds())
	res := ActionResult{Rule: rule, Event: occ.Event, Occ: occ, Messages: msgs, Results: results, Err: err}
	if err != nil {
		a.ctr.actionsFailed.Add(1)
		a.met.ruleFails.With(rule).Inc()
		a.cfg.Logf("agent: action %s on %s failed: %v", p.StoreProc, p.EventName, err)
		// The upstream already retried transient failures; what reaches
		// here is terminal, so park it for inspection or manual replay.
		a.ctr.deadLettered.Add(1)
		a.dlq.push(res)
	}
	select {
	case a.ActionDone <- res:
		a.reportDropLogged.Store(false)
	default:
		// Observational channel full — drop the report, but never
		// silently: count it, and log once per overflow episode.
		a.ctr.reportsDropped.Add(1)
		if a.reportDropLogged.CompareAndSwap(false, true) {
			a.cfg.Logf("agent: ActionDone buffer full; dropping completed-action reports (see Stats.ActionReportsDropped)")
		}
	}
}

// DropTrigger removes an ECA trigger: the LED rule, the stored procedure,
// and the SysEcaTrigger row. Events persist and stay reusable, matching
// the paper (contribution 3 drops triggers, not events).
func (a *Agent) DropTrigger(db, user string, parts []string) ([]string, error) {
	internal, err := expandName(db, user, parts)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	info, ok := a.triggers[internal]
	if !ok {
		return nil, fmt.Errorf("agent: trigger %s does not exist", internal)
	}
	if err := a.led.DropRule(internal); err != nil {
		return nil, err
	}
	if _, err := a.pm.exec("use " + info.DB + "\ndrop procedure " + info.Proc); err != nil {
		a.cfg.Logf("agent: dropping procedure %s: %v", info.Proc, err)
	}
	if err := a.pm.deleteTrigger(info.DB, internal); err != nil {
		return nil, err
	}
	delete(a.triggers, internal)
	a.emitDefinitionLocked("drop", db, user, internal, nil)
	return []string{fmt.Sprintf("trigger %s dropped", internal)}, nil
}

// recover restores events and rules from the system tables (Figure 8's
// "On ECA Agent starting or recovery" path).
func (a *Agent) recover() error {
	prims, comps, trigs, err := a.pm.loadAll()
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	host, port := a.NotifyEndpoint()
	for _, p := range prims {
		if err := a.led.DefinePrimitive(p.Name); err != nil {
			return fmt.Errorf("agent: recovery: %w", err)
		}
		op := sqlparse.TriggerOp(p.Op)
		a.events[p.Name] = &eventInfo{
			Name: p.Name, DB: p.DB, User: p.User, Primitive: true, Table: p.Table, Op: op,
		}
		_, _, tobj, err := splitInternal(p.Table)
		if err == nil {
			a.nativeByTableOp[strings.ToLower(p.DB+"|"+tobj+"|"+p.Op)] = p.Name
		}
		// Adopt the authoritative vNo as the delivery watermark: the LED
		// state that pre-restart occurrences fed is gone, so they are not
		// replayed — at-least-once holds from this point forward.
		a.trackEvent(p.Name, p.Table, p.Op, p.VNo)
		// The persisted native trigger embeds the *previous* agent
		// instance's notification endpoint; regenerate it with ours (the
		// server's silent trigger overwrite makes this a clean replace).
		batches := genPrimitiveEvent(p.Name, p.Table, op, host, port)
		if _, err := a.pm.exec("use " + p.DB + "\n" + batches[len(batches)-1]); err != nil {
			return fmt.Errorf("agent: recovery: rebinding trigger for %s: %w", p.Name, err)
		}
	}
	for _, c := range comps {
		expr, err := snoop.Parse(c.Expr)
		if err != nil {
			return fmt.Errorf("agent: recovery: composite %s: %w", c.Name, err)
		}
		if err := a.led.DefineComposite(c.Name, expr); err != nil {
			return fmt.Errorf("agent: recovery: %w", err)
		}
		a.events[c.Name] = &eventInfo{Name: c.Name, DB: c.DB, User: c.User, Expr: c.Expr}
	}
	for _, t := range trigs {
		info := &triggerInfo{
			Name: t.Name, DB: t.DB, User: t.User, Event: t.Event, Proc: t.Proc,
			Coupling: t.Coupling, Context: t.Context, Priority: t.Priority,
		}
		if err := a.addLEDRule(info); err != nil {
			return fmt.Errorf("agent: recovery: rule %s: %w", t.Name, err)
		}
		a.triggers[t.Name] = info
	}
	return nil
}

func prefixAll(prefix string, batches []string) []string {
	out := make([]string, len(batches))
	for i, b := range batches {
		out[i] = prefix + b
	}
	return out
}
