package agent

import (
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

// ingestQueueCap bounds each ingest worker's queue of pending batches.
// Submissions block when a queue is full, so a slow LED shard exerts
// backpressure on the UDP reader instead of growing memory without bound.
const ingestQueueCap = 256

// ingestPool drains decoded notification batches into the LED on a bounded
// set of workers. A batch holds primitives destined for one LED shard, and
// every shard routes to a fixed worker (shard mod workers), so occurrences
// of one shard — and therefore of one event — are ingested in arrival
// order while independent shards proceed concurrently. The per-event vNo
// watermark (recovery.go) would tolerate reordering anyway; the routing
// just keeps the common case gap-free.
type ingestPool struct {
	agent  *Agent
	queues []chan []led.Primitive
	depths []atomic.Int64 // per-worker queued batches (gauge)
	wg     sync.WaitGroup
	// pending counts submitted-but-unfinished batches, so WaitIngest is a
	// true barrier (queue depth alone misses the batch being processed).
	pending sync.WaitGroup
	// gauges mirrors depths into the metrics registry; set once during
	// initMetrics, before any submission. Nil when metrics are off.
	gauges []*obs.Gauge
	// closeOnce makes close idempotent (Agent.Close may run twice: once
	// from a failed New, once from the caller's deferred Close).
	closeOnce sync.Once
}

func newIngestPool(a *Agent, workers int) *ingestPool {
	p := &ingestPool{
		agent:  a,
		queues: make([]chan []led.Primitive, workers),
		depths: make([]atomic.Int64, workers),
	}
	for i := range p.queues {
		p.queues[i] = make(chan []led.Primitive, ingestQueueCap)
		p.wg.Add(1)
		go p.work(i)
	}
	return p
}

func (p *ingestPool) work(i int) {
	defer p.wg.Done()
	for batch := range p.queues[i] {
		d := p.depths[i].Add(-1)
		if p.gauges != nil {
			p.gauges[i].Set(d)
		}
		for _, prim := range batch {
			p.agent.ingest(prim)
		}
		p.pending.Done()
	}
}

// submit hands one shard's batch to its worker, blocking on backpressure.
func (p *ingestPool) submit(key int, batch []led.Primitive) {
	w := key % len(p.queues)
	p.pending.Add(1)
	d := p.depths[w].Add(1)
	if p.gauges != nil {
		p.gauges[w].Set(d)
	}
	p.queues[w] <- batch
}

// close stops the workers after draining every queued batch. No submit may
// run concurrently with or after close (the notifier is shut down first).
func (p *ingestPool) close() {
	p.closeOnce.Do(func() {
		for _, q := range p.queues {
			close(q)
		}
	})
	p.wg.Wait()
}

// depth reports one worker's queued-batch count.
func (p *ingestPool) depth(i int) int64 { return p.depths[i].Load() }

// routeKey picks the ingest routing key for an event: its LED shard when
// the event is known, else a stable hash so unknown events still spread
// across workers and keep per-event FIFO order.
func (a *Agent) routeKey(event string) int {
	if sid := a.led.ShardID(event); sid >= 0 {
		return sid
	}
	h := fnv.New32a()
	h.Write([]byte(event))
	return int(h.Sum32() & 0x7fffffff)
}

// DeliverBatch ingests one datagram that may carry several notifications
// separated by newlines — the batched wire format the generated triggers
// use to amortize syscalls under bursts. Lines are decoded, grouped by the
// LED shard of their event, and handed to the ingest worker pool so
// independent shards are signalled concurrently; with the pool disabled
// (Config.IngestWorkers < 0) every line is delivered synchronously, in
// order, exactly like repeated Deliver calls.
func (a *Agent) DeliverBatch(datagram string) {
	a.waitReady()
	if a.ingestPool == nil {
		for _, line := range strings.Split(datagram, "\n") {
			if line != "" {
				a.Deliver(line)
			}
		}
		return
	}
	prims, badLines := decodeBatch(datagram)
	a.ctr.notifReceived.Add(uint64(len(prims) + len(badLines)))
	a.ctr.notifDropped.Add(uint64(len(badLines)))
	for _, err := range badLines {
		a.cfg.Logf("agent: dropping notification: %v", err)
	}
	var (
		keys    []int
		batches = make(map[int][]led.Primitive)
	)
	for _, p := range prims {
		key := a.routeKey(p.Event)
		if _, ok := batches[key]; !ok {
			keys = append(keys, key)
		}
		batches[key] = append(batches[key], p)
	}
	for _, key := range keys {
		a.ingestPool.submit(key, batches[key])
	}
}

// decodeBatch splits a batched datagram into its notification lines and
// parses each, returning the decoded primitives in wire order plus one
// error per malformed line. Blank lines (a trailing newline) are neither
// primitives nor errors.
func decodeBatch(datagram string) (prims []led.Primitive, badLines []error) {
	for _, line := range strings.Split(datagram, "\n") {
		if line == "" {
			continue
		}
		event, table, op, vno, err := parseNotification(line)
		if err != nil {
			badLines = append(badLines, err)
			continue
		}
		prims = append(prims, led.Primitive{Event: event, Table: table, Op: op, VNo: vno})
	}
	return prims, badLines
}

// WaitIngest blocks until every batch submitted so far has been drained
// into the LED — the barrier tests and benchmarks use before reading
// detection results. Returns immediately when the pool is disabled.
func (a *Agent) WaitIngest() {
	if a.ingestPool != nil {
		a.ingestPool.pending.Wait()
	}
}
