package agent

import (
	"bytes"
	"sync"
	"sync/atomic"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/obs"
)

// ingestQueueCap bounds each ingest worker's queue of pending batches.
// Submissions block when a queue is full, so a slow LED shard exerts
// backpressure on the UDP reader instead of growing memory without bound.
const ingestQueueCap = 256

// primBatch carries one shard's decoded primitives from the delivery
// goroutine to its ingest worker. Batches are pooled: the worker returns
// its batch after draining it, so a steady notification load recycles a
// fixed set of slices instead of allocating one per datagram.
type primBatch struct {
	ps []led.Primitive
}

var primBatchPool = sync.Pool{New: func() any {
	return &primBatch{ps: make([]led.Primitive, 0, 16)}
}}

func getPrimBatch() *primBatch { return primBatchPool.Get().(*primBatch) }

// putPrimBatch zeroes the slice before pooling so a recycled batch never
// pins the previous datagram's primitives.
func putPrimBatch(pb *primBatch) {
	for i := range pb.ps {
		pb.ps[i] = led.Primitive{}
	}
	pb.ps = pb.ps[:0]
	primBatchPool.Put(pb)
}

// batchScratch is the reusable per-delivery routing state: the shard→batch
// map and its insertion-ordered key list. Reusing the map (and recycling
// primBatches through their own pool) keeps the steady-state DeliverBatch
// path off the allocator; alloc_test.go pins the budget.
type batchScratch struct {
	keys    []int
	batches map[int]*primBatch
}

var batchScratchPool = sync.Pool{New: func() any {
	return &batchScratch{batches: make(map[int]*primBatch, 8)}
}}

// ingestPool drains decoded notification batches into the LED on a bounded
// set of workers. A batch holds primitives destined for one LED shard, and
// every shard routes to a fixed worker (shard mod workers), so occurrences
// of one shard — and therefore of one event — are ingested in arrival
// order while independent shards proceed concurrently. The per-event vNo
// watermark (recovery.go) would tolerate reordering anyway; the routing
// just keeps the common case gap-free.
type ingestPool struct {
	agent  *Agent
	queues []chan *primBatch
	depths []atomic.Int64 // per-worker queued batches (gauge)
	wg     sync.WaitGroup
	// pending counts submitted-but-unfinished batches, so WaitIngest is a
	// true barrier (queue depth alone misses the batch being processed).
	pending sync.WaitGroup
	// gauges mirrors depths into the metrics registry; set once during
	// initMetrics, before any submission. Nil when metrics are off.
	gauges []*obs.Gauge
	// closeOnce makes close idempotent (Agent.Close may run twice: once
	// from a failed New, once from the caller's deferred Close).
	closeOnce sync.Once
}

func newIngestPool(a *Agent, workers int) *ingestPool {
	p := &ingestPool{
		agent:  a,
		queues: make([]chan *primBatch, workers),
		depths: make([]atomic.Int64, workers),
	}
	for i := range p.queues {
		p.queues[i] = make(chan *primBatch, ingestQueueCap)
		p.wg.Add(1)
		go p.work(i)
	}
	return p
}

func (p *ingestPool) work(i int) {
	defer p.wg.Done()
	for pb := range p.queues[i] {
		d := p.depths[i].Add(-1)
		if p.gauges != nil {
			p.gauges[i].Set(d)
		}
		for _, prim := range pb.ps {
			p.agent.ingest(prim)
		}
		putPrimBatch(pb)
		p.pending.Done()
	}
}

// submit hands one shard's batch to its worker, blocking on backpressure.
// The batch belongs to the worker from here on; it is recycled after
// draining.
func (p *ingestPool) submit(key int, pb *primBatch) {
	w := key % len(p.queues)
	p.pending.Add(1)
	d := p.depths[w].Add(1)
	if p.gauges != nil {
		p.gauges[w].Set(d)
	}
	p.queues[w] <- pb
}

// close stops the workers after draining every queued batch. No submit may
// run concurrently with or after close (the notifier is shut down first).
func (p *ingestPool) close() {
	p.closeOnce.Do(func() {
		for _, q := range p.queues {
			close(q)
		}
	})
	p.wg.Wait()
}

// depth reports one worker's queued-batch count.
func (p *ingestPool) depth(i int) int64 { return p.depths[i].Load() }

// routeKey picks the ingest routing key for an event: its LED shard when
// the event is known, else a stable FNV-1a hash (inlined — hash.Hash32
// would allocate on this path) so unknown events still spread across
// workers and keep per-event FIFO order.
func (a *Agent) routeKey(event string) int {
	if sid := a.led.ShardID(event); sid >= 0 {
		return sid
	}
	h := uint32(2166136261)
	for i := 0; i < len(event); i++ {
		h ^= uint32(event[i])
		h *= 16777619
	}
	return int(h & 0x7fffffff)
}

// DeliverBatchBytes ingests one datagram that may carry several
// notifications — either the newline-batched text form the generated
// triggers emit or one ECB1 binary frame (notifcodec.go), sniffed by
// magic. Notifications are decoded, grouped by the LED shard of their
// event, and handed to the ingest worker pool so independent shards are
// signalled concurrently; with the pool disabled (Config.IngestWorkers <
// 0) every notification is ingested synchronously, in wire order, exactly
// like repeated Deliver calls.
//
// The caller keeps ownership of data — nothing in the decode retains it
// (names are interned, occurrences copied) — which is what lets the
// notifier hand its one receive buffer straight in.
func (a *Agent) DeliverBatchBytes(data []byte) {
	a.waitReady()
	binary := IsBinaryBatch(data)
	if binary {
		a.met.binaryBatches.Inc()
	}
	if a.ingestPool == nil {
		var good, bad int
		if binary {
			n, err := decodeBinaryBatch(data, &wireNames, a.ingest)
			good = n
			if err != nil {
				bad = 1
				a.cfg.Logf("agent: dropping binary batch: %v", err)
			}
		} else {
			good, bad = decodeText(data, a.ingest, func(err error) {
				a.cfg.Logf("agent: dropping notification: %v", err)
			})
		}
		a.ctr.notifReceived.Add(uint64(good + bad))
		a.ctr.notifDropped.Add(uint64(bad))
		return
	}

	scr := batchScratchPool.Get().(*batchScratch)
	emit := func(p led.Primitive) {
		key := a.routeKey(p.Event)
		pb, ok := scr.batches[key]
		if !ok {
			pb = getPrimBatch()
			//ecavet:allow poolleak ownership transfers with the batch: submit hands it to the shard worker, which recycles it via putPrimBatch
			scr.batches[key] = pb
			scr.keys = append(scr.keys, key)
		}
		pb.ps = append(pb.ps, p)
	}
	var good, bad int
	if binary {
		n, err := decodeBinaryBatch(data, &wireNames, emit)
		good = n
		if err != nil {
			// The frame fails as a unit (decode validates before the first
			// emit), so one dropped datagram, nothing routed.
			bad = 1
			a.cfg.Logf("agent: dropping binary batch: %v", err)
		}
	} else {
		good, bad = decodeText(data, emit, func(err error) {
			a.cfg.Logf("agent: dropping notification: %v", err)
		})
	}
	a.ctr.notifReceived.Add(uint64(good + bad))
	a.ctr.notifDropped.Add(uint64(bad))
	for _, key := range scr.keys {
		a.ingestPool.submit(key, scr.batches[key])
		delete(scr.batches, key)
	}
	scr.keys = scr.keys[:0]
	batchScratchPool.Put(scr)
}

// DeliverBatch is the string-typed convenience form of DeliverBatchBytes.
func (a *Agent) DeliverBatch(datagram string) {
	a.DeliverBatchBytes([]byte(datagram))
}

// DecodeBatchBytes decodes a newline-batched text datagram through the
// process-wide name table, calling emit per decoded notification and
// onErr per malformed line; it returns the good and bad line counts. The
// exported, allocation-free counterpart of DeliverBatch for routers and
// benchmarks that decode without delivering.
func DecodeBatchBytes(data []byte, emit func(led.Primitive), onErr func(error)) (good, bad int) {
	return decodeText(data, emit, onErr)
}

// decodeText walks a newline-batched text datagram, calling emit for every
// decoded notification (in wire order) and onErr for every malformed line.
// Blank lines (a trailing newline) are neither. It returns the good and
// bad line counts. With interned names and a non-capturing emit the walk
// performs no allocations; TestAllocsDecodeTextClean pins that.
func decodeText(data []byte, emit func(led.Primitive), onErr func(error)) (good, bad int) {
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		event, table, op, vno, err := parseNotificationBytes(line, &wireNames)
		if err != nil {
			bad++
			onErr(err)
			continue
		}
		good++
		emit(led.Primitive{Event: event, Table: table, Op: op, VNo: vno})
	}
	return good, bad
}

// decodeBatch splits a batched text datagram into its notification lines
// and parses each, returning the decoded primitives in wire order plus one
// error per malformed line (the allocating convenience form of
// decodeText).
func decodeBatch(datagram []byte) (prims []led.Primitive, badLines []error) {
	decodeText(datagram,
		func(p led.Primitive) { prims = append(prims, p) },
		func(err error) { badLines = append(badLines, err) })
	return prims, badLines
}

// WaitIngest blocks until every batch submitted so far has been drained
// into the LED — the barrier tests and benchmarks use before reading
// detection results. Returns immediately when the pool is disabled.
func (a *Agent) WaitIngest() {
	if a.ingestPool != nil {
		a.ingestPool.pending.Wait()
	}
}
