package agent

import "sync/atomic"

// Stats is a snapshot of the agent's operational counters, the kind of
// observability a production mediator needs (the paper's §6 efficiency
// discussion motivates measuring exactly these paths).
type Stats struct {
	// NotificationsReceived counts datagrams delivered to the Event
	// Notifier (UDP or in-process).
	NotificationsReceived uint64
	// NotificationsDropped counts malformed datagrams discarded.
	NotificationsDropped uint64
	// ECACommands counts CREATE/DROP trigger commands the Language Filter
	// intercepted.
	ECACommands uint64
	// PassThroughBatches counts batches forwarded to the server untouched.
	PassThroughBatches uint64
	// ActionsRun counts completed rule actions.
	ActionsRun uint64
	// ActionsFailed counts rule actions whose procedure returned an error.
	ActionsFailed uint64
}

// counters holds the live atomic counters.
type counters struct {
	notifReceived atomic.Uint64
	notifDropped  atomic.Uint64
	ecaCommands   atomic.Uint64
	passThrough   atomic.Uint64
	actionsRun    atomic.Uint64
	actionsFailed atomic.Uint64
}

// Stats returns a consistent-enough snapshot of the counters.
func (a *Agent) Stats() Stats {
	return Stats{
		NotificationsReceived: a.ctr.notifReceived.Load(),
		NotificationsDropped:  a.ctr.notifDropped.Load(),
		ECACommands:           a.ctr.ecaCommands.Load(),
		PassThroughBatches:    a.ctr.passThrough.Load(),
		ActionsRun:            a.ctr.actionsRun.Load(),
		ActionsFailed:         a.ctr.actionsFailed.Load(),
	}
}
