package agent

import "sync/atomic"

// Stats is a snapshot of the agent's operational counters, the kind of
// observability a production mediator needs (the paper's §6 efficiency
// discussion motivates measuring exactly these paths).
type Stats struct {
	// NotificationsReceived counts datagrams delivered to the Event
	// Notifier (UDP or in-process).
	NotificationsReceived uint64
	// NotificationsDelivered counts well-formed, non-duplicate
	// notifications signalled into the LED. Every received notification is
	// exactly one of delivered, dropped, or duplicate.
	NotificationsDelivered uint64
	// NotificationsDropped counts malformed datagrams discarded.
	NotificationsDropped uint64
	// NotificationsDuplicate counts datagrams suppressed by the delivery
	// watermark (UDP duplicates, or reordered datagrams whose gap was
	// already replayed).
	NotificationsDuplicate uint64
	// GapsDetected counts vNo gaps the recovery tracker observed, either
	// in-stream or during a resync sweep.
	GapsDetected uint64
	// OccurrencesRecovered counts primitive occurrences replayed into the
	// LED after being lost on the notification path.
	OccurrencesRecovered uint64
	// ECACommands counts CREATE/DROP trigger commands the Language Filter
	// intercepted.
	ECACommands uint64
	// PassThroughBatches counts batches forwarded to the server untouched.
	PassThroughBatches uint64
	// ActionsRun counts completed rule actions.
	ActionsRun uint64
	// ActionsFailed counts rule actions whose procedure returned an error.
	ActionsFailed uint64
	// ActionsDeadLettered counts failed actions parked in the dead-letter
	// queue after the upstream's retries were exhausted or the error was
	// terminal.
	ActionsDeadLettered uint64
	// ActionReportsDropped counts completed-action reports discarded
	// because the ActionDone buffer was full (rule execution itself is
	// unaffected; only the observational report is lost).
	ActionReportsDropped uint64
	// UpstreamRetries counts re-attempts of upstream batches after
	// retryable connection failures.
	UpstreamRetries uint64
	// UpstreamReconnects counts fresh connections dialed to replace a
	// broken one.
	UpstreamReconnects uint64
}

// counters holds the live atomic counters.
type counters struct {
	notifReceived   atomic.Uint64
	notifDelivered  atomic.Uint64
	notifDropped    atomic.Uint64
	notifDuplicate  atomic.Uint64
	gapsDetected    atomic.Uint64
	occRecovered    atomic.Uint64
	ecaCommands     atomic.Uint64
	passThrough     atomic.Uint64
	actionsRun      atomic.Uint64
	actionsFailed   atomic.Uint64
	deadLettered    atomic.Uint64
	reportsDropped  atomic.Uint64
	upstreamRetries atomic.Uint64
	reconnects      atomic.Uint64
}

// Stats returns a consistent-enough snapshot of the counters.
func (a *Agent) Stats() Stats {
	return Stats{
		NotificationsReceived:  a.ctr.notifReceived.Load(),
		NotificationsDelivered: a.ctr.notifDelivered.Load(),
		NotificationsDropped:   a.ctr.notifDropped.Load(),
		NotificationsDuplicate: a.ctr.notifDuplicate.Load(),
		GapsDetected:           a.ctr.gapsDetected.Load(),
		OccurrencesRecovered:   a.ctr.occRecovered.Load(),
		ECACommands:            a.ctr.ecaCommands.Load(),
		PassThroughBatches:     a.ctr.passThrough.Load(),
		ActionsRun:             a.ctr.actionsRun.Load(),
		ActionsFailed:          a.ctr.actionsFailed.Load(),
		ActionsDeadLettered:    a.ctr.deadLettered.Load(),
		ActionReportsDropped:   a.ctr.reportsDropped.Load(),
		UpstreamRetries:        a.ctr.upstreamRetries.Load(),
		UpstreamReconnects:     a.ctr.reconnects.Load(),
	}
}
