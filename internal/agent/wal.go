package agent

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// Write-ahead journal of what happened since the last checkpoint. Two
// record kinds cover the whole delta:
//
//   - an occurrence record for every primitive occurrence the tracker
//     accepted (appended before the LED sees it, so a crash between
//     append and detection replays the occurrence instead of losing it);
//   - an action-done record for every rule action whose procedure call
//     returned (appended before the completion is acknowledged, so a
//     crash after it never re-runs the action).
//
// Recovery = restore the checkpoint, then re-feed the occurrence records
// in order while marking done actions off in the ledger; whatever the
// journal proves already ran is skipped, everything else runs once.
//
// File layout (wal-<epoch>):
//
//	magic "ECAWAL01" | epoch uint64 LE
//	record := kind byte | payloadLen uvarint | payload | crc32(kind+payload) uint32 LE
//
// A torn tail — the suffix an unsynced crash may shred — is detected by
// the length/CRC frame and cleanly ends replay; anything durable before
// the tear is still recovered. A wrong magic is a version skew and an
// error, never a partial load.

const walMagic = "ECAWAL01"

const (
	walOccKind  byte = 1 // primitive occurrence accepted by the tracker
	walDoneKind byte = 2 // rule action completed
)

// walRecord is one decoded journal record.
type walRecord struct {
	kind byte

	// walOccKind fields
	event, table, op string
	vno              int
	at               time.Time

	// walDoneKind field
	key string
}

func walAppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// walHeader renders the file header for one journal epoch.
func walHeader(epoch uint64) []byte {
	b := []byte(walMagic)
	return binary.LittleEndian.AppendUint64(b, epoch)
}

// encodeWALRecord frames one record.
func encodeWALRecord(r walRecord) []byte {
	var p []byte
	switch r.kind {
	case walOccKind:
		p = walAppendString(p, r.event)
		p = walAppendString(p, r.table)
		p = walAppendString(p, r.op)
		p = binary.AppendVarint(p, int64(r.vno))
		p = binary.AppendVarint(p, r.at.UnixNano())
	case walDoneKind:
		p = walAppendString(p, r.key)
	}
	frame := []byte{r.kind}
	frame = binary.AppendUvarint(frame, uint64(len(p)))
	frame = append(frame, p...)
	h := crc32.NewIEEE()
	h.Write([]byte{r.kind})
	h.Write(p)
	return binary.LittleEndian.AppendUint32(frame, h.Sum32())
}

func walReadUvarint(b []byte, off int) (uint64, int, bool) {
	n, sz := binary.Uvarint(b[off:])
	if sz <= 0 {
		return 0, off, false
	}
	return n, off + sz, true
}

func walReadVarint(b []byte, off int) (int64, int, bool) {
	n, sz := binary.Varint(b[off:])
	if sz <= 0 {
		return 0, off, false
	}
	return n, off + sz, true
}

func walReadString(b []byte, off int) (string, int, bool) {
	n, off, ok := walReadUvarint(b, off)
	if !ok || n > uint64(len(b)-off) {
		return "", off, false
	}
	return string(b[off : off+int(n)]), off + int(n), true
}

// parseWAL decodes a journal image. Structural damage confined to the
// tail (a torn unsynced suffix) ends the scan and sets torn; records
// before the tear are returned. A bad magic on a non-empty header is a
// version skew and returns an error with no records.
func parseWAL(data []byte) (epoch uint64, recs []walRecord, torn bool, err error) {
	headerLen := len(walMagic) + 8
	if len(data) < headerLen {
		// The header itself was shredded (crash before its sync); nothing
		// durable was ever framed, so there is nothing to replay.
		return 0, nil, len(data) > 0, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return 0, nil, false, fmt.Errorf("agent: wal: bad magic %q", data[:len(walMagic)])
	}
	epoch = binary.LittleEndian.Uint64(data[len(walMagic):headerLen])
	off := headerLen
	for off < len(data) {
		kind := data[off]
		if kind != walOccKind && kind != walDoneKind {
			return epoch, recs, true, nil
		}
		plen, o, ok := walReadUvarint(data, off+1)
		if !ok || plen > uint64(len(data)-o) || len(data)-o-int(plen) < 4 {
			return epoch, recs, true, nil
		}
		payload := data[o : o+int(plen)]
		crcOff := o + int(plen)
		h := crc32.NewIEEE()
		h.Write([]byte{kind})
		h.Write(payload)
		if binary.LittleEndian.Uint32(data[crcOff:crcOff+4]) != h.Sum32() {
			return epoch, recs, true, nil
		}
		r, ok := parseWALPayload(kind, payload)
		if !ok {
			return epoch, recs, true, nil
		}
		recs = append(recs, r)
		off = crcOff + 4
	}
	return epoch, recs, false, nil
}

func parseWALPayload(kind byte, p []byte) (walRecord, bool) {
	r := walRecord{kind: kind}
	var ok bool
	off := 0
	switch kind {
	case walOccKind:
		if r.event, off, ok = walReadString(p, off); !ok {
			return r, false
		}
		if r.table, off, ok = walReadString(p, off); !ok {
			return r, false
		}
		if r.op, off, ok = walReadString(p, off); !ok {
			return r, false
		}
		var vno, ns int64
		if vno, off, ok = walReadVarint(p, off); !ok {
			return r, false
		}
		if ns, off, ok = walReadVarint(p, off); !ok {
			return r, false
		}
		r.vno = int(vno)
		if ns != 0 {
			r.at = time.Unix(0, ns).UTC()
		}
	case walDoneKind:
		if r.key, off, ok = walReadString(p, off); !ok {
			return r, false
		}
	}
	return r, off == len(p)
}
