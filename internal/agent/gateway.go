package agent

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/activedb/ecaagent/internal/sqllex"
	"github.com/activedb/ecaagent/internal/sqlparse"
	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/tds"
)

// ClientSession is the agent-side state for one client connection: its own
// pass-through upstream connection plus the (database, user) context the
// ECA parser needs for name expansion. From the client's point of view the
// session is indistinguishable from a direct server connection — the
// transparency property of Figure 1.
type ClientSession struct {
	agent *Agent
	up    Upstream
	user  string
	db    string
}

// NewClientSession opens a session as the gateway does for each incoming
// client connection. It is also the embedding API: programs can drive the
// agent in-process through it.
func (a *Agent) NewClientSession(user, db string) (*ClientSession, error) {
	if user == "" {
		user = "dbo"
	}
	up, err := a.cfg.Dial(user, db)
	if err != nil {
		return nil, err
	}
	return &ClientSession{agent: a, up: up, user: user, db: db}, nil
}

// Close releases the session's upstream connection.
func (cs *ClientSession) Close() error { return cs.up.Close() }

// User returns the session login.
func (cs *ClientSession) User() string { return cs.user }

// Database returns the session's current database.
func (cs *ClientSession) Database() string { return cs.db }

// Exec is the Language Filter (Figure 2): each GO-batch of the script is
// classified as an ECA command (handled by the agent) or ordinary SQL
// (passed through to the server verbatim).
func (cs *ClientSession) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	var out []*sqltypes.ResultSet
	for _, batch := range sqlparse.SplitBatches(sql) {
		start := cs.agent.clock.Now()
		results, err := cs.execBatch(batch)
		cs.agent.met.gatewayBatchSec.Observe(cs.agent.clock.Now().Sub(start).Seconds())
		out = append(out, results...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// splitLeadingUse detects a batch beginning with "use <db>" and returns
// the database plus the remaining text, so an ECA command can follow a
// database switch in the same batch (the common isql pattern).
func splitLeadingUse(batch string) (db, rest string, ok bool) {
	toks, err := sqllex.Tokenize(batch)
	if err != nil || len(toks) < 3 {
		return "", "", false
	}
	if !toks[0].IsKeyword("use") || toks[1].Kind != sqllex.TokIdent {
		return "", "", false
	}
	return toks[1].Text, batch[toks[1].End:], true
}

func (cs *ClientSession) execBatch(batch string) ([]*sqltypes.ResultSet, error) {
	// A "use db" prefix ahead of an ECA command is honoured here so the
	// name expansion happens in the right database.
	if db, rest, ok := splitLeadingUse(batch); ok {
		isECADrop := false
		if parts, isDrop := ParseDropTrigger(rest); isDrop {
			// The drop is classified against the *target* database.
			isECADrop = cs.agent.IsECATrigger(db, cs.user, parts)
		}
		if IsECACreateTrigger(rest) || isECADrop {
			useResults, err := cs.up.Exec("use " + db)
			if err != nil {
				return useResults, err
			}
			cs.db = db
			ecaResults, err := cs.execBatch(rest)
			return append(useResults, ecaResults...), err
		}
	}
	switch {
	case IsECACreateTrigger(batch):
		cs.agent.ctr.ecaCommands.Add(1)
		def, err := ParseECATrigger(batch)
		if err != nil {
			return nil, err
		}
		msgs, err := cs.agent.CreateTrigger(cs.db, cs.user, def)
		if err != nil {
			return nil, err
		}
		return []*sqltypes.ResultSet{{Messages: msgs}}, nil

	default:
		if parts, ok := ParseDropTrigger(batch); ok &&
			cs.agent.IsECATrigger(cs.db, cs.user, parts) {
			cs.agent.ctr.ecaCommands.Add(1)
			msgs, err := cs.agent.DropTrigger(cs.db, cs.user, parts)
			if err != nil {
				return nil, err
			}
			return []*sqltypes.ResultSet{{Messages: msgs}}, nil
		}
		// Ordinary SQL: pass through untouched, then track database
		// switches so later ECA commands expand names correctly.
		cs.agent.ctr.passThrough.Add(1)
		results, err := cs.up.Exec(batch)
		if err == nil {
			if db, switched := lastUseTarget(batch); switched {
				cs.db = db
			}
			// DEFERRED rules run at transaction boundaries: a committed
			// batch releases the queue (Snoop's deferred coupling
			// semantics; the paper lists this mode as future work).
			if batchCommits(batch) {
				cs.agent.FlushDeferred()
			}
		}
		return results, err
	}
}

// batchCommits reports whether the batch contains a top-level COMMIT.
func batchCommits(batch string) bool {
	toks, err := sqllex.Tokenize(batch)
	if err != nil {
		return false
	}
	for _, t := range toks {
		if t.IsKeyword("commit") {
			return true
		}
	}
	return false
}

// Query is a convenience wrapper returning the last result set with rows.
func (cs *ClientSession) Query(sql string) (*sqltypes.ResultSet, error) {
	results, err := cs.Exec(sql)
	if err != nil {
		return nil, err
	}
	for i := len(results) - 1; i >= 0; i-- {
		if results[i].Schema != nil {
			return results[i], nil
		}
	}
	return &sqltypes.ResultSet{}, nil
}

// lastUseTarget lexically scans a batch for USE statements, returning the
// final target database.
func lastUseTarget(batch string) (string, bool) {
	toks, err := sqllex.Tokenize(batch)
	if err != nil {
		return "", false
	}
	db := ""
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].IsKeyword("use") && toks[i+1].Kind == sqllex.TokIdent {
			// Only count statement-initial USE (previous token is not a
			// name component).
			if i == 0 || !toks[i-1].IsOp(".") {
				db = toks[i+1].Text
			}
		}
	}
	return db, db != ""
}

// gateway is the General Interface: a TCP listener speaking the same wire
// protocol as the server, forwarding through ClientSessions.
type gateway struct {
	agent    *Agent
	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{} // guarded by mu
	closed   bool                  // guarded by mu
	wg       sync.WaitGroup
}

// ListenGateway starts the agent's client-facing listener; clients connect
// to it exactly as they would to the server.
func (a *Agent) ListenGateway(addr string) error {
	if a.gateway != nil {
		return errors.New("agent: gateway already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g := &gateway{agent: a, listener: ln, conns: make(map[net.Conn]struct{})}
	a.gateway = g
	g.wg.Add(1)
	go g.acceptLoop()
	return nil
}

// GatewayAddr returns the gateway's bound address.
func (a *Agent) GatewayAddr() string {
	if a.gateway == nil {
		return ""
	}
	return a.gateway.listener.Addr().String()
}

func (g *gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.listener.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serve(conn)
		}()
	}
}

func (g *gateway) close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	for c := range g.conns {
		c.Close()
	}
	g.mu.Unlock()
	g.listener.Close()
	g.wg.Wait()
}

// serve handles one client connection: the same login/language loop the
// server runs, but with the Language Filter in the request path.
func (g *gateway) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()

	pkt, err := tds.ReadPacket(conn)
	if err != nil {
		return
	}
	login, err := tds.UnmarshalLogin(pkt)
	if err != nil {
		_ = tds.WritePacket(conn, tds.MarshalLoginAck(tds.LoginAck{Message: err.Error()}))
		return
	}
	cs, err := g.agent.NewClientSession(login.User, login.Database)
	if err != nil {
		_ = tds.WritePacket(conn, tds.MarshalLoginAck(tds.LoginAck{Message: err.Error()}))
		return
	}
	defer cs.Close()
	if err := tds.WritePacket(conn, tds.MarshalLoginAck(tds.LoginAck{OK: true, Message: "login succeeded (via ECA agent)"})); err != nil {
		return
	}

	for {
		pkt, err := tds.ReadPacket(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				g.agent.cfg.Logf("agent: gateway read: %v", err)
			}
			return
		}
		sql, err := tds.UnmarshalLanguage(pkt)
		if err != nil {
			_ = tds.WriteResults(conn, nil, fmt.Errorf("protocol error: %v", err))
			continue
		}
		results, execErr := cs.Exec(sql)
		// A pass-through error may itself be a remote ServerError; keep
		// its text either way.
		var srvErr *tds.ServerError
		if errors.As(execErr, &srvErr) {
			execErr = srvErr
		}
		if err := tds.WriteResults(conn, results, execErr); err != nil {
			return
		}
	}
}
