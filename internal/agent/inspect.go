package agent

import (
	"sort"

	"github.com/activedb/ecaagent/internal/storage"
)

// DurableOccurrences inspects a durability directory without booting an
// agent over it: it decodes the newest valid checkpoint, folds every
// journal generation at or after it, and reports the highest durable vNo
// per event. torn reports whether any journal ended in a torn tail (the
// durable prefix before the tear is still counted — the recovery
// contract is "prefer the prefix, report the cut", and this is how tests
// observe both halves).
//
// The cluster chaos suite uses it as the RPO=0 oracle: after killing a
// sync-mode primary, every occurrence it acknowledged must already
// satisfy vno <= wm[event] on the standby's replica directory — checked
// on the raw files, before any promotion, replay, or resync could paper
// over a loss.
func DurableOccurrences(fs storage.FS) (wm map[string]int, torn bool, err error) {
	names, err := fs.List()
	if err != nil {
		return nil, false, err
	}
	var ckptEpochs, walEpochs []uint64
	for _, name := range names {
		prefix, e, ok := parseGenName(name)
		if !ok {
			continue
		}
		switch prefix {
		case "ckpt":
			ckptEpochs = append(ckptEpochs, e)
		case "wal":
			walEpochs = append(walEpochs, e)
		}
	}
	sort.Slice(ckptEpochs, func(i, j int) bool { return ckptEpochs[i] > ckptEpochs[j] })
	sort.Slice(walEpochs, func(i, j int) bool { return walEpochs[i] < walEpochs[j] })

	wm = make(map[string]int)
	var baseEpoch uint64
	for _, e := range ckptEpochs { // newest valid checkpoint wins
		data, rerr := fs.ReadFile(ckptName(e))
		if rerr != nil {
			continue
		}
		ck, embedded, derr := decodeCheckpoint(data)
		if derr != nil || embedded != e {
			continue
		}
		for ev, w := range ck.Watermarks {
			wm[ev] = w.Last
		}
		baseEpoch = e
		break
	}
	for _, e := range walEpochs {
		if e < baseEpoch {
			continue // pruned generations may linger; the checkpoint covers them
		}
		data, rerr := fs.ReadFile(walName(e))
		if rerr != nil {
			continue
		}
		embedded, recs, t, perr := parseWAL(data)
		if perr != nil || embedded != e {
			torn = true // unusable journal: whatever it held is cut
			continue
		}
		torn = torn || t
		for _, r := range recs {
			if r.kind != walOccKind {
				continue
			}
			if r.vno > wm[r.event] {
				wm[r.event] = r.vno
			}
		}
	}
	return wm, torn, nil
}
