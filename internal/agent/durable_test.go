package agent

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// durableRig is a restartable in-process deployment: the engine and the
// durable directory outlive agent incarnations.
type durableRig struct {
	t   *testing.T
	eng *engine.Engine
	fs  *faults.CrashDir
}

func newDurableRig(t *testing.T) *durableRig {
	t.Helper()
	r := &durableRig{t: t, eng: engine.New(catalog.New()), fs: faults.NewCrashDir(1)}
	seed := r.eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database sentineldb
use sentineldb
create table stock (symbol varchar(10), price float null)`); err != nil {
		t.Fatal(err)
	}
	return r
}

// start boots one agent incarnation over the shared durable directory.
func (r *durableRig) start(mutate func(*Config)) *Agent {
	r.t.Helper()
	cfg := Config{
		Dial:       LocalDialer(r.eng),
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
		Durability: &Durability{FS: r.fs, WALSync: WALSyncAlways},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		r.t.Fatalf("starting agent: %v", err)
	}
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	return a
}

func (r *durableRig) session(a *Agent) *ClientSession {
	r.t.Helper()
	cs, err := a.NewClientSession("sharma", "sentineldb")
	if err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(func() { cs.Close() })
	return cs
}

// TestDLQPersistsAcrossRestart: dead-lettered actions are flushed with the
// final checkpoint on Close and reloaded on the next start — and the done
// mark in the journal keeps the failed action from re-running.
func TestDLQPersistsAcrossRestart(t *testing.T) {
	r := newDurableRig(t)
	a1 := r.start(nil)
	cs := r.session(a1)
	// Terminal failure every run: the action references a missing table.
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as select * from nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	if res := waitAction(t, a1); res.Err == nil {
		t.Fatal("broken action reported success")
	}
	a1.Close()

	a2 := r.start(nil)
	defer a2.Close()
	dead := a2.DeadLetters()
	if len(dead) != 1 {
		t.Fatalf("dead letters after restart: %d, want 1", len(dead))
	}
	if dead[0].Rule != "sentineldb.sharma.t" || dead[0].Err == nil {
		t.Errorf("reloaded dead letter: %+v", dead[0])
	}
	if dead[0].Occ == nil || dead[0].Occ.Constituents[0].VNo != 1 {
		t.Errorf("reloaded dead letter lost its occurrence: %+v", dead[0].Occ)
	}
	// The journal proves the action completed (it ran and failed
	// terminally); recovery must not run it again.
	a2.WaitActions()
	if st := a2.Stats(); st.ActionsRun != 0 {
		t.Errorf("restart re-ran a dead-lettered action: %+v", st)
	}
}

// TestWatermarkSeededBeforeDeliver: after a restart the delivery
// watermarks are in place before the agent accepts any notification, so a
// stale or duplicated datagram racing startup is suppressed instead of
// being misjudged against an uninitialized (zero) watermark and
// re-firing old occurrences.
func TestWatermarkSeededBeforeDeliver(t *testing.T) {
	r := newDurableRig(t)
	a1 := r.start(nil)
	cs := r.session(a1)
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := cs.Exec(fmt.Sprintf("insert stock values ('S%d', %d)", i, i)); err != nil {
			t.Fatal(err)
		}
		waitAction(t, a1)
	}
	a1.Close()

	a2 := r.start(nil)
	defer a2.Close()
	// First thing through the door: a duplicate of an old occurrence (a
	// UDP datagram that was in flight across the restart).
	ev, tbl := "sentineldb.sharma.addStk", "sentineldb.sharma.stock"
	a2.Deliver(notifMsg(ev, tbl, "insert", 2))
	a2.Deliver(notifMsg(ev, tbl, "insert", 3))
	a2.WaitActions()
	st := a2.Stats()
	if st.NotificationsDuplicate != 2 {
		t.Errorf("stale deliveries not judged duplicates: %+v", st)
	}
	if st.ActionsRun != 0 || st.OccurrencesRecovered != 0 {
		t.Errorf("stale deliveries re-fired pre-restart occurrences: %+v", st)
	}
	// The next genuine occurrence is still accepted.
	if _, err := r.eng.NewSession("sharma").ExecScript("use sentineldb\ninsert stock values ('S4', 4)"); err != nil {
		t.Fatal(err)
	}
	if res := waitAction(t, a2); res.Occ.Constituents[0].VNo != 4 {
		t.Errorf("post-restart occurrence: %+v", res.Occ)
	}
}

// wedgeDialer blocks action batches until released, returning an error —
// the shape of an upstream that has stopped answering.
type wedgeDialer struct {
	inner   UpstreamDialer
	armed   atomic.Bool
	release chan struct{}
}

func newWedgeDialer(eng *engine.Engine) *wedgeDialer {
	return &wedgeDialer{inner: LocalDialer(eng), release: make(chan struct{})}
}

func (w *wedgeDialer) dial(user, db string) (Upstream, error) {
	up, err := w.inner(user, db)
	if err != nil {
		return nil, err
	}
	return wedgedUpstream{up: up, w: w}, nil
}

type wedgedUpstream struct {
	up Upstream
	w  *wedgeDialer
}

func (u wedgedUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	if u.w.armed.Load() && isActionBatch(sql) {
		<-u.w.release
		return nil, fmt.Errorf("wedged connection aborted")
	}
	return u.up.Exec(sql)
}

func (u wedgedUpstream) Close() error { return u.up.Close() }

// TestCloseDrainDeadlineWedged: a wedged upstream holds a rule action
// in flight forever while the background checkpoint loop is running.
// Close must still return within the drain deadline, and the final
// checkpoint it cuts must be loadable — with the abandoned action
// recorded pending, so the next incarnation runs it exactly once.
func TestCloseDrainDeadlineWedged(t *testing.T) {
	r := newDurableRig(t)
	wedge := newWedgeDialer(r.eng)
	t.Cleanup(func() { close(wedge.release) })
	a1 := r.start(func(cfg *Config) {
		cfg.Dial = wedge.dial
		cfg.DrainTimeout = 200 * time.Millisecond
		cfg.Durability.CheckpointInterval = time.Millisecond
	})
	cs := r.session(a1)
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'recovered'"); err != nil {
		t.Fatal(err)
	}
	wedge.armed.Store(true)
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	a1.Close()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Close took %v with a wedged action (drain deadline 200ms)", elapsed)
	}

	// The next incarnation dials clean connections, loads the final
	// checkpoint, and resumes the abandoned action.
	a2 := r.start(nil)
	defer a2.Close()
	res := waitAction(t, a2)
	if len(res.Messages) != 1 || res.Messages[0] != "recovered" || res.Err != nil {
		t.Fatalf("resumed action: %+v", res)
	}
	a2.WaitActions()
	if st := a2.Stats(); st.ActionsRun != 1 {
		t.Errorf("resumed action ran %d times, want 1", st.ActionsRun)
	}
}

// TestRecoveryMetricsExposed: the durability instruments appear on the
// Prometheus surface and move when checkpoints and journal records
// happen.
func TestRecoveryMetricsExposed(t *testing.T) {
	r := newDurableRig(t)
	a := r.start(nil)
	defer a.Close()
	cs := r.session(a)
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	waitAction(t, a)
	a.WaitActions()
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	a.Metrics().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"eca_recovery_checkpoints_total",
		"eca_recovery_checkpoint_bytes",
		"eca_recovery_checkpoint_age_seconds",
		"eca_recovery_wal_records_total",
		"eca_recovery_wal_syncs_total",
		"eca_recovery_replayed_records_total",
		"eca_recovery_resumed_actions_total",
		"eca_recovery_deduped_actions_total",
		"eca_recovery_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
	// New cuts one recovery checkpoint, the test a second: the counter and
	// the journal traffic must both have moved.
	if !strings.Contains(out, "eca_recovery_checkpoints_total 2") {
		t.Errorf("checkpoint counter did not advance:\n%s", grepLines(out, "eca_recovery_checkpoints"))
	}
	if strings.Contains(out, "eca_recovery_wal_records_total 0") {
		t.Errorf("journal recorded nothing:\n%s", grepLines(out, "wal_records"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestCheckpointRoundTrip: encode → decode is lossless for a populated
// checkpoint image.
func TestCheckpointRoundTrip(t *testing.T) {
	at := time.Unix(1700000000, 42).UTC()
	c := &checkpointData{
		Watermarks: map[string]ckptWatermark{
			"db.u.e": {Event: "db.u.e", Table: "db.u.t", Op: "insert", Last: 7},
		},
		LED: &led.StateSnapshot{
			Nodes: []led.NodeState{{
				Path: "db.u.comp/0",
				Kind: 3,
				Contexts: []led.CtxState{{
					Ctx:  led.Recent,
					Left: []led.OccState{{Event: "db.u.e", Context: led.Recent, At: at}},
				}},
			}, {
				// A CEP window node's partial state (format v2 section).
				Path: "db.u.win",
				Kind: 11,
				Contexts: []led.CtxState{{
					Ctx: led.Chronicle,
					Ring: []led.OccState{{Event: "db.u.e", Context: led.Chronicle, At: at,
						Constituents: []led.Primitive{{Event: "db.u.e", Table: "db.u.t", Op: "insert", VNo: 8, At: at}}}},
					NextBound: at.Add(5 * time.Second),
				}},
			}},
			Deferred: []led.FiringState{{Rule: "db.u.r", Occ: led.OccState{Event: "db.u.e", At: at}}},
			Outstanding: []led.FiringState{{Rule: "db.u.r2", Occ: led.OccState{Event: "db.u.e", At: at,
				Constituents: []led.Primitive{{Event: "db.u.e", Table: "db.u.t", Op: "insert", VNo: 7, At: at}}}}},
		},
		Pending: []ckptPending{{Key: "abc123", Rule: "db.u.r", Occ: led.OccState{Event: "db.u.e", At: at}}},
		DLQ: []ckptDead{{Rule: "db.u.r", Event: "db.u.e", HasOcc: true,
			Occ: led.OccState{Event: "db.u.e", At: at}, Messages: []string{"m"}, Err: "boom"}},
	}
	img, err := encodeCheckpoint(9, c)
	if err != nil {
		t.Fatal(err)
	}
	got, epoch, err := decodeCheckpoint(img)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 9 {
		t.Errorf("epoch: %d", epoch)
	}
	if w := got.Watermarks["db.u.e"]; w.Last != 7 || w.Table != "db.u.t" {
		t.Errorf("watermark: %+v", w)
	}
	if len(got.LED.Nodes) != 2 || got.LED.Nodes[0].Path != "db.u.comp/0" || got.LED.Nodes[0].Kind != 3 {
		t.Errorf("nodes: %+v", got.LED.Nodes)
	}
	if len(got.LED.Outstanding) != 1 || got.LED.Outstanding[0].Occ.Constituents[0].VNo != 7 {
		t.Errorf("outstanding: %+v", got.LED.Outstanding)
	}
	if len(got.Pending) != 1 || got.Pending[0].Key != "abc123" {
		t.Errorf("pending: %+v", got.Pending)
	}
	if len(got.DLQ) != 1 || got.DLQ[0].Err != "boom" || !got.DLQ[0].HasOcc {
		t.Errorf("dlq: %+v", got.DLQ)
	}
	if !got.LED.Nodes[0].Contexts[0].Left[0].At.Equal(at) {
		t.Errorf("timestamp drifted: %v", got.LED.Nodes[0].Contexts[0].Left[0].At)
	}
	win := got.LED.Nodes[1].Contexts[0]
	if len(win.Ring) != 1 || win.Ring[0].Constituents[0].VNo != 8 {
		t.Errorf("window ring: %+v", win.Ring)
	}
	if !win.NextBound.Equal(at.Add(5 * time.Second)) {
		t.Errorf("window boundary deadline drifted: %v", win.NextBound)
	}
}

// TestCheckpointReadsV1 pins backward compatibility: an image written at
// format version 1 (before the CEP window section) must decode on a v2
// build, with every context's window state empty.
func TestCheckpointReadsV1(t *testing.T) {
	at := time.Unix(1700000000, 42).UTC()
	c := &checkpointData{
		Watermarks: map[string]ckptWatermark{
			"db.u.e": {Event: "db.u.e", Table: "db.u.t", Op: "insert", Last: 7},
		},
		LED: &led.StateSnapshot{
			Nodes: []led.NodeState{{
				Path: "db.u.comp/0",
				Kind: 3,
				Contexts: []led.CtxState{{
					Ctx:  led.Recent,
					Left: []led.OccState{{Event: "db.u.e", Context: led.Recent, At: at}},
				}},
			}},
		},
	}
	img, err := encodeCheckpointAt(4, c, ckptVersionV1)
	if err != nil {
		t.Fatal(err)
	}
	got, epoch, err := decodeCheckpoint(img)
	if err != nil {
		t.Fatalf("v1 image rejected: %v", err)
	}
	if epoch != 4 || len(got.LED.Nodes) != 1 {
		t.Fatalf("v1 decode: epoch=%d nodes=%+v", epoch, got.LED.Nodes)
	}
	cs := got.LED.Nodes[0].Contexts[0]
	if len(cs.Ring) != 0 || !cs.NextBound.IsZero() {
		t.Errorf("v1 image produced window state: %+v", cs)
	}
	if len(cs.Left) != 1 || !cs.Left[0].At.Equal(at) {
		t.Errorf("v1 payload content lost: %+v", cs)
	}
}
