package agent

import (
	"net"
	"strconv"
	"testing"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
)

// Regression: notifier.addr used to rewrite ANY bind address to 127.0.0.1,
// so -notify "[::1]:0" generated triggers dialing an address the notifier
// never bound and every notification vanished.
func TestNotifierAddrKeepsIPv6Bind(t *testing.T) {
	if ln, err := net.ListenPacket("udp6", "[::1]:0"); err != nil {
		t.Skipf("IPv6 loopback unavailable: %v", err)
	} else {
		ln.Close()
	}
	n, err := startNotifier(&Agent{}, "[::1]:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.close()
	host, port := n.addr()
	if host != "::1" {
		t.Fatalf("addr() host = %q, want ::1", host)
	}
	if port == 0 {
		t.Fatal("addr() port = 0")
	}
}

func TestNotifierAddrRewritesWildcard(t *testing.T) {
	// A wildcard bind lands on [::] (dual-stack) or 0.0.0.0 depending on
	// the platform; either way addr() must hand back a loopback literal a
	// generated trigger can dial, never the unspecified address.
	n, err := startNotifier(&Agent{}, ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.close()
	host, port := n.addr()
	ip := net.ParseIP(host)
	if ip == nil || !ip.IsLoopback() {
		t.Fatalf("wildcard bind reported %q, want a loopback literal", host)
	}
	conn, err := net.Dial("udp", net.JoinHostPort(host, strconv.Itoa(port)))
	if err != nil {
		t.Fatalf("reported address not dialable: %v", err)
	}
	conn.Close()
}

// End-to-end over IPv6: the engine's generated trigger must reach an agent
// whose notifier is bound to the IPv6 loopback.
func TestNotifyOverIPv6Loopback(t *testing.T) {
	if ln, err := net.ListenPacket("udp6", "[::1]:0"); err != nil {
		t.Skipf("IPv6 loopback unavailable: %v", err)
	} else {
		ln.Close()
	}
	eng := engine.New(catalog.New())
	a, err := New(Config{
		Dial:       LocalDialer(eng),
		NotifyAddr: "[::1]:0", // engine keeps its default real-UDP notifier
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	if host, _ := a.NotifyEndpoint(); host != "::1" {
		t.Fatalf("NotifyEndpoint host = %q", host)
	}
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database sentineldb
use sentineldb
create table stock (symbol varchar(10), price float null)`); err != nil {
		t.Fatal(err)
	}
	cs, err := a.NewClientSession("sharma", "sentineldb")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cs.Close() })
	if _, err := cs.Exec("create trigger t6 on stock for insert event addStk as print 'v6'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('IBM', 100)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, a)
	if res.Err != nil {
		t.Fatalf("action failed: %v", res.Err)
	}
}
