package agent

import (
	"fmt"
	"strings"
	"sync"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// ActionParam is the Go analog of the paper's NotiStr structure
// (Figure 13): everything the action interface needs to invoke a rule's
// stored procedure in the SQL server when the LED detects its event.
type ActionParam struct {
	StoreProc string      // stored procedure to execute
	EventName string      // detected event
	Context   led.Context // parameter context to materialize
	DB        string      // database holding the procedure and sysContext
}

// ActionResult reports one completed rule action; the agent publishes
// these on its ActionDone channel so applications (and tests) can observe
// asynchronous rule executions.
type ActionResult struct {
	Rule     string
	Event    string
	Occ      *led.Occ
	Messages []string
	Results  []*sqltypes.ResultSet
	Err      error
}

// actionHandler implements Figure 16: each detected occurrence invokes the
// rule's stored procedure through its own upstream connection. sysContext
// population and procedure execution are serialized (the paper shares one
// sysContext table per database, so two concurrent materializations of the
// same (table, context) pair would trample each other).
type actionHandler struct {
	up Upstream
}

// newActionHandler takes ownership of an already-built upstream; the agent
// hands it a retry-wrapped connection so a broken connection is redialed
// instead of disabling every rule action.
func newActionHandler(up Upstream) *actionHandler {
	return &actionHandler{up: up}
}

func (h *actionHandler) close() { h.up.Close() }

// invoke materializes the occurrence's parameter context into sysContext
// (§5.6's four steps) and executes the action procedure. It returns the
// informational messages the action produced.
//
// The caller (Agent.runAction) holds the agent's action mutex, making the
// populate + execute pair atomic with respect to other actions.
func (h *actionHandler) invoke(p ActionParam, occ *led.Occ) ([]*sqltypes.ResultSet, []string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "use %s\n", p.DB)

	// Steps 2-3 of §5.6: derive the (tableName, context, vNo) list from
	// the LED occurrence and replace the previous occurrence's tuples.
	// sysContext rows are keyed by the *shadow* table (stock_inserted /
	// stock_deleted) rather than the base table the paper's Figure 14
	// shows: each event keeps its own vNo counter, so rows keyed only by
	// base table would cross-match occurrences of different events on the
	// same table. EXPERIMENTS.md records this correctness fix.
	type key struct {
		table string
		vno   int
	}
	seen := make(map[key]bool)
	tableSeen := make(map[string]bool)
	var tables []string // first-seen order: the batch must be deterministic
	var inserts []string
	record := func(shadow string, vno int) {
		k := key{table: shadow, vno: vno}
		if seen[k] {
			return
		}
		seen[k] = true
		if !tableSeen[shadow] {
			tableSeen[shadow] = true
			tables = append(tables, shadow)
		}
		inserts = append(inserts, fmt.Sprintf("insert %s values ('%s', '%s', %d)",
			TabContext, sqlEscape(shadow), p.Context, vno))
	}
	for _, c := range occ.Constituents {
		if c.Table == "" {
			continue // temporal/tick constituents carry no tuples
		}
		switch c.Op {
		case "insert":
			record(shadowTableName(c.Table, "inserted"), c.VNo)
		case "delete":
			record(shadowTableName(c.Table, "deleted"), c.VNo)
		case "update":
			record(shadowTableName(c.Table, "inserted"), c.VNo)
			record(shadowTableName(c.Table, "deleted"), c.VNo)
		}
	}
	for _, t := range tables {
		fmt.Fprintf(&b, "delete %s where tableName = '%s' and context = '%s'\n",
			TabContext, sqlEscape(t), p.Context)
	}
	for _, ins := range inserts {
		b.WriteString(ins)
		b.WriteByte('\n')
	}
	// Step 4: the procedure joins sysContext with the shadow tables and
	// runs the user action.
	fmt.Fprintf(&b, "execute %s", p.StoreProc)

	results, err := h.up.Exec(b.String())
	var msgs []string
	for _, rs := range results {
		msgs = append(msgs, rs.Messages...)
	}
	return results, msgs, err
}

// deadLetterQueue is the bounded park for rule actions that failed
// terminally: the upstream's retries were exhausted, or the server
// answered with an error. When full, the oldest entry is evicted — recent
// failures are worth more to an operator than ancient ones.
type deadLetterQueue struct {
	mu    sync.Mutex
	buf   []ActionResult
	limit int
}

func (q *deadLetterQueue) push(res ActionResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.limit <= 0 {
		return
	}
	if len(q.buf) >= q.limit {
		q.buf = append(q.buf[:0], q.buf[len(q.buf)-q.limit+1:]...)
	}
	q.buf = append(q.buf, res)
}

// snapshot copies the queue, oldest first.
func (q *deadLetterQueue) snapshot() []ActionResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]ActionResult(nil), q.buf...)
}
