package agent

import (
	"fmt"
	"sort"
	"strings"

	"github.com/activedb/ecaagent/internal/sqllex"
	"github.com/activedb/ecaagent/internal/sqlparse"
)

// ShadowRef records that a rule's action reads the parameter context of
// one (table, operation) pair via the TableName.inserted / TableName.deleted
// syntax of §5.6.
type ShadowRef struct {
	Table string // internal db.user.table
	Op    string // "inserted" or "deleted"
}

// GenPrimitiveEventSQL exposes the Figure 11 code generator for the
// figure-regeneration harness (cmd/ecabench) and external tooling.
func GenPrimitiveEventSQL(event, table string, op sqlparse.TriggerOp, notifyHost string, notifyPort int) []string {
	return genPrimitiveEvent(event, table, op, notifyHost, notifyPort)
}

// GenActionProcSQL exposes the Figure 14 code generator.
func GenActionProcSQL(procName, contextName, action string, shadows []ShadowRef) string {
	return genActionProc(procName, contextName, action, shadows)
}

// genPrimitiveEvent generates the Figure 11 artifact batch-for-batch:
// shadow tables, the native trigger that records affected tuples, bumps
// vNo, and notifies the agent over UDP.
//
// One deviation from Figure 11, recorded in EXPERIMENTS.md: the paper's
// generated trigger ends with "execute <proc>", running the rule action
// inside the native trigger. This reproduction instead routes every rule
// through the LED and Action Handler (Figure 4's path), which is what makes
// multiple triggers per event, parameter contexts and coupling modes work
// uniformly for primitive events — six of the seven §2.2 limitations are
// lifted by this one change.
func genPrimitiveEvent(event, table string, op sqlparse.TriggerOp, notifyHost string, notifyPort int) []string {
	_, _, tblObj, _ := splitInternal(table)
	var batches []string

	// Shadow tables (created only if missing; the agent checks first).
	addShadow := func(kind string) {
		shadow := shadowTableName(table, kind)
		batches = append(batches,
			fmt.Sprintf("select * into %s from %s where 1 = 2\nalter table %s add vNo int null",
				shadow, tblObj, shadow))
	}
	switch op {
	case sqlparse.OpInsert:
		addShadow("inserted")
	case sqlparse.OpDelete:
		addShadow("deleted")
	case sqlparse.OpUpdate:
		addShadow("inserted")
		addShadow("deleted")
	}

	// The native trigger. Its name is derived from the event so that each
	// primitive event owns exactly one native trigger.
	var b strings.Builder
	fmt.Fprintf(&b, "create trigger %s\non %s\nfor %s\nas\n", nativeTriggerName(event), tblObj, op)
	fmt.Fprintf(&b, "update %s set vNo = vNo + 1 where eventName = '%s'\n", TabPrimitiveEvent, event)
	record := func(pseudo, kind string) {
		fmt.Fprintf(&b, "insert %s select t.*, spe.vNo from %s t, %s spe where spe.eventName = '%s'\n",
			shadowTableName(table, kind), pseudo, TabPrimitiveEvent, event)
	}
	switch op {
	case sqlparse.OpInsert:
		record("inserted", "inserted")
	case sqlparse.OpDelete:
		record("deleted", "deleted")
	case sqlparse.OpUpdate:
		record("inserted", "inserted")
		record("deleted", "deleted")
	}
	fmt.Fprintf(&b, "select syb_sendmsg('%s', %d, '%s' + spe.vNo) from %s spe where spe.eventName = '%s'",
		notifyHost, notifyPort, notifyPrefix(event, table, string(op)), TabPrimitiveEvent, event)
	batches = append(batches, b.String())
	return batches
}

// nativeTriggerName derives the internal native-trigger name owned by a
// primitive event.
func nativeTriggerName(event string) string { return event + "__trig" }

// genActionProc generates the rule's stored procedure (Figure 14): a
// context-processing prologue that materializes each referenced shadow
// table's parameter context from sysContext, followed by the user's action
// SQL with TableName.inserted references rewritten to the _tmp tables.
func genActionProc(procName, contextName string, action string, shadows []ShadowRef) string {
	var b strings.Builder
	fmt.Fprintf(&b, "create procedure %s as\n", procName)
	for _, sr := range shadows {
		tmp := tmpTableName(sr.Table, sr.Op)
		shadow := shadowTableName(sr.Table, sr.Op)
		fmt.Fprintf(&b, "delete %s\n", tmp)
		// sysContext is keyed by the shadow table so that different
		// events' vNo counters on the same base table cannot cross-match.
		fmt.Fprintf(&b, "insert %s select s.* from %s s, %s c where c.context = '%s' and c.tableName = '%s' and s.vNo = c.vNo\n",
			tmp, shadow, TabContext, contextName, shadow)
	}
	b.WriteString(action)
	return b.String()
}

// genTmpTables generates the one-time creation of _tmp tables for the
// shadow references (idempotent; skipped when they already exist).
func genTmpTables(shadows []ShadowRef) []string {
	var out []string
	for _, sr := range shadows {
		tmp := tmpTableName(sr.Table, sr.Op)
		out = append(out, fmt.Sprintf("select * into %s from %s where 1 = 2",
			tmp, shadowTableName(sr.Table, sr.Op)))
	}
	return out
}

// rewriteAction expands names in the user's action SQL: every
// TableName.inserted / TableName.deleted reference (§5.6 syntax) is
// rewritten to the internal _tmp table name, and the set of referenced
// shadows is returned for prologue generation. TableName may be
// unqualified, owner-qualified or db-qualified; it is expanded with the
// defining session's database and user.
func rewriteAction(db, user, action string) (string, []ShadowRef, error) {
	toks, err := sqllex.Tokenize(action)
	if err != nil {
		return "", nil, fmt.Errorf("agent: action SQL: %v", err)
	}
	type span struct {
		from, to int
		repl     string
	}
	var spans []span
	seen := make(map[ShadowRef]bool)
	var shadows []ShadowRef

	i := 0
	for i < len(toks) {
		if toks[i].Kind != sqllex.TokIdent {
			i++
			continue
		}
		// Collect the dotted chain starting here.
		parts, rest := parseDottedName(toks[i:])
		n := len(toks) - len(rest) - i // tokens consumed
		if len(parts) >= 2 {
			last := strings.ToLower(parts[len(parts)-1])
			if last == "inserted" || last == "deleted" {
				internal, err := expandName(db, user, parts[:len(parts)-1])
				if err != nil {
					return "", nil, err
				}
				ref := ShadowRef{Table: internal, Op: last}
				if !seen[ref] {
					seen[ref] = true
					shadows = append(shadows, ref)
				}
				spans = append(spans, span{
					from: toks[i].Pos,
					to:   toks[i+n-1].End,
					repl: tmpTableName(internal, last),
				})
			}
		}
		if n == 0 {
			n = 1
		}
		i += n
	}

	if len(spans) == 0 {
		return action, nil, nil
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].from < spans[b].from })
	var b strings.Builder
	prev := 0
	for _, sp := range spans {
		b.WriteString(action[prev:sp.from])
		b.WriteString(sp.repl)
		prev = sp.to
	}
	b.WriteString(action[prev:])
	return b.String(), shadows, nil
}

// notifyPrefix builds the notification message prefix; the generated SQL
// appends the current vNo. Format: ECA1|event|table|op|vNo.
func notifyPrefix(event, table, op string) string {
	return fmt.Sprintf("ECA1|%s|%s|%s|", event, table, op)
}

// maxNotificationLen bounds accepted datagrams. Real notifications are a
// few hundred bytes (three internal names plus a vNo); anything bigger is
// garbage or an attack, not a trigger message.
const maxNotificationLen = 4096

// parseNotification decodes a notification datagram. Truncated, oversized
// and duplicate-field messages are rejected (the caller counts them in
// NotificationsDropped); the vNo must be a non-empty decimal that fits an
// int. The byte-slice form in notifcodec.go does the work.
func parseNotification(msg string) (event, table, op string, vno int, err error) {
	return parseNotificationBytes([]byte(msg), &wireNames)
}

// NotificationEvent extracts the internal event name from one notification
// line without delivering it — the peek a cluster router needs to decide
// which node owns the event before forwarding the datagram verbatim.
func NotificationEvent(msg string) (string, error) {
	event, _, _, _, err := parseNotification(msg)
	return event, err
}
