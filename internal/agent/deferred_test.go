package agent

import (
	"testing"
	"time"
)

// TestDeferredFlushAtCommit: DEFERRED rules queued during a transaction
// run when the transaction commits, without an explicit FlushDeferred.
func TestDeferredFlushAtCommit(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event ev DEFERRED as print 'deferred at commit'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("begin tran insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-r.agent.ActionDone:
		t.Fatalf("deferred rule ran before commit: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := cs.Exec("commit"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, r.agent)
	if len(res.Messages) != 1 || res.Messages[0] != "deferred at commit" {
		t.Errorf("deferred-at-commit: %+v", res)
	}
}

// TestDeferredNotFlushedByOtherBatches: ordinary batches without COMMIT
// leave the deferred queue alone.
func TestDeferredNotFlushedByOtherBatches(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event ev DEFERRED as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("select count(*) from stock"); err != nil {
		t.Fatal(err)
	}
	if got := r.agent.LED().DeferredCount(); got != 1 {
		t.Fatalf("deferred queue after plain select: %d", got)
	}
	r.agent.FlushDeferred()
	waitAction(t, r.agent)
}
