package agent

import (
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/led"
)

// fuzzCheckpointImage builds a small valid checkpoint image for seeding.
func fuzzCheckpointImage() []byte {
	at := time.Unix(1700000000, 0).UTC()
	c := &checkpointData{
		Watermarks: map[string]ckptWatermark{
			"db.u.e": {Event: "db.u.e", Table: "db.u.t", Op: "insert", Last: 3},
		},
		LED: &led.StateSnapshot{
			Nodes: []led.NodeState{{
				Path: "db.u.comp",
				Kind: 2,
				Contexts: []led.CtxState{{
					Ctx:  led.Chronicle,
					Left: []led.OccState{{Event: "db.u.e", At: at}},
				}},
			}},
		},
		Pending: []ckptPending{{Key: "k", Rule: "db.u.r", Occ: led.OccState{Event: "db.u.e", At: at}}},
		DLQ:     []ckptDead{{Rule: "db.u.r", Event: "db.u.e", Err: "x"}},
	}
	img, err := encodeCheckpoint(3, c)
	if err != nil {
		panic(err)
	}
	return img
}

// fuzzCheckpointImageCEP builds a valid image whose LED snapshot carries
// the v2 window section (ring + armed boundary), so the fuzzer explores
// mutations of the new bytes too.
func fuzzCheckpointImageCEP() []byte {
	at := time.Unix(1700000000, 0).UTC()
	c := &checkpointData{
		Watermarks: map[string]ckptWatermark{},
		LED: &led.StateSnapshot{
			Nodes: []led.NodeState{{
				Path: "db.u.win",
				Kind: 11, // kWindow
				Contexts: []led.CtxState{{
					Ctx: led.Recent,
					Ring: []led.OccState{{Event: "db.u.e", Context: led.Recent, At: at,
						Constituents: []led.Primitive{{Event: "db.u.e", Table: "db.u.t", Op: "insert", VNo: 2, At: at}}}},
					NextBound: at.Add(5 * time.Second),
				}},
			}},
		},
	}
	img, err := encodeCheckpoint(7, c)
	if err != nil {
		panic(err)
	}
	return img
}

// fuzzCheckpointImageV1 is the same shape encoded at format version 1.
func fuzzCheckpointImageV1() []byte {
	at := time.Unix(1700000000, 0).UTC()
	c := &checkpointData{
		Watermarks: map[string]ckptWatermark{},
		LED: &led.StateSnapshot{
			Nodes: []led.NodeState{{
				Path: "db.u.comp",
				Kind: 2,
				Contexts: []led.CtxState{{
					Ctx:  led.Chronicle,
					Left: []led.OccState{{Event: "db.u.e", At: at}},
				}},
			}},
		},
	}
	img, err := encodeCheckpointAt(2, c, ckptVersionV1)
	if err != nil {
		panic(err)
	}
	return img
}

// FuzzLoadCheckpoint: a checkpoint image that is truncated, bit-flipped,
// or version-skewed must produce an error — never a panic, and never a
// partially decoded state alongside one.
func FuzzLoadCheckpoint(f *testing.F) {
	img := fuzzCheckpointImage()
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:8])
	f.Add([]byte{})
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	skew := append([]byte(nil), img...)
	skew[8] = 0x7f // version field
	f.Add(skew)
	badMagic := append([]byte(nil), img...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	cep := fuzzCheckpointImageCEP()
	f.Add(cep)
	f.Add(cep[:len(cep)-9]) // truncated inside the window section
	cepFlip := append([]byte(nil), cep...)
	cepFlip[len(cepFlip)-12] ^= 0x20
	f.Add(cepFlip)
	f.Add(fuzzCheckpointImageV1())
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, _, err := decodeCheckpoint(data)
		if err != nil && ck != nil {
			t.Fatalf("decodeCheckpoint returned partial state alongside error %v", err)
		}
		if err == nil && ck == nil {
			t.Fatal("decodeCheckpoint returned neither state nor error")
		}
	})
}

// FuzzReplayWAL: a journal that is truncated or corrupted mid-record must
// yield the valid prefix with torn=true; damaged headers must error; no
// input may panic.
func FuzzReplayWAL(f *testing.F) {
	at := time.Unix(1700000000, 0).UTC()
	buf := walHeader(5)
	buf = append(buf, encodeWALRecord(walRecord{
		kind: walOccKind, event: "db.u.e", table: "db.u.t", op: "insert", vno: 1, at: at})...)
	buf = append(buf, encodeWALRecord(walRecord{kind: walDoneKind, key: "abc"})...)
	f.Add(buf)
	f.Add(buf[:len(buf)-3]) // torn tail
	f.Add(buf[:16])         // header only
	f.Add(buf[:7])          // torn header
	f.Add([]byte{})
	flipped := append([]byte(nil), buf...)
	flipped[20] ^= 0x10
	f.Add(flipped)
	badMagic := append([]byte(nil), buf...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, recs, torn, err := parseWAL(data)
		if err != nil && len(recs) != 0 {
			t.Fatalf("parseWAL returned %d records alongside error %v", len(recs), err)
		}
		if err != nil && torn {
			t.Fatalf("parseWAL reported both torn and error %v", err)
		}
	})
}

// TestWALDecodeDamage pins the three damage classes the fuzz targets
// explore: torn tails keep the valid prefix, header damage is an error,
// and short files are torn (an interrupted creation), not errors.
func TestWALDecodeDamage(t *testing.T) {
	at := time.Unix(1700000000, 0).UTC()
	buf := walHeader(5)
	buf = append(buf, encodeWALRecord(walRecord{
		kind: walOccKind, event: "db.u.e", table: "db.u.t", op: "insert", vno: 1, at: at})...)
	r2 := encodeWALRecord(walRecord{kind: walDoneKind, key: "abc"})
	buf = append(buf, r2...)

	epoch, recs, torn, err := parseWAL(buf)
	if err != nil || torn || epoch != 5 || len(recs) != 2 {
		t.Fatalf("intact journal: epoch=%d recs=%d torn=%v err=%v", epoch, len(recs), torn, err)
	}
	if recs[0].vno != 1 || !recs[0].at.Equal(at) || recs[1].key != "abc" {
		t.Fatalf("decoded records: %+v", recs)
	}

	_, recs, torn, err = parseWAL(buf[:len(buf)-2])
	if err != nil || !torn || len(recs) != 1 {
		t.Fatalf("torn tail: recs=%d torn=%v err=%v", len(recs), torn, err)
	}

	flipped := append([]byte(nil), buf...)
	flipped[len(flipped)-1] ^= 0xff // CRC of the last record
	_, recs, torn, err = parseWAL(flipped)
	if err != nil || !torn || len(recs) != 1 {
		t.Fatalf("bit flip: recs=%d torn=%v err=%v", len(recs), torn, err)
	}

	badMagic := append([]byte(nil), buf...)
	badMagic[3] = '!'
	if _, _, _, err := parseWAL(badMagic); err == nil {
		t.Fatal("damaged magic accepted")
	}

	if _, recs, torn, err := parseWAL(buf[:7]); err != nil || !torn || len(recs) != 0 {
		t.Fatalf("short file: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

// TestCheckpointDecodeDamage pins the checkpoint damage classes.
func TestCheckpointDecodeDamage(t *testing.T) {
	img := fuzzCheckpointImage()
	if _, _, err := decodeCheckpoint(img); err != nil {
		t.Fatalf("intact image rejected: %v", err)
	}
	if _, _, err := decodeCheckpoint(img[:len(img)-1]); err == nil {
		t.Fatal("truncated image accepted")
	}
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x01
	if _, _, err := decodeCheckpoint(flipped); err == nil {
		t.Fatal("bit-flipped image accepted")
	}
	skew := append([]byte(nil), img...)
	skew[8] = 0x7f
	if _, _, err := decodeCheckpoint(skew); err == nil {
		t.Fatal("version-skewed image accepted")
	}
	if _, _, err := decodeCheckpoint(nil); err == nil {
		t.Fatal("empty image accepted")
	}
}
