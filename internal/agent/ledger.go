package agent

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"github.com/activedb/ecaagent/internal/led"
)

// The action ledger is the exactly-once half of the durability story. A
// rule firing is keyed by its identity — rule name plus the canonical
// occurrence, including the detection timestamp and every constituent's
// (event, op, vNo, at) — which is reproducible bit-for-bit by replaying
// the same occurrence stream. The ledger tracks each key through three
// facts:
//
//	pending  — detection handed the firing off; the action must run
//	launched — this process has a goroutine running it (volatile)
//	done     — the procedure call returned (journaled in the WAL)
//
// Checkpoints persist the pending set; the WAL persists done marks.
// After a crash, recovery re-runs exactly the pending keys the journal
// cannot prove done — never a done one twice, never a detected one zero
// times.

// ledgerEntry is one tracked rule firing.
type ledgerEntry struct {
	key      string
	rule     string
	occ      *led.Occ
	seq      int // insertion order, for deterministic resume
	done     bool
	launched bool
}

// actionKey derives the stable identity of one rule firing.
func actionKey(rule string, occ *led.Occ) string {
	h := fnv.New64a()
	io.WriteString(h, rule)
	io.WriteString(h, "|")
	io.WriteString(h, occ.Event)
	fmt.Fprintf(h, "|%d|%d", occ.Context, occ.At.UnixNano())
	for _, c := range occ.Constituents {
		fmt.Fprintf(h, "|%s:%s:%s:%d:%d", c.Event, c.Table, c.Op, c.VNo, c.At.UnixNano())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// begin claims a firing for execution in this process. It reports false
// when the key already ran (done) or is already claimed — the caller
// must then not spawn the action.
func (d *durableState) begin(rule, key string, occ *led.Occ) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.ledger[key]
	if e == nil {
		d.ledgerSeq++
		d.ledger[key] = &ledgerEntry{key: key, rule: rule, occ: occ, seq: d.ledgerSeq, launched: true}
		return true
	}
	if e.done || e.launched {
		return false
	}
	e.launched = true
	return true
}

// notePending records a firing without claiming it — the replay path and
// checkpoint loading use it to accumulate work that resumePending later
// executes (unless a done mark already covers it).
func (d *durableState) notePending(rule, key string, occ *led.Occ) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ledger[key] != nil {
		return
	}
	d.ledgerSeq++
	d.ledger[key] = &ledgerEntry{key: key, rule: rule, occ: occ, seq: d.ledgerSeq}
}

// markDone journals a completed action and marks its ledger entry. The
// WAL append and the in-memory mark happen under one lock hold, so a
// concurrent checkpoint cut serializes either before both (the entry is
// persisted pending, and the new journal's done record resolves it) or
// after both (the entry is pruned). In group mode the caller then waits
// for the batched fsync outside the lock. The hold is defer-scoped
// because the append can unwind with a simulated-crash panic (cluster
// repl.* crash points live inside the write path).
func (d *durableState) markDone(key string) {
	var seq uint64
	func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		seq = d.appendLocked(walRecord{kind: walDoneKind, key: key})
		if e := d.ledger[key]; e != nil {
			e.done = true
		}
	}()
	if d.syncMode == WALSyncGroup {
		d.waitSynced(seq)
	}
}

// markDoneLocal applies a replayed done record: no journaling, just the
// ledger fact. An unknown key still gets a done entry — its occurrence
// record may arrive later in the same replay and must not re-arm it.
func (d *durableState) markDoneLocal(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e := d.ledger[key]; e != nil {
		e.done = true
		return
	}
	d.ledgerSeq++
	d.ledger[key] = &ledgerEntry{key: key, seq: d.ledgerSeq, done: true, launched: true}
}

// pendingLocked snapshots the not-yet-done entries in insertion order.
// Caller holds d.mu.
func (d *durableState) pendingLocked() []*ledgerEntry {
	var out []*ledgerEntry
	for _, e := range d.ledger {
		if !e.done {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}
