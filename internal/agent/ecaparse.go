package agent

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqllex"
	"github.com/activedb/ecaagent/internal/sqlparse"
)

// TriggerDef is a parsed ECA trigger definition in one of the paper's
// three forms:
//
//	Figure 9:  create trigger t on tbl for op event e [mods] as SQL
//	Figure 10: create trigger t event e [mods] as SQL
//	Figure 12: create trigger t event e = <snoop expr> [mods] as SQL
//
// mods are a coupling mode, a parameter context, and a positive integer
// priority, in any order. Defaults are IMMEDIATE coupling and RECENT
// context. (The paper's §5 swaps the two in prose — "default coupling mode
// is RECENT, and the default parameter context is IMMEDIATE" — an obvious
// transposition; Figures 9/10/12 list the grammars this parser follows.)
type TriggerDef struct {
	TriggerName []string // user spelling, possibly owner-qualified
	TableName   []string // Figure 9 form only
	Operation   sqlparse.TriggerOp
	EventName   string // user spelling of the event name
	EventExpr   string // raw Snoop expression (Figure 12 form), "" otherwise
	Coupling    led.Coupling
	Context     led.Context
	Priority    int
	ActionSQL   string // raw SQL after AS
}

// DefinesEvent reports whether the definition introduces a new event
// (Figure 9 primitive or Figure 12 composite) rather than reusing one.
func (d *TriggerDef) DefinesEvent() bool {
	return len(d.TableName) > 0 || d.EventExpr != ""
}

// IsECACreateTrigger reports whether src is the agent's extended CREATE
// TRIGGER syntax: a CREATE TRIGGER with an EVENT clause before AS. Plain
// (native) CREATE TRIGGER statements return false and pass through to the
// server untouched.
func IsECACreateTrigger(src string) bool {
	toks, err := sqllex.Tokenize(src)
	if err != nil || len(toks) < 2 {
		return false
	}
	if !toks[0].IsKeyword("create") || !toks[1].IsKeyword("trigger") {
		return false
	}
	for _, t := range toks {
		if t.IsKeyword("as") {
			return false
		}
		if t.IsKeyword("event") {
			return true
		}
	}
	return false
}

// ParseDropTrigger recognizes "drop trigger name" and returns the name
// parts. The Language Filter uses it to decide whether the drop targets an
// ECA trigger (handled by the agent) or a native one (passed through).
func ParseDropTrigger(src string) ([]string, bool) {
	toks, err := sqllex.Tokenize(src)
	if err != nil || len(toks) < 3 {
		return nil, false
	}
	if !toks[0].IsKeyword("drop") || !toks[1].IsKeyword("trigger") {
		return nil, false
	}
	parts, rest := parseDottedName(toks[2:])
	if len(parts) == 0 || len(rest) != 0 {
		return nil, false
	}
	return parts, true
}

// parseDottedName consumes ident (. ident)* from toks, returning the parts
// and the remaining tokens.
func parseDottedName(toks []sqllex.Token) ([]string, []sqllex.Token) {
	if len(toks) == 0 || toks[0].Kind != sqllex.TokIdent {
		return nil, toks
	}
	parts := []string{toks[0].Text}
	i := 1
	for i+1 < len(toks) && toks[i].IsOp(".") && toks[i+1].Kind == sqllex.TokIdent {
		parts = append(parts, toks[i+1].Text)
		i += 2
	}
	return parts, toks[i:]
}

var couplingWords = map[string]led.Coupling{
	"immediate": led.Immediate,
	"deferred":  led.Deferred,
	"defered":   led.Deferred, // the paper's spelling
	"detached":  led.Detached,
}

var contextWords = map[string]led.Context{
	"recent":     led.Recent,
	"chronicle":  led.Chronicle,
	"continuous": led.Continuous,
	"cumulative": led.Cumulative,
}

// ParseECATrigger parses the extended trigger syntax. src must satisfy
// IsECACreateTrigger.
func ParseECATrigger(src string) (*TriggerDef, error) {
	toks, err := sqllex.Tokenize(src)
	if err != nil {
		return nil, fmt.Errorf("agent: %v", err)
	}
	def := &TriggerDef{Coupling: led.Immediate, Context: led.Recent}
	i := 0
	expect := func(kw string) error {
		if i >= len(toks) || !toks[i].IsKeyword(kw) {
			got := "end of input"
			if i < len(toks) {
				got = toks[i].Text
			}
			return fmt.Errorf("agent: expected %q, got %q", kw, got)
		}
		i++
		return nil
	}
	if err := expect("create"); err != nil {
		return nil, err
	}
	if err := expect("trigger"); err != nil {
		return nil, err
	}
	var rest []sqllex.Token
	def.TriggerName, rest = parseDottedName(toks[i:])
	if len(def.TriggerName) == 0 || len(def.TriggerName) > 2 {
		return nil, fmt.Errorf("agent: bad trigger name")
	}
	i = len(toks) - len(rest)

	// Figure 9 form: ON table FOR op.
	if i < len(toks) && toks[i].IsKeyword("on") {
		i++
		def.TableName, rest = parseDottedName(toks[i:])
		if len(def.TableName) == 0 {
			return nil, fmt.Errorf("agent: bad table name after ON")
		}
		i = len(toks) - len(rest)
		if err := expect("for"); err != nil {
			return nil, err
		}
		if i >= len(toks) {
			return nil, fmt.Errorf("agent: missing trigger operation")
		}
		op := sqlparse.TriggerOp(strings.ToLower(toks[i].Text))
		if op != sqlparse.OpInsert && op != sqlparse.OpUpdate && op != sqlparse.OpDelete {
			return nil, fmt.Errorf("agent: invalid trigger operation %q", toks[i].Text)
		}
		def.Operation = op
		i++
	}

	if err := expect("event"); err != nil {
		return nil, err
	}
	nameParts, rest := parseDottedName(toks[i:])
	if len(nameParts) == 0 {
		return nil, fmt.Errorf("agent: missing event name")
	}
	def.EventName = strings.Join(nameParts, ".")
	i = len(toks) - len(rest)

	// Figure 12 form: = <snoop expression> up to the first top-level
	// modifier keyword, priority number, or AS.
	if i < len(toks) && toks[i].IsOp("=") {
		if len(def.TableName) > 0 {
			return nil, fmt.Errorf("agent: a composite event cannot have an ON clause")
		}
		i++
		start := i
		depth := 0
		// A number at depth 0 normally ends the expression (it is the
		// priority modifier) — except right after a comparison operator,
		// where it is an aggregate threshold: AGG(...) > 10 DEFERRED.
		cmpPending := false
		for i < len(toks) {
			t := toks[i]
			switch {
			case t.IsOp("("):
				depth++
			case t.IsOp(")"):
				depth--
			}
			if depth == 0 && !cmpPending && isModifierOrAs(t) {
				break
			}
			if depth == 0 {
				switch {
				case isCmpOp(t):
					cmpPending = true
				case cmpPending && t.IsOp("-"): // negative threshold
				default:
					cmpPending = false
				}
			}
			i++
		}
		if i == start {
			return nil, fmt.Errorf("agent: empty event expression")
		}
		def.EventExpr = strings.TrimSpace(src[toks[start].Pos:toks[i-1].End])
	}

	// Modifiers in any order.
	prioritySet := false
	for i < len(toks) && !toks[i].IsKeyword("as") {
		t := toks[i]
		coupling, isCoupling := led.Immediate, false
		if t.Kind == sqllex.TokIdent {
			coupling, isCoupling = couplingWords[strings.ToLower(t.Text)]
		}
		switch {
		case isCoupling:
			def.Coupling = coupling
		case t.Kind == sqllex.TokIdent && isContextWord(t.Text):
			def.Context = contextWords[strings.ToLower(t.Text)]
		case t.Kind == sqllex.TokNumber && !prioritySet:
			n, err := strconv.Atoi(t.Text)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("agent: bad priority %q", t.Text)
			}
			def.Priority = n
			prioritySet = true
		default:
			return nil, fmt.Errorf("agent: unexpected %q before AS", t.Text)
		}
		i++
	}
	if err := expect("as"); err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("agent: empty trigger action")
	}
	def.ActionSQL = strings.TrimSpace(src[toks[i].Pos:])
	if def.ActionSQL == "" {
		return nil, fmt.Errorf("agent: empty trigger action")
	}
	return def, nil
}

// isCmpOp reports whether t is one of the Snoop aggregate comparison
// operators.
func isCmpOp(t sqllex.Token) bool {
	switch {
	case t.IsOp(">"), t.IsOp(">="), t.IsOp("<"), t.IsOp("<="), t.IsOp("=="), t.IsOp("!="):
		return true
	}
	return false
}

func isModifierOrAs(t sqllex.Token) bool {
	if t.Kind == sqllex.TokNumber {
		return true
	}
	if t.Kind != sqllex.TokIdent {
		return false
	}
	w := strings.ToLower(t.Text)
	if w == "as" || w == "immediate" {
		return true
	}
	if _, ok := couplingWords[w]; ok {
		return true
	}
	return isContextWord(t.Text)
}

func isContextWord(s string) bool {
	_, ok := contextWords[strings.ToLower(s)]
	return ok
}
