package agent

import (
	"strings"
	"testing"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqlparse"
)

func TestIsECACreateTrigger(t *testing.T) {
	cases := map[string]bool{
		// Example 1 from the paper.
		"create trigger t_addStk on stock for insert event addStk as print 'x'": true,
		// Example 2.
		"create trigger t_and event addDel = delStk ^ addStk RECENT as select 1": true,
		// Native trigger: no event clause → passes through.
		"create trigger tg on stock for insert as print 'x'": false,
		// EVENT after AS belongs to the action, not the header.
		"create trigger tg on stock for insert as select event from log": false,
		"select * from stock":          false,
		"create table t (a int)":       false,
		"":                             false,
		"create trigger [unterminated": false,
	}
	for src, want := range cases {
		if got := IsECACreateTrigger(src); got != want {
			t.Errorf("IsECACreateTrigger(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestParseDropTrigger(t *testing.T) {
	parts, ok := ParseDropTrigger("drop trigger sharma.t_and")
	if !ok || strings.Join(parts, ".") != "sharma.t_and" {
		t.Errorf("got %v %v", parts, ok)
	}
	if _, ok := ParseDropTrigger("drop table t"); ok {
		t.Error("drop table matched")
	}
	if _, ok := ParseDropTrigger("drop trigger t extra"); ok {
		t.Error("trailing tokens accepted")
	}
}

func TestParseECATriggerPrimitive(t *testing.T) {
	// Figure 9 / Example 1.
	def, err := ParseECATrigger(`create trigger t_addStk on stock for insert
event addStk
as print 'trigger t_addStk on primitive event addStk occurs'
select * from stock`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(def.TriggerName, ".") != "t_addStk" || strings.Join(def.TableName, ".") != "stock" {
		t.Errorf("names: %+v", def)
	}
	if def.Operation != sqlparse.OpInsert || def.EventName != "addStk" {
		t.Errorf("op/event: %+v", def)
	}
	if def.Coupling != led.Immediate || def.Context != led.Recent || def.Priority != 0 {
		t.Errorf("defaults: %+v", def)
	}
	if !def.DefinesEvent() || def.EventExpr != "" {
		t.Errorf("kind flags: %+v", def)
	}
	if !strings.HasPrefix(def.ActionSQL, "print") || !strings.Contains(def.ActionSQL, "select * from stock") {
		t.Errorf("action: %q", def.ActionSQL)
	}
}

func TestParseECATriggerComposite(t *testing.T) {
	// Figure 12 / Example 2.
	def, err := ParseECATrigger(`create trigger t_and
event addDel = delStk ^ addStk
RECENT
as
print 'trigger t_and on composite event addDel = delStk ^ addStk'
select symbol, price from stock.inserted`)
	if err != nil {
		t.Fatal(err)
	}
	if def.EventName != "addDel" || def.EventExpr != "delStk ^ addStk" {
		t.Errorf("event: %q = %q", def.EventName, def.EventExpr)
	}
	if def.Context != led.Recent || def.Coupling != led.Immediate {
		t.Errorf("modifiers: %+v", def)
	}
	if len(def.TableName) != 0 {
		t.Errorf("composite with table: %+v", def)
	}
}

func TestParseECATriggerOnExistingEvent(t *testing.T) {
	// Figure 10.
	def, err := ParseECATrigger("create trigger t2 event addStk CUMULATIVE DETACHED 5 as select count(*) from stock")
	if err != nil {
		t.Fatal(err)
	}
	if def.DefinesEvent() {
		t.Error("reuse parsed as definition")
	}
	if def.Context != led.Cumulative || def.Coupling != led.Detached || def.Priority != 5 {
		t.Errorf("modifiers: %+v", def)
	}
}

func TestParseECATriggerModifierOrderAndSpellings(t *testing.T) {
	def, err := ParseECATrigger("create trigger t event e CHRONICLE DEFERED 3 as print 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if def.Coupling != led.Deferred || def.Context != led.Chronicle || def.Priority != 3 {
		t.Errorf("%+v", def)
	}
	def, err = ParseECATrigger("create trigger t event e 3 IMMEDIATE CONTINUOUS as print 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if def.Coupling != led.Immediate || def.Context != led.Continuous || def.Priority != 3 {
		t.Errorf("reordered: %+v", def)
	}
}

func TestParseECATriggerCompositeExprBoundary(t *testing.T) {
	// The Snoop expression ends at the first top-level modifier/AS; time
	// strings and parens are handled.
	def, err := ParseECATrigger("create trigger t event e = A*(open, trade, close) PLUS [5 sec] CUMULATIVE as print 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if def.EventExpr != "A*(open, trade, close) PLUS [5 sec]" {
		t.Errorf("expr: %q", def.EventExpr)
	}
	if def.Context != led.Cumulative {
		t.Errorf("context: %v", def.Context)
	}
}

func TestParseECATriggerAggThreshold(t *testing.T) {
	// A top-level number after a comparison operator is an aggregate
	// threshold, not the priority modifier; the number AFTER the
	// threshold is the priority again.
	cases := []struct {
		src, expr string
		priority  int
	}{
		{"create trigger t event e = AGG(COUNT, vno, hot, [5 sec]) > 10 as print 'x'",
			"AGG(COUNT, vno, hot, [5 sec]) > 10", 0},
		{"create trigger t event e = AGG(AVG, vno, hot, [5 sec], SLIDE [1 sec]) <= 2 DEFERRED 7 as print 'x'",
			"AGG(AVG, vno, hot, [5 sec], SLIDE [1 sec]) <= 2", 7},
		{"create trigger t event e = AGG(MIN, vno, hot, [5 sec]) != -3 as print 'x'",
			"AGG(MIN, vno, hot, [5 sec]) != -3", 0},
		{"create trigger t event e = WINDOW(hot, [5 sec], SLIDE [1 sec]) CHRONICLE 2 as print 'x'",
			"WINDOW(hot, [5 sec], SLIDE [1 sec])", 2},
	}
	for _, c := range cases {
		def, err := ParseECATrigger(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if def.EventExpr != c.expr {
			t.Errorf("%s:\nexpr %q, want %q", c.src, def.EventExpr, c.expr)
		}
		if def.Priority != c.priority {
			t.Errorf("%s: priority %d, want %d", c.src, def.Priority, c.priority)
		}
	}
}

func TestParseECATriggerOwnerQualified(t *testing.T) {
	def, err := ParseECATrigger("create trigger sharma.t on sharma.stock for delete event delStk as print 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(def.TriggerName, ".") != "sharma.t" || strings.Join(def.TableName, ".") != "sharma.stock" {
		t.Errorf("qualified: %+v", def)
	}
}

func TestParseECATriggerErrors(t *testing.T) {
	bad := []string{
		"create trigger t event e as",                                     // empty action
		"create trigger t event e",                                        // no AS
		"create trigger t on tbl for truncate event e as print 'x'",       // bad op
		"create trigger t on tbl event e as print 'x'",                    // missing FOR
		"create trigger t event e = as print 'x'",                         // empty expr
		"create trigger t on tbl for insert event e = a ^ b as print 'x'", // ON with composite
		"create trigger t event e WEIRD as print 'x'",                     // unknown modifier
		"create trigger t event e -1 as print 'x'",                        // bad priority
		"create trigger event e as print 'x'",                             // missing name
	}
	for _, src := range bad {
		if def, err := ParseECATrigger(src); err == nil {
			t.Errorf("ParseECATrigger(%q) succeeded: %+v", src, def)
		}
	}
}

func TestNameExpansion(t *testing.T) {
	got, err := expandName("sentineldb", "sharma", []string{"addStk"})
	if err != nil || got != "sentineldb.sharma.addStk" {
		t.Errorf("1-part: %q %v", got, err)
	}
	got, err = expandName("sentineldb", "sharma", []string{"li", "addStk"})
	if err != nil || got != "sentineldb.li.addStk" {
		t.Errorf("2-part: %q %v", got, err)
	}
	got, err = expandName("x", "y", []string{"db2", "li", "t"})
	if err != nil || got != "db2.li.t" {
		t.Errorf("3-part: %q %v", got, err)
	}
	if _, err = expandName("", "", []string{"t"}); err == nil {
		t.Error("expansion without context succeeded")
	}
	if _, err = expandName("d", "u", []string{"a", "b", "c", "d"}); err == nil {
		t.Error("4-part accepted")
	}
	// Injectivity across (db, user, object) triples.
	seen := map[string]bool{}
	for _, db := range []string{"d1", "d2"} {
		for _, u := range []string{"u1", "u2"} {
			for _, o := range []string{"o1", "o2"} {
				n, err := expandName(db, u, []string{o})
				if err != nil || seen[n] {
					t.Errorf("collision or error for %s/%s/%s: %q %v", db, u, o, n, err)
				}
				seen[n] = true
			}
		}
	}
}

func TestEventNameExpansion(t *testing.T) {
	got, err := expandEventName("db", "u", "ev")
	if err != nil || got != "db.u.ev" {
		t.Errorf("%q %v", got, err)
	}
	got, err = expandEventName("db", "u", "other.li.ev")
	if err != nil || got != "other.li.ev" {
		t.Errorf("%q %v", got, err)
	}
	if _, err := expandEventName("db", "u", "a.b"); err == nil {
		t.Error("2-part event name accepted")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	msg := notifyPrefix("db.u.ev", "db.u.stock", "insert") + "42"
	ev, tbl, op, vno, err := parseNotification(msg)
	if err != nil || ev != "db.u.ev" || tbl != "db.u.stock" || op != "insert" || vno != 42 {
		t.Errorf("round trip: %v %v %v %v %v", ev, tbl, op, vno, err)
	}
	for _, bad := range []string{"", "ECA1|a|b", "NOPE|a|b|c|1", "ECA1|a|b|c|x2"} {
		if _, _, _, _, err := parseNotification(bad); err == nil {
			t.Errorf("parseNotification(%q) succeeded", bad)
		}
	}
}

func TestRewriteAction(t *testing.T) {
	action := "select symbol, price from stock.inserted where price > 10"
	out, shadows, err := rewriteAction("sentineldb", "sharma", action)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sentineldb.sharma.stock_inserted_tmp") {
		t.Errorf("rewrite: %q", out)
	}
	if len(shadows) != 1 || shadows[0].Table != "sentineldb.sharma.stock" || shadows[0].Op != "inserted" {
		t.Errorf("shadows: %+v", shadows)
	}
	// Qualified reference and both pseudo kinds; duplicates deduped.
	action = "select * from li.stock.deleted, stock.inserted, stock.inserted"
	out, shadows, err = rewriteAction("db", "u", action)
	if err != nil {
		t.Fatal(err)
	}
	if len(shadows) != 2 {
		t.Errorf("shadows: %+v", shadows)
	}
	if !strings.Contains(out, "db.li.stock_deleted_tmp") || !strings.Contains(out, "db.u.stock_inserted_tmp") {
		t.Errorf("rewrite: %q", out)
	}
	// No references → action unchanged.
	out, shadows, err = rewriteAction("db", "u", "print 'hello'")
	if err != nil || out != "print 'hello'" || shadows != nil {
		t.Errorf("no-op rewrite: %q %v %v", out, shadows, err)
	}
}

func TestFigureSchemas(t *testing.T) {
	for _, tab := range []string{TabPrimitiveEvent, TabCompositeEvent, TabEcaTrigger, TabContext} {
		out, err := FigureSchema(tab)
		if err != nil || !strings.Contains(out, "Column_name") {
			t.Errorf("FigureSchema(%s): %v\n%s", tab, err, out)
		}
	}
	if _, err := FigureSchema("nope"); err == nil {
		t.Error("unknown figure schema accepted")
	}
	// Figure 5 spot checks.
	out, _ := FigureSchema(TabPrimitiveEvent)
	for _, col := range []string{"dbName", "userName", "eventName", "tableName", "operation", "timeStamp", "vNo"} {
		if !strings.Contains(out, col) {
			t.Errorf("Figure 5 missing %s", col)
		}
	}
}

func TestGenPrimitiveEventCode(t *testing.T) {
	batches := genPrimitiveEvent("sentineldb.sharma.addStk", "sentineldb.sharma.stock", sqlparse.OpInsert, "127.0.0.1", 10006)
	if len(batches) != 2 {
		t.Fatalf("got %d batches", len(batches))
	}
	joined := strings.Join(batches, "\n---\n")
	// Structural equivalence with Figure 11.
	for _, want := range []string{
		"select * into sentineldb.sharma.stock_inserted from stock where 1 = 2",
		"alter table sentineldb.sharma.stock_inserted add vNo int null",
		"create trigger sentineldb.sharma.addStk__trig",
		"for insert",
		"update SysPrimitiveEvent set vNo = vNo + 1 where eventName = 'sentineldb.sharma.addStk'",
		"insert sentineldb.sharma.stock_inserted select t.*, spe.vNo from inserted t",
		"syb_sendmsg('127.0.0.1', 10006,",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("generated code missing %q in:\n%s", want, joined)
		}
	}
	// Update events record both pseudo-tables.
	batches = genPrimitiveEvent("d.u.ev", "d.u.t", sqlparse.OpUpdate, "h", 1)
	joined = strings.Join(batches, "\n")
	if !strings.Contains(joined, "d.u.t_inserted") || !strings.Contains(joined, "d.u.t_deleted") {
		t.Errorf("update shadows: %s", joined)
	}
}

func TestGenActionProcCode(t *testing.T) {
	shadows := []ShadowRef{{Table: "sentineldb.sharma.stock", Op: "inserted"}}
	proc := genActionProc("sentineldb.sharma.t_and__Proc", "RECENT",
		"select symbol, price from sentineldb.sharma.stock_inserted_tmp", shadows)
	// Structural equivalence with Figure 14.
	for _, want := range []string{
		"create procedure sentineldb.sharma.t_and__Proc as",
		"delete sentineldb.sharma.stock_inserted_tmp",
		"insert sentineldb.sharma.stock_inserted_tmp",
		"c.context = 'RECENT'",
		"c.tableName = 'sentineldb.sharma.stock_inserted'",
		"s.vNo = c.vNo",
	} {
		if !strings.Contains(proc, want) {
			t.Errorf("proc missing %q in:\n%s", want, proc)
		}
	}
	tmp := genTmpTables(shadows)
	if len(tmp) != 1 || !strings.Contains(tmp[0], "stock_inserted_tmp") {
		t.Errorf("tmp tables: %v", tmp)
	}
}
