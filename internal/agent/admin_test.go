package agent

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/activedb/ecaagent/internal/faults"
)

func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// metricTotal sums every series of one family in a text exposition (a
// scalar counter is a single series; a vector sums across label values).
func metricTotal(t *testing.T, exposition, name string) float64 {
	t.Helper()
	total, found := 0.0, false
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metric %s: bad line %q", name, line)
		}
		total += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s absent from exposition", name)
	}
	return total
}

// TestAdminEndpointsUnderChaos reruns the PR-1 chaos acceptance scenario
// and then audits the observability surface: /metrics and /stats must
// agree with each other and with Stats(), the notification counters must
// balance (received = delivered + dropped + duplicate), actions must have
// run exactly once each, and the latency histograms must have observed the
// run.
func TestAdminEndpointsUnderChaos(t *testing.T) {
	inj := faults.NewInjector(faults.Cycle(
		faults.None, faults.Error, faults.None, faults.Disconnect, faults.None, faults.Hang,
	))
	r := newChaosRig(t, inj, func(cfg *Config) { cfg.ActionBuffer = 1024 })
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t_audit on stock for insert event addStk as insert audit select symbol from stock.inserted"); err != nil {
		t.Fatal(err)
	}
	cs.Close()

	pipe := faults.NewPipe(faults.PipeConfig{Seed: 42, DropRate: 0.3, DupRate: 0.15, ReorderEvery: 3}, r.agent.Deliver)
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		pipe.Send(msg)
		return nil
	})
	inj.Arm()

	const n = 40
	sess := r.eng.NewSession("sharma")
	if err := sess.Use("sentineldb"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sess.ExecScript(fmt.Sprintf("insert stock values ('S%02d', %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Flush()
	r.agent.WaitActions()
	if err := r.agent.Resync(); err != nil {
		t.Fatalf("resync: %v", err)
	}
	r.agent.WaitActions()
	inj.Disarm()

	srv := httptest.NewServer(r.agent.AdminHandler())
	defer srv.Close()

	// /healthz.
	if code, body := adminGet(t, srv.URL, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}

	// /metrics: the exposition, Stats(), and the balance invariant.
	code, exposition := adminGet(t, srv.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	st := r.agent.Stats()
	received := metricTotal(t, exposition, "eca_notifications_received_total")
	delivered := metricTotal(t, exposition, "eca_notifications_delivered_total")
	dropped := metricTotal(t, exposition, "eca_notifications_dropped_total")
	duplicate := metricTotal(t, exposition, "eca_notifications_duplicate_total")
	if received == 0 {
		t.Fatal("no notifications recorded")
	}
	if received != delivered+dropped+duplicate {
		t.Errorf("notification balance: received %v != delivered %v + dropped %v + duplicate %v",
			received, delivered, dropped, duplicate)
	}
	if uint64(received) != st.NotificationsReceived || uint64(duplicate) != st.NotificationsDuplicate {
		t.Errorf("/metrics disagrees with Stats(): %v/%v vs %+v", received, duplicate, st)
	}
	if runs := metricTotal(t, exposition, "eca_actions_run_total"); runs != n {
		t.Errorf("eca_actions_run_total = %v, want %d", runs, n)
	}
	if perRule := metricTotal(t, exposition, "eca_rule_runs_total"); perRule != n {
		t.Errorf("eca_rule_runs_total (all rules) = %v, want %d", perRule, n)
	}
	// No rule failed, so the failure vector has headers but no series.
	if !strings.Contains(exposition, "# TYPE eca_rule_failures_total counter") {
		t.Error("eca_rule_failures_total family not exposed")
	}
	if strings.Contains(exposition, "eca_rule_failures_total{") {
		t.Error("eca_rule_failures_total has series despite zero failures")
	}
	if recovered := metricTotal(t, exposition, "eca_occurrences_recovered_total"); recovered == 0 {
		t.Error("recovery engaged but eca_occurrences_recovered_total = 0")
	}
	for _, h := range []string{"eca_detect_latency_seconds", "eca_action_latency_seconds", "eca_gateway_batch_seconds"} {
		if count := metricTotal(t, exposition, h+"_count"); count == 0 {
			t.Errorf("histogram %s empty", h)
		}
		if buckets := metricTotal(t, exposition, h+"_bucket"); buckets == 0 {
			t.Errorf("histogram %s has no bucket lines", h)
		}
	}

	// /stats: same counters through the JSON surface.
	code, statsBody := adminGet(t, srv.URL, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	var js struct {
		NotificationsReceived  uint64
		NotificationsDelivered uint64
		NotificationsDropped   uint64
		NotificationsDuplicate uint64
		ActionsRun             uint64
		Triggers               int
		Histograms             map[string]struct {
			Count   uint64 `json:"count"`
			Sum     float64
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		}
	}
	if err := json.Unmarshal([]byte(statsBody), &js); err != nil {
		t.Fatalf("/stats JSON: %v\n%s", err, statsBody)
	}
	if js.NotificationsReceived != uint64(received) ||
		js.NotificationsReceived != js.NotificationsDelivered+js.NotificationsDropped+js.NotificationsDuplicate {
		t.Errorf("/stats balance: %+v vs /metrics received %v", js, received)
	}
	if js.ActionsRun != n || js.Triggers != 1 {
		t.Errorf("/stats: ActionsRun=%d Triggers=%d", js.ActionsRun, js.Triggers)
	}
	act, ok := js.Histograms["eca_action_latency_seconds"]
	if !ok || act.Count == 0 || len(act.Buckets) == 0 {
		t.Errorf("/stats action histogram: %+v", act)
	}
	if len(act.Buckets) > 0 && act.Buckets[len(act.Buckets)-1].LE != "+Inf" {
		t.Errorf("last bucket le = %q", act.Buckets[len(act.Buckets)-1].LE)
	}

	// /eventgraph.
	if code, dot := adminGet(t, srv.URL, "/eventgraph"); code != http.StatusOK || !strings.Contains(dot, "digraph") {
		t.Errorf("/eventgraph: %d %.60q", code, dot)
	}

	// pprof: the index and a short CPU profile.
	if code, body := adminGet(t, srv.URL, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
	if code, _ := adminGet(t, srv.URL, "/debug/pprof/profile?seconds=1"); code != http.StatusOK {
		t.Errorf("/debug/pprof/profile: %d", code)
	}
}

// TestLivenessReadinessSplit: /livez (and the /healthz alias) report the
// process alive regardless of role, while /readyz reflects the ingest
// gate — "ok" standalone, the cluster role once SetRoleFunc installs one,
// and 503 for any state that must not receive notifications.
func TestLivenessReadinessSplit(t *testing.T) {
	r := newChaosRig(t, nil, nil)
	srv := httptest.NewServer(r.agent.AdminHandler())
	defer srv.Close()

	for _, path := range []string{"/livez", "/healthz"} {
		if code, body := adminGet(t, srv.URL, path); code != http.StatusOK || !strings.Contains(body, "ok") {
			t.Errorf("%s: %d %q", path, code, body)
		}
	}
	if code, body := adminGet(t, srv.URL, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/readyz standalone: %d %q", code, body)
	}

	role := "standby"
	r.agent.SetRoleFunc(func() string { return role })
	if code, body := adminGet(t, srv.URL, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "standby") {
		t.Errorf("/readyz standby: %d %q", code, body)
	}
	// Liveness is unaffected by the standby role.
	if code, _ := adminGet(t, srv.URL, "/livez"); code != http.StatusOK {
		t.Errorf("/livez standby: %d", code)
	}
	role = "primary"
	if code, body := adminGet(t, srv.URL, "/readyz"); code != http.StatusOK || !strings.Contains(body, "primary") {
		t.Errorf("/readyz primary: %d %q", code, body)
	}
	r.agent.SetRoleFunc(nil)
	if code, body := adminGet(t, srv.URL, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/readyz after reset: %d %q", code, body)
	}
}

// TestReadinessRecovering: before New returns the agent gates delivery on
// the ready channel; Readiness must report ("recovering", false) in that
// window. Driven directly against a hand-built Agent to avoid racing real
// startup.
func TestReadinessRecovering(t *testing.T) {
	a := &Agent{ready: make(chan struct{})}
	if state, ready := a.Readiness(); ready || state != "recovering" {
		t.Fatalf("pre-ready Readiness = %q, %v", state, ready)
	}
	close(a.ready)
	if state, ready := a.Readiness(); !ready || state != "ok" {
		t.Fatalf("post-ready Readiness = %q, %v", state, ready)
	}
}
