package agent

import (
	"strings"
	"testing"
)

// Malformed datagrams — truncated, oversized, duplicate-field, junk vNo —
// must be counted in NotificationsDropped and never panic or reach the LED.
func TestParseNotificationRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		msg  string
	}{
		{"empty", ""},
		{"wrong magic", "ECA2|e|t|insert|1"},
		{"truncated after magic", "ECA1"},
		{"truncated missing vNo field", "ECA1|e|t|insert"},
		{"truncated mid-field", "ECA1|e|t|ins"},
		{"duplicate field", "ECA1|e|t|insert|1|1"},
		{"duplicate event field", "ECA1|e|e|t|insert|1"},
		{"oversized", "ECA1|" + strings.Repeat("x", maxNotificationLen) + "|t|insert|1"},
		{"empty event", "ECA1||t|insert|1"},
		{"empty table", "ECA1|e||insert|1"},
		{"empty op", "ECA1|e|t||1"},
		{"empty vNo", "ECA1|e|t|insert|"},
		{"junk vNo", "ECA1|e|t|insert|12x"},
		{"negative vNo", "ECA1|e|t|insert|-1"},
		{"vNo overflow", "ECA1|e|t|insert|99999999999999999999999"},
	}
	r := newRig(t)
	before := r.agent.Stats()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, _, err := parseNotification(tc.msg); err == nil {
				t.Errorf("parseNotification(%q) accepted", tc.msg)
			}
			r.agent.Deliver(tc.msg)
		})
	}
	after := r.agent.Stats()
	if got := after.NotificationsDropped - before.NotificationsDropped; got != uint64(len(cases)) {
		t.Errorf("NotificationsDropped advanced by %d, want %d", got, len(cases))
	}
	if after.NotificationsReceived-before.NotificationsReceived != uint64(len(cases)) {
		t.Errorf("NotificationsReceived: %+v", after)
	}
}

func TestParseNotificationAcceptsWellFormed(t *testing.T) {
	event, table, op, vno, err := parseNotification("ECA1|db.u.ev|db.u.tbl|insert|42\n")
	if err != nil {
		t.Fatal(err)
	}
	if event != "db.u.ev" || table != "db.u.tbl" || op != "insert" || vno != 42 {
		t.Errorf("decoded %q %q %q %d", event, table, op, vno)
	}
}

// FuzzParseNotification drives the decoder with arbitrary datagrams; it
// must reject or decode, never panic, and a decoded vNo is never negative.
func FuzzParseNotification(f *testing.F) {
	f.Add("ECA1|db.u.ev|db.u.tbl|insert|42")
	f.Add("ECA1|e|t|insert|1|1")
	f.Add("ECA1|e|t|insert")
	f.Add("ECA1||||")
	f.Add(strings.Repeat("|", 100))
	f.Add("ECA1|e|t|insert|99999999999999999999999")
	f.Add("ECA1|e|t|update|0")
	f.Add("ECA1|e|t|delete|-1")
	f.Add("ECA1|e|t|insert|+7")
	f.Add("ECA1|e|t|insert|07")
	f.Add("GED1|site|e|t|insert|1")
	f.Add("ECA1|e|t|insert|1\n")
	f.Add("ECA1|e|t|insert|1\nECA1|e|t|insert|2")
	f.Add("ECA1|" + strings.Repeat("x", 5000) + "|t|insert|1")
	f.Add("eca1|e|t|insert|1")
	f.Add("ECA1|e|t|INSERT|1")
	f.Fuzz(func(t *testing.T, msg string) {
		_, _, _, vno, err := parseNotification(msg)
		if err == nil && vno < 0 {
			t.Errorf("accepted negative vNo %d from %q", vno, msg)
		}
	})
}

// FuzzDecodeBatch fuzzes the batched-datagram decoder the UDP notifier
// feeds: it must never panic, every decoded primitive must satisfy the
// single-notification parser's invariants, and line accounting must add
// up (decoded + dropped == non-blank lines).
func FuzzDecodeBatch(f *testing.F) {
	f.Add("ECA1|db.u.ev|db.u.tbl|insert|1")
	f.Add("ECA1|e|t|insert|1\nECA1|e|t|insert|2")
	f.Add("ECA1|e|t|insert|1\nECA1|e2|t2|delete|9\nECA1|e3|t3|update|3")
	f.Add("ECA1|e|t|insert|1\n\nECA1|e|t|insert|2\n")
	f.Add("ECA1|e|t|insert|1\ngarbage\nECA1|e|t|insert|2")
	f.Add("\n\n\n")
	f.Add("ECA1|e|t|insert|99999999999999999999999\nECA1|e|t|insert|1")
	f.Add(strings.Repeat("ECA1|e|t|insert|1\n", 50))
	f.Fuzz(func(t *testing.T, datagram string) {
		prims, bad := decodeBatch([]byte(datagram))
		lines := 0
		for _, line := range strings.Split(datagram, "\n") {
			if line != "" {
				lines++
			}
		}
		if len(prims)+len(bad) != lines {
			t.Errorf("accounting: %d prims + %d dropped != %d lines",
				len(prims), len(bad), lines)
		}
		for _, p := range prims {
			if p.VNo < 0 {
				t.Errorf("decoded negative vNo %d", p.VNo)
			}
			if p.Event == "" {
				t.Error("decoded empty event name")
			}
			if strings.Contains(p.Event, "\n") || strings.Contains(p.Table, "\n") {
				t.Error("newline leaked into a decoded field")
			}
		}
	})
}
