package agent

import "sync"

// interner deduplicates the small, recurring string universe of the
// notification wire — event names, table names, operations — so decoding a
// datagram into led.Primitive values allocates nothing once a name has
// been seen. The fast path is a read-locked map probe with a []byte key
// (the compiler elides the string conversion in `m[string(b)]`), so a
// warmed decode touches no allocator at all.
//
// The table is bounded: notification datagrams arrive from the network,
// and an attacker (or a buggy trigger) spraying unique names must not grow
// agent memory without limit. Beyond maxEntries the interner stops
// admitting new names and falls back to a plain per-call copy — correct,
// just no longer allocation-free for the unseen tail.
type interner struct {
	mu sync.RWMutex
	m  map[string]string
}

// maxInternEntries caps the table. The realistic universe is tiny (every
// defined event and table plus the five operation words); 4096 leaves two
// orders of magnitude of headroom before the cap can matter.
const maxInternEntries = 4096

// intern returns the canonical string for b, copying it into the table on
// first sight (while capacity remains).
func (in *interner) intern(b []byte) string {
	in.mu.RLock()
	s, ok := in.m[string(b)]
	in.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	in.mu.Lock()
	if in.m == nil {
		in.m = make(map[string]string, 64)
	}
	// Re-check under the write lock: a racing intern of the same name must
	// return the same canonical copy, not insert a second one.
	if prev, ok := in.m[s]; ok {
		in.mu.Unlock()
		return prev
	}
	if len(in.m) < maxInternEntries {
		in.m[s] = s
	}
	in.mu.Unlock()
	return s
}

// size reports the number of interned names (tests and /stats).
func (in *interner) size() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}

// wireNames is the process-wide name table every notification decode path
// resolves through. Sharing one table across agents is safe (canonical
// strings are immutable) and keeps the bound global: a hostile name spray
// costs the process at most maxInternEntries copies, however many agents
// it reaches.
var wireNames interner
