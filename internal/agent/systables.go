// Package agent implements the ECA Agent: the mediator of the paper that
// sits between clients and the SQL server and turns it into a full active
// database system. It contains the seven modules of Figure 2 — General
// Interface (gateway), Language Filter, ECA Parser, Local Event Detector
// (embedded from internal/led), Persistent Manager, Event Notifier and
// Action Handler.
package agent

import "fmt"

// System table names (Figures 5, 6, 7 and 17 of the paper). The tables are
// created in every user database that defines ECA rules, plus a registry in
// master that records which databases hold ECA state so recovery can find
// them.
const (
	TabPrimitiveEvent = "SysPrimitiveEvent"
	TabCompositeEvent = "SysCompositeEvent"
	TabEcaTrigger     = "SysEcaTrigger"
	TabContext        = "sysContext"
	// TabRegistry lives in master and lists ECA-enabled databases.
	TabRegistry = "SysEcaDatabases"
)

// SysTableDDL holds the CREATE TABLE statement for each agent system
// table, keyed by table name. SysEcaTrigger carries three columns beyond
// Figure 7 (coupling, context, priority) because this reproduction routes
// primitive-event rules through the LED as well, so every trigger needs its
// own context — the deviation is recorded in EXPERIMENTS.md.
var SysTableDDL = map[string]string{
	TabPrimitiveEvent: `create table SysPrimitiveEvent (
		dbName varchar(30) null,
		userName varchar(30) null,
		eventName varchar(100) null,
		tableName varchar(100) null,
		operation varchar(20) null,
		timeStamp datetime null,
		vNo int null)`,
	TabCompositeEvent: `create table SysCompositeEvent (
		dbName varchar(30) null,
		userName varchar(30) null,
		eventName varchar(100) null,
		eventDescribe text null,
		timeStamp datetime null,
		coupling char(10) null,
		context char(10) null,
		priority char(10) null)`,
	TabEcaTrigger: `create table SysEcaTrigger (
		dbName varchar(30) null,
		userName varchar(30) null,
		triggerName varchar(100) null,
		triggerProc text null,
		timeStamp datetime null,
		eventName varchar(100) null,
		coupling char(10) null,
		context char(10) null,
		priority int null)`,
	TabContext: `create table sysContext (
		tableName varchar(100) not null,
		context varchar(12) not null,
		vNo int not null)`,
}

// registryDDL creates the master-database registry.
const registryDDL = `create table SysEcaDatabases (dbName varchar(30) not null)`

// Figure schemas as printed in the paper, used by the figure-regeneration
// harness (ecabench) to reproduce Figures 5, 6, 7 and 17 row-for-row.
type figColumn struct {
	Name   string
	Type   string
	Length int
	Nulls  string
}

var figureSchemas = map[string][]figColumn{
	TabPrimitiveEvent: {
		{"dbName", "varchar", 30, "NULL"},
		{"userName", "varchar", 30, "NULL"},
		{"eventName", "varchar", 30, "NULL"},
		{"tableName", "varchar", 30, "NULL"},
		{"operation", "varchar", 20, "NULL"},
		{"timeStamp", "datetime", 8, "NULL"},
		{"vNo", "int", 4, "NULL"},
	},
	TabCompositeEvent: {
		{"dbName", "varchar", 30, "NULL"},
		{"userName", "varchar", 30, "NULL"},
		{"eventName", "varchar", 30, "NULL"},
		{"eventDescribe", "text", 0, "NULL"},
		{"timeStamp", "datetime", 8, "NULL"},
		{"coupling", "char", 10, "NULL"},
		{"context", "char", 10, "NULL"},
		{"priority", "char", 10, "NULL"},
	},
	TabEcaTrigger: {
		{"dbName", "varchar", 30, "NULL"},
		{"userName", "varchar", 30, "NULL"},
		{"triggerName", "varchar", 30, "NULL"},
		{"triggerProc", "text", 0, "NULL"},
		{"timeStamp", "datetime", 8, "NULL"},
		{"eventName", "varchar", 30, "NULL"},
	},
	TabContext: {
		{"tableName", "varchar", 50, "not null"},
		{"context", "varchar", 12, "not null"},
		{"vNo", "int", 4, "not null"},
	},
}

// FigureSchema renders one of the paper's system-table schema figures
// (5, 6, 7 or 17) as the aligned table the report prints.
func FigureSchema(table string) (string, error) {
	cols, ok := figureSchemas[table]
	if !ok {
		return "", fmt.Errorf("agent: no figure schema for %q", table)
	}
	out := fmt.Sprintf("%-14s %-9s %-7s %s\n", "Column_name", "Type", "Length", "Nulls")
	for _, c := range cols {
		length := "text"
		if c.Length > 0 {
			length = fmt.Sprintf("%d", c.Length)
		}
		out += fmt.Sprintf("%-14s %-9s %-7s %s\n", c.Name, c.Type, length, c.Nulls)
	}
	return out, nil
}
