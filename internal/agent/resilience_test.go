package agent

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/catalog"
	"github.com/activedb/ecaagent/internal/engine"
	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/tds"
)

// fastRetry keeps resilience tests quick without changing semantics.
var fastRetry = RetryConfig{
	MaxAttempts:    8,
	BaseDelay:      time.Millisecond,
	MaxDelay:       5 * time.Millisecond,
	AttemptTimeout: 100 * time.Millisecond,
}

// newChaosRig builds an in-process deployment whose agent-internal
// connections all pass through the given injector, with notifications
// delivered directly (mutate the delivery path per test via SetNotifier).
func newChaosRig(t *testing.T, inj *faults.Injector, mutate func(*Config)) *rig {
	t.Helper()
	eng := engine.New(catalog.New())
	base := LocalDialer(eng)
	cfg := Config{
		Dial: func(user, db string) (Upstream, error) {
			up, err := base(user, db)
			if err != nil {
				return nil, err
			}
			if inj == nil {
				return up, nil
			}
			return inj.Wrap(up), nil
		},
		NotifyAddr: "-",
		Logf:       func(string, ...any) {},
		Retry:      fastRetry,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	eng.SetNotifier(func(host string, port int, msg string) error {
		a.Deliver(msg)
		return nil
	})
	seed := eng.NewSession("sharma")
	if _, err := seed.ExecScript(`create database sentineldb
use sentineldb
create table stock (symbol varchar(10), price float null)
create table audit (symbol varchar(10) null)`); err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, agent: a}
}

func notifMsg(event, table, op string, vno int) string {
	return fmt.Sprintf("ECA1|%s|%s|%s|%d", event, table, op, vno)
}

// --- gap detection & recovery ---------------------------------------------

func TestGapFillReplaysMissedOccurrences(t *testing.T) {
	r := newChaosRig(t, nil, nil)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	ev, tbl := "sentineldb.sharma.addStk", "sentineldb.sharma.stock"

	r.agent.Deliver(notifMsg(ev, tbl, "insert", 1))
	// vNo jumps 1 → 4: occurrences 2 and 3 were lost in flight and must be
	// replayed before 4 is signalled.
	r.agent.Deliver(notifMsg(ev, tbl, "insert", 4))
	var vnos []int
	for i := 0; i < 4; i++ {
		res := waitAction(t, r.agent)
		if res.Err != nil {
			t.Fatalf("action %d: %v", i, res.Err)
		}
		vnos = append(vnos, res.Occ.Constituents[0].VNo)
	}
	if fmt.Sprint(vnos) != "[1 2 3 4]" {
		t.Errorf("replay order: %v", vnos)
	}

	// A late (reordered) or duplicated datagram below the watermark is
	// suppressed — the gap fill already ran its occurrence.
	r.agent.Deliver(notifMsg(ev, tbl, "insert", 3))
	r.agent.Deliver(notifMsg(ev, tbl, "insert", 4))
	r.agent.WaitActions()
	select {
	case res := <-r.agent.ActionDone:
		t.Fatalf("duplicate fired an action: %+v", res)
	default:
	}

	st := r.agent.Stats()
	if st.GapsDetected != 1 || st.OccurrencesRecovered != 2 {
		t.Errorf("gap stats: %+v", st)
	}
	if st.NotificationsDuplicate != 2 {
		t.Errorf("NotificationsDuplicate = %d", st.NotificationsDuplicate)
	}
}

func TestResyncRecoversTrailingLoss(t *testing.T) {
	r := newChaosRig(t, nil, nil)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as insert audit select symbol from stock.inserted"); err != nil {
		t.Fatal(err)
	}
	// Black-hole the notification path: every datagram is lost, so no later
	// arrival can ever reveal the gap — only the sweep can.
	r.eng.SetNotifier(func(string, int, string) error { return nil })
	sess := r.eng.NewSession("sharma")
	if err := sess.Use("sentineldb"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sess.ExecScript(fmt.Sprintf("insert stock values ('S%d', %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.agent.Resync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res := waitAction(t, r.agent); res.Err != nil {
			t.Fatalf("recovered action: %v", res.Err)
		}
	}
	// The replayed occurrences materialized the right parameter contexts:
	// each audit row carries the symbol of one lost occurrence.
	rs, err := sess.ExecScript("select symbol from audit order by symbol")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range rs[len(rs)-1].Rows {
		got = append(got, row[0].AsString())
	}
	if fmt.Sprint(got) != "[S0 S1 S2]" {
		t.Errorf("audit rows: %v", got)
	}
	st := r.agent.Stats()
	if st.GapsDetected != 1 || st.OccurrencesRecovered != 3 {
		t.Errorf("resync stats: %+v", st)
	}
	// A second sweep finds nothing new.
	if err := r.agent.Resync(); err != nil {
		t.Fatal(err)
	}
	if st := r.agent.Stats(); st.OccurrencesRecovered != 3 {
		t.Errorf("idempotent resync: %+v", st)
	}
}

func TestPeriodicResyncSweep(t *testing.T) {
	r := newChaosRig(t, nil, func(cfg *Config) {
		cfg.ResyncInterval = 10 * time.Millisecond
	})
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	r.eng.SetNotifier(func(string, int, string) error { return nil }) // lose everything
	sess := r.eng.NewSession("sharma")
	_ = sess.Use("sentineldb")
	if _, err := sess.ExecScript("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	// The background sweep must find and replay the loss without any help.
	if res := waitAction(t, r.agent); res.Err != nil {
		t.Fatalf("sweep-recovered action: %v", res.Err)
	}
}

// --- retrying upstream -----------------------------------------------------

// scriptedUp fails each Exec with the next scripted error (nil = success,
// past the end = success) and counts calls.
type scriptedUp struct {
	mu    sync.Mutex
	errs  []error
	calls int
}

func (u *scriptedUp) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	i := u.calls
	u.calls++
	if i < len(u.errs) && u.errs[i] != nil {
		return nil, u.errs[i]
	}
	return []*sqltypes.ResultSet{{Messages: []string{"ok"}}}, nil
}

func (u *scriptedUp) Close() error { return nil }

func TestRetryUpstreamReconnectsOnTransientFailure(t *testing.T) {
	up := &scriptedUp{errs: []error{syscall.ECONNRESET, syscall.ECONNRESET, nil}}
	var retries, reconnects int
	dials := 0
	r := newRetryUpstream(
		func() (Upstream, error) { dials++; return up, nil },
		fastRetry, nil,
		func() { retries++ },
		func() { reconnects++ },
	)
	defer r.Close()
	rs, err := r.Exec("select 1")
	if err != nil {
		t.Fatalf("exec after transient failures: %v", err)
	}
	if len(rs) != 1 || rs[0].Messages[0] != "ok" {
		t.Fatalf("results: %+v", rs)
	}
	if retries != 2 || reconnects != 2 || dials != 3 {
		t.Errorf("retries=%d reconnects=%d dials=%d", retries, reconnects, dials)
	}
}

func TestRetryUpstreamTerminalErrorNotRetried(t *testing.T) {
	srvErr := &tds.ServerError{Msg: "table not found"}
	up := &scriptedUp{errs: []error{srvErr}}
	var retries int
	r := newRetryUpstream(
		func() (Upstream, error) { return up, nil },
		fastRetry, nil,
		func() { retries++ }, nil,
	)
	defer r.Close()
	_, err := r.Exec("select * from nope")
	var se *tds.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("terminal error rewritten: %v", err)
	}
	if retries != 0 || up.calls != 1 {
		t.Errorf("terminal error retried: retries=%d calls=%d", retries, up.calls)
	}
}

func TestRetryUpstreamExhaustsAttempts(t *testing.T) {
	cfg := fastRetry
	cfg.MaxAttempts = 3
	r := newRetryUpstream(
		func() (Upstream, error) {
			return &scriptedUp{errs: []error{syscall.ECONNRESET, syscall.ECONNRESET, syscall.ECONNRESET}}, nil
		},
		cfg, nil, nil, nil,
	)
	defer r.Close()
	_, err := r.Exec("select 1")
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("exhaustion error: %v", err)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("cause not wrapped: %v", err)
	}
}

func TestRetryUpstreamAttemptDeadlineAbortsHang(t *testing.T) {
	inj := faults.NewInjector(faults.Script(faults.Hang))
	inj.Arm()
	cfg := fastRetry
	cfg.AttemptTimeout = 30 * time.Millisecond
	r := newRetryUpstream(
		func() (Upstream, error) { return inj.Wrap(&scriptedUp{}), nil },
		cfg, nil, nil, nil,
	)
	defer r.Close()
	start := time.Now()
	if _, err := r.Exec("select 1"); err != nil {
		t.Fatalf("exec after hung attempt: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang not aborted by deadline (took %v)", elapsed)
	}
}

// --- dead-letter queue -----------------------------------------------------

func TestDeadLetterQueueBounded(t *testing.T) {
	r := newChaosRig(t, nil, func(cfg *Config) { cfg.DeadLetterLimit = 2 })
	cs := r.session(t, "sharma", "sentineldb")
	// The action references a missing table: a terminal, non-retryable
	// failure every time it runs.
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as select * from nope"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := cs.Exec(fmt.Sprintf("insert stock values ('S%d', %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if res := waitAction(t, r.agent); res.Err == nil {
			t.Fatal("broken action reported success")
		}
	}
	dead := r.agent.DeadLetters()
	if len(dead) != 2 {
		t.Fatalf("dead letters: %d (limit 2)", len(dead))
	}
	// Oldest evicted: the survivors are occurrences 2 and 3.
	if v1, v2 := dead[0].Occ.Constituents[0].VNo, dead[1].Occ.Constituents[0].VNo; v1 != 2 || v2 != 3 {
		t.Errorf("dead-letter vNos: %d, %d", v1, v2)
	}
	if st := r.agent.Stats(); st.ActionsDeadLettered != 3 || st.ActionsFailed != 3 {
		t.Errorf("dead-letter stats: %+v", st)
	}
}

// --- graceful drain --------------------------------------------------------

func TestCloseDrainDeadlineAbandonsHungAction(t *testing.T) {
	inj := faults.NewInjector(faults.Cycle(faults.Hang))
	r := newChaosRig(t, inj, func(cfg *Config) {
		cfg.DrainTimeout = 100 * time.Millisecond
		rc := fastRetry
		rc.AttemptTimeout = 0 // no per-attempt deadline: the action truly hangs
		cfg.Retry = rc
	})
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	cs.Close()
	inj.Arm()
	sess := r.eng.NewSession("sharma")
	_ = sess.Use("sentineldb")
	if _, err := sess.ExecScript("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the action reach the hung Exec
	start := time.Now()
	r.agent.Close()
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("Close returned before the drain deadline: %v", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("Close hung past the drain deadline: %v", elapsed)
	}
}

// --- acceptance: at-least-once under chaos ---------------------------------

// TestAtLeastOnceUnderChaos is the issue's acceptance scenario: ≥25% of
// notifications are dropped (plus duplication and reordering), and the
// action-handler upstream is repeatedly killed and hung mid-run — yet every
// expected rule action executes exactly once, because recovery dedupes and
// replays by vNo and the retrying upstream redials through failures.
func TestAtLeastOnceUnderChaos(t *testing.T) {
	inj := faults.NewInjector(faults.Cycle(
		faults.None, faults.Error, faults.None, faults.Disconnect, faults.None, faults.Hang,
	))
	r := newChaosRig(t, inj, func(cfg *Config) { cfg.ActionBuffer = 1024 })
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t_audit on stock for insert event addStk as insert audit select symbol from stock.inserted"); err != nil {
		t.Fatal(err)
	}
	cs.Close()

	// The notification path drops ~30%, duplicates ~15% and reorders within
	// windows of 3 — all seeded, so the run is reproducible.
	pipe := faults.NewPipe(faults.PipeConfig{Seed: 42, DropRate: 0.3, DupRate: 0.15, ReorderEvery: 3}, r.agent.Deliver)
	r.eng.SetNotifier(func(host string, port int, msg string) error {
		pipe.Send(msg)
		return nil
	})
	inj.Arm() // start killing the agent's upstream connections

	const n = 40
	sess := r.eng.NewSession("sharma")
	if err := sess.Use("sentineldb"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sess.ExecScript(fmt.Sprintf("insert stock values ('S%02d', %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	pipe.Flush()          // release anything held in the reorder window
	r.agent.WaitActions() // drain in-flight actions
	if err := r.agent.Resync(); err != nil {
		t.Fatalf("resync: %v", err)
	}
	r.agent.WaitActions() // drain the trailing-loss replays
	inj.Disarm()

	if pipe.Dropped() < n/4 {
		t.Fatalf("fault injection too gentle: dropped %d of %d (< 25%%)", pipe.Dropped(), n)
	}
	// Exactly one audit row per insert, each with the right parameter
	// context — no loss, no double execution.
	rs, err := sess.ExecScript("select symbol from audit order by symbol")
	if err != nil {
		t.Fatal(err)
	}
	rows := rs[len(rs)-1].Rows
	if len(rows) != n {
		t.Fatalf("audit rows: %d want %d (dropped=%d duped=%d stats=%+v)",
			len(rows), n, pipe.Dropped(), pipe.Duplicated(), r.agent.Stats())
	}
	for i, row := range rows {
		if want := fmt.Sprintf("S%02d", i); row[0].AsString() != want {
			t.Errorf("audit[%d] = %q want %q", i, row[0].AsString(), want)
		}
	}
	st := r.agent.Stats()
	if st.ActionsRun != n || st.ActionsFailed != 0 {
		t.Errorf("actions: %+v", st)
	}
	if st.OccurrencesRecovered == 0 || st.GapsDetected == 0 {
		t.Errorf("recovery never engaged: %+v", st)
	}
	if st.UpstreamRetries == 0 || st.UpstreamReconnects == 0 {
		t.Errorf("retry layer never engaged: %+v", st)
	}
	if st.NotificationsDuplicate == 0 {
		t.Errorf("no duplicates suppressed: %+v", st)
	}
}
