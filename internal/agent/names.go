package agent

import (
	"fmt"
	"strings"
)

// Name expansion (§5.1 of the paper). A user-assigned object name is
// rewritten to the system-wide internal name
//
//	DatabaseName.userName.objectName
//
// which is unique across users and databases and consistent with how the
// original server expands object names.

// expandName turns a possibly-qualified name (parts from right to left:
// object, owner, database) into the canonical three-part internal name for
// a session in database db running as user.
func expandName(db, user string, parts []string) (string, error) {
	var objDB, owner, obj string
	switch len(parts) {
	case 1:
		obj = parts[0]
	case 2:
		owner, obj = parts[0], parts[1]
	case 3:
		objDB, owner, obj = parts[0], parts[1], parts[2]
	default:
		return "", fmt.Errorf("agent: name has %d components", len(parts))
	}
	if obj == "" {
		return "", fmt.Errorf("agent: empty object name")
	}
	if objDB == "" {
		objDB = db
	}
	if owner == "" {
		owner = user
	}
	if objDB == "" || owner == "" {
		return "", fmt.Errorf("agent: cannot expand %q without a database and user", strings.Join(parts, "."))
	}
	return objDB + "." + owner + "." + obj, nil
}

// expandEventName expands an event name that may already be dotted
// ("addStk" or "sentineldb.sharma.addStk").
func expandEventName(db, user, name string) (string, error) {
	parts := strings.Split(name, ".")
	if len(parts) == 3 {
		return name, nil
	}
	if len(parts) != 1 {
		return "", fmt.Errorf("agent: event name %q must have 1 or 3 components", name)
	}
	return expandName(db, user, parts)
}

// splitInternal breaks an internal db.user.object name back apart.
func splitInternal(name string) (db, user, obj string, err error) {
	parts := strings.Split(name, ".")
	if len(parts) != 3 {
		return "", "", "", fmt.Errorf("agent: %q is not an internal name", name)
	}
	return parts[0], parts[1], parts[2], nil
}

// Derived object names. The paper derives shadow tables
// (tablename_inserted / tablename_deleted, §5.2), per-trigger action
// procedures (<trigger>__Proc, Figure 11), and per-table context
// materialization tables (<table>_inserted_tmp, Figure 14).

func shadowTableName(internalTable, op string) string {
	return internalTable + "_" + op
}

func actionProcName(internalTrigger string) string {
	return internalTrigger + "__Proc"
}

func tmpTableName(internalTable, op string) string {
	return internalTable + "_" + op + "_tmp"
}
