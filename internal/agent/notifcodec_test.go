package agent

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"github.com/activedb/ecaagent/internal/led"
)

// appendCRC closes a hand-built frame body the way the encoder does.
func appendCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func mustEncode(tb testing.TB, prims []led.Primitive) []byte {
	tb.Helper()
	buf, err := EncodeBinaryBatch(prims)
	if err != nil {
		tb.Fatal(err)
	}
	return buf
}

func decodeAll(tb testing.TB, data []byte) ([]led.Primitive, error) {
	tb.Helper()
	var out []led.Primitive
	var in interner
	n, err := decodeBinaryBatch(data, &in, func(p led.Primitive) { out = append(out, p) })
	if err == nil && n != len(out) {
		tb.Fatalf("decode reported %d records but emitted %d", n, len(out))
	}
	return out, err
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	prims := []led.Primitive{
		{Event: "db.u.ev", Table: "db.u.tbl", Op: "insert", VNo: 1},
		{Event: "db.u.ev2", Table: "db.u.tbl2", Op: "delete", VNo: 1 << 40},
		// Binary fields may carry bytes the text format cannot.
		{Event: "e|with\npipes", Table: "t", Op: "update", VNo: 0},
	}
	buf := mustEncode(t, prims)
	if !IsBinaryBatch(buf) {
		t.Fatal("encoded batch not recognized by magic")
	}
	got, err := decodeAll(t, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prims) {
		t.Fatalf("decoded %d records, want %d", len(got), len(prims))
	}
	for i := range prims {
		if got[i] != prims[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], prims[i])
		}
	}
}

func TestBinaryBatchEmpty(t *testing.T) {
	buf := mustEncode(t, nil)
	got, err := decodeAll(t, buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %d records", err, len(got))
	}
}

// Any single-bit corruption or truncation of a binary batch must fail the
// whole frame: zero emitted occurrences, never a decoded prefix.
func TestBinaryBatchCorruptionFailsWhole(t *testing.T) {
	prims := []led.Primitive{
		{Event: "e1", Table: "t1", Op: "insert", VNo: 7},
		{Event: "e2", Table: "t2", Op: "delete", VNo: 8},
	}
	buf := mustEncode(t, prims)
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		emitted := 0
		var in interner
		if _, err := decodeBinaryBatch(bad, &in, func(led.Primitive) { emitted++ }); err == nil {
			// Flipping a bit inside a length-prefixed name can produce a
			// different, still-consistent frame only if the CRC matched,
			// which a single flip cannot.
			t.Errorf("flip at byte %d accepted", i)
		}
		if emitted != 0 {
			t.Errorf("flip at byte %d emitted %d occurrences before failing", i, emitted)
		}
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := decodeAll(t, buf[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := decodeAll(t, nil); err == nil {
		t.Error("empty datagram accepted as binary batch")
	}
}

func TestBinaryBatchEncodeRejects(t *testing.T) {
	if _, err := EncodeBinaryBatch([]led.Primitive{{Event: "e", Table: "t", Op: "insert", VNo: -1}}); err == nil {
		t.Error("negative vNo encoded")
	}
	big := strings.Repeat("x", maxNotificationLen+1)
	if _, err := EncodeBinaryBatch([]led.Primitive{{Event: big, Table: "t", Op: "insert", VNo: 1}}); err == nil {
		t.Error("oversized field encoded")
	}
	many := make([]led.Primitive, maxBinaryBatch)
	for i := range many {
		many[i] = led.Primitive{Event: "e", Table: "t", Op: "insert", VNo: i}
	}
	if _, err := EncodeBinaryBatch(many); err == nil {
		t.Error("over-count batch encoded")
	}
}

// A structurally invalid frame behind a valid CRC (a buggy encoder, not
// line noise) must still be rejected: empty fields, trailing garbage.
func TestBinaryBatchStructuralRejects(t *testing.T) {
	reframe := func(mutate func([]byte) []byte) []byte {
		buf := mustEncode(t, []led.Primitive{{Event: "e", Table: "t", Op: "insert", VNo: 1}})
		body := mutate(append([]byte(nil), buf[:len(buf)-4]...))
		return appendCRC(body)
	}
	// Trailing garbage after the declared records.
	if _, err := decodeAll(t, reframe(func(b []byte) []byte { return append(b, 0xEE) })); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Declared count exceeds the records present.
	if _, err := decodeAll(t, reframe(func(b []byte) []byte { b[4]++; return b })); err == nil {
		t.Error("over-declared count accepted")
	}
	// Empty event field.
	empty := appendCRC([]byte{'E', 'C', 'B', '1', 1, 0, 0, 1, 't', 6, 'i', 'n', 's', 'e', 'r', 't', 1})
	if _, err := decodeAll(t, empty); err == nil {
		t.Error("empty event field accepted")
	}
}

// TestDeliverBinaryBatch drives the full delivery surface with an ECB1
// datagram: both events detect, counters advance like a text batch of the
// same size, and a corrupted frame counts one dropped datagram.
func TestDeliverBinaryBatch(t *testing.T) {
	r := newChaosRig(t, nil, nil)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	ev, tbl := "sentineldb.sharma.addStk", "sentineldb.sharma.stock"
	buf := mustEncode(t, []led.Primitive{
		{Event: ev, Table: tbl, Op: "insert", VNo: 1},
		{Event: ev, Table: tbl, Op: "insert", VNo: 2},
	})
	r.agent.DeliverBatchBytes(buf)
	r.agent.WaitIngest()
	r.agent.WaitActions()
	for i := 1; i <= 2; i++ {
		res := waitAction(t, r.agent)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := r.agent.Stats()
	if st.NotificationsReceived != 2 || st.NotificationsDropped != 0 {
		t.Errorf("received %d dropped %d, want 2/0", st.NotificationsReceived, st.NotificationsDropped)
	}

	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xFF
	r.agent.DeliverBatchBytes(bad)
	r.agent.WaitIngest()
	st = r.agent.Stats()
	if st.NotificationsReceived != 3 || st.NotificationsDropped != 1 {
		t.Errorf("after corrupt frame: received %d dropped %d, want 3/1", st.NotificationsReceived, st.NotificationsDropped)
	}
}

// ---- allocation guards (ISSUE 7 satellite: zero-allocation decode) ----

// TestAllocsParseNotificationBytes: parsing one text notification with a
// warmed interner must not allocate.
func TestAllocsParseNotificationBytes(t *testing.T) {
	var in interner
	line := []byte("ECA1|db.u.ev|db.u.tbl|insert|42")
	if _, _, _, _, err := parseNotificationBytes(line, &in); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, _, _, err := parseNotificationBytes(line, &in); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("parseNotificationBytes allocates %.1f objects/op, want 0", avg)
	}
}

// TestAllocsDecodeTextClean: a clean multi-line text batch must decode
// with zero allocations once the name universe is interned.
func TestAllocsDecodeTextClean(t *testing.T) {
	datagram := bytes.Repeat([]byte("ECA1|db.u.ev|db.u.tbl|insert|42\n"), 8)
	sink := 0
	emit := func(p led.Primitive) { sink += p.VNo }
	onErr := func(err error) { t.Errorf("clean batch produced error: %v", err) }
	decodeText(datagram, emit, onErr) // warm wireNames
	if avg := testing.AllocsPerRun(200, func() {
		if good, bad := decodeText(datagram, emit, onErr); good != 8 || bad != 0 {
			t.Fatalf("decoded %d/%d, want 8/0", good, bad)
		}
	}); avg != 0 {
		t.Fatalf("decodeText allocates %.1f objects/op on a clean batch, want 0", avg)
	}
}

// TestAllocsBinaryCodec: encoding into a sized buffer and decoding with a
// warmed interner must both be allocation-free.
func TestAllocsBinaryCodec(t *testing.T) {
	prims := []led.Primitive{
		{Event: "db.u.ev", Table: "db.u.tbl", Op: "insert", VNo: 1},
		{Event: "db.u.ev2", Table: "db.u.tbl", Op: "delete", VNo: 2},
	}
	buf := mustEncode(t, prims)
	dst := make([]byte, 0, 2*len(buf))
	if avg := testing.AllocsPerRun(200, func() {
		out, err := AppendBinaryBatch(dst[:0], prims)
		if err != nil || len(out) != len(buf) {
			t.Fatalf("encode: %v (%d bytes)", err, len(out))
		}
	}); avg != 0 {
		t.Fatalf("AppendBinaryBatch allocates %.1f objects/op, want 0", avg)
	}

	var in interner
	sink := 0
	emit := func(p led.Primitive) { sink += p.VNo }
	if _, err := decodeBinaryBatch(buf, &in, emit); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := decodeBinaryBatch(buf, &in, emit); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("decodeBinaryBatch allocates %.1f objects/op, want 0", avg)
	}
}

// TestInternerBounded: beyond the cap the interner keeps working (plain
// copies) without admitting new entries.
func TestInternerBounded(t *testing.T) {
	var in interner
	for i := 0; i < maxInternEntries+100; i++ {
		name := fmt.Sprintf("name-%d", i)
		if got := in.intern([]byte(name)); got != name {
			t.Fatalf("intern(%q) = %q", name, got)
		}
	}
	if in.size() != maxInternEntries {
		t.Fatalf("interner holds %d entries, cap is %d", in.size(), maxInternEntries)
	}
	// Previously admitted names still resolve to their canonical copy.
	a := in.intern([]byte("name-0"))
	b := in.intern([]byte("name-0"))
	if a != b {
		t.Error("interned name lost its canonical copy")
	}
}

// FuzzBinaryDecode: arbitrary bytes must never panic the binary decoder,
// and a successful decode's record count must match what was emitted.
func FuzzBinaryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ECB1"))
	seed := func(prims []led.Primitive) {
		if buf, err := EncodeBinaryBatch(prims); err == nil {
			f.Add(buf)
		}
	}
	seed(nil)
	seed([]led.Primitive{{Event: "e", Table: "t", Op: "insert", VNo: 1}})
	seed([]led.Primitive{{Event: "e", Table: "t", Op: "insert", VNo: 1}, {Event: "e2", Table: "t2", Op: "delete", VNo: 9}})
	f.Fuzz(func(t *testing.T, data []byte) {
		var in interner
		emitted := 0
		n, err := decodeBinaryBatch(data, &in, func(p led.Primitive) {
			if p.Event == "" || p.Table == "" || p.Op == "" || p.VNo < 0 {
				t.Errorf("decoder emitted invalid primitive %+v", p)
			}
			emitted++
		})
		if err != nil && emitted != 0 {
			t.Errorf("failed decode emitted %d occurrences", emitted)
		}
		if err == nil && n != emitted {
			t.Errorf("decode reported %d records, emitted %d", n, emitted)
		}
	})
}

// FuzzBinaryCodec pins text↔binary equivalence: any notification the text
// parser accepts must survive a binary round trip unchanged, and any
// primitive the binary codec round-trips with text-safe fields must decode
// identically from its text rendering.
func FuzzBinaryCodec(f *testing.F) {
	f.Add("db.u.ev", "db.u.tbl", "insert", 42)
	f.Add("e", "t", "delete", 0)
	f.Add("e|pipe", "t", "update", 1)
	f.Add("", "t", "insert", 1)
	f.Add("e", "t", "insert", -5)
	f.Add(strings.Repeat("x", 5000), "t", "insert", 1)
	f.Fuzz(func(t *testing.T, event, table, op string, vno int) {
		line := fmt.Sprintf("ECA1|%s|%s|%s|%d", event, table, op, vno)
		tev, ttbl, top, tvno, terr := parseNotification(line)

		buf, berr := EncodeBinaryBatch([]led.Primitive{{Event: event, Table: table, Op: op, VNo: vno}})
		if berr != nil {
			if vno >= 0 && len(event) <= maxNotificationLen && len(table) <= maxNotificationLen && len(op) <= maxNotificationLen {
				t.Fatalf("binary encode rejected encodable primitive: %v", berr)
			}
			return
		}
		got, derr := decodeAll(t, buf)
		if derr != nil {
			// The binary structural pass rejects empty fields, matching the
			// text parser.
			if event != "" && table != "" && op != "" {
				t.Fatalf("binary round trip failed: %v", derr)
			}
			return
		}
		if len(got) != 1 {
			t.Fatalf("binary round trip returned %d records", len(got))
		}
		if got[0].Event != event || got[0].Table != table || got[0].Op != op || got[0].VNo != vno {
			t.Fatalf("binary round trip changed the primitive: %+v", got[0])
		}
		// When the text parser accepts the same rendering, both forms must
		// agree exactly.
		if terr == nil {
			if tev != got[0].Event || ttbl != got[0].Table || top != got[0].Op || tvno != got[0].VNo {
				t.Fatalf("text %q decoded (%q,%q,%q,%d); binary decoded (%q,%q,%q,%d)",
					line, tev, ttbl, top, tvno, got[0].Event, got[0].Table, got[0].Op, got[0].VNo)
			}
		}
	})
}
