package agent

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestDeliverBatchMultiLine: one datagram carrying several newline-separated
// notifications — for two independent events plus one malformed line — must
// deliver every well-formed occurrence and count the bad one dropped.
func TestDeliverBatchMultiLine(t *testing.T) {
	r := newChaosRig(t, nil, nil)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("create trigger t2 on audit for insert event addAud as print 'y'"); err != nil {
		t.Fatal(err)
	}
	stk, stkTbl := "sentineldb.sharma.addStk", "sentineldb.sharma.stock"
	aud, audTbl := "sentineldb.sharma.addAud", "sentineldb.sharma.audit"

	if r.agent.ingestPool == nil {
		t.Fatal("ingest pool should be on by default")
	}
	datagram := strings.Join([]string{
		notifMsg(stk, stkTbl, "insert", 1),
		notifMsg(aud, audTbl, "insert", 1),
		"ECA1|not|enough", // malformed: dropped, not fatal to the batch
		notifMsg(stk, stkTbl, "insert", 2),
		"", // blank lines (trailing newline) are ignored
	}, "\n")
	r.agent.DeliverBatch(datagram)
	r.agent.WaitIngest()
	r.agent.WaitActions()

	var got []string
	for i := 0; i < 3; i++ {
		res := waitAction(t, r.agent)
		if res.Err != nil {
			t.Fatalf("action %d: %v", i, res.Err)
		}
		c := res.Occ.Constituents[0]
		got = append(got, fmt.Sprintf("%s:%d", c.Event, c.VNo))
	}
	want := map[string]bool{stk + ":1": true, stk + ":2": true, aud + ":1": true}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected occurrence %s", g)
		}
		delete(want, g)
	}
	for miss := range want {
		t.Errorf("missing occurrence %s", miss)
	}

	st := r.agent.Stats()
	if st.NotificationsReceived != 4 {
		t.Errorf("NotificationsReceived = %d, want 4", st.NotificationsReceived)
	}
	if st.NotificationsDropped != 1 {
		t.Errorf("NotificationsDropped = %d, want 1", st.NotificationsDropped)
	}
}

// TestDeliverBatchSynchronousWhenDisabled: IngestWorkers -1 removes the
// pool; DeliverBatch must behave exactly like repeated Deliver calls.
func TestDeliverBatchSynchronousWhenDisabled(t *testing.T) {
	r := newChaosRig(t, nil, func(c *Config) { c.IngestWorkers = -1 })
	if r.agent.ingestPool != nil {
		t.Fatal("IngestWorkers = -1 must disable the pool")
	}
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	ev, tbl := "sentineldb.sharma.addStk", "sentineldb.sharma.stock"
	r.agent.DeliverBatch(notifMsg(ev, tbl, "insert", 1) + "\n" + notifMsg(ev, tbl, "insert", 2))
	// Synchronous: by return, both occurrences are in the LED.
	for i := 1; i <= 2; i++ {
		res := waitAction(t, r.agent)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if vno := res.Occ.Constituents[0].VNo; vno != i {
			t.Errorf("occurrence %d has vno %d", i, vno)
		}
	}
}

// TestDeliverBatchConcurrentOrdering: many goroutines batch-delivering to
// independent events must neither lose nor duplicate occurrences, and each
// event's vNo stream must stay gap-free (per-shard FIFO routing).
func TestDeliverBatchConcurrentOrdering(t *testing.T) {
	r := newChaosRig(t, nil, func(c *Config) { c.IngestWorkers = 4 })
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t1 on stock for insert event addStk as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("create trigger t2 on audit for insert event addAud as print 'y'"); err != nil {
		t.Fatal(err)
	}
	events := []struct{ ev, tbl string }{
		{"sentineldb.sharma.addStk", "sentineldb.sharma.stock"},
		{"sentineldb.sharma.addAud", "sentineldb.sharma.audit"},
	}
	const perEvent = 50
	var wg sync.WaitGroup
	for _, e := range events {
		wg.Add(1)
		go func(ev, tbl string) {
			defer wg.Done()
			// Two notifications per datagram: the batched wire format.
			for v := 1; v <= perEvent; v += 2 {
				r.agent.DeliverBatch(
					notifMsg(ev, tbl, "insert", v) + "\n" + notifMsg(ev, tbl, "insert", v+1))
			}
		}(e.ev, e.tbl)
	}
	wg.Wait()
	r.agent.WaitIngest()
	r.agent.WaitActions()

	st := r.agent.Stats()
	if want := uint64(len(events) * perEvent); st.NotificationsDelivered != want {
		t.Errorf("NotificationsDelivered = %d, want %d", st.NotificationsDelivered, want)
	}
	if st.GapsDetected != 0 {
		t.Errorf("GapsDetected = %d, want 0 (per-event FIFO should hold)", st.GapsDetected)
	}
	if st.NotificationsDuplicate != 0 {
		t.Errorf("NotificationsDuplicate = %d, want 0", st.NotificationsDuplicate)
	}
}

// TestIngestMetricsExposed: the per-worker queue-depth gauge vector and the
// worker-count gauge must appear on /metrics.
func TestIngestMetricsExposed(t *testing.T) {
	r := newChaosRig(t, nil, func(c *Config) { c.IngestWorkers = 2 })
	var b strings.Builder
	r.agent.Metrics().WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `eca_ingest_queue_depth{worker="0"}`) ||
		!strings.Contains(out, `eca_ingest_queue_depth{worker="1"}`) {
		t.Errorf("per-worker depth gauges missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, "eca_ingest_workers 2") {
		t.Errorf("eca_ingest_workers missing from exposition")
	}
}
