package agent

import (
	"fmt"
	"strings"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// persistentManager implements Figure 8: a dedicated, privileged upstream
// connection that maintains the agent's system tables, persists every
// event and rule as it is created, and restores the whole rulebase when
// the agent starts.
type persistentManager struct {
	up    Upstream
	admin string
	// ensured caches which databases already have system tables.
	ensured map[string]bool
}

// newPersistentManager takes ownership of an already-built upstream (the
// agent hands it a retry-wrapped connection, so transient dial and
// connection failures are absorbed before errors reach here).
func newPersistentManager(up Upstream, admin string) (*persistentManager, error) {
	pm := &persistentManager{up: up, admin: admin, ensured: make(map[string]bool)}
	if err := execIgnoreExists(up, []string{"use master\n" + registryDDL}); err != nil {
		up.Close()
		return nil, fmt.Errorf("agent: creating registry: %w", err)
	}
	return pm, nil
}

func (pm *persistentManager) close() { pm.up.Close() }

// ensureDatabase creates the agent system tables in db (idempotent) and
// registers the database for recovery.
func (pm *persistentManager) ensureDatabase(db string) error {
	if pm.ensured[db] {
		return nil
	}
	for _, ddl := range []string{
		SysTableDDL[TabPrimitiveEvent],
		SysTableDDL[TabCompositeEvent],
		SysTableDDL[TabEcaTrigger],
		SysTableDDL[TabContext],
	} {
		if err := execIgnoreExists(pm.up, []string{"use " + db + "\n" + ddl}); err != nil {
			return fmt.Errorf("agent: creating system tables in %s: %w", db, err)
		}
	}
	rs, err := pm.up.Exec(fmt.Sprintf(
		"use master select dbName from %s where dbName = '%s'", TabRegistry, sqlEscape(db)))
	if err != nil {
		return err
	}
	if countRows(rs) == 0 {
		if _, err := pm.up.Exec(fmt.Sprintf(
			"use master insert %s values ('%s')", TabRegistry, sqlEscape(db))); err != nil {
			return err
		}
	}
	pm.ensured[db] = true
	return nil
}

// savePrimitive records a primitive event (Figure 5 row). vNo starts at 0
// and is bumped by the generated native trigger on every occurrence.
func (pm *persistentManager) savePrimitive(db, user, event, table, op string) error {
	sql := fmt.Sprintf(
		"use %s insert %s values ('%s', '%s', '%s', '%s', '%s', getdate(), 0)",
		db, TabPrimitiveEvent, sqlEscape(db), sqlEscape(user), sqlEscape(event),
		sqlEscape(table), sqlEscape(op))
	_, err := pm.up.Exec(sql)
	return err
}

// saveComposite records a composite event (Figure 6 row).
func (pm *persistentManager) saveComposite(db, user, event, expr string, coupling led.Coupling, ctx led.Context, priority int) error {
	sql := fmt.Sprintf(
		"use %s insert %s values ('%s', '%s', '%s', '%s', getdate(), '%s', '%s', '%d')",
		db, TabCompositeEvent, sqlEscape(db), sqlEscape(user), sqlEscape(event),
		sqlEscape(expr), coupling, ctx, priority)
	_, err := pm.up.Exec(sql)
	return err
}

// saveTrigger records an ECA trigger (Figure 7 row, with the coupling /
// context / priority extension this reproduction adds).
func (pm *persistentManager) saveTrigger(db, user, trigger, proc, event string, coupling led.Coupling, ctx led.Context, priority int) error {
	sql := fmt.Sprintf(
		"use %s insert %s values ('%s', '%s', '%s', '%s', getdate(), '%s', '%s', '%s', %d)",
		db, TabEcaTrigger, sqlEscape(db), sqlEscape(user), sqlEscape(trigger),
		sqlEscape(proc), sqlEscape(event), coupling, ctx, priority)
	_, err := pm.up.Exec(sql)
	return err
}

// deleteTrigger removes an ECA trigger row.
func (pm *persistentManager) deleteTrigger(db, trigger string) error {
	sql := fmt.Sprintf("use %s delete %s where triggerName = '%s'",
		db, TabEcaTrigger, sqlEscape(trigger))
	_, err := pm.up.Exec(sql)
	return err
}

// persistedEvent is one restored event definition.
type persistedEvent struct {
	DB, User, Name string
	Table, Op      string // primitive only
	VNo            int    // primitive only: authoritative occurrence count
	Expr           string // composite only
	At             time.Time
}

// persistedTrigger is one restored rule.
type persistedTrigger struct {
	DB, User, Name string
	Proc, Event    string
	Coupling       led.Coupling
	Context        led.Context
	Priority       int
}

// loadAll restores the agent's state: every registered database's
// primitive events, composite events and triggers, in creation order.
func (pm *persistentManager) loadAll() (prims []persistedEvent, comps []persistedEvent, trigs []persistedTrigger, err error) {
	rs, err := pm.up.Exec("use master select dbName from " + TabRegistry)
	if err != nil {
		return nil, nil, nil, err
	}
	var dbs []string
	forEachRow(rs, func(r sqltypes.Row) {
		dbs = append(dbs, r[0].AsString())
	})
	for _, db := range dbs {
		pm.ensured[db] = true

		rs, err = pm.up.Exec(fmt.Sprintf(
			"use %s select dbName, userName, eventName, tableName, operation, vNo from %s", db, TabPrimitiveEvent))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("agent: restoring primitive events from %s: %w", db, err)
		}
		forEachRow(rs, func(r sqltypes.Row) {
			vno, _ := r[5].AsInt()
			prims = append(prims, persistedEvent{
				DB: r[0].AsString(), User: r[1].AsString(), Name: r[2].AsString(),
				Table: r[3].AsString(), Op: r[4].AsString(), VNo: int(vno),
			})
		})

		rs, err = pm.up.Exec(fmt.Sprintf(
			"use %s select dbName, userName, eventName, eventDescribe from %s", db, TabCompositeEvent))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("agent: restoring composite events from %s: %w", db, err)
		}
		forEachRow(rs, func(r sqltypes.Row) {
			comps = append(comps, persistedEvent{
				DB: r[0].AsString(), User: r[1].AsString(), Name: r[2].AsString(),
				Expr: r[3].AsString(),
			})
		})

		rs, err = pm.up.Exec(fmt.Sprintf(
			"use %s select dbName, userName, triggerName, triggerProc, eventName, coupling, context, priority from %s",
			db, TabEcaTrigger))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("agent: restoring triggers from %s: %w", db, err)
		}
		var rowErr error
		forEachRow(rs, func(r sqltypes.Row) {
			coupling, err := led.ParseCoupling(strings.TrimSpace(r[5].AsString()))
			if err != nil {
				rowErr = err
				return
			}
			ctx, err := led.ParseContext(strings.TrimSpace(r[6].AsString()))
			if err != nil {
				rowErr = err
				return
			}
			prio, _ := r[7].AsInt()
			trigs = append(trigs, persistedTrigger{
				DB: r[0].AsString(), User: r[1].AsString(), Name: r[2].AsString(),
				Proc: r[3].AsString(), Event: r[4].AsString(),
				Coupling: coupling, Context: ctx, Priority: int(prio),
			})
		})
		if rowErr != nil {
			return nil, nil, nil, rowErr
		}
	}
	return prims, comps, trigs, nil
}

// exec forwards arbitrary SQL on the privileged connection (used by the
// agent's DDL installation).
func (pm *persistentManager) exec(sql string) ([]*sqltypes.ResultSet, error) {
	return pm.up.Exec(sql)
}

func sqlEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }

func countRows(rs []*sqltypes.ResultSet) int {
	n := 0
	for _, r := range rs {
		if r.Schema != nil {
			n += len(r.Rows)
		}
	}
	return n
}

func forEachRow(rs []*sqltypes.ResultSet, fn func(sqltypes.Row)) {
	for _, r := range rs {
		if r.Schema == nil {
			continue
		}
		for _, row := range r.Rows {
			fn(row)
		}
	}
}
