package agent

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/activedb/ecaagent/internal/led"
)

// The notification wire carries two self-describing batch forms, told
// apart by their first four bytes:
//
//	text   — "ECA1|event|table|op|vNo" lines joined by '\n' (the format
//	         the generated triggers' syb_sendmsg calls emit, Figure 11);
//	binary — the ECB1 frame below, for senders under the agent's control
//	         (the cluster router, in-process embedders, benchmarks) that
//	         want the decode to cost nothing.
//
// ECB1 batch layout (all integers little-endian, following the WAL /
// checkpoint / replication frame conventions):
//
//	batch  := "ECB1" | count uint16 | record* | crc32(IEEE, all prior bytes) uint32
//	record := eventLen uvarint | event | tableLen uvarint | table
//	        | opLen uvarint | op | vNo uvarint
//
// The CRC closes the frame: a truncated or bit-flipped datagram fails as a
// unit (errCorruptBatch) rather than yielding a prefix of phantom
// occurrences. Text batches degrade per line instead — both behaviors are
// pinned by FuzzBinaryCodec and FuzzDecodeBatch.
const (
	binaryMagic = "ECB1"
	// binaryOverhead is the fixed framing cost: magic, count, CRC.
	binaryOverhead = len(binaryMagic) + 2 + 4
	// maxBinaryBatch bounds records per frame (the count field's range).
	maxBinaryBatch = 1 << 16
)

var (
	errShortBatch   = fmt.Errorf("agent: binary batch shorter than its framing")
	errCorruptBatch = fmt.Errorf("agent: binary batch CRC mismatch")
)

// IsBinaryBatch reports whether a datagram is an ECB1 binary batch (by
// magic; integrity is checked at decode).
func IsBinaryBatch(data []byte) bool {
	return len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic
}

// AppendBinaryBatch appends one ECB1 frame carrying prims to dst and
// returns the extended slice (allocation-free when dst has capacity).
func AppendBinaryBatch(dst []byte, prims []led.Primitive) ([]byte, error) {
	if len(prims) >= maxBinaryBatch {
		return dst, fmt.Errorf("agent: binary batch of %d notifications exceeds the %d frame limit", len(prims), maxBinaryBatch)
	}
	start := len(dst)
	dst = append(dst, binaryMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(prims)))
	for i := range prims {
		p := &prims[i]
		if p.VNo < 0 {
			return dst[:start], fmt.Errorf("agent: negative vNo %d in binary batch", p.VNo)
		}
		for _, f := range [3]string{p.Event, p.Table, p.Op} {
			if len(f) > maxNotificationLen {
				return dst[:start], fmt.Errorf("agent: oversized field (%d bytes) in binary batch", len(f))
			}
			dst = binary.AppendUvarint(dst, uint64(len(f)))
			dst = append(dst, f...)
		}
		dst = binary.AppendUvarint(dst, uint64(p.VNo))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// EncodeBinaryBatch is the allocating convenience form of
// AppendBinaryBatch.
func EncodeBinaryBatch(prims []led.Primitive) ([]byte, error) {
	return AppendBinaryBatch(nil, prims)
}

// DecodeBinaryBatch verifies and decodes one ECB1 frame through the
// process-wide name table, passing each notification to emit in wire
// order — the exported surface routers, embedders and benchmarks use.
func DecodeBinaryBatch(data []byte, emit func(led.Primitive)) (int, error) {
	return decodeBinaryBatch(data, &wireNames, emit)
}

// decodeBinaryBatch verifies and decodes one ECB1 frame, passing each
// notification to emit in wire order. The frame is validated as a whole —
// CRC first, then a structural scan — before the first emit, so a corrupt
// frame yields zero occurrences, never a prefix. With a warmed interner
// the decode performs no allocations.
func decodeBinaryBatch(data []byte, in *interner, emit func(led.Primitive)) (int, error) {
	if len(data) < binaryOverhead {
		return 0, errShortBatch
	}
	body := data[: len(data)-4 : len(data)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, errCorruptBatch
	}
	count := int(binary.LittleEndian.Uint16(body[len(binaryMagic):]))
	records := body[len(binaryMagic)+2:]
	// Structural pass: the CRC guarantees integrity, not well-formedness —
	// a buggy encoder could still frame garbage. Walk every record before
	// emitting any.
	rest := records
	for i := 0; i < count; i++ {
		var err error
		if _, _, _, _, rest, err = scanBinaryRecord(rest); err != nil {
			return 0, err
		}
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("agent: %d trailing bytes after %d binary records", len(rest), count)
	}
	rest = records
	for i := 0; i < count; i++ {
		ev, tbl, op, vno, r, _ := scanBinaryRecord(rest)
		rest = r
		emit(led.Primitive{
			Event: in.intern(ev),
			Table: in.intern(tbl),
			Op:    in.intern(op),
			VNo:   vno,
		})
	}
	return count, nil
}

// scanBinaryRecord decodes one record, returning its raw field bytes (into
// the input, not copied) and the remaining buffer.
func scanBinaryRecord(b []byte) (event, table, op []byte, vno int, rest []byte, err error) {
	field := func() []byte {
		if err != nil {
			return nil
		}
		n, w := binary.Uvarint(b)
		if w <= 0 || n > maxNotificationLen || uint64(len(b)-w) < n {
			err = fmt.Errorf("agent: truncated binary record")
			return nil
		}
		f := b[w : w+int(n)]
		b = b[w+int(n):]
		return f
	}
	event, table, op = field(), field(), field()
	if err != nil {
		return nil, nil, nil, 0, nil, err
	}
	if len(event) == 0 || len(table) == 0 || len(op) == 0 {
		return nil, nil, nil, 0, nil, fmt.Errorf("agent: empty field in binary record")
	}
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(int(^uint(0)>>1)) {
		return nil, nil, nil, 0, nil, fmt.Errorf("agent: bad vNo in binary record")
	}
	return event, table, op, int(n), b[w:], nil
}

// parseNotificationBytes decodes one text notification line without
// allocating: field boundaries are scanned in place and the three name
// fields are resolved through the interner. It is byte-for-byte equivalent
// to parseNotification (which delegates here); the fuzz corpus pins that.
func parseNotificationBytes(msg []byte, in *interner) (event, table, op string, vno int, err error) {
	if len(msg) > maxNotificationLen {
		return "", "", "", 0, fmt.Errorf("agent: oversized notification (%d bytes)", len(msg))
	}
	m := bytes.TrimSpace(msg)
	// Exactly five '|'-separated fields, the first the format tag.
	var seps [4]int
	nsep := 0
	for i, c := range m {
		if c == '|' {
			if nsep == len(seps) {
				return "", "", "", 0, fmt.Errorf("agent: malformed notification %q", msg)
			}
			seps[nsep] = i
			nsep++
		}
	}
	if nsep != len(seps) || string(m[:seps[0]]) != "ECA1" {
		return "", "", "", 0, fmt.Errorf("agent: malformed notification %q", msg)
	}
	evB := m[seps[0]+1 : seps[1]]
	tblB := m[seps[1]+1 : seps[2]]
	opB := m[seps[2]+1 : seps[3]]
	vnoB := m[seps[3]+1:]
	if len(evB) == 0 || len(tblB) == 0 || len(opB) == 0 {
		return "", "", "", 0, fmt.Errorf("agent: empty field in notification %q", msg)
	}
	if len(vnoB) == 0 {
		return "", "", "", 0, fmt.Errorf("agent: missing vNo in notification %q", msg)
	}
	n := 0
	for _, c := range vnoB {
		if c < '0' || c > '9' {
			return "", "", "", 0, fmt.Errorf("agent: bad vNo in notification %q", msg)
		}
		d := int(c - '0')
		if n > (int(^uint(0)>>1)-d)/10 {
			return "", "", "", 0, fmt.Errorf("agent: vNo overflow in notification %q", msg)
		}
		n = n*10 + d
	}
	return in.intern(evB), in.intern(tblB), in.intern(opB), n, nil
}
