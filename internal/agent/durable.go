package agent

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activedb/ecaagent/internal/faults"
	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/storage"
)

// WAL sync policies.
const (
	// WALSyncAlways fsyncs every record before the write is acknowledged —
	// the exactly-once setting: an occurrence is durable before the LED
	// sees it and an action is durable before its completion counts.
	WALSyncAlways = "always"
	// WALSyncGroup batches fsyncs: appenders block until the group
	// syncer's next flush covers their record. Same guarantee as always,
	// amortized latency.
	WALSyncGroup = "group"
	// WALSyncNone never fsyncs the journal. A crash can lose the unsynced
	// tail; recovery degrades to at-least-once via the authoritative
	// shadow-table resync.
	WALSyncNone = "none"
)

// Durability configures crash safety. With a Dir or FS set, the agent
// checkpoints its volatile state (LED operator state, delivery
// watermarks, pending actions, dead letters), journals occurrences and
// action completions between checkpoints, and on startup recovers to an
// exactly-once action stream: checkpoint restore, then WAL replay, then
// a shadow-table gap fill up to the authoritative vNo.
type Durability struct {
	// Dir is the checkpoint directory (created on first use).
	Dir string
	// FS overrides Dir with an explicit filesystem — the crash harness
	// injects a faults.CrashDir here.
	FS storage.FS
	// CheckpointInterval is the period of the background checkpoint loop;
	// 0 disables it (checkpoints then happen at Close and explicit
	// Checkpoint calls).
	CheckpointInterval time.Duration
	// WALSync selects the journal sync policy (default WALSyncAlways).
	WALSync string
	// GroupInterval is the group-commit flush period (default 2ms).
	GroupInterval time.Duration
	// Crash injects named crash points (tests only).
	Crash *faults.CrashSet
	// ShipBarrier, when set, gates occurrence acknowledgement on
	// replication: it is called after the occurrence's WAL record is
	// locally durable (and, via a shipping FS, already handed to the
	// replication stream) and before the occurrence is signalled into the
	// detector. A nil return acknowledges; an error withholds the
	// occurrence — it stays journaled, is counted, and will surface on
	// the standby (or on this node's own restart) instead of here. The
	// cluster layer wires its synchronous-ship barrier in.
	ShipBarrier func() error
}

// durableState is the agent's checkpoint/WAL machinery.
type durableState struct {
	a        *Agent
	fs       storage.FS
	crash    *faults.CrashSet
	syncMode string
	groupInt time.Duration
	barrier  func() error // Durability.ShipBarrier; nil when unreplicated

	mu        sync.Mutex
	syncCond  *sync.Cond              // group-commit waiters
	epoch     uint64                  // guarded by mu
	wal       storage.File            // guarded by mu
	walSeq    uint64                  // records appended (monotonic across rotations); guarded by mu
	walSynced uint64                  // records known durable; guarded by mu
	syncAll   bool                    // group syncer gone; sync inline; guarded by mu
	ledger    map[string]*ledgerEntry // guarded by mu
	ledgerSeq int                     // guarded by mu

	// replaying gates the rule-action path: during WAL replay detections
	// are collected into the ledger instead of executed.
	replaying atomic.Bool

	met      recoveryMetrics
	lastCkpt atomic.Int64 // UnixNano of the last completed checkpoint
}

func newDurableState(a *Agent, cfg Durability) *durableState {
	d := &durableState{
		a:        a,
		fs:       cfg.FS,
		crash:    cfg.Crash,
		syncMode: cfg.WALSync,
		groupInt: cfg.GroupInterval,
		barrier:  cfg.ShipBarrier,
		ledger:   make(map[string]*ledgerEntry),
	}
	if d.fs == nil {
		d.fs = storage.OSDir{Dir: cfg.Dir}
	}
	if d.syncMode == "" {
		d.syncMode = WALSyncAlways
	}
	if d.groupInt <= 0 {
		d.groupInt = 2 * time.Millisecond
	}
	d.syncCond = sync.NewCond(&d.mu)
	d.initRecoveryMetrics(a.met.reg)
	return d
}

func ckptName(epoch uint64) string { return fmt.Sprintf("ckpt-%d", epoch) }
func walName(epoch uint64) string  { return fmt.Sprintf("wal-%d", epoch) }

// parseGenName extracts the epoch from a ckpt-N / wal-N file name.
func parseGenName(name string) (prefix string, epoch uint64, ok bool) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || strings.HasSuffix(name, ".tmp") {
		return "", 0, false
	}
	n, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return name[:i], n, true
}

// loadLatest scans the directory and decodes the newest valid
// checkpoint. It returns the decoded data (nil when no epoch is usable),
// that checkpoint's epoch, and the highest epoch number present in any
// file name — the floor for the next generation.
func (d *durableState) loadLatest() (*checkpointData, uint64, uint64) {
	names, err := d.fs.List()
	if err != nil {
		d.a.cfg.Logf("agent: checkpoint scan: %v", err)
		return nil, 0, 0
	}
	var maxEpoch uint64
	var ckptEpochs []uint64
	for _, name := range names {
		prefix, e, ok := parseGenName(name)
		if !ok {
			continue
		}
		if e > maxEpoch {
			maxEpoch = e
		}
		if prefix == "ckpt" {
			ckptEpochs = append(ckptEpochs, e)
		}
	}
	sort.Slice(ckptEpochs, func(i, j int) bool { return ckptEpochs[i] > ckptEpochs[j] })
	for _, e := range ckptEpochs {
		data, err := d.fs.ReadFile(ckptName(e))
		if err != nil {
			d.a.cfg.Logf("agent: reading checkpoint %d: %v", e, err)
			continue
		}
		c, embedded, err := decodeCheckpoint(data)
		if err != nil || embedded != e {
			if err == nil {
				err = fmt.Errorf("embedded epoch %d under name %s", embedded, ckptName(e))
			}
			d.a.cfg.Logf("agent: checkpoint %d invalid, trying older: %v", e, err)
			continue
		}
		return c, e, maxEpoch
	}
	return nil, 0, maxEpoch
}

// readWAL loads and parses one epoch's journal. A missing file is an
// empty journal (the crash may have hit between checkpoint publish and
// journal creation).
func (d *durableState) readWAL(epoch uint64) []walRecord {
	data, err := d.fs.ReadFile(walName(epoch))
	if err != nil {
		return nil
	}
	embedded, recs, torn, err := parseWAL(data)
	if err != nil {
		d.a.cfg.Logf("agent: journal %d unreadable: %v", epoch, err)
		return nil
	}
	if embedded != epoch && len(recs) > 0 {
		d.a.cfg.Logf("agent: journal %s carries epoch %d; ignoring", walName(epoch), embedded)
		return nil
	}
	if torn {
		d.a.cfg.Logf("agent: journal %d has a torn tail after %d record(s); shadow-table resync covers the rest", epoch, len(recs))
	}
	return recs
}

// appendLocked frames and writes one record to the current journal,
// returning its monotonic sequence number. In always mode the record is
// fsynced before return; group-mode callers wait via waitSynced outside
// d.mu. Caller holds d.mu.
func (d *durableState) appendLocked(r walRecord) uint64 {
	if d.wal == nil {
		return d.walSeq
	}
	frame := encodeWALRecord(r)
	if _, err := d.wal.Write(frame); err != nil {
		d.a.cfg.Logf("agent: journal append: %v", err)
		return d.walSeq
	}
	d.walSeq++
	d.met.walRecords.Inc()
	d.met.walBytes.Add(uint64(len(frame)))
	if d.syncMode == WALSyncAlways || d.syncAll {
		d.syncLocked()
	}
	return d.walSeq
}

// syncLocked flushes the journal up to the last appended record and
// releases group-commit waiters. Caller holds d.mu.
func (d *durableState) syncLocked() {
	if d.wal == nil || d.walSynced >= d.walSeq {
		return
	}
	if err := d.wal.Sync(); err != nil {
		d.a.cfg.Logf("agent: journal sync: %v", err)
		return
	}
	d.walSynced = d.walSeq
	d.met.walSyncs.Inc()
	d.syncCond.Broadcast()
}

// waitSynced blocks until the journal is durable through seq (group
// mode). If the group syncer has shut down, it syncs inline.
func (d *durableState) waitSynced(seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.walSynced < seq && !d.syncAll {
		d.syncCond.Wait()
	}
	if d.walSynced < seq {
		d.syncLocked()
	}
}

// appendOcc journals one accepted occurrence, honoring the sync policy,
// before the caller signals it into the LED. Called with a.rec.mu held,
// which serializes occurrence records in delivery order. The lock is
// released by defer because the append can unwind with a simulated-crash
// panic (the cluster tee's repl.* crash points fire inside the write
// path) and a dead incarnation must not leave d.mu held against its own
// still-draining action goroutines.
func (d *durableState) appendOcc(p led.Primitive) {
	var seq uint64
	func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		seq = d.appendLocked(walRecord{
			kind: walOccKind, event: p.Event, table: p.Table, op: p.Op, vno: p.VNo, at: p.At,
		})
	}()
	if d.syncMode == WALSyncGroup {
		d.waitSynced(seq)
	}
}

// groupSyncLoop is the group-commit flusher. On shutdown it flushes once
// more and flips appends to inline syncing so drain-phase completions
// stay durable.
func (d *durableState) groupSyncLoop() {
	defer d.a.bgWG.Done()
	//ecavet:allow nowallclock group-commit flush cadence is operational, not replayed
	t := time.NewTicker(d.groupInt)
	defer t.Stop()
	for {
		select {
		case <-d.a.stopCh:
			d.mu.Lock()
			d.syncLocked()
			d.syncAll = true
			d.syncCond.Broadcast()
			d.mu.Unlock()
			return
		case <-t.C:
			d.mu.Lock()
			d.syncLocked()
			d.mu.Unlock()
		}
	}
}

// recovered reports whether startup recovery completed and the journal
// is open — the precondition for cutting further checkpoints.
func (d *durableState) recovered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal != nil
}

// closeWAL flushes and closes the journal (final step of Close).
func (d *durableState) closeWAL() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return
	}
	d.syncLocked()
	if err := d.wal.Close(); err != nil {
		d.a.cfg.Logf("agent: closing journal: %v", err)
	}
	d.wal = nil
	d.syncAll = true
	d.syncCond.Broadcast()
}

// Checkpoint cuts a new durable generation: it freezes ingest and the
// detector, writes epoch+1's checkpoint (write .tmp → fsync → rename →
// dir fsync), rotates the journal, prunes the previous generation and
// drops done ledger entries. After a successful cut the previous
// checkpoint and journal are no longer needed for recovery.
func (a *Agent) Checkpoint() error {
	d := a.dur
	if d == nil {
		return nil
	}
	start := a.clock.Now()
	d.crash.Hit("ckpt.begin")
	a.rec.mu.Lock()
	defer a.rec.mu.Unlock()
	wms := make(map[string]ckptWatermark, len(a.rec.seen))
	for ev, w := range a.rec.seen {
		wms[ev] = ckptWatermark{Event: ev, Table: w.table, Op: w.op, Last: w.last}
	}
	snap := a.led.SnapshotState()

	d.mu.Lock()
	defer d.mu.Unlock()
	c := &checkpointData{Watermarks: wms, LED: snap}
	for _, e := range d.pendingLocked() {
		c.Pending = append(c.Pending, ckptPending{Key: e.key, Rule: e.rule, Occ: led.OccToState(e.occ)})
	}
	for _, r := range a.dlq.snapshot() {
		cd := ckptDead{Rule: r.Rule, Event: r.Event, Messages: r.Messages}
		if r.Occ != nil {
			cd.HasOcc = true
			cd.Occ = led.OccToState(r.Occ)
		}
		if r.Err != nil {
			cd.Err = r.Err.Error()
		}
		c.DLQ = append(c.DLQ, cd)
	}

	newEpoch := d.epoch + 1
	img, err := encodeCheckpoint(newEpoch, c)
	if err != nil {
		return fmt.Errorf("agent: encoding checkpoint: %w", err)
	}
	tmp := ckptName(newEpoch) + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("agent: checkpoint: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		return errors.Join(fmt.Errorf("agent: checkpoint: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("agent: checkpoint: %w", err), f.Close())
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("agent: checkpoint: %w", err)
	}
	d.crash.Hit("ckpt.beforeRename")
	if err := d.fs.Rename(tmp, ckptName(newEpoch)); err != nil {
		return fmt.Errorf("agent: publishing checkpoint: %w", err)
	}
	if err := d.fs.SyncDir(); err != nil {
		return fmt.Errorf("agent: publishing checkpoint: %w", err)
	}
	d.crash.Hit("ckpt.afterRename")

	// Rotate the journal. Synced-through state carries over: everything in
	// the old journal is superseded by the checkpoint just published.
	d.syncLocked()
	if d.wal != nil {
		if err := d.wal.Close(); err != nil {
			d.a.cfg.Logf("agent: closing journal: %v", err)
		}
	}
	d.wal = nil
	wf, err := d.fs.Create(walName(newEpoch))
	if err != nil {
		return fmt.Errorf("agent: opening journal: %w", err)
	}
	if _, err := wf.Write(walHeader(newEpoch)); err != nil {
		return errors.Join(fmt.Errorf("agent: opening journal: %w", err), wf.Close())
	}
	if d.syncMode != WALSyncNone {
		if err := wf.Sync(); err != nil {
			return errors.Join(fmt.Errorf("agent: opening journal: %w", err), wf.Close())
		}
	}
	d.wal = wf

	// Prune every older generation and stray tmp files.
	if names, err := d.fs.List(); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, ".tmp") {
				_ = d.fs.Remove(name)
				continue
			}
			prefix, e, ok := parseGenName(name)
			if ok && (prefix == "ckpt" || prefix == "wal") && e < newEpoch {
				_ = d.fs.Remove(name)
			}
		}
		//ecavet:allow syncerr pruning is best-effort; the new generation is already durable
		_ = d.fs.SyncDir()
	}
	for k, e := range d.ledger {
		if e.done {
			delete(d.ledger, k)
		}
	}
	d.epoch = newEpoch
	d.met.checkpoints.Inc()
	d.met.ckptBytes.Set(int64(len(img)))
	d.met.ckptSec.Observe(a.clock.Now().Sub(start).Seconds())
	d.lastCkpt.Store(a.clock.Now().UnixNano())
	return nil
}

// checkpointLoop cuts checkpoints on a fixed period.
func (a *Agent) checkpointLoop(interval time.Duration) {
	defer a.bgWG.Done()
	defer faults.Recover()
	//ecavet:allow nowallclock checkpoint cadence is operational, not replayed
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case <-t.C:
			if err := a.Checkpoint(); err != nil {
				a.cfg.Logf("agent: periodic checkpoint: %v", err)
			}
		}
	}
}

// recoverDurable rebuilds the crash-time state. recover() has already
// reconstructed definitions from the system tables and seeded the
// watermarks at the authoritative vNo; this routine rewinds them to the
// checkpoint's cut, replays the journal forward, cuts a fresh
// generation, resumes the provably unfinished actions exactly once, and
// finally gap-fills from the shadow tables anything the journal could
// not prove delivered.
func (a *Agent) recoverDurable() error {
	d := a.dur
	start := a.clock.Now()
	ck, ckEpoch, maxEpoch := d.loadLatest()
	d.mu.Lock()
	d.epoch = maxEpoch
	d.mu.Unlock()
	if ck != nil {
		if err := a.led.RestoreState(ck.LED); err != nil {
			// RestoreState validates before applying, so the detector is
			// untouched; authoritative watermarks stand and this becomes a
			// cold start.
			a.cfg.Logf("agent: checkpoint %d does not match the rebuilt event graph (%v); cold start", ckEpoch, err)
		} else {
			a.rec.mu.Lock()
			for ev, w := range a.rec.seen {
				if cw, ok := ck.Watermarks[ev]; ok {
					w.last = cw.Last
				} else {
					// Event created after the cut: everything it produced is
					// in the journal or the shadow tables.
					w.last = 0
				}
			}
			a.rec.mu.Unlock()
			for _, p := range ck.Pending {
				d.notePending(p.Rule, p.Key, led.OccFromState(p.Occ))
			}
			for _, f := range ck.LED.Outstanding {
				occ := led.OccFromState(f.Occ)
				d.notePending(f.Rule, actionKey(f.Rule, occ), occ)
			}
			for _, r := range ck.DLQ {
				res := ActionResult{Rule: r.Rule, Event: r.Event, Messages: r.Messages}
				if r.HasOcc {
					res.Occ = led.OccFromState(r.Occ)
				}
				if r.Err != "" {
					res.Err = errors.New(r.Err)
				}
				a.dlq.push(res)
			}

			d.replaying.Store(true)
			for _, r := range d.readWAL(ckEpoch) {
				switch r.kind {
				case walOccKind:
					// Logical timers due before this occurrence fire first,
					// reproducing the live interleaving of periodic ticks,
					// PLUS emissions and temporal events with the stream.
					a.led.FireTimersUpTo(r.at)
					dup := false
					a.rec.mu.Lock()
					if w, ok := a.rec.seen[r.event]; ok {
						if r.vno <= w.last {
							dup = true
						} else {
							w.last = r.vno
						}
					}
					a.rec.mu.Unlock()
					if !dup {
						a.signal(led.Primitive{Event: r.event, Table: r.table, Op: r.op, VNo: r.vno, At: r.at})
						d.met.replayed.Inc()
					}
				case walDoneKind:
					d.markDoneLocal(r.key)
					d.met.replayed.Inc()
				}
			}
			a.led.Wait() // detached replay detections must land in the ledger
			d.replaying.Store(false)
		}
	}

	// Cut a fresh generation before any new journal traffic: the restored
	// and replayed state (including still-pending actions) becomes the new
	// checkpoint, and the new journal starts empty.
	if err := a.Checkpoint(); err != nil {
		return fmt.Errorf("agent: recovery checkpoint: %w", err)
	}
	a.resumePending()
	// Gap fill: anything the server committed that neither checkpoint nor
	// journal saw (unsynced tail, crash before the WAL append) is replayed
	// from the shadow tables up to the authoritative vNo.
	if err := a.Resync(); err != nil {
		a.cfg.Logf("agent: recovery resync: %v", err)
	}
	d.met.recoverySec.Observe(a.clock.Now().Sub(start).Seconds())
	return nil
}

// resumePending launches every ledger entry the journal could not prove
// done, in original detection order, through the normal FIFO action
// path.
func (a *Agent) resumePending() {
	d := a.dur
	d.mu.Lock()
	entries := d.pendingLocked()
	live := entries[:0]
	for _, e := range entries {
		if !e.launched {
			e.launched = true
			live = append(live, e)
		}
	}
	d.mu.Unlock()
	for _, e := range live {
		a.mu.Lock()
		info := a.triggers[e.rule]
		a.mu.Unlock()
		if info == nil {
			a.cfg.Logf("agent: dropping recovered action for vanished trigger %s", e.rule)
			d.markDone(e.key)
			continue
		}
		param := ActionParam{StoreProc: info.Proc, EventName: info.Event, Context: info.Context, DB: info.DB}
		d.met.resumed.Inc()
		a.actionWG.Add(1)
		a.actionMu.Lock()
		prev := a.actionTail
		done := make(chan struct{})
		a.actionTail = done
		a.actionMu.Unlock()
		go a.runAction(e.rule, param, e.occ, a.clock.Now(), prev, done, e.key)
	}
}

// durableSignal journals a tracked occurrence (stamping its detection
// time first, so replay reproduces identical occurrences and action
// keys) and then signals it. With a ShipBarrier wired, the signal — and
// therefore any action launch and the Forward acknowledgement — waits
// for the standby's durable ack first: everything downstream of this
// point is guaranteed recoverable from the replica, which is the RPO=0
// contract the sync chaos suite asserts. A failed barrier withholds the
// occurrence: it is already journaled locally (and usually already on
// the standby, just unconfirmed), so replay or the shadow-table resync
// will surface it exactly once on whichever node recovers. Callers hold
// a.rec.mu.
func (a *Agent) durableSignal(p led.Primitive) {
	if d := a.dur; d != nil {
		if p.At.IsZero() {
			p.At = a.led.Now()
		}
		d.crash.Hit("ingest.preWAL")
		d.appendOcc(p)
		d.crash.Hit("ingest.postWAL")
		if d.barrier != nil {
			if err := d.barrier(); err != nil {
				d.met.withheld.Inc()
				a.cfg.Logf("agent: occurrence %s vno %d withheld: replication barrier: %v", p.Event, p.VNo, err)
				return
			}
		}
	}
	a.signal(p)
}

// waitReady blocks callers of the delivery surface until recovery has
// seeded watermarks and replayed the journal — before that, a live
// notification would be judged against uninitialized state.
func (a *Agent) waitReady() {
	select {
	case <-a.ready:
	case <-a.stopCh:
	}
}
