package agent

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activedb/ecaagent/internal/led"
)

// TestUpdateEventBothContexts: an UPDATE-operation event records both
// pseudo-tables, and the action can read old and new images via
// stock.deleted and stock.inserted.
func TestUpdateEventBothContexts(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("insert stock values ('IBM', 100)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec(`create trigger t_upd on stock for update
event priceChange
as
print 'old image:'
select symbol, price from stock.deleted
print 'new image:'
select symbol, price from stock.inserted`); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("update stock set price = 120 where symbol = 'IBM'"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, r.agent)
	if res.Err != nil {
		t.Fatalf("action: %v", res.Err)
	}
	var prices []float64
	for _, rs := range res.Results {
		if rs.Schema != nil && len(rs.Rows) == 1 {
			prices = append(prices, rs.Rows[0][1].Float())
		}
	}
	if len(prices) != 2 || prices[0] != 100 || prices[1] != 120 {
		t.Errorf("old/new prices: %v", prices)
	}
}

// TestNativeTriggerPassThrough: a plain CREATE TRIGGER (no EVENT clause)
// is not intercepted; it reaches the server and behaves natively,
// including the silent-overwrite limitation.
func TestNativeTriggerPassThrough(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger native1 on stock for insert as print 'native one'"); err != nil {
		t.Fatal(err)
	}
	if len(r.agent.Triggers()) != 0 {
		t.Fatal("native trigger registered as ECA trigger")
	}
	results, err := cs.Exec("insert stock values ('X', 1)")
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, rs := range results {
		msgs = append(msgs, rs.Messages...)
	}
	if len(msgs) != 1 || msgs[0] != "native one" {
		t.Errorf("native trigger output: %v", msgs)
	}
	// Silent overwrite passes through too.
	if _, err := cs.Exec("create trigger native2 on stock for insert as print 'native two'"); err != nil {
		t.Fatal(err)
	}
	results, _ = cs.Exec("insert stock values ('Y', 2)")
	msgs = nil
	for _, rs := range results {
		msgs = append(msgs, rs.Messages...)
	}
	if len(msgs) != 1 || msgs[0] != "native two" {
		t.Errorf("overwrite semantics through agent: %v", msgs)
	}
	// Dropping the native trigger also passes through.
	if _, err := cs.Exec("drop trigger native2"); err != nil {
		t.Fatal(err)
	}
}

// TestActionErrorReported: a failing action procedure is reported on
// ActionDone with its error, and the agent keeps running.
func TestActionErrorReported(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec(`create trigger t_bad on stock for insert event addStk
as select * from table_that_does_not_exist`); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, r.agent)
	if res.Err == nil {
		t.Fatal("failing action reported no error")
	}
	// The agent still processes subsequent events.
	if _, err := cs.Exec("insert stock values ('Y', 2)"); err != nil {
		t.Fatal(err)
	}
	res = waitAction(t, r.agent)
	if res.Err == nil {
		t.Error("second occurrence lost")
	}
}

// TestContextRefreshAcrossFirings: each composite firing replaces the
// previous occurrence's sysContext rows, so the action always sees the
// current occurrence only.
func TestContextRefreshAcrossFirings(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	setup := []string{
		"create trigger t_add on stock for insert event addStk as print 'a'",
		"create trigger t_del on stock for delete event delStk as print 'd'",
		`create trigger t_and event both = delStk ^ addStk RECENT
as select symbol from stock.inserted`,
	}
	for _, sql := range setup {
		if _, err := cs.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	insertedSymbol := func(res ActionResult) string {
		for _, rs := range res.Results {
			if rs.Schema != nil && len(rs.Rows) == 1 {
				return rs.Rows[0][0].Str()
			}
		}
		return fmt.Sprintf("<%d result sets>", len(res.Results))
	}
	fire := func(sym string) ActionResult {
		t.Helper()
		if _, err := cs.Exec(fmt.Sprintf("insert stock values ('%s', 1)", sym)); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Exec(fmt.Sprintf("delete stock where symbol = '%s'", sym)); err != nil {
			t.Fatal(err)
		}
		var and ActionResult
		for i := 0; i < 3; i++ { // t_add, t_del, t_and
			res := waitAction(t, r.agent)
			if strings.HasSuffix(res.Rule, "t_and") {
				and = res
			}
		}
		return and
	}
	if got := insertedSymbol(fire("AAA")); got != "AAA" {
		t.Errorf("first firing saw %q", got)
	}
	if got := insertedSymbol(fire("BBB")); got != "BBB" {
		t.Errorf("second firing saw %q (stale context?)", got)
	}
}

// TestTwoUsersIndependentNamespaces: the §5.1 naming scheme keeps two
// users' same-named triggers and events separate.
func TestTwoUsersIndependentNamespaces(t *testing.T) {
	r := newRig(t)
	// A second user with their own table.
	seed := r.eng.NewSession("li")
	if _, err := seed.ExecScript("use sentineldb create table orders (id int null)"); err != nil {
		t.Fatal(err)
	}
	csSharma := r.session(t, "sharma", "sentineldb")
	csLi := r.session(t, "li", "sentineldb")

	if _, err := csSharma.Exec("create trigger watch on stock for insert event ev as print 'sharma rule'"); err != nil {
		t.Fatal(err)
	}
	if _, err := csLi.Exec("create trigger watch on orders for insert event ev as print 'li rule'"); err != nil {
		t.Fatalf("same-named trigger for another user rejected: %v", err)
	}
	events := r.agent.Events()
	if len(events) != 2 || events[0] != "sentineldb.li.ev" || events[1] != "sentineldb.sharma.ev" {
		t.Fatalf("events: %v", events)
	}
	// Each user's rule sees only their own event.
	if _, err := csLi.Exec("insert orders values (1)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, r.agent)
	if res.Rule != "sentineldb.li.watch" || res.Messages[0] != "li rule" {
		t.Errorf("wrong rule fired: %+v", res)
	}
	// And each drops only their own.
	if _, err := csLi.Exec("drop trigger watch"); err != nil {
		t.Fatal(err)
	}
	trigs := r.agent.Triggers()
	if len(trigs) != 1 || trigs[0] != "sentineldb.sharma.watch" {
		t.Errorf("triggers after li's drop: %v", trigs)
	}
}

// TestConcurrentRuleCreation: concurrent ECA definitions from different
// sessions do not corrupt the registries.
func TestConcurrentRuleCreation(t *testing.T) {
	r := newRig(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, err := r.agent.NewClientSession("sharma", "sentineldb")
			if err != nil {
				errs <- err
				return
			}
			defer cs.Close()
			var sql string
			if i == 0 {
				sql = "create trigger t0 on stock for insert event ev as print 'x'"
			} else {
				// Triggers on the (possibly not yet existing) event race;
				// failures for the not-yet-defined event are acceptable,
				// corruption is not.
				sql = fmt.Sprintf("create trigger t%d event ev as print 'x'", i)
			}
			if _, err := cs.Exec(sql); err != nil &&
				!strings.Contains(err.Error(), "not defined") {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Registry consistency: every registered trigger is on the event.
	for _, tr := range r.agent.Triggers() {
		if !strings.HasPrefix(tr, "sentineldb.sharma.t") {
			t.Errorf("unexpected trigger %s", tr)
		}
	}
	if len(r.agent.Events()) != 1 {
		t.Errorf("events: %v", r.agent.Events())
	}
}

// TestDetachedCouplingEndToEnd: a DETACHED rule runs off the detection
// path but still completes.
func TestDetachedCouplingEndToEnd(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event ev DETACHED as print 'detached ran'"); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	res := waitAction(t, r.agent)
	if len(res.Messages) != 1 || res.Messages[0] != "detached ran" {
		t.Errorf("detached action: %+v", res)
	}
}

// TestChronicleCompositeEndToEnd: CHRONICLE pairs initiators FIFO through
// the whole stack, with the context materializing the paired occurrence.
func TestChronicleCompositeEndToEnd(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	for _, sql := range []string{
		"create trigger t_add on stock for insert event addStk as print 'a'",
		"create trigger t_del on stock for delete event delStk as print 'd'",
		`create trigger t_seq event seqEv = addStk ; delStk CHRONICLE
as select symbol from stock.inserted`,
	} {
		if _, err := cs.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	// Two inserts, then two deletes: CHRONICLE pairs 1st insert with 1st
	// delete, 2nd with 2nd.
	if _, err := cs.Exec("insert stock values ('FIRST', 1) insert stock values ('SECOND', 2)"); err != nil {
		t.Fatal(err)
	}
	// Drain the two t_add firings.
	for i := 0; i < 2; i++ {
		waitAction(t, r.agent)
	}
	var symbols []string
	for _, victim := range []string{"SECOND", "FIRST"} { // delete order reversed
		if _, err := cs.Exec(fmt.Sprintf("delete stock where symbol = '%s'", victim)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ { // t_del + t_seq
			res := waitAction(t, r.agent)
			if strings.HasSuffix(res.Rule, "t_seq") {
				for _, rs := range res.Results {
					if rs.Schema != nil && len(rs.Rows) == 1 {
						symbols = append(symbols, rs.Rows[0][0].Str())
					}
				}
			}
		}
	}
	// FIFO: first composite pairs the FIRST insert, second pairs SECOND.
	if fmt.Sprint(symbols) != "[FIRST SECOND]" {
		t.Errorf("chronicle pairing: %v", symbols)
	}
}

// TestCumulativeCompositeEndToEnd: CUMULATIVE delivers every buffered
// constituent in one action.
func TestCumulativeCompositeEndToEnd(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	for _, sql := range []string{
		"create trigger t_add on stock for insert event addStk as print 'a'",
		"create trigger t_del on stock for delete event delStk as print 'd'",
		`create trigger t_cum event cum = addStk ^ delStk CUMULATIVE
as select symbol from stock.inserted`,
	} {
		if _, err := cs.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.Exec("insert stock values ('A', 1) insert stock values ('B', 2) insert stock values ('C', 3)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		waitAction(t, r.agent)
	}
	if _, err := cs.Exec("delete stock where symbol = 'A'"); err != nil {
		t.Fatal(err)
	}
	var rows int
	for i := 0; i < 2; i++ { // t_del + t_cum
		res := waitAction(t, r.agent)
		if strings.HasSuffix(res.Rule, "t_cum") {
			for _, rs := range res.Results {
				if rs.Schema != nil {
					rows = len(rs.Rows)
				}
			}
		}
	}
	if rows != 3 {
		t.Errorf("cumulative context rows = %d, want all 3 inserts", rows)
	}
}

// TestRuleOnCompositeOfComposite: event reuse composes (pair, then
// pair ; e3).
func TestRuleOnCompositeOfComposite(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	seed := r.eng.NewSession("sharma")
	if _, err := seed.ExecScript("use sentineldb create table marks (n int null)"); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"create trigger t_add on stock for insert event addStk as print 'a'",
		"create trigger t_del on stock for delete event delStk as print 'd'",
		"create trigger t_mark on marks for insert event marked as print 'm'",
		"create trigger t_pair event pair = addStk ^ delStk as print 'pair'",
		"create trigger t_tri event tri = pair ; marked as print 'tri'",
	} {
		if _, err := cs.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.Exec("insert stock values ('X', 1) delete stock where symbol = 'X' insert marks values (1)"); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"t_add": false, "t_del": false, "t_mark": false, "t_pair": false, "t_tri": false}
	for i := 0; i < len(want); i++ {
		res := waitAction(t, r.agent)
		short := res.Rule[strings.LastIndex(res.Rule, ".")+1:]
		want[short] = true
	}
	for rule, fired := range want {
		if !fired {
			t.Errorf("rule %s never fired", rule)
		}
	}
}

// TestAgentCloseIsClean: Close with in-flight actions does not panic or
// deadlock.
func TestAgentCloseIsClean(t *testing.T) {
	r := newRig(t)
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event ev as select count(*) from stock"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		r.agent.WaitActions()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("WaitActions hung")
	}
}

// TestLEDExposure: the embedded LED is reachable for advanced callers.
func TestLEDExposure(t *testing.T) {
	r := newRig(t)
	if r.agent.LED() == nil {
		t.Fatal("LED() nil")
	}
	cs := r.session(t, "sharma", "sentineldb")
	if _, err := cs.Exec("create trigger t on stock for insert event ev as print 'x'"); err != nil {
		t.Fatal(err)
	}
	if !r.agent.LED().HasEvent("sentineldb.sharma.ev") {
		t.Error("event not in LED")
	}
	// Go-level rules can piggyback on SQL-defined events.
	fired := make(chan struct{}, 1)
	err := r.agent.LED().AddRule(&led.Rule{
		Name: "go-level", Event: "sentineldb.sharma.ev", Context: led.Recent,
		Action: func(*led.Occ) {
			select {
			case fired <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Exec("insert stock values ('X', 1)"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("go-level rule never fired")
	}
	waitAction(t, r.agent) // drain the SQL rule's report
}
