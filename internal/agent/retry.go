package agent

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"github.com/activedb/ecaagent/internal/sqltypes"
	"github.com/activedb/ecaagent/internal/tds"
)

// RetryConfig tunes the resilient decorator wrapped around the agent's own
// upstream connections (Persistent Manager, Action Handler, recovery
// sweep). Client pass-through connections are NOT retried: replaying a
// client's batch without the client's knowledge would break transaction
// transparency.
type RetryConfig struct {
	// MaxAttempts bounds tries per Exec, including the first (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff; it doubles per retry (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// AttemptTimeout aborts a single attempt that hangs by closing its
	// connection (0 disables the deadline).
	AttemptTimeout time.Duration
	// Seed drives the backoff jitter deterministically (default 1).
	Seed int64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 25 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// errAttemptTimeout marks an attempt aborted by the per-attempt deadline.
var errAttemptTimeout = errors.New("agent: upstream attempt deadline exceeded")

// retryableError classifies an Exec failure: connection-level failures are
// retryable on a fresh connection; an answer from the server — even an
// error answer — is terminal, because the server already processed the
// batch and retrying would execute the action twice.
func retryableError(err error) bool {
	if err == nil {
		return false
	}
	var se *tds.ServerError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, errAttemptTimeout) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// retryUpstream decorates an Upstream with reconnect-on-failure,
// exponential backoff with jitter, per-attempt deadlines and
// retryable-vs-terminal error classification — the piece that keeps one
// broken Open Client connection from disabling every rule action.
type retryUpstream struct {
	dial        func() (Upstream, error)
	cfg         RetryConfig
	onRetry     func()
	onReconnect func()
	logf        func(format string, args ...any)

	// execMu serializes Exec calls (each handler owns one logical
	// connection, as in the paper's one-connection-per-module design).
	execMu sync.Mutex
	rng    *rand.Rand

	// connMu guards the live connection separately from execMu so Close
	// can reach a connection whose Exec is blocked.
	connMu sync.Mutex
	up     Upstream
	dialed bool
	closed bool
}

func newRetryUpstream(dial func() (Upstream, error), cfg RetryConfig, logf func(string, ...any), onRetry, onReconnect func()) *retryUpstream {
	cfg = cfg.withDefaults()
	return &retryUpstream{
		dial:        dial,
		cfg:         cfg,
		onRetry:     onRetry,
		onReconnect: onReconnect,
		logf:        logf,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
}

// conn returns the live connection, dialing a fresh one if needed.
func (r *retryUpstream) conn() (Upstream, error) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.closed {
		return nil, net.ErrClosed
	}
	if r.up != nil {
		return r.up, nil
	}
	up, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.up = up
	if r.dialed {
		if r.onReconnect != nil {
			r.onReconnect()
		}
		if r.logf != nil {
			r.logf("agent: upstream reconnected")
		}
	}
	r.dialed = true
	return up, nil
}

// dropConn discards a connection observed failing (if still current).
func (r *retryUpstream) dropConn(up Upstream) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.up == up && up != nil {
		up.Close()
		r.up = nil
	}
}

// Exec runs one batch with retries. Terminal errors (the server answered)
// return immediately; connection failures reconnect and retry with
// exponential backoff until MaxAttempts is exhausted.
func (r *retryUpstream) Exec(sql string) ([]*sqltypes.ResultSet, error) {
	r.execMu.Lock()
	defer r.execMu.Unlock()
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if r.onRetry != nil {
				r.onRetry()
			}
			//ecavet:allow nowallclock reconnect backoff is operational wall-clock
			time.Sleep(r.backoff(attempt))
		}
		up, err := r.conn()
		if err != nil {
			if errors.Is(err, net.ErrClosed) && r.isClosed() {
				return nil, err
			}
			lastErr = err
			continue
		}
		results, err := r.execAttempt(up, sql)
		if err == nil || !retryableError(err) {
			return results, err
		}
		lastErr = err
		r.dropConn(up)
		if r.isClosed() {
			break
		}
	}
	return nil, fmt.Errorf("agent: upstream failed after %d attempts: %w", r.cfg.MaxAttempts, lastErr)
}

// execAttempt runs one try, bounded by the per-attempt deadline. A timed
// out attempt's connection is closed to unblock the in-flight call — the
// only abort an Open Client style blocking API offers.
func (r *retryUpstream) execAttempt(up Upstream, sql string) ([]*sqltypes.ResultSet, error) {
	if r.cfg.AttemptTimeout <= 0 {
		return up.Exec(sql)
	}
	type outcome struct {
		rs  []*sqltypes.ResultSet
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rs, err := up.Exec(sql)
		done <- outcome{rs, err}
	}()
	//ecavet:allow nowallclock per-attempt upstream deadline is operational wall-clock
	timer := time.NewTimer(r.cfg.AttemptTimeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.rs, out.err
	case <-timer.C:
		up.Close() // unblocks the hung Exec
		<-done     // wait so no goroutine still touches the dead conn
		return nil, fmt.Errorf("%w (%v)", errAttemptTimeout, r.cfg.AttemptTimeout)
	}
}

// backoff returns the jittered exponential delay before the given attempt
// (attempt ≥ 1): the n-th retry waits in [d/2, d] with d = base·2^(n-1)
// capped at MaxDelay.
func (r *retryUpstream) backoff(attempt int) time.Duration {
	d := r.cfg.BaseDelay << uint(attempt-1)
	if d <= 0 || d > r.cfg.MaxDelay {
		d = r.cfg.MaxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(r.rng.Int63n(int64(half)+1))
}

func (r *retryUpstream) isClosed() bool {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	return r.closed
}

// Close shuts the decorator down, unblocking any hung attempt by closing
// the live connection out from under it.
func (r *retryUpstream) Close() error {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	r.closed = true
	if r.up != nil {
		r.up.Close()
		r.up = nil
	}
	return nil
}
