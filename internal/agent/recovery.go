package agent

import (
	"fmt"
	"sync"
	"time"

	"github.com/activedb/ecaagent/internal/led"
	"github.com/activedb/ecaagent/internal/sqltypes"
)

// The notification path (syb_sendmsg UDP, Figure 15) is best-effort: a
// dropped datagram would silently lose a primitive-event occurrence
// forever. The recovery tracker upgrades it to at-least-once delivery:
//
//   - every primitive event carries a monotonically increasing vNo,
//     bumped by the generated native trigger and persisted both in
//     SysPrimitiveEvent (the authoritative high-water mark) and on every
//     shadow-table row (the occurrence's parameter data);
//   - the agent remembers the last vNo it has seen per event. A
//     notification that jumps past watermark+1 reveals a gap, and the
//     missing occurrences are replayed into the LED immediately — their
//     parameter contexts are intact because the shadow rows are keyed by
//     vNo;
//   - a notification at or below the watermark is a duplicate (UDP
//     duplication, or a reordered datagram whose gap was already filled)
//     and is suppressed, so replays never double-fire rules;
//   - a periodic sweep (Resync) compares each watermark against the
//     authoritative SysPrimitiveEvent.vNo over a privileged connection,
//     catching trailing losses that no later datagram would ever reveal.

// tracker holds the per-event delivery watermarks.
type tracker struct {
	mu   sync.Mutex
	seen map[string]*eventWatermark // keyed by internal event name; guarded by mu
}

// eventWatermark is the last-seen occurrence number of one primitive
// event, with the (table, op) needed to synthesize replayed occurrences.
type eventWatermark struct {
	table string
	op    string
	last  int // guarded by mu (the owning tracker's)
}

// trackEvent registers a primitive event's delivery watermark. Creation
// starts at 0; recovery adopts the authoritative vNo (occurrences from
// before the agent started are not replayed — the LED state they would
// have fed is gone).
func (a *Agent) trackEvent(event, table, op string, last int) {
	a.rec.mu.Lock()
	defer a.rec.mu.Unlock()
	if a.rec.seen == nil {
		a.rec.seen = make(map[string]*eventWatermark)
	}
	a.rec.seen[event] = &eventWatermark{table: table, op: op, last: last}
}

// ingest routes one decoded primitive occurrence through the watermark:
// duplicates are suppressed, gaps are filled by replaying the missing
// occurrences in order, and the watermark advances. Signals happen under
// the tracker lock so the LED sees each event's occurrences in vNo order.
func (a *Agent) ingest(p led.Primitive) {
	a.rec.mu.Lock()
	defer a.rec.mu.Unlock()
	w, tracked := a.rec.seen[p.Event]
	if !tracked {
		// Stray or foreign notification: hand it to the LED untracked
		// (unknown events are ignored there).
		a.ctr.notifDelivered.Add(1)
		a.signal(p)
		return
	}
	if p.VNo <= w.last {
		a.ctr.notifDuplicate.Add(1)
		return
	}
	if p.VNo > w.last+1 {
		a.ctr.gapsDetected.Add(1)
		a.cfg.Logf("agent: notification gap on %s: vNo %d after %d; replaying %d missed occurrence(s)",
			p.Event, p.VNo, w.last, p.VNo-w.last-1)
		for v := w.last + 1; v < p.VNo; v++ {
			a.ctr.occRecovered.Add(1)
			a.durableSignal(led.Primitive{Event: p.Event, Table: w.table, Op: w.op, VNo: v})
		}
	}
	w.last = p.VNo
	a.ctr.notifDelivered.Add(1)
	a.durableSignal(p)
}

// signal feeds one occurrence to the LED and the global-event forwarder.
func (a *Agent) signal(p led.Primitive) {
	a.led.Signal(p)
	if a.cfg.Forward != nil {
		a.cfg.Forward(p)
	}
}

// Resync compares every tracked event's watermark with the authoritative
// vNo in its SysPrimitiveEvent row and replays any occurrences the
// notification path lost. It is the trailing-loss recovery no in-stream
// gap check can provide (when the *last* datagram is dropped, nothing
// later reveals the hole). The periodic sweep calls it on
// Config.ResyncInterval; tests and operators can call it directly.
func (a *Agent) Resync() error {
	a.met.resyncSweeps.Inc()
	start := a.clock.Now()
	defer func() { a.met.resyncSec.Observe(a.clock.Now().Sub(start).Seconds()) }()
	type target struct {
		event, table, op string
		last             int
	}
	a.rec.mu.Lock()
	targets := make([]target, 0, len(a.rec.seen))
	for event, w := range a.rec.seen {
		targets = append(targets, target{event: event, table: w.table, op: w.op, last: w.last})
	}
	a.rec.mu.Unlock()

	var firstErr error
	for _, t := range targets {
		db, _, _, err := splitInternal(t.event)
		if err != nil {
			continue
		}
		auth, err := a.authoritativeVNo(db, t.event)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("agent: resync %s: %w", t.event, err)
			}
			continue
		}
		if auth > t.last {
			a.recoverRange(t.event, auth)
		}
	}
	return firstErr
}

// authoritativeVNo reads the server-side occurrence counter of one event.
func (a *Agent) authoritativeVNo(db, event string) (int, error) {
	rs, err := a.recUp.Exec(fmt.Sprintf(
		"use %s select vNo from %s where eventName = '%s'", db, TabPrimitiveEvent, sqlEscape(event)))
	if err != nil {
		return 0, err
	}
	vno := -1
	forEachRow(rs, func(r sqltypes.Row) {
		n, _ := r[0].AsInt()
		vno = int(n)
	})
	if vno < 0 {
		return 0, fmt.Errorf("no %s row", TabPrimitiveEvent)
	}
	return vno, nil
}

// recoverRange replays occurrences (watermark, auth] for one event. The
// watermark is re-read under the lock so occurrences that arrived (or were
// replayed) since the snapshot are not signalled twice.
func (a *Agent) recoverRange(event string, auth int) {
	a.rec.mu.Lock()
	defer a.rec.mu.Unlock()
	w, ok := a.rec.seen[event]
	if !ok || auth <= w.last {
		return
	}
	a.ctr.gapsDetected.Add(1)
	a.cfg.Logf("agent: resync on %s: authoritative vNo %d beyond watermark %d; replaying %d occurrence(s)",
		event, auth, w.last, auth-w.last)
	for v := w.last + 1; v <= auth; v++ {
		a.ctr.occRecovered.Add(1)
		a.durableSignal(led.Primitive{Event: event, Table: w.table, Op: w.op, VNo: v})
	}
	w.last = auth
}

// resyncLoop is the periodic sweep goroutine.
func (a *Agent) resyncLoop(interval time.Duration) {
	defer a.bgWG.Done()
	//ecavet:allow nowallclock resync sweep cadence is operational, not replayed
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case <-ticker.C:
			if err := a.Resync(); err != nil {
				a.cfg.Logf("agent: resync sweep: %v", err)
			}
		}
	}
}
