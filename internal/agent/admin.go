package agent

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"github.com/activedb/ecaagent/internal/obs"
)

// AdminHandler serves the agent's observability surface on a private mux:
//
//	/metrics     Prometheus text exposition (format 0.0.4)
//	/livez       liveness probe ("ok" whenever the process serves HTTP)
//	/readyz      readiness probe: 200 with the node state when the agent
//	             may receive notifications, 503 with "recovering" while
//	             startup recovery is still replaying (or "standby" when a
//	             cluster role function says this node must not ingest)
//	/healthz     legacy alias for /livez
//	/stats       JSON snapshot of Stats plus latency histograms
//	/eventgraph  the LED's event graph in Graphviz dot form
//	/debug/pprof runtime profiling (CPU, heap, goroutines, trace)
//
// Liveness and readiness are deliberately split: a node mid-recovery (or a
// cluster standby) is alive — restarting it would only lose progress — but
// a router or load balancer must not send it notifications yet. Before
// this split /healthz was a flat "ok" and a balancer had no way to tell
// "booting, leave alone" from "ready, send traffic".
//
// The handler is independent of the gateway listener: operators bind it to
// a separate, typically loopback-only, address (ecaagent's -http flag), so
// profiling and metrics never share a port with client traffic.
func (a *Agent) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.met.reg.WritePrometheus(w)
	})
	live := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	}
	mux.HandleFunc("/livez", live)
	mux.HandleFunc("/healthz", live)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		state, ready := a.Readiness()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(state + "\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		a.mu.Lock()
		events, triggers := len(a.events), len(a.triggers)
		a.mu.Unlock()
		payload := struct {
			Stats
			Events      int                              `json:"Events"`
			Triggers    int                              `json:"Triggers"`
			DeadLetters int                              `json:"DeadLetters"`
			Histograms  map[string]obs.HistogramSnapshot `json:"Histograms"`
		}{
			Stats:       a.Stats(),
			Events:      events,
			Triggers:    triggers,
			DeadLetters: len(a.DeadLetters()),
			Histograms:  a.met.reg.Histograms(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
	mux.HandleFunc("/eventgraph", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		w.Write([]byte(a.led.Dot()))
	})
	// net/http/pprof only self-registers on http.DefaultServeMux; mount its
	// handlers explicitly so the admin mux stays private.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
