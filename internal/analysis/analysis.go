// Package analysis is ecavet's dependency-free analyzer framework: a
// structural twin of golang.org/x/tools/go/analysis, reimplemented on the
// standard library's go/ast, go/token and go/types so the repo keeps its
// zero-dependency go.mod (the container this grows in has no module
// network). An Analyzer inspects one type-checked package and reports
// Diagnostics; drivers (the go vet -vettool unitchecker in unitchecker.go,
// the go list loader in load.go, the analysistest fixture runner) supply
// the packages and collect the output.
//
// The suite mechanizes the invariants the differential test suites only
// probe probabilistically: determinism (nowallclock), the durable-publish
// protocol (fsyncorder), lock discipline (lockguard), durability error
// handling (syncerr) and registration-time metrics (obsreg). DESIGN.md §9
// catalogues each analyzer and the suite it backstops.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Reportf; it returns an error only for internal failures (a broken
// invariant is a Diagnostic, not an error).
type Analyzer struct {
	Name string // short lower-case identifier, used in waiver comments (//ecavet:allow name reason)
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package fact store (never nil): facts exported
	// by this analyzer in dependency packages are visible through
	// LookupFact, and ExportFact publishes for dependents. See facts.go.
	Facts *Facts

	report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Every ecavet
// analyzer skips test files: tests may freely use the wall clock, drop
// errors and poke guarded state — the invariants protect production code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package bundles one loaded, type-checked package for the drivers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run executes the analyzers over pkg with a fresh fact store and
// returns the raw diagnostics in position order. Waivers are not applied
// — see RunWithWaivers. Cross-package facts need a driver that threads a
// store between packages; use RunFacts for that.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFacts(pkg, analyzers, NewFacts())
}

// RunFacts executes the analyzers over pkg against the given fact store:
// facts dependency packages exported are visible to the analyzers, and
// facts they export land in the store for dependents. The raw
// diagnostics come back in position order; pass them to ApplyWaivers (or
// discard them — a facts-only pass over a dependency) as the driver
// requires.
func RunFacts(pkg *Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// RunWithWaivers executes the analyzers and applies the waiver protocol
// (//ecavet:allow name reason): suppressed findings vanish, while malformed waivers,
// waivers naming unknown analyzers and stale waivers (suppressing
// nothing) are themselves reported under the waiverstale analyzer. This
// is the driver entry point — raw Run is for analysistest fixtures that
// assert pre-waiver findings.
func RunWithWaivers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunFactsWithWaivers(pkg, analyzers, NewFacts())
}

// RunFactsWithWaivers is RunWithWaivers with a driver-supplied fact
// store.
func RunFactsWithWaivers(pkg *Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	diags, err := RunFacts(pkg, analyzers, facts)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	waivers := CollectWaivers(pkg.Fset, pkg.Files)
	diags = ApplyWaivers(pkg.Fset, diags, waivers, known)
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// WalkFunctions visits every function body in the files, giving the
// callback the stack of enclosing functions (outermost first, innermost
// last) for each node. FuncDecl and FuncLit both count as functions; the stack lets
// analyzers resolve "the enclosing function" (innermost) or scan outward
// (lock inheritance into closures).
func WalkFunctions(files []*ast.File, visit func(n ast.Node, funcStack []ast.Node)) {
	for _, f := range files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				visit(n, stack)
				stack = append(stack, n)
				// Walk children manually so the pop happens at the right
				// time.
				for _, c := range childNodes(n) {
					ast.Inspect(c, walk)
				}
				stack = stack[:len(stack)-1]
				return false
			}
			if n != nil {
				visit(n, stack)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// childNodes returns the walkable children of a function node.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	switch fn := n.(type) {
	case *ast.FuncDecl:
		if fn.Recv != nil {
			out = append(out, fn.Recv)
		}
		out = append(out, fn.Type)
		if fn.Body != nil {
			out = append(out, fn.Body)
		}
	case *ast.FuncLit:
		out = append(out, fn.Type)
		if fn.Body != nil {
			out = append(out, fn.Body)
		}
	}
	return out
}

// FuncName names a function node for messages: the declared name for a
// FuncDecl, "func literal" otherwise.
func FuncName(n ast.Node) string {
	if d, ok := n.(*ast.FuncDecl); ok {
		return d.Name.Name
	}
	return "func literal"
}

// ReceiverTypeName extracts the receiver's type name from a method
// declaration ("" for plain functions): used by nowallclock to whitelist
// the realClock implementation.
func ReceiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// PackageTargeted reports whether path is, or is beneath, one of the
// target package paths. Analyzers that only apply to the deterministic or
// durable core use it with their exported target lists, which fixtures
// extend.
func PackageTargeted(path string, targets []string) bool {
	for _, t := range targets {
		if path == t || strings.HasPrefix(path, t+"/") {
			return true
		}
	}
	return false
}
