// Package obsfix exercises obsreg: instrument registration is allowed at
// package scope and in init/constructor/Enable/Register contexts only.
package obsfix

import "github.com/activedb/ecaagent/internal/obs"

var reg = &obs.Registry{}

// Package-level var initializers are registration time by construction.
var total = reg.Counter("total", "help")

type metrics struct{ hits *obs.Counter }

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{hits: r.Counter("hits", "help")}
}

func init() {
	reg.GaugeFunc("up", "help", func() float64 { return 1 })
}

func EnableMetrics(r *obs.Registry) {
	_ = r.Histogram("lat", "help", nil)
}

func hotPath(r *obs.Registry) {
	_ = r.Counter("lazy", "help") // want `Registry.Counter called in hotPath`
}

func process(r *obs.Registry) {
	f := func() {
		_ = r.Gauge("nested", "help") // want `Registry.Gauge called in process`
	}
	f()
	_ = r.Snapshot() // reads of existing instruments are free anywhere
}
