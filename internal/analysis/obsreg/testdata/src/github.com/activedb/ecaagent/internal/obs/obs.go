// Package obs is a stub of the real metrics registry, present so the
// obsreg fixture resolves the same import path the analyzer matches on.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name, help string) *Counter                     { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge                         { return &Gauge{} }
func (r *Registry) Histogram(name, help string, b []float64) *Histogram    { return &Histogram{} }
func (r *Registry) GaugeFunc(name, help string, f func() float64)          {}
func (r *Registry) Snapshot() map[string]float64                           { return nil }
