package obsreg_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/obsreg"
)

func TestObsReg(t *testing.T) {
	analysistest.Run(t, "testdata", obsreg.Analyzer, "obsfix")
}
