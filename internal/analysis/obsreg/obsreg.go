// Package obsreg requires obs instruments to be registered at
// registration time — package init, a constructor, or an explicit
// Enable/Register entry point — never lazily on a hot path. Lazy
// registration means an instrument doesn't exist until the first event
// that would increment it, so a scrape races startup and dashboards can't
// tell "zero" from "not wired up yet"; it also puts the registry's
// write lock on the data path.
//
// The analyzer flags any call to a *obs.Registry instrument-constructor
// method (Counter, Gauge, Histogram, CounterFunc, GaugeFunc, CounterVec,
// GaugeVec) whose nearest enclosing declared function is not a
// registration context: a function named init or prefixed
// Init/New/Enable/Register (either case). Package-level var initializers
// count as init and are allowed.
package obsreg

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/activedb/ecaagent/internal/analysis"
)

// ObsPackage is the import path of the metrics registry package. A var so
// fixture tests can point it at a stub.
var ObsPackage = "github.com/activedb/ecaagent/internal/obs"

// constructors are the Registry methods that create-and-register an
// instrument. Lookups of existing instruments (Snapshot etc.) are free.
var constructors = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
	"CounterVec":  true,
	"GaugeVec":    true,
}

// allowedPrefixes mark registration-context function names.
var allowedPrefixes = []string{"init", "Init", "new", "New", "enable", "Enable", "register", "Register"}

// Analyzer is the obsreg pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsreg",
	Doc:  "require obs instruments to be registered in init/constructor/Enable contexts, not lazily on hot paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	analysis.WalkFunctions(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.InTestFile(call.Pos()) {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != ObsPackage || !constructors[obj.Name()] {
			return
		}
		recv := obj.Type().(*types.Signature).Recv()
		if recv == nil {
			return
		}
		name := enclosingDeclName(stack)
		if name == "" || registrationContext(name) {
			return
		}
		pass.Reportf(call.Pos(),
			"metrics: Registry.%s called in %s; register instruments at init/constructor time so they exist before the first scrape (or waive with //ecavet:allow obsreg <reason>)",
			obj.Name(), name)
	})
	return nil
}

// enclosingDeclName walks outward to the nearest declared function's name;
// "" means package scope (a var initializer — registration time by
// construction).
func enclosingDeclName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return d.Name.Name
		}
	}
	return ""
}

func registrationContext(name string) bool {
	for _, p := range allowedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
