// Package fofix exercises fsyncorder: its import path sits under the
// durable prefix internal/storage.
package fofix

type file struct{}

func (file) Sync() error { return nil }

type dir struct{}

func (dir) Rename(oldName, newName string) error { return nil }
func (dir) SyncDir() error                       { return nil }

// The full protocol: write tmp, fsync, rename, fsync dir.
func publish(f file, d dir) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := d.Rename("ckpt.tmp", "ckpt"); err != nil {
		return err
	}
	return d.SyncDir()
}

func missingSync(d dir) error {
	if err := d.Rename("ckpt.tmp", "ckpt"); err != nil { // want `Rename without a preceding Sync`
		return err
	}
	return d.SyncDir()
}

func missingDirSync(f file, d dir) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return d.Rename("ckpt.tmp", "ckpt") // want `Rename not followed by SyncDir`
}

func missingBoth(d dir) error {
	return d.Rename("ckpt.tmp", "ckpt") // want `without a preceding Sync` `not followed by SyncDir`
}

// A function named Rename is the primitive being wrapped, not a publish
// sequence — exempt even though it calls Rename with no Sync in sight.
type wrapped struct{ d dir }

func (w wrapped) Rename(oldName, newName string) error {
	return w.d.Rename(oldName, newName)
}
