package fsyncorder_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/fsyncorder"
)

func TestFsyncOrder(t *testing.T) {
	analysistest.Run(t, "testdata", fsyncorder.Analyzer,
		"github.com/activedb/ecaagent/internal/storage/fofix")
}
