// Package fsyncorder enforces the durable-publish protocol on the
// checkpoint/WAL layer: write tmp → fsync the file → rename → fsync the
// directory (DESIGN.md §8). A Rename that publishes an unsynced file can
// surface as a valid-looking checkpoint full of zeroes after power loss;
// a rename whose directory entry is never synced can vanish entirely.
// The crash-differential suite only catches a violation if a crash point
// happens to straddle it — this analyzer rejects the code shape outright.
//
// The check is intra-function and positional: every call to a function or
// method named Rename in a durable package must have (a) at least one
// .Sync() call before it and (b) at least one .SyncDir() call after it in
// the same function body. Functions named Rename themselves are exempt —
// they are the primitive being wrapped (storage.OSDir.Rename), not a
// publish sequence. Rename uses that legitimately deviate (none today)
// carry a waiver.
package fsyncorder

import (
	"go/ast"
	"go/token"

	"github.com/activedb/ecaagent/internal/analysis"
)

// DurablePackages lists the packages the protocol applies to. Exported so
// fixture tests can temporarily extend it.
var DurablePackages = []string{
	"github.com/activedb/ecaagent/internal/agent",
	"github.com/activedb/ecaagent/internal/storage",
	"github.com/activedb/ecaagent/internal/cluster",
}

// Analyzer is the fsyncorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncorder",
	Doc:  "require the tmp→fsync→rename→dirsync publish protocol around every Rename in durable code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageTargeted(pass.Pkg.Path(), DurablePackages) {
		return nil
	}
	analysis.WalkFunctions(pass.Files, func(n ast.Node, stack []ast.Node) {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
			return
		}
		if fd.Name.Name == "Rename" {
			return
		}
		var renames []token.Pos
		var syncs, dirSyncs []token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeName(call) {
			case "Rename":
				renames = append(renames, call.Pos())
			case "Sync":
				syncs = append(syncs, call.Pos())
			case "SyncDir":
				dirSyncs = append(dirSyncs, call.Pos())
			}
			return true
		})
		for _, r := range renames {
			if !anyBefore(syncs, r) {
				pass.Reportf(r,
					"durable publish: Rename without a preceding Sync of the written file in %s (protocol: write tmp, fsync, rename, fsync dir)",
					fd.Name.Name)
			}
			if !anyAfter(dirSyncs, r) {
				pass.Reportf(r,
					"durable publish: Rename not followed by SyncDir in %s — the new directory entry is not durable until the directory is fsynced",
					fd.Name.Name)
			}
		}
	})
	return nil
}

// calleeName extracts the called function's or method's bare name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name
	case *ast.Ident:
		return f.Name
	}
	return ""
}

func anyBefore(ps []token.Pos, p token.Pos) bool {
	for _, x := range ps {
		if x < p {
			return true
		}
	}
	return false
}

func anyAfter(ps []token.Pos, p token.Pos) bool {
	for _, x := range ps {
		if x > p {
			return true
		}
	}
	return false
}
