// Package analysistest runs ecavet analyzers over fixture packages and
// checks their diagnostics against // want comments — a stdlib-only
// reimplementation of the x/tools package of the same name, for the same
// fixture layout: testdata/src/<importpath>/*.go, where fixture packages
// may import each other (resolved from testdata/src) and the standard
// library (resolved from `go list -export` data).
//
// A want comment asserts the diagnostics on its line:
//
//	time.Sleep(d) // want `wall clock`
//	x.Close()     // want "discards the error" "second finding"
//
// Each quoted string (Go double-quoted or backquoted syntax) is a regular
// expression that must match exactly one diagnostic message reported on
// that line; unmatched expectations and unexpected diagnostics both fail
// the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/activedb/ecaagent/internal/analysis"
)

// Run analyzes the fixture packages with a single analyzer and checks its
// raw (pre-waiver) diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	run(t, testdata, []*analysis.Analyzer{a}, paths, false)
}

// RunWithWaivers analyzes the fixture packages with the full waiver
// pipeline: //ecavet:allow comments suppress findings, and malformed,
// unknown-analyzer and stale waivers surface as waiverstale diagnostics.
// The want comments assert the post-waiver output.
func RunWithWaivers(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths ...string) {
	t.Helper()
	run(t, testdata, analyzers, paths, true)
}

func run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, paths []string, waivers bool) {
	t.Helper()
	ld := newLoader(t, testdata, analyzers)
	for _, path := range paths {
		pkg := ld.load(path)
		var diags []analysis.Diagnostic
		var err error
		if waivers {
			diags, err = analysis.RunFactsWithWaivers(pkg, analyzers, ld.facts)
		} else {
			diags, err = analysis.RunFacts(pkg, analyzers, ld.facts)
		}
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		checkWants(t, ld.fset, pkg.Files, diags)
	}
}

// loader resolves fixture packages from testdata/src and everything else
// from toolchain export data. As each fixture package loads, the
// analyzers under test get a facts-only pass over it into the shared
// store — the recursion through loaderImporter loads imports first, so
// facts flow in dependency order exactly as in the real drivers.
type loader struct {
	t         *testing.T
	src       string // testdata/src
	fset      *token.FileSet
	pkgs      map[string]*analysis.Package
	checking  map[string]bool
	std       types.ImporterFrom
	analyzers []*analysis.Analyzer
	facts     *analysis.Facts
}

func newLoader(t *testing.T, testdata string, analyzers []*analysis.Analyzer) *loader {
	ld := &loader{
		t:         t,
		src:       filepath.Join(testdata, "src"),
		fset:      token.NewFileSet(),
		pkgs:      make(map[string]*analysis.Package),
		checking:  make(map[string]bool),
		analyzers: analyzers,
		facts:     analysis.NewFacts(),
	}
	ld.std = analysis.NewExportImporter(ld.fset, nil, stdExportFiles)
	return ld
}

func (ld *loader) load(path string) *analysis.Package {
	ld.t.Helper()
	if p, ok := ld.pkgs[path]; ok {
		return p
	}
	if ld.checking[path] {
		ld.t.Fatalf("fixture import cycle through %s", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture package %s: %v", path, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: (*loaderImporter)(ld)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("type-checking fixture %s: %v", path, err)
	}
	p := &analysis.Package{Path: path, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = p
	// Facts-only pass: exported facts become visible to fixture packages
	// that import this one. The pass over the target package in run() will
	// re-derive the same facts — map puts are idempotent.
	if _, err := analysis.RunFacts(p, ld.analyzers, ld.facts); err != nil {
		ld.t.Fatalf("facts pass over fixture %s: %v", path, err)
	}
	return p
}

// loaderImporter adapts loader to types.ImporterFrom.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	ld := (*loader)(li)
	if st, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path))); err == nil && st.IsDir() {
		return ld.load(path).Types, nil
	}
	if err := ensureStdExport(path); err != nil {
		return nil, err
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// stdExportFiles maps import paths to compiler export-data files,
// populated lazily by `go list -deps -export` and shared across every
// test in the process (the paths live in the build cache and are stable
// for a given toolchain + GOFLAGS).
var (
	stdExportMu    sync.Mutex
	stdExportFiles = make(map[string]string)
)

func ensureStdExport(path string) error {
	stdExportMu.Lock()
	defer stdExportMu.Unlock()
	if _, ok := stdExportFiles[path]; ok {
		return nil
	}
	pkgs, err := goListExport(path)
	if err != nil {
		return err
	}
	for p, file := range pkgs {
		stdExportFiles[p] = file
	}
	if _, ok := stdExportFiles[path]; !ok && path != "unsafe" {
		return fmt.Errorf("go list produced no export data for %q", path)
	}
	return nil
}

// wantRE matches a want comment's payload.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants diffs diagnostics against the fixtures' want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants[k] = append(wants[k], &expectation{re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, exp.raw)
			}
		}
	}
}

// splitQuoted parses a sequence of Go string literals ("..." or `...`).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", pos, s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", pos, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want expects quoted regexps, got %q", pos, s)
		}
	}
	return out
}
