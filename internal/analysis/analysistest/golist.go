package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
)

// goListExport asks the toolchain for export data covering path and its
// transitive dependencies (the unified export format resolves referenced
// packages through the same lookup map, so the closure must be present).
func goListExport(path string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	files := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export %s: decoding: %v", path, err)
		}
		if p.Export != "" {
			files[p.ImportPath] = p.Export
		}
	}
	return files, nil
}
