// Package lockfix exercises lockguard. The analyzer applies everywhere an
// annotation exists, so the fixture needs no special import path.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unguarded: never flagged
}

func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) unlocked() int {
	return c.n // want `n is guarded by mu but accessed in unlocked`
}

func (c *counter) unguardedField() int { return c.m }

// The *Locked suffix is the repo convention for "caller holds the lock".
func (c *counter) bumpLocked() { c.n++ }

// Composite literals are construction, before the value is shared.
func construct() *counter {
	return &counter{n: 1}
}

// A closure inherits the lock its enclosing function holds.
func inherited(c *counter) {
	c.mu.Lock()
	f := func() { c.n++ }
	f()
	c.mu.Unlock()
}

// The check is positional: locking after the access does not excuse it.
func lockTooLate(c *counter) {
	c.n = 2 // want `n is guarded by mu`
	c.mu.Lock()
	c.mu.Unlock()
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int // guarded by mu
}

func read(t *table, k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

func dirtyRead(t *table, k string) int {
	return t.rows[k] // want `rows is guarded by mu`
}
