// Package lockguard enforces `// guarded by <mu>` field annotations: a
// struct field carrying the annotation may only be read or written while
// the named mutex is held. The race detector catches violations only when
// two goroutines actually collide during a test run; this analyzer rejects
// the unlocked access pattern statically.
//
// The heuristic is flow-insensitive but positional. An access to a guarded
// field is considered protected when any enclosing function (the access's
// function or one it is nested in as a literal):
//
//   - contains a call <expr>.<mu>.Lock() or <expr>.<mu>.RLock() textually
//     before the access, where <mu> is the annotated mutex name, or
//   - is a declared function whose name ends in "Locked" — the repo's
//     convention for helpers that document "caller holds the lock".
//
// Accesses in composite literals (struct construction before the value is
// shared) are exempt, as are _test.go files. Anything else needs either a
// restructure or an explicit //ecavet:allow lockguard waiver.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/activedb/ecaagent/internal/analysis"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "require `// guarded by <mu>` annotated fields to be accessed only under their mutex",
	Run:  run,
}

var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

// guarded maps a field object to the name of the mutex that protects it.
type guarded map[types.Object]string

func run(pass *analysis.Pass) error {
	fields := collectGuarded(pass)
	if len(fields) == 0 {
		return nil
	}
	// Composite-literal field values (and keys) are construction, not
	// shared-state access; collect their node spans to exempt them.
	var litSpans []span
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				litSpans = append(litSpans, span{cl.Pos(), cl.End()})
			}
			return true
		})
	}
	analysis.WalkFunctions(pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || pass.InTestFile(sel.Pos()) {
			return
		}
		obj := useOf(pass, sel)
		mu, ok := fields[obj]
		if !ok {
			return
		}
		if inSpan(litSpans, sel.Pos()) {
			return
		}
		if lockHeld(stack, mu, sel.Pos()) {
			return
		}
		pass.Reportf(sel.Sel.Pos(),
			"lock: %s is guarded by %s but accessed in %s without %s.Lock/RLock held",
			obj.Name(), mu, enclosingName(stack), mu)
	})
	return nil
}

// collectGuarded finds every struct field annotated `// guarded by <mu>`
// (in the field's doc comment or trailing line comment).
func collectGuarded(pass *analysis.Pass) guarded {
	fields := make(guarded)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardName(fld.Doc)
				if mu == "" {
					mu = guardName(fld.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						fields[obj] = mu
					}
				}
			}
			return true
		})
	}
	return fields
}

func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// useOf resolves the object a selector refers to, whether the selection is
// a direct use or goes through types.Selections (field through embedding
// or pointer).
func useOf(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		return s.Obj()
	}
	return pass.TypesInfo.Uses[sel.Sel]
}

// lockHeld reports whether, in some enclosing function, mu appears locked
// before pos: either a textual <x>.<mu>.Lock/RLock call earlier in that
// function, or the function is a *Locked-suffixed helper.
func lockHeld(stack []ast.Node, mu string, pos token.Pos) bool {
	for _, fn := range stack {
		if d, ok := fn.(*ast.FuncDecl); ok && strings.HasSuffix(d.Name.Name, "Locked") {
			return true
		}
		body := funcBody(fn)
		if body == nil {
			continue
		}
		held := false
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() >= pos {
				return true
			}
			m, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (m.Sel.Name != "Lock" && m.Sel.Name != "RLock") {
				return true
			}
			if recv, ok := m.X.(*ast.SelectorExpr); ok && recv.Sel.Name == mu {
				held = true
			} else if id, ok := m.X.(*ast.Ident); ok && id.Name == mu {
				held = true
			}
			return true
		})
		if held {
			return true
		}
	}
	return false
}

func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

func enclosingName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			return d.Name.Name
		}
	}
	if len(stack) > 0 {
		return "func literal"
	}
	return "package scope"
}

type span struct{ lo, hi token.Pos }

func inSpan(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.lo <= pos && pos < s.hi {
			return true
		}
	}
	return false
}
