package lockguard_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "lockfix")
}
