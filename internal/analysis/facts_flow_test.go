package analysis_test

import (
	"go/ast"
	"testing"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/analysistest"
)

// marked is a minimal fact-flowing analyzer: any function whose name
// starts with Marked exports a "marked" fact, and any call to a function
// carrying the fact is reported — including calls into *imported*
// fixture packages, which only works if the analysistest loader threads
// facts in dependency order like the real drivers do.
var marked = &analysis.Analyzer{
	Name: "marked",
	Doc:  "test analyzer: flags calls to Marked* functions across packages",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil && len(fd.Name.Name) >= 6 && fd.Name.Name[:6] == "Marked" {
					pass.ExportFact(obj, "marked", "yes")
				}
			}
		}
		analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return
			}
			if _, ok := pass.LookupFact(obj, "marked"); ok {
				pass.Reportf(call.Pos(), "call to marked function %s", id.Name)
			}
		})
		return nil
	},
}

// TestFactsFlowAcrossFixturePackages: the factuse fixture imports
// factdep; the fact exported on factdep.MarkedDep must be visible when
// factuse is analyzed.
func TestFactsFlowAcrossFixturePackages(t *testing.T) {
	analysistest.Run(t, "testdata", marked, "factuse")
}
