package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// TestFactsRoundTrip: Encode is deterministic and DecodeFacts inverts it;
// the empty and whitespace-only inputs (legacy zero-byte vetx files)
// decode to empty stores.
func TestFactsRoundTrip(t *testing.T) {
	f := NewFacts()
	f.put("alpha", "pkg.F", "kind", "source")
	f.put("alpha", "pkg.G", "kind", "")
	f.put("beta", "pkg.F", "kind", "sink")

	enc := f.Encode()
	if !bytes.Equal(enc, f.Encode()) {
		t.Fatal("Encode is not deterministic")
	}
	got, err := DecodeFacts(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != f.Len() {
		t.Fatalf("round trip lost facts: %d != %d", got.Len(), f.Len())
	}
	if v, ok := got.get("alpha", "pkg.F", "kind"); !ok || v != "source" {
		t.Fatalf("get after round trip = %q, %v", v, ok)
	}
	if v, ok := got.get("beta", "pkg.F", "kind"); !ok || v != "sink" {
		t.Fatal("analyzer scoping lost in round trip")
	}
	if _, ok := got.get("alpha", "pkg.F", "other"); ok {
		t.Fatal("nonexistent fact reported present")
	}

	for _, empty := range [][]byte{nil, {}, []byte("  \n\t")} {
		e, err := DecodeFacts(empty)
		if err != nil || e.Len() != 0 {
			t.Fatalf("empty input must decode to empty store, got %v, %v", e, err)
		}
	}
	if _, err := DecodeFacts([]byte("{broken")); err == nil {
		t.Fatal("corrupt facts file must error")
	}
}

func TestFactsMerge(t *testing.T) {
	a, b := NewFacts(), NewFacts()
	a.put("x", "p.F", "n", "old")
	b.put("x", "p.F", "n", "new")
	b.put("x", "p.G", "n", "only-b")
	a.Merge(b)
	if v, _ := a.get("x", "p.F", "n"); v != "new" {
		t.Errorf("merge collision: got %q, want other side to win", v)
	}
	if _, ok := a.get("x", "p.G", "n"); !ok {
		t.Error("merge dropped a fact")
	}
	a.Merge(nil) // must not panic
}

// TestObjectKey: functions key as pkgpath.Name, methods as
// pkgpath.Recv.Name (pointer receivers deref), nil keys to "".
func TestObjectKey(t *testing.T) {
	src := `package q

func F() {}

type T struct{}

func (t *T) M() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "q.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	pkg, err := conf.Check("example.com/q", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k := ObjectKey(pkg.Scope().Lookup("F")); k != "example.com/q.F" {
		t.Errorf("function key = %q", k)
	}
	tObj := pkg.Scope().Lookup("T").(*types.TypeName)
	named := tObj.Type().(*types.Named)
	if k := ObjectKey(named.Method(0)); k != "example.com/q.T.M" {
		t.Errorf("method key = %q", k)
	}
	if k := ObjectKey(nil); k != "" {
		t.Errorf("nil key = %q", k)
	}
}
