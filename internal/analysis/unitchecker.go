package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// The `go vet -vettool` driver. cmd/go speaks a small protocol to a vet
// tool (golang.org/x/tools/go/analysis/unitchecker is the reference
// implementation; this is a stdlib-only reimplementation of the subset
// ecavet needs):
//
//   - `ecavet -V=full` prints "ecavet version <v>" — cmd/go hashes the
//     line into the vet action's build-cache key, so the version string
//     embeds a content hash of the binary: rebuilding ecavet invalidates
//     cached vet results.
//   - `ecavet -flags` prints a JSON description of the tool's flags
//     (ecavet has none, so "[]") — cmd/go uses it to split the `go vet`
//     command line.
//   - `ecavet <objdir>/vet.cfg` analyzes one package. The JSON config
//     carries the file list, the import map, and the export-data file of
//     every dependency; diagnostics go to stderr and a non-zero exit
//     fails `go vet`. The facts file (VetxOutput) is written empty —
//     ecavet's analyzers are all intraprocedural-per-package and exchange
//     no facts — but must exist for cmd/go to cache the result.
//
// Packages outside this module (the standard library, and any future
// dependency) are skipped wholesale: cmd/go still requests a facts-only
// pass over them, which returns immediately.

// vetConfig mirrors the fields of cmd/go's vet config JSON that ecavet
// consumes.
type vetConfig struct {
	ID           string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/ecavet: it dispatches between the
// cmd/go protocol verbs and, when given package patterns instead of a
// .cfg file, the standalone `go list` driver in load.go. It never
// returns.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		fmt.Printf("ecavet version v1.0.0-%s\n", selfHash())
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0], analyzers))
	case len(args) > 0:
		os.Exit(standalone(args, analyzers))
	default:
		fmt.Fprintln(os.Stderr, `usage: ecavet <packages>   (standalone, e.g. ecavet ./...)
   or: go vet -vettool=$(which ecavet) <packages>`)
		os.Exit(2)
	}
}

// selfHash fingerprints the running executable so cmd/go's vet cache key
// changes whenever ecavet is rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil))[:12]
			}
		}
	}
	return "unknown"
}

// unitcheck analyzes the single package described by the vet config file,
// returning the process exit code.
func unitcheck(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even for skipped packages, or cmd/go
	// re-runs the pass on every build instead of caching it.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "ecavet: writing facts: %v\n", err)
			}
		}
	}

	if cfg.VetxOnly || !inModule(cfg.ImportPath, cfg.ModulePath) || len(cfg.GoFiles) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	imp := NewExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := TypeCheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	diags, err := RunWithWaivers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	writeVetx()
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// inModule reports whether importPath belongs to modulePath. Test
// variants carry an " [pkg.test]" suffix on the import path; external
// test packages a "_test" one — both still prefix-match.
func inModule(importPath, modulePath string) bool {
	if modulePath == "" {
		return false
	}
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	return importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/")
}

// standalone runs the suite over `go list` package patterns — the
// fallback driver for environments without `go vet -vettool`, and the
// engine behind the repo self-check test.
func standalone(patterns []string, analyzers []*Analyzer) int {
	diags, fset, err := CheckPackages(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
