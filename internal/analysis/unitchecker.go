package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// The `go vet -vettool` driver. cmd/go speaks a small protocol to a vet
// tool (golang.org/x/tools/go/analysis/unitchecker is the reference
// implementation; this is a stdlib-only reimplementation of the subset
// ecavet needs):
//
//   - `ecavet -V=full` prints "ecavet version <v>" — cmd/go hashes the
//     line into the vet action's build-cache key, so the version string
//     embeds a content hash of the binary: rebuilding ecavet invalidates
//     cached vet results.
//   - `ecavet -flags` prints a JSON description of the tool's flags
//     (ecavet has none, so "[]") — cmd/go uses it to split the `go vet`
//     command line.
//   - `ecavet <objdir>/vet.cfg` analyzes one package. The JSON config
//     carries the file list, the import map, the export-data file of
//     every dependency, and the facts file of every dependency
//     (PackageVetx); diagnostics go to stderr and a non-zero exit fails
//     `go vet`. The facts file (VetxOutput) carries the cumulative fact
//     store — facts exported by this package's pass plus everything
//     inherited from dependencies — so a dependent only reads its direct
//     dependencies' files.
//
// Packages outside this module (the standard library, and any future
// dependency) are skipped wholesale: cmd/go still requests a facts-only
// pass over them, which writes an empty store and returns. In-module
// packages requested VetxOnly (dependencies of the vetted patterns) get
// a real facts-only pass: analyzers run, facts flow, diagnostics are
// discarded — the package gets its own diagnostics when vetted directly.

// vetConfig mirrors the fields of cmd/go's vet config JSON that ecavet
// consumes.
type vetConfig struct {
	ID           string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/ecavet: it dispatches between the
// cmd/go protocol verbs and, when given package patterns instead of a
// .cfg file, the standalone `go list` driver in load.go. It never
// returns.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		fmt.Printf("ecavet version v1.0.0-%s\n", selfHash())
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0], analyzers))
	case len(args) > 1 && args[0] == "-waivers":
		os.Exit(listWaivers(args[1:]))
	case len(args) > 0:
		os.Exit(standalone(args, analyzers))
	default:
		fmt.Fprintln(os.Stderr, `usage: ecavet <packages>            (standalone, e.g. ecavet ./...)
   or: ecavet -waivers <packages>   (list every //ecavet:allow waiver)
   or: go vet -vettool=$(which ecavet) <packages>`)
		os.Exit(2)
	}
}

// listWaivers implements `ecavet -waivers <patterns>`: one line per
// //ecavet:allow comment — file:line, analyzer, reason, tab-separated —
// for DESIGN.md's waiver audit table and the lint-fix-check budget gate.
// Malformed waivers print with analyzer "MALFORMED" (they will also fail
// the lint run itself).
func listWaivers(patterns []string) int {
	waivers, err := ListWaivers(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	for _, w := range waivers {
		name, reason := w.Analyzer, w.Reason
		if name == "" {
			name, reason = "MALFORMED", "-"
		}
		fmt.Printf("%s:%d\t%s\t%s\n", w.File, w.Line, name, reason)
	}
	return 0
}

// selfHash fingerprints the running executable so cmd/go's vet cache key
// changes whenever ecavet is rebuilt.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil))[:12]
			}
		}
	}
	return "unknown"
}

// unitcheck analyzes the single package described by the vet config file,
// returning the process exit code.
func unitcheck(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Seed the fact store from the dependencies' facts files. Missing or
	// empty files (skipped std packages, pre-facts caches) decode to
	// empty stores.
	facts := NewFacts()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // dependency skipped or not yet built — no facts
		}
		dep, err := DecodeFacts(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecavet: reading facts %s: %v\n", vetx, err)
			return 1
		}
		facts.Merge(dep)
	}

	// The facts file must exist even for skipped packages, or cmd/go
	// re-runs the pass on every build instead of caching it. It carries
	// whatever the store holds when the pass finishes.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "ecavet: writing facts: %v\n", err)
			}
		}
	}

	if !inModule(cfg.ImportPath, cfg.ModulePath) || len(cfg.GoFiles) == 0 {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	imp := NewExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := TypeCheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		// Facts-only: run for the exported facts, discard diagnostics.
		if _, err := RunFacts(pkg, analyzers, facts); err != nil {
			fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
			return 1
		}
		writeVetx()
		return 0
	}
	diags, err := RunFactsWithWaivers(pkg, analyzers, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	writeVetx()
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// inModule reports whether importPath belongs to modulePath. Test
// variants carry an " [pkg.test]" suffix on the import path; external
// test packages a "_test" one — both still prefix-match.
func inModule(importPath, modulePath string) bool {
	if modulePath == "" {
		return false
	}
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	return importPath == modulePath || strings.HasPrefix(importPath, modulePath+"/")
}

// standalone runs the suite over `go list` package patterns — the
// fallback driver for environments without `go vet -vettool`, and the
// engine behind the repo self-check test.
func standalone(patterns []string, analyzers []*Analyzer) int {
	diags, fset, err := CheckPackages(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecavet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
