// Package plainfix is outside the deterministic package set: the wall
// clock is fine here and nothing is reported.
package plainfix

import "time"

func uptime(start time.Time) time.Duration { return time.Since(start) }
