package nwcfix

import "time"

// Test files may use the wall clock freely.
func helperForTests() time.Time { return time.Now() }
