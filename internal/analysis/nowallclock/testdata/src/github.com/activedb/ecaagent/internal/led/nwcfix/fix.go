// Package nwcfix exercises nowallclock: its import path sits under the
// deterministic prefix internal/led, so every wall-clock read is flagged.
package nwcfix

import "time"

func bad() time.Time {
	time.Sleep(time.Second)         // want `wall clock: time.Sleep`
	<-time.After(time.Millisecond)  // want `wall clock: time.After`
	t := time.NewTicker(time.Hour)  // want `wall clock: time.NewTicker`
	t.Stop()
	_ = time.Since(time.Time{}) // want `wall clock: time.Since`
	return time.Now()           // want `wall clock: time.Now`
}

// Methods of time.Time share names with the package functions but are
// pure value arithmetic — never flagged.
func methodsAreFine(a, b time.Time) bool {
	return a.After(b) || b.Before(a) || a.Sub(b) > 0
}

// Explicit constructors are data, not clock reads.
func constructorsAreFine() time.Time {
	return time.Unix(42, 0).Add(time.Minute)
}

type realClock struct{}

// The seam's own implementation is the sanctioned wall-clock caller.
func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) func() {
	t := time.AfterFunc(d, f) // nested in a realClock method: allowed
	return func() { t.Stop() }
}
