// Package oraclefix exercises nowallclock over the CEP window code paths
// added in ISSUE 8: the reference oracle lives in the subpackage
// internal/led/oracle, which the deterministic prefix rule must cover, and
// window-boundary logic is exactly where an accidental wall-clock read
// would silently desynchronize the differential suites.
package oraclefix

import "time"

type windowState struct {
	ring      []int
	nextBound time.Time
}

// Arming a boundary from the wall clock instead of the Clock seam is the
// canonical CEP determinism bug: replayed runs would compute different
// grids.
func (st *windowState) armFromWallClock(slide time.Duration) {
	now := time.Now() // want `wall clock: time.Now`
	st.nextBound = now.Truncate(slide).Add(slide)
	time.AfterFunc(slide, func() {}) // want `wall clock: time.AfterFunc`
}

// Boundary arithmetic over an explicit occurrence time is pure — the
// sanctioned shape for computing the slide grid.
func (st *windowState) armFromOccurrence(at time.Time, slide time.Duration) {
	st.nextBound = time.Unix(0, (at.UnixNano()/int64(slide)+1)*int64(slide)).UTC()
}

// Evicting the ring against a boundary instant is Time-method arithmetic,
// never flagged.
func (st *windowState) evict(bound time.Time, size time.Duration, at []time.Time) {
	lo := bound.Add(-size)
	kept := st.ring[:0]
	for i, t := range at {
		if !t.Before(lo) {
			kept = append(kept, st.ring[i])
		}
	}
	st.ring = kept
}
