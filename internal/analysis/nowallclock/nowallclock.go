// Package nowallclock forbids wall-clock reads in the deterministic core.
//
// The invariant: every package whose behavior must be reproducible under
// replay — the LED (snapshot/restore and the shard-equivalence
// differential suite), the Snoop machinery, and the agent's
// recovery/replay path (the crash-differential suite) — routes all time
// through the Clock seam (led.Clock). A raw time.Now() there produces
// occurrences, action keys or metrics that differ between a live run and
// its replay, which the differential suites would only catch
// probabilistically. This analyzer makes it a build error.
//
// Whitelisted: _test.go files (ManualClock tests drive time explicitly
// and may also use the real clock for deadlines) and methods of the
// realClock type — the one place the seam touches the wall clock by
// definition.
package nowallclock

import (
	"go/ast"
	"go/types"

	"github.com/activedb/ecaagent/internal/analysis"
)

// DeterministicPackages lists the package paths (and, implicitly, their
// subpackages) the invariant covers. Exported so fixture tests can
// temporarily extend it.
var DeterministicPackages = []string{
	"github.com/activedb/ecaagent/internal/led",
	"github.com/activedb/ecaagent/internal/snoop",
	"github.com/activedb/ecaagent/internal/agent",
	"github.com/activedb/ecaagent/internal/cluster",
}

// forbidden are the time-package functions that read or schedule against
// the wall clock. time.Time arithmetic (Sub, Add, Before) and
// constructors from explicit data (time.Unix, time.Date) are pure and
// stay allowed.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "forbid wall-clock reads (time.Now etc.) outside the Clock seam in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageTargeted(pass.Pkg.Path(), DeterministicPackages) {
		return nil
	}
	analysis.WalkFunctions(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.InTestFile(call.Pos()) {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !forbidden[obj.Name()] {
			return
		}
		// Methods share names with the package functions (Time.After vs
		// time.After) but are pure value arithmetic — only the package
		// functions touch the wall clock.
		if obj.Type().(*types.Signature).Recv() != nil {
			return
		}
		// The seam's own implementation is the one sanctioned caller.
		for _, fn := range stack {
			if d, ok := fn.(*ast.FuncDecl); ok && analysis.ReceiverTypeName(d) == "realClock" {
				return
			}
		}
		pass.Reportf(call.Pos(),
			"wall clock: time.%s in deterministic package %s; route it through the Clock seam (led.Clock) or waive with //ecavet:allow nowallclock <reason>",
			obj.Name(), pass.Pkg.Path())
	})
	return nil
}
