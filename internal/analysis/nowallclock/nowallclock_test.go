package nowallclock_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", nowallclock.Analyzer,
		"github.com/activedb/ecaagent/internal/led/nwcfix",
		"github.com/activedb/ecaagent/internal/led/oracle/oraclefix",
		"plainfix")
}
