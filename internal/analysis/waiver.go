package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The waiver protocol. A finding that is understood and accepted is
// silenced in the source with
//
//	//ecavet:allow <analyzer> <reason>
//
// either trailing the offending line or on its own line immediately
// above. The analyzer name must match a registered analyzer and the
// reason is mandatory — a waiver without one is itself a diagnostic (and
// `make fmt` rejects it before the analyzers even run). A waiver that
// suppresses nothing is stale and reported too, so waivers rot visibly
// instead of silently outliving the code they excused.

// WaiverPrefix is the comment marker, sans "//".
const WaiverPrefix = "ecavet:allow"

// WaiverAnalyzerName labels the synthetic diagnostics the waiver
// protocol itself produces (malformed, unknown-analyzer, stale). The
// waiverstale analyzer in internal/analysis/passes is a registration
// point for the name — its detection logic lives here, in the drivers'
// ApplyWaivers step, because staleness is only decidable after every
// other analyzer has run.
const WaiverAnalyzerName = "waiverstale"

// A Waiver is one parsed //ecavet:allow comment.
type Waiver struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string // "" when malformed
	Reason   string // "" when malformed
}

// CollectWaivers scans every comment in the files for waiver markers.
// Comments inside _test.go files are ignored, mirroring the analyzers
// (nothing there needs waiving, so anything there would always be stale).
func CollectWaivers(fset *token.FileSet, files []*ast.File) []Waiver {
	var out []Waiver
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+WaiverPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				w := Waiver{Pos: c.Pos(), File: pos.Filename, Line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) >= 2 {
					w.Analyzer = fields[0]
					w.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out = append(out, w)
			}
		}
	}
	return out
}

// ApplyWaivers filters diags through the waivers. A diagnostic is
// suppressed when a well-formed waiver names its analyzer and sits on the
// same line or the line directly above it, in the same file. The returned
// slice contains the surviving diagnostics plus one synthetic waiverstale
// diagnostic for each malformed waiver, waiver naming an analyzer not in
// known, and stale waiver.
func ApplyWaivers(fset *token.FileSet, diags []Diagnostic, waivers []Waiver, known map[string]bool) []Diagnostic {
	used := make([]bool, len(waivers))
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for i, w := range waivers {
			if w.Analyzer != d.Analyzer || w.File != pos.Filename {
				continue
			}
			if w.Line == pos.Line || w.Line == pos.Line-1 {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for i, w := range waivers {
		switch {
		case w.Analyzer == "":
			out = append(out, Diagnostic{Pos: w.Pos, Analyzer: WaiverAnalyzerName,
				Message: "malformed waiver: want //ecavet:allow <analyzer> <reason>"})
		case !known[w.Analyzer]:
			out = append(out, Diagnostic{Pos: w.Pos, Analyzer: WaiverAnalyzerName,
				Message: "waiver names unknown analyzer " + w.Analyzer})
		case !used[i]:
			out = append(out, Diagnostic{Pos: w.Pos, Analyzer: WaiverAnalyzerName,
				Message: "stale waiver: no " + w.Analyzer + " finding on this or the next line"})
		}
	}
	return out
}
