// Package fwhelper mirrors the cluster fence shapes outside the fenced
// target list: nothing here is reported, but fencedUp.Exec exports
// "validates", making fencedUp a fenced type, making Fence export
// "fences" — the chain the fixture package consumes.
package fwhelper

type Result struct{}

// Upstream is the raw-write interface shape (agent.Upstream's stand-in).
type Upstream interface {
	Exec(sql string) (*Result, error)
}

// Authority validates fencing epochs.
type Authority interface {
	Validate(epoch uint64) error
}

type fencedUp struct {
	up    Upstream
	auth  Authority
	epoch uint64
}

func (f *fencedUp) Exec(sql string) (*Result, error) {
	if err := f.auth.Validate(f.epoch); err != nil {
		return nil, err
	}
	return f.up.Exec(sql)
}

// Fence wraps a dialer so every produced upstream validates first — the
// FencedDialer shape: the fenced composite literal sits inside the
// returned closure.
func Fence(inner func() Upstream, auth Authority, epoch uint64) func() Upstream {
	return func() Upstream {
		return &fencedUp{up: inner(), auth: auth, epoch: epoch}
	}
}

// Refence forwards another fencer's result.
func Refence(inner func() Upstream, auth Authority) func() Upstream {
	return Fence(inner, auth, 1)
}
