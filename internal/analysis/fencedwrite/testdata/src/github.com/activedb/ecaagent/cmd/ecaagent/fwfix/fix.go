// Package fwfix exercises fencedwrite: its import path sits under the
// fenced prefix cmd/ecaagent.
package fwfix

import (
	"fwhelper"
)

func raw(up fwhelper.Upstream) {
	up.Exec("delete from t") // want `unfenced write: up\.Exec has no reachable epoch validation`
}

func validated(up fwhelper.Upstream, auth fwhelper.Authority, epoch uint64) error {
	if err := auth.Validate(epoch); err != nil {
		return err
	}
	_, err := up.Exec("delete from t")
	return err
}

// Validation on only one branch still reaches the write — the check is
// reachability, not dominance; the no-validate path is for humans (and
// the chaos suite) to judge.
func validatedOneBranch(up fwhelper.Upstream, auth fwhelper.Authority, epoch uint64, risky bool) {
	if !risky {
		auth.Validate(epoch)
	}
	up.Exec("update t set x = 1")
}

// A validation after the write is no defence.
func validatedTooLate(up fwhelper.Upstream, auth fwhelper.Authority, epoch uint64) {
	up.Exec("delete from t") // want `unfenced write: up\.Exec has no reachable epoch validation`
	auth.Validate(epoch)
}

// A fenced dialer taints its results: both the dialer variable and the
// upstream it produces.
func viaFencedDialer(mk func() fwhelper.Upstream, auth fwhelper.Authority) {
	dial := fwhelper.Fence(mk, auth, 7)
	up := dial()
	up.Exec("insert t values (1)")
}

// Refence only forwards Fence, but the "fences" fact propagates.
func viaRefence(mk func() fwhelper.Upstream, auth fwhelper.Authority) {
	dial := fwhelper.Refence(mk, auth)
	up := dial()
	up.Exec("insert t values (1)")
}

// An upstream from an unfenced dialer stays raw.
func viaRawDialer(mk func() fwhelper.Upstream) {
	up := mk()
	up.Exec("insert t values (1)") // want `unfenced write: up\.Exec has no reachable epoch validation`
}
