package fencedwrite_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/fencedwrite"
)

func TestFencedWrite(t *testing.T) {
	analysistest.Run(t, "testdata", fencedwrite.Analyzer,
		"github.com/activedb/ecaagent/cmd/ecaagent/fwfix")
}
