// Package fencedwrite keeps upstream SQL effects behind the fencing
// epoch. The cluster's split-brain defence (DESIGN.md, PR 6) is a
// protocol, not a type: a zombie ex-primary is only harmless if every
// Exec that can reach the shared SQL server first validates the node's
// epoch token against the authority. One raw Exec on a replication or
// authority path re-opens the double-fire window the chaos suite exists
// to close.
//
// A "raw write" is a call to an interface method named Exec — the
// agent.Upstream and cluster.Execer shapes; a concrete method resolves
// statically and is judged by its own body. In the fenced packages
// (internal/cluster, cmd/ecaagent) each raw write must be justified by
// one of:
//
//   - a reachable validation earlier in the same function — a call to a
//     method named Validate, or to a function carrying the "validates"
//     fact;
//   - a receiver that provably came from a fencing constructor: a value
//     (transitively) produced by a call to a function carrying the
//     "fences" fact, e.g. up, _ := dial(...) where dial came from
//     cluster.FencedDialer.
//
// The facts close the loop across packages, fixpointed within one:
// a function that validates before writing exports "validates"
// (fencedUpstream.Exec); a type whose Exec validates is a fenced type;
// a function that constructs a fenced type — composite literal, even
// inside a returned closure — or returns another fencer's result
// exports "fences" (cluster.FencedDialer). That is how cmd/ecaagent
// gets credit for wrapping its dialer without fencedwrite seeing the
// dial happen.
//
// The deliberate exceptions are the authority's own statements: the
// epoch CAS and lease renewal in SQLAuthority *are* the fence's ground
// truth and cannot validate against themselves — they carry waivers.
package fencedwrite

import (
	"go/ast"
	"go/types"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/cfg"
)

// FencedPackages lists the packages whose raw writes must be fenced.
// Exported so fixture tests can temporarily extend it.
var FencedPackages = []string{
	"github.com/activedb/ecaagent/internal/cluster",
	"github.com/activedb/ecaagent/cmd/ecaagent",
}

// Analyzer is the fencedwrite pass.
var Analyzer = &analysis.Analyzer{
	Name: "fencedwrite",
	Doc:  "interface Exec calls in the cluster packages must flow through epoch validation or a fencing constructor",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Fixpoint the facts: "validates" feeds fenced types feeds "fences",
	// and a chain inside one package needs repeated rounds.
	for {
		before := pass.Facts.Len()
		exportFacts(pass)
		if pass.Facts.Len() == before {
			break
		}
	}
	if analysis.PackageTargeted(pass.Pkg.Path(), FencedPackages) {
		report(pass)
	}
	return nil
}

// exportFacts publishes "validates" and "fences" for the package's
// declared functions.
func exportFacts(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			// "validates": the function's own flow (closures excluded —
			// a validation deferred to a callback guards nothing here)
			// calls a validator.
			found := false
			cfg.Inspect(fd.Body, func(n ast.Node) {
				if !found && isValidatingCall(pass, n) {
					found = true
				}
			})
			if found {
				pass.ExportFact(obj, "validates", "true")
			}
			// "fences": constructs a fenced type anywhere in the body —
			// including inside a returned closure, the FencedDialer
			// shape — or returns another fencer's result.
			fences := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fences {
					return false
				}
				switch x := n.(type) {
				case *ast.CompositeLit:
					if fencedType(pass, pass.TypesInfo.Types[x].Type) {
						fences = true
					}
				case *ast.ReturnStmt:
					for _, res := range x.Results {
						if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
							if callee := calleeObj(pass, call); callee != nil {
								if _, ok := pass.LookupFact(callee, "fences"); ok {
									fences = true
								}
							}
						}
					}
				}
				return true
			})
			if fences {
				pass.ExportFact(obj, "fences", "true")
			}
		}
	}
}

// isValidatingCall reports whether n is a call to a method named
// Validate or to a function carrying the "validates" fact.
func isValidatingCall(pass *analysis.Pass, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" {
		if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			return true
		}
	}
	if callee := calleeObj(pass, call); callee != nil {
		if _, ok := pass.LookupFact(callee, "validates"); ok {
			return true
		}
	}
	return false
}

// fencedType reports whether t (or *t) is a named type whose Exec
// method carries the "validates" fact.
func fencedType(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(named, true, pass.Pkg, "Exec")
	fn, ok := m.(*types.Func)
	if !ok {
		return false
	}
	_, validates := pass.LookupFact(fn, "validates")
	return validates
}

// report flags unsatisfied raw writes in one of the fenced packages.
func report(pass *analysis.Pass) {
	analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return
		}
		if body == nil || pass.InTestFile(body.Pos()) {
			return
		}
		checkFunc(pass, body)
	})
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)

	// Fence-tainted locals: values (transitively) produced by calls to
	// "fences"-fact functions. `dial := FencedDialer(...)` taints dial;
	// `up, err := dial(...)` taints up (and err, harmlessly).
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		g.Visit(func(_ *cfg.Block, _ int, n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			producing := false
			if callee := calleeObj(pass, call); callee != nil {
				if _, ok := pass.LookupFact(callee, "fences"); ok {
					producing = true
				} else if tainted[callee] {
					producing = true
				}
			}
			if !producing {
				return
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
			}
		})
	}

	// Validation events and raw-write operations, by block/index.
	type site struct {
		block *cfg.Block
		idx   int
	}
	var events []site
	type op struct {
		site
		call *ast.CallExpr
		expr string
	}
	var ops []op
	g.Visit(func(b *cfg.Block, i int, n ast.Node) {
		if isValidatingCall(pass, n) {
			events = append(events, site{b, i})
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Exec" {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !types.IsInterface(sig.Recv().Type()) {
			return
		}
		// Receiver rooted in a fence-tainted local is already safe.
		if root := rootIdent(sel.X); root != nil && tainted[pass.TypesInfo.Uses[root]] {
			return
		}
		ops = append(ops, op{site{b, i}, call, types.ExprString(sel.X)})
	})

	reach := map[*cfg.Block]map[*cfg.Block]bool{}
	for _, o := range ops {
		ok := false
		for _, e := range events {
			if e.block == o.block && e.idx <= o.idx {
				ok = true
				break
			}
			r, cached := reach[e.block]
			if !cached {
				r = g.ReachableFrom(e.block)
				reach[e.block] = r
			}
			if r[o.block] {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(o.call.Pos(),
				"unfenced write: %s.Exec has no reachable epoch validation — route it through FencedDialer or Validate first, or waive with //ecavet:allow fencedwrite <reason>",
				o.expr)
		}
	}
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x.f[i].g → x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// calleeObj resolves the called function or variable being invoked.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
