package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// NewExportImporter builds a types importer that resolves imports from
// compiler export-data files — the same files cmd/go hands a vet tool in
// PackageFile, or `go list -export` reports in .Export. importMap
// translates source-level import paths to canonical package paths
// (identity when nil); exportFiles maps canonical paths to export files.
func NewExportImporter(fset *token.FileSet, importMap, exportFiles map[string]string) types.ImporterFrom {
	var lookup = func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	inner := importer.ForCompiler(fset, "gc", lookup)
	return &exportImporter{inner: inner.(types.ImporterFrom), importMap: importMap}
}

type exportImporter struct {
	inner     types.ImporterFrom
	importMap map[string]string
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := e.importMap[path]; ok {
		path = mapped
	}
	return e.inner.ImportFrom(path, dir, 0)
}

// ParseFiles parses the named Go files with comments (the waiver scanner
// and lockguard's guarded-by annotations live in comments).
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypeCheck type-checks one package's parsed files into a Package ready
// for Run. goVersion may be "" (the toolchain default) or a "go1.N"
// string from the vet config / go.mod.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // collect just the first hard error below
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}
