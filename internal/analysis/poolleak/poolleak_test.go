package poolleak_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/poolleak"
)

func TestPoolLeak(t *testing.T) {
	analysistest.Run(t, "testdata", poolleak.Analyzer,
		"github.com/activedb/ecaagent/internal/led/plfix")
}
