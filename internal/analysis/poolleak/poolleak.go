// Package poolleak enforces the repo's sync.Pool discipline. The hot
// paths (PR 8) recycle scratch objects — firing scratches in the LED,
// primitive batches and decode scratches in the agent — and a pooled
// object is only safe while exactly one goroutine owns it. Three rules
// follow, checked in the pool packages (internal/led, internal/agent):
//
//   - no escape: a pooled value must not be stored into package state,
//     another object, or a channel. Once it leaves the function the pool
//     can hand the same memory to someone else. (Returning it is fine —
//     that is the accessor shape — and deliberate ownership transfers,
//     like the ingest router parking a batch in its scratch map, carry
//     waivers.)
//   - no use after Put: after the value goes back — via sync.Pool.Put
//     or a "sink" helper — any read or write on ANY path is a race with
//     the next Get. Reassigning the variable revives it.
//   - reset before Put: a direct Put must be preceded by a reachable
//     store that clears the value (slice truncation, zero composite,
//     nil, or a reset/clear/zero-named call), so a recycled object never
//     leaks one owner's data into the next — the putPrimBatch
//     discipline. Freshly constructed values are exempt.
//
// Two facts let the wrappers participate across packages: a function
// returning a pooled value exports "source" (getPrimBatch,
// firingPool.get), and a function that Puts one of its parameters
// exports "sink" (putPrimBatch, firingPool.put). Callers of a source
// are holding pooled memory; calling a sink is a Put.
package poolleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/cfg"
)

// PoolPackages lists the packages whose pool usage is checked.
// Exported so fixture tests can temporarily extend it.
var PoolPackages = []string{
	"github.com/activedb/ecaagent/internal/led",
	"github.com/activedb/ecaagent/internal/agent",
}

// Analyzer is the poolleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc:  "sync.Pool values must stay local, be reset before Put, and never be used after Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Fixpoint the facts: a source may return another source's result,
	// a sink may forward to another sink.
	for {
		before := pass.Facts.Len()
		exportFacts(pass)
		if pass.Facts.Len() == before {
			break
		}
	}
	if analysis.PackageTargeted(pass.Pkg.Path(), PoolPackages) {
		report(pass)
	}
	return nil
}

// exportFacts publishes "source" and "sink" for the package's declared
// functions.
func exportFacts(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			pooled := pooledObjects(pass, fd.Body)
			// "source": some return hands back a pooled value. Closures
			// are excluded — their returns are not this function's.
			src := false
			cfg.Inspect(fd.Body, func(n ast.Node) {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || src {
					return
				}
				for _, res := range ret.Results {
					if producesPooled(pass, res, pooled) {
						src = true
					}
				}
			})
			if src {
				pass.ExportFact(obj, "source", "true")
			}
			// "sink": the function Puts one of its parameters, directly
			// or through another sink.
			params := paramObjects(pass, fd)
			snk := false
			cfg.Inspect(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok || snk {
					return
				}
				for _, o := range putEventObjs(pass, call) {
					if params[o] {
						snk = true
					}
				}
			})
			if snk {
				pass.ExportFact(obj, "sink", "true")
			}
		}
	}
}

// report checks every function of a pool package.
func report(pass *analysis.Pass) {
	analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return
		}
		if body == nil || pass.InTestFile(body.Pos()) {
			return
		}
		checkFunc(pass, body)
	})
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	pooled := pooledObjects(pass, body)
	checkEscapes(pass, body, pooled)

	g := cfg.New(body)
	st := collect(pass, g, body)
	checkUseAfterPut(pass, g, st)
	checkPutReset(pass, g, st)
}

// checkEscapes flags stores of pooled values outside the function's own
// locals: into a field or element of another object, into a package
// variable, or onto a channel.
func checkEscapes(pass *analysis.Pass, body *ast.BlockStmt, pooled map[types.Object]bool) {
	escape := func(pos token.Pos, name string) {
		pass.Reportf(pos,
			"pool value %s escapes: a pooled object stored outside this function can be recycled under its new owner — keep it local and hand it back with Put, or waive with //ecavet:allow poolleak <reason>",
			name)
	}
	cfg.Inspect(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return
			}
			for i := range x.Lhs {
				id, ok := ast.Unparen(x.Rhs[i]).(*ast.Ident)
				if !ok || !pooled[objOf(pass, id)] {
					continue
				}
				switch lhs := ast.Unparen(x.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escape(id.Pos(), id.Name)
				case *ast.Ident:
					if o := objOf(pass, lhs); o != nil && o.Parent() == pass.Pkg.Scope() {
						escape(id.Pos(), id.Name)
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(x.Value).(*ast.Ident); ok && pooled[objOf(pass, id)] {
				escape(id.Pos(), id.Name)
			}
		}
	})
}

// state is everything collect gathers for the Put checks.
type state struct {
	tracked   map[types.Object]bool // objects that are ever Put
	putArgs   map[*ast.Ident]bool   // idents consumed as Put arguments
	lhsKills  map[*ast.Ident]bool   // plain-ident assignment targets
	deferred  map[*ast.CallExpr]bool
	rangeKill map[ast.Node][]types.Object // range X node -> key/value objects
	fresh     map[types.Object]bool
	resets    map[types.Object][]site
	puts      []putSite
}

type site struct {
	b *cfg.Block
	i int
}

type putSite struct {
	site
	obj  types.Object
	pos  token.Pos
	name string
}

func collect(pass *analysis.Pass, g *cfg.Graph, body *ast.BlockStmt) *state {
	st := &state{
		tracked:   map[types.Object]bool{},
		putArgs:   map[*ast.Ident]bool{},
		lhsKills:  map[*ast.Ident]bool{},
		deferred:  map[*ast.CallExpr]bool{},
		rangeKill: map[ast.Node][]types.Object{},
		fresh:     map[types.Object]bool{},
		resets:    map[types.Object][]site{},
	}
	cfg.Inspect(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// A deferred Put runs at exit: it transfers ownership but
			// kills no use between here and the return.
			st.deferred[x.Call] = true
		case *ast.RangeStmt:
			var objs []types.Object
			for _, e := range []ast.Expr{x.Key, x.Value} {
				id, ok := e.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if o := objOf(pass, id); o != nil {
					objs = append(objs, o)
				}
			}
			st.rangeKill[x.X] = objs
		}
	})
	g.Visit(func(b *cfg.Block, i int, n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, id := range putEventIdents(pass, x) {
				st.putArgs[id] = true
				obj := objOf(pass, id)
				if obj == nil {
					continue
				}
				st.tracked[obj] = true
				if isPoolMethod(pass, x, "Put") && !st.deferred[x] {
					st.puts = append(st.puts, putSite{site{b, i}, obj, x.Pos(), id.Name})
				}
			}
			if name, ok := calleeName(x); ok && resettyName(name) {
				for _, o := range callTargets(pass, x) {
					st.resets[o] = append(st.resets[o], site{b, i})
				}
			}
		case *ast.AssignStmt:
			for i2, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					st.lhsKills[id] = true
					if len(x.Lhs) == len(x.Rhs) && freshExpr(x.Rhs[i2]) {
						if o := objOf(pass, id); o != nil {
							st.fresh[o] = true
						}
					}
					continue
				}
				if root := rootIdent(lhs); root != nil && len(x.Lhs) == len(x.Rhs) && resettyExpr(x.Rhs[i2]) {
					if o := objOf(pass, root); o != nil {
						st.resets[o] = append(st.resets[o], site{b, i})
					}
				}
			}
		}
	})
	return st
}

// checkUseAfterPut runs a forward may-analysis: an object is dead after
// any Put; a read or write while dead on some path is a report;
// reassignment (including a range rebinding) revives it.
func checkUseAfterPut(pass *analysis.Pass, g *cfg.Graph, st *state) {
	if len(st.tracked) == 0 {
		return
	}
	apply := func(dead map[types.Object]bool, n ast.Node, report bool) {
		if report {
			cfg.Inspect(n, func(x ast.Node) {
				id, ok := x.(*ast.Ident)
				if !ok || st.putArgs[id] || st.lhsKills[id] {
					return
				}
				obj := objOf(pass, id)
				if obj == nil || !st.tracked[obj] || !dead[obj] {
					return
				}
				pass.Reportf(id.Pos(),
					"use of %s after Put: the pool may already have recycled it — finish with the value before Put, or waive with //ecavet:allow poolleak <reason>",
					id.Name)
			})
		}
		cfg.Inspect(n, func(x ast.Node) {
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if o := objOf(pass, id); o != nil {
						delete(dead, o)
					}
				}
			}
		})
		for _, o := range st.rangeKill[n] {
			delete(dead, o)
		}
		cfg.Inspect(n, func(x ast.Node) {
			call, ok := x.(*ast.CallExpr)
			if !ok || st.deferred[call] {
				return
			}
			for _, id := range putEventIdents(pass, call) {
				if o := objOf(pass, id); o != nil {
					dead[o] = true
				}
			}
		})
	}
	in := map[*cfg.Block]map[types.Object]bool{}
	for _, b := range g.Blocks {
		in[b] = map[types.Object]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			dead := map[types.Object]bool{}
			for o := range in[b] {
				dead[o] = true
			}
			for _, n := range b.Nodes {
				apply(dead, n, false)
			}
			for _, s := range b.Succs {
				for o := range dead {
					if !in[s][o] {
						in[s][o] = true
						changed = true
					}
				}
			}
		}
	}
	for _, b := range g.Blocks {
		dead := map[types.Object]bool{}
		for o := range in[b] {
			dead[o] = true
		}
		for _, n := range b.Nodes {
			apply(dead, n, true)
		}
	}
}

// checkPutReset requires every direct sync.Pool.Put of a non-fresh
// value to be preceded (reachably) by a clearing store or reset call.
func checkPutReset(pass *analysis.Pass, g *cfg.Graph, st *state) {
	reach := map[*cfg.Block]map[*cfg.Block]bool{}
	for _, p := range st.puts {
		if st.fresh[p.obj] {
			continue
		}
		ok := false
		for _, r := range st.resets[p.obj] {
			if r.b == p.b && r.i <= p.i {
				ok = true
				break
			}
			m, cached := reach[r.b]
			if !cached {
				m = g.ReachableFrom(r.b)
				reach[r.b] = m
			}
			if m[p.b] {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(p.pos,
				"Put without reset: %s goes back to the pool carrying stale state — zero its fields first (the putPrimBatch discipline), or waive with //ecavet:allow poolleak <reason>",
				p.name)
		}
	}
}

// pooledObjects returns the locals holding pool-owned memory: assigned
// from sync.Pool.Get, from a "source"-fact call, or aliased from
// another pooled local.
func pooledObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	pooled := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		cfg.Inspect(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(pass, id)
				if obj == nil || pooled[obj] {
					continue
				}
				if producesPooled(pass, as.Rhs[i], pooled) {
					pooled[obj] = true
					changed = true
				}
			}
		})
	}
	return pooled
}

// producesPooled reports whether e evaluates to pool-owned memory:
// a Get call, a source-fact call, or a pooled local — through any
// parens and type assertions.
func producesPooled(pass *analysis.Pass, e ast.Expr, pooled map[types.Object]bool) bool {
	switch x := unwrap(e).(type) {
	case *ast.Ident:
		return pooled[objOf(pass, x)]
	case *ast.CallExpr:
		if isPoolMethod(pass, x, "Get") {
			return true
		}
		if callee := calleeObj(pass, x); callee != nil {
			if _, ok := pass.LookupFact(callee, "source"); ok {
				return true
			}
		}
	}
	return false
}

// putEventIdents returns the identifier arguments that call transfers
// to a pool: the argument of sync.Pool.Put, or every plain-ident
// argument of a "sink"-fact function.
func putEventIdents(pass *analysis.Pass, call *ast.CallExpr) []*ast.Ident {
	sink := false
	if isPoolMethod(pass, call, "Put") {
		sink = true
	} else if callee := calleeObj(pass, call); callee != nil {
		if _, ok := pass.LookupFact(callee, "sink"); ok {
			sink = true
		}
	}
	if !sink {
		return nil
	}
	var ids []*ast.Ident
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && id.Name != "_" {
			ids = append(ids, id)
		}
	}
	return ids
}

func putEventObjs(pass *analysis.Pass, call *ast.CallExpr) []types.Object {
	var objs []types.Object
	for _, id := range putEventIdents(pass, call) {
		if o := objOf(pass, id); o != nil {
			objs = append(objs, o)
		}
	}
	return objs
}

// isPoolMethod reports whether call invokes sync.Pool's method name.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// freshExpr reports whether e constructs a brand-new value, exempting
// it from the reset-before-Put requirement.
func freshExpr(e ast.Expr) bool {
	switch x := unwrap(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// resettyExpr reports whether storing e into a field clears state:
// slice truncation, a zero composite, nil/false, or a literal.
func resettyExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.SliceExpr, *ast.CompositeLit, *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.Ident:
		return x.Name == "nil" || x.Name == "false"
	}
	return false
}

func resettyName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "reset") || strings.Contains(l, "clear") || strings.Contains(l, "zero")
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// callTargets returns the plain-ident arguments and the receiver root
// of a call — the objects a reset-named call plausibly clears.
func callTargets(pass *analysis.Pass, call *ast.CallExpr) []types.Object {
	var objs []types.Object
	add := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if o := objOf(pass, id); o != nil {
			objs = append(objs, o)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		add(rootIdent(sel.X))
	}
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			add(id)
		}
	}
	return objs
}

func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	params := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := pass.TypesInfo.Defs[name]; o != nil {
					params[o] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return params
}

// unwrap strips parens and type assertions: pool.Get().(*T) is still
// the Get call.
func unwrap(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		ta, ok := e.(*ast.TypeAssertExpr)
		if !ok {
			return e
		}
		e = ta.X
	}
}

// rootIdent returns the leftmost identifier of an lvalue chain
// (x, x.f, x.f[i].g → x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// calleeObj resolves the called function or variable being invoked.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
