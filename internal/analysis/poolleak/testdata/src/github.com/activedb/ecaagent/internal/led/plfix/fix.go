// Package plfix exercises poolleak: its import path sits under the
// pool prefix internal/led.
package plfix

import (
	"sync"

	"plhelper"
)

type buf struct{ bs []byte }

var bufPool = sync.Pool{New: func() any { return new(buf) }}

func use([]byte)    {}
func use2([]string) {}

// The full discipline: get, use, truncate, put.
func roundTrip(p []byte) {
	b := bufPool.Get().(*buf)
	b.bs = append(b.bs, p...)
	use(b.bs)
	b.bs = b.bs[:0]
	bufPool.Put(b)
}

// Reading a pooled value after Put races the next Get.
func useAfterPut(p []byte) {
	b := bufPool.Get().(*buf)
	b.bs = append(b.bs, p...)
	b.bs = b.bs[:0]
	bufPool.Put(b)
	use(b.bs) // want `use of b after Put`
}

// Put on one branch poisons the join: the use races on the may-path.
func condPut(flush bool) {
	b := bufPool.Get().(*buf)
	if flush {
		b.bs = b.bs[:0]
		bufPool.Put(b)
	}
	use(b.bs) // want `use of b after Put`
}

// Reassignment revives the variable.
func putThenReassign() {
	b := bufPool.Get().(*buf)
	b.bs = b.bs[:0]
	bufPool.Put(b)
	b = bufPool.Get().(*buf)
	use(b.bs)
	b.bs = b.bs[:0]
	bufPool.Put(b)
}

// The range head rebinds b each iteration, so the loop-back edge after
// Put does not poison the next iteration's use.
func drain(q chan *buf) {
	for b := range q {
		use(b.bs)
		b.bs = b.bs[:0]
		bufPool.Put(b)
	}
}

// Pooling a value that was never cleared leaks its state to the next
// owner.
func dirtyPut() {
	b := bufPool.Get().(*buf)
	use(b.bs)
	bufPool.Put(b) // want `Put without reset: b goes back to the pool`
}

// A freshly constructed value has nothing to clear.
func primePool() {
	b := &buf{}
	bufPool.Put(b)
}

var global *buf

// Stores outside the function leak pool ownership.
func escapesToGlobal() {
	b := bufPool.Get().(*buf)
	global = b // want `pool value b escapes`
}

func escapesIntoMap(m map[string]*buf) {
	b := bufPool.Get().(*buf)
	m["k"] = b // want `pool value b escapes`
}

// A value from a cross-package source fact is pool-owned too.
func escapesOnChannel(ch chan *plhelper.Scratch) {
	s := plhelper.Get()
	ch <- s // want `pool value s escapes`
}

// The helper's sink fact makes its Put count.
func useAfterHelperPut(s *plhelper.Scratch) {
	plhelper.Put(s)
	use2(s.Keys) // want `use of s after Put`
}

func helperRound() {
	s := plhelper.Get()
	use2(s.Keys)
	plhelper.Put(s)
}

// In-package accessors: localGet exports "source", localPut "sink",
// and the caller is judged through them.
func localGet() *buf { return bufPool.Get().(*buf) }

func localGet2() *buf {
	if v := bufPool.Get(); v != nil {
		return v.(*buf)
	}
	return new(buf)
}

func localPut(b *buf) {
	b.bs = b.bs[:0]
	bufPool.Put(b)
}

func viaLocalWrappers() {
	b := localGet()
	use(b.bs)
	localPut(b)
	b2 := localGet2()
	use(b2.bs)
	localPut(b2)
}

// A deferred Put transfers ownership at exit: uses before the return
// are fine.
func deferredPut(p []byte) {
	b := bufPool.Get().(*buf)
	b.bs = b.bs[:0]
	defer bufPool.Put(b)
	use(b.bs)
}
