// Package plhelper mirrors the pool accessor shapes outside the pool
// target list: nothing here is reported, but Get exports "source" and
// Put exports "sink" — the facts the fixture package consumes.
package plhelper

import "sync"

// Scratch is a recyclable decode scratch, the batchScratch stand-in.
type Scratch struct {
	Keys []string
}

var pool = sync.Pool{New: func() any { return new(Scratch) }}

// Get hands out a pooled scratch (exports "source").
func Get() *Scratch { return pool.Get().(*Scratch) }

// Put clears and recycles a scratch (exports "sink").
func Put(s *Scratch) {
	s.Keys = s.Keys[:0]
	pool.Put(s)
}
