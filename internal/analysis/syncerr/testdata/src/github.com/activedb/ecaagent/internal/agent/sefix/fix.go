// Package sefix exercises syncerr: its import path sits under the durable
// prefix internal/agent.
package sefix

type durableFile struct{}

func (durableFile) Sync() error         { return nil }
func (durableFile) Close() error        { return nil }
func (durableFile) Append(b []byte) error { return nil }

// plainCloser has no Sync method: its Close is best-effort and never
// flagged.
type plainCloser struct{}

func (plainCloser) Close() error { return nil }

type dir struct{}

func (dir) SyncDir() error { return nil }

func discards(f durableFile, p plainCloser, d dir) {
	f.Sync()        // want `durableFile.Sync discards the error`
	f.Append(nil)   // want `durableFile.Append discards the error`
	defer f.Close() // want `durableFile.Close in a defer discards the error`
	go f.Sync()     // want `durableFile.Sync in a go statement discards the error`
	_ = f.Sync()    // want `durableFile.Sync assigns the error to _`
	d.SyncDir()     // want `dir.SyncDir discards the error`
	p.Close()
}

func handled(f durableFile) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
