// Package syncerr forbids discarding the errors that carry the durability
// guarantee. A dropped fsync error is the classic silent-corruption bug:
// the kernel reports the write never reached the platter, the process
// shrugs, and the checkpoint the recovery path will trust is garbage.
//
// In the durable packages (internal/agent, internal/storage) the analyzer
// flags any call whose error result is discarded — an expression
// statement, a `defer`/`go` statement, or an all-blank assignment — when
// the callee is:
//
//   - any method or function named Sync or SyncDir, or
//   - a method named Close or Append whose receiver type also has a
//     Sync() method — i.e. a durable handle (storage.File, the WAL),
//     where Close flushes state that matters, as opposed to, say, an
//     io.ReadCloser whose Close is best-effort.
//
// Calls that return no error are ignored. Genuine best-effort discards
// (e.g. closing an already-failed handle on an error path) take a
// //ecavet:allow syncerr waiver with the justification inline.
package syncerr

import (
	"go/ast"
	"go/types"

	"github.com/activedb/ecaagent/internal/analysis"
)

// DurablePackages lists the packages under enforcement. Exported so
// fixture tests can temporarily extend it.
var DurablePackages = []string{
	"github.com/activedb/ecaagent/internal/agent",
	"github.com/activedb/ecaagent/internal/storage",
	"github.com/activedb/ecaagent/internal/cluster",
}

// Analyzer is the syncerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  "forbid discarding errors from Sync/SyncDir/Close/Append on durable handles",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageTargeted(pass.Pkg.Path(), DurablePackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
				how = "discards the error"
			case *ast.DeferStmt:
				call = st.Call
				how = "in a defer discards the error"
			case *ast.GoStmt:
				call = st.Call
				how = "in a go statement discards the error"
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 || !allBlank(st.Lhs) {
					return true
				}
				call, _ = st.Rhs[0].(*ast.CallExpr)
				how = "assigns the error to _"
			default:
				return true
			}
			if call == nil || pass.InTestFile(call.Pos()) {
				return true
			}
			name, durable := durableCallee(pass, call)
			if !durable {
				return true
			}
			pass.Reportf(call.Pos(),
				"durability: call to %s %s; a dropped sync/close error hides data loss — handle it or waive with //ecavet:allow syncerr <reason>",
				name, how)
			return true
		})
	}
	return nil
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// durableCallee reports whether call targets a durability-relevant method
// that returns an error, and names it for the message.
func durableCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !returnsError(obj) {
		return "", false
	}
	switch obj.Name() {
	case "Sync", "SyncDir":
		return calleeLabel(pass, sel, obj), true
	case "Close", "Append":
		recv := obj.Type().(*types.Signature).Recv()
		if recv != nil && hasSyncMethod(recv.Type()) {
			return calleeLabel(pass, sel, obj), true
		}
	}
	return "", false
}

func returnsError(obj *types.Func) bool {
	errType := types.Universe.Lookup("error").Type()
	res := obj.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// hasSyncMethod reports whether t (or *t) has a Sync method — the marker
// distinguishing durable handles from incidental io.Closers.
func hasSyncMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		if m, _, _ := types.LookupFieldOrMethod(typ, true, nil, "Sync"); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// calleeLabel renders "<recvType>.<method>" for the diagnostic.
func calleeLabel(pass *analysis.Pass, sel *ast.SelectorExpr, obj *types.Func) string {
	if tv, ok := pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Name()
}
