package syncerr_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/syncerr"
)

func TestSyncErr(t *testing.T) {
	analysistest.Run(t, "testdata", syncerr.Analyzer,
		"github.com/activedb/ecaagent/internal/agent/sefix")
}
