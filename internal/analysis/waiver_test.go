package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/analysistest"
)

// badcall flags every call to a function literally named bad — a minimal
// analyzer for driving the waiver machinery.
var badcall = &analysis.Analyzer{
	Name: "badcall",
	Doc:  "flags calls to bad()",
	Run: func(pass *analysis.Pass) error {
		analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.InTestFile(call.Pos()) {
				return
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
				pass.Reportf(call.Pos(), "call to bad")
			}
		})
		return nil
	},
}

// TestWaiverFixture drives the full pipeline over a fixture: an unwaived
// finding survives, both waiver placements suppress, a stale waiver is
// itself reported.
func TestWaiverFixture(t *testing.T) {
	analysistest.RunWithWaivers(t, "testdata", []*analysis.Analyzer{badcall}, "waiverfix")
}

// parseOne wraps src in a file and returns its fset + file.
func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestWaiverHygiene covers the shapes a fixture cannot express with
// same-line want comments: a waiver with no reason is malformed, and a
// waiver naming an analyzer the suite does not know is reported.
func TestWaiverHygiene(t *testing.T) {
	src := `package p

func f() {
	//ecavet:allow
	//ecavet:allow nosuchanalyzer with a perfectly fine reason
}
`
	fset, f := parseOne(t, src)
	ws := analysis.CollectWaivers(fset, []*ast.File{f})
	if len(ws) != 2 {
		t.Fatalf("collected %d waivers, want 2", len(ws))
	}
	out := analysis.ApplyWaivers(fset, nil, ws, map[string]bool{"badcall": true})
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(out), out)
	}
	if !strings.Contains(out[0].Message, "malformed waiver") {
		t.Errorf("first diagnostic = %q, want malformed waiver", out[0].Message)
	}
	if !strings.Contains(out[1].Message, "unknown analyzer nosuchanalyzer") {
		t.Errorf("second diagnostic = %q, want unknown analyzer", out[1].Message)
	}
	for _, d := range out {
		if d.Analyzer != analysis.WaiverAnalyzerName {
			t.Errorf("waiver diagnostics must come from the waiverstale analyzer, got %q", d.Analyzer)
		}
	}
}

// TestWaiverSuppression checks the positional rule directly: same line
// and line-above suppress; two lines above does not.
func TestWaiverSuppression(t *testing.T) {
	src := `package p

func f() {
	//ecavet:allow badcall two lines above the finding, too far
	_ = 0
}
`
	fset, f := parseOne(t, src)
	ws := analysis.CollectWaivers(fset, []*ast.File{f})
	diag := analysis.Diagnostic{Pos: f.End() - 1, Analyzer: "badcall", Message: "call to bad"}
	out := analysis.ApplyWaivers(fset, []analysis.Diagnostic{diag}, ws, map[string]bool{"badcall": true})
	// The finding is on the closing-brace line (6); the waiver on line 4
	// is out of range, so both the finding and the now-stale waiver
	// survive.
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want finding + stale waiver: %+v", len(out), out)
	}
}
