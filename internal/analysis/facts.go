package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Facts is the cross-package fact store — the mechanism that lets an
// analyzer learn something about an *imported* function without
// re-analyzing its source (mirroring x/tools' analysis facts, string-
// valued and keyed by package-qualified object). An analyzer exports a
// fact on an object it analyzed (Pass.ExportFact) and looks facts up on
// objects its package references (Pass.LookupFact); the drivers carry
// the store across packages in dependency order:
//
//   - the unitchecker serializes the store into the vet facts file
//     (VetxOutput) cmd/go caches per package, and seeds it from the
//     dependency facts files in PackageVetx;
//   - the go-list driver analyzes in `go list -deps` order (dependencies
//     first) and threads one in-memory store through the walk, running a
//     facts-only pass over in-module packages that are dependencies of
//     the requested patterns;
//   - the analysistest loader runs a facts-only pass over every fixture
//     package as it loads, so fixture imports behave like real imports.
//
// Facts are scoped by analyzer name, so two analyzers can hang a fact of
// the same name on the same object without colliding.
type Facts struct {
	m map[factKey]string
}

type factKey struct {
	Analyzer string
	Object   string // ObjectKey of the fact's subject
	Name     string
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]string)} }

func (f *Facts) put(analyzer, object, name, value string) {
	if object == "" {
		return
	}
	f.m[factKey{analyzer, object, name}] = value
}

func (f *Facts) get(analyzer, object, name string) (string, bool) {
	v, ok := f.m[factKey{analyzer, object, name}]
	return v, ok
}

// Merge copies every fact from other into f (other wins on collision).
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	for k, v := range other.m {
		f.m[k] = v
	}
}

// Len reports the number of stored facts.
func (f *Facts) Len() int { return len(f.m) }

// factRecord is the serialized form of one fact.
type factRecord struct {
	Analyzer string
	Object   string
	Name     string
	Value    string `json:",omitempty"`
}

// Encode renders the whole store as deterministic JSON (sorted records),
// the payload of the unitchecker's facts file. Encoding the cumulative
// store — own facts plus everything inherited from dependencies — keeps
// the driver simple: a dependent only ever needs its direct
// dependencies' files.
func (f *Facts) Encode() []byte {
	recs := make([]factRecord, 0, len(f.m))
	for k, v := range f.m {
		recs = append(recs, factRecord{Analyzer: k.Analyzer, Object: k.Object, Name: k.Name, Value: v})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Name < b.Name
	})
	data, err := json.Marshal(recs)
	if err != nil { // unreachable: plain strings
		return []byte("[]")
	}
	return data
}

// DecodeFacts parses a facts file. Empty (or whitespace-only) input is a
// valid empty store — pre-facts ecavet versions wrote zero-byte files,
// and cmd/go may hand those back from its cache.
func DecodeFacts(data []byte) (*Facts, error) {
	f := NewFacts()
	trimmed := false
	for _, c := range data {
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			trimmed = true
			break
		}
	}
	if !trimmed {
		return f, nil
	}
	var recs []factRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("decoding facts: %w", err)
	}
	for _, r := range recs {
		f.put(r.Analyzer, r.Object, r.Name, r.Value)
	}
	return f, nil
}

// ObjectKey names a package-level object (or method) stably across
// compilations: "pkgpath.Name" for functions, vars and types,
// "pkgpath.Recv.Name" for methods. Objects without a package (builtins,
// locals via nil) key to "" and are silently unexportable.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
			}
			return "" // method on an unnamed receiver (interface literal)
		}
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// ExportFact records a fact about obj under the running analyzer's
// scope. Facts on objects that cannot be keyed (no package) are dropped.
func (p *Pass) ExportFact(obj types.Object, name, value string) {
	p.Facts.put(p.Analyzer.Name, ObjectKey(obj), name, value)
}

// LookupFact retrieves a fact previously exported for obj by this same
// analyzer — in this package's pass or in any dependency's.
func (p *Pass) LookupFact(obj types.Object, name string) (string, bool) {
	return p.Facts.get(p.Analyzer.Name, ObjectKey(obj), name)
}
