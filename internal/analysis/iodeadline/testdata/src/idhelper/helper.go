// Package idhelper sits outside the transport target list: nothing here
// is reported, but its helpers export facts — ReadMsg blocks on its conn
// argument (callers owe the deadline), Prepare sets one (calling it
// satisfies the rule).
package idhelper

import (
	"net"
	"time"
)

// ReadMsg performs a blocking read on conn without deadlining it.
func ReadMsg(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf)
}

// Prepare deadlines conn for both directions.
func Prepare(conn net.Conn, d time.Duration) error {
	return conn.SetDeadline(time.Now().Add(d))
}

// SendAll deadlines and writes: self-contained, no fact, no report.
func SendAll(conn net.Conn, p []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := conn.Write(p)
	return err
}
