// Package idfix exercises iodeadline: its import path sits under the
// transport prefix internal/cluster.
package idfix

import (
	"bufio"
	"net"
	"time"

	"idhelper"
)

func rawRead(conn net.Conn, buf []byte) {
	conn.Read(buf) // want `blocking read: Read on conn has no reachable SetReadDeadline`
}

func deadlinedRead(conn net.Conn, buf []byte) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	conn.Read(buf)
}

// A deadline set once before a loop reaches every iteration's write.
func loopWrite(conn net.Conn, p []byte) {
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	for i := 0; i < 3; i++ {
		conn.Write(p)
	}
}

// The wrong direction does not satisfy: a read deadline leaves writes
// unbounded.
func wrongDirection(conn net.Conn, p []byte) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	conn.Write(p) // want `blocking write: Write on conn has no reachable SetWriteDeadline`
}

// SetDeadline covers both directions.
func bothDirections(conn net.Conn, buf []byte) {
	conn.SetDeadline(time.Now().Add(time.Second))
	conn.Read(buf)
	conn.Write(buf)
}

// A bufio reader derived from the conn inherits its obligation.
func derivedReader(conn net.Conn) {
	r := bufio.NewReader(conn)
	r.ReadByte() // want `blocking read: ReadByte via r on conn has no reachable SetReadDeadline`
}

func derivedReaderDeadlined(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	r := bufio.NewReader(conn)
	r.ReadByte()
}

// Passing a derived reader to any function is a blocking read on the
// underlying conn.
func derivedReaderArg(conn net.Conn, buf []byte) {
	r := bufio.NewReader(conn)
	fill(r, buf) // want `blocking read: fill\(r\) on conn has no reachable SetReadDeadline`
}

func fill(r *bufio.Reader, p []byte) {
	r.Read(p)
}

// Cross-package: the helper's "blocks" fact carries the obligation to
// this call site; its "deadlines" fact satisfies it.
func helperRead(conn net.Conn, buf []byte) {
	idhelper.ReadMsg(conn, buf) // want `blocking read: ReadMsg\(conn\) has no reachable SetReadDeadline on conn`
}

func helperPrepared(conn net.Conn, buf []byte) {
	idhelper.Prepare(conn, time.Second)
	idhelper.ReadMsg(conn, buf)
}

// Self-contained helpers export no obligation.
func helperSend(conn net.Conn, p []byte) {
	idhelper.SendAll(conn, p)
}

// A deadline on an unreachable path does not satisfy.
func unreachableDeadline(conn net.Conn, buf []byte, never bool) {
	if never {
		return
	}
	conn.Read(buf) // want `blocking read: Read on conn has no reachable SetReadDeadline`
	return
	conn.SetReadDeadline(time.Now().Add(time.Second)) //nolint:govet
}
