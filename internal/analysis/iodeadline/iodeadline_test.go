package iodeadline_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/iodeadline"
)

func TestIODeadline(t *testing.T) {
	analysistest.Run(t, "testdata", iodeadline.Analyzer,
		"github.com/activedb/ecaagent/internal/cluster/idfix")
}
