// Package iodeadline requires a reachable deadline before blocking conn
// I/O in the transport packages. A read or write on a net.Conn with no
// deadline blocks forever when the peer wedges: the sync-replication
// sender hangs mid-epoch, the ack drain never notices the standby died,
// and failover stalls on a TCP stack that will not time out for hours.
// PR 6's chaos suite catches this probabilistically; the analyzer makes
// it mechanical.
//
// The check is flow-sensitive: a blocking operation on conn value X
// needs a matching-direction deadline call on X — SetReadDeadline for
// reads, SetWriteDeadline for writes, SetDeadline for either — in a
// block from which the operation is reachable (or earlier in the same
// block). "Blocking operation" covers direct Read/Write-family method
// calls on conn-typed values (anything with a SetDeadline method, save
// *os.File), I/O through a bufio.Reader/Writer derived from a conn in
// the same function, and calls to helpers known to block on a conn
// argument.
//
// Helpers are known through two facts, computed for every package and
// fixpointed within one: a function that performs unsatisfied blocking
// I/O on a conn parameter exports "blocks" (read/write/both) — its
// callers inherit the obligation; a function that sets a deadline on a
// conn parameter exports "deadlines" — calling it counts as setting the
// deadline. That is how tds.ReadPacket(conn) surfaces in
// internal/server, and how a shared prepareConn helper satisfies the
// rule at every call site.
//
// Deliberately idle endpoints (a session reader between client
// commands, a UDP listener) carry //ecavet:allow iodeadline waivers
// naming the unblocking mechanism (usually: Close() on shutdown).
package iodeadline

import (
	"go/ast"
	"go/types"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/cfg"
)

// ConnPackages lists the transport packages under enforcement. Exported
// so fixture tests can temporarily extend it.
var ConnPackages = []string{
	"github.com/activedb/ecaagent/internal/cluster",
	"github.com/activedb/ecaagent/internal/server",
}

// Analyzer is the iodeadline pass.
var Analyzer = &analysis.Analyzer{
	Name: "iodeadline",
	Doc:  "blocking conn reads/writes in the transport packages need a reachable SetDeadline",
	Run:  run,
}

// Direction bitmask.
const (
	dirRead = 1 << iota
	dirWrite
)

func dirString(d int) string {
	switch d {
	case dirRead:
		return "read"
	case dirWrite:
		return "write"
	default:
		return "both"
	}
}

func parseDir(s string) int {
	switch s {
	case "read":
		return dirRead
	case "write":
		return dirWrite
	default:
		return dirRead | dirWrite
	}
}

var readMethods = map[string]bool{
	"Read": true, "ReadFrom": true, "ReadFromUDP": true, "ReadMsgUDP": true,
}
var writeMethods = map[string]bool{
	"Write": true, "WriteTo": true, "WriteToUDP": true, "WriteMsgUDP": true,
}

func run(pass *analysis.Pass) error {
	targeted := analysis.PackageTargeted(pass.Pkg.Path(), ConnPackages)

	// Fixpoint: helper facts computed in one round enable call-site
	// detection in the next (WriteResults → WritePacket → conn.Write).
	// Reports are emitted only on the final, stable round. The "blocks"
	// obligation is exported only from untargeted packages: in a targeted
	// one the operation is reported at its own site (and fixed or waived
	// there), so propagating it to callers would demand two waivers for
	// one decision.
	for {
		before := pass.Facts.Len()
		analyzeAll(pass, false, !targeted)
		if pass.Facts.Len() == before {
			break
		}
	}
	if targeted {
		analyzeAll(pass, true, false)
	}
	return nil
}

// analyzeAll runs the per-function analysis over every function in the
// package, exporting helper facts; when report is set it also emits
// diagnostics for unsatisfied operations.
func analyzeAll(pass *analysis.Pass, report, exportBlocks bool) {
	analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
		var body *ast.BlockStmt
		var params *ast.FieldList
		var declObj types.Object
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body, params = fn.Body, fn.Type.Params
			declObj = pass.TypesInfo.Defs[fn.Name]
		case *ast.FuncLit:
			body, params = fn.Body, fn.Type.Params
		default:
			return
		}
		if body == nil || pass.InTestFile(body.Pos()) {
			return
		}
		analyzeFunc(pass, body, params, declObj, report, exportBlocks)
	})
}

// event is a deadline-setting site; op is a blocking I/O site.
type event struct {
	expr  string // rendering of the conn value
	dir   int
	block *cfg.Block
	idx   int
}

type op struct {
	expr  string
	dir   int
	block *cfg.Block
	idx   int
	pos   ast.Node
	desc  string
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt, params *ast.FieldList, declObj types.Object, report, exportBlocks bool) {
	g := cfg.New(body)

	// Conn-derived bufio aliases: object of r in `r := bufio.NewReader(conn)`
	// → (rendered conn, direction).
	type alias struct {
		expr string
		dir  int
	}
	aliases := map[types.Object]alias{}
	g.Visit(func(_ *cfg.Block, _ int, n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok || pkgID.Name != "bufio" {
			return
		}
		var dir int
		switch sel.Sel.Name {
		case "NewReader", "NewReaderSize":
			dir = dirRead
		case "NewWriter", "NewWriterSize":
			dir = dirWrite
		default:
			return
		}
		src := call.Args[0]
		if !connish(pass, src) {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			aliases[obj] = alias{types.ExprString(src), dir}
		}
	})

	var events []event
	var ops []op
	g.Visit(func(b *cfg.Block, i int, n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// Direct method calls: X.SetDeadline / X.Read / alias.ReadByte...
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			if connish(pass, sel.X) {
				xs := types.ExprString(sel.X)
				switch name {
				case "SetDeadline":
					events = append(events, event{xs, dirRead | dirWrite, b, i})
					return
				case "SetReadDeadline":
					events = append(events, event{xs, dirRead, b, i})
					return
				case "SetWriteDeadline":
					events = append(events, event{xs, dirWrite, b, i})
					return
				}
				switch {
				case readMethods[name]:
					ops = append(ops, op{xs, dirRead, b, i, call, name + " on " + xs})
					return
				case writeMethods[name]:
					ops = append(ops, op{xs, dirWrite, b, i, call, name + " on " + xs})
					return
				}
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if a, ok := aliases[pass.TypesInfo.Uses[id]]; ok && sel.X != nil {
					// Any method on a conn-derived bufio value blocks in
					// the alias's direction (Flush, Read, ReadByte, ...).
					ops = append(ops, op{a.expr, a.dir, b, i, call, name + " via " + id.Name + " on " + a.expr})
					return
				}
			}
		}
		// Calls to fact-carrying helpers, and calls passing an alias.
		callee := calleeObj(pass, call)
		var blocksDir, deadlinesDir int
		if callee != nil {
			if v, ok := pass.LookupFact(callee, "blocks"); ok {
				blocksDir = parseDir(v)
			}
			if v, ok := pass.LookupFact(callee, "deadlines"); ok {
				deadlinesDir = parseDir(v)
			}
		}
		for _, arg := range call.Args {
			if connish(pass, arg) {
				xs := types.ExprString(arg)
				if deadlinesDir != 0 {
					events = append(events, event{xs, deadlinesDir, b, i})
				}
				if blocksDir != 0 {
					ops = append(ops, op{xs, blocksDir, b, i, call,
						calleeName(call) + "(" + xs + ")"})
				}
				continue
			}
			if id, ok := arg.(*ast.Ident); ok {
				if a, ok := aliases[pass.TypesInfo.Uses[id]]; ok {
					ops = append(ops, op{a.expr, a.dir, b, i, call,
						calleeName(call) + "(" + id.Name + ") on " + a.expr})
				}
			}
		}
	})

	if len(ops) == 0 {
		if declObj != nil {
			exportDeadlineFact(pass, declObj, params, events)
		}
		return
	}

	// Reachability from each event block, lazily.
	reach := map[*cfg.Block]map[*cfg.Block]bool{}
	satisfied := func(o op) bool {
		for _, e := range events {
			if e.expr != o.expr || e.dir&o.dir == 0 {
				continue
			}
			if e.block == o.block && e.idx <= o.idx {
				return true
			}
			r, ok := reach[e.block]
			if !ok {
				r = g.ReachableFrom(e.block)
				reach[e.block] = r
			}
			if r[o.block] {
				return true
			}
		}
		return false
	}

	paramSet := paramObjects(pass, params)
	var blocksDirs int
	for _, o := range ops {
		if satisfied(o) {
			continue
		}
		if _, ok := paramRoot(o.expr, paramSet); ok {
			// The caller owns the deadline for a conn parameter the
			// function itself never deadlines: export the obligation.
			blocksDirs |= o.dir
		}
		if report {
			pass.Reportf(o.pos.Pos(),
				"blocking %s: %s has no reachable Set%sDeadline on %s — set one, or waive with //ecavet:allow iodeadline <reason>",
				dirString(o.dir), o.desc, deadlineName(o.dir), o.expr)
		}
	}
	if declObj != nil {
		if exportBlocks && blocksDirs != 0 {
			pass.ExportFact(declObj, "blocks", dirString(blocksDirs))
		}
		exportDeadlineFact(pass, declObj, params, events)
	}
}

func deadlineName(dir int) string {
	switch dir {
	case dirRead:
		return "Read"
	case dirWrite:
		return "Write"
	default:
		return ""
	}
}

// exportDeadlineFact publishes "deadlines" when the function sets a
// deadline on one of its own conn parameters — calling it then counts
// as setting the deadline at every call site.
func exportDeadlineFact(pass *analysis.Pass, declObj types.Object, params *ast.FieldList, events []event) {
	paramSet := paramObjects(pass, params)
	var dirs int
	for _, e := range events {
		if _, ok := paramRoot(e.expr, paramSet); ok {
			dirs |= e.dir
		}
	}
	if dirs != 0 {
		pass.ExportFact(declObj, "deadlines", dirString(dirs))
	}
}

// paramObjects renders the function's parameter names.
func paramObjects(pass *analysis.Pass, params *ast.FieldList) map[string]bool {
	set := map[string]bool{}
	if params == nil {
		return set
	}
	for _, f := range params.List {
		for _, name := range f.Names {
			set[name.Name] = true
		}
	}
	return set
}

// paramRoot reports whether the rendered conn expression is (or roots
// at) a function parameter: "conn" or "conn.something".
func paramRoot(expr string, params map[string]bool) (string, bool) {
	root := expr
	for i := 0; i < len(expr); i++ {
		if expr[i] == '.' || expr[i] == '[' {
			root = expr[:i]
			break
		}
	}
	if params[root] {
		return root, true
	}
	return "", false
}

// connish reports whether e's type carries a SetDeadline method — the
// marker for deadline-capable endpoints (net.Conn implementations and
// the net.Conn interface itself). *os.File also has one, but file I/O
// deadlines are exotic and the durable path owns files — excluded.
func connish(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if named := namedOf(t); named != nil {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return false
		}
	}
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		if m, _, _ := types.LookupFieldOrMethod(typ, true, nil, "SetDeadline"); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// calleeObj resolves the called function's object, for fact lookup.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
