// Package waiverstale keeps the waiver ledger honest: an
// //ecavet:allow waiver that is malformed, names an analyzer the
// suite does not know,
// or suppresses nothing (the finding it excused was fixed, moved, or
// never existed) is itself a diagnostic. Without it, waivers rot —
// the comment outlives the code it excused and silently licenses the
// next, unrelated finding on the same line.
//
// The analyzer is a registration point: its detection logic lives in the
// drivers' ApplyWaivers step (internal/analysis/waiver.go), because
// staleness is only decidable after every other analyzer has run over
// the package. Registering it in the suite gives those synthetic
// diagnostics a first-class name — in output, in `ecavet -waivers`
// audits, and in the known-analyzer set itself.
package waiverstale

import (
	"github.com/activedb/ecaagent/internal/analysis"
)

// Analyzer is the waiverstale pass. Run reports nothing directly; see
// the package comment.
var Analyzer = &analysis.Analyzer{
	Name: analysis.WaiverAnalyzerName,
	Doc:  "report malformed, unknown-analyzer and stale //ecavet:allow waivers",
	Run:  func(*analysis.Pass) error { return nil },
}
