package waiverstale_test

import (
	"go/ast"
	"testing"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/waiverstale"
)

// slowcall flags calls to functions named slow — scaffolding that gives
// the fixture something real to waive (and to leave stale).
var slowcall = &analysis.Analyzer{
	Name: "slowcall",
	Doc:  "test analyzer: flags calls to slow()",
	Run: func(pass *analysis.Pass) error {
		analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.InTestFile(call.Pos()) {
				return
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "slow" {
				pass.Reportf(call.Pos(), "call to slow")
			}
		})
		return nil
	},
}

// TestWaiverStale drives the post-waiver pipeline: a live waiver is
// silent (non-report), a stale one and an unknown-analyzer one are
// flagged under the waiverstale name (report).
func TestWaiverStale(t *testing.T) {
	analysistest.RunWithWaivers(t, "testdata",
		[]*analysis.Analyzer{slowcall, waiverstale.Analyzer}, "wsfix")
}
