// Package wsfix exercises waiverstale through the full waiver pipeline.
package wsfix

func slow() {}

func waived() {
	slow() //ecavet:allow slowcall benchmarked, cold path
}

func stale() {
	// The next waiver suppresses nothing: the slow() call it once
	// excused is gone.
	//ecavet:allow slowcall the finding was fixed long ago // want `stale waiver: no slowcall finding`
	fast()
}

func unknownName() {
	//ecavet:allow nosuchpass reasons galore // want `waiver names unknown analyzer nosuchpass`
	fast()
}

func fast() {}
