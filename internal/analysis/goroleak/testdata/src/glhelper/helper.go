// Package glhelper sits outside the daemon target list, so nothing here
// is reported — but Forever's "noexit" fact is exported for the fixture
// package that spawns it.
package glhelper

// Forever never returns.
func Forever() {
	for {
		work()
	}
}

// Stoppable drains a closable channel.
func Stoppable(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func work() {}
