// Package glfix exercises goroleak: its import path sits under the
// daemon prefix internal/server.
package glfix

import (
	"time"

	"glhelper"
)

type daemon struct {
	done chan struct{}
	work chan int
	tick *time.Ticker
}

// spinForever has no stop path at all.
func (d *daemon) spinForever() {
	for {
		step()
	}
}

// tickForever ranges a ticker channel that is never closed: the range
// can never be exhausted, so the loop-exit edge is a lie.
func (d *daemon) tickForever() {
	for range d.tick.C {
		step()
	}
}

// selectStop exits through the done channel.
func (d *daemon) selectStop() {
	for {
		select {
		case <-d.done:
			return
		case v := <-d.work:
			_ = v
		}
	}
}

// drain exits when the producer closes the channel.
func (d *daemon) drain() {
	for v := range d.work {
		_ = v
	}
}

func (d *daemon) start() {
	go d.spinForever() // want `goroutine leak: spinForever has no stop path`
	go d.tickForever() // want `goroutine leak: tickForever has no stop path`
	go d.selectStop()
	go d.drain()
	go glhelper.Forever() // want `goroutine leak: Forever has no stop path`
	go glhelper.Stoppable(d.work)

	go func() { // want `goroutine leak: func literal has no stop path`
		for range time.Tick(time.Second) {
			step()
		}
	}()
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				step()
			case <-d.done:
				return
			}
		}
	}()
	go func() {
		step() // straight-line goroutines terminate on their own
	}()
}

func step() {}
