// Package goroleak demands a stop path for every goroutine the daemon
// packages spawn. A goroutine whose function cannot reach its own return
// — a bare `for { work() }`, or a range over a ticker channel that is
// never closed — outlives every shutdown: Close() returns, the test
// binary's leak detector fires (or worse, does not), and the standby
// keeps shipping to a peer that is gone. The paper's agent is a
// long-lived mediator; its goroutines must all be stoppable.
//
// The check is control-flow, not convention: the spawned function's CFG
// must be able to reach Exit. A `select { case <-done: return ... }`, an
// error return inside an accept loop, or a `for range ch` over a channel
// the producer closes all count — the graph has an edge to Exit. Two
// liveness lies are corrected first: `for range time.Tick(d)` and
// `for range t.C` on a time.Ticker get their loop-exhausted edge removed,
// because those channels are never closed and the range can never end.
//
// Cross-package spawns work through facts: every function whose graph
// cannot reach Exit exports a "noexit" fact, so `go pkg.Forever()` is
// flagged at the go statement even though Forever's body was analyzed in
// a dependency pass.
package goroleak

import (
	"go/ast"
	"go/types"

	"github.com/activedb/ecaagent/internal/analysis"
	"github.com/activedb/ecaagent/internal/analysis/cfg"
)

// GoroPackages lists the long-lived daemon packages under enforcement.
// Exported so fixture tests can temporarily extend it.
var GoroPackages = []string{
	"github.com/activedb/ecaagent/cmd/ecaagent",
	"github.com/activedb/ecaagent/internal/agent",
	"github.com/activedb/ecaagent/internal/cluster",
	"github.com/activedb/ecaagent/internal/server",
	"github.com/activedb/ecaagent/internal/led",
	"github.com/activedb/ecaagent/internal/ged",
}

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine needs a stop path: its function must be able to reach return",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Phase 1: export "noexit" facts for every declared function that can
	// never terminate, in every package — dependents see them when they
	// spawn these functions with go.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if !canStop(pass, cfg.New(fd.Body)) {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					pass.ExportFact(obj, "noexit", "true")
				}
			}
		}
	}

	// Phase 2: report go statements spawning unstoppable functions, in
	// the daemon packages only.
	if !analysis.PackageTargeted(pass.Pkg.Path(), GoroPackages) {
		return nil
	}
	analysis.WalkFunctions(pass.Files, func(n ast.Node, _ []ast.Node) {
		gs, ok := n.(*ast.GoStmt)
		if !ok || pass.InTestFile(gs.Pos()) {
			return
		}
		switch fun := gs.Call.Fun.(type) {
		case *ast.FuncLit:
			if !canStop(pass, cfg.New(fun.Body)) {
				pass.Reportf(gs.Pos(),
					"goroutine leak: func literal has no stop path (cannot reach return) — add a done channel, context cancel, or closable range, or waive with //ecavet:allow goroleak <reason>")
			}
		default:
			var id *ast.Ident
			switch f := fun.(type) {
			case *ast.Ident:
				id = f
			case *ast.SelectorExpr:
				id = f.Sel
			default:
				return
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return
			}
			if _, noexit := pass.LookupFact(obj, "noexit"); noexit {
				pass.Reportf(gs.Pos(),
					"goroutine leak: %s has no stop path (cannot reach return) — add a done channel, context cancel, or closable range, or waive with //ecavet:allow goroleak <reason>",
					id.Name)
			}
		}
	})
	return nil
}

// canStop reports whether the graph can reach Exit from Entry, after
// removing the loop-exhausted edge from range heads over channels that
// are never closed (time.Tick, time.Ticker.C).
func canStop(pass *analysis.Pass, g *cfg.Graph) bool {
	seen := map[*cfg.Block]bool{g.Entry: true}
	stack := []*cfg.Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == g.Exit {
			return true
		}
		poisoned := b.Kind == "range.head" && rangesForever(pass, b)
		for _, s := range b.Succs {
			if poisoned && s.Kind != "range.body" {
				continue // the "range exhausted" edge is a lie here
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// rangesForever reports whether the range head's ranged expression is a
// channel that is never closed: a time.Tick(...) call or the C field of
// a time.Ticker.
func rangesForever(pass *analysis.Pass, head *cfg.Block) bool {
	if len(head.Nodes) == 0 {
		return false
	}
	x, ok := head.Nodes[0].(ast.Expr)
	if !ok {
		return false
	}
	switch e := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Tick" {
				return true
			}
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		if tv, ok := pass.TypesInfo.Types[e.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Ticker"
			}
		}
	}
	return false
}
