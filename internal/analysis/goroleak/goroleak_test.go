package goroleak_test

import (
	"testing"

	"github.com/activedb/ecaagent/internal/analysis/analysistest"
	"github.com/activedb/ecaagent/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer,
		"github.com/activedb/ecaagent/internal/server/glfix")
}
