package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
)

// The standalone driver: load packages via `go list -deps -export -json`
// and analyze every non-dependency match from source. Imports resolve
// through the export data `go list -export` makes the toolchain produce,
// so no source beyond the analyzed package is ever re-type-checked —
// exactly how the vettool mode works, minus cmd/go orchestrating it.

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// goList runs `go list` and decodes its JSON stream.
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// CheckPackages loads the packages matching the `go list` patterns and
// runs the analyzers (with waiver filtering) over each non-dependency,
// non-standard-library match. It returns all surviving diagnostics in one
// position-sorted slice.
func CheckPackages(patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, nil, err
	}
	exportFiles := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, nil, exportFiles)
	var all []Diagnostic
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, f)
		}
		files, err := ParseFiles(fset, names)
		if err != nil {
			return nil, nil, err
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp, goVersion)
		if err != nil {
			return nil, nil, err
		}
		diags, err := RunWithWaivers(pkg, analyzers)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(fset, all)
	return all, fset, nil
}
