package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// The standalone driver: load packages via `go list -deps -export -json`
// and analyze every non-dependency match from source. Imports resolve
// through the export data `go list -export` makes the toolchain produce,
// so no source beyond the analyzed package is ever re-type-checked —
// exactly how the vettool mode works, minus cmd/go orchestrating it.
//
// `go list -deps` emits dependencies before dependents, which is exactly
// the order the fact store needs: one in-memory store threads through the
// walk, in-module dependency (DepOnly) packages get a facts-only pass so
// their exported-function facts are visible when their dependents are
// analyzed, and requested packages get the full waiver-filtered run.

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// goList runs `go list` and decodes its JSON stream. With export set it
// lists transitive dependencies and builds export data (the analysis
// loader's mode); without, it is a cheap source-file listing of just the
// matched packages (the waiver lister's mode).
func goList(patterns []string, export bool) ([]*listPackage, error) {
	args := []string{"list"}
	if export {
		args = append(args, "-deps", "-export")
	}
	args = append(args, "-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// CheckPackages loads the packages matching the `go list` patterns and
// runs the analyzers (with waiver filtering) over each non-dependency,
// non-standard-library match. It returns all surviving diagnostics in one
// position-sorted slice.
func CheckPackages(patterns []string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	pkgs, err := goList(patterns, true)
	if err != nil {
		return nil, nil, err
	}
	exportFiles := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, nil, exportFiles)
	facts := NewFacts()
	var all []Diagnostic
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.DepOnly && p.Module == nil {
			continue // dependency outside any module: nothing to analyze
		}
		names := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, f)
		}
		files, err := ParseFiles(fset, names)
		if err != nil {
			return nil, nil, err
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp, goVersion)
		if err != nil {
			return nil, nil, err
		}
		if p.DepOnly {
			// Facts-only pass: the package was not requested, so its
			// diagnostics are not this run's business, but its exported
			// facts are its dependents'.
			if _, err := RunFacts(pkg, analyzers, facts); err != nil {
				return nil, nil, err
			}
			continue
		}
		diags, err := RunFactsWithWaivers(pkg, analyzers, facts)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(fset, all)
	return all, fset, nil
}

// ListWaivers parses the packages matching the patterns (source only —
// no type checking, no export data) and returns every waiver comment
// they contain, sorted by position. This backs `ecavet -waivers`,
// the audit listing DESIGN.md's waiver table is generated from.
func ListWaivers(patterns []string) ([]Waiver, error) {
	pkgs, err := goList(patterns, false)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var all []Waiver
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			names[i] = filepath.Join(p.Dir, f)
		}
		files, err := ParseFiles(fset, names)
		if err != nil {
			return nil, err
		}
		all = append(all, CollectWaivers(fset, files)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return all, nil
}
