// Package factuse consumes facts exported while loading its fixture
// dependency factdep.
package factuse

import "factdep"

// MarkedLocal also carries the fact — the same-package case.
func MarkedLocal() {}

func use() {
	factdep.MarkedDep() // want `call to marked function MarkedDep`
	factdep.Plain()
	MarkedLocal() // want `call to marked function MarkedLocal`
}
