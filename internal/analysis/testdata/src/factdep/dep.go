// Package factdep exports a function the marked test analyzer hangs a
// fact on; factuse imports it to prove facts cross fixture packages.
package factdep

// MarkedDep carries the "marked" fact.
func MarkedDep() {}

// Plain does not.
func Plain() {}
