// Package waiverfix exercises the //ecavet:allow protocol end to end with
// the badcall test analyzer (it flags every call to bad()).
package waiverfix

func bad() {}

func unwaived() {
	bad() // want `call to bad`
}

func waivedSameLine() {
	bad() //ecavet:allow badcall exercising the trailing-waiver form
}

func waivedLineAbove() {
	//ecavet:allow badcall exercising the line-above form
	bad()
}

func stale() {
	//ecavet:allow badcall nothing left to suppress // want `stale waiver: no badcall finding`
}
