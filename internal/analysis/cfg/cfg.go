// Package cfg builds intra-procedural control-flow graphs over go/ast —
// ecavet's second analysis tier. Where the PR 5 analyzers reasoned
// positionally ("a Sync call textually before the Rename"), the tier-2
// analyzers (fencedwrite, poolleak, goroleak, iodeadline) ask flow
// questions: does a Validate call *reach* this Exec, can this goroutine's
// function *exit*, is a pooled value used on a path *after* its Put. A
// Graph answers those with basic blocks and edges for if/for/range/
// switch/select/goto/labeled break/continue, plus the non-local exits:
// return, panic and the never-returning terminators (os.Exit, log.Fatal*)
// all edge to the synthetic Exit block.
//
// The graph is deliberately syntactic: one block holds a maximal run of
// statements with one entry, edges are possible successions, and no
// attempt is made to prune infeasible branches. Expressions stay inside
// their statement node — analyzers scan a block's Nodes with Visit (which
// skips nested function literals, since those are separate CFGs).
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: statements (and control-heading
// expressions) that execute as a straight line, leaving through Succs.
type Block struct {
	Index int    // position in Graph.Blocks
	Kind  string // debugging label: "entry", "exit", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
}

// A Graph is one function body's control-flow graph. Entry starts the
// body; Exit is the single synthetic sink every return, panic,
// terminator call and normal fall-off edges to. Defers collects the
// defer statements in source order: they run on every path to Exit
// (including unwinding panics — a deferred recover is why panic edges
// to Exit instead of vanishing), but are not given blocks of their own.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// New builds the graph for one function body. A nil body (declaration
// without definition) yields a two-block graph with Entry→Exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		edge(b.cur, b.g.Exit)
	}
	return b.g
}

// FuncGraph builds the graph for a *ast.FuncDecl or *ast.FuncLit.
func FuncGraph(fn ast.Node) *Graph {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return New(f.Body)
	case *ast.FuncLit:
		return New(f.Body)
	}
	return New(nil)
}

// ReachableFrom returns the set of blocks reachable from b by following
// one or more edges; b itself is included only when it sits on a cycle.
func (g *Graph) ReachableFrom(b *Block) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(x *Block) {
		for _, s := range x.Succs {
			if !seen[s] {
				seen[s] = true
				walk(s)
			}
		}
	}
	walk(b)
	return seen
}

// Live returns the blocks reachable from Entry (including Entry): the
// complement is dead code — blocks after a return/panic/terminator that
// no goto or label resurrects.
func (g *Graph) Live() map[*Block]bool {
	live := g.ReachableFrom(g.Entry)
	live[g.Entry] = true
	return live
}

// Dominators computes the dominator sets of the live blocks: dom[b]
// holds every block that appears on all paths Entry→b (b dominates
// itself). Dead blocks are absent. The iterative set intersection is
// quadratic, which is fine at function-body scale.
func (g *Graph) Dominators() map[*Block]map[*Block]bool {
	live := g.Live()
	var order []*Block
	for _, b := range g.Blocks {
		if live[b] {
			order = append(order, b)
		}
	}
	dom := make(map[*Block]map[*Block]bool, len(order))
	all := make(map[*Block]bool, len(order))
	for _, b := range order {
		all[b] = true
	}
	for _, b := range order {
		if b == g.Entry {
			dom[b] = map[*Block]bool{b: true}
			continue
		}
		set := make(map[*Block]bool, len(order))
		for k := range all {
			set[k] = true
		}
		dom[b] = set
	}
	preds := make(map[*Block][]*Block)
	for _, b := range order {
		for _, s := range b.Succs {
			if live[s] {
				preds[s] = append(preds[s], b)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == g.Entry {
				continue
			}
			var next map[*Block]bool
			for _, p := range preds[b] {
				if next == nil {
					next = make(map[*Block]bool, len(dom[p]))
					for k := range dom[p] {
						next[k] = true
					}
					continue
				}
				for k := range next {
					if !dom[p][k] {
						delete(next, k)
					}
				}
			}
			if next == nil {
				next = make(map[*Block]bool)
			}
			next[b] = true
			if len(next) != len(dom[b]) {
				dom[b] = next
				changed = true
			}
		}
	}
	return dom
}

// Visit calls f for every node of every block, in block order. Nested
// function literals are not descended into — a FuncLit is visited as a
// single node, because its body's flow belongs to its own Graph.
func (g *Graph) Visit(f func(b *Block, i int, n ast.Node)) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			Inspect(n, func(x ast.Node) { f(b, i, x) })
		}
	}
}

// Inspect walks n's subtree in source order, skipping the bodies of
// nested function literals, and calls f on every node.
func Inspect(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		f(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}

// builder holds the construction state.
type builder struct {
	g   *Graph
	cur *Block // nil when the current point is unreachable

	labels map[string]*labelInfo
	// loop/switch/select context stacks for plain break/continue.
	breaks    []*Block
	continues []*Block
	// fallthrough target of the case body being built, if any.
	nextCase *Block
}

// labelInfo carries one label's jump targets. Goto is the block at the
// labeled statement (created on first reference, so forward gotos — and
// gotos into loop bodies — resolve); Brk/Cont are set when the labeled
// statement is a loop (or switch/select, Brk only).
type labelInfo struct {
	Goto *Block
	Brk  *Block
	Cont *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// here returns the current block, materializing an unreachable one when
// flow has ended (dead code after return/panic still gets blocks, with
// no predecessors, so analyzers can see — and reachability queries can
// ignore — it).
func (b *builder) here() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) { blk := b.here(); blk.Nodes = append(blk.Nodes, n) }

func (b *builder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{Goto: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		edge(b.here(), li.Goto)
		b.cur = li.Goto
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.forStmt(inner, li)
		case *ast.RangeStmt:
			b.rangeStmt(inner, li)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// A labeled switch/select: `break label` leaves it.
			after := b.newBlock("label." + s.Label.Name + ".after")
			li.Brk = after
			b.stmt(inner)
			if b.cur != nil {
				edge(b.cur, after)
			}
			b.cur = after
		default:
			b.stmt(s.Stmt)
		}

	case *ast.ReturnStmt:
		b.add(s)
		edge(b.here(), b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		from := b.here()
		switch s.Tok {
		case token.GOTO:
			edge(from, b.label(s.Label.Name).Goto)
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.Brk != nil {
					edge(from, li.Brk)
				}
			} else if n := len(b.breaks); n > 0 {
				edge(from, b.breaks[n-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.Cont != nil {
					edge(from, li.Cont)
				}
			} else if n := len(b.continues); n > 0 {
				edge(from, b.continues[n-1])
			}
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				edge(from, b.nextCase)
			}
		}
		b.cur = nil

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.here()
		after := b.newBlock("if.after")
		then := b.newBlock("if.then")
		edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			edge(b.cur, after)
		}
		if s.Else != nil {
			els := b.newBlock("if.else")
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				edge(b.cur, after)
			}
		} else {
			edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.forStmt(s, nil)

	case *ast.RangeStmt:
		b.rangeStmt(s, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body, b.here(), true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body, b.here(), false)

	case *ast.SelectStmt:
		head := b.here()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: flow ends here and everything
			// after is dead — exactly the semantics.
			b.add(s)
			b.cur = nil
			return
		}
		after := b.newBlock("select.after")
		b.breaks = append(b.breaks, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				edge(b.cur, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// When every case returns/branches, after keeps zero
		// predecessors and reads as dead — also exactly the semantics.
		b.cur = after

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			edge(b.here(), b.g.Exit)
			b.cur = nil
		}

	case nil:
		// skip

	default:
		// Assignments, declarations, go/send/incdec statements: straight line.
		b.add(s)
	}
}

// forStmt builds a for loop; li carries the label's break/continue
// targets when the loop is labeled.
func (b *builder) forStmt(s *ast.ForStmt, li *labelInfo) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	edge(b.here(), head)
	after := b.newBlock("for.after")
	// continue re-runs Post (when present) before the head.
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		edge(post, head)
		contTarget = post
	}
	if li != nil {
		li.Brk, li.Cont = after, contTarget
	}
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		edge(head, after)
	}
	body := b.newBlock("for.body")
	edge(head, body)
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, contTarget)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		edge(b.cur, contTarget)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	// `for {}` with no break: after has no predecessors and what follows
	// is dead, matching the spec.
	b.cur = after
}

// rangeStmt builds a range loop. The RangeStmt node itself sits in the
// head block so analyzers can inspect X (and decide, e.g., that ranging
// a never-closed ticker channel is not a real exit).
func (b *builder) rangeStmt(s *ast.RangeStmt, li *labelInfo) {
	head := b.newBlock("range.head")
	edge(b.here(), head)
	head.Nodes = append(head.Nodes, s.X)
	after := b.newBlock("range.after")
	if li != nil {
		li.Brk, li.Cont = after, head
	}
	edge(head, after) // the range may be exhausted (or the channel closed)
	body := b.newBlock("range.body")
	edge(head, body)
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		edge(b.cur, head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

// caseClauses builds switch/type-switch clause blocks. withFallthrough
// enables the fallthrough edge (expression switches only).
func (b *builder) caseClauses(body *ast.BlockStmt, head *Block, withFallthrough bool) {
	after := b.newBlock("switch.after")
	b.breaks = append(b.breaks, after)
	clauses := body.List
	// Pre-create case blocks so fallthrough can edge forward.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock("switch.case")
		edge(head, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, after)
	}
	savedNext := b.nextCase
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if withFallthrough && i+1 < len(clauses) {
			b.nextCase = blocks[i+1]
		} else {
			b.nextCase = nil
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			edge(b.cur, after)
		}
	}
	b.nextCase = savedNext
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic, os.Exit, log.Fatal/Fatalf/Fatalln, runtime.Goexit.
// (Deferred recovers are why panic still edges to Exit — the function is
// left either way, which is all intra-procedural flow needs to know.)
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := f.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + f.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}
